package sicmac

// This file extends the public facade with the rate-adaptation and
// architecture-scenario subsystems (see internal/adapt and internal/wlan).

import (
	"math/rand"

	"repro/internal/adapt"
	"repro/internal/phy"
	"repro/internal/wlan"
)

// ---- Rate adaptation (the §1 "slack" argument, executable) ------------

// Adapter chooses transmit bitrates frame by frame; see internal/adapt for
// the contract.
type Adapter = adapt.Adapter

// OracleAdapter always transmits at the best table rate the true channel
// supports — the paper's "ideal bitrate control" assumption.
type OracleAdapter = adapt.Oracle

// FixedAdapter always transmits at one rate.
type FixedAdapter = adapt.Fixed

// ARFAdapter is classic Automatic Rate Fallback.
type ARFAdapter = adapt.ARF

// AARFAdapter is Adaptive ARF with probe backoff.
type AARFAdapter = adapt.AARF

// SNRAdapter picks by a (noisy) SNR estimate with a safety margin.
type SNRAdapter = adapt.SNRThreshold

// MinstrelAdapter is a sampling/EWMA adapter in the spirit of Linux
// Minstrel.
type MinstrelAdapter = adapt.Minstrel

// AdaptTrialConfig drives a rate-adaptation trial over a fading link.
type AdaptTrialConfig = adapt.TrialConfig

// AdaptTrialResult summarises one adapter's run.
type AdaptTrialResult = adapt.TrialResult

// NewARF builds an ARF adapter with the classic 10/2 thresholds.
func NewARF(table RateTable) *ARFAdapter { return adapt.NewARF(table) }

// NewAARF builds an AARF adapter.
func NewAARF(table RateTable) *AARFAdapter { return adapt.NewAARF(table) }

// NewMinstrel builds a Minstrel adapter; rng drives its rate sampling.
func NewMinstrel(table RateTable, rng *rand.Rand) *MinstrelAdapter {
	return adapt.NewMinstrel(table, rng)
}

// RunAdaptation executes one adapter over a fading channel.
func RunAdaptation(a Adapter, cfg AdaptTrialConfig) (AdaptTrialResult, error) {
	return adapt.Run(a, cfg)
}

// Fading is a first-order Gauss-Markov shadow-fading process in dB.
type Fading = phy.Fading

// NewFading builds a fading process with the given mean SNR (dB), standard
// deviation (dB) and per-step correlation.
func NewFading(meanSNRdB, sigmaDB, rho float64) (*Fading, error) {
	return phy.NewFading(meanSNRdB, sigmaDB, rho)
}

// ---- §4 architecture scenarios ------------------------------------------

// Deployment configures the §4 wireless-architecture samplers.
type Deployment = wlan.Deployment

// ArchScenario is one named architecture sampler.
type ArchScenario = wlan.Scenario

// DefaultDeployment is an indoor office deployment (α=3.5, 30 m AP pitch).
func DefaultDeployment() Deployment { return wlan.DefaultDeployment() }
