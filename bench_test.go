package sicmac_test

// The benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (there are no data tables in the paper — Table 1 is notation),
// plus the ablation benches DESIGN.md calls out. Each benchmark regenerates
// its figure at a reduced-but-representative workload and reports the
// headline metric via b.ReportMetric, so `go test -bench=.` doubles as a
// one-shot reproduction check.
//
// Full-resolution figures (paper-scale trials and grids) are produced by
// `go run ./cmd/sicfig -all`.

import (
	"context"
	"testing"

	sicmac "repro"
	"repro/internal/experiments"
)

func benchParams() experiments.Params {
	p := experiments.QuickParams()
	p.Trials = 2000
	return p
}

// runFigure drives one experiment per iteration and surfaces a metric.
func runFigure(b *testing.B, run func(context.Context, experiments.Params) (experiments.Result, error), metric string) {
	b.Helper()
	p := benchParams()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := run(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if v, ok := last.Metrics[metric]; ok {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkFig2Capacity(b *testing.B) {
	runFigure(b, experiments.Fig2, "mean_capacity_ratio_sic_over_strong")
}

func BenchmarkFig3CapacityGainGrid(b *testing.B) {
	runFigure(b, experiments.Fig3, "max_gain")
}

func BenchmarkFig4SameReceiverGainGrid(b *testing.B) {
	runFigure(b, experiments.Fig4, "max_gain")
}

func BenchmarkFig6DifferentReceiversCDF(b *testing.B) {
	runFigure(b, experiments.Fig6, "frac_no_gain_range_20")
}

func BenchmarkFig8DownloadGainGrid(b *testing.B) {
	runFigure(b, experiments.Fig8, "max_gain")
}

func BenchmarkFig10Illustration(b *testing.B) {
	runFigure(b, experiments.Fig10, "pairing_12_34_units")
}

func BenchmarkFig11TechniquesCDF(b *testing.B) {
	runFigure(b, experiments.Fig11, "one_rx_frac_over_20pct_sic_power_control")
}

func BenchmarkFig12SchedulerMatching(b *testing.B) {
	runFigure(b, experiments.Fig12, "greedy_mean_excess")
}

func BenchmarkFig13TraceUpload(b *testing.B) {
	runFigure(b, experiments.Fig13, "median_gain_sic_power_control")
}

func BenchmarkFig14TraceDownload(b *testing.B) {
	runFigure(b, experiments.Fig14, "frac_over_20pct_802_11g_packing")
}

// ---- Ablation benches --------------------------------------------------

func BenchmarkAblationPathLossExponent(b *testing.B) {
	runFigure(b, experiments.AblationAlpha, "frac_with_gain_alpha_4.0")
}

func BenchmarkAblationResidualCancellation(b *testing.B) {
	runFigure(b, experiments.AblationResidual, "scheduled_drain_s_beta_0.05")
}

func BenchmarkAblationGreedyVsMatching(b *testing.B) {
	runFigure(b, experiments.AblationGreedy, "mean_greedy_over_opt")
}

// ---- Core micro-benchmarks ----------------------------------------------

func BenchmarkPairGain(b *testing.B) {
	ch := sicmac.Wifi20MHz
	p := sicmac.Pair{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Gain(ch, 12000)
	}
	_ = sink
}

func BenchmarkScheduler16Clients(b *testing.B) {
	benchScheduler(b, 16)
}

func BenchmarkScheduler64Clients(b *testing.B) {
	benchScheduler(b, 64)
}

func benchScheduler(b *testing.B, n int) {
	b.Helper()
	clients := make([]sicmac.SchedClient, n)
	for i := range clients {
		// Deterministic spread of SNRs over 3..45 dB.
		clients[i] = sicmac.SchedClient{
			ID:  string(rune('A' + i%26)),
			SNR: sicmac.FromDB(3 + float64(i*41%43)),
		}
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sicmac.NewSchedule(clients, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler64ClientsWarm is the live-AP steady state: one planner
// held across queries, one client's SNR drifting per query. Compare against
// BenchmarkScheduler64Clients (cold solve per query) for what planner reuse
// plus warm-started matching buys.
func BenchmarkScheduler64ClientsWarm(b *testing.B) {
	const n = 64
	clients := make([]sicmac.SchedClient, n)
	for i := range clients {
		clients[i] = sicmac.SchedClient{
			ID:  string(rune('A' + i%26)),
			SNR: sicmac.FromDB(3 + float64(i*41%43)),
		}
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true}
	pl := sicmac.NewSchedPlanner(opts)
	ctx := context.Background()
	if _, err := pl.Plan(ctx, clients); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &clients[i%n]
		c.SNR *= 1 + 0.001*float64(i%7-3)
		if _, err := pl.Plan(ctx, clients); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduler256Clients / ...Warm pin the warm-vs-cold crossover
// DESIGN.md documents: a warm 256-client re-solve beats even a cold
// 64-client solve, and beats the cold 256-client solve by ~50×. What a
// warm query cannot amortise is the blossom augmentation phases the
// re-matching itself needs — profiling shows >85% of the warm re-solve
// inside the matcher's phase scans, not in table rebuild — which is why
// warm cost grows superlinearly with the client count while staying a
// constant handful of allocations.
func BenchmarkScheduler256Clients(b *testing.B) {
	benchScheduler(b, 256)
}

func BenchmarkScheduler256ClientsWarm(b *testing.B) {
	benchSchedulerWarm(b, 256)
}

func benchSchedulerWarm(b *testing.B, n int) {
	b.Helper()
	clients := make([]sicmac.SchedClient, n)
	for i := range clients {
		clients[i] = sicmac.SchedClient{
			ID:  string(rune('A' + i%26)),
			SNR: sicmac.FromDB(3 + float64(i*41%43)),
		}
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true}
	pl := sicmac.NewSchedPlanner(opts)
	ctx := context.Background()
	if _, err := pl.Plan(ctx, clients); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &clients[i%n]
		c.SNR *= 1 + 0.001*float64(i%7-3)
		if _, err := pl.Plan(ctx, clients); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACScheduledSimulation(b *testing.B) {
	stations := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(32), Backlog: 4},
		{ID: 2, SNR: sicmac.FromDB(16), Backlog: 4},
		{ID: 3, SNR: sicmac.FromDB(28), Backlog: 4},
		{ID: 4, SNR: sicmac.FromDB(13), Backlog: 4},
	}
	cfg := sicmac.DefaultMACConfig(sicmac.Wifi20MHz)
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: cfg.PacketBits}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sicmac.RunScheduled(stations, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := sicmac.DefaultTraceConfig(1)
	cfg.Days = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sicmac.GenerateUploadTrace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtAdaptation(b *testing.B) {
	runFigure(b, experiments.ExtAdaptation, "sic_gain_11g_oracle")
}

func BenchmarkExtArchitectures(b *testing.B) {
	runFigure(b, experiments.ExtArchitectures, "frac_over_20pct_enterprise_upload")
}

func BenchmarkExtLoad(b *testing.B) {
	runFigure(b, experiments.ExtLoad, "sic_mean_delay_s_rate_2400")
}

func BenchmarkQueuedMAC(b *testing.B) {
	stations := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(32)},
		{ID: 2, SNR: sicmac.FromDB(16)},
		{ID: 3, SNR: sicmac.FromDB(28)},
		{ID: 4, SNR: sicmac.FromDB(13)},
	}
	qc := sicmac.QueuedConfig{
		Config:      sicmac.DefaultMACConfig(sicmac.Wifi20MHz),
		ArrivalRate: 800,
		Horizon:     0.05,
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: qc.PacketBits}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sicmac.RunQueuedScheduled(stations, qc, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtPHY(b *testing.B) {
	runFigure(b, experiments.ExtPHY, "beta_pilots_64")
}

func BenchmarkExtMesh(b *testing.B) {
	runFigure(b, experiments.ExtMesh, "speedup_long_short_long")
}

func BenchmarkExtRegion(b *testing.B) {
	runFigure(b, experiments.ExtRegion, "sic_over_conventional")
}

func BenchmarkExtTriples(b *testing.B) {
	runFigure(b, experiments.ExtTriples, "mean_pair_over_triple")
}
