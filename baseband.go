package sicmac

// This file extends the public facade with the symbol-level baseband SIC
// receiver (see internal/baseband).

import "repro/internal/baseband"

// Modulation selects a baseband constellation (BPSK/QPSK/QAM16).
type Modulation = baseband.Modulation

// Baseband constellations.
const (
	BPSK  = baseband.BPSK
	QPSK  = baseband.QPSK
	QAM16 = baseband.QAM16
)

// BasebandConfig drives a symbol-level SIC simulation: two superimposed
// modulated signals, pilot-based channel estimation, decode-remodulate-
// subtract cancellation, optional ADC clipping.
type BasebandConfig = baseband.Config

// BasebandResult reports symbol error rates and the measured residual-
// cancellation fraction β (the quantity MACConfig.Residual abstracts).
type BasebandResult = baseband.Result

// RunBaseband executes the full SIC reception chain at symbol level.
func RunBaseband(cfg BasebandConfig) (BasebandResult, error) {
	return baseband.Run(cfg)
}

// RunBasebandSingle measures single-user SER at the given SNR — the
// calibration point for theory comparisons.
func RunBasebandSingle(mod Modulation, snrDB float64, symbols int, seed int64) (float64, error) {
	return baseband.RunSingle(mod, snrDB, symbols, seed)
}

// TheoreticalSER returns the textbook SER approximation at a linear SNR.
func TheoreticalSER(mod Modulation, snr float64) float64 {
	return baseband.TheoreticalSER(mod, snr)
}
