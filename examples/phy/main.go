// PHY: the SIC receiver at symbol level.
//
// Sweeps the weak link's SNR and reports its symbol error rate after
// decode-remodulate-subtract cancellation of a 30 dB strong signal,
// against the interference-free reference — plus what §8's practical
// imperfections (finite pilots, carrier frequency offset, ADC clipping)
// do to it.
//
// Run with: go run ./examples/phy
package main

import (
	"fmt"
	"log"

	sicmac "repro"
)

func main() {
	const symbols = 60000

	fmt.Println("== QPSK weak-signal SER after SIC (strong signal at 30 dB) ==")
	fmt.Printf("%8s %12s %12s %12s\n", "weak dB", "after SIC", "alone", "theory")
	for _, weakDB := range []float64{6, 8, 10, 12, 14} {
		res, err := sicmac.RunBaseband(sicmac.BasebandConfig{
			Mod: sicmac.QPSK, SNRStrongDB: 30, SNRWeakDB: weakDB,
			Symbols: symbols, Pilots: 0, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		theory := sicmac.TheoreticalSER(sicmac.QPSK, sicmac.FromDB(weakDB))
		fmt.Printf("%8.0f %12.5f %12.5f %12.5f\n", weakDB, res.SERWeak, res.SERWeakAlone, theory)
	}
	fmt.Println("\nperfect cancellation: the SIC column tracks the interference-free one.")

	fmt.Println("\n== §8's imperfections, one at a time (weak at 12 dB) ==")
	base := sicmac.BasebandConfig{
		Mod: sicmac.QPSK, SNRStrongDB: 30, SNRWeakDB: 12,
		Symbols: symbols, Seed: 2,
	}
	report := func(label string, cfg sicmac.BasebandConfig) {
		res, err := sicmac.RunBaseband(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s weak SER %.5f   residual β %.2e\n", label, res.SERWeak, res.ResidualBeta)
	}
	report("genie channel knowledge", base)

	pilots := base
	pilots.Pilots = 8
	report("8-pilot channel estimate", pilots)

	cfo := base
	cfo.CFONormalized = 1e-4
	report("carrier offset 1e-4 cycles/symbol", cfo)

	clip := base
	clip.ClipAmplitude = 16 // ≈ half the strong signal's amplitude
	report("ADC clipping at half amplitude", clip)

	fmt.Println("\nEach imperfection turns into residual interference after cancellation,")
	fmt.Println("which is exactly the β knob the MAC simulator exposes (see ext-phy for")
	fmt.Println("the pilots → β → throughput chain).")
}
