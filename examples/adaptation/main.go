// Adaptation: the paper's §1 argument, executable.
//
// "The slack [SIC can harness] is fast disappearing with more fine-grain
// bitrates (4 in 802.11b vs 8 in 802.11g vs 32 in 802.11n) and the recent
// advances in bitrate adaptation."
//
// Two clients near the SIC sweet spot upload over slowly fading channels.
// Each runs a rate-adaptation algorithm; the AP opportunistically decodes
// both concurrently whenever the chosen rates fit under the interference-
// limited capacities. The worse the adapter (or the coarser the table), the
// more slack — and the more SIC gains.
//
// Run with: go run ./examples/adaptation
package main

import (
	"fmt"
	"log"
	"math/rand"

	sicmac "repro"
)

func main() {
	const frames = 6000
	const frameBits = 12000.0

	for _, table := range []sicmac.RateTable{sicmac.Dot11b, sicmac.Dot11g, sicmac.Dot11n} {
		fmt.Printf("== %s (%d rates) ==\n", table.Name(), table.Len())
		fmt.Printf("%-16s %14s %12s %12s\n", "adapter", "throughput", "succ-rate", "mean-slack")
		adapters := []sicmac.Adapter{
			&sicmac.FixedAdapter{RateBps: table.Steps()[0].BitsPerSec},
			sicmac.NewARF(table),
			sicmac.NewAARF(table),
			sicmac.NewMinstrel(table, rand.New(rand.NewSource(7))),
			&sicmac.SNRAdapter{Table: table, MarginDB: 3},
			&sicmac.OracleAdapter{Table: table},
		}
		fading, err := sicmac.NewFading(18, 5, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range adapters {
			res, err := sicmac.RunAdaptation(a, sicmac.AdaptTrialConfig{
				Table:     table,
				Fading:    *fading,
				Frames:    frames,
				FrameBits: frameBits,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %11.1f Mb/s %12.3f %12.3f\n",
				res.Name, res.Throughput/1e6, res.SuccessRate, res.MeanSlack)
		}
		fmt.Println()
	}

	fmt.Println("mean-slack is the headroom SIC can harvest: the ratio between the")
	fmt.Println("rate the channel would have supported and the rate actually used.")
	fmt.Println("Note how it shrinks toward 1 as the adapter improves — and how the")
	fmt.Println("oracle's own slack shrinks as the table gets finer (b -> g -> n),")
	fmt.Println("which is exactly why the paper is pessimistic about SIC's future.")
}
