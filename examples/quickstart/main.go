// Quickstart: the paper's analysis in 60 lines.
//
// Computes, for one pair of uploaders at an SIC-capable AP:
//   - the individual and SIC-aggregate channel capacities (Eqs. 3-4),
//   - the two-packet completion time with and without SIC (Eqs. 5-6),
//   - the pairing sweet spot (equal feasible rates) and what power
//     reduction buys (§5.2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	sicmac "repro"
)

func main() {
	ch := sicmac.Wifi20MHz   // 20 MHz, noise-normalised
	const packetBits = 12000 // one 1500-byte packet each

	// A client at 30 dB SNR and one at 15 dB upload to the same AP —
	// almost exactly the "twice in dB" sweet spot the paper derives.
	pair := sicmac.Pair{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}

	fmt.Println("== capacities (Eqs. 3-4) ==")
	fmt.Printf("individual: %.1f / %.1f Mbit/s\n",
		sicmac.Capacity(ch.BandwidthHz, pair.S1)/1e6,
		sicmac.Capacity(ch.BandwidthHz, pair.S2)/1e6)
	fmt.Printf("with SIC:   %.1f Mbit/s (gain %.2f× over the better link)\n",
		pair.CapacityWithSIC(ch)/1e6, pair.CapacityGain(ch))

	rs, rw, _ := pair.FeasibleRates(ch)
	fmt.Println("\n== concurrent feasible rates (Eqs. 1-2) ==")
	fmt.Printf("stronger (decoded first, under interference): %.1f Mbit/s\n", rs/1e6)
	fmt.Printf("weaker  (after perfect cancellation):         %.1f Mbit/s\n", rw/1e6)

	fmt.Println("\n== two-packet completion time (Eqs. 5-6) ==")
	fmt.Printf("serial: %.3f ms   SIC: %.3f ms   gain %.2f×\n",
		pair.SerialTime(ch, packetBits)*1e3,
		pair.SICTime(ch, packetBits)*1e3,
		pair.Gain(ch, packetBits))

	// The sweet spot: for a 15 dB partner, the ideal stronger client sits
	// at S_strong = S_weak(S_weak+1) — about twice the dB value.
	ideal := sicmac.EqualRateStrongSNR(sicmac.FromDB(15))
	fmt.Printf("\nideal partner for a 15 dB client: %.1f dB (\"twice in dB\")\n", sicmac.DB(ideal))

	// Power reduction (§5.2): when the two RSSs are close the stronger
	// client is the bottleneck; shrinking the weaker's power equalises the
	// rates and shortens the slot.
	close := sicmac.Pair{S1: sicmac.FromDB(26), S2: sicmac.FromDB(25)}
	pr := close.PowerReduce()
	fmt.Printf("\n== power reduction on a (26 dB, 25 dB) pair ==\n")
	fmt.Printf("weaker client scaled to %.0f%% power: slot %.3f ms -> %.3f ms\n",
		pr.Scale*100,
		close.SICTime(ch, packetBits)*1e3,
		pr.Pair.SICTime(ch, packetBits)*1e3)
}
