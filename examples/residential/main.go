// Residential: the paper's §4.2 apartment scenario.
//
// Two neighbouring apartments each run a WPA-protected AP. Client C2
// belongs to AP1 but sits closer to the neighbour's AP2 — the "strange
// restriction" that creates an SIC opening: C2 can decode the neighbour's
// strong download, cancel it, and extract its own packet from AP1.
//
// The example reconstructs the geometry with the path-loss model, checks
// both neighbour transmissions the paper discusses (AP2→C4, which works,
// and AP2→C3, which does not), and quantifies the gain.
//
// Run with: go run ./examples/residential
package main

import (
	"fmt"
	"log"

	sicmac "repro"
)

func main() {
	ch := sicmac.Wifi20MHz
	const packetBits = 12000

	// Indoor propagation: α=3.5, 55 dB SNR at 1 m.
	pl, err := sicmac.NewPathLoss(3.5, 1, 55)
	if err != nil {
		log.Fatal(err)
	}

	// Geometry (meters, 1-D corridor for clarity):
	//   AP1 at 0. Its client C2 at 12 — near the apartment boundary.
	//   AP2 at 16. Its clients: C4 at 26 (far side), C3 at 17 (next to AP2).
	type node struct {
		name string
		pos  float64
	}
	ap1 := node{"AP1", 0}
	ap2 := node{"AP2", 16}
	c2 := node{"C2", 12}
	c3 := node{"C3", 17}
	c4 := node{"C4", 26}

	snr := func(a, b node) float64 { return pl.SNRAt(abs(a.pos - b.pos)) }

	fmt.Println("== link budget ==")
	for _, pair := range []struct{ t, r node }{
		{ap1, c2}, {ap2, c2}, {ap2, c3}, {ap2, c4},
	} {
		fmt.Printf("%s -> %s: %.1f dB\n", pair.t.name, pair.r.name, sicmac.DB(snr(pair.t, pair.r)))
	}

	// Scenario 1: AP1→C2 concurrent with AP2→C4.
	// R1 = C2 (wants AP1, suffers AP2), R2 = C4 (wants AP2, suffers AP1).
	good := sicmac.Cross{S: [2][2]float64{
		{snr(ap1, c2), snr(ap2, c2)},
		{snr(ap1, c4), snr(ap2, c4)},
	}}
	// Scenario 2: AP1→C2 concurrent with AP2→C3 (the one the paper rules out:
	// AP2 must use a high rate to nearby C3, which C2 cannot decode).
	bad := sicmac.Cross{S: [2][2]float64{
		{snr(ap1, c2), snr(ap2, c2)},
		{snr(ap1, c3), snr(ap2, c3)},
	}}

	report := func(label string, x sicmac.Cross) {
		fmt.Printf("\n== %s ==\n", label)
		fmt.Printf("interference pattern: %v, SIC feasible: %v\n", x.Case(), x.SICFeasible())
		fmt.Printf("serial: %.3f ms   best with SIC: %.3f ms   gain %.2f×\n",
			x.SerialTime(ch, packetBits)*1e3, x.SICTime(ch, packetBits)*1e3, x.Gain(ch, packetBits))
	}
	report("AP1->C2 with neighbour sending AP2->C4", good)
	report("AP1->C2 with neighbour sending AP2->C3", bad)

	if !good.SICFeasible() {
		log.Fatal("expected the far-client scenario to admit SIC")
	}
	if bad.SICFeasible() {
		log.Fatal("expected the near-client scenario to be infeasible (AP2's rate to C3 is too high for C2)")
	}
	fmt.Println("\nAs the paper observes: the opening exists only when the neighbour AP")
	fmt.Println("serves a *far* client (low rate, decodable at C2); a near client's")
	fmt.Println("high-rate download cannot be decoded, so it cannot be cancelled.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
