// Live: the SIC-aware upload MAC as a running concurrent system.
//
// Unlike the event-driven simulator (examples/uplink), here the AP and
// every station are goroutines exchanging real wire-format frames over a
// simulated medium: the AP computes a schedule, fires per-slot trigger
// frames (commanding each station's power scale and bitrate, the way an
// 802.11ax trigger frame would), the addressed stations independently
// transmit, and the medium superposes their signals for the AP's SIC
// receiver. The run honours context cancellation and is deterministic.
//
// Run with: go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sicmac "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	stations := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(32), Backlog: 5},
		{ID: 2, SNR: sicmac.FromDB(16), Backlog: 5},
		{ID: 3, SNR: sicmac.FromDB(28), Backlog: 5},
		{ID: 4, SNR: sicmac.FromDB(13), Backlog: 5},
	}

	cfg := sicmac.EmuConfig{
		Channel:    sicmac.Wifi20MHz,
		PacketBits: 12000,
		Sched: sicmac.SchedOptions{
			Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true,
		},
	}

	res, err := sicmac.RunEmulation(ctx, stations, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== live emulation (goroutine AP + stations, trigger-based uplink) ==")
	for _, s := range stations {
		fmt.Printf("station %d: delivered %d/%d frames\n", s.ID, res.Delivered[s.ID], s.Backlog)
	}
	fmt.Printf("rounds: %d, data airtime: %.3f ms, decode failures: %d\n",
		res.Rounds, res.AirtimeData*1e3, res.DecodeFailures)

	// Same topology through the event-driven simulator: the airtimes agree,
	// which is the point — the protocol is identical, only the execution
	// machinery differs.
	sim, err := sicmac.RunScheduled(stations, sicmac.DefaultMACConfig(sicmac.Wifi20MHz), cfg.Sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent-driven simulator's data airtime: %.3f ms (matches within rate quantisation)\n",
		sim.AirtimeData*1e3)
}
