// Mesh: the paper's §4.3 multihop self-interference scenario.
//
// Packets flow A → C → D → E: a long hop, a short hop, then a long hop —
// "a perfect recipe for SIC at C". When C receives from A while D forwards
// to E, C can decode D's strong (self-)interference, cancel it, and keep
// both pipeline stages running concurrently.
//
// The example computes the end-to-end pipeline throughput with and without
// SIC at C, then shrinks the long hops to show the paper's counterpoint:
// short hops raise D's bitrate beyond what C can decode and the
// opportunity evaporates.
//
// Run with: go run ./examples/mesh
package main

import (
	"fmt"
	"log"

	sicmac "repro"
)

func main() {
	ch := sicmac.Wifi20MHz
	const packetBits = 12000

	pl, err := sicmac.NewPathLoss(3.2, 1, 58)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, posA, posC, posD, posE float64) {
		snrAC := pl.SNRAt(posC - posA)
		snrCD := pl.SNRAt(posD - posC)
		snrDE := pl.SNRAt(posE - posD)
		snrDC := pl.SNRAt(posD - posC) // D's signal heard back at C

		// The A→C and D→E transmissions overlap; C is the SIC receiver:
		// R1 = C (wants A, suffers D), R2 = E (wants D, far from A).
		snrAE := pl.SNRAt(posE - posA)
		x := sicmac.Cross{S: [2][2]float64{
			{snrAC, snrDC},
			{snrAE, snrDE},
		}}

		// Pipeline throughput: each packet must traverse A→C, C→D, D→E.
		// Without SIC the three hops serialise (same collision domain);
		// with SIC, A→C and D→E share airtime.
		tAC := packetBits / sicmac.Capacity(ch.BandwidthHz, snrAC)
		tCD := packetBits / sicmac.Capacity(ch.BandwidthHz, snrCD)
		tDE := packetBits / sicmac.Capacity(ch.BandwidthHz, snrDE)
		serialCycle := tAC + tCD + tDE
		sicCycle := serialCycle
		if x.SICFeasible() {
			conc, ok := x.ConcurrentTime(ch, packetBits)
			if ok && conc+tCD < serialCycle {
				sicCycle = conc + tCD
			}
		}

		fmt.Printf("== %s ==\n", label)
		fmt.Printf("hop SNRs: A->C %.1f dB, C->D %.1f dB, D->E %.1f dB; D at C: %.1f dB\n",
			sicmac.DB(snrAC), sicmac.DB(snrCD), sicmac.DB(snrDE), sicmac.DB(snrDC))
		fmt.Printf("self-interference pattern at C: %v, SIC feasible: %v\n", x.Case(), x.SICFeasible())
		fmt.Printf("per-packet pipeline cycle: serial %.3f ms, with SIC %.3f ms (throughput gain %.2f×)\n\n",
			serialCycle*1e3, sicCycle*1e3, serialCycle/sicCycle)
	}

	// Long-short-long: A and E far from the C—D core.
	run("long-hop / short-hop / long-hop (the paper's recipe)", 0, 30, 34, 64)

	// Shrink the long hops: D's rate to E rises beyond what C can decode.
	run("short hops everywhere (opportunity gone)", 0, 8, 12, 20)
}
