// Uplink: an enterprise-WLAN upload round, end to end.
//
// Eight clients with backlog upload to one SIC-capable AP. The example
//  1. computes the optimal SIC-aware schedule (minimum-weight perfect
//     matching over pair costs, §6) with and without power control,
//  2. compares it against greedy pairing and the serial baseline, and
//  3. replays the scenario through the discrete-event MAC simulator to
//     show the analytic schedule holds on a simulated medium with real
//     frames, ACK/IFS overheads and an explicit SIC receiver.
//
// Run with: go run ./examples/uplink
package main

import (
	"fmt"
	"log"

	sicmac "repro"
)

func main() {
	ch := sicmac.Wifi20MHz
	const packetBits = 12000

	// A realistic spread of client SNRs at the AP (dB).
	snrsDB := []float64{34, 31, 27, 24, 21, 17, 13, 9}
	clients := make([]sicmac.SchedClient, len(snrsDB))
	for i, db := range snrsDB {
		clients[i] = sicmac.SchedClient{ID: fmt.Sprintf("sta%d", i+1), SNR: sicmac.FromDB(db)}
	}

	base := sicmac.SchedOptions{Channel: ch, PacketBits: packetBits}
	withPC := base
	withPC.PowerControl = true

	plain, err := sicmac.NewSchedule(clients, base)
	if err != nil {
		log.Fatal(err)
	}
	pc, err := sicmac.NewSchedule(clients, withPC)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := sicmac.GreedySchedule(clients, withPC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== one upload round, 8 clients ==")
	fmt.Printf("serial baseline:          %.3f ms\n", plain.SerialBaseline*1e3)
	fmt.Printf("optimal pairing:          %.3f ms (gain %.2f×)\n", plain.Total*1e3, plain.Gain())
	fmt.Printf("optimal + power control:  %.3f ms (gain %.2f×)\n", pc.Total*1e3, pc.Gain())
	fmt.Printf("greedy + power control:   %.3f ms\n", greedy.Total*1e3)

	fmt.Println("\nschedule (optimal + power control):")
	for _, sl := range pc.Slots {
		switch sl.Mode {
		case sicmac.ModeSolo:
			fmt.Printf("  %-6s alone                    %.3f ms\n", clients[sl.A].ID, sl.Time*1e3)
		case sicmac.ModeSIC:
			fmt.Printf("  %-6s + %-6s concurrent (weak at %.0f%% power)  %.3f ms\n",
				clients[sl.A].ID, clients[sl.B].ID, sl.WeakScale*100, sl.Time*1e3)
		default:
			fmt.Printf("  %-6s + %-6s serialised               %.3f ms\n",
				clients[sl.A].ID, clients[sl.B].ID, sl.Time*1e3)
		}
	}

	// Replay through the event-driven MAC with 4 packets of backlog each.
	stations := make([]sicmac.Station, len(snrsDB))
	for i, db := range snrsDB {
		stations[i] = sicmac.Station{ID: uint32(i + 1), SNR: sicmac.FromDB(db), Backlog: 4}
	}
	cfg := sicmac.DefaultMACConfig(ch)
	serialSim, err := sicmac.RunSerial(stations, cfg)
	if err != nil {
		log.Fatal(err)
	}
	schedSim, err := sicmac.RunScheduled(stations, cfg, withPC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== simulated drain (4 frames per station, with MAC overheads) ==")
	fmt.Printf("serial CSMA:   %.3f ms (%d collisions)\n", serialSim.Duration*1e3, serialSim.Collisions)
	fmt.Printf("SIC scheduled: %.3f ms (%d rounds) — %.2f× faster\n",
		schedSim.Duration*1e3, schedSim.Rounds, serialSim.Duration/schedSim.Duration)
}
