package matching

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
)

// bruteMaxWeight enumerates all matchings recursively; usable to n ≈ 10.
func bruteMaxWeight(w [][]int64) int64 {
	n := len(w)
	used := make([]bool, n)
	var rec func(i int) int64
	rec = func(i int) int64 {
		for i < n && used[i] {
			i++
		}
		if i >= n {
			return 0
		}
		used[i] = true
		best := rec(i + 1) // leave i unmatched
		for j := i + 1; j < n; j++ {
			if used[j] || w[i][j] == 0 {
				continue
			}
			used[j] = true
			if v := w[i][j] + rec(i+1); v > best {
				best = v
			}
			used[j] = false
		}
		used[i] = false
		return best
	}
	return rec(0)
}

func randSymmetric(rng *rand.Rand, n int, maxW int64, density float64) [][]int64 {
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.Int63n(maxW) + 1
				w[i][j], w[j][i] = v, v
			}
		}
	}
	return w
}

func checkMatchingConsistent(t *testing.T, mate []int) {
	t.Helper()
	for i, m := range mate {
		if m == Unmatched {
			continue
		}
		if m < 0 || m >= len(mate) || m == i {
			t.Fatalf("mate[%d] = %d out of range", i, m)
		}
		if mate[m] != i {
			t.Fatalf("mate not symmetric: mate[%d]=%d but mate[%d]=%d", i, m, m, mate[m])
		}
	}
}

func matchingWeight(w [][]int64, mate []int) int64 {
	var total int64
	for i, m := range mate {
		if m != Unmatched && i < m {
			total += w[i][m]
		}
	}
	return total
}

func TestMaxWeightTrivial(t *testing.T) {
	mate, total, err := MaxWeight([][]int64{})
	if err != nil || total != 0 || len(mate) != 0 {
		t.Errorf("empty graph: %v %v %v", mate, total, err)
	}
	mate, total, err = MaxWeight([][]int64{{0}})
	if err != nil || total != 0 || mate[0] != Unmatched {
		t.Errorf("single vertex: %v %v %v", mate, total, err)
	}
}

func TestMaxWeightSingleEdge(t *testing.T) {
	w := [][]int64{{0, 7}, {7, 0}}
	mate, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || mate[0] != 1 || mate[1] != 0 {
		t.Errorf("single edge: mate=%v total=%d", mate, total)
	}
}

func TestMaxWeightTriangle(t *testing.T) {
	// Triangle: only one edge can be used; pick the heaviest.
	w := [][]int64{
		{0, 5, 9},
		{5, 0, 7},
		{9, 7, 0},
	}
	mate, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	if total != 9 {
		t.Errorf("triangle total = %d, want 9", total)
	}
}

func TestMaxWeightPrefersTwoEdges(t *testing.T) {
	// Path a-b-c-d with weights 6, 10, 6: taking b-c alone (10) loses to
	// a-b + c-d (12). Classic greedy trap.
	w := make([][]int64, 4)
	for i := range w {
		w[i] = make([]int64, 4)
	}
	w[0][1], w[1][0] = 6, 6
	w[1][2], w[2][1] = 10, 10
	w[2][3], w[3][2] = 6, 6
	mate, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	if total != 12 {
		t.Errorf("path total = %d, want 12", total)
	}
}

func TestMaxWeightOddCycleNeedsBlossom(t *testing.T) {
	// 5-cycle with a pendant: forces blossom formation in most runs.
	// Vertices 0-4 in a cycle, 5 hangs off 0.
	w := make([][]int64, 6)
	for i := range w {
		w[i] = make([]int64, 6)
	}
	set := func(i, j int, v int64) { w[i][j], w[j][i] = v, v }
	set(0, 1, 8)
	set(1, 2, 8)
	set(2, 3, 8)
	set(3, 4, 8)
	set(4, 0, 8)
	set(0, 5, 3)
	mate, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	// Best: 1-2, 3-4, 0-5 = 8+8+3 = 19.
	if total != 19 {
		t.Errorf("odd cycle total = %d, want 19", total)
	}
}

func TestMaxWeightAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(8) // 2..9
		density := 0.3 + rng.Float64()*0.7
		w := randSymmetric(rng, n, 50, density)
		mate, total, err := MaxWeight(w)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchingConsistent(t, mate)
		if got := matchingWeight(w, mate); got != total {
			t.Fatalf("trial %d: reported total %d != recomputed %d", trial, total, got)
		}
		want := bruteMaxWeight(w)
		if total != want {
			t.Fatalf("trial %d (n=%d): blossom total %d != brute force %d\nw=%v",
				trial, n, total, want, w)
		}
	}
}

func TestMaxWeightValidation(t *testing.T) {
	if _, _, err := MaxWeight([][]int64{{0, 1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := MaxWeight([][]int64{{0, 1}, {2, 0}}); err != ErrAsymmetric {
		t.Errorf("asymmetric matrix: err = %v, want ErrAsymmetric", err)
	}
	if _, _, err := MaxWeight([][]int64{{0, -1}, {-1, 0}}); err != ErrNegativeCost {
		t.Errorf("negative weight: err = %v, want ErrNegativeCost", err)
	}
}

func TestMinCostPerfectSimple(t *testing.T) {
	// 4 vertices; pairing (0,1)+(2,3) costs 1+1=2, every other pairing ≥ 20.
	cost := [][]int64{
		{0, 1, 10, 10},
		{1, 0, 10, 10},
		{10, 10, 0, 1},
		{10, 10, 1, 0},
	}
	mate, total, err := MinCostPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	if total != 2 || mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate=%v total=%d, want (0-1)(2-3) cost 2", mate, total)
	}
}

func TestMinCostPerfectOddRejected(t *testing.T) {
	cost := [][]int64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	if _, _, err := MinCostPerfect(cost); err != ErrOddVertexCount {
		t.Errorf("odd n: err = %v, want ErrOddVertexCount", err)
	}
	if _, _, err := ExactMinCostPerfect(cost); err != ErrOddVertexCount {
		t.Errorf("exact odd n: err = %v, want ErrOddVertexCount", err)
	}
}

func TestMinCostPerfectEmpty(t *testing.T) {
	mate, total, err := MinCostPerfect([][]int64{})
	if err != nil || total != 0 || len(mate) != 0 {
		t.Errorf("empty: %v %v %v", mate, total, err)
	}
}

func TestMinCostPerfectAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 * (1 + rng.Intn(7)) // 2..14 even
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Int63n(1000)
				cost[i][j], cost[j][i] = v, v
			}
		}
		mate, total, err := MinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchingConsistent(t, mate)
		for i, m := range mate {
			if m == Unmatched {
				t.Fatalf("trial %d: vertex %d unmatched in perfect matching", trial, i)
			}
		}
		_, wantTotal, err := ExactMinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		if total != wantTotal {
			t.Fatalf("trial %d (n=%d): blossom cost %d != exact %d\ncost=%v",
				trial, n, total, wantTotal, cost)
		}
	}
}

func TestMinCostPerfectLargeInstance(t *testing.T) {
	// Blossom must stay optimal-feeling and fast well beyond the exact
	// matcher's reach; verify structural sanity and a lower bound argument:
	// the optimum can never beat the sum of each vertex's cheapest edge / 2.
	rng := rand.New(rand.NewSource(7))
	n := 100
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Int63n(1_000_000)
			cost[i][j], cost[j][i] = v, v
		}
	}
	mate, total, err := MinCostPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	var lower int64
	for i := 0; i < n; i++ {
		best := int64(1 << 62)
		for j := 0; j < n; j++ {
			if j != i && cost[i][j] < best {
				best = cost[i][j]
			}
		}
		lower += best
	}
	lower /= 2
	if total < lower {
		t.Errorf("matching cost %d below the per-vertex lower bound %d", total, lower)
	}
}

func TestExactMinCostPerfectTooLarge(t *testing.T) {
	n := 24
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	if _, _, err := ExactMinCostPerfect(cost); err == nil {
		t.Error("ExactMinCostPerfect accepted n=24")
	}
}

func TestExactMinCostPerfectKnown(t *testing.T) {
	cost := [][]int64{
		{0, 3, 1, 4},
		{3, 0, 4, 1},
		{1, 4, 0, 3},
		{4, 1, 3, 0},
	}
	mate, total, err := ExactMinCostPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	if total != 2 { // (0-2)+(1-3) = 1+1
		t.Errorf("total = %d, want 2 (mate=%v)", total, mate)
	}
}

func TestMinCostPerfectDeterministic(t *testing.T) {
	cost := [][]int64{
		{0, 5, 9, 2},
		{5, 0, 4, 7},
		{9, 4, 0, 8},
		{2, 7, 8, 0},
	}
	m1, t1, _ := MinCostPerfect(cost)
	m2, t2, _ := MinCostPerfect(cost)
	if t1 != t2 {
		t.Errorf("nondeterministic totals %d vs %d", t1, t2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Errorf("nondeterministic mate at %d: %d vs %d", i, m1[i], m2[i])
		}
	}
}

func BenchmarkMinCostPerfect32(b *testing.B) {
	benchMinCost(b, 32)
}

func BenchmarkMinCostPerfect64(b *testing.B) {
	benchMinCost(b, 64)
}

func benchMinCost(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Int63n(1_000_000)
			cost[i][j], cost[j][i] = v, v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinCostPerfect(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinCostPerfectVeryLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	// The scheduler's real-world ceiling is a few hundred clients; verify
	// the O(n³) implementation handles n=128 comfortably and returns a
	// structurally valid perfect matching whose cost beats greedy.
	rng := rand.New(rand.NewSource(17))
	n := 128
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Int63n(1_000_000)
			cost[i][j], cost[j][i] = v, v
		}
	}
	mate, total, err := MinCostPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchingConsistent(t, mate)
	for i, m := range mate {
		if m == Unmatched {
			t.Fatalf("vertex %d unmatched", i)
		}
	}
	// Greedy upper bound: repeatedly take the globally cheapest edge.
	type edge struct {
		i, j int
		c    int64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, cost[i][j]})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].c < edges[b].c })
	used := make([]bool, n)
	var greedy int64
	for _, e := range edges {
		if !used[e.i] && !used[e.j] {
			used[e.i], used[e.j] = true, true
			greedy += e.c
		}
	}
	if total > greedy {
		t.Errorf("blossom cost %d worse than greedy %d", total, greedy)
	}
}

// TestTrailingZeros: the helper must terminate and return the word size on
// input 0 — the hand-rolled predecessor spun forever there — and agree with
// the obvious definition on every single-bit and mixed input.
func TestTrailingZeros(t *testing.T) {
	if got := trailingZeros(0); got != bits.UintSize {
		t.Fatalf("trailingZeros(0) = %d, want %d", got, bits.UintSize)
	}
	for s := 0; s < 62; s++ {
		if got := trailingZeros(1 << s); got != s {
			t.Fatalf("trailingZeros(1<<%d) = %d, want %d", s, got, s)
		}
		if got := trailingZeros(1<<s | 1<<62); got != s {
			t.Fatalf("trailingZeros(1<<%d|1<<62) = %d, want %d", s, got, s)
		}
	}
}
