// Package matching implements Edmonds' blossom algorithm for weighted
// matching on general graphs — the combinatorial engine behind the paper's
// SIC-aware scheduler (§6), which reduces client pairing to minimum-weight
// perfect matching.
//
// The implementation is the classic O(n³) primal-dual formulation with
// integer dual variables over a dense weight matrix. A bitmask-DP exact
// matcher (ExactMinCostPerfect) is provided for small instances; the test
// suite cross-checks the blossom algorithm against it on thousands of
// random graphs.
package matching

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Unmatched marks a vertex left unmatched in a matching result.
const Unmatched = -1

// ErrOddVertexCount is returned when a perfect matching is requested on an
// odd number of vertices.
var ErrOddVertexCount = errors.New("matching: perfect matching requires an even number of vertices")

// ErrNegativeCost is returned for cost matrices containing negative entries.
var ErrNegativeCost = errors.New("matching: costs must be non-negative")

// ErrAsymmetric is returned for weight/cost matrices that are not symmetric.
var ErrAsymmetric = errors.New("matching: weight matrix must be symmetric")

// ErrWeightTooLarge is returned for weights so large the solver's integer
// dual arithmetic could overflow. The bound depends on the vertex count; it
// is astronomically beyond any airtime the scheduler produces.
var ErrWeightTooLarge = errors.New("matching: weight too large for overflow-free duals")

// ErrNonFinite is returned by the float boundary for NaN or infinite costs.
var ErrNonFinite = errors.New("matching: cost is NaN or infinite")

// validateSquareSymmetric checks the matrix shape shared by all entry points.
func validateSquareSymmetric(w [][]int64) error {
	n := len(w)
	for i, row := range w {
		if len(row) != n {
			return fmt.Errorf("matching: row %d has length %d, want %d", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w[i][j] != w[j][i] {
				return ErrAsymmetric
			}
		}
	}
	return nil
}

// maxSafeWeight bounds individual edge weights so that dual variables —
// which stay within a small multiple of the largest weight and are doubled
// inside eDelta — can never overflow int64 during a solve on n vertices.
func maxSafeWeight(n int) int64 {
	return math.MaxInt64 / int64(4*(n+2))
}

// MaxWeight computes a maximum-weight matching (not necessarily perfect) of
// the undirected graph given by the symmetric non-negative weight matrix w;
// w[i][j] == 0 means "no edge". It returns the mate of every vertex
// (Unmatched for exposed vertices) and the total weight of the matching.
func MaxWeight(w [][]int64) (mate []int, total int64, err error) {
	//lint:allow ctxfirst documented compatibility wrapper over MaxWeightCtx
	return MaxWeightCtx(context.Background(), w)
}

// MaxWeightCtx is MaxWeight with cooperative cancellation: when ctx is
// cancelled or its deadline passes mid-solve, the solver abandons the
// instance within a bounded amount of work and returns ctx.Err(). The
// scheduling daemon's degradation ladder relies on this to bound the time a
// pathological instance can hold the serving loop.
func MaxWeightCtx(ctx context.Context, w [][]int64) (mate []int, total int64, err error) {
	if err := validateSquareSymmetric(w); err != nil {
		return nil, 0, err
	}
	n := len(w)
	safe := maxSafeWeight(n)
	for i := range w {
		for j := range w[i] {
			if w[i][j] < 0 {
				return nil, 0, ErrNegativeCost
			}
			if w[i][j] > safe {
				return nil, 0, fmt.Errorf("%w: w[%d][%d] = %d exceeds %d for %d vertices",
					ErrWeightTooLarge, i, j, w[i][j], safe, n)
			}
		}
	}
	mate = make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	if n == 0 {
		return mate, 0, nil
	}
	b := newBlossom(n)
	if ctx.Done() != nil {
		b.stop = func() bool { return ctx.Err() != nil }
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.setEdge(i+1, j+1, w[i][j])
		}
	}
	total = b.solve()
	if b.aborted {
		return nil, 0, ctx.Err()
	}
	for u := 1; u <= n; u++ {
		if b.match[u] != 0 {
			mate[u-1] = b.match[u] - 1
		}
	}
	return mate, total, nil
}

// MinCostPerfect computes a minimum-cost perfect matching of the complete
// graph on len(cost) vertices with the given symmetric non-negative cost
// matrix (diagonal ignored). The SIC scheduler uses this directly: vertices
// are backlogged clients plus an optional dummy, edge costs are joint
// transmission times.
func MinCostPerfect(cost [][]int64) (mate []int, total int64, err error) {
	//lint:allow ctxfirst documented compatibility wrapper over MinCostPerfectCtx
	return MinCostPerfectCtx(context.Background(), cost)
}

// MinCostPerfectCtx is MinCostPerfect with cooperative cancellation (see
// MaxWeightCtx). A cancelled solve returns ctx.Err(). It is a thin facade
// over Solver: one-shot callers get exactly the cold path that reusable
// callers exercise, so every test of this function covers the engine too.
func MinCostPerfectCtx(ctx context.Context, cost [][]int64) (mate []int, total int64, err error) {
	if err := validateSquareSymmetric(cost); err != nil {
		return nil, 0, err
	}
	n := len(cost)
	var s Solver
	if err := s.Reset(n); err != nil {
		return nil, 0, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if cost[i][j] < 0 {
				return nil, 0, ErrNegativeCost
			}
			if i < j {
				if err := s.SetCost(i, j, cost[i][j]); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	total, err = s.Solve(ctx)
	if err != nil {
		return nil, 0, err
	}
	mate = make([]int, n)
	copy(mate, s.Mates())
	return mate, total, nil
}

// MinCostPerfectFloat is the float-cost boundary of MinCostPerfect. It is a
// documented compatibility wrapper over MinCostPerfectFloatCtx with a
// background context; deadline-sensitive callers (the scheduling daemon's
// degradation ladder) should use the Ctx form so mid-solve cancellation
// works on this entry point too.
func MinCostPerfectFloat(cost [][]float64, quantum float64) (mate []int, total float64, err error) {
	//lint:allow ctxfirst documented compatibility wrapper over MinCostPerfectFloatCtx
	return MinCostPerfectFloatCtx(context.Background(), cost, quantum)
}

// MinCostPerfectFloatCtx is the float-cost boundary of MinCostPerfect with
// cooperative cancellation: every entry is validated (finite via
// ErrNonFinite, non-negative via ErrNegativeCost) and quantized to integer
// multiples of quantum before solving, so callers handing the matcher raw
// float measurements cannot silently obtain a bogus matching from NaN/Inf
// propagation. The returned total is the sum of the original (unquantized)
// costs along the matching. A cancelled ctx returns ctx.Err().
func MinCostPerfectFloatCtx(ctx context.Context, cost [][]float64, quantum float64) (mate []int, total float64, err error) {
	if !(quantum > 0) || math.IsInf(quantum, 1) {
		return nil, 0, fmt.Errorf("matching: quantum must be a positive finite number, got %v", quantum)
	}
	n := len(cost)
	q := make([][]int64, n)
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("matching: row %d has length %d, want %d", i, len(row), n)
		}
		q[i] = make([]int64, n)
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("%w: cost[%d][%d] = %v", ErrNonFinite, i, j, c)
			}
			if c < 0 {
				return nil, 0, fmt.Errorf("%w: cost[%d][%d] = %v", ErrNegativeCost, i, j, c)
			}
			scaled := math.Round(c / quantum)
			if scaled > float64(maxSafeWeight(n)) {
				return nil, 0, fmt.Errorf("%w: cost[%d][%d] = %v at quantum %v", ErrWeightTooLarge, i, j, c, quantum)
			}
			q[i][j] = int64(scaled)
		}
	}
	mate, _, err = MinCostPerfectCtx(ctx, q)
	if err != nil {
		return nil, 0, err
	}
	for i, m := range mate {
		if i < m {
			total += cost[i][m]
		}
	}
	return mate, total, nil
}

// ExactMinCostPerfect solves minimum-cost perfect matching by dynamic
// programming over vertex subsets: exact, O(2ⁿ·n) time, usable up to
// roughly n = 22. It exists to cross-validate the blossom algorithm and to
// serve as a drop-in oracle in tests and ablations.
func ExactMinCostPerfect(cost [][]int64) (mate []int, total int64, err error) {
	if err := validateSquareSymmetric(cost); err != nil {
		return nil, 0, err
	}
	n := len(cost)
	if n%2 != 0 {
		return nil, 0, ErrOddVertexCount
	}
	if n == 0 {
		return []int{}, 0, nil
	}
	if n > 22 {
		return nil, 0, fmt.Errorf("matching: ExactMinCostPerfect limited to 22 vertices, got %d", n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && cost[i][j] < 0 {
				return nil, 0, ErrNegativeCost
			}
		}
	}
	const inf = math.MaxInt64 / 4
	size := 1 << n
	dp := make([]int64, size)
	choice := make([]int32, size)
	for m := 1; m < size; m++ {
		dp[m] = inf
		choice[m] = -1
	}
	for m := 0; m < size; m++ {
		if dp[m] >= inf {
			continue
		}
		// Pair the lowest unmatched vertex with every other unmatched one.
		rest := ^m & (size - 1)
		if rest == 0 {
			continue
		}
		i := trailingZeros(rest)
		for j := i + 1; j < n; j++ {
			if rest&(1<<j) == 0 {
				continue
			}
			nm := m | 1<<i | 1<<j
			if c := dp[m] + cost[i][j]; c < dp[nm] {
				dp[nm] = c
				choice[nm] = int32(i)<<16 | int32(j)
			}
		}
	}
	if dp[size-1] >= inf {
		return nil, 0, errors.New("matching: no perfect matching exists")
	}
	mate = make([]int, n)
	for i := range mate {
		mate[i] = Unmatched
	}
	for m := size - 1; m != 0; {
		c := choice[m]
		i, j := int(c>>16), int(c&0xffff)
		mate[i], mate[j] = j, i
		m &^= 1<<i | 1<<j
	}
	return mate, dp[size-1], nil
}

// trailingZeros is bits.TrailingZeros with the defensive property that it
// terminates on 0 (returning the word size) instead of spinning forever as
// the previous hand-rolled loop did; ExactMinCostPerfect only calls it with
// non-zero masks today, but a refactor must not be able to hang on it.
func trailingZeros(x int) int {
	return bits.TrailingZeros(uint(x))
}
