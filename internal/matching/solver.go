package matching

import (
	"context"
	"fmt"
)

// Solver is the reusable entry point to minimum-cost perfect matching. It
// owns all blossom state across calls, so a steady-state solve — Reset,
// SetCost edits, Solve — allocates nothing once the buffers have grown to
// the largest instance seen. On top of plain reuse it supports warm
// re-solves: after a successful solve, Warm resumes from the previous
// solution's dual variables and matching, touching only the parts of the
// instance invalidated by SetCost edits. That is the live-AP case — one
// client's SNR moves per report, every other edge cost is unchanged — where
// a warm re-solve finishes in a small number of augmentation phases instead
// of n/2.
//
// Warm-start contract:
//
//   - Warm produces a matching with exactly the same total cost as a cold
//     solve of the same instance (ties may be broken differently); the test
//     suite pins this against ExactMinCostPerfect on thousands of perturbed
//     random instances.
//   - Warm falls back to a cold solve internally whenever the saved state
//     is unusable (first solve after Reset, a previous error, or the rare
//     dual-parity stall after warm surgery), so callers may use Warm
//     unconditionally; CanWarm reports whether saved state exists.
//   - A Solver is not safe for concurrent use.
//
// Internally, costs are turned into the max-weight form w = big − cost with
// a sticky base constant: big only grows (when a SetCost raises the largest
// cost seen), and on growth every real-vertex dual is shifted by the same
// delta, which preserves dual feasibility and tightness because every edge
// weight shifts identically. Warm surgery then (1) dissolves the blossom
// forest by distributing each blossom dual onto its member vertices,
// (2) rewrites the edited edges and repairs dual feasibility by raising an
// endpoint dual to cover any deficit, (3) unmatches every matched edge that
// is no longer tight, and (4) resumes augmentation phases.
type Solver struct {
	b *blossomSolver

	n     int
	limit int64   // per-edge cost bound for the current n (overflow guard)
	cost  []int64 // flat [n*n] symmetric cost table, diagonal zero
	mate  []int   // result of the last solve, [n]

	big  int64 // sticky max-weight transform base, weights are big − cost
	maxC int64 // largest cost ever set since Reset

	dirty    [][2]int // edges edited since the last solve (i < j)
	dirtyAll bool     // too many edits to track individually

	warm    bool // previous solve state is valid to resume from
	stopCtx contextDoneProbe
}

// contextDoneProbe is the minimal surface the solver polls for cooperative
// cancellation; it is satisfied by context.Context. Holding the interface
// rather than a per-call closure keeps Solve/Warm allocation-free.
type contextDoneProbe interface{ Err() error }

// NewSolver returns an empty Solver. The zero value is also ready to use;
// call Reset before the first solve either way.
func NewSolver() *Solver { return &Solver{} }

// Reset prepares the solver for an instance on n vertices (n even), costs
// all zero. Buffers grow only when n exceeds every previously seen size, so
// resetting to the same or a smaller instance allocates nothing. Any saved
// warm state is discarded.
func (s *Solver) Reset(n int) error {
	if n < 0 {
		return ErrOddVertexCount
	}
	if n%2 != 0 {
		return ErrOddVertexCount
	}
	if s.b == nil {
		s.b = &blossomSolver{}
		// One stop probe for the life of the Solver: it reads the context
		// stashed by the current Solve/Warm call, so per-call cancellation
		// support costs no per-call closure allocation.
		s.b.stop = func() bool { return s.stopCtx != nil && s.stopCtx.Err() != nil }
	}
	s.b.reset(n)
	if n*n > cap(s.cost) {
		s.cost = make([]int64, n*n)
		s.mate = make([]int, n)
		s.dirty = make([][2]int, 0, n)
	} else {
		s.cost = s.cost[:n*n]
		for i := range s.cost {
			s.cost[i] = 0
		}
		s.mate = s.mate[:n]
	}
	s.n = n
	s.limit = (maxSafeWeight(n) - 1) / int64(n/2+1)
	s.big = 1
	s.maxC = 0
	s.dirty = s.dirty[:0]
	s.dirtyAll = false
	s.warm = false
	return nil
}

// N returns the instance size set by the last Reset.
func (s *Solver) N() int { return s.n }

// CanWarm reports whether a subsequent Warm call can actually resume from
// saved state rather than falling back to a cold solve.
func (s *Solver) CanWarm() bool { return s.warm }

// SetCost sets the (symmetric) cost of edge {i, j}. A no-op write does not
// invalidate warm state. Costs must be non-negative and small enough that
// the integer dual arithmetic cannot overflow for the current n
// (ErrWeightTooLarge otherwise).
func (s *Solver) SetCost(i, j int, c int64) error {
	if i < 0 || j < 0 || i >= s.n || j >= s.n || i == j {
		return fmt.Errorf("matching: SetCost(%d, %d) out of range for %d vertices", i, j, s.n)
	}
	if c < 0 {
		return ErrNegativeCost
	}
	if c > s.limit {
		return fmt.Errorf("%w: cost[%d][%d] = %d exceeds %d for %d vertices",
			ErrWeightTooLarge, i, j, c, s.limit, s.n)
	}
	if s.cost[i*s.n+j] == c {
		return nil
	}
	s.cost[i*s.n+j] = c
	s.cost[j*s.n+i] = c
	if c > s.maxC {
		s.maxC = c
	}
	if !s.dirtyAll {
		if len(s.dirty) >= s.n {
			// Past n edits a full feasibility sweep is cheaper than
			// tracking; collapse to "everything changed".
			s.dirtyAll = true
			s.dirty = s.dirty[:0]
		} else {
			if i > j {
				i, j = j, i
			}
			s.dirty = append(s.dirty, [2]int{i, j})
		}
	}
	return nil
}

// Mates returns the mate of every vertex from the last successful solve.
// The slice is owned by the Solver and valid until the next Reset, Solve or
// Warm call; copy it to retain it.
func (s *Solver) Mates() []int { return s.mate }

// Solve computes a minimum-cost perfect matching of the current instance
// from scratch and returns its total cost. The per-vertex mates are
// available through Mates. A cancelled ctx aborts the solve within a
// bounded amount of work and returns ctx.Err().
func (s *Solver) Solve(ctx context.Context) (int64, error) {
	return s.run(ctx, false)
}

// Warm re-solves the current instance, resuming from the previous solve's
// dual variables and matching when possible (see CanWarm); otherwise it
// behaves exactly like Solve. The result is cost-identical to a cold solve.
func (s *Solver) Warm(ctx context.Context) (int64, error) {
	return s.run(ctx, true)
}

func (s *Solver) run(ctx context.Context, wantWarm bool) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.n == 0 {
		s.markSolved()
		return 0, nil
	}
	if ctx.Done() != nil {
		s.stopCtx = ctx
	}
	if wantWarm && s.warm {
		if s.resolveWarm() && !s.b.aborted {
			if total, err := s.extract(); err == nil {
				s.stopCtx = nil
				s.markSolved()
				return total, nil
			}
		}
		if s.b.aborted {
			s.stopCtx = nil
			s.warm = false
			return 0, ctx.Err()
		}
		// Stalled (or left an inconsistent matching): redo cold below.
	}
	s.solveCold()
	s.stopCtx = nil
	if s.b.aborted {
		s.warm = false
		return 0, ctx.Err()
	}
	total, err := s.extract()
	if err != nil {
		s.warm = false
		return 0, err
	}
	s.markSolved()
	return total, nil
}

// markSolved records that the blossom state now reflects the current cost
// table, making it a valid warm-start point.
func (s *Solver) markSolved() {
	s.warm = true
	s.dirty = s.dirty[:0]
	s.dirtyAll = false
}

// weight is the max-weight transform of one cost entry.
func (s *Solver) weight(i, j int) int64 {
	if i == j {
		return 0
	}
	return s.big - s.cost[i*s.n+j]
}

// rebase grows the sticky transform base when the largest cost seen has
// outgrown it, shifting every real-vertex dual by the same delta. All edge
// weights shift identically, so dual feasibility and tightness survive.
func (s *Solver) rebase() {
	need := s.maxC*int64(s.n/2+1) + 1
	if need <= s.big {
		return
	}
	if s.warm {
		delta := need - s.big
		for u := 1; u <= s.n; u++ {
			s.b.lab[u] += delta
		}
		// Every stored weight is now stale.
		s.dirtyAll = true
	}
	s.big = need
}

// solveCold fills the blossom solver from the cost table and solves from
// scratch.
func (s *Solver) solveCold() {
	s.rebase()
	b, n := s.b, s.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.setEdge(i+1, j+1, s.weight(i, j))
		}
	}
	b.solve()
}

// resolveWarm performs warm-start surgery on the saved state and resumes
// augmentation phases. It reports false when the resumed solve stalled and
// must be redone cold.
func (s *Solver) resolveWarm() bool {
	b, n := s.b, s.n
	s.rebase()
	b.dissolveBlossoms()
	if s.dirtyAll {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.setEdge(i+1, j+1, s.weight(i, j))
			}
		}
		// Full feasibility sweep: raise the first endpoint's dual to cover
		// any deficit. Raising a dual only increases other edges' slack, so
		// one pass suffices.
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if d := b.eDelta(b.g[i][j]); d < 0 {
					b.lab[i] -= d
				}
			}
		}
	} else {
		for _, e := range s.dirty {
			u, v := e[0]+1, e[1]+1
			w := s.weight(e[0], e[1])
			b.setEdge(u, v, w)
			b.setEdge(v, u, w)
			if d := b.eDelta(b.g[u][v]); d < 0 {
				b.lab[u] -= d
			}
		}
	}
	// Drop pairs that lost tightness, pull every dual into one parity class
	// (augmentation between trees in different classes can never tighten an
	// edge — see normalizeParity), drop pairs the normalization loosened,
	// then resume phases.
	b.unmatchLoose()
	b.normalizeParity()
	b.unmatchLoose()
	return b.resume()
}

// extract copies the matching out of the blossom solver into s.mate and
// sums its cost, verifying perfection on the way.
func (s *Solver) extract() (int64, error) {
	b, n := s.b, s.n
	var total int64
	for u := 1; u <= n; u++ {
		m := b.match[u]
		if m < 1 || m > n || b.match[m] != u {
			return 0, fmt.Errorf("matching: internal error: vertex %d left unmatched on a complete graph", u-1)
		}
		s.mate[u-1] = m - 1
		if m > u {
			total += s.cost[(u-1)*n+(m-1)]
		}
	}
	return total, nil
}
