package matching

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// randCostMatrix fills a symmetric cost matrix with uniform costs in
// [0, maxC], zero diagonal.
func randCostMatrix(rng *rand.Rand, n int, maxC int64) [][]int64 {
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := rng.Int63n(maxC + 1)
			cost[i][j] = c
			cost[j][i] = c
		}
	}
	return cost
}

// loadSolver pushes the upper triangle of cost into s.
func loadSolver(t testing.TB, s *Solver, cost [][]int64) {
	t.Helper()
	n := len(cost)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := s.SetCost(i, j, cost[i][j]); err != nil {
				t.Fatalf("SetCost(%d, %d, %d): %v", i, j, cost[i][j], err)
			}
		}
	}
}

// checkPerfect verifies mate is a perfect symmetric matching and returns
// its total cost.
func checkPerfect(t *testing.T, cost [][]int64, mate []int) int64 {
	t.Helper()
	n := len(cost)
	if len(mate) != n {
		t.Fatalf("len(mate) = %d, want %d", len(mate), n)
	}
	var total int64
	for i, m := range mate {
		if m < 0 || m >= n || m == i {
			t.Fatalf("mate[%d] = %d out of range", i, m)
		}
		if mate[m] != i {
			t.Fatalf("mate not symmetric: mate[%d] = %d but mate[%d] = %d", i, m, m, mate[m])
		}
		if i < m {
			total += cost[i][m]
		}
	}
	return total
}

// TestSolverColdMatchesMinCostPerfect: the Solver cold path and the one-shot
// facade agree (they share the engine, so this pins the facade wiring).
func TestSolverColdMatchesMinCostPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewSolver()
	for trial := 0; trial < 50; trial++ {
		n := 2 * (1 + rng.Intn(8))
		cost := randCostMatrix(rng, n, 1000)
		if err := s.Reset(n); err != nil {
			t.Fatal(err)
		}
		loadSolver(t, s, cost)
		got, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkPerfect(t, cost, s.Mates())
		_, want, err := MinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d trial=%d: Solver total %d, MinCostPerfect total %d", n, trial, got, want)
		}
	}
}

// TestSolverWarmAgainstExact is the acceptance property: thousands of warm
// re-solves after random single-edge (and occasional burst) perturbations,
// each cross-checked against the ExactMinCostPerfect oracle. Total cost
// must be identical to a from-scratch optimum and the matching must be a
// valid perfect matching of that cost.
func TestSolverWarmAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver()
	const maxC = 200
	for _, n := range []int{4, 6, 8, 10, 12} {
		cost := randCostMatrix(rng, n, maxC)
		if err := s.Reset(n); err != nil {
			t.Fatal(err)
		}
		loadSolver(t, s, cost)
		if _, err := s.Solve(context.Background()); err != nil {
			t.Fatal(err)
		}
		rounds := 600
		if testing.Short() {
			rounds = 60
		}
		for round := 0; round < rounds; round++ {
			// Perturb 1 edge most rounds, a burst of up to n edges sometimes.
			edits := 1
			if round%7 == 0 {
				edits = 1 + rng.Intn(n)
			}
			for e := 0; e < edits; e++ {
				i := rng.Intn(n)
				j := rng.Intn(n)
				for j == i {
					j = rng.Intn(n)
				}
				c := rng.Int63n(maxC + 1)
				cost[i][j], cost[j][i] = c, c
				if err := s.SetCost(i, j, c); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Warm(context.Background())
			if err != nil {
				t.Fatalf("n=%d round=%d: Warm: %v", n, round, err)
			}
			if mt := checkPerfect(t, cost, s.Mates()); mt != got {
				t.Fatalf("n=%d round=%d: reported total %d but matching sums to %d", n, round, got, mt)
			}
			_, want, err := ExactMinCostPerfect(cost)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("n=%d round=%d: warm total %d, exact optimum %d", n, round, got, want)
			}
		}
	}
}

// TestSolverWarmMatchesColdLarge: beyond the oracle's reach, warm re-solves
// must still agree with an independent cold solve of the same instance.
func TestSolverWarmMatchesColdLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 48
	cost := randCostMatrix(rng, n, 100000)
	warm := NewSolver()
	if err := warm.Reset(n); err != nil {
		t.Fatal(err)
	}
	loadSolver(t, warm, cost)
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	rounds := 100
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		c := rng.Int63n(100001)
		cost[i][j], cost[j][i] = c, c
		if err := warm.SetCost(i, j, c); err != nil {
			t.Fatal(err)
		}
		got, err := warm.Warm(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkPerfect(t, cost, warm.Mates())
		_, want, err := MinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round=%d: warm total %d, cold total %d", round, got, want)
		}
	}
}

// TestSolverWarmRebase: a warm re-solve across a cost spike that outgrows
// the sticky max-weight base (forcing a dual rebase) stays optimal.
func TestSolverWarmRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 10
	cost := randCostMatrix(rng, n, 10)
	s := NewSolver()
	if err := s.Reset(n); err != nil {
		t.Fatal(err)
	}
	loadSolver(t, s, cost)
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Spike one edge far past the previous maximum, then shrink it again;
	// both transitions must survive warm-started.
	for _, spike := range []int64{100000, 3} {
		cost[2][5], cost[5][2] = spike, spike
		if err := s.SetCost(2, 5, spike); err != nil {
			t.Fatal(err)
		}
		got, err := s.Warm(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkPerfect(t, cost, s.Mates())
		_, want, err := ExactMinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("spike=%d: warm total %d, exact optimum %d", spike, got, want)
		}
	}
}

// TestSolverResetReuse: one Solver across shrinking and growing instance
// sizes; stale state from a larger instance must never leak into a smaller
// one.
func TestSolverResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSolver()
	for _, n := range []int{16, 4, 12, 2, 16, 8} {
		cost := randCostMatrix(rng, n, 500)
		if err := s.Reset(n); err != nil {
			t.Fatal(err)
		}
		if s.CanWarm() {
			t.Fatal("CanWarm true immediately after Reset")
		}
		loadSolver(t, s, cost)
		got, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		checkPerfect(t, cost, s.Mates())
		_, want, err := ExactMinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: total %d, exact %d", n, got, want)
		}
		if !s.CanWarm() {
			t.Fatal("CanWarm false after a successful solve")
		}
	}
}

// TestSolverValidation: Reset and SetCost reject bad shapes and values with
// the package's sentinel errors.
func TestSolverValidation(t *testing.T) {
	s := NewSolver()
	if err := s.Reset(3); err != ErrOddVertexCount {
		t.Fatalf("Reset(3): err = %v, want ErrOddVertexCount", err)
	}
	if err := s.Reset(-2); err != ErrOddVertexCount {
		t.Fatalf("Reset(-2): err = %v, want ErrOddVertexCount", err)
	}
	if err := s.Reset(4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCost(0, 0, 1); err == nil {
		t.Fatal("SetCost on the diagonal accepted")
	}
	if err := s.SetCost(0, 4, 1); err == nil {
		t.Fatal("SetCost out of range accepted")
	}
	if err := s.SetCost(0, 1, -1); err != ErrNegativeCost {
		t.Fatalf("negative cost: err = %v, want ErrNegativeCost", err)
	}
	if err := s.SetCost(0, 1, maxSafeWeight(4)); !errors.Is(err, ErrWeightTooLarge) {
		t.Fatalf("huge cost: err = %v, want ErrWeightTooLarge", err)
	}
	// n = 0 solves trivially.
	if err := s.Reset(0); err != nil {
		t.Fatal(err)
	}
	if total, err := s.Solve(context.Background()); err != nil || total != 0 {
		t.Fatalf("empty solve = (%d, %v), want (0, nil)", total, err)
	}
}

// TestSolverCtxCancellation: both Solve and Warm abandon a cancelled solve
// with ctx.Err(), and the Solver recovers on the next call.
func TestSolverCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 40
	cost := randCostMatrix(rng, n, 100000)
	s := NewSolver()
	if err := s.Reset(n); err != nil {
		t.Fatal(err)
	}
	loadSolver(t, s, cost)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := s.Warm(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Warm(cancelled) err = %v, want context.Canceled", err)
	}
	// Recovery: the same Solver answers correctly afterwards.
	got, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := MinCostPerfect(cost)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-cancel total %d, want %d", got, want)
	}
}

// TestSolverZeroAllocSteadyState is the tentpole's headline number: once
// warmed up, neither a full re-solve nor a warm re-solve allocates.
func TestSolverZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 32
	cost := randCostMatrix(rng, n, 100000)
	s := NewSolver()
	ctx := context.Background()

	coldOnce := func() {
		if err := s.Reset(n); err != nil {
			t.Fatal(err)
		}
		loadSolver(t, s, cost)
		if _, err := s.Solve(ctx); err != nil {
			t.Fatal(err)
		}
	}
	coldOnce() // grow every buffer to steady state
	if allocs := testing.AllocsPerRun(10, coldOnce); allocs != 0 {
		t.Fatalf("steady-state Reset+SetCost+Solve allocates %v/op, want 0", allocs)
	}

	// Warm path: perturb one edge per run. Cycle a fixed set of
	// perturbations so the instance stays bounded.
	k := 0
	warmOnce := func() {
		i, j := k%n, (k+1+k%(n-1))%n
		if i == j {
			j = (j + 1) % n
		}
		k++
		if err := s.SetCost(i, j, cost[i][j]/2+int64(k%97)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Warm(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 20; w++ { // warm up dirty-slice capacity and paths
		warmOnce()
	}
	if allocs := testing.AllocsPerRun(50, warmOnce); allocs != 0 {
		t.Fatalf("steady-state SetCost+Warm allocates %v/op, want 0", allocs)
	}
}

// benchWarmSolver returns a solved Solver and its cost matrix for warm
// benchmarks.
func benchWarmSolver(b *testing.B, n int) (*Solver, [][]int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	cost := randCostMatrix(rng, n, 1_000_000)
	s := NewSolver()
	if err := s.Reset(n); err != nil {
		b.Fatal(err)
	}
	loadSolver(b, s, cost)
	if _, err := s.Solve(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s, cost
}

func BenchmarkSolverCold64(b *testing.B)  { benchSolverCold(b, 64) }
func BenchmarkSolverCold256(b *testing.B) { benchSolverCold(b, 256) }

func benchSolverCold(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(3))
	cost := randCostMatrix(rng, n, 1_000_000)
	s := NewSolver()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(n); err != nil {
			b.Fatal(err)
		}
		loadSolver(b, s, cost)
		if _, err := s.Solve(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverWarm64(b *testing.B)  { benchSolverWarm(b, 64) }
func BenchmarkSolverWarm256(b *testing.B) { benchSolverWarm(b, 256) }

// benchSolverWarm measures the live-AP steady state: one edge cost moves
// per report, the solver re-solves warm.
func benchSolverWarm(b *testing.B, n int) {
	s, cost := benchWarmSolver(b, n)
	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		c := rng.Int63n(1_000_001)
		cost[i][j], cost[j][i] = c, c
		if err := s.SetCost(i, j, c); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Warm(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
