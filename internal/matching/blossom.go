package matching

// This file contains the primal-dual blossom machinery for maximum-weight
// matching on general graphs in O(n³). It follows the classic dense
// formulation (Galil's survey; the widely used contest realisation of it):
// vertices are 1-indexed, slots n+1..2n hold contracted blossoms, and dual
// feasibility is maintained with integer labels over doubled edge weights
// so that all dual adjustments stay integral.
//
// Invariants maintained between phases:
//   - lab[u] + lab[v] ≥ 2·w(u,v) for every edge (dual feasibility),
//   - equality holds on matched edges and within blossoms (tightness),
//   - st[x] maps every vertex/blossom to its outermost containing blossom.

type edge struct {
	u, v int
	w    int64
}

type blossomSolver struct {
	n   int // number of real vertices
	nx  int // current number of slots in use (n..2n)
	cap int // total slots = 2n+1

	g          [][]edge // dense adjacency, [cap][cap]
	lab        []int64  // dual variables, [cap]
	match      []int    // matched partner (real vertex id), [cap]
	slack      []int    // best outer vertex providing slack to x, [cap]
	st         []int    // outermost blossom containing x, [cap]
	pa         []int    // parent vertex in the alternating forest, [cap]
	flowerFrom [][]int  // [cap][cap]: sub-blossom of b containing real vertex x
	state      []int    // -1 unlabeled, 0 outer (S), 1 inner (T), [cap]
	vis        []int    // timestamps for LCA search, [cap]
	flower     [][]int  // sub-blossom lists for contracted blossoms, [cap]
	q          []int    // BFS queue of outer vertices
	qh         int      // BFS queue head index (pops advance qh, not the slice)
	rot        []int    // scratch for in-place blossom cycle rotation
	timer      int

	// stop is an optional cooperative-cancellation probe (nil = never stop).
	// It is polled at phase boundaries and every stopStride BFS pops, so a
	// cancelled solve abandons the instance within a bounded amount of work
	// instead of running O(n³) to completion.
	stop     func() bool
	stopTick int
	aborted  bool

	// stalled latches when a dual adjustment makes no progress (possible
	// only after warm-start dual surgery breaks the even-slack parity the
	// cold initialisation guarantees); callers fall back to a cold solve.
	stalled bool
}

// stopStride bounds how much BFS work runs between cancellation probes.
const stopStride = 64

// cancelled polls the stop probe (rate-limited) and latches the result.
func (s *blossomSolver) cancelled() bool {
	if s.aborted {
		return true
	}
	if s.stop == nil {
		return false
	}
	s.stopTick++
	if s.stopTick%stopStride != 0 {
		return false
	}
	if s.stop() {
		s.aborted = true
	}
	return s.aborted
}

const infWeight = int64(1) << 62

func newBlossom(n int) *blossomSolver {
	s := &blossomSolver{}
	s.reset(n)
	return s
}

// reset prepares the solver for an instance on n real vertices. Buffers are
// grown only when n exceeds every previously seen size, so steady-state
// reuse through a Solver allocates nothing.
func (s *blossomSolver) reset(n int) {
	capacity := 2*n + 1
	if capacity > s.cap {
		s.g = make([][]edge, capacity)
		for i := range s.g {
			s.g[i] = make([]edge, capacity)
			for j := range s.g[i] {
				s.g[i][j] = edge{u: i, v: j}
			}
		}
		s.lab = make([]int64, capacity)
		s.match = make([]int, capacity)
		s.slack = make([]int, capacity)
		s.st = make([]int, capacity)
		s.pa = make([]int, capacity)
		s.flowerFrom = make([][]int, capacity)
		for i := range s.flowerFrom {
			s.flowerFrom[i] = make([]int, capacity)
		}
		s.state = make([]int, capacity)
		s.vis = make([]int, capacity)
		s.flower = make([][]int, capacity)
		s.cap = capacity
	}
	s.n = n
	s.nx = n
	s.aborted = false
	s.stopTick = 0
	s.stalled = false
}

// setEdge writes a full real-vertex edge. Blossom contraction copies edge
// records between rows, so reusing the solver requires restoring the u/v
// endpoints alongside the weight — not just the weight.
func (s *blossomSolver) setEdge(u, v int, w int64) {
	s.g[u][v] = edge{u: u, v: v, w: w}
}

// eDelta is the (doubled) slack of an edge under the current duals.
func (s *blossomSolver) eDelta(e edge) int64 {
	return s.lab[e.u] + s.lab[e.v] - s.g[e.u][e.v].w*2
}

func (s *blossomSolver) updateSlack(u, x int) {
	if s.slack[x] == 0 || s.eDelta(s.g[u][x]) < s.eDelta(s.g[s.slack[x]][x]) {
		s.slack[x] = u
	}
}

func (s *blossomSolver) setSlack(x int) {
	s.slack[x] = 0
	for u := 1; u <= s.n; u++ {
		if s.g[u][x].w > 0 && s.st[u] != x && s.state[s.st[u]] == 0 {
			s.updateSlack(u, x)
		}
	}
}

func (s *blossomSolver) qPush(x int) {
	if x <= s.n {
		s.q = append(s.q, x)
		return
	}
	for _, sub := range s.flower[x] {
		s.qPush(sub)
	}
}

func (s *blossomSolver) setSt(x, b int) {
	s.st[x] = b
	if x > s.n {
		for _, sub := range s.flower[x] {
			s.setSt(sub, b)
		}
	}
}

// getPr locates sub-blossom xr within blossom b, re-orienting the cycle if
// xr sits at an odd position so that the even alternating path is used.
func (s *blossomSolver) getPr(b, xr int) int {
	pr := 0
	for i, sub := range s.flower[b] {
		if sub == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		// Reverse flower[b][1:] to flip the cycle orientation.
		fl := s.flower[b]
		for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
			fl[i], fl[j] = fl[j], fl[i]
		}
		return len(fl) - pr
	}
	return pr
}

// setMatch records that (the blossom containing) u is matched across the
// original edge g[u][v], recursively re-matching along blossom cycles.
func (s *blossomSolver) setMatch(u, v int) {
	s.match[u] = s.g[u][v].v
	if u <= s.n {
		return
	}
	e := s.g[u][v]
	xr := s.flowerFrom[u][e.u]
	pr := s.getPr(u, xr)
	for i := 0; i < pr; i++ {
		s.setMatch(s.flower[u][i], s.flower[u][i^1])
	}
	s.setMatch(xr, v)
	// Rotate so xr becomes the base of the blossom. The rotation runs
	// through a solver-owned scratch buffer so steady-state solves stay
	// allocation-free.
	fl := s.flower[u]
	s.rot = append(s.rot[:0], fl[:pr]...)
	copy(fl, fl[pr:])
	copy(fl[len(fl)-pr:], s.rot)
}

func (s *blossomSolver) augment(u, v int) {
	for {
		xnv := s.st[s.match[u]]
		s.setMatch(u, v)
		if xnv == 0 {
			return
		}
		s.setMatch(xnv, s.st[s.pa[xnv]])
		u, v = s.st[s.pa[xnv]], xnv
	}
}

func (s *blossomSolver) getLCA(u, v int) int {
	s.timer++
	t := s.timer
	for u != 0 || v != 0 {
		if u != 0 {
			if s.vis[u] == t {
				return u
			}
			s.vis[u] = t
			u = s.st[s.match[u]]
			if u != 0 {
				u = s.st[s.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (s *blossomSolver) addBlossom(u, lca, v int) {
	b := s.n + 1
	for b <= s.nx && s.st[b] != 0 {
		b++
	}
	if b > s.nx {
		s.nx++
	}
	s.lab[b] = 0
	s.state[b] = 0
	s.match[b] = s.match[lca]
	s.flower[b] = s.flower[b][:0]
	s.flower[b] = append(s.flower[b], lca)
	for x := u; x != lca; {
		s.flower[b] = append(s.flower[b], x)
		y := s.st[s.match[x]]
		s.flower[b] = append(s.flower[b], y)
		s.qPush(y)
		x = s.st[s.pa[y]]
	}
	// Reverse everything after the base so both arms are oriented
	// consistently around the odd cycle.
	fl := s.flower[b]
	for i, j := 1, len(fl)-1; i < j; i, j = i+1, j-1 {
		fl[i], fl[j] = fl[j], fl[i]
	}
	for x := v; x != lca; {
		s.flower[b] = append(s.flower[b], x)
		y := s.st[s.match[x]]
		s.flower[b] = append(s.flower[b], y)
		s.qPush(y)
		x = s.st[s.pa[y]]
	}
	s.setSt(b, b)
	for x := 1; x <= s.nx; x++ {
		s.g[b][x].w = 0
		s.g[x][b].w = 0
	}
	for x := 1; x <= s.n; x++ {
		s.flowerFrom[b][x] = 0
	}
	for _, xs := range s.flower[b] {
		for x := 1; x <= s.nx; x++ {
			if s.g[b][x].w == 0 || s.eDelta(s.g[xs][x]) < s.eDelta(s.g[b][x]) {
				s.g[b][x] = s.g[xs][x]
				s.g[x][b] = s.g[x][xs]
			}
		}
		for x := 1; x <= s.n; x++ {
			if s.flowerFrom[xs][x] != 0 {
				s.flowerFrom[b][x] = xs
			}
		}
	}
	s.setSlack(b)
}

func (s *blossomSolver) expandBlossom(b int) {
	for _, sub := range s.flower[b] {
		s.setSt(sub, sub)
	}
	xr := s.flowerFrom[b][s.g[b][s.pa[b]].u]
	pr := s.getPr(b, xr)
	for i := 0; i < pr; i += 2 {
		xs := s.flower[b][i]
		xns := s.flower[b][i+1]
		s.pa[xs] = s.g[xns][xs].u
		s.state[xs] = 1
		s.state[xns] = 0
		s.slack[xs] = 0
		s.setSlack(xns)
		s.qPush(xns)
	}
	s.state[xr] = 1
	s.pa[xr] = s.pa[b]
	for i := pr + 1; i < len(s.flower[b]); i++ {
		xs := s.flower[b][i]
		s.state[xs] = -1
		s.setSlack(xs)
	}
	s.st[b] = 0
}

// onFoundEdge handles a tight edge discovered from outer vertex e.u toward
// e.v. It returns true when an augmenting path was found and applied.
func (s *blossomSolver) onFoundEdge(e edge) bool {
	u, v := s.st[e.u], s.st[e.v]
	switch {
	case s.state[v] == -1:
		s.pa[v] = e.u
		s.state[v] = 1
		nu := s.st[s.match[v]]
		s.slack[v] = 0
		s.slack[nu] = 0
		s.state[nu] = 0
		s.qPush(nu)
	case s.state[v] == 0:
		lca := s.getLCA(u, v)
		if lca == 0 {
			s.augment(u, v)
			s.augment(v, u)
			return true
		}
		s.addBlossom(u, lca, v)
	}
	return false
}

// matchingPhase grows the alternating forest from all exposed outer
// vertices, adjusting duals until it either augments (true) or proves no
// augmenting path of positive gain exists (false).
func (s *blossomSolver) matchingPhase() bool {
	for i := 0; i <= s.nx; i++ {
		s.state[i] = -1
		s.slack[i] = 0
	}
	s.q, s.qh = s.q[:0], 0
	for x := 1; x <= s.nx; x++ {
		if s.st[x] == x && s.match[x] == 0 {
			s.pa[x] = 0
			s.state[x] = 0
			s.qPush(x)
		}
	}
	if len(s.q) == 0 {
		return false
	}
	for {
		if s.aborted {
			return false
		}
		for s.qh < len(s.q) {
			if s.cancelled() {
				return false
			}
			u := s.q[s.qh]
			s.qh++
			if s.state[s.st[u]] == 1 {
				continue
			}
			for v := 1; v <= s.n; v++ {
				if s.g[u][v].w > 0 && s.st[u] != s.st[v] {
					if s.eDelta(s.g[u][v]) == 0 {
						if s.onFoundEdge(s.g[u][v]) {
							return true
						}
					} else {
						s.updateSlack(u, s.st[v])
					}
				}
			}
		}
		d := infWeight
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b && s.state[b] == 1 {
				if half := s.lab[b] / 2; half < d {
					d = half
				}
			}
		}
		for x := 1; x <= s.nx; x++ {
			if s.st[x] == x && s.slack[x] != 0 {
				delta := s.eDelta(s.g[s.slack[x]][x])
				switch s.state[x] {
				case -1:
					if delta < d {
						d = delta
					}
				case 0:
					if half := delta / 2; half < d {
						d = half
					}
				}
			}
		}
		for u := 1; u <= s.n; u++ {
			switch s.state[s.st[u]] {
			case 0:
				if s.lab[u] <= d {
					return false // a free outer vertex's dual would hit zero
				}
				s.lab[u] -= d
			case 1:
				s.lab[u] += d
			}
		}
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b {
				switch s.state[b] {
				case 0:
					s.lab[b] += 2 * d
				case 1:
					s.lab[b] -= 2 * d
				}
			}
		}
		s.q, s.qh = s.q[:0], 0
		progressed := false
		for x := 1; x <= s.nx; x++ {
			// Mirror the d computation: only unlabeled (-1) and outer (0)
			// targets can act on a tight edge; onFoundEdge ignores inner
			// ones, so counting them as progress would mask a genuine stall.
			if s.st[x] == x && s.state[x] != 1 && s.slack[x] != 0 &&
				s.st[s.slack[x]] != x && s.eDelta(s.g[s.slack[x]][x]) == 0 {
				progressed = true
				if s.onFoundEdge(s.g[s.slack[x]][x]) {
					return true
				}
			}
		}
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b && s.state[b] == 1 && s.lab[b] == 0 {
				progressed = true
				s.expandBlossom(b)
			}
		}
		if d == 0 && !progressed {
			// A zero dual adjustment that neither tightened an edge nor
			// expanded a blossom would loop forever. The cold start keeps
			// all outer-outer slacks even so this cannot happen; warm-start
			// dual surgery can break that parity, in which case the caller
			// re-solves cold.
			s.stalled = true
			return false
		}
	}
}

// solve runs augmentation phases to completion and returns the total weight
// of the matching left in s.match.
func (s *blossomSolver) solve() int64 {
	s.aborted, s.stopTick, s.stalled = false, 0, false
	for i := range s.match {
		s.match[i] = 0
	}
	s.nx = s.n
	var wMax int64
	for u := 0; u <= s.n; u++ {
		s.st[u] = u
		s.flower[u] = nil
	}
	for u := 1; u <= s.n; u++ {
		for v := 1; v <= s.n; v++ {
			if u == v {
				s.flowerFrom[u][v] = u
			} else {
				s.flowerFrom[u][v] = 0
			}
			if s.g[u][v].w > wMax {
				wMax = s.g[u][v].w
			}
		}
	}
	for u := 1; u <= s.n; u++ {
		s.lab[u] = wMax
	}
	for s.matchingPhase() {
	}
	var total int64
	for u := 1; u <= s.n; u++ {
		if s.match[u] != 0 && s.match[u] < u {
			total += s.g[u][s.match[u]].w
		}
	}
	return total
}

// ---- Warm-start machinery ------------------------------------------------
//
// A finished solve leaves behind dual variables, a matching, and a forest of
// contracted blossoms. When only a few edge weights change, re-solving from
// that state is far cheaper than a cold solve: the matching loses at most a
// handful of edges, so only a few augmentation phases run instead of n/2.
//
// The state is made safe to resume from in two steps:
//
//  1. dissolveBlossoms flattens the blossom forest. Each blossom's dual z is
//     distributed half-and-half onto the real vertices it contains, which
//     preserves dual feasibility everywhere (constraints spanning the
//     blossom gained z/2 per inside endpoint, constraints inside it needed
//     exactly z to stay non-negative) and keeps matched in-blossom edges
//     tight. Matched edges crossing a blossom boundary gain slack and are
//     unmatched by the tightness sweep that follows.
//
//  2. The caller re-writes the edited edge weights, restores feasibility by
//     raising a violated edge's first endpoint dual by the deficit (raising
//     a dual never breaks feasibility elsewhere), and unmatches every
//     matched edge that is no longer tight. The result is indistinguishable
//     from a cold solve's mid-run state, so running matchingPhase to
//     quiescence completes the matching.

// distributeDual folds blossom b's dual down onto the real vertices it
// contains, recursively dissolves its sub-blossoms, and frees slot b.
func (s *blossomSolver) distributeDual(b int) {
	if b <= s.n {
		return
	}
	if half := s.lab[b] / 2; half != 0 {
		for x := 1; x <= s.n; x++ {
			if s.flowerFrom[b][x] != 0 {
				s.lab[x] += half
			}
		}
	}
	for _, sub := range s.flower[b] {
		s.distributeDual(sub)
	}
	s.lab[b] = 0
	s.match[b] = 0
	s.st[b] = 0
	s.flower[b] = s.flower[b][:0]
}

// dissolveBlossoms flattens the blossom forest left by a previous solve,
// leaving only real vertices with (still feasible) duals and a matching
// whose edges may have lost tightness — the caller sweeps and unmatches
// those before resuming phases.
func (s *blossomSolver) dissolveBlossoms() {
	for b := s.n + 1; b <= s.nx; b++ {
		if s.st[b] == b {
			s.distributeDual(b)
		}
	}
	s.nx = s.n
	for u := 1; u <= s.n; u++ {
		s.st[u] = u
		row := s.flowerFrom[u]
		for v := 1; v <= s.n; v++ {
			row[v] = 0
		}
		row[u] = u
	}
}

// normalizeParity moves every real-vertex dual into one parity class.
//
// The augmentation machinery implicitly relies on parity homogeneity: the
// alternating forest only grows across tight edges (whose endpoint duals
// have equal parity, since doubled weights are even), so when every phase
// root starts in the same class, every outer–outer slack stays even and
// each zero dual adjustment coincides with a tight edge or an expandable
// blossom — the loop always progresses. Cold starts get this for free (all
// duals start equal); warm surgery distributes odd blossom half-duals onto
// subsets of vertices and can split free vertices across classes, leaving
// odd slacks between trees that no adjustment can ever tighten.
//
// Matched pairs (tight, hence parity-equal) in the wrong class get a
// tightness-preserving +1/−1 flip; unmatched wrong-class vertices are
// raised by 1. The −1 halves can create (even) feasibility deficits on
// unrelated edges, so a full repair sweep raises first endpoints to cover
// them — raising a dual only adds slack elsewhere, so one pass suffices.
// The caller re-runs unmatchLoose afterwards: a repair raise breaks the
// tightness of that vertex's matched edge.
func (s *blossomSolver) normalizeParity() {
	odd := 0
	for u := 1; u <= s.n; u++ {
		odd += int(s.lab[u] & 1)
	}
	var target int64
	if 2*odd > s.n {
		target = 1
	}
	lowered := false
	for u := 1; u <= s.n; u++ {
		if s.lab[u]&1 == target {
			continue
		}
		v := s.match[u]
		switch {
		case v == 0 || s.lab[v]&1 == target:
			// Free vertex, or a (non-tight, parity-unequal) pair whose
			// other half is already in class: raise, which is always
			// feasibility-safe.
			s.lab[u]++
		case v > u:
			s.lab[u]++
			s.lab[v]--
			lowered = true
		}
	}
	if !lowered {
		return
	}
	for u := 1; u <= s.n; u++ {
		for v := u + 1; v <= s.n; v++ {
			if d := s.eDelta(s.g[u][v]); d < 0 {
				s.lab[u] -= d
			}
		}
	}
}

// unmatchLoose unmatches every real matched edge that is not tight under
// the current duals; the following phases re-augment the freed vertices.
func (s *blossomSolver) unmatchLoose() {
	for u := 1; u <= s.n; u++ {
		v := s.match[u]
		if v == 0 {
			continue
		}
		if s.match[v] != u || s.eDelta(s.g[u][v]) != 0 {
			s.match[u] = 0
			if s.match[v] == u {
				s.match[v] = 0
			}
		}
	}
}

// resume runs augmentation phases from the current (repaired) state. It
// reports false when the solve stalled on a dual-parity corner and must be
// redone cold.
func (s *blossomSolver) resume() bool {
	s.aborted, s.stopTick, s.stalled = false, 0, false
	for s.matchingPhase() {
	}
	return !s.stalled
}
