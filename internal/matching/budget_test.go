package matching

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randCosts builds a random symmetric cost matrix on n vertices.
func randCosts(rng *rand.Rand, n int, maxC int64) [][]int64 {
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := rng.Int63n(maxC)
			cost[i][j], cost[j][i] = c, c
		}
	}
	return cost
}

// TestMinCostPerfectCtxMatchesUncancelled: with a background context the ctx
// entry point must agree exactly with the plain one.
func TestMinCostPerfectCtxMatchesUncancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 * (1 + rng.Intn(8))
		cost := randCosts(rng, n, 1000)
		m1, t1, err := MinCostPerfect(cost)
		if err != nil {
			t.Fatal(err)
		}
		m2, t2, err := MinCostPerfectCtx(context.Background(), cost)
		if err != nil {
			t.Fatal(err)
		}
		if t1 != t2 {
			t.Fatalf("totals differ: %d vs %d", t1, t2)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("mates differ at %d: %d vs %d", i, m1[i], m2[i])
			}
		}
	}
}

// TestMinCostPerfectCtxCancelled: an already-cancelled context must surface
// context.Canceled, not a matching.
func TestMinCostPerfectCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	_, _, err := MinCostPerfectCtx(ctx, randCosts(rng, 40, 1_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestMinCostPerfectCtxDeadline: a deadline far too tight for a large
// instance must abort the solve promptly with DeadlineExceeded.
func TestMinCostPerfectCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cost := randCosts(rng, 200, 1_000_000_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	start := time.Now()
	_, _, err := MinCostPerfectCtx(ctx, cost)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("cancelled solve took %v, want bounded abort", e)
	}
}

// TestMaxWeightTooLarge: weights past the overflow-safe bound are rejected
// at the API boundary instead of corrupting the duals.
func TestMaxWeightTooLarge(t *testing.T) {
	huge := int64(math.MaxInt64 / 2)
	w := [][]int64{{0, huge}, {huge, 0}}
	if _, _, err := MaxWeight(w); !errors.Is(err, ErrWeightTooLarge) {
		t.Fatalf("got %v, want ErrWeightTooLarge", err)
	}
}

// TestMinCostPerfectFloatCtx: the float entry point honours cancellation —
// previously it routed through the context-free solver, so a daemon rung
// using float costs could not be abandoned on deadline — and with a live
// context it agrees exactly with the wrapper.
func TestMinCostPerfectFloatCtx(t *testing.T) {
	ok := [][]float64{{0, 2.5, 9, 9}, {2.5, 0, 9, 9}, {9, 9, 0, 1.5}, {9, 9, 1.5, 0}}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MinCostPerfectFloatCtx(cancelled, ok, 1e-6); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	m1, t1, err := MinCostPerfectFloatCtx(context.Background(), ok, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	m2, t2, err := MinCostPerfectFloat(ok, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("totals differ: %v vs %v", t1, t2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("mates differ at %d: %d vs %d", i, m1[i], m2[i])
		}
	}
}

// TestMinCostPerfectFloatCtxDeadline: a large float instance under an
// immediate deadline aborts promptly instead of running to completion.
func TestMinCostPerfectFloatCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := rng.Float64() * 1e6
			cost[i][j], cost[j][i] = c, c
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	start := time.Now()
	if _, _, err := MinCostPerfectFloatCtx(ctx, cost, 1e-3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("cancelled solve took %v, want bounded abort", e)
	}
}

// TestMinCostPerfectFloatValidation: NaN/Inf/negative float costs and bad
// quanta are rejected; valid input agrees with the integer solver.
func TestMinCostPerfectFloatValidation(t *testing.T) {
	nan := [][]float64{{0, math.NaN()}, {math.NaN(), 0}}
	if _, _, err := MinCostPerfectFloat(nan, 1e-9); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN: got %v, want ErrNonFinite", err)
	}
	inf := [][]float64{{0, math.Inf(1)}, {math.Inf(1), 0}}
	if _, _, err := MinCostPerfectFloat(inf, 1e-9); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf: got %v, want ErrNonFinite", err)
	}
	neg := [][]float64{{0, -1}, {-1, 0}}
	if _, _, err := MinCostPerfectFloat(neg, 1e-9); !errors.Is(err, ErrNegativeCost) {
		t.Fatalf("negative: got %v, want ErrNegativeCost", err)
	}
	ragged := [][]float64{{0, 1}, {1}}
	if _, _, err := MinCostPerfectFloat(ragged, 1e-9); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	ok := [][]float64{{0, 2.5, 9, 9}, {2.5, 0, 9, 9}, {9, 9, 0, 1.5}, {9, 9, 1.5, 0}}
	for _, quantum := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := MinCostPerfectFloat(ok, quantum); err == nil {
			t.Fatalf("quantum %v accepted", quantum)
		}
	}
	mate, total, err := MinCostPerfectFloat(ok, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if mate[0] != 1 || mate[2] != 3 {
		t.Fatalf("unexpected matching %v", mate)
	}
	if math.Abs(total-4.0) > 1e-12 {
		t.Fatalf("total = %v, want 4", total)
	}
}
