package session

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Binary layouts, all big-endian, in the style of the daemon's report
// codec: explicit magics, length prefixes and CRC-32 (IEEE) guards, with
// every decode failure mapped to a named error so callers can count it.

const (
	// HandoffMagic identifies AP-to-AP session-transfer messages;
	// deliberately distinct from the report and frame magics so a
	// misdirected datagram is rejected at the first two bytes.
	HandoffMagic = 0x51D0
	// HandoffVersion is the current transfer wire version.
	HandoffVersion = 1
	// handoffTypeSession is the only message type so far.
	handoffTypeSession = 1
	// handoffOverhead: magic(2) version(1) type(1) length(4) transfer(8)
	// + trailing CRC(4).
	handoffOverhead = 20

	// maxHistoryWire caps the history entries one encoded state may carry;
	// anything larger in a count byte is corruption or an attack.
	maxHistoryWire = 64

	// stateFixedLen is the encoded size of a history-free state.
	stateFixedLen = 50

	// snapMagic/snapVersion head the snapshot file.
	snapMagic   = 0x53455353 // "SESS"
	snapVersion = 1
)

// Decode reject reasons.
var (
	ErrHandoffShort    = errors.New("session: handoff message too short")
	ErrHandoffMagic    = errors.New("session: bad handoff magic")
	ErrHandoffVersion  = errors.New("session: unsupported handoff version")
	ErrHandoffType     = errors.New("session: unknown handoff type")
	ErrHandoffLength   = errors.New("session: handoff length prefix inconsistent with message")
	ErrHandoffCRC      = errors.New("session: handoff CRC mismatch")
	ErrStateCorrupt    = errors.New("session: corrupt session state")
	ErrSnapshotCorrupt = errors.New("session: corrupt snapshot")
	ErrRecordCorrupt   = errors.New("session: corrupt WAL record")
)

// appendState encodes st after buf. Layout:
//
//	offset  size  field
//	0       4     station
//	4       4     AP
//	8       4     epoch
//	12      4     seq
//	16      4     SNR milli-dB (signed)
//	20      8     first seen (unix nanos, signed)
//	28      8     last seen
//	36      4     resumes
//	40      4     handoffs
//	44      4     last partner
//	48      1     last level
//	49      1     history length H (<= 64)
//	50      12H   history entries: SNR milli-dB (4) + unix nanos (8)
func appendState(buf []byte, st *State) []byte {
	var fixed [stateFixedLen]byte
	binary.BigEndian.PutUint32(fixed[0:4], st.Station)
	binary.BigEndian.PutUint32(fixed[4:8], st.AP)
	binary.BigEndian.PutUint32(fixed[8:12], st.Epoch)
	binary.BigEndian.PutUint32(fixed[12:16], st.Seq)
	binary.BigEndian.PutUint32(fixed[16:20], uint32(st.SNRMilliDB))
	binary.BigEndian.PutUint64(fixed[20:28], uint64(st.FirstSeen))
	binary.BigEndian.PutUint64(fixed[28:36], uint64(st.LastSeen))
	binary.BigEndian.PutUint32(fixed[36:40], st.Resumes)
	binary.BigEndian.PutUint32(fixed[40:44], st.Handoffs)
	binary.BigEndian.PutUint32(fixed[44:48], st.LastPartner)
	fixed[48] = st.LastLevel
	hist := st.History
	if len(hist) > maxHistoryWire {
		hist = hist[len(hist)-maxHistoryWire:]
	}
	fixed[49] = byte(len(hist))
	buf = append(buf, fixed[:]...)
	for _, h := range hist {
		var e [12]byte
		binary.BigEndian.PutUint32(e[0:4], uint32(h.SNRMilliDB))
		binary.BigEndian.PutUint64(e[4:12], uint64(h.At))
		buf = append(buf, e[:]...)
	}
	return buf
}

// decodeState parses one encoded state from the front of buf, returning it
// and the bytes consumed.
func decodeState(buf []byte) (State, int, error) {
	if len(buf) < stateFixedLen {
		return State{}, 0, ErrStateCorrupt
	}
	st := State{
		Station:     binary.BigEndian.Uint32(buf[0:4]),
		AP:          binary.BigEndian.Uint32(buf[4:8]),
		Epoch:       binary.BigEndian.Uint32(buf[8:12]),
		Seq:         binary.BigEndian.Uint32(buf[12:16]),
		SNRMilliDB:  int32(binary.BigEndian.Uint32(buf[16:20])),
		FirstSeen:   int64(binary.BigEndian.Uint64(buf[20:28])),
		LastSeen:    int64(binary.BigEndian.Uint64(buf[28:36])),
		Resumes:     binary.BigEndian.Uint32(buf[36:40]),
		Handoffs:    binary.BigEndian.Uint32(buf[40:44]),
		LastPartner: binary.BigEndian.Uint32(buf[44:48]),
		LastLevel:   buf[48],
	}
	if st.Station == 0 || st.Station == ^uint32(0) {
		return State{}, 0, ErrStateCorrupt
	}
	if st.SNRMilliDB > MaxSNRMilliDB || st.SNRMilliDB < -MaxSNRMilliDB {
		return State{}, 0, ErrStateCorrupt
	}
	histLen := int(buf[49])
	if histLen > maxHistoryWire {
		return State{}, 0, ErrStateCorrupt
	}
	n := stateFixedLen + 12*histLen
	if len(buf) < n {
		return State{}, 0, ErrStateCorrupt
	}
	if histLen > 0 {
		st.History = make([]HistObs, histLen)
		for i := 0; i < histLen; i++ {
			e := buf[stateFixedLen+12*i:]
			st.History[i] = HistObs{
				SNRMilliDB: int32(binary.BigEndian.Uint32(e[0:4])),
				At:         int64(binary.BigEndian.Uint64(e[4:12])),
			}
		}
	}
	return st, n, nil
}

// EncodeHandoff serialises one session transfer:
//
//	offset  size  field
//	0       2     magic 0x51D0
//	2       1     version (1)
//	3       1     type (1 = session transfer)
//	4       4     total message length (length prefix)
//	8       8     transfer ID (idempotency token; replays are detected by it)
//	16      var   encoded session state
//	end-4   4     CRC-32 (IEEE) over everything before it
func EncodeHandoff(transfer uint64, st State) []byte {
	buf := make([]byte, 16, handoffOverhead+stateFixedLen+12*len(st.History))
	binary.BigEndian.PutUint16(buf[0:2], HandoffMagic)
	buf[2] = HandoffVersion
	buf[3] = handoffTypeSession
	binary.BigEndian.PutUint64(buf[8:16], transfer)
	buf = appendState(buf, &st)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(buf)+4))
	sum := crc32.ChecksumIEEE(buf)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], sum)
	return append(buf, crc[:]...)
}

// DecodeHandoff parses and validates one transfer message. Every failure
// maps to one of the Err* reasons above.
func DecodeHandoff(buf []byte) (transfer uint64, st State, err error) {
	if len(buf) < handoffOverhead+stateFixedLen {
		return 0, State{}, ErrHandoffShort
	}
	if binary.BigEndian.Uint16(buf[0:2]) != HandoffMagic {
		return 0, State{}, ErrHandoffMagic
	}
	if buf[2] != HandoffVersion {
		return 0, State{}, ErrHandoffVersion
	}
	if buf[3] != handoffTypeSession {
		return 0, State{}, ErrHandoffType
	}
	if binary.BigEndian.Uint32(buf[4:8]) != uint32(len(buf)) {
		return 0, State{}, ErrHandoffLength
	}
	if crc32.ChecksumIEEE(buf[:len(buf)-4]) != binary.BigEndian.Uint32(buf[len(buf)-4:]) {
		return 0, State{}, ErrHandoffCRC
	}
	transfer = binary.BigEndian.Uint64(buf[8:16])
	st, n, err := decodeState(buf[16 : len(buf)-4])
	if err != nil {
		return 0, State{}, err
	}
	if 16+n+4 != len(buf) {
		return 0, State{}, ErrHandoffLength
	}
	return transfer, st, nil
}

// WAL record payloads. The framing (length prefix + CRC, torn-tail
// truncation) lives in atomicio.Log; these payloads carry a type byte and
// the typed fields.
const (
	walObs     = 1 // one accepted observation
	walPairing = 2 // last pairing outcome changed
	walRemove  = 3 // session handed off away (or dropped)
	walHandin  = 4 // session received from a peer
)

// walRecord is one decoded WAL payload; which fields are meaningful
// depends on kind.
type walRecord struct {
	kind     byte
	station  uint32
	ap       uint32
	seq      uint32
	snr      int32
	at       int64
	partner  uint32
	level    uint8
	transfer uint64
	state    State // walHandin only
}

func encodeObsRecord(o Obs) []byte {
	buf := make([]byte, 25)
	buf[0] = walObs
	binary.BigEndian.PutUint32(buf[1:5], o.Station)
	binary.BigEndian.PutUint32(buf[5:9], o.AP)
	binary.BigEndian.PutUint32(buf[9:13], o.Seq)
	binary.BigEndian.PutUint32(buf[13:17], uint32(o.SNRMilliDB))
	binary.BigEndian.PutUint64(buf[17:25], uint64(o.At.UnixNano()))
	return buf
}

func encodePairingRecord(station, partner uint32, level uint8, at int64) []byte {
	buf := make([]byte, 18)
	buf[0] = walPairing
	binary.BigEndian.PutUint32(buf[1:5], station)
	binary.BigEndian.PutUint32(buf[5:9], partner)
	buf[9] = level
	binary.BigEndian.PutUint64(buf[10:18], uint64(at))
	return buf
}

func encodeRemoveRecord(station uint32, transfer uint64, at int64) []byte {
	buf := make([]byte, 21)
	buf[0] = walRemove
	binary.BigEndian.PutUint32(buf[1:5], station)
	binary.BigEndian.PutUint64(buf[5:13], transfer)
	binary.BigEndian.PutUint64(buf[13:21], uint64(at))
	return buf
}

func encodeHandinRecord(transfer uint64, at int64, st *State) []byte {
	buf := make([]byte, 17, 17+stateFixedLen+12*len(st.History))
	buf[0] = walHandin
	binary.BigEndian.PutUint64(buf[1:9], transfer)
	binary.BigEndian.PutUint64(buf[9:17], uint64(at))
	return appendState(buf, st)
}

// decodeWALRecord parses one WAL payload. The framing CRC already rejected
// bit rot; failures here mean version drift or a buggy writer, and the
// replay loop skips (and counts) them rather than aborting recovery.
func decodeWALRecord(p []byte) (walRecord, error) {
	if len(p) == 0 {
		return walRecord{}, ErrRecordCorrupt
	}
	r := walRecord{kind: p[0]}
	body := p[1:]
	switch r.kind {
	case walObs:
		if len(body) != 24 {
			return walRecord{}, ErrRecordCorrupt
		}
		r.station = binary.BigEndian.Uint32(body[0:4])
		r.ap = binary.BigEndian.Uint32(body[4:8])
		r.seq = binary.BigEndian.Uint32(body[8:12])
		r.snr = int32(binary.BigEndian.Uint32(body[12:16]))
		r.at = int64(binary.BigEndian.Uint64(body[16:24]))
	case walPairing:
		if len(body) != 17 {
			return walRecord{}, ErrRecordCorrupt
		}
		r.station = binary.BigEndian.Uint32(body[0:4])
		r.partner = binary.BigEndian.Uint32(body[4:8])
		r.level = body[8]
		r.at = int64(binary.BigEndian.Uint64(body[9:17]))
	case walRemove:
		if len(body) != 20 {
			return walRecord{}, ErrRecordCorrupt
		}
		r.station = binary.BigEndian.Uint32(body[0:4])
		r.transfer = binary.BigEndian.Uint64(body[4:12])
		r.at = int64(binary.BigEndian.Uint64(body[12:20]))
	case walHandin:
		if len(body) < 16+stateFixedLen {
			return walRecord{}, ErrRecordCorrupt
		}
		r.transfer = binary.BigEndian.Uint64(body[0:8])
		r.at = int64(binary.BigEndian.Uint64(body[8:16]))
		st, n, err := decodeState(body[16:])
		if err != nil {
			return walRecord{}, err
		}
		if 16+n != len(body) {
			return walRecord{}, ErrRecordCorrupt
		}
		r.state = st
	default:
		return walRecord{}, ErrRecordCorrupt
	}
	return r, nil
}

// encodeSnapshot serialises the whole session table plus the applied
// transfer-ID set:
//
//	u32 magic "SESS" | u16 version | u32 #sessions | states... |
//	u32 #transfers | u64 transfer IDs... | u32 CRC over all preceding bytes
func encodeSnapshot(states []State, transfers []uint64) []byte {
	buf := make([]byte, 10, 14+len(states)*(stateFixedLen+12*8)+8*len(transfers))
	binary.BigEndian.PutUint32(buf[0:4], snapMagic)
	binary.BigEndian.PutUint16(buf[4:6], snapVersion)
	binary.BigEndian.PutUint32(buf[6:10], uint32(len(states)))
	for i := range states {
		buf = appendState(buf, &states[i])
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(transfers)))
	buf = append(buf, n[:]...)
	for _, tr := range transfers {
		var t [8]byte
		binary.BigEndian.PutUint64(t[:], tr)
		buf = append(buf, t[:]...)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// decodeSnapshot parses a snapshot file. Any inconsistency returns
// ErrSnapshotCorrupt: the caller starts cold (and replays the WAL) rather
// than trusting a damaged image, since atomicio guarantees a snapshot is
// either fully old or fully new — arbitrary damage means the disk, not a
// torn write.
func decodeSnapshot(data []byte) ([]State, []uint64, error) {
	if len(data) < 18 {
		return nil, nil, ErrSnapshotCorrupt
	}
	if binary.BigEndian.Uint32(data[0:4]) != snapMagic {
		return nil, nil, ErrSnapshotCorrupt
	}
	if binary.BigEndian.Uint16(data[4:6]) != snapVersion {
		return nil, nil, ErrSnapshotCorrupt
	}
	if crc32.ChecksumIEEE(data[:len(data)-4]) != binary.BigEndian.Uint32(data[len(data)-4:]) {
		return nil, nil, ErrSnapshotCorrupt
	}
	nStates := binary.BigEndian.Uint32(data[6:10])
	rest := data[10 : len(data)-4]
	states := make([]State, 0, nStates)
	for i := uint32(0); i < nStates; i++ {
		st, n, err := decodeState(rest)
		if err != nil {
			return nil, nil, ErrSnapshotCorrupt
		}
		states = append(states, st)
		rest = rest[n:]
	}
	if len(rest) < 4 {
		return nil, nil, ErrSnapshotCorrupt
	}
	nTransfers := binary.BigEndian.Uint32(rest[0:4])
	rest = rest[4:]
	if uint32(len(rest)) != 8*nTransfers {
		return nil, nil, ErrSnapshotCorrupt
	}
	transfers := make([]uint64, 0, nTransfers)
	for i := uint32(0); i < nTransfers; i++ {
		transfers = append(transfers, binary.BigEndian.Uint64(rest[8*i:8*i+8]))
	}
	return states, transfers, nil
}
