package session

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func TestSeqAdvance(t *testing.T) {
	cases := []struct {
		name         string
		old, new     uint32
		advance, rst bool
	}{
		{"equal", 10, 10, false, false},
		{"next", 10, 11, true, false},
		{"big jump", 10, 10_000, true, false},
		{"behind", 10, 9, false, false},
		{"wraparound", ^uint32(0) - 2, 2, true, false},
		{"reboot to 1", 40, 1, true, true},
		{"reboot to window edge", 40, SeqResetWindow, true, true},
		{"behind past window", 40, SeqResetWindow + 1, false, false},
		{"reorder inside window", 5, 3, false, false},
		{"zero never resets", 40, 0, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			adv, rst := SeqAdvance(c.old, c.new)
			if adv != c.advance || rst != c.rst {
				t.Fatalf("SeqAdvance(%d, %d) = (%v, %v), want (%v, %v)",
					c.old, c.new, adv, rst, c.advance, c.rst)
			}
		})
	}
}

func mustOpen(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg, t0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func obs(station, ap, seq uint32, snr int32, at time.Time) Obs {
	return Obs{Station: station, AP: ap, Seq: seq, SNRMilliDB: snr, At: at}
}

func TestObserveLifecycle(t *testing.T) {
	m := mustOpen(t, Config{HistoryLen: 3, ResumeGap: time.Minute})

	if r := m.Observe(obs(7, 1, 10, 12_000, t0)); r.Outcome != OutcomeNew {
		t.Fatalf("first report outcome = %v", r.Outcome)
	}
	if r := m.Observe(obs(7, 1, 11, 12_500, t0.Add(time.Second))); r.Outcome != OutcomeAdvance {
		t.Fatalf("second report outcome = %v", r.Outcome)
	}
	// Replay of seq 11 is stale.
	if r := m.Observe(obs(7, 1, 11, 12_500, t0.Add(2*time.Second))); r.Outcome != OutcomeStale {
		t.Fatalf("replay outcome = %v", r.Outcome)
	}
	// Move to AP 2: roam, previous AP reported for cleanup.
	r := m.Observe(obs(7, 2, 12, 9_000, t0.Add(3*time.Second)))
	if r.Outcome != OutcomeRoam || !r.Roamed || r.PrevAP != 1 {
		t.Fatalf("roam = %+v", r)
	}
	// Reboot: seq falls back inside the reset window.
	if r := m.Observe(obs(7, 2, 1, 9_100, t0.Add(4*time.Second))); r.Outcome != OutcomeResume {
		t.Fatalf("reboot outcome = %v", r.Outcome)
	}
	st, ok := m.Get(7)
	if !ok {
		t.Fatal("session lost")
	}
	if st.Epoch != 1 || st.Resumes != 1 || st.AP != 2 || st.Seq != 1 {
		t.Fatalf("post-reboot state = %+v", st)
	}
	if st.FirstSeen != t0.UnixNano() {
		t.Fatalf("FirstSeen moved: %d", st.FirstSeen)
	}
	if len(st.History) != 3 {
		t.Fatalf("history len = %d, want capped at 3", len(st.History))
	}
	// Return after a long gap: resume without an epoch reset.
	if r := m.Observe(obs(7, 2, 2, 8_000, t0.Add(10*time.Minute))); r.Outcome != OutcomeResume {
		t.Fatalf("gap return outcome = %v", r.Outcome)
	}
	st, _ = m.Get(7)
	if st.Resumes != 2 || st.Epoch != 1 {
		t.Fatalf("post-gap state = %+v", st)
	}
}

func TestObserveEvictionBound(t *testing.T) {
	m := mustOpen(t, Config{MaxSessions: 4})
	for i := uint32(1); i <= 6; i++ {
		m.Observe(obs(i, 1, 1, 1_000, t0.Add(time.Duration(i)*time.Second)))
	}
	if m.Len() != 4 {
		t.Fatalf("len = %d, want bound 4", m.Len())
	}
	// The oldest stations were evicted; the newest survive.
	if _, ok := m.Get(1); ok {
		t.Fatal("oldest session not evicted")
	}
	if _, ok := m.Get(6); !ok {
		t.Fatal("newest session evicted")
	}
}

func TestSnapshotWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir, HistoryLen: 4})
	m.Observe(obs(3, 1, 5, 11_000, t0))
	m.Observe(obs(4, 1, 9, 7_500, t0.Add(time.Second)))
	m.Observe(obs(3, 2, 6, 10_000, t0.Add(2*time.Second)))
	m.NotePairing(3, 4, 1, t0.Add(3*time.Second))
	want := m.Sessions()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, Config{Dir: dir, HistoryLen: 4})
	defer m2.Close()
	rec := m2.Recovery()
	if rec.SnapshotSessions != 2 || rec.WALRecords != 0 || rec.WALTorn || rec.SnapshotCorrupt {
		t.Fatalf("clean-close recovery = %+v, want snapshot-only", rec)
	}
	if got := m2.Sessions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored sessions differ:\n got %+v\nwant %+v", got, want)
	}
	st, _ := m2.Get(3)
	if st.LastPartner != 4 || st.LastLevel != 1 {
		t.Fatalf("pairing outcome lost: %+v", st)
	}
}

func TestKillRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	m.Observe(obs(5, 1, 1, 4_000, t0))
	m.Observe(obs(5, 1, 2, 4_200, t0.Add(time.Second)))
	want := m.Sessions()
	m.Kill() // no snapshot: recovery must come from the WAL

	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	rec := m2.Recovery()
	if rec.WALRecords != 2 || rec.SnapshotSessions != 0 {
		t.Fatalf("kill recovery = %+v, want 2 WAL records", rec)
	}
	if got := m2.Sessions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("WAL recovery differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestTornWALRecovers(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	m.Observe(obs(5, 1, 1, 4_000, t0))
	m.Kill()

	// Tear the tail: append garbage that cannot parse as a frame.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	rec := m2.Recovery()
	if !rec.WALTorn || rec.WALRecords != 1 {
		t.Fatalf("torn recovery = %+v, want torn with 1 intact record", rec)
	}
	if _, ok := m2.Get(5); !ok {
		t.Fatal("intact record lost")
	}
}

func TestCrashBetweenSnapshotAndReset(t *testing.T) {
	// A snapshot that already contains the WAL's records (the crash window
	// between snapshot commit and WAL reset) must not double-apply.
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	m.Observe(obs(9, 1, 3, 2_000, t0))
	if err := m.compactLocked(); err != nil { // snapshot now reflects the obs
		t.Fatal(err)
	}
	// Simulate the crash: re-append the same record as if Reset never ran.
	m.appendLocked(encodeObsRecord(obs(9, 1, 3, 2_000, t0)))
	m.Kill()

	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	st, ok := m2.Get(9)
	if !ok {
		t.Fatal("session lost")
	}
	if st.Resumes != 0 || st.Epoch != 0 || st.Seq != 3 || len(st.History) != 1 {
		t.Fatalf("stale replay mutated state: %+v", st)
	}
}

func TestApplyHandoffIdempotent(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	in := State{
		Station: 11, AP: 1, Seq: 20, SNRMilliDB: 6_000,
		FirstSeen: t0.UnixNano(), LastSeen: t0.Add(time.Second).UnixNano(),
		History: []HistObs{{SNRMilliDB: 6_000, At: t0.UnixNano()}},
	}
	if !m.ApplyHandoff(42, in, t0.Add(2*time.Second)) {
		t.Fatal("first transfer not applied")
	}
	if m.ApplyHandoff(42, in, t0.Add(3*time.Second)) {
		t.Fatal("replayed transfer applied twice")
	}
	st, _ := m.Get(11)
	if st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", st.Handoffs)
	}
	m.Kill()

	// Idempotency survives a crash: the handin is in the WAL, so a replay
	// of the same transfer after restart is still a duplicate.
	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if m2.ApplyHandoff(42, in, t0.Add(4*time.Second)) {
		t.Fatal("transfer applied again after restart")
	}
	st, ok := m2.Get(11)
	if !ok {
		t.Fatal("handed-in session lost across restart")
	}
	if st.Handoffs != 1 {
		t.Fatalf("handoffs after restart = %d, want 1", st.Handoffs)
	}
}

func TestApplyHandoffPrefersFresherLocal(t *testing.T) {
	m := mustOpen(t, Config{})
	m.Observe(obs(11, 2, 30, 5_000, t0.Add(time.Minute)))
	stale := State{Station: 11, AP: 1, Seq: 20, LastSeen: t0.UnixNano()}
	if m.ApplyHandoff(43, stale, t0.Add(2*time.Minute)) {
		t.Fatal("stale transfer overwrote fresher local session")
	}
	st, _ := m.Get(11)
	if st.AP != 2 || st.Seq != 30 {
		t.Fatalf("local session mutated: %+v", st)
	}
	// The transfer ID was still consumed.
	if m.ApplyHandoff(43, stale, t0.Add(3*time.Minute)) {
		t.Fatal("consumed transfer applied later")
	}
}

func TestRemoveAfterHandoffOut(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	m.Observe(obs(13, 1, 2, 3_000, t0))
	if !m.Remove(13, 99, t0.Add(time.Second)) {
		t.Fatal("remove did nothing")
	}
	if _, ok := m.Get(13); ok {
		t.Fatal("session survived removal")
	}
	if m.Remove(13, 99, t0.Add(2*time.Second)) {
		t.Fatal("replayed removal reported removed")
	}
	m.Kill()

	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	if _, ok := m2.Get(13); ok {
		t.Fatal("removed session resurrected by WAL replay")
	}
}

func TestCorruptSnapshotDegradesToWAL(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir})
	m.Observe(obs(5, 1, 1, 4_000, t0))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	rec := m2.Recovery()
	if !rec.SnapshotCorrupt {
		t.Fatal("corruption not reported")
	}
	// The WAL was reset at clean close, so the table is cold — but startup
	// succeeded and the rewritten snapshot is valid again.
	if m2.Len() != 0 {
		t.Fatalf("sessions from corrupt snapshot: %d", m2.Len())
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3 := mustOpen(t, Config{Dir: dir})
	defer m3.Close()
	if m3.Recovery().SnapshotCorrupt {
		t.Fatal("snapshot not healed by compaction")
	}
}

func TestCompactionCadence(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir, SnapshotEvery: 3})
	for i := uint32(1); i <= 7; i++ {
		m.Observe(obs(20, 1, i, 1_000, t0.Add(time.Duration(i)*time.Second)))
	}
	// 7 appends with SnapshotEvery=3: compacted at 3 and 6, one record left.
	if got := m.log.Records(); got != 1 {
		t.Fatalf("WAL records after cadence compaction = %d, want 1", got)
	}
	m.Kill()
	m2 := mustOpen(t, Config{Dir: dir})
	defer m2.Close()
	st, ok := m2.Get(20)
	if !ok || st.Seq != 7 {
		t.Fatalf("recovered seq = %+v, want 7", st)
	}
}

func TestHandoffCodecRoundtrip(t *testing.T) {
	st := State{
		Station: 77, AP: 3, Epoch: 2, Seq: 1234, SNRMilliDB: -15_000,
		FirstSeen: t0.UnixNano(), LastSeen: t0.Add(time.Hour).UnixNano(),
		Resumes: 3, Handoffs: 1, LastPartner: 78, LastLevel: 2,
		History: []HistObs{
			{SNRMilliDB: -15_200, At: t0.UnixNano()},
			{SNRMilliDB: -15_000, At: t0.Add(time.Minute).UnixNano()},
		},
	}
	buf := EncodeHandoff(0xDEADBEEFCAFE, st)
	tr, got, err := DecodeHandoff(buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 0xDEADBEEFCAFE {
		t.Fatalf("transfer = %#x", tr)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, st)
	}

	// Every byte matters: flipping any one must fail decode.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeHandoff(mut); err == nil {
			t.Fatalf("flip at byte %d still decoded", i)
		}
	}
}

func FuzzDecodeHandoff(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHandoff(1, State{Station: 1, AP: 1, LastSeen: 5}))
	f.Add(EncodeHandoff(^uint64(0), State{
		Station: 9, AP: 2, Seq: 3, History: []HistObs{{SNRMilliDB: 1, At: 2}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, st, err := DecodeHandoff(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical message.
		if got := EncodeHandoff(tr, st); string(got) != string(data) {
			t.Fatalf("decode/encode not a fixed point:\n in  %x\n out %x", data, got)
		}
		if st.Station == 0 || st.Station == ^uint32(0) {
			t.Fatalf("invalid station %d decoded", st.Station)
		}
		if st.SNRMilliDB > MaxSNRMilliDB || st.SNRMilliDB < -MaxSNRMilliDB {
			t.Fatalf("out-of-range SNR %d decoded", st.SNRMilliDB)
		}
	})
}

func FuzzDecodeWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeObsRecord(obs(1, 1, 1, 100, t0)))
	f.Add(encodePairingRecord(1, 2, 1, t0.UnixNano()))
	f.Add(encodeRemoveRecord(1, 42, t0.UnixNano()))
	f.Add(encodeHandinRecord(42, t0.UnixNano(), &State{Station: 1, AP: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALRecord(data)
		if err != nil {
			return
		}
		switch rec.kind {
		case walObs, walPairing, walRemove:
		case walHandin:
			if rec.state.Station == 0 || rec.state.Station == ^uint32(0) {
				t.Fatalf("invalid station %d in handin", rec.state.Station)
			}
		default:
			t.Fatalf("decoded unknown kind %d", rec.kind)
		}
	})
}

// handin returns a minimal valid transfer state for station.
func handin(station uint32, at time.Time) State {
	return State{Station: station, AP: 1, Seq: 5, SNRMilliDB: 4_000,
		FirstSeen: at.UnixNano(), LastSeen: at.UnixNano()}
}

func TestTransferDedupSizeCap(t *testing.T) {
	m := mustOpen(t, Config{MaxTransfers: 2})
	for i := uint64(1); i <= 3; i++ {
		if !m.ApplyHandoff(i, handin(uint32(i), t0), t0.Add(time.Duration(i)*time.Second)) {
			t.Fatalf("transfer %d not applied", i)
		}
	}
	live, ev := m.Transfers()
	if live != 2 || ev.Size != 1 || ev.Age != 0 {
		t.Fatalf("after overflow: live=%d evictions=%+v, want live=2 size=1 age=0", live, ev)
	}
	// Dedup-after-eviction is the designed bound: transfer 1 fell off the
	// FIFO, so its replay is re-applied rather than suppressed...
	if !m.ApplyHandoff(1, handin(1, t0), t0.Add(10*time.Second)) {
		t.Fatal("replay of evicted transfer 1 was still deduplicated")
	}
	// ...while an ID inside the bound keeps deduplicating.
	if m.ApplyHandoff(3, handin(3, t0), t0.Add(11*time.Second)) {
		t.Fatal("in-bound transfer 3 applied twice")
	}
}

func TestTransferDedupAgeCap(t *testing.T) {
	m := mustOpen(t, Config{MaxTransfers: 1024, TransferTTL: time.Minute})
	if !m.ApplyHandoff(7, handin(7, t0), t0) {
		t.Fatal("first transfer not applied")
	}
	// Within TTL: still a duplicate.
	if m.ApplyHandoff(7, handin(7, t0), t0.Add(30*time.Second)) {
		t.Fatal("in-TTL replay applied")
	}
	// A later admit past the TTL prunes the aged entry...
	if !m.ApplyHandoff(8, handin(8, t0), t0.Add(2*time.Minute)) {
		t.Fatal("fresh transfer not applied")
	}
	live, ev := m.Transfers()
	if live != 1 || ev.Age != 1 || ev.Size != 0 {
		t.Fatalf("after age prune: live=%d evictions=%+v, want live=1 age=1 size=0", live, ev)
	}
	// ...so a replay of the evicted ID is re-applied: dedup after eviction
	// degrades to re-apply by design.
	if !m.ApplyHandoff(7, handin(7, t0), t0.Add(3*time.Minute)) {
		t.Fatal("replay of aged-out transfer was still deduplicated")
	}
}

func TestTransferDedupAgesFromRecovery(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Config{Dir: dir, TransferTTL: time.Minute})
	if !m.ApplyHandoff(9, handin(9, t0), t0) {
		t.Fatal("transfer not applied")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot stores IDs without times; a restart re-admits them at
	// the recovery timestamp, so they dedup for at least TTL afterwards.
	m2, err := Open(Config{Dir: dir, TransferTTL: time.Minute}, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.ApplyHandoff(9, handin(9, t0), t0.Add(time.Hour+30*time.Second)) {
		t.Fatal("restored transfer ID no longer deduplicates after restart")
	}
}
