package session

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/atomicio"
)

// Config tunes a Manager. Zero values take the defaults noted per field.
type Config struct {
	// Dir is the data directory for snapshot + WAL. Empty disables
	// persistence: the manager is memory-only (identity and roaming still
	// work; restarts start cold).
	Dir string
	// MaxSessions bounds the table; the oldest LastSeen is evicted to
	// admit a new station. Default 4096.
	MaxSessions int
	// HistoryLen caps each session's retained observation history.
	// Default 8.
	HistoryLen int
	// MaxTransfers bounds the applied transfer-ID dedup set (FIFO).
	// Default 1024.
	MaxTransfers int
	// TransferTTL is the age cap on dedup entries: an applied transfer ID
	// older than this is evicted the next time an ID is admitted, so a
	// long-lived shard's dedup set cannot grow (or pin memory) without
	// limit even below MaxTransfers. A replay arriving after its ID aged
	// out is re-applied — the designed bound, not a bug; peers stop
	// retrying long before this. Default 1h.
	TransferTTL time.Duration
	// SnapshotEvery compacts (snapshot + WAL reset) after this many WAL
	// appends. Default 4096.
	SnapshotEvery int
	// ResumeGap is the silence after which a returning station counts as
	// a resume rather than a routine advance. Default 5m.
	ResumeGap time.Duration
}

func (c *Config) fillDefaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 8
	}
	if c.HistoryLen > maxHistoryWire {
		c.HistoryLen = maxHistoryWire
	}
	if c.MaxTransfers <= 0 {
		c.MaxTransfers = 1024
	}
	if c.TransferTTL <= 0 {
		c.TransferTTL = time.Hour
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.ResumeGap <= 0 {
		c.ResumeGap = 5 * time.Minute
	}
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	// SnapshotSessions is how many sessions the snapshot restored.
	SnapshotSessions int
	// SnapshotCorrupt is true when a snapshot file existed but failed
	// validation; recovery degraded to WAL-only.
	SnapshotCorrupt bool
	// WALRecords is how many intact WAL records were replayed.
	WALRecords int
	// WALSkipped counts WAL records whose framing was intact but whose
	// payload failed to decode (version drift); they are skipped.
	WALSkipped int
	// WALTorn is true when a torn tail was truncated away.
	WALTorn bool
}

// Manager owns the durable session table. All methods are safe for
// concurrent use. The manager reads no clocks; callers pass timestamps.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[uint32]*State
	// transfers is the applied-transfer dedup set, each ID mapped to its
	// admit time (Unix nanos); order is its FIFO eviction queue. Entries
	// are evicted by age (TransferTTL) and by size (MaxTransfers), each
	// eviction counted so a dedup set under pressure is visible.
	transfers        map[uint64]int64
	order            []uint64
	evictedTransfers TransferEvictions
	log              *atomicio.Log // nil when persistence is off
	dirty            int           // WAL appends since last snapshot
	recovery         RecoveryStats
}

// TransferEvictions counts dedup-set evictions by cause.
type TransferEvictions struct {
	// Age counts IDs evicted because they outlived TransferTTL.
	Age int64
	// Size counts IDs evicted because the set hit MaxTransfers.
	Size int64
}

const (
	snapshotName = "sessions.snap"
	walName      = "sessions.wal"
)

// Open creates a Manager, recovering prior state from cfg.Dir when set:
// load snapshot (a corrupt one degrades to cold rather than failing
// startup), replay the WAL on top, then immediately compact so the WAL is
// empty and the snapshot current. now is the recovery timestamp used for
// nothing but being passed through to replayed applies that predate it.
func Open(cfg Config, now time.Time) (*Manager, error) {
	cfg.fillDefaults()
	m := &Manager{
		cfg:       cfg,
		sessions:  make(map[uint32]*State),
		transfers: make(map[uint64]int64),
	}
	if cfg.Dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: creating data dir: %w", err)
	}

	snapPath := filepath.Join(cfg.Dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		states, transfers, derr := decodeSnapshot(data)
		if derr != nil {
			m.recovery.SnapshotCorrupt = true
		} else {
			for i := range states {
				st := states[i]
				m.sessions[st.Station] = &st
			}
			// The snapshot stores IDs without admit times; restored entries
			// age from the recovery timestamp, so they are deduplicated for
			// at least TransferTTL after every restart.
			for _, tr := range transfers {
				m.noteTransferLocked(tr, now.UnixNano())
			}
			m.recovery.SnapshotSessions = len(states)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("session: reading snapshot: %w", err)
	}

	log, payloads, torn, err := atomicio.OpenLog(filepath.Join(cfg.Dir, walName))
	if err != nil {
		return nil, err
	}
	m.log = log
	m.recovery.WALTorn = torn
	for _, p := range payloads {
		rec, derr := decodeWALRecord(p)
		if derr != nil {
			// Intact framing but undecodable payload: version drift or a
			// writer bug. Recovery keeps going; losing one record beats
			// refusing to start.
			m.recovery.WALSkipped++
			continue
		}
		m.replayLocked(rec)
		m.recovery.WALRecords++
	}

	// Compact immediately: the replayed state becomes the snapshot and the
	// WAL empties, so the next crash replays only post-recovery records.
	if err := m.compactLocked(); err != nil {
		_ = m.log.Close()
		return nil, err
	}
	return m, nil
}

// Recovery returns what Open found on disk.
func (m *Manager) Recovery() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// replayLocked applies one recovered WAL record. Replay reuses the same
// apply paths as live traffic, so it is idempotent: records already
// reflected in the snapshot (at <= LastSeen, or an already-applied
// transfer ID) fall out as stale/duplicate no-ops.
func (m *Manager) replayLocked(rec walRecord) {
	switch rec.kind {
	case walObs:
		m.applyObsLocked(Obs{
			Station:    rec.station,
			AP:         rec.ap,
			Seq:        rec.seq,
			SNRMilliDB: rec.snr,
			At:         time.Unix(0, rec.at),
		})
	case walPairing:
		m.applyPairingLocked(rec.station, rec.partner, rec.level, rec.at)
	case walRemove:
		m.applyRemoveLocked(rec.station, rec.transfer, rec.at)
	case walHandin:
		// The record stores the post-install state (Handoffs already
		// bumped, history already trimmed); install it verbatim.
		m.applyHandinLocked(rec.transfer, rec.state, false, rec.at)
	}
}

// Observe feeds one accepted report through the session table, returning
// what it meant for the station's session. Applied observations are logged
// to the WAL before Observe returns.
func (m *Manager) Observe(o Obs) Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.applyObsLocked(o)
	if res.Outcome != OutcomeStale {
		m.appendLocked(encodeObsRecord(o))
	}
	return res
}

// applyObsLocked is the shared live/replay observation path.
func (m *Manager) applyObsLocked(o Obs) Result {
	at := o.At.UnixNano()
	st, ok := m.sessions[o.Station]
	if !ok {
		if len(m.sessions) >= m.cfg.MaxSessions {
			m.evictOldestLocked()
		}
		st = &State{
			Station:    o.Station,
			AP:         o.AP,
			Seq:        o.Seq,
			SNRMilliDB: o.SNRMilliDB,
			FirstSeen:  at,
			LastSeen:   at,
		}
		m.pushHistoryLocked(st, o.SNRMilliDB, at)
		m.sessions[o.Station] = st
		return Result{Outcome: OutcomeNew}
	}
	if at < st.LastSeen {
		return Result{Outcome: OutcomeStale}
	}
	adv, reset := SeqAdvance(st.Seq, o.Seq)
	roamed := o.AP != st.AP
	if !adv && !roamed {
		return Result{Outcome: OutcomeStale}
	}
	res := Result{PrevAP: st.AP, Roamed: roamed}
	gap := at - st.LastSeen
	switch {
	case reset:
		st.Epoch++
		st.Resumes++
		res.Outcome = OutcomeResume
	case roamed:
		res.Outcome = OutcomeRoam
	case gap > int64(m.cfg.ResumeGap):
		st.Resumes++
		res.Outcome = OutcomeResume
	default:
		res.Outcome = OutcomeAdvance
	}
	if adv {
		st.Seq = o.Seq
	}
	st.AP = o.AP
	st.SNRMilliDB = o.SNRMilliDB
	st.LastSeen = at
	m.pushHistoryLocked(st, o.SNRMilliDB, at)
	return res
}

func (m *Manager) pushHistoryLocked(st *State, snrMilliDB int32, at int64) {
	st.History = append(st.History, HistObs{SNRMilliDB: snrMilliDB, At: at})
	if n := len(st.History) - m.cfg.HistoryLen; n > 0 {
		st.History = st.History[n:]
	}
}

// evictOldestLocked drops the session with the oldest LastSeen to admit a
// new station into a full table.
func (m *Manager) evictOldestLocked() {
	var victim uint32
	oldest := int64(1<<63 - 1)
	for id, st := range m.sessions {
		if st.LastSeen < oldest || (st.LastSeen == oldest && id < victim) {
			oldest = st.LastSeen
			victim = id
		}
	}
	delete(m.sessions, victim)
}

// NotePairing records the scheduler's latest verdict for a station: who it
// was paired with (0 = solo) and on which ladder rung. Only changes are
// persisted, so steady-state scheduling does not grow the WAL.
func (m *Manager) NotePairing(station, partner uint32, level uint8, at time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.applyPairingLocked(station, partner, level, at.UnixNano()) {
		return false
	}
	m.appendLocked(encodePairingRecord(station, partner, level, at.UnixNano()))
	return true
}

func (m *Manager) applyPairingLocked(station, partner uint32, level uint8, at int64) bool {
	st, ok := m.sessions[station]
	if !ok || (st.LastPartner == partner && st.LastLevel == level) {
		return false
	}
	st.LastPartner = partner
	st.LastLevel = level
	return true
}

// Remove deletes a station's session after a successful hand-off to a
// peer, recording the transfer ID so a late replay of the same transfer
// cannot resurrect it here. Returns whether a session was removed.
func (m *Manager) Remove(station uint32, transfer uint64, at time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.applyRemoveLocked(station, transfer, at.UnixNano()) {
		return false
	}
	m.appendLocked(encodeRemoveRecord(station, transfer, at.UnixNano()))
	return true
}

func (m *Manager) applyRemoveLocked(station uint32, transfer uint64, at int64) bool {
	if _, dup := m.transfers[transfer]; dup {
		return false
	}
	m.noteTransferLocked(transfer, at)
	if _, ok := m.sessions[station]; !ok {
		return false
	}
	delete(m.sessions, station)
	return true
}

// ApplyHandoff installs a session received from a peer daemon. The
// transfer ID makes it idempotent: a replayed transfer (retry after a lost
// ack, or WAL replay) returns applied=false without touching state.
func (m *Manager) ApplyHandoff(transfer uint64, in State, at time.Time) (applied bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.applyHandinLocked(transfer, in, true, at.UnixNano()) {
		return false
	}
	st := m.sessions[in.Station]
	m.appendLocked(encodeHandinRecord(transfer, at.UnixNano(), st))
	return true
}

func (m *Manager) applyHandinLocked(transfer uint64, in State, bump bool, at int64) bool {
	if _, dup := m.transfers[transfer]; dup {
		return false
	}
	m.noteTransferLocked(transfer, at)
	if cur, ok := m.sessions[in.Station]; ok && cur.LastSeen > in.LastSeen {
		// The station already reported here with fresher state than the
		// peer is sending; the transfer is consumed but the newer local
		// session wins.
		return false
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		if _, ok := m.sessions[in.Station]; !ok {
			m.evictOldestLocked()
		}
	}
	st := in.clone()
	if bump {
		st.Handoffs++
	}
	if n := len(st.History) - m.cfg.HistoryLen; n > 0 {
		st.History = st.History[n:]
	}
	m.sessions[in.Station] = &st
	return true
}

// noteTransferLocked admits a transfer ID to the dedup set at time `at`
// (Unix nanos), first evicting entries that outlived TransferTTL and then
// evicting FIFO at the size bound. Admit times are non-decreasing in
// practice (callers pass wall or recovery time), so the FIFO order doubles
// as age order; a backwards caller clock merely prunes less eagerly.
func (m *Manager) noteTransferLocked(tr uint64, at int64) {
	if _, ok := m.transfers[tr]; ok {
		return
	}
	ttl := int64(m.cfg.TransferTTL)
	for len(m.order) > 0 && at-m.transfers[m.order[0]] > ttl {
		delete(m.transfers, m.order[0])
		m.order = m.order[1:]
		m.evictedTransfers.Age++
	}
	if len(m.order) >= m.cfg.MaxTransfers {
		delete(m.transfers, m.order[0])
		m.order = m.order[1:]
		m.evictedTransfers.Size++
	}
	m.transfers[tr] = at
	m.order = append(m.order, tr)
}

// Transfers reports the live dedup-set size and the evictions so far.
func (m *Manager) Transfers() (live int, evicted TransferEvictions) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.transfers), m.evictedTransfers
}

// Get returns a copy of one station's session.
func (m *Manager) Get(station uint32) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.sessions[station]
	if !ok {
		return State{}, false
	}
	return st.clone(), true
}

// Sessions returns copies of every session, sorted by station ID.
func (m *Manager) Sessions() []State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessionsLocked()
}

func (m *Manager) sessionsLocked() []State {
	out := make([]State, 0, len(m.sessions))
	for _, st := range m.sessions {
		out = append(out, st.clone())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Station > out[j].Station; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// appendLocked writes one WAL record and compacts at the configured
// cadence. WAL errors are deliberately swallowed after marking the log
// broken — an in-memory session layer that keeps scheduling beats a daemon
// that fails reports because a disk filled.
func (m *Manager) appendLocked(payload []byte) {
	if m.log == nil {
		return
	}
	if err := m.log.Append(payload); err != nil {
		return
	}
	m.dirty++
	if m.dirty >= m.cfg.SnapshotEvery {
		// A failed compaction keeps the WAL; nothing is lost.
		_ = m.compactLocked()
	}
}

// compactLocked writes the snapshot atomically, then resets the WAL. A
// crash between the two replays the stale WAL onto the new snapshot, which
// the idempotent apply paths absorb.
func (m *Manager) compactLocked() error {
	if m.log == nil {
		return nil
	}
	data := encodeSnapshot(m.sessionsLocked(), append([]uint64(nil), m.order...))
	if err := atomicio.WriteFile(filepath.Join(m.cfg.Dir, snapshotName), data, 0o644); err != nil {
		return fmt.Errorf("session: writing snapshot: %w", err)
	}
	if err := m.log.Reset(); err != nil {
		return err
	}
	m.dirty = 0
	return nil
}

// Close compacts and closes the WAL. After a clean Close the WAL is empty
// and the snapshot alone restores the table.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	cerr := m.compactLocked()
	if err := m.log.Close(); err != nil {
		return err
	}
	m.log = nil
	return cerr
}

// Kill abandons the manager without snapshotting, as a crash would: the
// WAL keeps whatever was appended. Test hook for crash-recovery coverage.
func (m *Manager) Kill() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return
	}
	// A simulated crash discards close errors by design.
	_ = m.log.Close()
	m.log = nil
}
