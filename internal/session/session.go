// Package session is the durable client-session layer under the scheduling
// daemon. The daemon's client table is a bounded, evicting cache of "who is
// schedulable right now"; this package holds what must outlive it: per-
// station identity keyed by station ID (stable across address changes and
// reconnects), the report history and sequence epoch a reconnecting client
// resumes instead of starting cold, the last pairing outcome, and — when a
// data directory is configured — a crash-safe snapshot+WAL persistence
// scheme so a restarted daemon answers queries with pre-crash context.
//
// Persistence contract: every accepted observation is appended to a
// checksummed, length-prefixed write-ahead log (atomicio.Log) as soon as it
// is applied, and the whole session table is periodically compacted into an
// atomically-replaced snapshot (atomicio.WriteFile). Recovery loads the
// snapshot, replays the WAL on top, truncates any torn tail instead of
// failing startup, and is idempotent: replaying records already reflected
// in the snapshot is a no-op, so a crash between snapshot commit and WAL
// reset is safe.
//
// The package reads no clocks: every mutation takes the caller's timestamp,
// so daemons with injected clocks stay exactly as testable as before.
package session

import "time"

// SeqResetWindow bounds the sequence numbers treated as a station reboot.
// A report whose sequence does not advance serially but lies in
// [1, SeqResetWindow] — while the session is already past the window — is
// accepted as an epoch reset rather than dropped as a duplicate, so a
// rebooted station restarting at Seq=1 is not locked out until TTL expiry.
const SeqResetWindow = 8

// SeqAdvance compares report sequence numbers in the RFC 1982 serial-number
// style: newSeq advances oldSeq when their circular distance is in
// (0, 2^31), which keeps dedup working across uint32 wraparound. When the
// serial comparison says "behind" but newSeq is inside the reset window and
// oldSeq is beyond it, the report is classified as a reboot reset
// (advance=true, reset=true): the station restarted its counter and gets a
// fresh epoch. Within-window reordering (oldSeq itself still inside the
// window) stays a duplicate, so early-startup replays are not misread as
// reboots.
func SeqAdvance(oldSeq, newSeq uint32) (advance, reset bool) {
	if newSeq == oldSeq {
		return false, false
	}
	if newSeq-oldSeq < 1<<31 { // circular distance, wrap-safe
		return true, false
	}
	if newSeq >= 1 && newSeq <= SeqResetWindow && oldSeq > SeqResetWindow {
		return true, true
	}
	return false, false
}

// MaxSNRMilliDB mirrors the daemon's wire bound: ±100 dB in milli-dB.
const MaxSNRMilliDB = 100_000

// HistObs is one retained observation of a session's history: the reported
// SNR and when it was accepted (Unix nanoseconds).
type HistObs struct {
	SNRMilliDB int32
	At         int64
}

// State is one station's durable session. It is the unit of snapshot
// persistence and of AP-to-AP handoff: everything a peer daemon needs to
// answer SCHED queries for the station with full context.
type State struct {
	// Station is the stable identity; sessions survive address changes
	// because nothing here is keyed on a network address.
	Station uint32
	// AP is the access point the station currently reports through.
	AP uint32
	// Epoch counts sequence-number resets (station reboots). Seq is the
	// last accepted sequence number within the current epoch.
	Epoch uint32
	Seq   uint32
	// SNRMilliDB is the most recent accepted report.
	SNRMilliDB int32
	// FirstSeen / LastSeen are Unix-nanosecond acceptance times.
	FirstSeen int64
	LastSeen  int64
	// Resumes counts reconnects: epoch resets plus returns after a gap.
	Resumes uint32
	// Handoffs counts AP-to-AP transfers this session has survived.
	Handoffs uint32
	// LastPartner is the station this one was last paired with by the
	// scheduler (0 = solo or never scheduled); LastLevel records the
	// degradation-ladder rung that made the pairing.
	LastPartner uint32
	LastLevel   uint8
	// History holds the most recent accepted observations, oldest first,
	// capped by the manager's HistoryLen.
	History []HistObs
}

// clone returns a deep copy safe to hand outside the manager's lock.
func (st *State) clone() State {
	cp := *st
	cp.History = append([]HistObs(nil), st.History...)
	return cp
}

// Obs is one accepted report, as fed to Manager.Observe.
type Obs struct {
	Station    uint32
	AP         uint32
	Seq        uint32
	SNRMilliDB int32
	At         time.Time
}

// Outcome classifies what Observe did with a report's session.
type Outcome int

const (
	// OutcomeStale: the report did not move the session (replay or
	// out-of-order); nothing was recorded.
	OutcomeStale Outcome = iota
	// OutcomeNew: no session existed; a cold one was created.
	OutcomeNew
	// OutcomeAdvance: the routine case — same AP, sequence advanced.
	OutcomeAdvance
	// OutcomeResume: a reconnect — either a sequence-epoch reset (reboot)
	// or a return after more than ResumeGap of silence. The session's
	// history and epoch carried over instead of starting cold.
	OutcomeResume
	// OutcomeRoam: the station moved to a different AP with its sequence
	// intact; scheduling context followed it.
	OutcomeRoam
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeStale:
		return "stale"
	case OutcomeNew:
		return "new"
	case OutcomeAdvance:
		return "advance"
	case OutcomeResume:
		return "resume"
	case OutcomeRoam:
		return "roam"
	}
	return "unknown"
}

// Result is Observe's full verdict. PrevAP and Roamed let the caller clean
// up the station's entry at the AP it left, whatever the headline Outcome
// (a reboot can coincide with a move).
type Result struct {
	Outcome Outcome
	PrevAP  uint32
	Roamed  bool
}
