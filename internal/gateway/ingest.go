package gateway

import (
	"errors"
	"net"

	"repro/internal/schedd"
)

// replicaAPBit marks a forwarded report as a replica copy: the gateway
// rewrites the AP id of every non-owner copy to ap|replicaAPBit before
// forwarding, so replica stations live in a shadow AP namespace at the
// shard and never pollute the owner's schedule. The primary fan-out
// queries the real AP; hedges and dead-shard fallbacks query the shadow
// one. Real AP ids must therefore stay below 1<<31 — reports claiming a
// reserved AP are rejected at ingest.
const replicaAPBit = uint32(1) << 31

// readLoop pulls datagrams off the socket into the bounded ingest queue,
// shedding oldest-first under pressure — the same policy as the daemon's
// ingest, because the same argument holds: fresher reports are worth
// strictly more than stale ones.
func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	for {
		n, _, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.ingestEvents.Inc("datagrams")
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		select {
		case s.queue <- pkt:
		default:
			select {
			case <-s.queue:
				s.ingestEvents.Inc("shed")
			default:
			}
			select {
			case s.queue <- pkt:
			default:
				s.ingestEvents.Inc("shed")
			}
		}
	}
}

// filterLoop drains the ingest queue: prefix filter, full decode, dedup,
// then replicated forwarding. On shutdown it drains what is already queued
// so accepted reports are not silently discarded.
func (s *Server) filterLoop() {
	defer s.wg.Done()
	for {
		select {
		case pkt := <-s.queue:
			s.ingest(pkt)
		case <-s.done:
			for {
				select {
				case pkt := <-s.queue:
					s.ingest(pkt)
				default:
					return
				}
			}
		}
	}
}

// ingest validates one datagram and, if it advances the station's sequence
// number, forwards the original bytes to the station's owner shard and its
// ring replicas. The shards re-validate — the gateway filter is a shield,
// not the trust boundary.
func (s *Server) ingest(pkt []byte) {
	if err := FastReject(pkt); err != nil {
		s.ingestEvents.Inc("fast_reject")
		s.dropEvents.Inc(schedd.DropReason(err))
		return
	}
	r, err := schedd.DecodeReport(pkt)
	if err != nil {
		s.dropEvents.Inc(schedd.DropReason(err))
		return
	}
	if r.AP&replicaAPBit != 0 {
		s.ingestEvents.Inc("ap_reserved")
		return
	}
	if !s.admit(r) {
		return
	}
	s.forward(r, pkt)
}

// admit applies the gateway's dedup and bound checks and keeps the
// station→AP index current. Sequence comparison is serial-number
// arithmetic (RFC 1982 style, like the daemon's table): a report advances
// if its sequence is ahead of the last accepted one by less than half the
// number space, so reboots that wrap the counter still get through.
func (s *Server) admit(r schedd.Report) bool {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	rec, ok := s.stations[r.Station]
	if !ok {
		if len(s.stations) >= s.cfg.MaxStations {
			s.ingestEvents.Inc("station_limit")
			return false
		}
		s.stations[r.Station] = &stationRec{ap: r.AP, seq: r.Seq}
		s.addToAP(r.AP, r.Station)
		s.ingestEvents.Inc("accepted")
		return true
	}
	if diff := r.Seq - rec.seq; diff == 0 || diff >= 1<<31 {
		s.ingestEvents.Inc("dup")
		return false
	}
	rec.seq = r.Seq
	if rec.ap != r.AP {
		s.removeFromAP(rec.ap, r.Station)
		rec.ap = r.AP
		s.addToAP(r.AP, r.Station)
		s.ingestEvents.Inc("roam")
	}
	s.ingestEvents.Inc("accepted")
	return true
}

func (s *Server) addToAP(ap, station uint32) {
	set := s.apStations[ap]
	if set == nil {
		set = make(map[uint32]struct{})
		s.apStations[ap] = set
	}
	set[station] = struct{}{}
}

func (s *Server) removeFromAP(ap, station uint32) {
	if set := s.apStations[ap]; set != nil {
		delete(set, station)
		if len(set) == 0 {
			delete(s.apStations, ap)
		}
	}
}

// apStationSnapshot returns the stations currently indexed under one AP.
func (s *Server) apStationSnapshot(ap uint32) []uint32 {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	set := s.apStations[ap]
	out := make([]uint32, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	return out
}

// stationSnapshot returns every indexed station.
func (s *Server) stationSnapshot() []uint32 {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	out := make([]uint32, 0, len(s.stations))
	for st := range s.stations {
		out = append(out, st)
	}
	return out
}

// forward sends the accepted datagram to the station's owner and, under
// the shadow AP id, to its Replication-1 distinct live-ring successors,
// through the gateway's own UDP socket. Replicas are what make hedged
// queries and dead-shard rebalances answerable: the successor already
// holds the station's warm report stream when it inherits the arc, while
// the shadow namespace keeps that stream out of the successor's own
// schedules until it is asked for.
func (s *Server) forward(r schedd.Report, pkt []byte) {
	s.ringMu.Lock()
	ring := s.live
	s.ringMu.Unlock()
	var shadow []byte
	for i, idx := range ring.successors(r.Station, s.cfg.Replication) {
		out := pkt
		if i > 0 {
			if shadow == nil {
				rep := r
				rep.AP |= replicaAPBit
				var err error
				// Marshal cannot fail here: station and SNR already passed
				// the decoder, and the AP field is unvalidated by design.
				if shadow, err = rep.Marshal(); err != nil {
					s.ingestEvents.Inc("forward_err")
					return
				}
			}
			out = shadow
		}
		if _, err := s.udp.WriteToUDP(out, s.shards[idx].udpAddr); err != nil {
			s.ingestEvents.Inc("forward_err")
			continue
		}
		s.ingestEvents.Inc("forwarded")
	}
}
