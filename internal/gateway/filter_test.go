package gateway

import (
	"errors"
	"testing"

	"repro/internal/schedd"
)

func validReport(t *testing.T) []byte {
	t.Helper()
	buf, err := schedd.Report{AP: 1, Station: 9, Seq: 1, SNRMilliDB: 20000}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestFastRejectVerdicts: each prefix defect maps to the decoder's error.
func TestFastRejectVerdicts(t *testing.T) {
	good := validReport(t)
	if err := FastReject(good); err != nil {
		t.Fatalf("valid report fast-rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"short", func(b []byte) []byte { return b[:10] }, schedd.ErrReportShort},
		{"oversize", func(b []byte) []byte { return append(b, 0) }, schedd.ErrReportOversize},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, schedd.ErrReportMagic},
		{"version", func(b []byte) []byte { b[2] = 99; return b }, schedd.ErrReportVersion},
		{"type", func(b []byte) []byte { b[3] = 7; return b }, schedd.ErrReportType},
		{"length", func(b []byte) []byte { b[7] = 200; return b }, schedd.ErrReportLength},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), good...)
		buf = tc.mutate(buf)
		if err := FastReject(buf); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: FastReject = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
	// A CRC defect is past the prefix: FastReject passes it through for the
	// full decoder to kill.
	crc := append([]byte(nil), good...)
	crc[25] ^= 0x01
	if err := FastReject(crc); err != nil {
		t.Fatalf("FastReject rejected a CRC-only defect: %v", err)
	}
	if _, err := schedd.DecodeReport(crc); !errors.Is(err, schedd.ErrReportCRC) {
		t.Fatalf("decoder verdict on CRC defect = %v", err)
	}
}

// FuzzFastReject enforces the filter's contract with the full decoder:
// a fast reject must mean the decoder rejects with the identical error
// (never a false positive), and a fast accept must never hide a defect
// the filter claims to check.
func FuzzFastReject(f *testing.F) {
	good, _ := schedd.Report{AP: 1, Station: 9, Seq: 1, SNRMilliDB: 20000}.Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x51, 0xCD})
	short := append([]byte(nil), good[:27]...)
	f.Add(short)
	long := append(append([]byte(nil), good...), 0xAA)
	f.Add(long)
	bad := append([]byte(nil), good...)
	bad[2] = 3
	f.Add(bad)
	f.Fuzz(func(t *testing.T, buf []byte) {
		fastErr := FastReject(buf)
		_, slowErr := schedd.DecodeReport(buf)
		if fastErr != nil {
			if slowErr == nil {
				t.Fatalf("FastReject rejected (%v) a datagram DecodeReport accepts", fastErr)
			}
			if !errors.Is(slowErr, fastErr) {
				t.Fatalf("verdicts disagree: FastReject %v, DecodeReport %v", fastErr, slowErr)
			}
		}
	})
}
