package gateway

import (
	"encoding/binary"

	"repro/internal/schedd"
)

// FastReject is the gateway's cheap first-pass datagram filter: it checks
// only the fixed 8-byte prefix of a report (magic, version, type, length)
// plus the datagram size, touching no checksum and allocating nothing, so
// a flood of junk — misdirected MAC frames, port scans, stale protocol
// versions — is turned away for a few compares per datagram before the
// CRC pass runs.
//
// Its contract with the full decoder is strict and fuzz-enforced
// (FuzzFastReject): FastReject(buf) != nil implies
// schedd.DecodeReport(buf) fails with the same error. FastReject returning
// nil promises nothing — the datagram may still die on CRC or field
// validation — so accepted datagrams always continue to the full decode.
func FastReject(buf []byte) error {
	if len(buf) < schedd.ReportLen {
		return schedd.ErrReportShort
	}
	if len(buf) > schedd.ReportLen {
		return schedd.ErrReportOversize
	}
	if binary.BigEndian.Uint16(buf[0:2]) != schedd.ReportMagic {
		return schedd.ErrReportMagic
	}
	if buf[2] != schedd.ReportVersion {
		return schedd.ErrReportVersion
	}
	// Byte 3 is the report type; 1 (RSSI) is the only one defined. The
	// constant is unexported in schedd, so the contract fuzz target is what
	// keeps this literal honest.
	if buf[3] != 1 {
		return schedd.ErrReportType
	}
	if binary.BigEndian.Uint32(buf[4:8]) != schedd.ReportLen {
		return schedd.ErrReportLength
	}
	return nil
}
