package gateway

import (
	"hash/fnv"
	"sort"
)

// hashRing is a consistent-hash ring mapping stations onto shard indices.
// Each member contributes vnodes points, placed by hashing (shard name,
// vnode) — name-keyed so a shard keeps its arc across gateway restarts and
// config reorderings — and a station lands on the first point clockwise of
// its own hash. Rings are immutable once built: membership changes build a
// new ring under a new epoch, which is what makes "diff two rings to find
// the stations that moved" a safe, lock-free operation.
type hashRing struct {
	points []ringPoint // sorted by hash
	// live[i] reports whether shard i contributed points to this ring.
	live []bool
	// epoch is the generation of tier membership this ring encodes.
	epoch uint64
}

type ringPoint struct {
	hash  uint64
	shard int
}

// splitmix is the SplitMix64 finalizer (same construction as the fault
// model's hash): a cheap strong mixer turning IDs into uniform points.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// buildRing places vnodes points per live shard. names indexes shards by
// their tier position; live selects the members. Epoch is stamped by the
// caller.
func buildRing(names []string, live []bool, vnodes int, epoch uint64) *hashRing {
	r := &hashRing{live: append([]bool(nil), live...), epoch: epoch}
	for i, name := range names {
		if !live[i] {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(name))
		base := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: splitmix(base + uint64(v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// stationPoint hashes a station onto the ring's keyspace.
func stationPoint(station uint32) uint64 {
	return splitmix(0xC0FFEE ^ uint64(station))
}

// owner returns the shard index owning the station, or ok=false on an
// empty ring.
func (r *hashRing) owner(station uint32) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := stationPoint(station)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard, true
}

// successors returns up to n distinct shards clockwise of the station,
// starting with its owner: successors(sta, 2) is the owner plus its first
// replica. Fewer are returned when the ring has fewer distinct members.
func (r *hashRing) successors(station uint32, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := stationPoint(station)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// memberCount returns how many shards contributed points.
func (r *hashRing) memberCount() int {
	n := 0
	for _, l := range r.live {
		if l {
			n++
		}
	}
	return n
}
