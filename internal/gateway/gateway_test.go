package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/schedd"
)

// tier is one in-process deployment: a gateway in front of named shards.
type tier struct {
	gw     *Server
	shards map[string]*schedd.Server
}

// startShard boots one scheduler shard.
func startShard(t *testing.T, name, udpAddr, tcpAddr string) *schedd.Server {
	t.Helper()
	s, err := schedd.Start(schedd.Config{
		UDPAddr: udpAddr,
		TCPAddr: tcpAddr,
		ShardID: name,
	})
	if err != nil {
		t.Fatalf("starting shard %s: %v", name, err)
	}
	return s
}

// startTier boots n shards and a gateway over them. mutate can tweak the
// gateway config (probe cadence, replication, proxied addresses) before
// Start.
func startTier(t *testing.T, n int, mutate func(*Config)) *tier {
	t.Helper()
	tr := &tier{shards: make(map[string]*schedd.Server)}
	cfg := Config{
		// Parked prober by default: liveness tests opt in to a fast one.
		ProbeInterval: time.Hour,
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard-%c", 'a'+i)
		s := startShard(t, name, "", "")
		tr.shards[name] = s
		cfg.Shards = append(cfg.Shards, ShardAddr{
			Name: name,
			TCP:  s.TCPAddr().String(),
			UDP:  s.UDPAddr().String(),
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := Start(cfg)
	if err != nil {
		t.Fatalf("starting gateway: %v", err)
	}
	tr.gw = gw
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		tr.gw.Shutdown(ctx)
		for _, s := range tr.shards {
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			s.Shutdown(sctx)
			scancel()
		}
	})
	return tr
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sendReports pushes reports into the gateway's UDP ingest, pacing against
// the datagrams counter so loopback delivery and counting are serialised —
// the same trick the daemon's chaos tests use to make counters exact.
func sendReports(t *testing.T, gw *Server, reports []schedd.Report) {
	t.Helper()
	conn, err := net.Dial("udp", gw.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	base := gw.IngestEvents().Get("datagrams")
	for i, r := range reports {
		buf, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
		want := base + int64(i) + 1
		waitFor(t, 5*time.Second, "gateway ingest to advance", func() bool {
			return gw.IngestEvents().Get("datagrams") >= want
		})
	}
}

// gwQuery runs one command line against the gateway and decodes the reply.
func gwQuery(t *testing.T, gw *Server, line string, out any) {
	t.Helper()
	conn, err := net.Dial("tcp", gw.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no reply to %q: %v", line, sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), out); err != nil {
		t.Fatalf("decoding reply to %q: %v (%s)", line, err, sc.Bytes())
	}
}

// slotStations flattens a merged schedule into the set of stations it
// serves.
func slotStations(resp schedResponse) map[uint32]bool {
	out := make(map[uint32]bool)
	for _, slot := range resp.Slots {
		out[slot.A] = true
		if slot.B != 0 {
			out[slot.B] = true
		}
	}
	return out
}

// reportRound returns one report per station for the AP at the given seq.
func reportRound(stations []uint32, ap, seq uint32) []schedd.Report {
	var out []schedd.Report
	for i, st := range stations {
		out = append(out, schedd.Report{
			AP: ap, Station: st, Seq: seq,
			SNRMilliDB: int32(15000 + 500*i),
		})
	}
	return out
}

// TestGatewayFanoutMergeAndDedup: reports replicate to both shards (real
// AP at the owner, shadow AP at the replica), the fan-out queries both
// owners, and the merge emits every station exactly once — the shadow
// namespace keeps replicas out of the primaries' schedules entirely.
func TestGatewayFanoutMergeAndDedup(t *testing.T) {
	tr := startTier(t, 2, nil)
	stations := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	sendReports(t, tr.gw, reportRound(stations, 1, 1))

	// Replication 2 over 2 shards: every accepted report lands on both.
	waitFor(t, 5*time.Second, "shards to ingest the forwarded reports", func() bool {
		for _, s := range tr.shards {
			if s.Counters().Get("reports_ok") < int64(len(stations)) {
				return false
			}
		}
		return true
	})
	if got := tr.gw.IngestEvents().Get("forwarded"); got != int64(2*len(stations)) {
		t.Fatalf("forwarded = %d, want %d (replication 2)", got, 2*len(stations))
	}

	var resp schedResponse
	gwQuery(t, tr.gw, "SCHED 1", &resp)
	if resp.Degraded {
		t.Fatalf("healthy tier answered degraded: %+v", resp)
	}
	if resp.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", resp.Epoch)
	}
	got := slotStations(resp)
	for _, st := range stations {
		if !got[st] {
			t.Fatalf("station %d missing from merged schedule %v", st, got)
		}
	}
	if len(got) != len(stations) || resp.Clients != len(stations) {
		t.Fatalf("merged schedule serves %d stations (clients=%d), want %d", len(got), resp.Clients, len(stations))
	}
	// Both shards held all 8 stations, but the replicas sit in the shadow
	// namespace: the primaries' schedules are disjoint and nothing needed
	// deduplication.
	if got := tr.gw.QueryEvents().Get("merge_dup_slots"); got != 0 {
		t.Fatalf("healthy primaries overlapped (merge_dup_slots=%d); replicas leaked into real schedules", got)
	}
	// The replica copies are nonetheless warm and servable: a blind query
	// for the shadow AP reaches every shard's mirrored slice.
	var shadow schedResponse
	gwQuery(t, tr.gw, fmt.Sprintf("SCHED %d", 1|replicaAPBit), &shadow)
	shadowGot := slotStations(shadow)
	for _, st := range stations {
		if !shadowGot[st] {
			t.Fatalf("station %d missing from the shadow slices %v; replica copies not warm", st, shadowGot)
		}
	}

	// Duplicate and stale sequence numbers die at the gateway.
	pre := tr.gw.IngestEvents().Get("dup")
	sendReports(t, tr.gw, reportRound(stations[:3], 1, 1))
	if got := tr.gw.IngestEvents().Get("dup") - pre; got != 3 {
		t.Fatalf("dup = %d after 3 replayed reports, want 3", got)
	}
}

// TestGatewayFiltersJunkBeforeShards: malformed datagrams are counted by
// reason and never consume a single shard cycle.
func TestGatewayFiltersJunkBeforeShards(t *testing.T) {
	tr := startTier(t, 1, nil)
	conn, err := net.Dial("udp", tr.gw.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	good, err := schedd.Report{AP: 1, Station: 5, Seq: 1, SNRMilliDB: 9000}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	badCRC := append([]byte(nil), good...)
	badCRC[20] ^= 0x10 // payload flip: prefix passes, CRC dies
	junk := [][]byte{good[:5], badMagic, badCRC, append(append([]byte(nil), good...), 1, 2, 3)}
	for i, pkt := range junk {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		want := int64(i + 1)
		waitFor(t, 5*time.Second, "junk datagram to be counted", func() bool {
			return tr.gw.IngestEvents().Get("datagrams") >= want
		})
	}
	waitFor(t, 5*time.Second, "drops to be tallied", func() bool {
		d := tr.gw.DropEvents()
		return d.Get("drop_short") == 1 && d.Get("drop_magic") == 1 &&
			d.Get("drop_crc") == 1 && d.Get("drop_oversize") == 1
	})
	// Three of the four die on the prefix alone; the CRC defect needs the
	// full decode.
	if got := tr.gw.IngestEvents().Get("fast_reject"); got != 3 {
		t.Fatalf("fast_reject = %d, want 3", got)
	}
	if got := tr.gw.IngestEvents().Get("forwarded"); got != 0 {
		t.Fatalf("junk was forwarded to a shard (forwarded=%d)", got)
	}
	for _, s := range tr.shards {
		if got := s.Counters().Get("ingest_datagrams"); got != 0 {
			t.Fatalf("shard saw %d datagrams; the gateway filter leaked", got)
		}
	}
}

// deafProxy fronts a shard's TCP listener with an asymmetric partition:
// client→server bytes pass, server→client bytes are fed to the emulator's
// partition switch and vanish. This is the one-way-deaf shard — it hears
// every query and answers into the void — that hedged requests must mask.
type deafProxy struct {
	ln    net.Listener
	chaos *emu.WireChaos
}

func startDeafProxy(t *testing.T, target string, chaos *emu.WireChaos) *deafProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &deafProxy{ln: ln, chaos: chaos}
	t.Cleanup(func() { ln.Close() })
	go func() {
		var seq uint32
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", target)
			if err != nil {
				client.Close()
				continue
			}
			go func() {
				defer server.Close()
				io.Copy(server, client) // inbound direction: the shard hears
			}()
			go func() {
				defer client.Close()
				buf := make([]byte, 4096)
				for {
					n, err := server.Read(buf)
					if err != nil {
						return
					}
					seq++
					if p.chaos.DropDir(emu.DirOut, 0, seq) {
						continue // the reply vanishes
					}
					if _, err := client.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return p
}

// TestGatewayHedgeMasksOneWayDeafShard: a shard behind an outbound
// partition stays "up" (the prober is parked) but never answers. The
// hedged request to its stations' replica shard recovers the full
// schedule; the reply is honest about the degradation.
func TestGatewayHedgeMasksOneWayDeafShard(t *testing.T) {
	chaos, err := emu.NewWireChaos(emu.FaultModel{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var proxied string
	tr := startTier(t, 3, func(cfg *Config) {
		// Find shard-b (ring index 1) and interpose the deaf proxy on its
		// query listener only; its UDP ingest stays direct so it holds the
		// reports it will never manage to serve.
		proxied = cfg.Shards[1].TCP
		p := startDeafProxy(t, proxied, chaos)
		cfg.Shards[1].TCP = p.ln.Addr().String()
		cfg.ShardDeadline = 100 * time.Millisecond
		cfg.HedgeDelay = 15 * time.Millisecond
		cfg.RetryBackoff = 5 * time.Millisecond
		cfg.QueryDeadline = 2 * time.Second
	})

	// Choose stations owned by shard-b (index 1) and replicated on shard-c
	// (index 2), using the same ring construction the gateway uses.
	ring := buildRing([]string{"shard-a", "shard-b", "shard-c"}, allLive(3), 64, 1)
	var stations []uint32
	for st := uint32(1); len(stations) < 4 && st < 100000; st++ {
		succ := ring.successors(st, 2)
		if len(succ) == 2 && succ[0] == 1 && succ[1] == 2 {
			stations = append(stations, st)
		}
	}
	if len(stations) < 4 {
		t.Fatal("could not find stations with owner=b replica=c")
	}

	sendReports(t, tr.gw, reportRound(stations, 3, 1))
	waitFor(t, 5*time.Second, "replica shard to hold the reports", func() bool {
		return tr.shards["shard-c"].Counters().Get("reports_ok") >= int64(len(stations))
	})

	// Now the shard goes deaf: it receives queries and answers into the
	// partition.
	chaos.SetPartition(emu.DirOut)

	var resp schedResponse
	gwQuery(t, tr.gw, "SCHED 3", &resp)
	got := slotStations(resp)
	for _, st := range stations {
		if !got[st] {
			t.Fatalf("station %d missing: the hedge did not mask the deaf shard (resp %+v)", st, resp)
		}
	}
	if !resp.Degraded {
		t.Fatal("reply not marked degraded although the primary never answered")
	}
	if tr.gw.QueryEvents().Get("hedges") == 0 || tr.gw.QueryEvents().Get("hedge_wins") == 0 {
		t.Fatalf("expected a winning hedge, counters: hedges=%d wins=%d",
			tr.gw.QueryEvents().Get("hedges"), tr.gw.QueryEvents().Get("hedge_wins"))
	}
	hedged := false
	for _, part := range resp.Shards {
		if part.Shard == "shard-c" && part.Hedged && part.Error == "" {
			hedged = true
		}
	}
	if !hedged {
		t.Fatalf("no winning hedged part in %+v", resp.Shards)
	}
	if chaos.PartitionDrops() == 0 {
		t.Fatal("the partition never swallowed a reply; the shard was not actually deaf")
	}

	// Heal the partition: the same primary answers again and the tier
	// serves clean.
	chaos.ClearPartition()
	waitFor(t, 5*time.Second, "clean un-degraded answer after healing", func() bool {
		var healed schedResponse
		gwQuery(t, tr.gw, "SCHED 3", &healed)
		return !healed.Degraded && len(slotStations(healed)) == len(stations)
	})
}

// TestGatewayKillShardDegradeRecover: kill -9 a shard mid-run. Queries
// keep succeeding with degraded=true and full station coverage via the
// replicas; the prober ejects the shard (epoch bump, skip-dead
// migrations); after a restart on the same addresses the prober re-admits
// it, sessions migrate home, and degraded clears.
func TestGatewayKillShardDegradeRecover(t *testing.T) {
	tr := startTier(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.ProbeTimeout = 100 * time.Millisecond
		cfg.FailThreshold = 3
		cfg.RecoverThreshold = 2
		cfg.ShardDeadline = 150 * time.Millisecond
		cfg.RetryBackoff = 5 * time.Millisecond
		cfg.HedgeDelay = 15 * time.Millisecond
		cfg.QueryDeadline = 2 * time.Second
	})
	stations := []uint32{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	const ap = 7
	seq := uint32(1)
	pump := func() {
		sendReports(t, tr.gw, reportRound(stations, ap, seq))
		seq++
	}
	pump()

	// Forwarding to the shards is async UDP: poll until the tier serves the
	// full clean schedule.
	waitFor(t, 5*time.Second, "clean baseline answer", func() bool {
		var resp schedResponse
		gwQuery(t, tr.gw, "SCHED 7", &resp)
		return !resp.Degraded && resp.Clients == len(stations)
	})

	// Kill shard-b abruptly: no drain, no snapshot, queued work lost.
	victim := tr.shards["shard-b"]
	victimUDP, victimTCP := victim.UDPAddr().String(), victim.TCPAddr().String()
	victim.Kill()

	// Queries keep succeeding while the shard is dead: degraded, with the
	// surviving shards' stations still served. (Full coverage returns once
	// the ring reacts — partial results, not failures, are the contract.)
	waitFor(t, 5*time.Second, "degraded partial answers during the outage", func() bool {
		var out schedResponse
		gwQuery(t, tr.gw, "SCHED 7", &out)
		return out.Degraded && len(slotStations(out)) > 0
	})

	waitFor(t, 5*time.Second, "prober to eject the dead shard", func() bool {
		live := tr.gw.LiveShards()
		return len(live) == 2 && tr.gw.Epoch() == 2
	})
	// Ejection cannot MOVE out of a dead process; the skipped migrations
	// are counted instead and the replicas carry the sessions. The
	// rebalance pass runs asynchronously after the epoch flips.
	waitFor(t, 5*time.Second, "ejection rebalance to record skip_dead", func() bool {
		return tr.gw.RebalanceEvents().Get("skip_dead") > 0
	})

	// Traffic continues against the shrunken ring: the dead shard's
	// stations now land at their replicas, and coverage is whole again —
	// still honestly degraded, because the primary's table is unreachable.
	pump()
	waitFor(t, 5*time.Second, "degraded-but-complete answers after ejection", func() bool {
		var out schedResponse
		gwQuery(t, tr.gw, "SCHED 7", &out)
		return out.Degraded && len(slotStations(out)) == len(stations)
	})

	// Restart the shard on its old addresses: fresh instance nonce, empty
	// table, ring epoch reset to zero.
	revived := startShard(t, "shard-b", victimUDP, victimTCP)
	tr.shards["shard-b"] = revived

	waitFor(t, 5*time.Second, "prober to re-admit the restarted shard", func() bool {
		return len(tr.gw.LiveShards()) == 3 && tr.gw.Epoch() == 3
	})
	// Re-admission migrates its sessions home from the interim owners.
	waitFor(t, 5*time.Second, "readmit rebalance to move sessions home", func() bool {
		return tr.gw.RebalanceEvents().Get("moves") > 0
	})
	waitFor(t, 5*time.Second, "restarted shard to learn the ring epoch", func() bool {
		return revived.RingEpoch() == 3
	})

	// With the tier whole again, degraded clears and coverage holds.
	pump()
	waitFor(t, 5*time.Second, "clean answers after recovery", func() bool {
		var rec schedResponse
		gwQuery(t, tr.gw, "SCHED 7", &rec)
		return !rec.Degraded && len(slotStations(rec)) == len(stations)
	})
	if tr.gw.TierEvents().Get("ejections") != 1 || tr.gw.TierEvents().Get("readmits") != 1 {
		t.Fatalf("tier counters: %s", tr.gw.TierEvents())
	}
	// The revived shard's sessions came back via MOVE/HANDOFF, not cold.
	if revived.SessionEvents().Get("handoff_in") == 0 {
		t.Fatal("no sessions were handed back to the revived shard")
	}
}

// TestGatewayChaosDeterministicDrops: a seeded fault model upstream of the
// gateway produces byte-identical drop-counter totals across runs — the
// tier's chaos observability is reproducible, so a failure seen once can
// be replayed exactly.
func TestGatewayChaosDeterministicDrops(t *testing.T) {
	run := func(seed int64) map[string]int64 {
		tr := startTier(t, 1, func(cfg *Config) {
			cfg.Replication = 1
		})
		chaos, err := emu.NewWireChaos(emu.FaultModel{Loss: 0.2, Corrupt: 0.3}, seed)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("udp", tr.gw.UDPAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		sent := int64(0)
		for station := uint32(1); station <= 10; station++ {
			for s := uint32(1); s <= 30; s++ {
				r := schedd.Report{AP: 1, Station: station, Seq: s, SNRMilliDB: 12000}
				buf, err := r.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if chaos.Drop(station, s) {
					continue
				}
				buf = chaos.Corrupt(buf, station, s)
				if _, err := conn.Write(buf); err != nil {
					t.Fatal(err)
				}
				sent++
				want := sent
				waitFor(t, 5*time.Second, "paced chaos datagram", func() bool {
					return tr.gw.IngestEvents().Get("datagrams") >= want
				})
			}
		}
		totals := tr.gw.DropEvents().Snapshot()
		totals["accepted"] = tr.gw.IngestEvents().Get("accepted")
		totals["dup"] = tr.gw.IngestEvents().Get("dup")
		totals["fast_reject"] = tr.gw.IngestEvents().Get("fast_reject")
		return totals
	}

	a, b := run(42), run(42)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same-seed chaos diverged on %s: %d vs %d\na=%v\nb=%v", k, v, b[k], a, b)
		}
	}
	faults := int64(0)
	for k, v := range a {
		if k != "accepted" {
			faults += v
		}
	}
	if faults == 0 || a["accepted"] == 0 {
		t.Fatalf("chaos run exercised nothing: %v", a)
	}
}
