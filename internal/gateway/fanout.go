package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"
)

// errorResponse mirrors the daemon's error reply shape so AP clients can
// talk to a gateway or a bare daemon with the same parser.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// slotReply is one schedule slot as shards report it and the gateway
// re-emits it. B is zero for serial (single-station) slots — station 0 is
// invalid on the wire, so zero is unambiguous.
type slotReply struct {
	Mode  string  `json:"mode"`
	A     uint32  `json:"a"`
	B     uint32  `json:"b,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	MS    float64 `json:"ms"`
}

// shardReply is the union of the daemon's SCHED reply and its error
// shape; exactly one side is populated.
type shardReply struct {
	Error        string      `json:"error"`
	RetryAfterMS int64       `json:"retry_after_ms"`
	AP           uint32      `json:"ap"`
	Level        string      `json:"level"`
	Clients      int         `json:"clients"`
	TotalMS      float64     `json:"total_ms"`
	Gain         float64     `json:"gain"`
	Slots        []slotReply `json:"slots"`
}

// partOutcome is one fan-out target's final verdict: the winning reply
// (primary or hedge) or the error after every attempt failed.
type partOutcome struct {
	target int // primary shard index
	shard  int // shard that actually answered (hedge may differ)
	hedged bool
	shadow bool // replica-slice query (shadow AP namespace)
	reply  *shardReply
	err    error
}

// shardPart reports one target's outcome inside a merged reply.
type shardPart struct {
	Shard   string `json:"shard"`
	Level   string `json:"level,omitempty"`
	Clients int    `json:"clients"`
	Hedged  bool   `json:"hedged,omitempty"`
	Shadow  bool   `json:"shadow,omitempty"`
	Error   string `json:"error,omitempty"`
}

// schedResponse is the gateway's merged schedule. Degraded is the tier's
// honesty flag: true whenever a station's primary shard is off the live
// ring or a fan-out target failed every attempt, meaning the schedule may
// be missing stations that have fresh reports somewhere.
type schedResponse struct {
	AP       uint32      `json:"ap"`
	Degraded bool        `json:"degraded"`
	Epoch    uint64      `json:"epoch"`
	Clients  int         `json:"clients"`
	TotalMS  float64     `json:"total_ms"`
	Gain     float64     `json:"gain"`
	Slots    []slotReply `json:"slots"`
	Shards   []shardPart `json:"shards"`
	ElapsMS  float64     `json:"elapsed_ms"`
}

// shardStatus is one shard's line in the gateway HEALTH reply.
type shardStatus struct {
	Name     string `json:"name"`
	Live     bool   `json:"live"`
	Instance string `json:"instance,omitempty"`
}

// healthResponse is the gateway's HEALTH reply.
type healthResponse struct {
	UptimeMS int64            `json:"uptime_ms"`
	Epoch    uint64           `json:"epoch"`
	Stations int              `json:"stations"`
	APs      int              `json:"aps"`
	Degraded bool             `json:"degraded"`
	Shards   []shardStatus    `json:"shards"`
	Counters map[string]int64 `json:"counters"`
}

// acceptLoop accepts AP-facing query connections.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.connMu.Lock()
		if s.closing.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	conn.Close()
}

// armRead sets the idle read deadline for the next command, serialised
// with Shutdown's deadline nudge like the daemon's.
func (s *Server) armRead(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing.Load() {
		return false
	}
	if err := conn.SetReadDeadline(s.cfg.now().Add(s.cfg.IdleTimeout)); err != nil {
		// A conn that cannot arm its idle deadline must not be read from
		// unarmed; telling the handler to hang up is the safe failure.
		return false
	}
	return true
}

// handleConn serves newline-delimited commands on one connection:
//
//	SCHED <apID>   -> one-line JSON merged schedule with a degraded flag
//	HEALTH         -> one-line JSON tier health (shards, epoch, counters)
//	QUIT           -> close the connection
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(conn)
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 4096)
	for {
		if !s.armRead(conn) {
			return
		}
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "SCHED":
			if len(fields) != 2 {
				s.queryEvents.Inc("bad")
				enc.Encode(errorResponse{Error: "usage: SCHED <apID>"})
				continue
			}
			ap, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				s.queryEvents.Inc("bad")
				enc.Encode(errorResponse{Error: "bad ap id: " + fields[1]})
				continue
			}
			s.queryEvents.Inc("queries")
			if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
				s.inflight.Add(-1)
				s.queryEvents.Inc("overload")
				enc.Encode(errorResponse{
					Error:        "gateway overloaded",
					RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
				})
				continue
			}
			resp := s.serveSched(s.baseCtx, uint32(ap))
			s.inflight.Add(-1)
			enc.Encode(resp)
		case "HEALTH":
			s.queryEvents.Inc("health")
			enc.Encode(s.health())
		case "QUIT":
			return
		default:
			s.queryEvents.Inc("bad")
			enc.Encode(errorResponse{Error: "unknown command: " + fields[0]})
		}
	}
}

// health assembles the gateway HEALTH reply.
func (s *Server) health() healthResponse {
	s.ringMu.Lock()
	epoch := s.epoch
	degraded := false
	shards := make([]shardStatus, len(s.shards))
	for i, sh := range s.shards {
		shards[i] = shardStatus{Name: sh.addr.Name, Live: sh.live, Instance: sh.instance}
		if !sh.live {
			degraded = true
		}
	}
	s.ringMu.Unlock()
	s.idxMu.Lock()
	stations, aps := len(s.stations), len(s.apStations)
	s.idxMu.Unlock()
	counters := s.ingestEvents.Snapshot()
	for _, g := range []map[string]int64{
		s.queryEvents.Snapshot(), s.tierEvents.Snapshot(), s.rebalanceEvents.Snapshot(),
	} {
		for k, v := range g {
			counters[k] = v
		}
	}
	return healthResponse{
		UptimeMS: s.cfg.now().Sub(s.started).Milliseconds(),
		Epoch:    epoch,
		Stations: stations,
		APs:      aps,
		Degraded: degraded,
		Shards:   shards,
		Counters: counters,
	}
}

// serveSched fans one AP's schedule query out to the shards owning its
// stations and merges the answers. Partial failure degrades: whatever
// parts arrive are merged and the reply says so.
func (s *Server) serveSched(ctx context.Context, ap uint32) any {
	start := s.cfg.now()
	stations := s.apStationSnapshot(ap)

	s.ringMu.Lock()
	live, full, epoch := s.live, s.full, s.epoch
	s.ringMu.Unlock()

	targets, shadows, primaryDown := s.planTargets(live, full, stations)
	if ap&replicaAPBit != 0 {
		// The AP id already names a shadow slice (a diagnostic query);
		// re-marking it would just duplicate every part.
		shadows = nil
	}
	if len(targets) == 0 {
		s.queryEvents.Inc("ok")
		s.queryEvents.Inc("degraded")
		s.queryEvents.Inc("empty")
		return schedResponse{
			AP: ap, Degraded: true, Epoch: epoch,
			ElapsMS: float64(s.cfg.now().Sub(start)) / 1e6,
		}
	}
	if len(stations) == 0 {
		s.queryEvents.Inc("fanout_blind")
	}

	qctx, cancel := context.WithTimeout(ctx, s.cfg.QueryDeadline)
	defer cancel()
	launched := len(targets) + len(shadows)
	results := make(chan partOutcome, launched)
	for t, sts := range targets {
		s.queryEvents.Inc("fanout")
		go s.queryWithHedge(qctx, t, s.hedgeTarget(live, sts, targets), ap, results)
		if !shadows[t] {
			continue
		}
		// The target inherited stations whose primary is off the live ring;
		// their warm reports sit in this shard's shadow (replica) namespace
		// until fresh traffic lands under the real AP. Ask for that slice too.
		s.queryEvents.Inc("fanout")
		go func(t int) {
			reply, err := s.queryShard(qctx, t, ap|replicaAPBit)
			results <- partOutcome{target: t, shard: t, shadow: true, reply: reply, err: err}
		}(t)
	}
	parts := make([]partOutcome, 0, launched)
	for i := 0; i < launched; i++ {
		parts = append(parts, <-results)
	}
	resp := s.merge(ap, epoch, parts, primaryDown)
	elapsed := s.cfg.now().Sub(start)
	resp.ElapsMS = float64(elapsed) / 1e6
	s.queryHist.Observe(elapsed.Seconds())
	s.queryEvents.Inc("ok")
	if resp.Degraded {
		s.queryEvents.Inc("degraded")
	}
	if len(resp.Slots) == 0 {
		s.queryEvents.Inc("empty")
	}
	return resp
}

// planTargets groups the AP's stations by live-ring owner. A station whose
// full-ring owner is off the live ring marks the query degraded before a
// single shard is asked — its primary may hold fresher reports than the
// replica now serving it — and marks the serving shard for a shadow-slice
// query, because the inherited stations live in its replica namespace
// until fresh traffic lands under the real AP. With no indexed stations
// (a cold gateway) the fan-out goes blind, real and shadow, to every live
// shard.
func (s *Server) planTargets(live, full *hashRing, stations []uint32) (map[int][]uint32, map[int]bool, bool) {
	targets := make(map[int][]uint32)
	shadows := make(map[int]bool)
	primaryDown := false
	if len(stations) == 0 {
		for i := range s.shards {
			if i < len(live.live) && live.live[i] {
				targets[i] = nil
				shadows[i] = true
			}
		}
		return targets, shadows, primaryDown
	}
	for _, st := range stations {
		lo, ok := live.owner(st)
		if !ok {
			primaryDown = true
			continue
		}
		targets[lo] = append(targets[lo], st)
		if fo, ok := full.owner(st); ok && !live.live[fo] {
			primaryDown = true
			shadows[lo] = true
		}
	}
	return targets, shadows, primaryDown
}

// hedgeTarget picks where to hedge a slow target's query: the live-ring
// successor holding replicas for the most of the target's stations
// (majority vote, lowest index on ties, so the choice is deterministic).
// Returns -1 when there is no useful hedge — no stations, no distinct
// successor, or the best successor is already a fan-out target whose own
// answer covers the replicas anyway.
func (s *Server) hedgeTarget(live *hashRing, stations []uint32, targets map[int][]uint32) int {
	votes := make(map[int]int)
	for _, st := range stations {
		succ := live.successors(st, 2)
		if len(succ) == 2 {
			votes[succ[1]]++
		}
	}
	best, bestVotes := -1, 0
	for idx, v := range votes {
		if v > bestVotes || (v == bestVotes && best >= 0 && idx < best) {
			best, bestVotes = idx, v
		}
	}
	if best < 0 {
		return -1
	}
	if _, alreadyTarget := targets[best]; alreadyTarget {
		return -1
	}
	return best
}

// queryWithHedge drives one fan-out target to a single outcome: the
// primary shard's answer, or — when the primary is slow or failing and a
// replica shard exists — the hedge's. The hedge asks the replica for its
// shadow slice, since that is where the primary's stations are mirrored.
// It fires after HedgeDelay, or immediately if the primary fails first;
// first success wins.
func (s *Server) queryWithHedge(ctx context.Context, primary, hedge int, ap uint32, out chan<- partOutcome) {
	type oneResult struct {
		shard  int
		hedged bool
		reply  *shardReply
		err    error
	}
	inner := make(chan oneResult, 2)
	launch := func(shard int, hedged bool) {
		go func() {
			apArg := ap
			if hedged {
				apArg |= replicaAPBit
			}
			reply, err := s.queryShard(ctx, shard, apArg)
			inner <- oneResult{shard: shard, hedged: hedged, reply: reply, err: err}
		}()
	}
	launch(primary, false)

	var hedgeCh <-chan time.Time
	if hedge >= 0 {
		t := time.NewTimer(s.cfg.HedgeDelay)
		defer t.Stop()
		hedgeCh = t.C
	}
	fireHedge := func() {
		hedgeCh = nil
		s.queryEvents.Inc("hedges")
		launch(hedge, true)
	}

	outstanding := 1
	hedgeFired := false
	var firstErr error
	for {
		select {
		case r := <-inner:
			if r.err == nil {
				if r.hedged {
					s.queryEvents.Inc("hedge_wins")
				}
				out <- partOutcome{target: primary, shard: r.shard, hedged: r.hedged, reply: r.reply}
				return
			}
			if firstErr == nil {
				firstErr = r.err
			}
			outstanding--
			if outstanding == 0 {
				if hedge >= 0 && !hedgeFired {
					// The primary burned out before the hedge timer; the
					// replica is the only path left. Fire it now.
					hedgeFired = true
					outstanding++
					fireHedge()
					continue
				}
				out <- partOutcome{target: primary, shard: primary, err: firstErr}
				return
			}
		case <-hedgeCh:
			hedgeFired = true
			outstanding++
			fireHedge()
		}
	}
}

// queryShard runs one shard's SCHED query under the per-attempt deadline,
// retrying with capped doubling backoff. A "no fresh reports" refusal is
// an empty success — the shard is healthy, it just has nothing for this
// AP — while overload answers are retried after the shard's own hint.
func (s *Server) queryShard(ctx context.Context, idx int, ap uint32) (*shardReply, error) {
	addr := s.shards[idx].addr.TCP
	line := fmt.Sprintf("SCHED %d\n", ap)
	backoff := s.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < s.cfg.ShardRetries; attempt++ {
		if attempt > 0 {
			s.queryEvents.Inc("retries")
			if err := sleepCtx(ctx, backoff); err != nil {
				break
			}
			if backoff *= 2; backoff > 4*s.cfg.RetryBackoff {
				backoff = 4 * s.cfg.RetryBackoff
			}
		}
		var reply shardReply
		if err := s.roundTrip(ctx, addr, line, s.cfg.ShardDeadline, &reply); err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if reply.Error != "" {
			if strings.Contains(reply.Error, "no fresh reports") {
				return &shardReply{AP: ap}, nil
			}
			lastErr = errors.New(reply.Error)
			if reply.RetryAfterMS > 0 {
				if hint := time.Duration(reply.RetryAfterMS) * time.Millisecond; hint > backoff {
					backoff = hint
				}
			}
			continue
		}
		return &reply, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("gateway: shard %s: %w", s.shards[idx].addr.Name, lastErr)
}

// merge folds the fan-out parts into one schedule. Parts are processed in
// a deterministic order (real primaries first, then replica slices —
// shadow and hedge answers — by shard index) and a slot is dropped — and
// counted — when any of its stations already appeared in an earlier part:
// after a failover a station can be live in both the real and the shadow
// namespace, and it must not be scheduled twice in one frame.
func (s *Server) merge(ap uint32, epoch uint64, parts []partOutcome, primaryDown bool) schedResponse {
	sort.Slice(parts, func(i, j int) bool {
		ri := parts[i].hedged || parts[i].shadow
		rj := parts[j].hedged || parts[j].shadow
		if ri != rj {
			return !ri
		}
		return parts[i].shard < parts[j].shard
	})
	resp := schedResponse{AP: ap, Epoch: epoch, Degraded: primaryDown}
	emitted := make(map[uint32]bool)
	var gainNum, gainDen float64
	for _, p := range parts {
		part := shardPart{Shard: s.shards[p.shard].addr.Name, Hedged: p.hedged, Shadow: p.shadow}
		if p.err != nil {
			s.queryEvents.Inc("shard_err")
			resp.Degraded = true
			part.Shard = s.shards[p.target].addr.Name
			part.Error = p.err.Error()
			resp.Shards = append(resp.Shards, part)
			continue
		}
		if p.hedged {
			// The hedge answered for the primary, but only for the stations
			// replicated there; the primary's full table never spoke.
			resp.Degraded = true
		}
		part.Level = p.reply.Level
		for _, slot := range p.reply.Slots {
			if emitted[slot.A] || (slot.B != 0 && emitted[slot.B]) {
				s.queryEvents.Inc("merge_dup_slots")
				continue
			}
			emitted[slot.A] = true
			if slot.B != 0 {
				emitted[slot.B] = true
			}
			resp.Slots = append(resp.Slots, slot)
			resp.TotalMS += slot.MS
			part.Clients++
			if slot.B != 0 {
				part.Clients++
			}
		}
		if p.reply.TotalMS > 0 {
			gainNum += p.reply.Gain * p.reply.TotalMS
			gainDen += p.reply.TotalMS
		}
		resp.Shards = append(resp.Shards, part)
	}
	resp.Clients = len(emitted)
	if gainDen > 0 {
		resp.Gain = gainNum / gainDen
	}
	return resp
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
