package gateway

import "testing"

func allLive(n int) []bool {
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	return live
}

// TestRingDeterministicAndStable: the same membership always builds the
// same ring, and ownership follows shard names, not config order context.
func TestRingDeterministicAndStable(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := buildRing(names, allLive(3), 64, 1)
	r2 := buildRing(names, allLive(3), 64, 1)
	for st := uint32(1); st <= 1000; st++ {
		o1, ok1 := r1.owner(st)
		o2, ok2 := r2.owner(st)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("station %d: owners diverge across identical builds (%d vs %d)", st, o1, o2)
		}
	}
}

// TestRingBalance: vnodes spread ownership so no shard owns everything.
func TestRingBalance(t *testing.T) {
	r := buildRing([]string{"a", "b", "c"}, allLive(3), 64, 1)
	counts := make([]int, 3)
	for st := uint32(1); st <= 3000; st++ {
		o, _ := r.owner(st)
		counts[o]++
	}
	for i, c := range counts {
		if c < 300 {
			t.Fatalf("shard %d owns only %d of 3000 stations; ring badly unbalanced: %v", i, c, counts)
		}
	}
}

// TestRingMinimalDisruption: ejecting one shard moves only its stations —
// every other station keeps its owner. This is the property that makes
// rebalances proportional to the failure, not the fleet.
func TestRingMinimalDisruption(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	before := buildRing(names, allLive(4), 64, 1)
	live := allLive(4)
	live[1] = false
	after := buildRing(names, live, 64, 2)
	moved, kept := 0, 0
	for st := uint32(1); st <= 2000; st++ {
		ob, _ := before.owner(st)
		oa, _ := after.owner(st)
		if ob != 1 {
			if oa != ob {
				t.Fatalf("station %d moved from live shard %d to %d on an unrelated ejection", st, ob, oa)
			}
			kept++
			continue
		}
		if oa == 1 {
			t.Fatalf("station %d still owned by the ejected shard", st)
		}
		moved++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

// TestRingSuccessorsDistinct: successors never repeat a shard and start
// with the owner, so owner+replica targeting is well defined.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := buildRing([]string{"a", "b", "c"}, allLive(3), 64, 1)
	for st := uint32(1); st <= 500; st++ {
		succ := r.successors(st, 3)
		if len(succ) != 3 {
			t.Fatalf("station %d: got %d successors from a 3-shard ring", st, len(succ))
		}
		owner, _ := r.owner(st)
		if succ[0] != owner {
			t.Fatalf("station %d: successors start at %d, owner is %d", st, succ[0], owner)
		}
		seen := map[int]bool{}
		for _, idx := range succ {
			if seen[idx] {
				t.Fatalf("station %d: duplicate shard %d in successors %v", st, idx, succ)
			}
			seen[idx] = true
		}
	}
}

// TestRingEmpty: an all-dead ring answers ok=false rather than panicking.
func TestRingEmpty(t *testing.T) {
	r := buildRing([]string{"a"}, []bool{false}, 64, 1)
	if _, ok := r.owner(7); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if succ := r.successors(7, 2); len(succ) != 0 {
		t.Fatalf("empty ring returned successors %v", succ)
	}
	if r.memberCount() != 0 {
		t.Fatal("empty ring counts members")
	}
}
