// Package gateway implements the fault-tolerant front tier of the sharded
// scheduling deployment: a sicgw process that stands between stations/APs
// and a ring of sicschedd scheduler shards.
//
// The gateway does four jobs, each designed to degrade rather than fail:
//
//   - Ingest filtering (ingest.go): report datagrams are validated with a
//     cheap fixed-prefix reject (filter.go) and a full CRC decode before
//     any shard sees them, then deduplicated by per-station sequence
//     number, so a corrupted or replayed flood burns gateway cycles, never
//     shard table space.
//   - Replicated forwarding (ingest.go): each accepted report is forwarded
//     to the station's owner shard and its next Replication-1 distinct
//     ring successors, so a replica can answer for a dead or deaf owner.
//   - Health-checked fan-out (fanout.go): SCHED queries fan out to the
//     shards owning the AP's stations under per-shard deadlines, with
//     capped-backoff retries and a hedged request to the stations' replica
//     shard when the owner is slow. Partial answers merge into one
//     schedule carrying an explicit degraded flag — the tier returns what
//     it has instead of nothing.
//   - Session-aware rebalancing (prober.go, rebalance.go): an active
//     prober ejects shards after consecutive HEALTH failures and re-admits
//     them after a probation streak; every ring change bumps a monotonic
//     epoch, pushes it to the shards, and migrates affected sessions with
//     the MOVE handoff protocol so stations keep their scheduling context
//     across shard churn.
//
// Everything observable lands in sicgw_* metrics: per-shard health
// (sicgw_shard_*), ingest and drop counters aligned with the daemon's
// reject reasons, fan-out/hedge outcomes, and rebalance latency.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// ShardAddr names one scheduler shard and its two listeners. Name is the
// shard's ring identity: it must be stable across shard restarts (the ring
// arc follows the name, not the address) and unique within the tier.
type ShardAddr struct {
	Name string
	// TCP is the shard's query listener (SCHED/HEALTH/MOVE/EPOCH).
	TCP string
	// UDP is the shard's report ingest listener.
	UDP string
}

// Config parameterises the gateway. Zero values get defaults from
// fillDefaults; addresses default to loopback with kernel-assigned ports.
type Config struct {
	// UDPAddr receives station report datagrams.
	UDPAddr string
	// TCPAddr serves AP-facing SCHED/HEALTH queries.
	TCPAddr string
	// Shards is the scheduler tier. At least one shard is required.
	Shards []ShardAddr
	// Replication is how many shards receive each accepted report: the
	// ring owner plus Replication-1 distinct successors. Default 2, so
	// every station has one warm replica.
	Replication int
	// VNodes is the number of ring points per shard. Default 64.
	VNodes int
	// MaxStations bounds the gateway's station index. Default 1<<20.
	MaxStations int
	// QueueDepth bounds the ingest queue between the UDP reader and the
	// filter worker; overflow sheds oldest-first. Default 4096.
	QueueDepth int

	// ProbeInterval is the per-shard HEALTH probe period. Default 500ms;
	// tests park it at an hour to take the prober out of the picture.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip. Default 250ms.
	ProbeTimeout time.Duration
	// FailThreshold ejects a live shard after this many consecutive probe
	// failures. Default 3.
	FailThreshold int
	// RecoverThreshold re-admits an ejected shard after this many
	// consecutive probe successes (its probation streak). Default 2.
	RecoverThreshold int

	// QueryDeadline bounds one AP-facing SCHED query end to end. Default
	// 500ms.
	QueryDeadline time.Duration
	// ShardDeadline bounds one shard query attempt. Default 150ms.
	ShardDeadline time.Duration
	// ShardRetries is the attempt budget per shard query. Default 2.
	ShardRetries int
	// RetryBackoff is the initial delay between shard query attempts,
	// doubled per retry and capped at 4x. Default 20ms.
	RetryBackoff time.Duration
	// HedgeDelay is how long a shard query may run before the gateway
	// hedges it to the stations' replica shard. Default 30ms.
	HedgeDelay time.Duration
	// MaxInflight bounds concurrently-served SCHED queries; excess is
	// answered with an overload error and a retry-after hint. Default 64.
	MaxInflight int
	// RetryAfter is the hint returned with overload responses. Default
	// 50ms.
	RetryAfter time.Duration
	// IdleTimeout closes query connections with no traffic. Default 60s.
	IdleTimeout time.Duration

	// RebalanceWorkers bounds concurrent MOVE transfers during one
	// rebalance. Default 8.
	RebalanceWorkers int
	// MoveTimeout bounds one MOVE round trip. Default 2s.
	MoveTimeout time.Duration

	// Registry receives the gateway's sicgw_* metrics. Default: a fresh
	// private registry.
	Registry *obs.Registry

	// now is the gateway's clock; a test hook like the daemon's.
	now func() time.Time
}

func (c Config) fillDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.TCPAddr == "" {
		c.TCPAddr = "127.0.0.1:0"
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxStations <= 0 {
		c.MaxStations = 1 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	if c.QueryDeadline <= 0 {
		c.QueryDeadline = 500 * time.Millisecond
	}
	if c.ShardDeadline <= 0 {
		c.ShardDeadline = 150 * time.Millisecond
	}
	if c.ShardRetries <= 0 {
		c.ShardRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.RebalanceWorkers <= 0 {
		c.RebalanceWorkers = 8
	}
	if c.MoveTimeout <= 0 {
		c.MoveTimeout = 2 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// shardState is the prober's per-shard view. Transitions happen under the
// server's ring mutex so a probe verdict, the ring rebuild it triggers and
// the epoch bump are one atomic step.
type shardState struct {
	idx     int
	addr    ShardAddr
	udpAddr *net.UDPAddr

	live bool
	// fails counts consecutive probe failures while live; oks counts
	// consecutive probe successes while ejected (the probation streak).
	fails, oks int
	// instance is the shard's last-seen per-boot nonce; a change means the
	// shard restarted and (without a data dir) lost its sessions.
	instance string

	up           *obs.Gauge
	probes       *obs.Counter
	probeFails   *obs.Counter
	ejectedCount *obs.Counter
	readmits     *obs.Counter
	restarts     *obs.Counter
}

// stationRec is the gateway's per-station index entry: enough to dedup
// reports and to know which AP's fan-out the station belongs to.
type stationRec struct {
	ap  uint32
	seq uint32
}

// Server is the gateway tier. Create with Start; stop with Shutdown.
type Server struct {
	cfg     Config
	started time.Time

	udp *net.UDPConn
	tcp net.Listener

	queue    chan []byte
	inflight atomic.Int64
	closing  atomic.Bool
	done     chan struct{}

	// ringMu guards shard state and bothrings. full maps stations over
	// every configured shard (the no-failure assignment); live maps over
	// the currently-admitted shards and is what ingest and fan-out use.
	ringMu sync.Mutex
	shards []*shardState
	full   *hashRing
	live   *hashRing
	epoch  uint64

	// idxMu guards the station index.
	idxMu      sync.Mutex
	stations   map[uint32]*stationRec
	apStations map[uint32]map[uint32]struct{}

	ingestEvents    *obs.Group
	dropEvents      *obs.Group
	queryEvents     *obs.Group
	tierEvents      *obs.Group
	rebalanceEvents *obs.Group
	epochGauge      *obs.Gauge
	queryHist       *obs.Histogram
	rebalanceHist   *obs.Histogram

	// baseCtx parents probes, fan-outs and rebalances; cancelled by
	// Shutdown.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	wg     sync.WaitGroup // reader, filter worker, acceptor, probers
	connWG sync.WaitGroup // per-connection handlers
	rebWG  sync.WaitGroup // in-flight rebalances

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// ingestEventNames is every sicgw_ingest_total event.
func ingestEventNames() []string {
	return []string{
		"datagrams",     // datagrams read off the socket
		"shed",          // datagrams shed by the bounded queue
		"fast_reject",   // datagrams rejected by the prefix filter alone
		"accepted",      // reports admitted to the index and forwarded
		"dup",           // reports rejected by sequence-number dedup
		"roam",          // accepted reports that moved a station between APs
		"station_limit", // reports for a new station past MaxStations
		"ap_reserved",   // reports claiming an AP in the shadow replica namespace
		"forwarded",     // report copies forwarded to shards
		"forward_err",   // forward writes that failed
	}
}

// queryEventNames is every sicgw_query_total event.
func queryEventNames() []string {
	return []string{
		"queries",         // SCHED commands received
		"ok",              // queries answered (possibly degraded)
		"degraded",        // answers carrying degraded=true
		"empty",           // answers with no slots at all
		"bad",             // malformed query lines
		"overload",        // queries shed with a retry-after hint
		"health",          // HEALTH commands
		"fanout",          // shard queries launched (primaries)
		"fanout_blind",    // fan-outs to every live shard (unknown AP)
		"retries",         // shard query attempts after the first
		"hedges",          // hedged requests fired
		"hedge_wins",      // answers where the hedge beat the primary
		"shard_err",       // shard queries that failed all attempts
		"merge_dup_slots", // merged-out slots whose station already appeared
	}
}

// tierEventNames is every sicgw_tier_total event.
func tierEventNames() []string {
	return []string{
		"probes",         // HEALTH probes sent
		"probe_fail",     // probes that failed
		"ejections",      // live shards ejected
		"readmits",       // ejected shards re-admitted after probation
		"restarts",       // live shards seen restarting (instance changed)
		"epoch_push",     // EPOCH pushes acknowledged
		"epoch_push_err", // EPOCH pushes that failed
	}
}

// rebalanceEventNames is every sicgw_rebalance_total event.
func rebalanceEventNames() []string {
	return []string{
		"rebalances",   // rebalance passes run
		"moves",        // MOVE transfers acknowledged
		"move_noop",    // MOVEs skipped because the source held no session
		"move_err",     // MOVEs that failed
		"skip_dead",    // migrations skipped because the source is down
		"remigrations", // stations re-pulled from replicas after a restart
	}
}

// Start binds the sockets, builds the ring and launches the serving and
// probing goroutines. Every shard starts live; the prober ejects the dead
// ones within FailThreshold probes.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.fillDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("gateway: at least one shard required")
	}
	names := make(map[string]bool, len(cfg.Shards))
	for _, sh := range cfg.Shards {
		if sh.Name == "" {
			return nil, errors.New("gateway: shard with empty name")
		}
		if names[sh.Name] {
			return nil, fmt.Errorf("gateway: duplicate shard name %q", sh.Name)
		}
		names[sh.Name] = true
	}
	if cfg.Replication > len(cfg.Shards) {
		cfg.Replication = len(cfg.Shards)
	}

	uaddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		return nil, fmt.Errorf("gateway: resolving UDP addr: %w", err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("gateway: binding UDP: %w", err)
	}
	tcp, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("gateway: binding TCP: %w", err)
	}

	s := &Server{
		cfg:        cfg,
		started:    cfg.now(),
		udp:        udp,
		tcp:        tcp,
		queue:      make(chan []byte, cfg.QueueDepth),
		done:       make(chan struct{}),
		stations:   make(map[uint32]*stationRec),
		apStations: make(map[uint32]map[uint32]struct{}),
		conns:      make(map[net.Conn]struct{}),
		ingestEvents: cfg.Registry.Group("sicgw_ingest_total",
			"gateway report ingest: filtering, dedup and replicated forwarding", "event",
			ingestEventNames()...),
		dropEvents: cfg.Registry.Group("sicgw_drop_total",
			"report datagrams rejected before reaching any shard, by reason", "reason",
			schedd.DropReasons()...),
		queryEvents: cfg.Registry.Group("sicgw_query_total",
			"gateway query serving: fan-out, hedging and merge outcomes", "event",
			queryEventNames()...),
		tierEvents: cfg.Registry.Group("sicgw_tier_total",
			"shard tier management: probes, ejections, re-admissions, epoch pushes", "event",
			tierEventNames()...),
		rebalanceEvents: cfg.Registry.Group("sicgw_rebalance_total",
			"session migration driven by ring changes", "event",
			rebalanceEventNames()...),
		epochGauge: cfg.Registry.Gauge("sicgw_ring_epoch",
			"current ring epoch (bumped on every membership change)", nil),
		queryHist: cfg.Registry.Histogram("sicgw_query_seconds",
			"end-to-end gateway SCHED latency (fan-out + merge)",
			obs.DefLatencyBuckets(), nil),
		rebalanceHist: cfg.Registry.Histogram("sicgw_rebalance_seconds",
			"wall time of one session rebalance pass (plan + MOVE transfers)",
			obs.DefLatencyBuckets(), nil),
	}
	for i, sh := range cfg.Shards {
		ua, err := net.ResolveUDPAddr("udp", sh.UDP)
		if err != nil {
			udp.Close()
			tcp.Close()
			return nil, fmt.Errorf("gateway: resolving shard %q UDP addr: %w", sh.Name, err)
		}
		labels := obs.Labels{"shard": sh.Name}
		s.shards = append(s.shards, &shardState{
			idx:     i,
			addr:    sh,
			udpAddr: ua,
			live:    true,
			up: cfg.Registry.Gauge("sicgw_shard_up",
				"1 when the shard is admitted to the live ring, 0 when ejected", labels),
			probes: cfg.Registry.Counter("sicgw_shard_probes_total",
				"HEALTH probes sent to this shard", labels),
			probeFails: cfg.Registry.Counter("sicgw_shard_probe_failures_total",
				"HEALTH probes this shard failed", labels),
			ejectedCount: cfg.Registry.Counter("sicgw_shard_ejections_total",
				"times this shard was ejected from the live ring", labels),
			readmits: cfg.Registry.Counter("sicgw_shard_readmits_total",
				"times this shard was re-admitted after probation", labels),
			restarts: cfg.Registry.Counter("sicgw_shard_restarts_total",
				"times this shard was seen restarting (instance nonce changed)", labels),
		})
		s.shards[i].up.Set(1)
	}

	allLive := make([]bool, len(cfg.Shards))
	for i := range allLive {
		allLive[i] = true
	}
	s.full = buildRing(s.shardNames(), allLive, cfg.VNodes, 0)
	s.epoch = 1
	s.live = buildRing(s.shardNames(), allLive, cfg.VNodes, s.epoch)
	s.epochGauge.Set(float64(s.epoch))

	//lint:allow ctxfirst the gateway owns its tier's lifetimes; this is the one root context, cancelled by Shutdown
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.wg.Add(3 + len(s.shards))
	go s.readLoop()
	go s.filterLoop()
	go s.acceptLoop()
	for _, sh := range s.shards {
		go s.probeLoop(sh)
	}
	return s, nil
}

// shardNames returns the tier's ring identities in index order.
func (s *Server) shardNames() []string {
	names := make([]string, len(s.shards))
	for i, sh := range s.shards {
		names[i] = sh.addr.Name
	}
	return names
}

// UDPAddr returns the bound report-ingest address.
func (s *Server) UDPAddr() net.Addr { return s.udp.LocalAddr() }

// TCPAddr returns the bound query address.
func (s *Server) TCPAddr() net.Addr { return s.tcp.Addr() }

// Registry exposes the gateway's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// IngestEvents exposes the ingest counters (datagrams, dedup, forwards).
func (s *Server) IngestEvents() *obs.Group { return s.ingestEvents }

// DropEvents exposes the pre-shard drop counters, keyed like the daemon's.
func (s *Server) DropEvents() *obs.Group { return s.dropEvents }

// QueryEvents exposes the fan-out/hedge/merge counters.
func (s *Server) QueryEvents() *obs.Group { return s.queryEvents }

// TierEvents exposes the probe/ejection/epoch counters.
func (s *Server) TierEvents() *obs.Group { return s.tierEvents }

// RebalanceEvents exposes the session-migration counters.
func (s *Server) RebalanceEvents() *obs.Group { return s.rebalanceEvents }

// Epoch returns the current ring epoch.
func (s *Server) Epoch() uint64 {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	return s.epoch
}

// LiveShards returns the names of the shards currently on the live ring.
func (s *Server) LiveShards() []string {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	var names []string
	for _, sh := range s.shards {
		if sh.live {
			names = append(names, sh.addr.Name)
		}
	}
	return names
}

// Stations reports the station index size.
func (s *Server) Stations() int {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	return len(s.stations)
}

// Shutdown stops ingest, probing and query serving, draining in-flight
// queries and rebalances until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closing.Swap(true) {
		return errors.New("gateway: already shut down")
	}
	s.udp.Close()
	s.tcp.Close()
	close(s.done)
	s.wg.Wait()

	s.connMu.Lock()
	for conn := range s.conns {
		if err := conn.SetReadDeadline(s.cfg.now()); err != nil {
			// The nudge did not land, so the idle read it was meant to wake
			// may never return; close outright rather than hang the drain.
			conn.Close()
		}
	}
	s.connMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		s.rebWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.cancelBase()
		return nil
	case <-ctx.Done():
		s.cancelBase()
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		<-drained
		return fmt.Errorf("gateway: drain cut short: %w", ctx.Err())
	}
}
