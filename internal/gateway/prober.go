package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// shardHealth is the slice of the daemon's HEALTH reply the prober cares
// about: identity and epoch. Instance is a per-boot nonce; RingEpoch is
// the last epoch the gateway pushed, which an in-memory restart resets to
// zero — together they let the prober tell "healthy", "restarted and lost
// its sessions" and "never saw my ring" apart.
type shardHealth struct {
	Instance  string `json:"instance"`
	RingEpoch uint64 `json:"ring_epoch"`
}

// probeLoop probes one shard at the configured interval until shutdown.
func (s *Server) probeLoop(sh *shardState) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.probeOnce(s.baseCtx, sh)
		}
	}
}

// probeOnce runs one HEALTH round trip and applies the verdict to the
// shard's state machine.
func (s *Server) probeOnce(ctx context.Context, sh *shardState) {
	s.tierEvents.Inc("probes")
	sh.probes.Inc()
	health, err := s.probeHealth(ctx, sh.addr.TCP)
	if err != nil {
		s.tierEvents.Inc("probe_fail")
		sh.probeFails.Inc()
	}
	s.applyProbe(ctx, sh, health, err == nil)
}

// probeHealth dials the shard and reads one HEALTH reply under the probe
// timeout.
func (s *Server) probeHealth(ctx context.Context, addr string) (shardHealth, error) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(pctx, "tcp", addr)
	if err != nil {
		return shardHealth{}, err
	}
	defer conn.Close()
	// Arm unconditionally: if the context somehow carries no deadline the
	// probe must still never park on a wedged shard.
	dl, ok := pctx.Deadline()
	if !ok {
		dl = s.cfg.now().Add(s.cfg.ProbeTimeout)
	}
	if err := conn.SetDeadline(dl); err != nil {
		return shardHealth{}, err
	}
	if _, err := conn.Write([]byte("HEALTH\n")); err != nil {
		return shardHealth{}, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return shardHealth{}, err
		}
		return shardHealth{}, fmt.Errorf("gateway: %s closed before replying", addr)
	}
	var h shardHealth
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return shardHealth{}, err
	}
	if h.Instance == "" {
		return shardHealth{}, fmt.Errorf("gateway: %s HEALTH reply carries no instance nonce", addr)
	}
	return h, nil
}

// applyProbe advances one shard's state machine under the ring lock.
// The interesting transitions:
//
//   - live, FailThreshold consecutive failures → ejected: the ring is
//     rebuilt without the shard, the epoch bumps, and ownership diffs are
//     migrated. MOVEs sourced at the dead shard are skipped (counted) —
//     its successor already holds the replica stream.
//   - ejected, RecoverThreshold consecutive successes → re-admitted: ring
//     rebuilt with the shard back, epoch bumps, and the interim owners
//     MOVE its sessions home.
//   - live, instance nonce changed → the shard restarted between probes
//     without ever failing one. Its table is empty, so its stations are
//     re-pulled from their replica shards.
func (s *Server) applyProbe(ctx context.Context, sh *shardState, health shardHealth, ok bool) {
	s.ringMu.Lock()
	var (
		oldRing, newRing *hashRing
		restarted        bool
	)
	switch {
	case sh.live && ok:
		sh.fails = 0
		if sh.instance != "" && sh.instance != health.Instance {
			restarted = true
			s.tierEvents.Inc("restarts")
			sh.restarts.Inc()
		}
		sh.instance = health.Instance
	case sh.live && !ok:
		sh.fails++
		if sh.fails >= s.cfg.FailThreshold {
			sh.live = false
			sh.oks = 0
			sh.up.Set(0)
			s.tierEvents.Inc("ejections")
			sh.ejectedCount.Inc()
			oldRing, newRing = s.rebuildLocked()
		}
	case !sh.live && ok:
		sh.oks++
		if sh.oks >= s.cfg.RecoverThreshold {
			sh.live = true
			sh.fails = 0
			sh.up.Set(1)
			// Probation re-admits a shard whether it was partitioned (kept
			// its state) or restarted (lost it); either way the readmit
			// rebalance MOVEs every one of its stations home, which covers
			// both cases. Record the fresh instance so a later restart is
			// still detectable.
			sh.instance = health.Instance
			s.tierEvents.Inc("readmits")
			sh.readmits.Inc()
			oldRing, newRing = s.rebuildLocked()
		}
	case !sh.live && !ok:
		sh.oks = 0
	}
	epoch := s.epoch
	staleEpoch := ok && sh.live && !restarted && newRing == nil && health.RingEpoch < epoch
	s.ringMu.Unlock()

	if newRing != nil {
		s.pushEpochAll(ctx)
		s.startRebalance(ctx, func(rctx context.Context) {
			s.rebalanceRings(rctx, oldRing, newRing)
		})
		return
	}
	if restarted {
		// Membership did not change, so no epoch bump — but the restarted
		// shard forgot the current epoch and its sessions. Re-push and
		// re-migrate.
		s.pushEpoch(ctx, sh, epoch)
		s.startRebalance(ctx, func(rctx context.Context) {
			s.remigrate(rctx, sh.idx)
		})
		return
	}
	if staleEpoch {
		s.pushEpoch(ctx, sh, epoch)
	}
}

// rebuildLocked rebuilds the live ring from current shard liveness under a
// bumped epoch. Caller holds ringMu; returns the old and new rings for
// migration planning.
func (s *Server) rebuildLocked() (oldRing, newRing *hashRing) {
	oldRing = s.live
	live := make([]bool, len(s.shards))
	for i, sh := range s.shards {
		live[i] = sh.live
	}
	s.epoch++
	s.live = buildRing(s.shardNames(), live, s.cfg.VNodes, s.epoch)
	s.epochGauge.Set(float64(s.epoch))
	return oldRing, s.live
}

// pushEpochAll pushes the current epoch to every live shard.
func (s *Server) pushEpochAll(ctx context.Context) {
	s.ringMu.Lock()
	epoch := s.epoch
	var targets []*shardState
	for _, sh := range s.shards {
		if sh.live {
			targets = append(targets, sh)
		}
	}
	s.ringMu.Unlock()
	for _, sh := range targets {
		s.pushEpoch(ctx, sh, epoch)
	}
}

// pushEpoch tells one shard the current ring epoch via the EPOCH command.
// Best-effort: a failed push is counted and retried implicitly by the next
// probe's stale-epoch check.
func (s *Server) pushEpoch(ctx context.Context, sh *shardState, epoch uint64) {
	if err := s.roundTrip(ctx, sh.addr.TCP, fmt.Sprintf("EPOCH %d\n", epoch), s.cfg.ProbeTimeout, nil); err != nil {
		s.tierEvents.Inc("epoch_push_err")
		return
	}
	s.tierEvents.Inc("epoch_push")
}

// roundTrip dials addr, writes one command line and decodes the one-line
// JSON reply into out (discarded when out is nil), all under timeout.
func (s *Server) roundTrip(ctx context.Context, addr, line string, timeout time.Duration, out any) error {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(rctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	dl, ok := rctx.Deadline()
	if !ok {
		dl = s.cfg.now().Add(timeout)
	}
	if err := conn.SetDeadline(dl); err != nil {
		return err
	}
	if _, err := conn.Write([]byte(line)); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("gateway: %s closed before replying", addr)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(sc.Bytes(), out)
}
