package gateway

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// move is one planned session migration: pull station's session out of the
// shard at src and install it at dst, by asking src to run the MOVE
// handoff protocol.
type move struct {
	station  uint32
	src, dst int
}

// startRebalance runs fn on a tracked goroutine so Shutdown can drain
// in-flight migrations.
func (s *Server) startRebalance(ctx context.Context, fn func(context.Context)) {
	s.rebWG.Add(1)
	go func() {
		defer s.rebWG.Done()
		fn(ctx)
	}()
}

// rebalanceRings migrates every indexed station whose owner differs
// between the two rings. Sessions sourced at a shard that is dead on the
// new ring cannot be pulled — those are skipped and counted, and the
// station's replica stream (forwarded while the shard was alive) is what
// the new owner already holds. The whole pass is timed into
// sicgw_rebalance_seconds.
func (s *Server) rebalanceRings(ctx context.Context, oldRing, newRing *hashRing) {
	var moves []move
	skipDead := 0
	for _, st := range s.stationSnapshot() {
		oldOwner, ok := oldRing.owner(st)
		if !ok {
			continue
		}
		newOwner, ok := newRing.owner(st)
		if !ok || oldOwner == newOwner {
			continue
		}
		if !newRing.live[oldOwner] {
			skipDead++
			continue
		}
		moves = append(moves, move{station: st, src: oldOwner, dst: newOwner})
	}
	s.rebalanceEvents.Add("skip_dead", int64(skipDead))
	s.runMoves(ctx, moves)
}

// remigrate re-pulls the sessions of a restarted shard from their replica
// shards: the shard is still the ring owner of its stations, but its
// in-memory table is empty, and the first live successor holds the warm
// replica stream.
func (s *Server) remigrate(ctx context.Context, idx int) {
	s.ringMu.Lock()
	ring := s.live
	s.ringMu.Unlock()
	var moves []move
	for _, st := range s.stationSnapshot() {
		succ := ring.successors(st, 2)
		if len(succ) < 2 || succ[0] != idx {
			continue
		}
		moves = append(moves, move{station: st, src: succ[1], dst: idx})
	}
	s.rebalanceEvents.Add("remigrations", int64(len(moves)))
	s.runMoves(ctx, moves)
}

// runMoves executes planned migrations on a bounded worker pool and
// records the pass duration.
func (s *Server) runMoves(ctx context.Context, moves []move) {
	s.rebalanceEvents.Inc("rebalances")
	start := s.cfg.now()
	defer func() {
		s.rebalanceHist.Observe(s.cfg.now().Sub(start).Seconds())
	}()
	if len(moves) == 0 {
		return
	}
	work := make(chan move)
	var wg sync.WaitGroup
	workers := s.cfg.RebalanceWorkers
	if workers > len(moves) {
		workers = len(moves)
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for mv := range work {
				s.moveStation(ctx, mv)
			}
		}()
	}
	for _, mv := range moves {
		if ctx.Err() != nil {
			break
		}
		work <- mv
	}
	close(work)
	wg.Wait()
}

// moveStation asks the source shard to hand one station's session to the
// destination shard's query listener. A "no session" refusal is a no-op,
// not a failure: the station never reported to the source, or already
// went stale there.
func (s *Server) moveStation(ctx context.Context, mv move) {
	var resp struct {
		Station  uint32 `json:"station"`
		Transfer string `json:"transfer"`
		Error    string `json:"error"`
	}
	line := fmt.Sprintf("MOVE %d %s\n", mv.station, s.shards[mv.dst].addr.TCP)
	if err := s.roundTrip(ctx, s.shards[mv.src].addr.TCP, line, s.cfg.MoveTimeout, &resp); err != nil {
		s.rebalanceEvents.Inc("move_err")
		return
	}
	switch {
	case resp.Error == "":
		s.rebalanceEvents.Inc("moves")
	case strings.Contains(resp.Error, "no session"):
		s.rebalanceEvents.Inc("move_noop")
	default:
		s.rebalanceEvents.Inc("move_err")
	}
}
