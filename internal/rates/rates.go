// Package rates provides the discrete bitrate tables of IEEE 802.11 b/g/n
// together with the receiver-sensitivity SNR thresholds needed to pick the
// best rate a channel supports.
//
// The paper's central argument is that fine-grained discrete rates plus good
// rate adaptation squeeze out most of SIC's slack: 802.11b exposes 4 rates,
// 802.11g 8, and 802.11n (with MCS across 1–4 spatial streams) 32. This
// package is the substrate for the §7 "discrete bitrates" evaluation
// (Fig. 14b), where the paper replaces the Shannon log terms with the rates
// its testbed actually sustained.
package rates

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/phy"
)

// Step is one entry of a rate table: a bitrate and the minimum SNR (dB) at
// which a receiver sustains it (conventionally at ≥90% packet delivery, the
// criterion the paper used on its testbed).
type Step struct {
	// BitsPerSec is the PHY bitrate.
	BitsPerSec float64
	// MinSNRdB is the lowest SNR in dB that sustains this rate.
	MinSNRdB float64
}

// Table is a discrete rate table sorted by ascending bitrate.
// The zero value is an empty table whose Rate is always 0.
type Table struct {
	name  string
	steps []Step
}

// NewTable builds a table from steps. Steps are sorted by bitrate; it is an
// error (panic) for thresholds not to be monotone in rate, since such a
// table cannot arise from a real PHY and would break rate selection.
func NewTable(name string, steps []Step) Table {
	s := make([]Step, len(steps))
	copy(s, steps)
	sort.Slice(s, func(i, j int) bool { return s[i].BitsPerSec < s[j].BitsPerSec })
	for i := 1; i < len(s); i++ {
		if s[i].MinSNRdB < s[i-1].MinSNRdB {
			panic(fmt.Sprintf("rates: table %q has non-monotone SNR thresholds (%v dB for %v bps after %v dB for %v bps)",
				name, s[i].MinSNRdB, s[i].BitsPerSec, s[i-1].MinSNRdB, s[i-1].BitsPerSec))
		}
	}
	return Table{name: name, steps: s}
}

// Name returns the table's human-readable name, e.g. "802.11g".
func (t Table) Name() string { return t.name }

// Steps returns a copy of the table entries in ascending bitrate order.
func (t Table) Steps() []Step {
	out := make([]Step, len(t.steps))
	copy(out, t.steps)
	return out
}

// Len returns the number of rates in the table.
func (t Table) Len() int { return len(t.steps) }

// Rate returns the highest bitrate whose threshold the given linear SINR
// meets, or 0 if even the lowest rate is unsupported.
func (t Table) Rate(sinr float64) float64 {
	// A whisker of tolerance so dB→linear→dB round-trips don't drop a rate
	// when the SINR sits exactly on a threshold.
	sinrDB := phy.DB(sinr) + 1e-9
	// Binary search for the first step whose threshold exceeds sinrDB.
	i := sort.Search(len(t.steps), func(i int) bool { return t.steps[i].MinSNRdB > sinrDB })
	if i == 0 {
		return 0
	}
	return t.steps[i-1].BitsPerSec
}

// RateFunc adapts the table to the core package's RateFunc.
func (t Table) RateFunc() core.RateFunc {
	return func(sinr float64) float64 { return t.Rate(sinr) }
}

// MaxRate returns the top bitrate of the table (0 for an empty table).
func (t Table) MaxRate() float64 {
	if len(t.steps) == 0 {
		return 0
	}
	return t.steps[len(t.steps)-1].BitsPerSec
}

// MinSNRdBFor returns the SNR threshold (dB) for a given bitrate and whether
// the rate exists in the table.
func (t Table) MinSNRdBFor(bps float64) (float64, bool) {
	for _, s := range t.steps {
		if s.BitsPerSec == bps {
			return s.MinSNRdB, true
		}
	}
	return 0, false
}

const mbps = 1e6

// Dot11b is the 4-rate IEEE 802.11b (DSSS/CCK) table. Thresholds follow
// commonly published receiver sensitivities normalised to a -95 dBm noise
// floor.
var Dot11b = NewTable("802.11b", []Step{
	{1 * mbps, 1},
	{2 * mbps, 3},
	{5.5 * mbps, 6},
	{11 * mbps, 9},
})

// Dot11g is the 8-rate IEEE 802.11g (ERP-OFDM) table.
var Dot11g = NewTable("802.11g", []Step{
	{6 * mbps, 6},
	{9 * mbps, 7},
	{12 * mbps, 9},
	{18 * mbps, 11},
	{24 * mbps, 14},
	{36 * mbps, 18},
	{48 * mbps, 22},
	{54 * mbps, 24},
})

// Dot11n is a 32-rate IEEE 802.11n table: HT MCS 0–7 over 1–4 spatial
// streams at 20 MHz, long guard interval. Per-stream SNR requirements grow
// with stream count (array gain aside, spatial multiplexing needs higher
// per-stream SINR); the offsets used here follow the usual +3 dB-per-
// doubling engineering rule.
var Dot11n = newDot11n()

func newDot11n() Table {
	// MCS 0-7 base rates for one spatial stream, 20 MHz, 800 ns GI.
	base := []Step{
		{6.5 * mbps, 5},
		{13 * mbps, 8},
		{19.5 * mbps, 11},
		{26 * mbps, 14},
		{39 * mbps, 18},
		{52 * mbps, 22},
		{58.5 * mbps, 24},
		{65 * mbps, 26},
	}
	var steps []Step
	for streams := 1; streams <= 4; streams++ {
		// Each extra stream multiplies throughput and costs ~3 dB of SINR
		// headroom per doubling.
		offset := 3 * float64(streams-1)
		for _, b := range base {
			steps = append(steps, Step{
				BitsPerSec: b.BitsPerSec * float64(streams),
				MinSNRdB:   b.MinSNRdB + offset,
			})
		}
	}
	// Multiple stream-counts can produce identical bitrates at different
	// thresholds; keep the cheapest threshold per bitrate so the table stays
	// monotone and maximally permissive.
	byRate := map[float64]float64{}
	for _, s := range steps {
		if th, ok := byRate[s.BitsPerSec]; !ok || s.MinSNRdB < th {
			byRate[s.BitsPerSec] = s.MinSNRdB
		}
	}
	dedup := make([]Step, 0, len(byRate))
	for r, th := range byRate {
		dedup = append(dedup, Step{BitsPerSec: r, MinSNRdB: th})
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].BitsPerSec < dedup[j].BitsPerSec })
	// Enforce monotone thresholds: a faster rate may never be easier to
	// decode than a slower one after the dedup above.
	for i := 1; i < len(dedup); i++ {
		if dedup[i].MinSNRdB < dedup[i-1].MinSNRdB {
			dedup[i].MinSNRdB = dedup[i-1].MinSNRdB
		}
	}
	return NewTable("802.11n", dedup)
}

// PERWidthDB is the softness of the error-rate transition around each
// rate's SNR threshold, in dB. Real receivers do not switch from 0% to
// 100% delivery at a hard threshold; a ~1.5 dB logistic matches typical
// measured waterfall curves.
const PERWidthDB = 1.5

// PER returns the packet error rate for a frame sent at bps under the
// given linear SINR: a logistic in dB centred on the rate's threshold.
// Rates absent from the table always fail (PER 1); SINRs far above the
// threshold deliver essentially always.
func (t Table) PER(bps, sinr float64) float64 {
	th, ok := t.MinSNRdBFor(bps)
	if !ok {
		return 1
	}
	marginDB := phy.DB(sinr) - th
	// Logistic centred 0.5·width below the threshold so that the hard
	// threshold (Rate's criterion) corresponds to ≈90% delivery, the
	// paper's testbed criterion.
	x := (marginDB + PERWidthDB/2) / (PERWidthDB / 4)
	return 1 / (1 + math.Exp(x))
}
