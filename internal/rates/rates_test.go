package rates

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/phy"
)

func TestTableCounts(t *testing.T) {
	// The paper's §1: "4 in 802.11b vs 8 in 802.11g vs 32 in 802.11n".
	if got := Dot11b.Len(); got != 4 {
		t.Errorf("802.11b has %d rates, want 4", got)
	}
	if got := Dot11g.Len(); got != 8 {
		t.Errorf("802.11g has %d rates, want 8", got)
	}
	// 802.11n exposes 32 MCS indices (0-31); several stream/MCS combinations
	// share a bitrate (e.g. 26 Mbps = MCS3 = 2×MCS1 = 4×MCS0), so the table
	// of *distinct* bitrates is smaller but still far finer-grained than b/g.
	if got := Dot11n.Len(); got < 16 || got > 32 {
		t.Errorf("802.11n has %d distinct bitrates, want 16-32", got)
	}
}

func TestRateSelectionKnown(t *testing.T) {
	cases := []struct {
		snrDB float64
		want  float64
	}{
		{-5, 0},      // below sensitivity
		{6, 6e6},     // exactly the 6 Mbps threshold
		{6.9, 6e6},   // below 9 Mbps threshold
		{7, 9e6},     // exactly 9
		{13.9, 18e6}, //
		{24, 54e6},   // top rate threshold
		{45, 54e6},   // clamped at top
	}
	for _, c := range cases {
		if got := Dot11g.Rate(phy.FromDB(c.snrDB)); got != c.want {
			t.Errorf("Dot11g.Rate(%v dB) = %v, want %v", c.snrDB, got, c.want)
		}
	}
}

func TestRateMonotoneProperty(t *testing.T) {
	for _, tbl := range []Table{Dot11b, Dot11g, Dot11n} {
		f := func(a, b float64) bool {
			s1 := math.Abs(a)
			s2 := math.Abs(b)
			if math.IsNaN(s1) || math.IsNaN(s2) || math.IsInf(s1, 0) || math.IsInf(s2, 0) {
				return true
			}
			if s1 > s2 {
				s1, s2 = s2, s1
			}
			return tbl.Rate(s1) <= tbl.Rate(s2)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", tbl.Name(), err)
		}
	}
}

func TestRateNeverExceedsShannon(t *testing.T) {
	// A real table must stay below Shannon capacity at its own threshold —
	// otherwise the table promises physically impossible rates. For the
	// single-antenna b/g tables that bound is B·log2(1+SNR); 802.11n uses up
	// to 4 spatial streams, so its MIMO bound is 4× the SISO capacity.
	ch := phy.Wifi20MHz
	for _, tc := range []struct {
		tbl     Table
		streams float64
	}{{Dot11b, 1}, {Dot11g, 1}, {Dot11n, 4}} {
		for _, s := range tc.tbl.Steps() {
			bound := tc.streams * ch.Capacity(phy.FromDB(s.MinSNRdB))
			if s.BitsPerSec > bound {
				t.Errorf("%s: rate %v bps at %v dB exceeds the %v-stream Shannon bound %v bps",
					tc.tbl.Name(), s.BitsPerSec, s.MinSNRdB, tc.streams, bound)
			}
		}
	}
}

func TestRateAtExactThresholds(t *testing.T) {
	for _, tbl := range []Table{Dot11b, Dot11g, Dot11n} {
		for _, s := range tbl.Steps() {
			if got := tbl.Rate(phy.FromDB(s.MinSNRdB)); got < s.BitsPerSec {
				t.Errorf("%s: Rate at its own threshold %v dB = %v, want ≥ %v",
					tbl.Name(), s.MinSNRdB, got, s.BitsPerSec)
			}
		}
	}
}

func TestMaxRate(t *testing.T) {
	if got := Dot11g.MaxRate(); got != 54e6 {
		t.Errorf("Dot11g.MaxRate() = %v, want 54e6", got)
	}
	if got := Dot11n.MaxRate(); got != 260e6 {
		t.Errorf("Dot11n.MaxRate() = %v, want 260e6 (4×65 Mbps)", got)
	}
	var empty Table
	if got := empty.MaxRate(); got != 0 {
		t.Errorf("empty MaxRate() = %v, want 0", got)
	}
}

func TestMinSNRdBFor(t *testing.T) {
	th, ok := Dot11g.MinSNRdBFor(54e6)
	if !ok || th != 24 {
		t.Errorf("MinSNRdBFor(54e6) = (%v, %v), want (24, true)", th, ok)
	}
	if _, ok := Dot11g.MinSNRdBFor(7e6); ok {
		t.Error("MinSNRdBFor(nonexistent) reported ok")
	}
}

func TestNewTablePanicsOnNonMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable with inverted thresholds did not panic")
		}
	}()
	NewTable("bad", []Step{{1e6, 10}, {2e6, 5}})
}

func TestRateFuncAdapter(t *testing.T) {
	rf := Dot11g.RateFunc()
	if got := rf(phy.FromDB(24)); got != 54e6 {
		t.Errorf("RateFunc(24 dB) = %v, want 54e6", got)
	}
	if got := rf(phy.FromDB(0)); got != 0 {
		t.Errorf("RateFunc(0 dB) = %v, want 0", got)
	}
}

func TestStepsReturnsCopy(t *testing.T) {
	s := Dot11g.Steps()
	s[0].BitsPerSec = 999
	if Dot11g.Steps()[0].BitsPerSec == 999 {
		t.Error("Steps() leaked internal slice")
	}
}

func TestEmptyTableRate(t *testing.T) {
	var empty Table
	if got := empty.Rate(1e9); got != 0 {
		t.Errorf("empty table Rate = %v, want 0", got)
	}
}

// The discrete-rate slack: between two adjacent thresholds the channel
// supports more than the selected rate. Verify the worst-case slack for
// 802.11g is substantial (this is the slack SIC can harness, §7).
func TestDiscreteSlackExists(t *testing.T) {
	ch := phy.Wifi20MHz
	worst := 0.0
	for dB := 6.0; dB <= 30; dB += 0.1 {
		shannon := ch.Capacity(phy.FromDB(dB))
		discrete := Dot11g.Rate(phy.FromDB(dB))
		if discrete == 0 {
			continue
		}
		if slack := shannon / discrete; slack > worst {
			worst = slack
		}
	}
	if worst < 1.5 {
		t.Errorf("worst-case Shannon/discrete ratio %v; expected meaningful slack (> 1.5×)", worst)
	}
}

func TestPERShape(t *testing.T) {
	tbl := Dot11g
	const bps = 24e6 // threshold 14 dB
	// Monotone decreasing in SINR.
	prev := 1.0
	for db := 5.0; db <= 25; db += 0.5 {
		p := tbl.PER(bps, phy.FromDB(db))
		if p > prev+1e-12 {
			t.Fatalf("PER not monotone at %v dB", db)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PER %v out of range", p)
		}
		prev = p
	}
	// Well below threshold: essentially always lost.
	if p := tbl.PER(bps, phy.FromDB(8)); p < 0.99 {
		t.Errorf("PER 6 dB below threshold = %v, want ≈1", p)
	}
	// At the hard threshold: roughly the 90%-delivery criterion.
	if p := tbl.PER(bps, phy.FromDB(14)); p < 0.03 || p > 0.35 {
		t.Errorf("PER at threshold = %v, want near 10%%", p)
	}
	// Far above: essentially always delivered.
	if p := tbl.PER(bps, phy.FromDB(22)); p > 1e-3 {
		t.Errorf("PER 8 dB above threshold = %v, want ≈0", p)
	}
	// Unknown rate: always fails.
	if p := tbl.PER(7e6, phy.FromDB(40)); p != 1 {
		t.Errorf("PER of unknown rate = %v, want 1", p)
	}
}
