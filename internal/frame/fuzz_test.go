package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the frame parser with arbitrary bytes: it must never
// panic, and whenever it does accept a buffer, re-marshalling the decoded
// frame must reproduce the input exactly (canonical wire form).
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of each type and some corruptions.
	for _, ft := range []Type{TypeData, TypeAck, TypePoll, TypeSchedule} {
		fr := &Frame{Type: ft, Src: 1, Dst: 2, Seq: 3, DurationUS: 4, Payload: []byte("seed")}
		if buf, err := fr.Marshal(); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return // rejection is always acceptable
		}
		out, err := fr.Marshal()
		if err != nil {
			t.Fatalf("decoded frame failed to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal differs from accepted input:\n in: %x\nout: %x", data, out)
		}
	})
}

// FuzzDecodeSchedule checks the schedule payload parser the same way.
func FuzzDecodeSchedule(f *testing.F) {
	if p, err := MarshalSchedule([]ScheduleEntry{
		{A: 1, B: 2, Concurrent: true, WeakScaleMicros: 500000},
		{A: 3, B: Broadcast, WeakScaleMicros: 1000000},
	}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, scheduleEntryLen*3))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeSchedule(data)
		if err != nil {
			return
		}
		out, err := MarshalSchedule(entries)
		if err != nil {
			t.Fatalf("decoded schedule failed to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal differs from accepted input:\n in: %x\nout: %x", data, out)
		}
	})
}
