// Package frame defines the wire format exchanged by the discrete-event MAC
// simulator: data frames, ACKs, and the AP's SIC schedule announcements.
//
// The design follows the layered decode/serialize idiom of packet libraries
// like gopacket: a fixed header with an explicit type field, typed payload
// encoders per frame kind, strict validation on decode, and a trailing
// CRC-32 so corrupted frames are rejected rather than misparsed.
//
// Wire layout (big-endian):
//
//	offset  size  field
//	0       2     magic 0x51C0
//	2       1     version (1)
//	3       1     type
//	4       4     src station id
//	8       4     dst station id
//	12      4     seq
//	16      4     duration (microseconds of airtime the frame claims)
//	20      4     payload length N
//	24      N     payload
//	24+N    4     CRC-32 (IEEE) over bytes [0, 24+N)
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies simulator frames on the wire.
const Magic = 0x51C0

// Version is the current wire version.
const Version = 1

// headerLen and trailerLen bound every frame.
const (
	headerLen  = 24
	trailerLen = 4
)

// MaxPayload caps payload size; anything larger is a protocol violation.
const MaxPayload = 1 << 16

// Type enumerates frame kinds.
type Type uint8

const (
	// TypeData carries upload payload from a client to the AP.
	TypeData Type = 1
	// TypeAck acknowledges a data frame.
	TypeAck Type = 2
	// TypePoll solicits backlog reports from clients.
	TypePoll Type = 3
	// TypeSchedule announces the AP's SIC transmission schedule.
	TypeSchedule Type = 4
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypePoll:
		return "poll"
	case TypeSchedule:
		return "schedule"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Broadcast is the all-stations destination address.
const Broadcast = ^uint32(0)

// Frame is a decoded simulator frame.
type Frame struct {
	Type     Type
	Src, Dst uint32
	Seq      uint32
	// DurationUS is the airtime the frame occupies, in microseconds.
	//
	// The field is overloaded on TypePoll trigger frames: there it carries
	// the commanded uplink bitrate in kbit/s instead (the station cannot
	// compute its SIC rate itself, so the AP commands it, as an 802.11ax
	// trigger frame would — see internal/emu). The wire layout is
	// identical; only the interpretation differs by frame type.
	DurationUS uint32
	Payload    []byte
}

// Errors returned by Decode.
var (
	ErrTooShort    = errors.New("frame: buffer shorter than minimum frame")
	ErrBadMagic    = errors.New("frame: bad magic")
	ErrBadVersion  = errors.New("frame: unsupported version")
	ErrBadType     = errors.New("frame: unknown frame type")
	ErrBadLength   = errors.New("frame: payload length field inconsistent with buffer")
	ErrBadChecksum = errors.New("frame: CRC mismatch")
	ErrTooLarge    = errors.New("frame: payload exceeds MaxPayload")
)

// Marshal serialises the frame. It returns ErrTooLarge for oversized
// payloads and ErrBadType for unknown types, so malformed frames can never
// be put on the wire.
func (f *Frame) Marshal() ([]byte, error) {
	switch f.Type {
	case TypeData, TypeAck, TypePoll, TypeSchedule:
	default:
		return nil, ErrBadType
	}
	if len(f.Payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, headerLen+len(f.Payload)+trailerLen)
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = byte(f.Type)
	binary.BigEndian.PutUint32(buf[4:8], f.Src)
	binary.BigEndian.PutUint32(buf[8:12], f.Dst)
	binary.BigEndian.PutUint32(buf[12:16], f.Seq)
	binary.BigEndian.PutUint32(buf[16:20], f.DurationUS)
	binary.BigEndian.PutUint32(buf[20:24], uint32(len(f.Payload)))
	copy(buf[headerLen:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:headerLen+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[headerLen+len(f.Payload):], crc)
	return buf, nil
}

// Decode parses and validates a frame from buf. The returned frame's
// payload aliases buf; copy it if the buffer will be reused.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < headerLen+trailerLen {
		return nil, ErrTooShort
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	if buf[2] != Version {
		return nil, ErrBadVersion
	}
	t := Type(buf[3])
	switch t {
	case TypeData, TypeAck, TypePoll, TypeSchedule:
	default:
		return nil, ErrBadType
	}
	n := binary.BigEndian.Uint32(buf[20:24])
	if n > MaxPayload {
		return nil, ErrTooLarge
	}
	if len(buf) != headerLen+int(n)+trailerLen {
		return nil, ErrBadLength
	}
	want := binary.BigEndian.Uint32(buf[headerLen+int(n):])
	if crc32.ChecksumIEEE(buf[:headerLen+int(n)]) != want {
		return nil, ErrBadChecksum
	}
	return &Frame{
		Type:       t,
		Src:        binary.BigEndian.Uint32(buf[4:8]),
		Dst:        binary.BigEndian.Uint32(buf[8:12]),
		Seq:        binary.BigEndian.Uint32(buf[12:16]),
		DurationUS: binary.BigEndian.Uint32(buf[16:20]),
		Payload:    buf[headerLen : headerLen+int(n)],
	}, nil
}

// ScheduleEntry is one slot of a TypeSchedule payload: which client(s)
// transmit, concurrently or not, and the power scale the weaker client must
// apply (in millionths, so 1_000_000 = full power).
type ScheduleEntry struct {
	// A and B are station ids; B == Broadcast means a solo slot.
	A, B uint32
	// Concurrent marks a SIC slot (both transmit at once).
	Concurrent bool
	// Multirate marks a §5.3 multirate-packetization slot: the stronger
	// station switches to its interference-free rate once the weaker
	// finishes. Only valid on concurrent slots.
	Multirate bool
	// WeakScaleMicros is the weaker station's power scale ×10⁶ (0 < s ≤ 10⁶).
	WeakScaleMicros uint32
}

const scheduleEntryLen = 13

// ErrBadSchedule reports a malformed schedule payload.
var ErrBadSchedule = errors.New("frame: malformed schedule payload")

// MarshalSchedule encodes schedule entries as a TypeSchedule payload.
func MarshalSchedule(entries []ScheduleEntry) ([]byte, error) {
	if len(entries)*scheduleEntryLen > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, 0, len(entries)*scheduleEntryLen)
	for i, e := range entries {
		if e.WeakScaleMicros == 0 || e.WeakScaleMicros > 1_000_000 {
			return nil, fmt.Errorf("%w: entry %d has power scale %d", ErrBadSchedule, i, e.WeakScaleMicros)
		}
		if e.Multirate && !e.Concurrent {
			return nil, fmt.Errorf("%w: entry %d is multirate but not concurrent", ErrBadSchedule, i)
		}
		var rec [scheduleEntryLen]byte
		binary.BigEndian.PutUint32(rec[0:4], e.A)
		binary.BigEndian.PutUint32(rec[4:8], e.B)
		if e.Concurrent {
			rec[8] |= 0x01
		}
		if e.Multirate {
			rec[8] |= 0x02
		}
		binary.BigEndian.PutUint32(rec[9:13], e.WeakScaleMicros)
		buf = append(buf, rec[:]...)
	}
	return buf, nil
}

// DecodeSchedule parses a TypeSchedule payload.
func DecodeSchedule(payload []byte) ([]ScheduleEntry, error) {
	if len(payload)%scheduleEntryLen != 0 {
		return nil, ErrBadSchedule
	}
	out := make([]ScheduleEntry, 0, len(payload)/scheduleEntryLen)
	for off := 0; off < len(payload); off += scheduleEntryLen {
		rec := payload[off : off+scheduleEntryLen]
		flags := rec[8]
		if flags > 0x03 {
			return nil, ErrBadSchedule
		}
		e := ScheduleEntry{
			A:               binary.BigEndian.Uint32(rec[0:4]),
			B:               binary.BigEndian.Uint32(rec[4:8]),
			Concurrent:      flags&0x01 != 0,
			Multirate:       flags&0x02 != 0,
			WeakScaleMicros: binary.BigEndian.Uint32(rec[9:13]),
		}
		if e.Multirate && !e.Concurrent {
			return nil, fmt.Errorf("%w: multirate flag without concurrency", ErrBadSchedule)
		}
		if e.WeakScaleMicros == 0 || e.WeakScaleMicros > 1_000_000 {
			return nil, ErrBadSchedule
		}
		if e.Concurrent && e.B == Broadcast {
			return nil, fmt.Errorf("%w: concurrent solo slot", ErrBadSchedule)
		}
		out = append(out, e)
	}
	return out, nil
}

// WeakScale converts the wire representation to the (0,1] float used by the
// analysis packages.
func (e ScheduleEntry) WeakScale() float64 {
	return float64(e.WeakScaleMicros) / 1e6
}

// ScaleToMicros converts a (0,1] power scale to wire form, clamping tiny
// values up to 1 micro so the wire invariant (non-zero) holds.
func ScaleToMicros(s float64) uint32 {
	if math.IsNaN(s) || s <= 0 {
		return 1
	}
	if s >= 1 {
		return 1_000_000
	}
	v := uint32(math.Round(s * 1e6))
	if v == 0 {
		v = 1
	}
	return v
}
