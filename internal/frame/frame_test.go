package frame

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMarshalDecodeRoundTrip(t *testing.T) {
	f := &Frame{
		Type:       TypeData,
		Src:        7,
		Dst:        1,
		Seq:        99,
		DurationUS: 1500,
		Payload:    []byte("hello sic"),
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Src != f.Src || got.Dst != f.Dst ||
		got.Seq != f.Seq || got.DurationUS != f.DurationUS ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(typeSel uint8, src, dst, seq, dur uint32, payload []byte) bool {
		types := []Type{TypeData, TypeAck, TypePoll, TypeSchedule}
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{
			Type: types[int(typeSel)%len(types)], Src: src, Dst: dst,
			Seq: seq, DurationUS: dur, Payload: payload,
		}
		buf, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := Decode(buf)
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Src == in.Src && out.Dst == in.Dst &&
			out.Seq == in.Seq && out.DurationUS == in.DurationUS &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsBadFrames(t *testing.T) {
	if _, err := (&Frame{Type: Type(9)}).Marshal(); !errors.Is(err, ErrBadType) {
		t.Errorf("unknown type: %v", err)
	}
	if _, err := (&Frame{Type: TypeData, Payload: make([]byte, MaxPayload+1)}).Marshal(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := &Frame{Type: TypeAck, Src: 1, Dst: 2, Seq: 3, Payload: []byte{1, 2, 3}}
	good, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short", good[:10], ErrTooShort},
		{"magic", corrupt(func(b []byte) { b[0] = 0 }), ErrBadMagic},
		{"version", corrupt(func(b []byte) { b[2] = 99 }), ErrBadVersion},
		{"type", corrupt(func(b []byte) { b[3] = 200 }), ErrBadType},
		{"length", corrupt(func(b []byte) { b[23] = 200 }), ErrBadLength},
		{"crc", corrupt(func(b []byte) { b[len(b)-1] ^= 0xff }), ErrBadChecksum},
		{"payload flip", corrupt(func(b []byte) { b[25] ^= 0x01 }), ErrBadChecksum},
		{"truncated", good[:len(good)-1], ErrBadLength},
		{"padded", append(append([]byte(nil), good...), 0), ErrBadLength},
	}
	for _, c := range cases {
		if _, err := Decode(c.buf); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDecodeRejectsHugeLengthField(t *testing.T) {
	f := &Frame{Type: TypeData, Payload: []byte{1}}
	buf, _ := f.Marshal()
	// Overwrite the length field with something enormous.
	buf[20], buf[21], buf[22], buf[23] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge length: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{
		TypeData: "data", TypeAck: "ack", TypePoll: "poll", TypeSchedule: "schedule",
		Type(77): "Type(77)",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", uint8(ty), ty.String(), s)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	entries := []ScheduleEntry{
		{A: 1, B: 2, Concurrent: true, WeakScaleMicros: 730000},
		{A: 3, B: 4, Concurrent: false, WeakScaleMicros: 1000000},
		{A: 5, B: Broadcast, Concurrent: false, WeakScaleMicros: 1000000},
	}
	payload, err := MarshalSchedule(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSchedule(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, back[i], entries[i])
		}
	}
}

func TestScheduleThroughFrame(t *testing.T) {
	payload, err := MarshalSchedule([]ScheduleEntry{{A: 1, B: 2, Concurrent: true, WeakScaleMicros: 500000}})
	if err != nil {
		t.Fatal(err)
	}
	f := &Frame{Type: TypeSchedule, Src: 0, Dst: Broadcast, Payload: payload}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := DecodeSchedule(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].WeakScale() != 0.5 {
		t.Errorf("bad entries %+v", entries)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := MarshalSchedule([]ScheduleEntry{{A: 1, B: 2, WeakScaleMicros: 0}}); err == nil {
		t.Error("zero power scale accepted")
	}
	if _, err := MarshalSchedule([]ScheduleEntry{{A: 1, B: 2, WeakScaleMicros: 2_000_000}}); err == nil {
		t.Error("super-unity power scale accepted")
	}
	if _, err := DecodeSchedule([]byte{1, 2, 3}); err == nil {
		t.Error("ragged payload accepted")
	}
	// Concurrent solo slot is nonsense.
	bad := make([]byte, scheduleEntryLen)
	for i := 0; i < 8; i++ {
		bad[i] = 0xff // A, B = Broadcast
	}
	bad[8] = 1                   // concurrent
	bad[9], bad[12] = 0x00, 0x01 // scale = 1
	if _, err := DecodeSchedule(bad); err == nil {
		t.Error("concurrent solo slot accepted")
	}
	// Flag byte other than 0/1.
	bad2 := make([]byte, scheduleEntryLen)
	bad2[8] = 7
	bad2[12] = 1
	if _, err := DecodeSchedule(bad2); err == nil {
		t.Error("bad flag byte accepted")
	}
}

func TestScaleToMicros(t *testing.T) {
	cases := []struct {
		in   float64
		want uint32
	}{
		{1, 1_000_000},
		{2, 1_000_000},
		{0.5, 500_000},
		{0, 1},
		{-3, 1},
		{1e-9, 1},
	}
	for _, c := range cases {
		if got := ScaleToMicros(c.in); got != c.want {
			t.Errorf("ScaleToMicros(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMarshalScheduleTooLarge(t *testing.T) {
	entries := make([]ScheduleEntry, MaxPayload/scheduleEntryLen+1)
	for i := range entries {
		entries[i] = ScheduleEntry{A: 1, B: 2, WeakScaleMicros: 1}
	}
	if _, err := MarshalSchedule(entries); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized schedule: %v", err)
	}
}
