package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// CounterSet is a fixed set of named monotonic event counters with
// lock-free increments, built for long-lived serving paths (the scheduling
// daemon's drop/shed/served accounting). The name set is fixed at
// construction so a typo in a hot path fails fast instead of silently
// minting a new counter; snapshots are taken while the counters keep
// moving.
type CounterSet struct {
	names []string // sorted, for deterministic reporting
	vals  []atomic.Int64
	index map[string]int
}

// NewCounterSet creates a CounterSet over the given names. Duplicate or
// empty names panic: the name set is a compile-time-style contract, not
// runtime input.
func NewCounterSet(names ...string) *CounterSet {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	c := &CounterSet{
		names: sorted,
		vals:  make([]atomic.Int64, len(sorted)),
		index: make(map[string]int, len(sorted)),
	}
	for i, n := range sorted {
		if n == "" {
			panic("stats: empty counter name")
		}
		if _, dup := c.index[n]; dup {
			panic(fmt.Sprintf("stats: duplicate counter name %q", n))
		}
		c.index[n] = i
	}
	return c
}

// Inc adds 1 to the named counter.
func (c *CounterSet) Inc(name string) { c.Add(name, 1) }

// Add adds delta to the named counter. Unknown names panic.
func (c *CounterSet) Add(name string, delta int64) {
	i, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("stats: unknown counter %q", name))
	}
	c.vals[i].Add(delta)
}

// Get returns the current value of the named counter. Unknown names panic.
func (c *CounterSet) Get(name string) int64 {
	i, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("stats: unknown counter %q", name))
	}
	return c.vals[i].Load()
}

// Names returns the counter names in sorted order.
func (c *CounterSet) Names() []string {
	return append([]string(nil), c.names...)
}

// Snapshot returns a point-in-time copy of every counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.names))
	for i, n := range c.names {
		out[n] = c.vals[i].Load()
	}
	return out
}

// String renders the counters as "name=value" pairs in sorted name order —
// a stable format for logs and for byte-identical comparison of
// deterministic runs.
func (c *CounterSet) String() string {
	var b strings.Builder
	for i, n := range c.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.vals[i].Load())
	}
	return b.String()
}
