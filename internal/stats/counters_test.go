package stats

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet("served", "dropped", "shed")
	c.Inc("served")
	c.Add("dropped", 3)
	if got := c.Get("served"); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
	if got := c.Get("dropped"); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["shed"] != 0 || snap["dropped"] != 3 {
		t.Fatalf("bad snapshot %v", snap)
	}
	if want := "dropped=3 served=1 shed=0"; c.String() != want {
		t.Fatalf("String() = %q, want %q", c.String(), want)
	}
}

func TestCounterSetUnknownNamePanics(t *testing.T) {
	c := NewCounterSet("a")
	for _, f := range []func(){
		func() { c.Inc("b") },
		func() { c.Get("b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("unknown counter did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterSetDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	NewCounterSet("x", "x")
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet("n")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}
