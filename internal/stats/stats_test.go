package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("NewECDF(nil) should error")
	}
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NewECDF with NaN should error")
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, _ := NewECDF(in)
	in[0] = 99
	if e.Max() == 99 {
		t.Error("ECDF aliased its input slice")
	}
	if in[0] != 99 || in[1] != 1 {
		t.Error("NewECDF mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10},
		{0.25, 10},
		{0.26, 20},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
		{-1, 10},
		{2, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestQuantileEdges pins the nearest-rank convention at the boundaries
// Summarize depends on: q=0, q=1 and tiny samples must index in range and
// return the right rank, and a NaN q must not panic with an index error
// (the old int(ceil(NaN))-1 arithmetic did exactly that).
func TestQuantileEdges(t *testing.T) {
	cases := []struct {
		name   string
		sample []float64
		q      float64
		want   float64
	}{
		{"n=1 q=0", []float64{7}, 0, 7},
		{"n=1 q=0.5", []float64{7}, 0.5, 7},
		{"n=1 q=0.9", []float64{7}, 0.9, 7},
		{"n=1 q=0.99", []float64{7}, 0.99, 7},
		{"n=1 q=1", []float64{7}, 1, 7},
		{"n=2 q=0", []float64{1, 2}, 0, 1},
		{"n=2 q=0.5", []float64{1, 2}, 0.5, 1},
		{"n=2 q=0.51", []float64{1, 2}, 0.51, 2},
		{"n=2 q=0.9", []float64{1, 2}, 0.9, 2},
		{"n=2 q=1", []float64{1, 2}, 1, 2},
		{"n=3 q=0.99", []float64{1, 2, 3}, 0.99, 3},
		{"n=10 q=0.9", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
		{"n=10 q=0.99", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"clamp below", []float64{1, 2}, -0.5, 1},
		{"clamp above", []float64{1, 2}, 1.5, 2},
		{"tiny positive q", []float64{1, 2, 3}, 1e-300, 1},
		{"q just under 1", []float64{1, 2, 3}, math.Nextafter(1, 0), 3},
	}
	for _, c := range cases {
		e, err := NewECDF(c.sample)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	e, _ := NewECDF([]float64{1, 2, 3})
	if got := e.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
}

// TestSummarizeTinySamples: P90/P99 on n=1 and n=2 samples must be in
// range and follow nearest-rank, never index out of bounds.
func TestSummarizeTinySamples(t *testing.T) {
	s, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 || s.P90 != 5 || s.P99 != 5 {
		t.Errorf("n=1 summary = median %v p90 %v p99 %v, want all 5", s.Median, s.P90, s.P99)
	}
	s, err = Summarize([]float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 1 {
		t.Errorf("n=2 median = %v, want 1 (nearest-rank)", s.Median)
	}
	if s.P90 != 9 || s.P99 != 9 {
		t.Errorf("n=2 p90/p99 = %v/%v, want 9/9", s.P90, s.P99)
	}
}

func TestFracAbove(t *testing.T) {
	e, _ := NewECDF([]float64{1, 1.1, 1.2, 1.3, 1.5})
	if got := e.FracAbove(1.2); got != 0.4 {
		t.Errorf("FracAbove(1.2) = %v, want 0.4", got)
	}
	if got := e.FracAbove(0); got != 1 {
		t.Errorf("FracAbove(0) = %v, want 1", got)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = rng.NormFloat64() * 10
	}
	e, _ := NewECDF(sample)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 2, 3})
	xs, ys := e.Points()
	wantX := []float64{1, 2, 3}
	wantY := []float64{0.25, 0.75, 1}
	if len(xs) != len(wantX) {
		t.Fatalf("Points() returned %d xs, want %d", len(xs), len(wantX))
	}
	for i := range xs {
		if xs[i] != wantX[i] || ys[i] != wantY[i] {
			t.Errorf("Points()[%d] = (%v, %v), want (%v, %v)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
	// ys must be sorted and end at 1.
	if !sort.Float64sAreSorted(ys) || ys[len(ys)-1] != 1 {
		t.Error("Points() ys not monotone to 1")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4 {
		t.Errorf("Median = %v, want 4", s.Median)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s, err := Summarize([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 {
		t.Errorf("Std of constant sample = %v, want 0", s.Std)
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(0, 10, 1, 2, 4, 3)
	if g.X(2) != 2 || g.Y(2) != 14 {
		t.Errorf("coordinates wrong: X(2)=%v Y(2)=%v", g.X(2), g.Y(2))
	}
	g.Set(3, 2, 42)
	if g.At(3, 2) != 42 {
		t.Error("Set/At round trip failed")
	}
}

func TestGridFillAndExtremes(t *testing.T) {
	g := NewGrid(0, 0, 1, 1, 11, 11)
	g.Fill(func(x, y float64) float64 { return -(x-5)*(x-5) - (y-7)*(y-7) })
	i, j := g.ArgMax()
	if i != 5 || j != 7 {
		t.Errorf("ArgMax = (%d, %d), want (5, 7)", i, j)
	}
	lo, hi := g.MinMax()
	if hi != 0 {
		t.Errorf("max = %v, want 0", hi)
	}
	if lo >= hi {
		t.Errorf("min %v not below max %v", lo, hi)
	}
}

func TestGridMean(t *testing.T) {
	g := NewGrid(0, 0, 1, 1, 2, 2)
	g.Set(0, 0, 1)
	g.Set(1, 0, 2)
	g.Set(0, 1, 3)
	g.Set(1, 1, 4)
	if got := g.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0 dims) did not panic")
		}
	}()
	NewGrid(0, 0, 1, 1, 0, 5)
}

func TestWilsonInterval(t *testing.T) {
	// Known value: 8/10 successes → approximately (0.49, 0.94).
	lo, hi := WilsonInterval(8, 10)
	if lo < 0.44 || lo > 0.54 || hi < 0.90 || hi > 0.98 {
		t.Errorf("WilsonInterval(8,10) = (%v, %v), want ≈(0.49, 0.94)", lo, hi)
	}
	// Degenerate inputs.
	if lo, hi := WilsonInterval(0, 0); lo != 0 || hi != 1 {
		t.Errorf("n=0 should give (0,1), got (%v, %v)", lo, hi)
	}
	// Extremes stay in [0,1] and exclude nothing silly.
	lo, hi = WilsonInterval(0, 50)
	if lo != 0 || hi < 0.01 || hi > 0.2 {
		t.Errorf("WilsonInterval(0,50) = (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(50, 50)
	if hi != 1 || lo > 0.99 || lo < 0.8 {
		t.Errorf("WilsonInterval(50,50) = (%v, %v)", lo, hi)
	}
	// Interval shrinks with n.
	lo1, hi1 := WilsonInterval(20, 100)
	lo2, hi2 := WilsonInterval(200, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink with n: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestFracAboveCI(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i) // 0..99
	}
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	frac, lo, hi := e.FracAboveCI(79) // 20 values above 79
	if math.Abs(frac-0.2) > 1e-12 {
		t.Errorf("frac = %v, want 0.2", frac)
	}
	if !(lo < frac && frac < hi) {
		t.Errorf("interval (%v, %v) does not bracket %v", lo, hi, frac)
	}
}

func TestECDFAtConstantHeavySample(t *testing.T) {
	// A sample dominated by one repeated value: At must count the whole
	// run of equal values (upper bound), and do so via binary search
	// rather than a linear walk.
	sample := make([]float64, 10000)
	for i := range sample {
		sample[i] = 5
	}
	sample[0], sample[1] = 1, 9
	e, err := NewECDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.At(5); math.Abs(got-0.9999) > 1e-12 {
		t.Errorf("At(5) = %v, want 0.9999", got)
	}
	if got := e.At(4.9); math.Abs(got-0.0001) > 1e-12 {
		t.Errorf("At(4.9) = %v, want 0.0001", got)
	}
	if got := e.At(9); got != 1 {
		t.Errorf("At(9) = %v, want 1", got)
	}
	if got := e.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
}

func BenchmarkECDFAtConstantHeavy(b *testing.B) {
	sample := make([]float64, 1<<16)
	for i := range sample {
		sample[i] = 42
	}
	e, err := NewECDF(sample)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.At(42) != 1 {
			b.Fatal("wrong ECDF value")
		}
	}
}
