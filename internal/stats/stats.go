// Package stats implements the small statistical toolkit the evaluation
// needs: empirical CDFs, quantiles, summary statistics and dense 2-D grids
// for heatmap figures. It exists because the reproduction is stdlib-only —
// there is no gonum here, and none is needed.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by constructors handed no data.
var ErrEmpty = errors.New("stats: empty sample")

// ECDF is an empirical cumulative distribution function over a sample.
// Construct with NewECDF; the zero value is unusable.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (which it copies and sorts).
// NaNs are rejected because every downstream quantile would be poisoned.
func NewECDF(sample []float64) (ECDF, error) {
	if len(sample) == 0 {
		return ECDF{}, ErrEmpty
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	for _, v := range s {
		if math.IsNaN(v) {
			return ECDF{}, errors.New("stats: NaN in sample")
		}
	}
	sort.Float64s(s)
	return ECDF{sorted: s}, nil
}

// N returns the sample size.
func (e ECDF) N() int { return len(e.sorted) }

// At returns F(x): the fraction of the sample ≤ x.
func (e ECDF) At(x float64) float64 {
	// Upper bound via binary search: the first index with sorted[i] > x is
	// exactly the count of values ≤ x, with no linear walk over runs of
	// equal values (constant-heavy samples would degrade to O(n) per call).
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile for q in [0,1] using nearest-rank:
// the smallest sample value whose cumulative count reaches ceil(q·n), with
// the rank clamped into [1, n] so q=0, q=1 and one-element samples always
// stay in range. Out-of-range q is clamped; a NaN q returns NaN instead of
// computing a garbage rank. Histogram quantiles (obs.Histogram.Quantile)
// follow the same convention so sample- and bucket-derived percentiles
// agree on which rank they mean.
func (e ECDF) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q * float64(len(e.sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(e.sorted) {
		rank = len(e.sorted)
	}
	return e.sorted[rank-1]
}

// Min returns the smallest sample value.
func (e ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// FracAbove returns the fraction of the sample strictly greater than x —
// the form the paper quotes ("over 20% gain in 40% of the topologies").
func (e ECDF) FracAbove(x float64) float64 {
	return 1 - e.At(x)
}

// Points returns (x, F(x)) pairs suitable for plotting, one per distinct
// sample value.
func (e ECDF) Points() (xs, ys []float64) {
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ys = append(ys, float64(i+1)/n)
	}
	return xs, ys
}

// Summary holds the usual moments and extremes of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P90, P99  float64
}

// Summarize computes a Summary. It returns ErrEmpty for empty input.
func Summarize(sample []float64) (Summary, error) {
	e, err := NewECDF(sample)
	if err != nil {
		return Summary{}, err
	}
	var sum, sumSq float64
	for _, v := range sample {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sample))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical floor
	}
	return Summary{
		N:      len(sample),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    e.Min(),
		Max:    e.Max(),
		Median: e.Quantile(0.5),
		P90:    e.Quantile(0.9),
		P99:    e.Quantile(0.99),
	}, nil
}

// Grid is a dense 2-D scalar field over a regular lattice: the substrate
// for the paper's heatmap figures (Figs. 3, 4, 8).
type Grid struct {
	// X0, Y0 are the coordinates of cell (0,0); DX, DY the lattice spacing.
	X0, Y0, DX, DY float64
	// NX, NY are the lattice dimensions.
	NX, NY int
	vals   []float64
}

// NewGrid allocates an NX×NY grid covering [x0, x0+(nx-1)dx]×[y0, y0+(ny-1)dy].
func NewGrid(x0, y0, dx, dy float64, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic("stats: non-positive grid dimensions")
	}
	return &Grid{X0: x0, Y0: y0, DX: dx, DY: dy, NX: nx, NY: ny, vals: make([]float64, nx*ny)}
}

// Set stores v at cell (i, j). Indices are range-checked by the slice.
func (g *Grid) Set(i, j int, v float64) { g.vals[j*g.NX+i] = v }

// At returns the value at cell (i, j).
func (g *Grid) At(i, j int) float64 { return g.vals[j*g.NX+i] }

// X returns the x-coordinate of column i.
func (g *Grid) X(i int) float64 { return g.X0 + float64(i)*g.DX }

// Y returns the y-coordinate of row j.
func (g *Grid) Y(j int) float64 { return g.Y0 + float64(j)*g.DY }

// Fill evaluates f over every lattice point.
func (g *Grid) Fill(f func(x, y float64) float64) {
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			g.Set(i, j, f(g.X(i), g.Y(j)))
		}
	}
}

// MinMax returns the extreme values stored in the grid.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ArgMax returns the cell with the largest value.
func (g *Grid) ArgMax() (i, j int) {
	best := math.Inf(-1)
	for jj := 0; jj < g.NY; jj++ {
		for ii := 0; ii < g.NX; ii++ {
			if v := g.At(ii, jj); v > best {
				best, i, j = v, ii, jj
			}
		}
	}
	return i, j
}

// Mean returns the average of all cells.
func (g *Grid) Mean() float64 {
	var sum float64
	for _, v := range g.vals {
		sum += v
	}
	return sum / float64(len(g.vals))
}

// WilsonInterval returns the 95% Wilson score confidence interval for a
// binomial proportion observed as successes out of n trials. It is the
// right interval for the "fraction of topologies with >20% gain" numbers
// the evaluation reports: unlike the normal approximation it behaves at
// proportions near 0 and 1.
func WilsonInterval(successes, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// FracAboveCI reports the fraction of the sample strictly above x together
// with its 95% Wilson interval.
func (e ECDF) FracAboveCI(x float64) (frac, lo, hi float64) {
	frac = e.FracAbove(x)
	successes := int(math.Round(frac * float64(e.N())))
	lo, hi = WilsonInterval(successes, e.N())
	return frac, lo, hi
}
