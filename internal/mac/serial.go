package mac

import (
	"fmt"
	"math/rand"

	"repro/internal/frame"
	"repro/internal/phy"
)

// RunSerial simulates the no-SIC baseline: stations contend with
// binary-exponential backoff and transmit one frame at a time at their
// interference-free best rate; each success costs DIFS + backoff + data
// airtime + SIFS + ACK.
//
// Collisions happen when two stations draw the same backoff slot; colliders
// double their contention window and retry, exactly as a simplified DCF.
func RunSerial(stations []Station, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := validStations(stations); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type st struct {
		Station
		cw      int
		seq     uint32
		pending int
	}
	sts := make([]*st, len(stations))
	for i, s := range stations {
		sts[i] = &st{Station: s, cw: cfg.CWMin, pending: s.Backlog}
	}

	res := Result{Delivered: map[uint32]int{}}
	var q eventQueue
	now := 0.0
	ackTime := cfg.AckBits / cfg.BaseRate

	remaining := func() []*st {
		var out []*st
		for _, s := range sts {
			if s.pending > 0 {
				out = append(out, s)
			}
		}
		return out
	}

	for {
		contenders := remaining()
		if len(contenders) == 0 {
			break
		}
		// Draw backoffs; the smallest goes first. Equal minima collide.
		minSlot, winners := 1<<30, []*st(nil)
		for _, s := range contenders {
			slot := rng.Intn(s.cw)
			switch {
			case slot < minSlot:
				minSlot, winners = slot, []*st{s}
			case slot == minSlot:
				winners = append(winners, s)
			}
		}
		now += cfg.DIFS + float64(minSlot)*cfg.SlotTime
		res.AirtimeOverhead += cfg.DIFS + float64(minSlot)*cfg.SlotTime

		if len(winners) > 1 {
			// Collision: the medium is busy for the longest colliding frame,
			// nobody delivers, colliders double their windows.
			res.Collisions++
			res.Faults.Retries += len(winners) // every collider re-contends
			longest := 0.0
			for _, s := range winners {
				t := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(s.SNR))
				if t > longest {
					longest = t
				}
				s.cw *= 2
			}
			now += longest
			res.AirtimeOverhead += longest
			res.Events++
			continue
		}

		s := winners[0]
		rate := cfg.Channel.Capacity(s.SNR)
		air := phy.TxTime(cfg.PacketBits, rate)
		f := frame.Frame{
			Type: frame.TypeData, Src: s.ID, Dst: 0, Seq: s.seq,
			DurationUS: uint32(air * 1e6),
			Payload:    make([]byte, 16),
		}
		wire, err := f.Marshal()
		if err != nil {
			return Result{}, fmt.Errorf("mac: marshalling data frame: %w", err)
		}
		if cfg.Capture != nil {
			if err := cfg.Capture.WriteFrame(uint64(now*1e9), wire); err != nil {
				return Result{}, fmt.Errorf("mac: capture: %w", err)
			}
		}
		q.schedule(event{at: now + air, kind: evTxEnd, station: s.ID, payload: wire})

		ev, _ := q.next()
		res.Events++
		now = ev.at
		if _, err := frame.Decode(ev.payload); err != nil {
			return Result{}, fmt.Errorf("mac: AP failed to parse its own frame: %w", err)
		}
		// Single transmission at the link's own best rate always decodes.
		res.AirtimeData += air
		now += cfg.SIFS + ackTime
		res.AirtimeOverhead += cfg.SIFS + ackTime
		s.pending--
		s.seq++
		s.cw = cfg.CWMin
		res.Delivered[s.ID]++
	}
	res.Duration = now
	return res, nil
}
