package mac

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sched"
)

func cfg() Config { return DefaultConfig(phy.Wifi20MHz) }

func stationsFromDB(backlog int, dbs ...float64) []Station {
	sts := make([]Station, len(dbs))
	for i, db := range dbs {
		sts[i] = Station{ID: uint32(i + 1), SNR: phy.FromDB(db), Backlog: backlog}
	}
	return sts
}

func schedOpts() sched.Options {
	return sched.Options{Channel: phy.Wifi20MHz, PacketBits: cfg().PacketBits}
}

func TestConfigValidation(t *testing.T) {
	good := cfg()
	muts := []func(*Config){
		func(c *Config) { c.Channel = phy.Channel{} },
		func(c *Config) { c.PacketBits = 0 },
		func(c *Config) { c.AckBits = 0 },
		func(c *Config) { c.BaseRate = 0 },
		func(c *Config) { c.SlotTime = -1 },
		func(c *Config) { c.CWMin = 0 },
		func(c *Config) { c.Residual = -0.1 },
		func(c *Config) { c.Residual = 1.5 },
	}
	for i, m := range muts {
		c := good
		m(&c)
		if _, err := RunSerial(stationsFromDB(1, 20), c); err == nil {
			t.Errorf("mutation %d accepted by RunSerial", i)
		}
	}
}

func TestStationValidation(t *testing.T) {
	cases := []struct {
		name string
		sts  []Station
	}{
		{"empty", nil},
		{"zero id", []Station{{ID: 0, SNR: 10, Backlog: 1}}},
		{"duplicate id", []Station{{ID: 1, SNR: 10, Backlog: 1}, {ID: 1, SNR: 20, Backlog: 1}}},
		{"bad snr", []Station{{ID: 1, SNR: -1, Backlog: 1}}},
		{"nan snr", []Station{{ID: 1, SNR: math.NaN(), Backlog: 1}}},
		{"negative backlog", []Station{{ID: 1, SNR: 10, Backlog: -1}}},
		{"broadcast id", []Station{{ID: ^uint32(0), SNR: 10, Backlog: 1}}},
	}
	for _, c := range cases {
		if _, err := RunSerial(c.sts, cfg()); err == nil {
			t.Errorf("%s accepted by RunSerial", c.name)
		}
		if _, err := RunScheduled(c.sts, cfg(), schedOpts()); err == nil {
			t.Errorf("%s accepted by RunScheduled", c.name)
		}
	}
}

func TestSerialDrainsEverything(t *testing.T) {
	sts := stationsFromDB(3, 30, 20, 15, 25)
	res, err := RunSerial(sts, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sts {
		if res.Delivered[s.ID] != 3 {
			t.Errorf("station %d delivered %d, want 3", s.ID, res.Delivered[s.ID])
		}
	}
	if res.Duration <= 0 {
		t.Error("non-positive duration")
	}
	if res.AirtimeData <= 0 || res.AirtimeOverhead <= 0 {
		t.Error("airtime accounting missing")
	}
	// Duration accounts for data + overhead exactly.
	if math.Abs(res.Duration-(res.AirtimeData+res.AirtimeOverhead)) > 1e-9 {
		t.Errorf("duration %v != data %v + overhead %v", res.Duration, res.AirtimeData, res.AirtimeOverhead)
	}
}

func TestSerialDeterministic(t *testing.T) {
	sts := stationsFromDB(2, 30, 20, 15)
	a, err := RunSerial(sts, cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSerial(sts, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Collisions != b.Collisions {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	c2 := cfg()
	c2.Seed = 999
	c, err := RunSerial(sts, c2)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may legitimately coincide; just ensure it runs
}

func TestSerialMatchesAnalyticAirtime(t *testing.T) {
	// With one station there is no contention: data airtime must equal the
	// analytic solo time exactly, per packet.
	sts := stationsFromDB(5, 25)
	res, err := RunSerial(sts, cfg())
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * cfg().PacketBits / phy.Wifi20MHz.Capacity(phy.FromDB(25))
	if math.Abs(res.AirtimeData-want) > 1e-9 {
		t.Errorf("data airtime %v, want %v", res.AirtimeData, want)
	}
	if res.Collisions != 0 {
		t.Errorf("single station collided %d times", res.Collisions)
	}
}

func TestScheduledDrainsEverything(t *testing.T) {
	sts := stationsFromDB(2, 32, 16, 28, 13)
	res, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sts {
		if res.Delivered[s.ID] != 2 {
			t.Errorf("station %d delivered %d, want 2", s.ID, res.Delivered[s.ID])
		}
	}
	if res.DecodeFailures != 0 {
		t.Errorf("perfect SIC produced %d decode failures", res.DecodeFailures)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (one per backlog unit)", res.Rounds)
	}
}

// The central validation: simulated SIC drain time must match the analytic
// schedule total once control overheads are subtracted.
func TestScheduledMatchesAnalyticPrediction(t *testing.T) {
	sts := stationsFromDB(1, 32, 16, 28, 13, 36, 19)
	res, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]sched.Client, len(sts))
	for i, s := range sts {
		clients[i] = sched.Client{ID: "x", SNR: s.SNR}
	}
	want, err := sched.New(clients, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Data airtime may exceed the analytic total because a SIC slot holds
	// the medium until BOTH frames end (the analytic total is also defined
	// that way), so they should agree tightly.
	if math.Abs(res.AirtimeData-want.Total) > 1e-6*want.Total {
		t.Errorf("simulated data airtime %v vs analytic schedule %v", res.AirtimeData, want.Total)
	}
	// And the full duration exceeds it only by control overhead.
	if res.Duration < want.Total {
		t.Errorf("duration %v below the physical floor %v", res.Duration, want.Total)
	}
}

func TestScheduledBeatsSerialForGoodTopology(t *testing.T) {
	// Pairs near the SIC sweet spot (strong ≈ twice weak in dB) at modest
	// backlog: scheduled mode should finish faster despite announcements.
	sts := stationsFromDB(4, 30, 15, 28, 14)
	serial, err := RunSerial(sts, cfg())
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if scheduled.Duration >= serial.Duration {
		t.Errorf("SIC scheduling (%v) did not beat serial CSMA (%v)", scheduled.Duration, serial.Duration)
	}
}

func TestScheduledPowerControl(t *testing.T) {
	sts := stationsFromDB(1, 26, 25)
	o := schedOpts()
	o.PowerControl = true
	res, err := RunScheduled(sts, cfg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[1] != 1 || res.Delivered[2] != 1 {
		t.Errorf("power-controlled pair did not drain: %+v", res.Delivered)
	}
	if res.DecodeFailures != 0 {
		t.Errorf("power-controlled SIC failed %d decodes", res.DecodeFailures)
	}
}

func TestImperfectCancellationCausesRetries(t *testing.T) {
	sts := stationsFromDB(1, 30, 15, 28, 14)
	perfect, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	imp := cfg()
	imp.Residual = 0.05 // 5% residual power after cancellation
	imperfect, err := RunScheduled(sts, imp, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if imperfect.DecodeFailures == 0 {
		t.Error("5% residual should break the weaker decode at least once")
	}
	if imperfect.Duration <= perfect.Duration {
		t.Errorf("imperfect SIC (%v) should be slower than perfect (%v)", imperfect.Duration, perfect.Duration)
	}
	// All packets still delivered via the solo-retry policy.
	for _, s := range sts {
		if imperfect.Delivered[s.ID] != 1 {
			t.Errorf("station %d delivered %d after retries, want 1", s.ID, imperfect.Delivered[s.ID])
		}
	}
}

func TestScheduledZeroBacklogStations(t *testing.T) {
	sts := []Station{
		{ID: 1, SNR: phy.FromDB(30), Backlog: 1},
		{ID: 2, SNR: phy.FromDB(20), Backlog: 0}, // nothing to send
	}
	res, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[2] != 0 {
		t.Errorf("idle station delivered %d frames", res.Delivered[2])
	}
	if res.Delivered[1] != 1 {
		t.Errorf("active station delivered %d, want 1", res.Delivered[1])
	}
}

func TestSICReceiverDecode(t *testing.T) {
	ch := phy.Wifi20MHz
	rx := SICReceiver{Channel: ch}
	strong, weak := phy.FromDB(30), phy.FromDB(15)
	rStrong := ch.Capacity(phy.SINR(strong, weak))
	rWeak := ch.Capacity(weak)

	// Feasible SIC: both decode.
	ok := rx.Decode([]Arrival{
		{StationID: 1, SNR: strong, RateBps: rStrong},
		{StationID: 2, SNR: weak, RateBps: rWeak},
	})
	if !ok[0] || !ok[1] {
		t.Errorf("feasible SIC pair did not decode: %v", ok)
	}

	// Stronger overshoots its rate: nothing decodes (cannot cancel).
	ok = rx.Decode([]Arrival{
		{StationID: 1, SNR: strong, RateBps: rStrong * 1.5},
		{StationID: 2, SNR: weak, RateBps: rWeak},
	})
	if ok[0] || ok[1] {
		t.Errorf("undecodable strong signal must block everything: %v", ok)
	}

	// Weaker overshoots: strong decodes, weak does not.
	ok = rx.Decode([]Arrival{
		{StationID: 1, SNR: strong, RateBps: rStrong},
		{StationID: 2, SNR: weak, RateBps: rWeak * 1.5},
	})
	if !ok[0] || ok[1] {
		t.Errorf("want strong-only decode: %v", ok)
	}

	// Order of arrivals must not matter.
	ok = rx.Decode([]Arrival{
		{StationID: 2, SNR: weak, RateBps: rWeak},
		{StationID: 1, SNR: strong, RateBps: rStrong},
	})
	if !ok[0] || !ok[1] {
		t.Errorf("arrival order changed the outcome: %v", ok)
	}

	// Empty reception.
	if got := rx.Decode(nil); len(got) != 0 {
		t.Errorf("empty reception returned %v", got)
	}
}

func TestSICReceiverResidual(t *testing.T) {
	ch := phy.Wifi20MHz
	strong, weak := phy.FromDB(30), phy.FromDB(15)
	rStrong := ch.Capacity(phy.SINR(strong, weak))
	rWeak := ch.Capacity(weak)
	arr := []Arrival{
		{StationID: 1, SNR: strong, RateBps: rStrong},
		{StationID: 2, SNR: weak, RateBps: rWeak},
	}
	perfect := SICReceiver{Channel: ch}
	if ok := perfect.Decode(arr); !ok[1] {
		t.Fatal("perfect receiver should decode the weak signal")
	}
	dirty := SICReceiver{Channel: ch, Residual: 0.1}
	if ok := dirty.Decode(arr); ok[1] {
		t.Error("10% residual should break a rate chosen for perfect cancellation")
	}
}

func TestSICReceiverMaxDecodes(t *testing.T) {
	ch := phy.Wifi20MHz
	// Three wildly separated signals, each decodable in sequence...
	s1, s2, s3 := phy.FromDB(45), phy.FromDB(28), phy.FromDB(12)
	arr := []Arrival{
		{StationID: 1, SNR: s1, RateBps: ch.Capacity(phy.SINR(s1, s2+s3)) * 0.9},
		{StationID: 2, SNR: s2, RateBps: ch.Capacity(phy.SINR(s2, s3)) * 0.9},
		{StationID: 3, SNR: s3, RateBps: ch.Capacity(s3) * 0.9},
	}
	// ...but the default receiver stops at two (the paper's scope).
	two := SICReceiver{Channel: ch}
	ok := two.Decode(arr)
	if !ok[0] || !ok[1] || ok[2] {
		t.Errorf("default receiver should decode exactly the two strongest: %v", ok)
	}
	three := SICReceiver{Channel: ch, MaxDecodes: 3}
	ok = three.Decode(arr)
	if !ok[0] || !ok[1] || !ok[2] {
		t.Errorf("3-decode receiver should recover all: %v", ok)
	}
}

func TestRunScheduledMaxRounds(t *testing.T) {
	c := cfg()
	c.Residual = 0.9 // hopeless receiver
	c.MaxRounds = 3
	// With residual 0.9 SIC pairs always fail, but the solo-retry policy
	// still drains; MaxRounds=3 with enough stations must either drain or
	// error, never hang.
	sts := stationsFromDB(2, 30, 15, 28, 14, 26, 13)
	res, err := RunScheduled(sts, c, schedOpts())
	if err == nil {
		// Draining is acceptable — verify it really finished.
		for _, s := range sts {
			if res.Delivered[s.ID] != 2 {
				t.Fatalf("claimed success but station %d has %d/2", s.ID, res.Delivered[s.ID])
			}
		}
	} else if !strings.Contains(err.Error(), "did not drain") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	q.schedule(event{at: 3, station: 3})
	q.schedule(event{at: 1, station: 1})
	q.schedule(event{at: 2, station: 2})
	q.schedule(event{at: 1, station: 10}) // same time: FIFO by seq
	var got []uint32
	for {
		ev, ok := q.next()
		if !ok {
			break
		}
		got = append(got, ev.station)
	}
	want := []uint32{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestScheduledMultirateMatchesAnalytic(t *testing.T) {
	// Two clients with close SNRs: the stronger is the SIC bottleneck, so
	// multirate packetization should shorten the slot, and the simulated
	// data airtime must match core's MultirateTime exactly.
	sts := stationsFromDB(1, 25, 23)
	base := schedOpts()
	mr := base
	mr.Multirate = true

	plain, err := RunScheduled(sts, cfg(), base)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunScheduled(sts, cfg(), mr)
	if err != nil {
		t.Fatal(err)
	}
	if multi.DecodeFailures != 0 {
		t.Fatalf("multirate run failed %d decodes", multi.DecodeFailures)
	}
	if multi.AirtimeData >= plain.AirtimeData {
		t.Errorf("multirate airtime %v should beat plain SIC %v", multi.AirtimeData, plain.AirtimeData)
	}
	want := core.Pair{S1: phy.FromDB(25), S2: phy.FromDB(23)}.MultirateTime(cfg().Channel, cfg().PacketBits)
	if math.Abs(multi.AirtimeData-want) > 1e-9*want {
		t.Errorf("simulated multirate airtime %v != analytic %v", multi.AirtimeData, want)
	}
}

func TestScheduledMultirateDrains(t *testing.T) {
	sts := stationsFromDB(3, 30, 15, 27, 24)
	mr := schedOpts()
	mr.Multirate = true
	res, err := RunScheduled(sts, cfg(), mr)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sts {
		if res.Delivered[s.ID] != 3 {
			t.Errorf("station %d delivered %d/3", s.ID, res.Delivered[s.ID])
		}
	}
}

func TestResidualAwarePlanNeverFails(t *testing.T) {
	// When the scheduler plans with the receiver's true β, every SIC slot
	// decodes and the drain time grows smoothly with β.
	sts := stationsFromDB(2, 30, 15, 28, 14)
	prev := 0.0
	for _, beta := range []float64{0, 1e-4, 1e-3, 1e-2} {
		c := cfg()
		c.Residual = beta
		o := schedOpts()
		o.Residual = beta
		res, err := RunScheduled(sts, c, o)
		if err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
		if res.DecodeFailures != 0 {
			t.Errorf("β=%v: residual-aware plan failed %d decodes", beta, res.DecodeFailures)
		}
		if res.Duration < prev-1e-12 {
			t.Errorf("β=%v: drain %v shrank below %v", beta, res.Duration, prev)
		}
		prev = res.Duration
	}
}

func TestScheduledCaptureLog(t *testing.T) {
	var buf bytes.Buffer
	w, err := capture.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.Capture = w
	sts := stationsFromDB(1, 30, 15, 22)
	res, err := RunScheduled(sts, c, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := capture.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// One schedule announcement plus one data frame per delivered packet.
	delivered := 0
	for _, n := range res.Delivered {
		delivered += n
	}
	var schedules, data int
	var prevTS uint64
	for i, rec := range recs {
		f, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		switch f.Type {
		case frame.TypeSchedule:
			schedules++
			if _, err := frame.DecodeSchedule(f.Payload); err != nil {
				t.Fatalf("record %d schedule payload: %v", i, err)
			}
		case frame.TypeData:
			data++
		}
		if rec.TimestampNanos < prevTS {
			t.Fatalf("record %d timestamp went backwards", i)
		}
		prevTS = rec.TimestampNanos
	}
	if schedules != res.Rounds {
		t.Errorf("captured %d schedules, want %d (one per round)", schedules, res.Rounds)
	}
	if data != delivered {
		t.Errorf("captured %d data frames, want %d", data, delivered)
	}
}

// The analytic multi-round drain plan (sched.Drain) must equal the
// simulator's data airtime for the same backlogs: both recompute the
// schedule over the remaining clients each round.
func TestScheduledMatchesDrainPlan(t *testing.T) {
	dbs := []float64{32, 16, 28, 13}
	backlogs := []int{3, 1, 2, 2}
	sts := make([]Station, len(dbs))
	clients := make([]sched.Client, len(dbs))
	for i := range dbs {
		sts[i] = Station{ID: uint32(i + 1), SNR: phy.FromDB(dbs[i]), Backlog: backlogs[i]}
		clients[i] = sched.Client{ID: "c", SNR: sts[i].SNR}
	}
	res, err := RunScheduled(sts, cfg(), schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.Drain(clients, backlogs, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AirtimeData-plan.Total) > 1e-9*plan.Total {
		t.Errorf("simulated airtime %v != drain plan %v", res.AirtimeData, plan.Total)
	}
	if res.Rounds != len(plan.Rounds) {
		t.Errorf("rounds %d != plan rounds %d", res.Rounds, len(plan.Rounds))
	}
}

func TestRunDownloadValidation(t *testing.T) {
	c := cfg()
	if _, err := RunDownload(nil, c); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := RunDownload([]DownloadClient{{ID: 0, SNRs: []float64{10}, Backlog: 1}}, c); err == nil {
		t.Error("zero id accepted")
	}
	if _, err := RunDownload([]DownloadClient{{ID: 1, SNRs: nil, Backlog: 1}}, c); err == nil {
		t.Error("no SNRs accepted")
	}
	if _, err := RunDownload([]DownloadClient{{ID: 1, SNRs: []float64{-1}, Backlog: 1}}, c); err == nil {
		t.Error("negative SNR accepted")
	}
	dup := []DownloadClient{
		{ID: 1, SNRs: []float64{10}, Backlog: 1},
		{ID: 1, SNRs: []float64{10}, Backlog: 1},
	}
	if _, err := RunDownload(dup, c); err == nil {
		t.Error("duplicate ids accepted")
	}
}

// The paper's Fig. 8 conclusion, end to end: download gains are tiny even
// when SIC pairing is applied wherever it helps.
func TestRunDownloadModestGains(t *testing.T) {
	// Client on the Fig. 8 ridge: second AP at about half the dB of the first.
	ridge := DownloadClient{ID: 1, SNRs: []float64{phy.FromDB(24), phy.FromDB(12)}, Backlog: 10}
	// Client with nearly equal APs: SIC pairing is a loss, strategy must
	// fall back to serial (gain exactly 1).
	equal := DownloadClient{ID: 2, SNRs: []float64{phy.FromDB(25), phy.FromDB(24)}, Backlog: 10}

	res, err := RunDownload([]DownloadClient{ridge}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SICPairsUsed == 0 {
		t.Error("ridge client should use SIC pairs")
	}
	if g := res.Gain(); g <= 1 || g > 1.3 {
		t.Errorf("ridge download gain %v, want small but real (paper: ≤ ~1.25)", g)
	}

	res, err = RunDownload([]DownloadClient{equal}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SICPairsUsed != 0 {
		t.Error("equal-AP client should never pair")
	}
	if g := res.Gain(); math.Abs(g-1) > 1e-12 {
		t.Errorf("equal-AP gain %v, want exactly 1", g)
	}
}

// Simulated download gain must equal the analytic core.Download gain for a
// two-packet backlog.
func TestRunDownloadMatchesAnalytic(t *testing.T) {
	s1, s2 := phy.FromDB(24), phy.FromDB(12)
	client := DownloadClient{ID: 1, SNRs: []float64{s1, s2}, Backlog: 2}
	res, err := RunDownload([]DownloadClient{client}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	want := core.Download{S1: s1, S2: s2}.Gain(cfg().Channel, cfg().PacketBits)
	if want < 1 {
		want = 1
	}
	if math.Abs(res.Gain()-want) > 1e-9 {
		t.Errorf("simulated gain %v != analytic %v", res.Gain(), want)
	}
}

func TestRunDownloadOddBacklog(t *testing.T) {
	client := DownloadClient{ID: 1, SNRs: []float64{phy.FromDB(24), phy.FromDB(12)}, Backlog: 5}
	res, err := RunDownload([]DownloadClient{client}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SICPairsUsed != 2 {
		t.Errorf("5 packets should form 2 pairs, got %d", res.SICPairsUsed)
	}
	if res.SICDuration >= res.SerialDuration {
		t.Errorf("pairing should help on the ridge: %v vs %v", res.SICDuration, res.SerialDuration)
	}
}

func TestFaultCountersAddTotal(t *testing.T) {
	a := FaultCounters{FramesLost: 1, CRCRejects: 2, Retries: 3, TimedOutSlots: 4, Stalls: 5}
	b := FaultCounters{FramesLost: 10, Retries: 1}
	a.Add(b)
	want := FaultCounters{FramesLost: 11, CRCRejects: 2, Retries: 4, TimedOutSlots: 4, Stalls: 5}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
	if got := a.Total(); got != 11+2+4+4+5 {
		t.Errorf("Total = %d", got)
	}
}

func TestSerialCollisionsCountedAsRetries(t *testing.T) {
	// Many equal stations with small contention windows collide often;
	// each collision re-contends every collider, so the shared retry
	// counter must grow at least twice as fast as the collision counter.
	cfg := DefaultConfig(phy.Wifi20MHz)
	cfg.CWMin = 2
	cfg.Seed = 4
	sts := make([]Station, 6)
	for i := range sts {
		sts[i] = Station{ID: uint32(i + 1), SNR: phy.FromDB(20), Backlog: 3}
	}
	res, err := RunSerial(sts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Skip("no collisions with this seed; scenario needs retuning")
	}
	if res.Faults.Retries < 2*res.Collisions {
		t.Errorf("Retries = %d, want >= 2×Collisions (%d)", res.Faults.Retries, res.Collisions)
	}
}
