package mac

import (
	"math"
	"testing"

	"repro/internal/phy"
)

func queuedCfg(rate float64) QueuedConfig {
	return QueuedConfig{
		Config:      cfg(),
		ArrivalRate: rate,
		Horizon:     0.05, // 50 ms of arrivals
	}
}

func queuedStations() []Station {
	return []Station{
		{ID: 1, SNR: phy.FromDB(32)},
		{ID: 2, SNR: phy.FromDB(16)},
		{ID: 3, SNR: phy.FromDB(28)},
		{ID: 4, SNR: phy.FromDB(13)},
	}
}

func TestQueuedConfigValidation(t *testing.T) {
	bad := queuedCfg(100)
	bad.ArrivalRate = 0
	if _, err := RunQueuedSerial(queuedStations(), bad); err == nil {
		t.Error("zero arrival rate accepted")
	}
	bad = queuedCfg(100)
	bad.Horizon = 0
	if _, err := RunQueuedSerial(queuedStations(), bad); err == nil {
		t.Error("zero horizon accepted")
	}
	bad = queuedCfg(100)
	bad.PacketBits = 0
	if _, err := RunQueuedScheduled(queuedStations(), bad, schedOpts()); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestQueuedDeliversEverything(t *testing.T) {
	qc := queuedCfg(400)
	serial, err := RunQueuedSerial(queuedStations(), qc)
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := RunQueuedScheduled(queuedStations(), qc, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Delivered == 0 {
		t.Fatal("no packets generated; raise the arrival rate or horizon")
	}
	// Arrival processes are seed-determined, identical across MACs.
	if serial.Delivered != scheduled.Delivered {
		t.Errorf("delivered mismatch: serial %d vs scheduled %d", serial.Delivered, scheduled.Delivered)
	}
	for _, r := range []QueuedResult{serial, scheduled} {
		if r.MeanDelay <= 0 || r.P95Delay < r.MeanDelay || r.MaxDelay < r.P95Delay {
			t.Errorf("implausible delay stats: %+v", r)
		}
		if r.Duration < qc.Horizon*0 { // duration is positive by construction
			t.Errorf("bad duration %v", r.Duration)
		}
	}
}

func TestQueuedDelayGrowsWithLoad(t *testing.T) {
	sts := queuedStations()
	prevSerial, prevSched := 0.0, 0.0
	for _, rate := range []float64{200, 800, 2400} {
		qc := queuedCfg(rate)
		serial, err := RunQueuedSerial(sts, qc)
		if err != nil {
			t.Fatal(err)
		}
		scheduled, err := RunQueuedScheduled(sts, qc, schedOpts())
		if err != nil {
			t.Fatal(err)
		}
		if serial.MeanDelay < prevSerial*0.5 {
			t.Errorf("serial delay dropped sharply as load grew: %v after %v", serial.MeanDelay, prevSerial)
		}
		if scheduled.MeanDelay < prevSched*0.5 {
			t.Errorf("scheduled delay dropped sharply as load grew: %v after %v", scheduled.MeanDelay, prevSched)
		}
		prevSerial, prevSched = serial.MeanDelay, scheduled.MeanDelay
	}
}

func TestQueuedSICBeatsSerialUnderHighLoad(t *testing.T) {
	// Near saturation the SIC scheduler's extra capacity must show up as
	// lower delay.
	sts := []Station{
		{ID: 1, SNR: phy.FromDB(30)},
		{ID: 2, SNR: phy.FromDB(15)},
		{ID: 3, SNR: phy.FromDB(28)},
		{ID: 4, SNR: phy.FromDB(14)},
	}
	qc := queuedCfg(2500)
	serial, err := RunQueuedSerial(sts, qc)
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := RunQueuedScheduled(sts, qc, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if scheduled.MeanDelay >= serial.MeanDelay {
		t.Errorf("scheduled mean delay %v should beat serial %v at high load",
			scheduled.MeanDelay, serial.MeanDelay)
	}
	if scheduled.Duration >= serial.Duration {
		t.Errorf("scheduled duration %v should beat serial %v at high load",
			scheduled.Duration, serial.Duration)
	}
}

func TestQueuedDeterministic(t *testing.T) {
	qc := queuedCfg(600)
	a, err := RunQueuedScheduled(queuedStations(), qc, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQueuedScheduled(queuedStations(), qc, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestQueuedImperfectSICStillDrains(t *testing.T) {
	qc := queuedCfg(400)
	qc.Residual = 0.02
	qc.MaxRounds = 100000
	res, err := RunQueuedScheduled(queuedStations(), qc, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	perfect := queuedCfg(400)
	base, err := RunQueuedScheduled(queuedStations(), perfect, schedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != base.Delivered {
		t.Errorf("imperfect SIC lost packets: %d vs %d", res.Delivered, base.Delivered)
	}
	if res.MeanDelay < base.MeanDelay {
		t.Errorf("imperfect SIC delay %v should not beat perfect %v", res.MeanDelay, base.MeanDelay)
	}
}

func TestQueuedLoadMetric(t *testing.T) {
	qc := queuedCfg(1000)
	res, err := RunQueuedSerial(queuedStations(), qc)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedLoad <= 0 || math.IsInf(res.OfferedLoad, 0) {
		t.Errorf("bad offered load %v", res.OfferedLoad)
	}
}
