package mac

import "container/heap"

// eventKind discriminates simulator events.
type eventKind int

const (
	evTxEnd eventKind = iota
	evAckEnd
	evSlotDone
)

// event is one scheduled occurrence on the simulated timeline.
type event struct {
	at      float64
	kind    eventKind
	station uint32 // transmitter involved, if any
	seq     uint64 // tie-break so ordering is deterministic
	// payload carries the decoded frame bytes for events that deliver one.
	payload []byte
}

// eventQueue is a time-ordered min-heap of events.
type eventQueue struct {
	items []event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// schedule enqueues an event, stamping it for deterministic ordering.
func (q *eventQueue) schedule(e event) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

// next pops the earliest event; ok is false when the queue is drained.
func (q *eventQueue) next() (event, bool) {
	if q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}
