package mac

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sched"
)

// stState is a station's mutable simulation state.
type stState struct {
	Station
	seq uint32
}

// RunScheduled simulates the paper's SIC-aware upload MAC. Each round the
// AP takes every station with backlog, computes the optimal schedule
// (package sched), broadcasts it in a schedule frame at the base rate, and
// executes the slots:
//
//   - solo / serial slots transmit one frame at a time at the link's best
//     rate;
//   - SIC slots transmit both frames concurrently at the rates the schedule
//     implies (power control included); the AP's SICReceiver decides what
//     actually decodes, so imperfect cancellation (Config.Residual) shows
//     up as retries in later rounds.
//
// Rounds repeat until all backlogs drain.
func RunScheduled(stations []Station, cfg Config, opts sched.Options) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := validStations(stations); err != nil {
		return Result{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		total := 0
		for _, s := range stations {
			total += s.Backlog
		}
		maxRounds = 4*total + 16
	}

	pending := make(map[uint32]*stState, len(stations))
	order := make([]uint32, 0, len(stations))
	for _, s := range stations {
		if s.Backlog > 0 {
			pending[s.ID] = &stState{Station: s}
			order = append(order, s.ID)
		}
	}

	rx := SICReceiver{Channel: cfg.Channel, Residual: cfg.Residual}
	res := Result{Delivered: map[uint32]int{}}
	now := 0.0
	ackTime := cfg.AckBits / cfg.BaseRate

	// Stations whose SIC decode failed last round are granted a solo slot
	// next round (a simple ARQ recovery policy); without it an imperfect
	// receiver would re-fail the same pairing forever.
	failed := map[uint32]bool{}

	for len(pending) > 0 {
		if res.Rounds >= maxRounds {
			return Result{}, fmt.Errorf("mac: schedule did not drain after %d rounds (residual too high?)", res.Rounds)
		}
		res.Rounds++

		// Recover last round's failures first, outside the pairing pool.
		for _, id := range order {
			s, ok := pending[id]
			if !ok || !failed[id] {
				continue
			}
			var err error
			now, err = soloTx(s, cfg, &res, now, ackTime)
			if err != nil {
				return Result{}, err
			}
			delete(failed, id)
			if s.Backlog == 0 {
				delete(pending, id)
			}
		}
		if len(pending) == 0 {
			break
		}

		// Stable station ordering keeps runs deterministic.
		var clients []sched.Client
		var ids []uint32
		for _, id := range order {
			if s, ok := pending[id]; ok {
				clients = append(clients, sched.Client{ID: fmt.Sprint(id), SNR: s.SNR})
				ids = append(ids, id)
			}
		}
		schedule, err := sched.New(clients, opts)
		if err != nil {
			return Result{}, fmt.Errorf("mac: round %d scheduling: %w", res.Rounds, err)
		}

		// Announce the schedule on the air (broadcast at base rate).
		entries := make([]frame.ScheduleEntry, 0, len(schedule.Slots))
		for _, sl := range schedule.Slots {
			e := frame.ScheduleEntry{
				A:               ids[sl.A],
				B:               frame.Broadcast,
				Concurrent:      sl.Mode == sched.ModeSIC,
				Multirate:       sl.Mode == sched.ModeSIC && opts.Multirate,
				WeakScaleMicros: frame.ScaleToMicros(sl.WeakScale),
			}
			if sl.B >= 0 {
				e.B = ids[sl.B]
			}
			entries = append(entries, e)
		}
		payload, err := frame.MarshalSchedule(entries)
		if err != nil {
			return Result{}, fmt.Errorf("mac: round %d schedule payload: %w", res.Rounds, err)
		}
		annFrame := frame.Frame{Type: frame.TypeSchedule, Src: 0, Dst: frame.Broadcast, Payload: payload}
		wire, err := annFrame.Marshal()
		if err != nil {
			return Result{}, fmt.Errorf("mac: round %d schedule frame: %w", res.Rounds, err)
		}
		annAir := float64(len(wire)*8) / cfg.BaseRate
		if cfg.Capture != nil {
			if err := cfg.Capture.WriteFrame(uint64((now+cfg.DIFS)*1e9), wire); err != nil {
				return Result{}, fmt.Errorf("mac: capture: %w", err)
			}
		}
		now += cfg.DIFS + annAir
		res.AirtimeOverhead += cfg.DIFS + annAir
		res.Events++

		// Every station decodes the announcement; simulate that honestly.
		decoded, err := frame.Decode(wire)
		if err != nil {
			return Result{}, fmt.Errorf("mac: stations failed to parse schedule: %w", err)
		}
		slotPlan, err := frame.DecodeSchedule(decoded.Payload)
		if err != nil {
			return Result{}, fmt.Errorf("mac: stations failed to parse slots: %w", err)
		}

		for _, entry := range slotPlan {
			var slotFailed []uint32
			now, slotFailed, err = runSlot(entry, pending, cfg, opts.Residual, rx, &res, now, ackTime)
			if err != nil {
				return Result{}, err
			}
			for _, id := range slotFailed {
				failed[id] = true
			}
		}

		for id, s := range pending {
			if s.Backlog == 0 {
				delete(pending, id)
			}
		}
	}
	res.Duration = now
	return res, nil
}

// soloTx transmits one frame from s at its interference-free best rate and
// always succeeds (single signal at its own link rate).
func soloTx(s *stState, cfg Config, res *Result, now, ackTime float64) (float64, error) {
	rate := cfg.Channel.Capacity(s.SNR)
	air := phy.TxTime(cfg.PacketBits, rate)
	if math.IsInf(air, 1) {
		return now, fmt.Errorf("mac: station %d cannot reach the AP", s.ID)
	}
	if err := cfg.captureFrame(now, &frame.Frame{
		Type: frame.TypeData, Src: s.ID, Dst: 0, Seq: s.seq,
		DurationUS: uint32(air * 1e6),
	}); err != nil {
		return now, err
	}
	var q eventQueue
	q.schedule(event{at: now + air, kind: evTxEnd, station: s.ID})
	ev, _ := q.next()
	res.Events++
	now = ev.at
	res.AirtimeData += air
	now += cfg.SIFS + ackTime
	res.AirtimeOverhead += cfg.SIFS + ackTime
	s.Backlog--
	s.seq++
	res.Delivered[s.ID]++
	return now, nil
}

// runSlot executes one schedule entry on the simulated medium and returns
// the advanced clock plus the stations whose frames the AP failed to decode.
// plannedResidual is the β the scheduler assumed when choosing rates: a
// residual-aware plan derates the weaker station so the receiver (whose true
// residual is cfg.Residual) can still decode it.
func runSlot(entry frame.ScheduleEntry, pending map[uint32]*stState, cfg Config, plannedResidual float64, rx SICReceiver, res *Result, now, ackTime float64) (float64, []uint32, error) {
	a, okA := pending[entry.A]
	if !okA {
		return now, nil, fmt.Errorf("mac: schedule references unknown station %d", entry.A)
	}
	if entry.B == frame.Broadcast {
		now, err := soloTx(a, cfg, res, now, ackTime)
		return now, nil, err
	}
	b, okB := pending[entry.B]
	if !okB {
		return now, nil, fmt.Errorf("mac: schedule references unknown station %d", entry.B)
	}

	if !entry.Concurrent {
		// Serial slot: two back-to-back solo transmissions.
		now, err := soloTx(a, cfg, res, now, ackTime)
		if err != nil {
			return now, nil, err
		}
		now, err = soloTx(b, cfg, res, now, ackTime)
		return now, nil, err
	}

	// SIC slot. Determine roles: the stronger is decoded first, the weaker
	// applies the announced power scale.
	sA, sB := a.SNR, b.SNR
	strong, weak := a, b
	if sB > sA {
		strong, weak = b, a
	}
	weakSNR := weak.SNR * entry.WeakScale()
	strongSNR := strong.SNR
	if weakSNR > strongSNR {
		// Power scaling can never invert the ordering (scale ≤ 1 on the
		// weaker), so this indicates a corrupted schedule.
		return now, nil, fmt.Errorf("mac: power scale inverted pair (%d,%d)", entry.A, entry.B)
	}

	// Transmit rates exactly as the schedule's analysis implies, including
	// the planned derating of the weaker signal for residual interference.
	strongRate := cfg.Channel.Capacity(phy.SINR(strongSNR, weakSNR))
	weakRate := cfg.Channel.Capacity(phy.SINR(weakSNR, plannedResidual*strongSNR))
	if strongRate <= 0 || weakRate <= 0 {
		return now, nil, fmt.Errorf("mac: SIC slot (%d,%d) has a dead link", entry.A, entry.B)
	}

	airStrong := phy.TxTime(cfg.PacketBits, strongRate)
	airWeak := phy.TxTime(cfg.PacketBits, weakRate)
	if entry.Multirate {
		// §5.3 multirate packetization: once the weaker station's frame
		// ends, the stronger one drains its remaining bits at its
		// interference-free rate. Mirrors core.Pair.MultirateTime.
		if sent := strongRate * airWeak; sent < cfg.PacketBits {
			clean := cfg.Channel.Capacity(strongSNR)
			airStrong = airWeak + phy.TxTime(cfg.PacketBits-sent, clean)
		}
		// If the stronger already finished within the overlap, airStrong
		// stays as computed (≤ airWeak) and the weak frame bounds the slot.
	}

	for _, tx := range []struct {
		st  *stState
		air float64
	}{{strong, airStrong}, {weak, airWeak}} {
		if err := cfg.captureFrame(now, &frame.Frame{
			Type: frame.TypeData, Src: tx.st.ID, Dst: 0, Seq: tx.st.seq,
			DurationUS: uint32(tx.air * 1e6),
		}); err != nil {
			return now, nil, err
		}
	}

	var q eventQueue
	q.schedule(event{at: now + airStrong, kind: evTxEnd, station: strong.ID})
	q.schedule(event{at: now + airWeak, kind: evTxEnd, station: weak.ID})
	end := now
	for {
		ev, ok := q.next()
		if !ok {
			break
		}
		res.Events++
		end = ev.at
	}
	res.AirtimeData += end - now
	now = end

	// The AP applies SIC to the overlapped reception.
	arrivals := []Arrival{
		{StationID: strong.ID, SNR: strongSNR, RateBps: strongRate},
		{StationID: weak.ID, SNR: weakSNR, RateBps: weakRate},
	}
	ok := rx.Decode(arrivals)
	var failedIDs []uint32
	for i, st := range []*stState{strong, weak} {
		if ok[i] {
			st.Backlog--
			st.seq++
			res.Delivered[st.ID]++
			now += cfg.SIFS + ackTime
			res.AirtimeOverhead += cfg.SIFS + ackTime
		} else {
			res.DecodeFailures++
			failedIDs = append(failedIDs, st.ID)
		}
	}
	return now, failedIDs, nil
}
