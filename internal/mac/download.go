package mac

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/phy"
)

// DownloadClient is one client of the §4.1 download scenario: an enterprise
// WLAN where APs share a wired backbone, so any AP may deliver any of the
// client's packets.
type DownloadClient struct {
	// ID must be unique and non-zero.
	ID uint32
	// SNRs is the client's linear SNR from each AP (index = AP).
	SNRs []float64
	// Backlog is the number of packets destined to this client.
	Backlog int
}

// DownloadResult compares the two download strategies end to end.
type DownloadResult struct {
	// SerialDuration drains every packet through each client's strongest AP,
	// one at a time — the Eq. (10) baseline.
	SerialDuration float64
	// SICDuration lets the two strongest APs transmit packet pairs
	// concurrently whenever the client's SIC decode makes that faster.
	SICDuration float64
	// SICPairsUsed counts packet pairs actually sent concurrently.
	SICPairsUsed int
}

// Gain is the download speedup from SIC (≥ 1; the paper predicts ≈ 1).
func (r DownloadResult) Gain() float64 {
	if r.SICDuration == 0 {
		return 1
	}
	return r.SerialDuration / r.SICDuration
}

// RunDownload simulates the §4.1 download scenario: for each client, drain
// its backlog (a) serially via the strongest AP and (b) with SIC pairing of
// the two strongest APs where beneficial. Clients are served sequentially
// (one collision domain).
func RunDownload(clients []DownloadClient, cfg Config) (DownloadResult, error) {
	if err := cfg.validate(); err != nil {
		return DownloadResult{}, err
	}
	if len(clients) == 0 {
		return DownloadResult{}, errors.New("mac: no download clients")
	}
	seen := map[uint32]bool{}
	var res DownloadResult
	for _, c := range clients {
		if c.ID == 0 || seen[c.ID] {
			return DownloadResult{}, fmt.Errorf("mac: bad or duplicate client id %d", c.ID)
		}
		seen[c.ID] = true
		if len(c.SNRs) == 0 {
			return DownloadResult{}, fmt.Errorf("mac: client %d has no AP observations", c.ID)
		}
		if c.Backlog < 0 {
			return DownloadResult{}, fmt.Errorf("mac: client %d has negative backlog", c.ID)
		}

		// Two strongest APs for this client.
		best, second := -1.0, -1.0
		for _, s := range c.SNRs {
			if !(s > 0) || math.IsNaN(s) || math.IsInf(s, 1) {
				return DownloadResult{}, fmt.Errorf("mac: client %d has invalid SNR %v", c.ID, s)
			}
			if s > best {
				best, second = s, best
			} else if s > second {
				second = s
			}
		}
		soloT := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(best))
		if math.IsInf(soloT, 1) {
			return DownloadResult{}, fmt.Errorf("mac: client %d unreachable", c.ID)
		}
		res.SerialDuration += float64(c.Backlog) * soloT

		// SIC strategy: pair packets through (best, second) when that beats
		// two serial transmissions through the best AP — exactly the
		// Eq. (10) vs Eq. (6) comparison the paper's Fig. 8 plots.
		remaining := c.Backlog
		if second > 0 {
			dl := core.Download{S1: best, S2: second}
			pairT := dl.SICTime(cfg.Channel, cfg.PacketBits)
			serialPairT := 2 * soloT
			if pairT < serialPairT {
				pairs := remaining / 2
				res.SICDuration += float64(pairs) * pairT
				res.SICPairsUsed += pairs
				remaining -= 2 * pairs
			}
		}
		res.SICDuration += float64(remaining) * soloT
	}
	return res, nil
}
