// Package mac is a discrete-event MAC-layer simulator for WLAN upload with
// an SIC-capable access point. It exists to validate the paper's analytic
// completion times end to end: the same topologies are drained packet by
// packet through an event queue, real wire-format frames (package frame),
// and an explicit SIC receiver model, and the measured drain times are
// compared against the closed-form predictions.
//
// Two MACs are provided:
//
//   - RunSerial: a CSMA/CA-flavoured baseline — one station at a time,
//     contention via binary-exponential backoff, DIFS/SIFS/ACK overheads.
//   - RunScheduled: the paper's §6 protocol — the AP computes an SIC-aware
//     schedule (package sched), announces it in a schedule frame, and the
//     slots execute with concurrent transmissions decoded by SIC.
//
// The receiver model implements exactly the idealised two-signal SIC the
// analysis assumes, plus a residual-cancellation knob for the imperfect-SIC
// ablation.
package mac

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/capture"
	"repro/internal/frame"
	"repro/internal/phy"
)

// Station is one uploading client.
type Station struct {
	// ID must be unique and non-zero (0 is the AP).
	ID uint32
	// SNR is the station's linear received SNR at the AP at full power.
	SNR float64
	// Backlog is the number of data frames the station must deliver.
	Backlog int
}

// Config parameterises a simulation run.
type Config struct {
	// Channel supplies bandwidth/noise for every rate computation.
	Channel phy.Channel
	// PacketBits is the data frame payload size on the air.
	PacketBits float64
	// AckBits is the ACK frame airtime size; ACKs are sent at BaseRate.
	AckBits float64
	// BaseRate is the control-frame bitrate (schedule and ACK frames).
	BaseRate float64
	// SlotTime, SIFS and DIFS are the 802.11-style timing constants in
	// seconds.
	SlotTime, SIFS, DIFS float64
	// CWMin is the initial contention window (slots) for the serial MAC.
	CWMin int
	// Residual is the fraction of a cancelled signal's power that remains
	// as interference (0 = perfect SIC).
	Residual float64
	// MaxRounds bounds scheduled-mode retries so a misconfigured run
	// terminates; 0 means a generous default.
	MaxRounds int
	// Seed drives backoff randomness.
	Seed int64
	// Capture, if non-nil, records every frame the simulation puts on the
	// air (data and schedule announcements) with its transmit timestamp.
	// Inspect the log with cmd/sicdump.
	Capture *capture.Writer
}

// captureFrame records a frame at simulated time t (seconds); it is a
// no-op without a capture writer. Capture failures abort the simulation —
// a half-written log is worse than none.
func (c Config) captureFrame(t float64, f *frame.Frame) error {
	if c.Capture == nil {
		return nil
	}
	wire, err := f.Marshal()
	if err != nil {
		return fmt.Errorf("mac: capture marshal: %w", err)
	}
	return c.Capture.WriteFrame(uint64(t*1e9), wire)
}

// DefaultConfig returns 802.11g-flavoured timing over the given channel.
func DefaultConfig(ch phy.Channel) Config {
	return Config{
		Channel:    ch,
		PacketBits: 12000, // 1500-byte MPDU
		AckBits:    112,   // 14-byte ACK
		BaseRate:   6e6,
		SlotTime:   9e-6,
		SIFS:       10e-6,
		DIFS:       28e-6,
		CWMin:      16,
		Seed:       1,
	}
}

func (c Config) validate() error {
	switch {
	case c.Channel.BandwidthHz <= 0 || c.Channel.NoiseW <= 0:
		return errors.New("mac: Channel is required")
	case c.PacketBits <= 0:
		return errors.New("mac: PacketBits must be positive")
	case c.AckBits <= 0:
		return errors.New("mac: AckBits must be positive")
	case c.BaseRate <= 0:
		return errors.New("mac: BaseRate must be positive")
	case c.SlotTime < 0 || c.SIFS < 0 || c.DIFS < 0:
		return errors.New("mac: timing constants must be non-negative")
	case c.CWMin < 1:
		return errors.New("mac: CWMin must be at least 1")
	case c.Residual < 0 || c.Residual > 1:
		return errors.New("mac: Residual must be in [0,1]")
	}
	return nil
}

// Result summarises a simulation run.
type Result struct {
	// Duration is the simulated time to drain every station's backlog.
	Duration float64
	// Delivered counts successfully ACKed data frames per station.
	Delivered map[uint32]int
	// DecodeFailures counts data frames the AP could not decode.
	DecodeFailures int
	// Collisions counts serial-MAC contention collisions.
	Collisions int
	// AirtimeData is the total time the medium carried data frames.
	AirtimeData float64
	// AirtimeOverhead is control/backoff/IFS time.
	AirtimeOverhead float64
	// Rounds is the number of scheduling rounds (scheduled mode only).
	Rounds int
	// Events is the number of discrete events processed.
	Events int
	// Faults aggregates failure/recovery accounting in the shared counter
	// type; the serial baseline records post-collision retries here, and
	// the live emulator (package emu) reuses the same type for its
	// fault-injection tallies.
	Faults FaultCounters
}

func validStations(stations []Station) error {
	if len(stations) == 0 {
		return errors.New("mac: no stations")
	}
	seen := map[uint32]bool{}
	for _, s := range stations {
		if s.ID == 0 {
			return errors.New("mac: station id 0 is reserved for the AP")
		}
		if s.ID == frame.Broadcast {
			return errors.New("mac: station id collides with broadcast address")
		}
		if seen[s.ID] {
			return fmt.Errorf("mac: duplicate station id %d", s.ID)
		}
		seen[s.ID] = true
		if !(s.SNR > 0) || math.IsInf(s.SNR, 1) || math.IsNaN(s.SNR) {
			return fmt.Errorf("mac: station %d has invalid SNR %v", s.ID, s.SNR)
		}
		if s.Backlog < 0 {
			return fmt.Errorf("mac: station %d has negative backlog", s.ID)
		}
	}
	return nil
}

// Arrival is one concurrent signal at the SIC receiver.
type Arrival struct {
	// StationID identifies the transmitter.
	StationID uint32
	// SNR is the received linear SNR (after any power scaling).
	SNR float64
	// RateBps is the bitrate the transmitter used.
	RateBps float64
}

// SICReceiver models the AP's PHY: strongest-first decoding with perfect or
// partial cancellation.
type SICReceiver struct {
	Channel phy.Channel
	// Residual is the fraction of cancelled power left behind.
	Residual float64
	// MaxDecodes bounds the number of signals recovered per reception;
	// the paper's analysis is two-signal SIC, so the default (0) means 2.
	MaxDecodes int
}

// Decode attempts to recover every arrival, strongest first. ok[i] reports
// whether arrivals[i] (in the caller's order) was decoded. Decoding stops at
// the first failure — an undecodable signal cannot be cancelled — and at
// MaxDecodes successes.
func (r SICReceiver) Decode(arrivals []Arrival) (ok []bool) {
	ok = make([]bool, len(arrivals))
	if len(arrivals) == 0 {
		return ok
	}
	maxDecodes := r.MaxDecodes
	if maxDecodes <= 0 {
		maxDecodes = 2
	}
	idx := make([]int, len(arrivals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return arrivals[idx[a]].SNR > arrivals[idx[b]].SNR })

	// Interference seen by the k-th strongest: all weaker signals at full
	// power plus residuals of everything already cancelled.
	decoded := 0
	for pos, i := range idx {
		if decoded >= maxDecodes {
			break
		}
		var interference float64
		for later := pos + 1; later < len(idx); later++ {
			interference += arrivals[idx[later]].SNR
		}
		for earlier := 0; earlier < pos; earlier++ {
			interference += r.Residual * arrivals[idx[earlier]].SNR
		}
		sinr := phy.SINR(arrivals[i].SNR, interference)
		if r.Channel.Capacity(sinr) >= arrivals[i].RateBps-1e-6 {
			ok[i] = true
			decoded++
			continue
		}
		break // cannot cancel what cannot be decoded
	}
	return ok
}
