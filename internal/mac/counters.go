package mac

// FaultCounters aggregates protocol-failure accounting shared by the
// discrete-event MACs (this package) and the live emulator (package emu).
// Every field counts events, not frames in flight, so counters from
// different layers can be added together.
type FaultCounters struct {
	// FramesLost counts frames the medium dropped in transit, in either
	// direction (uplink data/reports, downlink polls/triggers/ACKs).
	FramesLost int
	// CRCRejects counts frames discarded by the CRC-32 check in package
	// frame after payload corruption.
	CRCRejects int
	// Retries counts transmission attempts beyond the first: slot
	// re-executions in the emulator, post-collision re-contentions in the
	// serial baseline.
	Retries int
	// TimedOutSlots counts solicited slots that resolved with at least one
	// expected transmission missing, forcing the AP to wait out the slot.
	TimedOutSlots int
	// Stalls counts station freeze events injected by the fault model.
	Stalls int
}

// Total is the sum of all counters — a quick "anything went wrong?" probe.
func (c FaultCounters) Total() int {
	return c.FramesLost + c.CRCRejects + c.Retries + c.TimedOutSlots + c.Stalls
}

// Add accumulates o into c.
func (c *FaultCounters) Add(o FaultCounters) {
	c.FramesLost += o.FramesLost
	c.CRCRejects += o.CRCRejects
	c.Retries += o.Retries
	c.TimedOutSlots += o.TimedOutSlots
	c.Stalls += o.Stalls
}
