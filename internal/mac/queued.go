package mac

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/phy"
	"repro/internal/sched"
)

// QueuedConfig extends Config with an arrival process: instead of a fixed
// backlog, each station receives packets by a Poisson process over a finite
// horizon, and the simulation runs until every arrived packet is delivered.
// This turns the drain-time comparison into the latency-vs-load study a MAC
// evaluation actually needs: the SIC scheduler's capacity advantage shows
// up as a higher sustainable arrival rate before delays blow up.
type QueuedConfig struct {
	Config
	// ArrivalRate is each station's packet arrival rate (packets/second).
	ArrivalRate float64
	// Horizon is the arrival window in seconds; arrivals stop after it and
	// the simulation drains the remainder.
	Horizon float64
}

func (c QueuedConfig) validate() error {
	if err := c.Config.validate(); err != nil {
		return err
	}
	if c.ArrivalRate <= 0 {
		return errors.New("mac: ArrivalRate must be positive")
	}
	if c.Horizon <= 0 {
		return errors.New("mac: Horizon must be positive")
	}
	return nil
}

// QueuedResult reports the latency study's outputs.
type QueuedResult struct {
	// Delivered is the total packets delivered.
	Delivered int
	// Duration is the time at which the last packet was delivered.
	Duration float64
	// MeanDelay and P95Delay summarise per-packet sojourn times
	// (delivery time − arrival time), in seconds.
	MeanDelay, P95Delay float64
	// MaxDelay is the worst sojourn time.
	MaxDelay float64
	// OfferedLoad is the generated load as a fraction of the serial MAC's
	// single-best-client data rate — a rough utilisation scale.
	OfferedLoad float64
}

// genArrivals draws each station's Poisson arrival times over the horizon.
// Station order and the config seed fully determine the result.
func genArrivals(stations []Station, cfg QueuedConfig) [][]float64 {
	out := make([][]float64, len(stations))
	for i := range stations {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i+1)*104729))
		t := 0.0
		for {
			t += rng.ExpFloat64() / cfg.ArrivalRate
			if t > cfg.Horizon {
				break
			}
			out[i] = append(out[i], t)
		}
	}
	return out
}

func summarizeDelays(delays []float64, duration float64, load float64) QueuedResult {
	res := QueuedResult{Delivered: len(delays), Duration: duration, OfferedLoad: load}
	if len(delays) == 0 {
		return res
	}
	sort.Float64s(delays)
	var sum float64
	for _, d := range delays {
		sum += d
	}
	res.MeanDelay = sum / float64(len(delays))
	idx := int(math.Ceil(0.95*float64(len(delays)))) - 1
	if idx < 0 {
		idx = 0
	}
	res.P95Delay = delays[idx]
	res.MaxDelay = delays[len(delays)-1]
	return res
}

// offeredLoad estimates generated bits/second over the horizon relative to
// the best single link's capacity.
func offeredLoad(stations []Station, arrivals [][]float64, cfg QueuedConfig) float64 {
	var pkts int
	for _, a := range arrivals {
		pkts += len(a)
	}
	genBps := float64(pkts) * cfg.PacketBits / cfg.Horizon
	best := 0.0
	for _, s := range stations {
		if c := cfg.Channel.Capacity(s.SNR); c > best {
			best = c
		}
	}
	if best == 0 {
		return math.Inf(1)
	}
	return genBps / best
}

// RunQueuedSerial runs the CSMA-style serial baseline under Poisson
// arrivals. Station Backlog fields are ignored; the arrival process is the
// only traffic source.
func RunQueuedSerial(stations []Station, cfg QueuedConfig) (QueuedResult, error) {
	if err := cfg.validate(); err != nil {
		return QueuedResult{}, err
	}
	if err := validStations(stations); err != nil {
		return QueuedResult{}, err
	}
	arrivals := genArrivals(stations, cfg)
	load := offeredLoad(stations, arrivals, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	next := make([]int, len(stations)) // next undelivered packet per station
	cw := make([]int, len(stations))
	for i := range cw {
		cw[i] = cfg.CWMin
	}
	remaining := 0
	for _, a := range arrivals {
		remaining += len(a)
	}

	now := 0.0
	ackTime := cfg.AckBits / cfg.BaseRate
	var delays []float64
	for remaining > 0 {
		// Contenders: stations whose head-of-line packet has arrived.
		var contenders []int
		nextArrival := math.Inf(1)
		for i := range stations {
			if next[i] >= len(arrivals[i]) {
				continue
			}
			if arrivals[i][next[i]] <= now {
				contenders = append(contenders, i)
			} else if arrivals[i][next[i]] < nextArrival {
				nextArrival = arrivals[i][next[i]]
			}
		}
		if len(contenders) == 0 {
			now = nextArrival // idle until the next arrival
			continue
		}
		minSlot, winners := 1<<30, []int(nil)
		for _, i := range contenders {
			slot := rng.Intn(cw[i])
			switch {
			case slot < minSlot:
				minSlot, winners = slot, []int{i}
			case slot == minSlot:
				winners = append(winners, i)
			}
		}
		now += cfg.DIFS + float64(minSlot)*cfg.SlotTime
		if len(winners) > 1 {
			longest := 0.0
			for _, i := range winners {
				t := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(stations[i].SNR))
				if t > longest {
					longest = t
				}
				cw[i] *= 2
			}
			now += longest
			continue
		}
		i := winners[0]
		air := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(stations[i].SNR))
		if math.IsInf(air, 1) {
			return QueuedResult{}, fmt.Errorf("mac: station %d cannot reach the AP", stations[i].ID)
		}
		now += air + cfg.SIFS + ackTime
		delays = append(delays, now-arrivals[i][next[i]])
		next[i]++
		cw[i] = cfg.CWMin
		remaining--
	}
	return summarizeDelays(delays, now, load), nil
}

// RunQueuedScheduled runs the SIC-aware scheduled MAC under Poisson
// arrivals: every round the AP schedules the stations whose queues are
// non-empty, one head-of-line packet each.
func RunQueuedScheduled(stations []Station, cfg QueuedConfig, opts sched.Options) (QueuedResult, error) {
	if err := cfg.validate(); err != nil {
		return QueuedResult{}, err
	}
	if err := validStations(stations); err != nil {
		return QueuedResult{}, err
	}
	arrivals := genArrivals(stations, cfg)
	load := offeredLoad(stations, arrivals, cfg)
	rx := SICReceiver{Channel: cfg.Channel, Residual: cfg.Residual}

	next := make([]int, len(stations))
	remaining := 0
	for _, a := range arrivals {
		remaining += len(a)
	}

	now := 0.0
	ackTime := cfg.AckBits / cfg.BaseRate
	var delays []float64

	deliver := func(i int, at float64) {
		delays = append(delays, at-arrivals[i][next[i]])
		next[i]++
		remaining--
	}

	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*remaining + 16
	}
	rounds := 0
	for remaining > 0 {
		if rounds++; rounds > maxRounds {
			return QueuedResult{}, fmt.Errorf("mac: queued schedule did not drain after %d rounds", maxRounds)
		}
		var ready []int
		nextArrival := math.Inf(1)
		for i := range stations {
			if next[i] >= len(arrivals[i]) {
				continue
			}
			if arrivals[i][next[i]] <= now {
				ready = append(ready, i)
			} else if arrivals[i][next[i]] < nextArrival {
				nextArrival = arrivals[i][next[i]]
			}
		}
		if len(ready) == 0 {
			now = nextArrival
			continue
		}

		clients := make([]sched.Client, len(ready))
		for k, i := range ready {
			clients[k] = sched.Client{ID: fmt.Sprint(stations[i].ID), SNR: stations[i].SNR}
		}
		schedule, err := sched.New(clients, opts)
		if err != nil {
			return QueuedResult{}, fmt.Errorf("mac: queued round %d: %w", rounds, err)
		}
		// Announcement overhead (fixed-size estimate: header + one entry per slot).
		annBits := float64(28*8 + 13*8*len(schedule.Slots))
		now += cfg.DIFS + annBits/cfg.BaseRate

		for _, sl := range schedule.Slots {
			switch sl.Mode {
			case sched.ModeSolo:
				i := ready[sl.A]
				air := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(stations[i].SNR))
				now += air + cfg.SIFS + ackTime
				deliver(i, now)
			case sched.ModeSerial:
				for _, k := range []int{sl.A, sl.B} {
					i := ready[k]
					air := phy.TxTime(cfg.PacketBits, cfg.Channel.Capacity(stations[i].SNR))
					now += air + cfg.SIFS + ackTime
					deliver(i, now)
				}
			case sched.ModeSIC:
				ia, ib := ready[sl.A], ready[sl.B]
				strong, weak := ia, ib
				if stations[ib].SNR > stations[ia].SNR {
					strong, weak = ib, ia
				}
				weakSNR := stations[weak].SNR * sl.WeakScale
				strongRate := cfg.Channel.Capacity(phy.SINR(stations[strong].SNR, weakSNR))
				weakRate := cfg.Channel.Capacity(phy.SINR(weakSNR, opts.Residual*stations[strong].SNR))
				air := math.Max(phy.TxTime(cfg.PacketBits, strongRate), phy.TxTime(cfg.PacketBits, weakRate))
				now += air
				ok := rx.Decode([]Arrival{
					{StationID: stations[strong].ID, SNR: stations[strong].SNR, RateBps: strongRate},
					{StationID: stations[weak].ID, SNR: weakSNR, RateBps: weakRate},
				})
				for idx, i := range []int{strong, weak} {
					if ok[idx] {
						now += cfg.SIFS + ackTime
						deliver(i, now)
					}
					// Failed packets stay at the head of the queue and are
					// rescheduled next round.
				}
			}
		}
	}
	return summarizeDelays(delays, now, load), nil
}
