// Package sched implements the paper's §6 SIC-aware scheduling algorithm
// for WLAN upload traffic: given a set of backlogged clients and their
// received SNRs at the AP, pick client pairs (and optional per-pair power
// reductions) so that the total time to drain one packet from every client
// is minimised.
//
// The problem reduces to minimum-weight perfect matching on the complete
// client graph — with a dummy vertex when the client count is odd — exactly
// as Fig. 12 of the paper describes; package matching supplies Edmonds'
// algorithm.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/phy"
)

// Client is one backlogged uploader.
type Client struct {
	// ID is an opaque caller-supplied identifier carried through to the
	// schedule (a MAC address, a trace key, …).
	ID string
	// SNR is the linear received signal-to-noise ratio at the AP when the
	// client transmits at full power.
	SNR float64
}

// Options configures cost computation for the scheduler.
type Options struct {
	// Channel supplies bandwidth and noise; required.
	Channel phy.Channel
	// PacketBits is the uplink packet length in bits; required.
	PacketBits float64
	// PowerControl enables the §5.2 per-pair power reduction of the weaker
	// client when computing joint transmission costs.
	PowerControl bool
	// Multirate enables §5.3 multirate packetization in the joint cost.
	Multirate bool
	// Rate optionally replaces the ideal Shannon rate with a discrete table
	// (e.g. rates.Dot11g.RateFunc()). When set, PowerControl and Multirate
	// are ignored for cost purposes: the paper applies those techniques to
	// the continuous-rate analysis.
	Rate core.RateFunc
	// Residual is the receiver's known residual-cancellation fraction β
	// (see core.Pair.SICTimeImperfect). A residual-aware scheduler derates
	// the weaker client of every SIC slot so the pair remains decodable on
	// an imperfect receiver, trading rate for reliability. Ignored when
	// Rate or Multirate is set.
	Residual float64
}

// Mode says how a scheduled slot transmits.
type Mode int

const (
	// ModeSerial: the two clients of the slot transmit one after the other
	// (pairing them concurrently would be slower).
	ModeSerial Mode = iota
	// ModeSIC: the two clients transmit concurrently and the AP decodes
	// both via SIC.
	ModeSIC
	// ModeSolo: a single client transmits alone (odd client count).
	ModeSolo
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeSIC:
		return "sic"
	case ModeSolo:
		return "solo"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Slot is one entry of the resulting schedule: either a pair of clients or
// a lone client.
type Slot struct {
	// A and B index into the scheduled client slice; B is -1 for ModeSolo.
	A, B int
	// Mode records whether the slot runs serial, concurrent-SIC, or solo.
	Mode Mode
	// WeakScale is the power-reduction factor applied to the weaker client
	// of a ModeSIC slot (1 when power control is off or unhelpful).
	WeakScale float64
	// Time is the slot's completion time in seconds.
	Time float64
}

// Schedule is the scheduler's output.
type Schedule struct {
	// Slots in arbitrary order (the AP may sequence them any way it likes).
	Slots []Slot
	// Total is the sum of slot times: the time to drain one packet from
	// every backlogged client.
	Total float64
	// SerialBaseline is the no-SIC drain time (every client alone at its
	// best rate), for gain reporting.
	SerialBaseline float64
}

// Gain is the paper's headline metric: serial baseline over scheduled time.
func (s Schedule) Gain() float64 {
	if s.Total == 0 {
		return 1
	}
	return s.SerialBaseline / s.Total
}

// ErrNoClients is returned when the client set is empty.
var ErrNoClients = errors.New("sched: no clients to schedule")

// costNanos converts a slot time to the integer nanoseconds the matcher
// consumes. Times are clamped into a range that cannot overflow the
// matcher's dual arithmetic.
func costNanos(t float64) (int64, error) {
	if math.IsNaN(t) {
		return 0, errors.New("sched: NaN slot time")
	}
	if math.IsInf(t, 1) {
		return 0, errors.New("sched: unschedulable client (zero achievable rate)")
	}
	ns := t * 1e9
	const maxNs = 1e15 // ~11.5 days of airtime; beyond this, refuse
	if ns > maxNs {
		return 0, fmt.Errorf("sched: slot time %.3gs too large to schedule", t)
	}
	return int64(math.Round(ns)), nil
}

// soloTime is one client's airtime at its interference-free best rate.
func soloTime(c Client, o Options) float64 {
	if o.Rate != nil {
		return phy.TxTime(o.PacketBits, o.Rate(c.SNR))
	}
	return phy.TxTime(o.PacketBits, o.Channel.Capacity(c.SNR))
}

// pairCost computes the best joint drain time for clients a and b and the
// mode/power-scale achieving it.
func pairCost(a, b Client, o Options) (t float64, mode Mode, weakScale float64) {
	serial := soloTime(a, o) + soloTime(b, o)
	p := core.Pair{S1: a.SNR, S2: b.SNR}

	var joint float64
	weakScale = 1
	switch {
	case o.Rate != nil:
		joint = p.SICTimeRate(o.Rate, o.PacketBits)
	case o.PowerControl && o.Multirate:
		// Apply the power reduction first, then let multirate drain the
		// stronger client's tail — the techniques compose.
		pr := p.PowerReduce()
		joint = pr.Pair.MultirateTime(o.Channel, o.PacketBits)
		weakScale = pr.Scale
	case o.PowerControl:
		pr := p.PowerReduce()
		joint = pr.Pair.SICTimeImperfect(o.Channel, o.PacketBits, o.Residual)
		weakScale = pr.Scale
	case o.Multirate:
		joint = p.MultirateTime(o.Channel, o.PacketBits)
	default:
		joint = p.SICTimeImperfect(o.Channel, o.PacketBits, o.Residual)
	}

	if joint < serial {
		return joint, ModeSIC, weakScale
	}
	return serial, ModeSerial, 1
}

// validateInputs performs the shared boundary checks of every scheduler
// entry point: non-empty client set, usable channel and packet size, and
// finite positive SNRs.
func validateInputs(clients []Client, o Options) error {
	if len(clients) == 0 {
		return ErrNoClients
	}
	if o.Channel.BandwidthHz <= 0 || o.Channel.NoiseW <= 0 {
		return errors.New("sched: Options.Channel is required")
	}
	if o.PacketBits <= 0 {
		return errors.New("sched: Options.PacketBits must be positive")
	}
	for i, c := range clients {
		if !(c.SNR > 0) || math.IsInf(c.SNR, 1) || math.IsNaN(c.SNR) {
			return fmt.Errorf("sched: client %d (%q) has invalid SNR %v", i, c.ID, c.SNR)
		}
	}
	return nil
}

// New computes the optimal schedule for the given clients.
//
// It builds the complete graph of pairwise joint-transmission costs, adds a
// dummy vertex when len(clients) is odd (edge cost = that client's solo
// airtime), solves minimum-weight perfect matching, and translates the
// matching back into transmission slots.
func New(clients []Client, o Options) (Schedule, error) {
	//lint:allow ctxfirst documented compatibility wrapper over NewCtx
	return NewCtx(context.Background(), clients, o)
}

// NewCtx is New with cooperative cancellation: the O(n²) cost-matrix build
// and the O(n³) blossom solve both abandon the instance promptly once ctx
// is cancelled or its deadline passes, returning ctx's error. The live
// scheduling daemon uses this to bound how long an optimal solve may hold
// the serving loop before degrading to a cheaper algorithm.
//
// NewCtx runs a throwaway Planner; callers issuing repeated queries over a
// mostly stable client set should hold a Planner instead, which memoizes
// the cost table and warm-starts the matcher across queries.
func NewCtx(ctx context.Context, clients []Client, o Options) (Schedule, error) {
	return NewPlanner(o).Plan(ctx, clients)
}

// Greedy computes a schedule with best-pair-first greedy selection instead
// of optimal matching. It exists as the ablation baseline quantifying what
// Edmonds' algorithm buys (see DESIGN.md), and as the middle rung of the
// serving daemon's degradation ladder.
func Greedy(clients []Client, o Options) (Schedule, error) {
	//lint:allow ctxfirst documented compatibility wrapper over GreedyCtx
	return GreedyCtx(context.Background(), clients, o)
}

// GreedyCtx is Greedy with cooperative cancellation during the O(n²)
// candidate build. Like NewCtx it runs a throwaway Planner; repeated
// callers should hold a Planner and use PlanGreedy.
func GreedyCtx(ctx context.Context, clients []Client, o Options) (Schedule, error) {
	return NewPlanner(o).PlanGreedy(ctx, clients)
}

// Serial computes the no-SIC schedule: every client transmits alone at its
// best rate. It is the bottom rung of the serving daemon's degradation
// ladder — O(n), allocation-light, and incapable of stalling — so a query
// can always be answered even when both matching algorithms blow their
// time budgets. Total equals SerialBaseline by construction (Gain is 1).
func Serial(clients []Client, o Options) (Schedule, error) {
	if err := validateInputs(clients, o); err != nil {
		return Schedule{}, err
	}
	solo := make([]float64, len(clients))
	total, err := soloTimes(solo, clients, o)
	if err != nil {
		return Schedule{}, err
	}
	slots := make([]Slot, len(clients))
	for i, t := range solo {
		slots[i] = Slot{A: i, B: -1, Mode: ModeSolo, WeakScale: 1, Time: t}
	}
	return Schedule{Slots: slots, Total: total, SerialBaseline: total}, nil
}
