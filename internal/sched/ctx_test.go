package sched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/phy"
)

func randClients(rng *rand.Rand, n int) []Client {
	cs := make([]Client, n)
	for i := range cs {
		cs[i] = Client{ID: string(rune('a' + i%26)), SNR: phy.FromDB(5 + 30*rng.Float64())}
	}
	return cs
}

// TestNewCtxMatchesNew: with a live context the ctx entry point reproduces
// New exactly.
func TestNewCtxMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opts := Options{Channel: phy.Wifi20MHz, PacketBits: 12000}
	for trial := 0; trial < 10; trial++ {
		cs := randClients(rng, 3+rng.Intn(10))
		a, err := New(cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCtx(context.Background(), cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Total-b.Total) > 1e-12 {
			t.Fatalf("totals differ: %v vs %v", a.Total, b.Total)
		}
	}
}

// TestNewCtxCancelled: a cancelled context aborts the solve with the
// context's error.
func TestNewCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(12))
	_, err := NewCtx(ctx, randClients(rng, 30), Options{Channel: phy.Wifi20MHz, PacketBits: 12000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	_, err = GreedyCtx(ctx, randClients(rng, 30), Options{Channel: phy.Wifi20MHz, PacketBits: 12000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("greedy: got %v, want context.Canceled", err)
	}
}

// TestSerialSchedule: the serial fallback is all-solo with gain 1 and the
// same validation as the other entry points.
func TestSerialSchedule(t *testing.T) {
	opts := Options{Channel: phy.Wifi20MHz, PacketBits: 12000}
	cs := []Client{{ID: "a", SNR: phy.FromDB(30)}, {ID: "b", SNR: phy.FromDB(15)}, {ID: "c", SNR: phy.FromDB(10)}}
	s, err := Serial(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Slots) != 3 {
		t.Fatalf("want 3 solo slots, got %d", len(s.Slots))
	}
	for _, sl := range s.Slots {
		if sl.Mode != ModeSolo || sl.B != -1 {
			t.Fatalf("non-solo slot in serial schedule: %+v", sl)
		}
	}
	if g := s.Gain(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("serial gain = %v, want 1", g)
	}
	if _, err := Serial(nil, opts); !errors.Is(err, ErrNoClients) {
		t.Fatalf("empty: got %v", err)
	}
	if _, err := Serial([]Client{{ID: "x", SNR: math.NaN()}}, opts); err == nil {
		t.Fatal("NaN SNR accepted")
	}
	if _, err := Serial(cs, Options{}); err == nil {
		t.Fatal("zero Options accepted")
	}
}

// TestGreedyValidatesOptions: the ablation/ladder entry point now performs
// the same boundary validation as New (it used to rely on callers).
func TestGreedyValidatesOptions(t *testing.T) {
	cs := []Client{{ID: "a", SNR: phy.FromDB(30)}, {ID: "b", SNR: phy.FromDB(15)}}
	if _, err := Greedy(cs, Options{}); err == nil {
		t.Fatal("Greedy accepted a zero Options")
	}
	if _, err := Greedy(cs, Options{Channel: phy.Wifi20MHz}); err == nil {
		t.Fatal("Greedy accepted zero PacketBits")
	}
}
