package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/matching"
)

// pairEntry is one memoized joint-transmission cost: the float slot time
// plus mode/power-scale for schedule construction, and the quantized
// nanosecond cost handed to the matcher.
type pairEntry struct {
	t     float64
	mode  Mode
	scale float64
	ns    int64
}

// greedyCand is one candidate pair for greedy selection.
type greedyCand struct {
	i, j  int
	t     float64
	mode  Mode
	scale float64
}

// PlanStats counts how a Planner's matcher solves ran; the scheduling
// daemon exports the delta per query as reuse metrics.
type PlanStats struct {
	// Cold counts optimal solves that ran from scratch (first query for an
	// AP, client-set change, or a warm-start fallback inside the matcher).
	Cold int
	// Warm counts optimal solves resumed from the previous solution.
	Warm int
}

// Planner is the reusable form of the scheduler: it memoizes each client's
// solo airtime and the full pair-cost table across queries, and holds the
// matching engine so consecutive solves for the same client population
// reuse buffers — and, when only SNRs drifted, warm-start from the
// previous matching. The one-shot entry points (NewCtx, GreedyCtx) are
// thin wrappers over a throwaway Planner; the scheduling daemon keeps one
// Planner per AP across queries.
//
// A Planner is not safe for concurrent use. Its cached table is keyed on
// the client ID sequence: a query whose IDs match the previous query's
// (same order, same length) reuses the table, recomputing only rows whose
// SNR changed; anything else rebuilds from scratch.
type Planner struct {
	opts   Options
	solver matching.Solver

	n       int         // client count of the cached table
	size    int         // matcher vertex count: n, or n+1 when n is odd
	ids     []string    // client IDs the table was built for
	snr     []float64   // SNRs the table was built for
	solo    []float64   // per-client solo airtime, [n]
	pair    []pairEntry // flat [size*size], upper triangle i < j
	changed []int       // scratch: indices whose SNR moved this query

	haveTable bool

	cands []greedyCand // scratch for PlanGreedy
	used  []bool       // scratch for PlanGreedy

	stats PlanStats
}

// NewPlanner returns a Planner computing costs under o. The options are
// fixed for the Planner's lifetime — they are part of the cached table's
// identity.
func NewPlanner(o Options) *Planner { return &Planner{opts: o} }

// Stats returns cumulative solve counters since the Planner was created.
func (p *Planner) Stats() PlanStats { return p.stats }

// soloTimes fills dst (when non-nil) with each client's interference-free
// airtime and returns the serial baseline. A client with zero achievable
// rate — +Inf airtime — is rejected here, so every scheduler entry point
// (optimal, greedy, serial) fails identically instead of some of them
// silently emitting +Inf slot times.
func soloTimes(dst []float64, clients []Client, o Options) (float64, error) {
	var baseline float64
	for i, c := range clients {
		t := soloTime(c, o)
		if math.IsInf(t, 1) {
			return 0, fmt.Errorf("sched: client %d (%q) cannot reach the AP at any rate", i, c.ID)
		}
		baseline += t
		if dst != nil {
			dst[i] = t
		}
	}
	return baseline, nil
}

// prepare runs the shared validation path and refreshes the solo-time
// cache, returning the serial baseline.
func (p *Planner) prepare(clients []Client) (float64, error) {
	if err := validateInputs(clients, p.opts); err != nil {
		return 0, err
	}
	n := len(clients)
	if n > cap(p.solo) {
		p.solo = make([]float64, n)
	}
	return soloTimes(p.solo[:n], clients, p.opts)
}

// tableFor brings the pair-cost table and the matcher's cost matrix in
// sync with clients: incrementally when the client IDs match the cached
// table (recomputing only rows whose SNR moved), from scratch otherwise.
func (p *Planner) tableFor(ctx context.Context, clients []Client) error {
	n := len(clients)
	same := p.haveTable && p.n == n
	if same {
		for i := range clients {
			if p.ids[i] != clients[i].ID {
				same = false
				break
			}
		}
	}
	if !same {
		return p.rebuild(ctx, clients)
	}
	p.changed = p.changed[:0]
	for i := range clients {
		if p.snr[i] != clients[i].SNR {
			p.changed = append(p.changed, i)
		}
	}
	if err := p.applyChanges(ctx, clients); err != nil {
		// A half-applied update leaves table rows and the SNR snapshot out
		// of sync; force the next query to rebuild.
		p.haveTable = false
		return err
	}
	return nil
}

// applyChanges recomputes the table rows of every client whose SNR moved.
func (p *Planner) applyChanges(ctx context.Context, clients []Client) error {
	n := len(clients)
	for _, i := range p.changed {
		p.snr[i] = clients[i].SNR
		if err := ctx.Err(); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if err := p.setPair(clients, i, j); err != nil {
				return err
			}
		}
		if p.size > n {
			if err := p.setDummy(clients, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// rebuild recomputes the whole table and resets the matcher.
func (p *Planner) rebuild(ctx context.Context, clients []Client) error {
	n := len(clients)
	size := n + n%2
	p.haveTable = false
	p.n, p.size = n, size
	if n > cap(p.ids) {
		p.ids = make([]string, n)
		p.snr = make([]float64, n)
	}
	p.ids, p.snr = p.ids[:n], p.snr[:n]
	if size*size > cap(p.pair) {
		p.pair = make([]pairEntry, size*size)
	}
	p.pair = p.pair[:size*size]
	for i := range clients {
		p.ids[i] = clients[i].ID
		p.snr[i] = clients[i].SNR
	}
	if err := p.solver.Reset(size); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for j := i + 1; j < n; j++ {
			if err := p.setPair(clients, i, j); err != nil {
				return err
			}
		}
		if size > n {
			if err := p.setDummy(clients, i); err != nil {
				return err
			}
		}
	}
	p.haveTable = true
	return nil
}

// setPair recomputes the joint cost of clients i and j and pushes it into
// the table and the matcher.
func (p *Planner) setPair(clients []Client, i, j int) error {
	if i > j {
		i, j = j, i
	}
	t, mode, scale := pairCost(clients[i], clients[j], p.opts)
	ns, err := costNanos(t)
	if err != nil {
		return fmt.Errorf("pair (%q, %q): %w", clients[i].ID, clients[j].ID, err)
	}
	p.pair[i*p.size+j] = pairEntry{t: t, mode: mode, scale: scale, ns: ns}
	return p.solver.SetCost(i, j, ns)
}

// setDummy refreshes client i's edge to the odd-count dummy vertex, whose
// cost is the client's solo airtime.
func (p *Planner) setDummy(clients []Client, i int) error {
	t := p.solo[i]
	ns, err := costNanos(t)
	if err != nil {
		return fmt.Errorf("client %q solo: %w", clients[i].ID, err)
	}
	p.pair[i*p.size+p.n] = pairEntry{t: t, mode: ModeSolo, scale: 1, ns: ns}
	return p.solver.SetCost(i, p.n, ns)
}

// Plan computes the optimal schedule for clients, reusing every cache the
// Planner holds. It is NewCtx's engine: same validation, same schedule,
// same errors — minus the per-query allocations, plus warm-started
// matching when only SNRs moved since the previous query.
func (p *Planner) Plan(ctx context.Context, clients []Client) (Schedule, error) {
	baseline, err := p.prepare(clients)
	if err != nil {
		return Schedule{}, err
	}
	n := len(clients)
	if n == 1 {
		t := p.solo[0]
		return Schedule{
			Slots:          []Slot{{A: 0, B: -1, Mode: ModeSolo, WeakScale: 1, Time: t}},
			Total:          t,
			SerialBaseline: baseline,
		}, nil
	}
	if err := p.tableFor(ctx, clients); err != nil {
		return Schedule{}, err
	}
	warm := p.solver.CanWarm()
	if _, err := p.solver.Warm(ctx); err != nil {
		return Schedule{}, fmt.Errorf("sched: matching failed: %w", err)
	}
	if warm {
		p.stats.Warm++
	} else {
		p.stats.Cold++
	}

	mate := p.solver.Mates()
	var slots []Slot
	var total float64
	for i := 0; i < n; i++ {
		m := mate[i]
		if m < i {
			continue // already emitted
		}
		if m >= n {
			t := p.solo[i]
			slots = append(slots, Slot{A: i, B: -1, Mode: ModeSolo, WeakScale: 1, Time: t})
			total += t
			continue
		}
		e := p.pair[i*p.size+m]
		slots = append(slots, Slot{A: i, B: m, Mode: e.mode, WeakScale: e.scale, Time: e.t})
		total += e.t
	}
	return Schedule{Slots: slots, Total: total, SerialBaseline: baseline}, nil
}

// PlanGreedy computes a best-pair-first greedy schedule from the same
// memoized cost table Plan uses — the daemon's middle rung, which after a
// cancelled optimal solve reuses the table that solve already built.
func (p *Planner) PlanGreedy(ctx context.Context, clients []Client) (Schedule, error) {
	baseline, err := p.prepare(clients)
	if err != nil {
		return Schedule{}, err
	}
	if err := p.tableFor(ctx, clients); err != nil {
		return Schedule{}, err
	}
	n := len(clients)
	p.cands = p.cands[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e := p.pair[i*p.size+j]
			p.cands = append(p.cands, greedyCand{i: i, j: j, t: e.t, mode: e.mode, scale: e.scale})
		}
	}
	sort.Slice(p.cands, func(a, b int) bool { return p.cands[a].t < p.cands[b].t })

	if n > cap(p.used) {
		p.used = make([]bool, n)
	}
	p.used = p.used[:n]
	for i := range p.used {
		p.used[i] = false
	}
	var slots []Slot
	var total float64
	for _, c := range p.cands {
		if p.used[c.i] || p.used[c.j] {
			continue
		}
		p.used[c.i], p.used[c.j] = true, true
		slots = append(slots, Slot{A: c.i, B: c.j, Mode: c.mode, WeakScale: c.scale, Time: c.t})
		total += c.t
	}
	for i := 0; i < n; i++ {
		if !p.used[i] {
			t := p.solo[i]
			slots = append(slots, Slot{A: i, B: -1, Mode: ModeSolo, WeakScale: 1, Time: t})
			total += t
		}
	}
	return Schedule{Slots: slots, Total: total, SerialBaseline: baseline}, nil
}
