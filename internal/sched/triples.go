package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/phy"
)

// This file extends the §6 scheduler beyond the paper: the paper restricts
// itself to two-signal SIC, but names K-signal chains and generic packing
// as future directions. GroupsOfUpTo3 schedules slots of one, two or three
// concurrent uploaders, the three-client slots decoded by a 3-stage SIC
// chain (core.ChainTime). Optimal grouping into triples is 3-dimensional
// matching (NP-hard), so the planner is greedy by airtime saved; the tests
// quantify what it buys over the optimal pairwise matching.

// GroupSlot is one slot of a grouped schedule.
type GroupSlot struct {
	// Members indexes the clients transmitting concurrently (1–3 of them).
	Members []int
	// Time is the slot's completion time.
	Time float64
}

// GroupSchedule is the grouped scheduler's output.
type GroupSchedule struct {
	// Slots in arbitrary order.
	Slots []GroupSlot
	// Total is the summed slot time.
	Total float64
	// SerialBaseline is the all-solo drain time.
	SerialBaseline float64
}

// Gain is the speedup over serial upload.
func (g GroupSchedule) Gain() float64 {
	if g.Total == 0 {
		return 1
	}
	return g.SerialBaseline / g.Total
}

// groupCand is one candidate slot. members is fixed-width so the O(n³)
// candidate sweep never allocates per candidate; pairs pad members[2]
// with -1, which also makes the lexicographic tie-break order pairs
// before the triples that extend them — exactly the order the old
// variable-length comparator produced.
type groupCand struct {
	members [3]int
	time    float64
	saved   float64
}

// groupCands sorts by airtime saved (descending), then members
// lexicographically — a total order, so the greedy pass is deterministic.
type groupCands []groupCand

func (c groupCands) Len() int      { return len(c) }
func (c groupCands) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c groupCands) Less(a, b int) bool {
	if c[a].saved != c[b].saved {
		return c[a].saved > c[b].saved
	}
	if c[a].members[0] != c[b].members[0] {
		return c[a].members[0] < c[b].members[0]
	}
	if c[a].members[1] != c[b].members[1] {
		return c[a].members[1] < c[b].members[1]
	}
	return c[a].members[2] < c[b].members[2]
}

// Grouper plans grouped drains while reusing its O(n³) candidate scratch
// across calls, so a trace sweep evaluating hundreds of snapshots does not
// rebuild the candidate arena each time. The zero value is ready to use; a
// Grouper is not safe for concurrent Plan calls. Returned schedules are
// freshly allocated and remain valid after further Plan calls.
type Grouper struct {
	solo  []float64
	cands groupCands
	used  []bool
}

// GroupsOfUpTo3 plans a one-packet-per-client drain allowing slots of up to
// three concurrent transmitters. Slot costs: solo airtime, the §6 pair cost
// (with the serial fallback), and the 3-chain completion time (again with
// the fallback). Groups are chosen greedily by airtime saved.
func GroupsOfUpTo3(clients []Client, o Options) (GroupSchedule, error) {
	var g Grouper
	return g.Plan(clients, o)
}

// Plan is GroupsOfUpTo3 with the receiver's scratch reused: same
// validation, same schedule, same errors.
func (g *Grouper) Plan(clients []Client, o Options) (GroupSchedule, error) {
	if len(clients) == 0 {
		return GroupSchedule{}, ErrNoClients
	}
	if o.Channel.BandwidthHz <= 0 || o.PacketBits <= 0 {
		return GroupSchedule{}, errors.New("sched: Options.Channel and PacketBits are required")
	}
	n := len(clients)
	if cap(g.solo) < n {
		g.solo = make([]float64, n)
		g.used = make([]bool, n)
	}
	solo := g.solo[:n]
	var baseline float64
	for i, c := range clients {
		if !(c.SNR > 0) || math.IsNaN(c.SNR) || math.IsInf(c.SNR, 1) {
			return GroupSchedule{}, fmt.Errorf("sched: client %d (%q) has invalid SNR %v", i, c.ID, c.SNR)
		}
		solo[i] = phy.TxTime(o.PacketBits, o.Channel.Capacity(c.SNR))
		if math.IsInf(solo[i], 1) {
			return GroupSchedule{}, fmt.Errorf("sched: client %q unreachable", c.ID)
		}
		baseline += solo[i]
	}

	cands := g.cands[:0]
	add := func(m [3]int, k int, t float64) {
		serial := solo[m[0]] + solo[m[1]]
		if k == 3 {
			serial += solo[m[2]]
		}
		if t >= serial {
			return // no savings: not a useful group
		}
		cands = append(cands, groupCand{members: m, time: t, saved: serial - t})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t, _, _ := pairCost(clients[i], clients[j], o)
			add([3]int{i, j, -1}, 2, t)
			for k := j + 1; k < n; k++ {
				chain := [3]float64{clients[i].SNR, clients[j].SNR, clients[k].SNR}
				ct, err := core.ChainTime(o.Channel, o.PacketBits, chain[:])
				if err != nil {
					return GroupSchedule{}, err
				}
				add([3]int{i, j, k}, 3, ct)
			}
		}
	}
	g.cands = cands // keep the grown arena for the next Plan
	sort.Sort(cands)

	used := g.used[:n]
	for i := range used {
		used[i] = false
	}
	// One backing array holds every slot's members: each client joins at
	// most one slot, so n ints bound the whole schedule. The backing is
	// per-call — callers own the returned schedule.
	membersBuf := make([]int, 0, n)
	out := GroupSchedule{Slots: make([]GroupSlot, 0, n)}
	for ci := range cands {
		c := &cands[ci]
		k := 3
		if c.members[2] < 0 {
			k = 2
		}
		ok := true
		for _, i := range c.members[:k] {
			if used[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		start := len(membersBuf)
		for _, i := range c.members[:k] {
			used[i] = true
			membersBuf = append(membersBuf, i)
		}
		out.Slots = append(out.Slots, GroupSlot{Members: membersBuf[start:len(membersBuf):len(membersBuf)], Time: c.time})
		out.Total += c.time
	}
	for i := 0; i < n; i++ {
		if !used[i] {
			start := len(membersBuf)
			membersBuf = append(membersBuf, i)
			out.Slots = append(out.Slots, GroupSlot{Members: membersBuf[start:len(membersBuf):len(membersBuf)], Time: solo[i]})
			out.Total += solo[i]
		}
	}
	out.SerialBaseline = baseline
	return out, nil
}
