package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/phy"
)

// This file extends the §6 scheduler beyond the paper: the paper restricts
// itself to two-signal SIC, but names K-signal chains and generic packing
// as future directions. GroupsOfUpTo3 schedules slots of one, two or three
// concurrent uploaders, the three-client slots decoded by a 3-stage SIC
// chain (core.ChainTime). Optimal grouping into triples is 3-dimensional
// matching (NP-hard), so the planner is greedy by airtime saved; the tests
// quantify what it buys over the optimal pairwise matching.

// GroupSlot is one slot of a grouped schedule.
type GroupSlot struct {
	// Members indexes the clients transmitting concurrently (1–3 of them).
	Members []int
	// Time is the slot's completion time.
	Time float64
}

// GroupSchedule is the grouped scheduler's output.
type GroupSchedule struct {
	// Slots in arbitrary order.
	Slots []GroupSlot
	// Total is the summed slot time.
	Total float64
	// SerialBaseline is the all-solo drain time.
	SerialBaseline float64
}

// Gain is the speedup over serial upload.
func (g GroupSchedule) Gain() float64 {
	if g.Total == 0 {
		return 1
	}
	return g.SerialBaseline / g.Total
}

// GroupsOfUpTo3 plans a one-packet-per-client drain allowing slots of up to
// three concurrent transmitters. Slot costs: solo airtime, the §6 pair cost
// (with the serial fallback), and the 3-chain completion time (again with
// the fallback). Groups are chosen greedily by airtime saved.
func GroupsOfUpTo3(clients []Client, o Options) (GroupSchedule, error) {
	if len(clients) == 0 {
		return GroupSchedule{}, ErrNoClients
	}
	if o.Channel.BandwidthHz <= 0 || o.PacketBits <= 0 {
		return GroupSchedule{}, errors.New("sched: Options.Channel and PacketBits are required")
	}
	n := len(clients)
	solo := make([]float64, n)
	var baseline float64
	for i, c := range clients {
		if !(c.SNR > 0) || math.IsNaN(c.SNR) || math.IsInf(c.SNR, 1) {
			return GroupSchedule{}, fmt.Errorf("sched: client %d (%q) has invalid SNR %v", i, c.ID, c.SNR)
		}
		solo[i] = phy.TxTime(o.PacketBits, o.Channel.Capacity(c.SNR))
		if math.IsInf(solo[i], 1) {
			return GroupSchedule{}, fmt.Errorf("sched: client %q unreachable", c.ID)
		}
		baseline += solo[i]
	}

	type cand struct {
		members []int
		time    float64
		saved   float64
	}
	var cands []cand
	add := func(members []int, t float64) {
		serial := 0.0
		for _, i := range members {
			serial += solo[i]
		}
		if t >= serial {
			return // no savings: not a useful group
		}
		cands = append(cands, cand{members: members, time: t, saved: serial - t})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t, _, _ := pairCost(clients[i], clients[j], o)
			add([]int{i, j}, t)
			for k := j + 1; k < n; k++ {
				ct, err := core.ChainTime(o.Channel, o.PacketBits,
					[]float64{clients[i].SNR, clients[j].SNR, clients[k].SNR})
				if err != nil {
					return GroupSchedule{}, err
				}
				add([]int{i, j, k}, ct)
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].saved != cands[b].saved {
			return cands[a].saved > cands[b].saved
		}
		// Deterministic tie-break by members.
		for x := 0; x < len(cands[a].members) && x < len(cands[b].members); x++ {
			if cands[a].members[x] != cands[b].members[x] {
				return cands[a].members[x] < cands[b].members[x]
			}
		}
		return len(cands[a].members) < len(cands[b].members)
	})

	used := make([]bool, n)
	var out GroupSchedule
	for _, c := range cands {
		ok := true
		for _, i := range c.members {
			if used[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, i := range c.members {
			used[i] = true
		}
		out.Slots = append(out.Slots, GroupSlot{Members: c.members, Time: c.time})
		out.Total += c.time
	}
	for i := 0; i < n; i++ {
		if !used[i] {
			out.Slots = append(out.Slots, GroupSlot{Members: []int{i}, Time: solo[i]})
			out.Total += solo[i]
		}
	}
	out.SerialBaseline = baseline
	return out, nil
}
