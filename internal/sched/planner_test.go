package sched

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/phy"
)

func plannerClients(rng *rand.Rand, n int) []Client {
	cs := make([]Client, n)
	for i := range cs {
		cs[i] = Client{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), SNR: phy.FromDB(3 + 30*rng.Float64())}
	}
	return cs
}

var plannerOpts = Options{Channel: phy.Wifi20MHz, PacketBits: 12000}

// schedulesEquivalent compares two schedules slot-for-slot after keying
// them by participant indices; slot order is not part of the contract.
func schedulesEquivalent(t *testing.T, got, want Schedule, tol float64) {
	t.Helper()
	if len(got.Slots) != len(want.Slots) {
		t.Fatalf("slot counts differ: got %d, want %d", len(got.Slots), len(want.Slots))
	}
	key := func(s Slot) [2]int { return [2]int{s.A, s.B} }
	wm := make(map[[2]int]Slot, len(want.Slots))
	for _, s := range want.Slots {
		wm[key(s)] = s
	}
	for _, g := range got.Slots {
		w, ok := wm[key(g)]
		if !ok {
			t.Fatalf("slot %+v missing from reference schedule", g)
		}
		if g.Mode != w.Mode || math.Abs(g.Time-w.Time) > tol || math.Abs(g.WeakScale-w.WeakScale) > tol {
			t.Fatalf("slot mismatch: got %+v, want %+v", g, w)
		}
	}
	if math.Abs(got.Total-want.Total) > tol*float64(len(want.Slots)+1) {
		t.Fatalf("totals differ: got %v, want %v", got.Total, want.Total)
	}
	if math.Abs(got.SerialBaseline-want.SerialBaseline) > tol {
		t.Fatalf("baselines differ: got %v, want %v", got.SerialBaseline, want.SerialBaseline)
	}
}

// TestUnreachableClientRejectedEverywhere is the ladder-rung guard bugfix
// test: a client with zero achievable rate must be rejected by every entry
// point — previously GreedyCtx and Serial silently produced +Inf slot
// times on the daemon's degraded rungs while only NewCtx errored.
func TestUnreachableClientRejectedEverywhere(t *testing.T) {
	// A discrete rate table whose floor is 0 below the lowest threshold
	// models a client too weak for any modulation.
	zeroBelow := func(snr float64) float64 {
		if snr >= 1000 {
			return 6e6
		}
		return 0
	}
	opts := Options{Channel: phy.Wifi20MHz, PacketBits: 12000, Rate: zeroBelow}
	clients := []Client{
		{ID: "ok", SNR: 2000},
		{ID: "dead", SNR: 1},
		{ID: "ok2", SNR: 3000},
	}
	ctx := context.Background()
	pl := NewPlanner(opts)
	entries := []struct {
		name string
		run  func() (Schedule, error)
	}{
		{"New", func() (Schedule, error) { return New(clients, opts) }},
		{"NewCtx", func() (Schedule, error) { return NewCtx(ctx, clients, opts) }},
		{"Greedy", func() (Schedule, error) { return Greedy(clients, opts) }},
		{"GreedyCtx", func() (Schedule, error) { return GreedyCtx(ctx, clients, opts) }},
		{"Serial", func() (Schedule, error) { return Serial(clients, opts) }},
		{"Planner.Plan", func() (Schedule, error) { return pl.Plan(ctx, clients) }},
		{"Planner.PlanGreedy", func() (Schedule, error) { return pl.PlanGreedy(ctx, clients) }},
	}
	for _, e := range entries {
		s, err := e.run()
		if err == nil {
			t.Errorf("%s: accepted an unreachable client (total=%v)", e.name, s.Total)
			continue
		}
		if !strings.Contains(err.Error(), "cannot reach the AP") {
			t.Errorf("%s: err = %v, want a cannot-reach error", e.name, err)
		}
		for _, sl := range s.Slots {
			if math.IsInf(sl.Time, 1) {
				t.Errorf("%s: emitted a +Inf slot", e.name)
			}
		}
	}
}

// TestPlannerMatchesNewCtx: a reused Planner produces the same schedules
// as fresh NewCtx calls across a drifting client population — including
// odd counts (dummy vertex) and full membership changes.
func TestPlannerMatchesNewCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pl := NewPlanner(plannerOpts)
	ctx := context.Background()
	clients := plannerClients(rng, 9)
	for round := 0; round < 40; round++ {
		switch round % 10 {
		case 3:
			clients = plannerClients(rng, 8) // membership + parity change
		case 7:
			clients[rng.Intn(len(clients))].SNR = phy.FromDB(3 + 30*rng.Float64())
		default:
			// single-client SNR drift, the steady-state case
			clients[rng.Intn(len(clients))].SNR *= 1 + 0.05*(rng.Float64()-0.5)
		}
		got, err := pl.Plan(ctx, clients)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := NewCtx(ctx, clients, plannerOpts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Optimal totals must agree to quantization tolerance even if tie
		// matchings differ; slot-level equality would over-constrain ties,
		// so compare totals and baseline.
		if math.Abs(got.Total-want.Total) > 1e-6*want.Total+1e-12 {
			t.Fatalf("round %d: planner total %v, NewCtx total %v", round, got.Total, want.Total)
		}
		if math.Abs(got.SerialBaseline-want.SerialBaseline) > 1e-12 {
			t.Fatalf("round %d: baseline %v, want %v", round, got.SerialBaseline, want.SerialBaseline)
		}
	}
}

// TestPlannerWarmStats: repeated queries over the same population with
// small SNR drift run warm; membership changes force cold solves.
func TestPlannerWarmStats(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pl := NewPlanner(plannerOpts)
	ctx := context.Background()
	clients := plannerClients(rng, 12)

	if _, err := pl.Plan(ctx, clients); err != nil {
		t.Fatal(err)
	}
	if s := pl.Stats(); s.Cold != 1 || s.Warm != 0 {
		t.Fatalf("after first plan: stats = %+v, want 1 cold", s)
	}
	for i := 0; i < 5; i++ {
		clients[rng.Intn(len(clients))].SNR *= 1.01
		if _, err := pl.Plan(ctx, clients); err != nil {
			t.Fatal(err)
		}
	}
	if s := pl.Stats(); s.Cold != 1 || s.Warm != 5 {
		t.Fatalf("after SNR drift: stats = %+v, want 1 cold + 5 warm", s)
	}
	clients = append(clients[:len(clients)-1], Client{ID: "new", SNR: phy.FromDB(20)})
	if _, err := pl.Plan(ctx, clients); err != nil {
		t.Fatal(err)
	}
	if s := pl.Stats(); s.Cold != 2 {
		t.Fatalf("after membership change: stats = %+v, want a second cold solve", s)
	}
}

// TestPlanGreedyMatchesGreedyCtx: the memoized greedy path is the same
// algorithm as the one-shot entry point.
func TestPlanGreedyMatchesGreedyCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pl := NewPlanner(plannerOpts)
	ctx := context.Background()
	for round := 0; round < 20; round++ {
		clients := plannerClients(rng, 3+rng.Intn(10))
		got, err := pl.PlanGreedy(ctx, clients)
		if err != nil {
			t.Fatal(err)
		}
		want, err := GreedyCtx(ctx, clients, plannerOpts)
		if err != nil {
			t.Fatal(err)
		}
		schedulesEquivalent(t, got, want, 1e-12)
	}
}

// TestPlannerTableReuseAfterCancelledPlan: a Plan cancelled mid-solve
// leaves the cost table intact, so the daemon's greedy rung reuses it
// rather than recomputing O(n²) pair costs; the next Plan also still
// answers correctly.
func TestPlannerTableReuseAfterCancelledPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pl := NewPlanner(plannerOpts)
	clients := plannerClients(rng, 10)

	if _, err := pl.Plan(context.Background(), clients); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.Plan(cancelled, clients); err == nil {
		t.Fatal("cancelled Plan succeeded")
	}
	g, err := pl.PlanGreedy(context.Background(), clients)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GreedyCtx(context.Background(), clients, plannerOpts)
	if err != nil {
		t.Fatal(err)
	}
	schedulesEquivalent(t, g, want, 1e-12)
	got, err := pl.Plan(context.Background(), clients)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCtx(context.Background(), clients, plannerOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Total-ref.Total) > 1e-6*ref.Total {
		t.Fatalf("post-cancel total %v, want %v", got.Total, ref.Total)
	}
}
