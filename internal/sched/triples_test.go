package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/phy"
)

func TestGroupsValidation(t *testing.T) {
	if _, err := GroupsOfUpTo3(nil, opts); err != ErrNoClients {
		t.Errorf("empty: %v", err)
	}
	if _, err := GroupsOfUpTo3(clientsFromDB(20), Options{}); err == nil {
		t.Error("missing options accepted")
	}
	if _, err := GroupsOfUpTo3([]Client{{ID: "x", SNR: -1}}, opts); err == nil {
		t.Error("bad SNR accepted")
	}
}

func checkGroupSchedule(t *testing.T, g GroupSchedule, n int) {
	t.Helper()
	seen := make([]bool, n)
	total := 0.0
	for _, sl := range g.Slots {
		if len(sl.Members) < 1 || len(sl.Members) > 3 {
			t.Fatalf("slot with %d members", len(sl.Members))
		}
		for _, i := range sl.Members {
			if seen[i] {
				t.Fatalf("client %d in two slots", i)
			}
			seen[i] = true
		}
		if sl.Time <= 0 || math.IsInf(sl.Time, 0) {
			t.Fatalf("bad slot time %v", sl.Time)
		}
		total += sl.Time
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("client %d unscheduled", i)
		}
	}
	if math.Abs(total-g.Total) > 1e-9*math.Max(1, total) {
		t.Fatalf("total %v != slot sum %v", g.Total, total)
	}
}

// The chained-ridge construction: three clients whose SNRs satisfy
// s1 = s2(s2+1) and s2 = s3(s3+1). The 3-chain gives all three the same
// rate, so one slot drains three packets in a single weak-client airtime —
// strictly better than any pairing.
func TestTripleBeatsPairingOnChainedRidge(t *testing.T) {
	s3 := phy.FromDB(12)
	s2 := core.EqualRateStrongSNR(s3)
	s1 := core.EqualRateStrongSNR(s2)
	clients := []Client{
		{ID: "a", SNR: s1}, {ID: "b", SNR: s2}, {ID: "c", SNR: s3},
	}
	grouped, err := GroupsOfUpTo3(clients, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGroupSchedule(t, grouped, 3)
	if len(grouped.Slots) != 1 || len(grouped.Slots[0].Members) != 3 {
		t.Fatalf("expected one triple slot, got %+v", grouped.Slots)
	}
	paired, err := New(clients, opts)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Total >= paired.Total {
		t.Errorf("triple total %v should beat pairwise %v", grouped.Total, paired.Total)
	}
	// The triple slot completes in (about) the weakest client's solo time.
	weakSolo := opts.PacketBits / opts.Channel.Capacity(s3)
	if math.Abs(grouped.Slots[0].Time-weakSolo) > 1e-9*weakSolo {
		t.Errorf("chained-ridge slot %v, want the weak solo time %v", grouped.Slots[0].Time, weakSolo)
	}
}

// Grouped scheduling is never worse than serial, and never worse than the
// pairwise matching by more than numerical noise... actually greedy triples
// CAN lose to optimal pairs on adversarial inputs; assert only the serial
// bound plus structural validity on random instances, and count how often
// triples help.
func TestGroupsRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	triplesWin := 0
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(9)
		clients := make([]Client, n)
		for i := range clients {
			clients[i] = Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(3 + rng.Float64()*40)}
		}
		grouped, err := GroupsOfUpTo3(clients, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkGroupSchedule(t, grouped, n)
		if grouped.Total > grouped.SerialBaseline*(1+1e-9) {
			t.Fatalf("trial %d: grouped %v worse than serial %v", trial, grouped.Total, grouped.SerialBaseline)
		}
		paired, err := New(clients, opts)
		if err != nil {
			t.Fatal(err)
		}
		if grouped.Total < paired.Total-1e-12 {
			triplesWin++
		}
	}
	if triplesWin == 0 {
		t.Log("triples never beat optimal pairing on these draws (possible but unusual)")
	}
}

func TestGroupsGainDegenerate(t *testing.T) {
	if g := (GroupSchedule{}).Gain(); g != 1 {
		t.Errorf("empty gain = %v, want 1", g)
	}
	// Single client: one solo slot, gain 1.
	g, err := GroupsOfUpTo3(clientsFromDB(20), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkGroupSchedule(t, g, 1)
	if g.Gain() != 1 {
		t.Errorf("single-client gain = %v, want 1", g.Gain())
	}
}

// exactGroupsUpTo3 finds the optimal partition into groups of ≤3 by
// dynamic programming over subsets — the oracle for the greedy planner.
func exactGroupsUpTo3(t *testing.T, clients []Client, o Options) float64 {
	t.Helper()
	n := len(clients)
	if n > 12 {
		t.Fatalf("exact oracle limited to 12 clients, got %d", n)
	}
	solo := make([]float64, n)
	for i, c := range clients {
		solo[i] = o.PacketBits / o.Channel.Capacity(c.SNR)
	}
	groupTime := func(members []int) float64 {
		switch len(members) {
		case 1:
			return solo[members[0]]
		case 2:
			tm, _, _ := pairCost(clients[members[0]], clients[members[1]], o)
			return tm
		case 3:
			snrs := []float64{clients[members[0]].SNR, clients[members[1]].SNR, clients[members[2]].SNR}
			ct, err := core.ChainTime(o.Channel, o.PacketBits, snrs)
			if err != nil {
				t.Fatal(err)
			}
			serial := solo[members[0]] + solo[members[1]] + solo[members[2]]
			if ct > serial {
				return serial
			}
			return ct
		}
		t.Fatalf("bad group size %d", len(members))
		return 0
	}

	size := 1 << n
	dp := make([]float64, size)
	for m := 1; m < size; m++ {
		dp[m] = math.Inf(1)
		// The lowest set bit must belong to some group of 1, 2 or 3.
		first := 0
		for (m>>first)&1 == 0 {
			first++
		}
		rest := m &^ (1 << first)
		// Group of 1.
		if v := groupTime([]int{first}) + dp[rest]; v < dp[m] {
			dp[m] = v
		}
		// Groups of 2 and 3.
		for j := first + 1; j < n; j++ {
			if rest&(1<<j) == 0 {
				continue
			}
			rest2 := rest &^ (1 << j)
			if v := groupTime([]int{first, j}) + dp[rest2]; v < dp[m] {
				dp[m] = v
			}
			for k := j + 1; k < n; k++ {
				if rest2&(1<<k) == 0 {
					continue
				}
				if v := groupTime([]int{first, j, k}) + dp[rest2&^(1<<k)]; v < dp[m] {
					dp[m] = v
				}
			}
		}
	}
	return dp[size-1]
}

// The greedy grouped planner vs the exact subset-DP oracle: quantify the
// optimality gap on random instances — greedy must never beat the oracle
// (sanity) and should stay within a modest factor of it.
func TestGroupsGreedyVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	worst := 1.0
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(7) // 2..8
		clients := make([]Client, n)
		for i := range clients {
			clients[i] = Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(3 + rng.Float64()*40)}
		}
		grouped, err := GroupsOfUpTo3(clients, opts)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactGroupsUpTo3(t, clients, opts)
		if grouped.Total < exact-1e-9*exact {
			t.Fatalf("trial %d: greedy %v beat the exact oracle %v", trial, grouped.Total, exact)
		}
		if ratio := grouped.Total / exact; ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.25 {
		t.Errorf("greedy grouping strayed %.1f%% from optimal; expected a modest gap", 100*(worst-1))
	}
	t.Logf("worst greedy/exact ratio over 120 instances: %.4f", worst)
}
