package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/rates"
)

var opts = Options{Channel: phy.Wifi20MHz, PacketBits: 12000}

func clientsFromDB(dbs ...float64) []Client {
	cs := make([]Client, len(dbs))
	for i, db := range dbs {
		cs[i] = Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(db)}
	}
	return cs
}

func checkSchedule(t *testing.T, s Schedule, n int) {
	t.Helper()
	seen := make([]bool, n)
	mark := func(i int) {
		if i < 0 || i >= n {
			t.Fatalf("slot references client %d outside [0,%d)", i, n)
		}
		if seen[i] {
			t.Fatalf("client %d scheduled twice", i)
		}
		seen[i] = true
	}
	var total float64
	solo := 0
	for _, sl := range s.Slots {
		mark(sl.A)
		if sl.Mode == ModeSolo {
			if sl.B != -1 {
				t.Fatalf("solo slot has B=%d", sl.B)
			}
			solo++
		} else {
			mark(sl.B)
		}
		if sl.Time <= 0 || math.IsInf(sl.Time, 0) || math.IsNaN(sl.Time) {
			t.Fatalf("bad slot time %v", sl.Time)
		}
		if !(sl.WeakScale > 0 && sl.WeakScale <= 1) {
			t.Fatalf("bad weak scale %v", sl.WeakScale)
		}
		total += sl.Time
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("client %d never scheduled", i)
		}
	}
	if math.Abs(total-s.Total) > 1e-9*math.Max(1, total) {
		t.Fatalf("Total %v != sum of slots %v", s.Total, total)
	}
	if n%2 == 0 && solo != 0 {
		t.Fatalf("even client count produced %d solo slots", solo)
	}
	if n%2 == 1 && solo != 1 {
		t.Fatalf("odd client count produced %d solo slots, want 1", solo)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := New(nil, opts); err != ErrNoClients {
		t.Errorf("empty clients: err = %v, want ErrNoClients", err)
	}
	if _, err := New(clientsFromDB(20), Options{}); err == nil {
		t.Error("missing channel accepted")
	}
	if _, err := New(clientsFromDB(20), Options{Channel: phy.Wifi20MHz}); err == nil {
		t.Error("missing packet bits accepted")
	}
	if _, err := New([]Client{{ID: "bad", SNR: -1}}, opts); err == nil {
		t.Error("negative SNR accepted")
	}
	if _, err := New([]Client{{ID: "bad", SNR: math.NaN()}}, opts); err == nil {
		t.Error("NaN SNR accepted")
	}
}

func TestScheduleSingleClient(t *testing.T) {
	s, err := New(clientsFromDB(20), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 1)
	if s.Gain() != 1 {
		t.Errorf("single client gain = %v, want 1", s.Gain())
	}
}

func TestScheduleTwoClients(t *testing.T) {
	// A well-matched pair: strong ≈ 2× weak in dB.
	s, err := New(clientsFromDB(30, 15), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 2)
	if len(s.Slots) != 1 || s.Slots[0].Mode != ModeSIC {
		t.Fatalf("well-matched pair should be one SIC slot, got %+v", s.Slots)
	}
	if g := s.Gain(); g <= 1.2 {
		t.Errorf("well-matched pair gain = %v, want substantial (>1.2)", g)
	}
	// The SIC slot must match the core model.
	want := core.Pair{S1: phy.FromDB(30), S2: phy.FromDB(15)}.SICTime(opts.Channel, opts.PacketBits)
	if math.Abs(s.Slots[0].Time-want) > 1e-12 {
		t.Errorf("slot time %v != core model %v", s.Slots[0].Time, want)
	}
}

func TestSchedulePathologicalPairFallsBackToSerial(t *testing.T) {
	// Two similar *high* SNRs: the stronger's SINR under interference
	// collapses toward 0 dB while both solo rates are excellent, so
	// concurrency is far worse than serialising. The slot must be
	// ModeSerial and the gain exactly 1.
	s, err := New(clientsFromDB(30, 29), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 2)
	if s.Slots[0].Mode != ModeSerial {
		t.Fatalf("disparate pair should serialise, got %v", s.Slots[0].Mode)
	}
	if g := s.Gain(); math.Abs(g-1) > 1e-9 {
		t.Errorf("serial fallback gain = %v, want 1", g)
	}
}

func TestScheduleOddCount(t *testing.T) {
	s, err := New(clientsFromDB(30, 15, 22), opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 3)
}

// The paper's Fig. 9/10 illustration: four clients at increasing distance.
// Good pairing should beat both bad pairings and the serial baseline.
func TestScheduleFourClientIllustration(t *testing.T) {
	// SNRs chosen so client airtimes roughly follow the 1:2:4:8 pattern.
	cs := clientsFromDB(36, 24, 14, 8)
	s, err := New(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 4)
	if s.Gain() <= 1 {
		t.Errorf("pairing gain = %v, want > 1", s.Gain())
	}

	// The optimal matching must weakly beat every alternative pairing.
	pairTime := func(i, j int) float64 {
		tm, _, _ := pairCost(cs[i], cs[j], opts)
		return tm
	}
	alternatives := [][2][2]int{
		{{0, 1}, {2, 3}},
		{{0, 2}, {1, 3}},
		{{0, 3}, {1, 2}},
	}
	for _, alt := range alternatives {
		altTotal := pairTime(alt[0][0], alt[0][1]) + pairTime(alt[1][0], alt[1][1])
		if s.Total > altTotal+1e-9 {
			t.Errorf("matching total %v beaten by pairing %v with %v", s.Total, alt, altTotal)
		}
	}
}

func TestPowerControlImprovesSchedule(t *testing.T) {
	// Clients with similar SNRs: power control should strictly reduce total.
	cs := clientsFromDB(25, 24, 23, 22)
	plain, err := New(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	pc := opts
	pc.PowerControl = true
	withPC, err := New(cs, pc)
	if err != nil {
		t.Fatal(err)
	}
	if withPC.Total >= plain.Total {
		t.Errorf("power control did not help: %v >= %v", withPC.Total, plain.Total)
	}
	// At least one SIC slot should carry a genuine power reduction.
	reduced := false
	for _, sl := range withPC.Slots {
		if sl.Mode == ModeSIC && sl.WeakScale < 1 {
			reduced = true
		}
	}
	if !reduced {
		t.Error("no slot recorded a power reduction")
	}
}

func TestMultirateImprovesSchedule(t *testing.T) {
	cs := clientsFromDB(25, 24, 23, 22)
	plain, _ := New(cs, opts)
	mr := opts
	mr.Multirate = true
	withMR, err := New(cs, mr)
	if err != nil {
		t.Fatal(err)
	}
	if withMR.Total >= plain.Total {
		t.Errorf("multirate did not help: %v >= %v", withMR.Total, plain.Total)
	}
}

func TestScheduleNeverWorseThanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		cs := make([]Client, n)
		for i := range cs {
			cs[i] = Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(2 + rng.Float64()*43)}
		}
		for _, o := range []Options{
			opts,
			{Channel: opts.Channel, PacketBits: opts.PacketBits, PowerControl: true},
			{Channel: opts.Channel, PacketBits: opts.PacketBits, Multirate: true},
			{Channel: opts.Channel, PacketBits: opts.PacketBits, PowerControl: true, Multirate: true},
		} {
			s, err := New(cs, o)
			if err != nil {
				t.Fatal(err)
			}
			checkSchedule(t, s, n)
			if s.Total > s.SerialBaseline*(1+1e-9) {
				t.Fatalf("trial %d: schedule %v worse than baseline %v", trial, s.Total, s.SerialBaseline)
			}
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	greedyWins := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(11)
		cs := make([]Client, n)
		for i := range cs {
			cs[i] = Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(2 + rng.Float64()*43)}
		}
		opt, err := New(cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkSchedule(t, gr, n)
		if opt.Total > gr.Total+1e-9 {
			t.Fatalf("trial %d: optimal %v worse than greedy %v", trial, opt.Total, gr.Total)
		}
		if gr.Total > opt.Total+1e-9 {
			greedyWins++
		}
	}
	// The matching must strictly beat greedy at least occasionally,
	// otherwise the ablation is vacuous.
	if greedyWins == 0 {
		t.Log("greedy matched optimal in all trials (unusual but not wrong)")
	}
}

func TestScheduleWithDiscreteRates(t *testing.T) {
	o := opts
	o.Rate = rates.Dot11g.RateFunc()
	s, err := New(clientsFromDB(30, 15, 25, 12), o)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 4)
	if s.Total > s.SerialBaseline*(1+1e-9) {
		t.Errorf("discrete-rate schedule %v worse than baseline %v", s.Total, s.SerialBaseline)
	}
}

func TestScheduleDiscreteRateUnreachableClient(t *testing.T) {
	o := opts
	o.Rate = rates.Dot11g.RateFunc()
	// 0 dB cannot sustain even 6 Mbps → solo time infinite → error.
	if _, err := New(clientsFromDB(30, 0), o); err == nil {
		t.Error("unreachable client accepted under discrete rates")
	}
}

func TestModeString(t *testing.T) {
	if ModeSerial.String() != "serial" || ModeSIC.String() != "sic" || ModeSolo.String() != "solo" {
		t.Error("Mode.String() labels wrong")
	}
	if Mode(99).String() != "Mode(99)" {
		t.Errorf("unknown mode string = %q", Mode(99).String())
	}
}

func TestGainOfEmptyTotal(t *testing.T) {
	if g := (Schedule{}).Gain(); g != 1 {
		t.Errorf("zero-schedule gain = %v, want 1", g)
	}
}

func TestResidualAwareScheduling(t *testing.T) {
	cs := clientsFromDB(30, 15, 28, 14)
	base, err := New(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// β=0 must be byte-identical to the default path.
	zero := opts
	zero.Residual = 0
	same, err := New(cs, zero)
	if err != nil {
		t.Fatal(err)
	}
	if same.Total != base.Total {
		t.Errorf("β=0 changed the schedule: %v vs %v", same.Total, base.Total)
	}
	// Growing β weakly increases the total (derated weak rates), and the
	// schedule always stays within the serial baseline.
	prev := base.Total
	for _, beta := range []float64{1e-4, 1e-3, 1e-2, 0.1} {
		o := opts
		o.Residual = beta
		s, err := New(cs, o)
		if err != nil {
			t.Fatal(err)
		}
		if s.Total < prev-1e-12 {
			t.Errorf("total decreased as β grew to %v: %v < %v", beta, s.Total, prev)
		}
		if s.Total > s.SerialBaseline*(1+1e-9) {
			t.Errorf("β=%v schedule %v exceeds serial baseline %v", beta, s.Total, s.SerialBaseline)
		}
		prev = s.Total
	}
	// At β=1 (no cancellation at all) pairing cannot beat serialising.
	o := opts
	o.Residual = 1
	s, err := New(cs, o)
	if err != nil {
		t.Fatal(err)
	}
	if g := s.Gain(); g > 1+1e-9 {
		t.Errorf("β=1 should leave no SIC gain, got %v", g)
	}
}

func TestResidualAwareWithPowerControl(t *testing.T) {
	cs := clientsFromDB(26, 25)
	o := opts
	o.PowerControl = true
	o.Residual = 0.01
	s, err := New(cs, o)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 2)
	if s.Total > s.SerialBaseline*(1+1e-9) {
		t.Errorf("residual-aware PC schedule %v exceeds baseline %v", s.Total, s.SerialBaseline)
	}
}
