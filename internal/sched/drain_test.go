package sched

import (
	"math"
	"testing"

	"repro/internal/phy"
)

func TestDrainValidation(t *testing.T) {
	cs := clientsFromDB(30, 15)
	if _, err := Drain(cs, []int{1}, opts); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Drain(cs, []int{1, -1}, opts); err == nil {
		t.Error("negative backlog accepted")
	}
	if _, err := Drain(cs, []int{0, 0}, opts); err == nil {
		t.Error("empty drain accepted")
	}
}

func TestDrainEqualBacklogs(t *testing.T) {
	cs := clientsFromDB(30, 15, 28, 14)
	plan, err := Drain(cs, []int{3, 3, 3, 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(plan.Rounds))
	}
	// Equal backlogs: every round schedules the same set, so the total is
	// 3× one round.
	if math.Abs(plan.Total-3*plan.Rounds[0].Total) > 1e-9*plan.Total {
		t.Errorf("total %v != 3 × round %v", plan.Total, plan.Rounds[0].Total)
	}
	if plan.Gain() <= 1 {
		t.Errorf("gain %v should exceed 1 for matched pairs", plan.Gain())
	}
}

func TestDrainUnequalBacklogs(t *testing.T) {
	cs := clientsFromDB(30, 15, 22)
	plan, err := Drain(cs, []int{3, 1, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds: {c0,c1}, {c0}, {c0} — client 2 never appears.
	if len(plan.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(plan.Rounds))
	}
	if got := plan.RoundClients[0]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("round 0 clients = %v, want [0 1]", got)
	}
	for r := 1; r < 3; r++ {
		if got := plan.RoundClients[r]; len(got) != 1 || got[0] != 0 {
			t.Errorf("round %d clients = %v, want [0]", r, got)
		}
	}
	// Baseline counts 3 packets of c0 and 1 of c1.
	solo0 := 12000 / phy.Wifi20MHz.Capacity(cs[0].SNR)
	solo1 := 12000 / phy.Wifi20MHz.Capacity(cs[1].SNR)
	want := 3*solo0 + solo1
	if math.Abs(plan.SerialBaseline-want) > 1e-9*want {
		t.Errorf("baseline %v, want %v", plan.SerialBaseline, want)
	}
}

func TestDrainGainDegenerate(t *testing.T) {
	if g := (DrainPlan{}).Gain(); g != 1 {
		t.Errorf("zero plan gain = %v, want 1", g)
	}
}

func TestDrainNeverWorseThanSerial(t *testing.T) {
	cs := clientsFromDB(31, 17, 25, 12, 29, 15)
	plan, err := Drain(cs, []int{4, 2, 3, 5, 1, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total > plan.SerialBaseline*(1+1e-9) {
		t.Errorf("drain %v worse than serial %v", plan.Total, plan.SerialBaseline)
	}
}
