package sched

import (
	"errors"
	"fmt"
)

// DrainPlan is a multi-round schedule draining unequal per-client backlogs:
// every round pairs the clients that still have packets (one packet each),
// exactly as the AP in the simulator and the emulation do.
type DrainPlan struct {
	// Rounds holds one Schedule per round, over that round's pending
	// clients (RoundClients gives the index mapping).
	Rounds []Schedule
	// RoundClients[i][j] is the original client index of round i's client j.
	RoundClients [][]int
	// Total is the summed drain time across rounds.
	Total float64
	// SerialBaseline is the time to serialise every packet of every client.
	SerialBaseline float64
}

// Gain is the drain-time speedup over fully serial upload.
func (d DrainPlan) Gain() float64 {
	if d.Total == 0 {
		return 1
	}
	return d.SerialBaseline / d.Total
}

// Drain plans the multi-round drain of the given backlogs. backlogs[i] is
// the packet count of clients[i]; clients with zero backlog are skipped.
func Drain(clients []Client, backlogs []int, o Options) (DrainPlan, error) {
	if len(clients) != len(backlogs) {
		return DrainPlan{}, fmt.Errorf("sched: %d clients but %d backlogs", len(clients), len(backlogs))
	}
	remaining := make([]int, len(backlogs))
	total := 0
	for i, b := range backlogs {
		if b < 0 {
			return DrainPlan{}, fmt.Errorf("sched: negative backlog for client %d", i)
		}
		remaining[i] = b
		total += b
	}
	if total == 0 {
		return DrainPlan{}, errors.New("sched: nothing to drain")
	}

	var plan DrainPlan
	for {
		var round []Client
		var idx []int
		for i, c := range clients {
			if remaining[i] > 0 {
				round = append(round, c)
				idx = append(idx, i)
			}
		}
		if len(round) == 0 {
			break
		}
		s, err := New(round, o)
		if err != nil {
			return DrainPlan{}, fmt.Errorf("sched: round %d: %w", len(plan.Rounds)+1, err)
		}
		plan.Rounds = append(plan.Rounds, s)
		plan.RoundClients = append(plan.RoundClients, idx)
		plan.Total += s.Total
		for _, i := range idx {
			remaining[i]--
		}
	}

	// Serial baseline: every packet alone at its best rate.
	for i, c := range clients {
		if backlogs[i] == 0 {
			continue
		}
		s, err := New([]Client{c}, o)
		if err != nil {
			return DrainPlan{}, err
		}
		plan.SerialBaseline += float64(backlogs[i]) * s.Total
	}
	return plan, nil
}
