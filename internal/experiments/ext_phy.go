package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/baseband"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/sched"
)

// ExtPHY is an extension experiment that opens the PHY black box: it runs
// the symbol-level SIC receiver (package baseband) and connects its
// imperfections to the MAC results.
//
//  1. Validation: with perfect channel knowledge, the weak signal's symbol
//     error rate after cancellation equals its interference-free SER — the
//     paper's "perfect cancellation" assumption holds at symbol level.
//  2. Estimation: with Np pilot symbols, the residual-interference fraction
//     β ≈ 1/(Np·SNR_strong). The experiment measures β per pilot budget…
//  3. …and feeds each measured β into the discrete-event MAC, reporting the
//     end-to-end drain time. This closes the loop the paper's §8 gestures
//     at: how many pilots buy how much MAC-layer gain.
func ExtPHY(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	symbols := p.Trials * 10
	if symbols > 200000 {
		symbols = 200000
	}

	metrics := map[string]float64{}
	var text strings.Builder
	text.WriteString("Extension — symbol-level SIC receiver and the cost of channel estimation\n\n")

	// ---- 1. Perfect-cancellation validation ----
	genie, err := baseband.Run(baseband.Config{
		Mod: baseband.QPSK, SNRStrongDB: 30, SNRWeakDB: 12,
		Symbols: symbols, Pilots: 0, Seed: p.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	metrics["genie_weak_ser"] = genie.SERWeak
	metrics["genie_weak_ser_alone"] = genie.SERWeakAlone
	fmt.Fprintf(&text, "genie-aided (perfect channel): weak SER %.4g vs interference-free %.4g\n\n",
		genie.SERWeak, genie.SERWeakAlone)

	// ---- 2+3. Pilot budget → measured beta → MAC drain ----
	stations := []mac.Station{
		{ID: 1, SNR: phy.FromDB(32), Backlog: 4},
		{ID: 2, SNR: phy.FromDB(16), Backlog: 4},
		{ID: 3, SNR: phy.FromDB(28), Backlog: 4},
		{ID: 4, SNR: phy.FromDB(13), Backlog: 4},
	}
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits}
	macCfg := mac.DefaultConfig(p.Channel)
	macCfg.PacketBits = p.PacketBits

	serial, err := mac.RunSerial(stations, macCfg)
	if err != nil {
		return Result{}, err
	}
	metrics["serial_drain_s"] = serial.Duration

	fmt.Fprintf(&text, "%8s %14s %16s %14s\n", "pilots", "measured β", "scheduled drain", "vs serial")
	var prevBeta = 1.0
	for _, np := range []int{4, 16, 64, 256} {
		// Average β over seeds: a single channel draw is too noisy.
		var beta float64
		const reps = 25
		for s := int64(0); s < reps; s++ {
			r, err := baseband.Run(baseband.Config{
				Mod: baseband.QPSK, SNRStrongDB: 25, SNRWeakDB: 10,
				Symbols: 256, Pilots: np, Seed: p.Seed + 1000 + s,
			})
			if err != nil {
				return Result{}, err
			}
			beta += r.ResidualBeta
		}
		beta /= reps
		if beta > prevBeta {
			return Result{}, fmt.Errorf("ext-phy: beta grew with pilots (%d → %v)", np, beta)
		}
		prevBeta = beta

		// The AP knows its receiver: it plans rates with the measured β
		// (opts.Residual) while the receiver truly suffers it
		// (cfg.Residual), so no decode fails and the estimation cost shows
		// up purely as derated weak-client rates.
		c := macCfg
		c.Residual = beta
		c.MaxRounds = 10000
		awareOpts := opts
		awareOpts.Residual = beta
		drain, err := mac.RunScheduled(stations, c, awareOpts)
		if err != nil {
			return Result{}, fmt.Errorf("ext-phy: MAC with beta %v: %w", beta, err)
		}
		if drain.DecodeFailures != 0 {
			return Result{}, fmt.Errorf("ext-phy: residual-aware plan still failed %d decodes at β=%v", drain.DecodeFailures, beta)
		}
		key := fmt.Sprintf("_pilots_%d", np)
		metrics["beta"+key] = beta
		metrics["scheduled_drain_s"+key] = drain.Duration
		fmt.Fprintf(&text, "%8d %14.3g %14.4g ms %13.2f×\n",
			np, beta, drain.Duration*1e3, serial.Duration/drain.Duration)
	}

	// ---- ADC saturation ----
	clean, err := baseband.Run(baseband.Config{
		Mod: baseband.QPSK, SNRStrongDB: 40, SNRWeakDB: 10,
		Symbols: symbols, Seed: p.Seed + 9,
	})
	if err != nil {
		return Result{}, err
	}
	sat, err := baseband.Run(baseband.Config{
		Mod: baseband.QPSK, SNRStrongDB: 40, SNRWeakDB: 10,
		Symbols: symbols, Seed: p.Seed + 9,
		ClipAmplitude: 50, // ≈ half the strong signal's amplitude
	})
	if err != nil {
		return Result{}, err
	}
	metrics["weak_ser_no_clip"] = clean.SERWeak
	metrics["weak_ser_clipped"] = sat.SERWeak
	fmt.Fprintf(&text, "\nADC saturation at 30 dB disparity: weak SER %.4g → %.4g when the\n"+
		"front-end clips at half the strong amplitude (the §8 concern).\n",
		clean.SERWeak, sat.SERWeak)

	// ---- SER sweep: the PHY validation curve as a figure ----
	var sweepDB, serSIC, serAlone, serTheory []float64
	for db := 5.0; db <= 13; db += 0.5 {
		res, err := baseband.Run(baseband.Config{
			Mod: baseband.QPSK, SNRStrongDB: 30, SNRWeakDB: db,
			Symbols: symbols, Pilots: 0, Seed: p.Seed + 77,
		})
		if err != nil {
			return Result{}, err
		}
		log10 := func(v float64) float64 {
			if v <= 0 {
				v = 0.5 / float64(symbols) // half an error: plot floor
			}
			return math.Log10(v)
		}
		sweepDB = append(sweepDB, db)
		serSIC = append(serSIC, log10(res.SERWeak))
		serAlone = append(serAlone, log10(res.SERWeakAlone))
		serTheory = append(serTheory, log10(baseband.TheoreticalSER(baseband.QPSK, phy.FromDB(db))))
	}
	serSVG := plot.XYPlotSVG("Weak-signal SER after SIC (QPSK, strong at 30 dB)",
		"weak SNR (dB)", "log10(SER)",
		plot.Series{Name: "after SIC", X: sweepDB, Y: serSIC},
		plot.Series{Name: "interference-free", X: sweepDB, Y: serAlone},
		plot.Series{Name: "theory", X: sweepDB, Y: serTheory})

	r := Result{
		ID:      "ext-phy",
		Title:   "Symbol-level SIC receiver (extension)",
		Files:   map[string]string{"ext_phy_ser.svg": serSVG},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}
