package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/sched"
)

// ExtLoad is an extension experiment: a latency-versus-offered-load sweep
// of the discrete-event MAC. The paper argues SIC buys capacity on upload;
// a MAC evaluation expresses that as the arrival rate a cell sustains
// before queueing delay diverges. The sweep runs the same Poisson arrival
// processes through the serial CSMA baseline and the SIC-aware scheduler
// and reports mean/p95 sojourn times per load point.
func ExtLoad(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	stations := []mac.Station{
		{ID: 1, SNR: phy.FromDB(32)},
		{ID: 2, SNR: phy.FromDB(16)},
		{ID: 3, SNR: phy.FromDB(29)},
		{ID: 4, SNR: phy.FromDB(14)},
		{ID: 5, SNR: phy.FromDB(26)},
		{ID: 6, SNR: phy.FromDB(12)},
	}
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits, PowerControl: true}

	base := mac.DefaultConfig(p.Channel)
	base.PacketBits = p.PacketBits
	base.Seed = p.Seed

	rates := []float64{200, 600, 1200, 1800, 2400}
	metrics := map[string]float64{}
	var text strings.Builder
	text.WriteString("Extension — queueing delay vs offered load (6-station upload cell)\n\n")
	fmt.Fprintf(&text, "%10s %10s | %12s %12s | %12s %12s\n",
		"pkts/s/sta", "load", "serial mean", "serial p95", "sic mean", "sic p95")

	var crossoverSeen bool
	var loadXs, serialYs, sicYs []float64
	for _, rate := range rates {
		qc := mac.QueuedConfig{Config: base, ArrivalRate: rate, Horizon: 0.1}
		serial, err := mac.RunQueuedSerial(stations, qc)
		if err != nil {
			return Result{}, fmt.Errorf("ext-load: serial at %v: %w", rate, err)
		}
		scheduled, err := mac.RunQueuedScheduled(stations, qc, opts)
		if err != nil {
			return Result{}, fmt.Errorf("ext-load: scheduled at %v: %w", rate, err)
		}
		key := fmt.Sprintf("_rate_%g", rate)
		metrics["serial_mean_delay_s"+key] = serial.MeanDelay
		metrics["serial_p95_delay_s"+key] = serial.P95Delay
		metrics["sic_mean_delay_s"+key] = scheduled.MeanDelay
		metrics["sic_p95_delay_s"+key] = scheduled.P95Delay
		metrics["offered_load"+key] = serial.OfferedLoad
		fmt.Fprintf(&text, "%10g %10.3f | %12.4g %12.4g | %12.4g %12.4g\n",
			rate, serial.OfferedLoad,
			serial.MeanDelay*1e3, serial.P95Delay*1e3,
			scheduled.MeanDelay*1e3, scheduled.P95Delay*1e3)
		loadXs = append(loadXs, serial.OfferedLoad)
		serialYs = append(serialYs, serial.MeanDelay*1e3)
		sicYs = append(sicYs, scheduled.MeanDelay*1e3)
		if scheduled.MeanDelay < serial.MeanDelay {
			crossoverSeen = true
		}
	}
	text.WriteString("(delays in milliseconds)\n")
	if !crossoverSeen {
		return Result{}, fmt.Errorf("ext-load: the SIC scheduler never beat serial — capacity advantage missing")
	}

	r := Result{
		ID:    "ext-load",
		Title: "Queueing delay vs offered load (extension)",
		Files: map[string]string{
			"ext_load.svg": plot.XYPlotSVG("Mean sojourn time vs offered load",
				"offered load (fraction of best link)", "mean delay (ms)",
				plot.Series{Name: "serial CSMA", X: loadXs, Y: serialYs},
				plot.Series{Name: "SIC scheduled", X: loadXs, Y: sicYs}),
		},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}
