package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mc"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/stats"
)

// mcConfig builds the Monte-Carlo configuration shared by Figs. 6 and 11:
// outdoor-flavoured α=4 path loss with 60 dB at 1 m, per the paper's §3.2.
func mcConfig(p Params, separation, txRange float64) (mc.Config, error) {
	pl, err := phy.NewPathLoss(4, 1, 60)
	if err != nil {
		return mc.Config{}, err
	}
	return mc.Config{
		Trials:     p.Trials,
		Seed:       p.Seed,
		Separation: separation,
		Range:      txRange,
		PathLoss:   pl,
		Channel:    p.Channel,
		PacketBits: p.PacketBits,
		Metrics:    p.MC,
		Scalar:     p.ScalarMC,
	}, nil
}

// Fig6 regenerates the two-receiver Monte-Carlo CDFs for several ranges.
// The paper's conclusion: no gain from SIC in ≈90% of the cases.
func Fig6(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	ranges := []float64{10, 20, 30}
	var series []plot.Series
	metrics := map[string]float64{}
	for _, rg := range ranges {
		cfg, err := mcConfig(p, rg, rg)
		if err != nil {
			return Result{}, err
		}
		gains, err := mc.TwoReceiverGains(ctx, cfg)
		if err != nil {
			return Result{}, err
		}
		e, err := stats.NewECDF(gains)
		if err != nil {
			return Result{}, err
		}
		name := fmt.Sprintf("range=%gm", rg)
		series = append(series, plot.SeriesFromECDF(name, e))
		metrics[fmt.Sprintf("frac_no_gain_range_%g", rg)] = e.At(1)
		frac, lo, hi := e.FracAboveCI(1.2)
		metrics[fmt.Sprintf("frac_gain_over_20pct_range_%g", rg)] = frac
		metrics[fmt.Sprintf("frac_gain_over_20pct_range_%g_ci_lo", rg)] = lo
		metrics[fmt.Sprintf("frac_gain_over_20pct_range_%g_ci_hi", rg)] = hi
		metrics[fmt.Sprintf("max_gain_range_%g", rg)] = e.Max()
	}
	var csv strings.Builder
	if err := plot.WriteSeriesCSV(&csv, "gain", series...); err != nil {
		return Result{}, err
	}
	r := Result{
		ID:    "fig6",
		Title: "Two-receiver Monte-Carlo gain CDFs",
		Files: map[string]string{
			"fig6.csv": csv.String(),
			"fig6.svg": plot.CDFPlotSVG("Fig. 6 — CDF of SIC gain, two transmitters to two receivers", series...),
		},
		Metrics: metrics,
	}
	r.Text = plot.CDFPlot("Fig. 6 — CDF of SIC gain, two transmitters to two receivers", 64, 16, series...) + r.MetricsBlock()
	return r, nil
}

// Fig11 regenerates the §5.5 technique comparison: CDFs of gain for plain
// SIC, SIC+power control, SIC+multirate packetization and SIC+packet
// packing in the one-receiver scenario, plus plain SIC and packing in the
// two-receiver scenario.
func Fig11(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	const txRange = 20.0

	oneRx, err := mcConfig(p, txRange, txRange)
	if err != nil {
		return Result{}, err
	}

	metrics := map[string]float64{}
	var oneSeries []plot.Series
	for _, tech := range []mc.Technique{mc.TechSIC, mc.TechPowerControl, mc.TechMultirate, mc.TechPacking} {
		gains, err := mc.SameReceiverGains(ctx, oneRx, tech)
		if err != nil {
			return Result{}, err
		}
		e, err := stats.NewECDF(gains)
		if err != nil {
			return Result{}, err
		}
		oneSeries = append(oneSeries, plot.SeriesFromECDF(tech.String(), e))
		metrics["one_rx_frac_over_20pct_"+metricKey(tech)] = e.FracAbove(1.2)
		metrics["one_rx_median_"+metricKey(tech)] = e.Quantile(0.5)
	}

	var twoSeries []plot.Series
	for _, tech := range []mc.Technique{mc.TechSIC, mc.TechPacking} {
		gains, err := mc.TwoReceiverTechniqueGains(ctx, oneRx, tech)
		if err != nil {
			return Result{}, err
		}
		e, err := stats.NewECDF(gains)
		if err != nil {
			return Result{}, err
		}
		twoSeries = append(twoSeries, plot.SeriesFromECDF(tech.String(), e))
		metrics["two_rx_frac_over_20pct_"+metricKey(tech)] = e.FracAbove(1.2)
	}

	var csvOne, csvTwo strings.Builder
	if err := plot.WriteSeriesCSV(&csvOne, "gain", oneSeries...); err != nil {
		return Result{}, err
	}
	if err := plot.WriteSeriesCSV(&csvTwo, "gain", twoSeries...); err != nil {
		return Result{}, err
	}
	r := Result{
		ID:    "fig11",
		Title: "Technique comparison CDFs",
		Files: map[string]string{
			"fig11a.csv": csvOne.String(),
			"fig11b.csv": csvTwo.String(),
			"fig11a.svg": plot.CDFPlotSVG("Fig. 11a — one receiver: techniques", oneSeries...),
			"fig11b.svg": plot.CDFPlotSVG("Fig. 11b — two receivers: SIC and packing", twoSeries...),
		},
		Metrics: metrics,
	}
	r.Text = plot.CDFPlot("Fig. 11a — one receiver: techniques", 64, 16, oneSeries...) +
		"\n" +
		plot.CDFPlot("Fig. 11b — two receivers: SIC and packing", 64, 16, twoSeries...) +
		r.MetricsBlock()
	return r, nil
}

// metricKey converts a technique name into a stable metrics key fragment.
func metricKey(t mc.Technique) string {
	return strings.NewReplacer("+", "_", "-", "_").Replace(strings.ToLower(t.String()))
}
