package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/phy"
	"repro/internal/sched"
)

// Fig12 validates the paper's reduction of SIC-aware scheduling to
// minimum-weight perfect matching: on random client populations, the
// scheduler's matching-based total must equal an exhaustive enumeration of
// all pairings, and the greedy heuristic is quantified as the ablation.
func Fig12(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits, PowerControl: true}

	instances := p.Trials / 100
	if instances < 20 {
		instances = 20
	}
	var (
		worstOptVsExh  float64
		greedyExcess   float64
		greedyWorst    float64
		greedyWinCases int
	)
	for trial := 0; trial < instances; trial++ {
		n := 4 + rng.Intn(7) // 4..10 clients — exhaustive enumeration stays cheap
		clients := make([]sched.Client, n)
		for i := range clients {
			clients[i] = sched.Client{ID: fmt.Sprintf("c%d", i), SNR: phy.FromDB(3 + rng.Float64()*40)}
		}
		s, err := sched.New(clients, opts)
		if err != nil {
			return Result{}, err
		}
		exh, err := exhaustiveBest(clients, opts)
		if err != nil {
			return Result{}, err
		}
		if d := math.Abs(s.Total-exh) / exh; d > worstOptVsExh {
			worstOptVsExh = d
		}
		g, err := sched.Greedy(clients, opts)
		if err != nil {
			return Result{}, err
		}
		excess := g.Total/s.Total - 1
		greedyExcess += excess
		if excess > greedyWorst {
			greedyWorst = excess
		}
		if excess > 1e-9 {
			greedyWinCases++
		}
	}

	// A worked 5-client example like the paper's Fig. 12 sketch.
	example := []sched.Client{
		{ID: "A", SNR: phy.FromDB(34)},
		{ID: "B", SNR: phy.FromDB(17)},
		{ID: "C", SNR: phy.FromDB(28)},
		{ID: "D", SNR: phy.FromDB(14)},
		{ID: "E", SNR: phy.FromDB(22)},
	}
	s, err := sched.New(example, opts)
	if err != nil {
		return Result{}, err
	}
	var text strings.Builder
	fmt.Fprintf(&text, "Fig. 12 — scheduling via minimum-weight perfect matching\n")
	fmt.Fprintf(&text, "Worked example (5 clients + dummy vertex):\n")
	for _, sl := range s.Slots {
		if sl.Mode == sched.ModeSolo {
			fmt.Fprintf(&text, "  %s alone                     %.3g ms\n", example[sl.A].ID, sl.Time*1e3)
			continue
		}
		fmt.Fprintf(&text, "  %s + %s  %-8s scale=%.2f  %.3g ms\n",
			example[sl.A].ID, example[sl.B].ID, sl.Mode, sl.WeakScale, sl.Time*1e3)
	}
	fmt.Fprintf(&text, "  total %.3g ms (serial baseline %.3g ms, gain %.3f)\n",
		s.Total*1e3, s.SerialBaseline*1e3, s.Gain())

	r := Result{
		ID:    "fig12",
		Title: "SIC-aware scheduling as minimum-weight perfect matching",
		Files: map[string]string{},
		Metrics: map[string]float64{
			"instances":                       float64(instances),
			"worst_rel_gap_matching_vs_exact": worstOptVsExh,
			"greedy_mean_excess":              greedyExcess / float64(instances),
			"greedy_worst_excess":             greedyWorst,
			"greedy_suboptimal_fraction":      float64(greedyWinCases) / float64(instances),
			"example_gain":                    s.Gain(),
		},
	}
	r.Text = text.String() + r.MetricsBlock()
	if worstOptVsExh > 1e-6 {
		return Result{}, fmt.Errorf("fig12: matching deviated from exhaustive optimum by %v", worstOptVsExh)
	}
	return r, nil
}

// exhaustiveBest enumerates every pairing (with at most one solo client for
// odd n) and returns the minimum total drain time under the same cost model
// the scheduler uses.
func exhaustiveBest(clients []sched.Client, opts sched.Options) (float64, error) {
	n := len(clients)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	best := math.Inf(1)

	// pairTime evaluates the scheduler's pair cost via a 2-client schedule;
	// soloTime via a 1-client schedule. This reuses the exact production
	// cost model rather than duplicating it.
	pairTime := func(i, j int) (float64, error) {
		s, err := sched.New([]sched.Client{clients[i], clients[j]}, opts)
		if err != nil {
			return 0, err
		}
		return s.Total, nil
	}
	soloTime := func(i int) (float64, error) {
		s, err := sched.New([]sched.Client{clients[i]}, opts)
		if err != nil {
			return 0, err
		}
		return s.Total, nil
	}

	var rec func(remaining []int, acc float64, soloUsed bool) error
	rec = func(remaining []int, acc float64, soloUsed bool) error {
		if acc >= best {
			return nil
		}
		if len(remaining) == 0 {
			best = acc
			return nil
		}
		first := remaining[0]
		rest := remaining[1:]
		for k := 0; k < len(rest); k++ {
			t, err := pairTime(first, rest[k])
			if err != nil {
				return err
			}
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:k]...)
			next = append(next, rest[k+1:]...)
			if err := rec(next, acc+t, soloUsed); err != nil {
				return err
			}
		}
		if len(remaining)%2 == 1 && !soloUsed {
			t, err := soloTime(first)
			if err != nil {
				return err
			}
			if err := rec(rest, acc+t, true); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(idx, 0, false); err != nil {
		return 0, err
	}
	return best, nil
}
