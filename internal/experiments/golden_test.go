package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestScalarAndBatchedEnginesGoldenIdentical is the PR's acceptance gate:
// Fig. 6 and Fig. 11 run through the batched columnar engine and the
// scalar fallback must agree byte for byte — not just the headline
// metrics serialised exactly as cmd/sicfig writes metrics.json, but every
// rendered CSV/SVG file and the ASCII figure text. Trials is chosen to
// span a full trial block plus a partial one so block boundaries are
// inside the comparison.
func TestScalarAndBatchedEnginesGoldenIdentical(t *testing.T) {
	p := QuickParams()
	p.Trials = 400
	scalarP := p
	scalarP.ScalarMC = true

	// metricsJSON serialises exactly like cmd/sicfig: MarshalIndent of the
	// id→metrics map plus a trailing newline.
	metricsJSON := func(r Result) []byte {
		blob, err := json.MarshalIndent(map[string]map[string]float64{r.ID: r.Metrics}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return append(blob, '\n')
	}

	for _, fig := range []Runner{mustByID(t, "fig6"), mustByID(t, "fig11")} {
		batched, err := fig.Run(context.Background(), p)
		if err != nil {
			t.Fatalf("%s batched: %v", fig.ID, err)
		}
		scalar, err := fig.Run(context.Background(), scalarP)
		if err != nil {
			t.Fatalf("%s scalar: %v", fig.ID, err)
		}
		if b, s := metricsJSON(batched), metricsJSON(scalar); !bytes.Equal(b, s) {
			t.Errorf("%s: metrics.json bytes differ between engines:\nbatched:\n%s\nscalar:\n%s", fig.ID, b, s)
		}
		if batched.Text != scalar.Text {
			t.Errorf("%s: rendered figure text differs between engines", fig.ID)
		}
		if len(batched.Files) != len(scalar.Files) {
			t.Fatalf("%s: file sets differ: %d vs %d", fig.ID, len(batched.Files), len(scalar.Files))
		}
		for name, b := range batched.Files {
			if s, ok := scalar.Files[name]; !ok {
				t.Errorf("%s: file %s missing from scalar run", fig.ID, name)
			} else if b != s {
				t.Errorf("%s: file %s differs between engines", fig.ID, name)
			}
		}
	}
}

func mustByID(t *testing.T, id string) Runner {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("no runner %q", id)
	}
	return r
}
