package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func quick(t *testing.T) Params {
	t.Helper()
	p := QuickParams()
	p.Trials = 800
	p.TraceDays = 1
	return p
}

func checkResult(t *testing.T, r Result, wantID string) {
	t.Helper()
	if r.ID != wantID {
		t.Errorf("ID = %q, want %q", r.ID, wantID)
	}
	if r.Title == "" || r.Text == "" {
		t.Error("missing title or text")
	}
	if len(r.Metrics) == 0 {
		t.Error("no metrics")
	}
	for name, content := range r.Files {
		if !strings.Contains(name, ".") {
			t.Errorf("suspicious filename %q", name)
		}
		if len(content) == 0 {
			t.Errorf("empty file %q", name)
		}
		if !strings.Contains(content, "\n") {
			t.Errorf("file %q has no rows", name)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{},
		func() Params { p := QuickParams(); p.Trials = 0; return p }(),
		func() Params { p := QuickParams(); p.GridN = 1; return p }(),
		func() Params { p := QuickParams(); p.TraceDays = 0; return p }(),
		func() Params { p := QuickParams(); p.PacketBits = 0; return p }(),
	}
	for i, p := range bad {
		if _, err := Fig3(context.Background(), p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() = %d runners, want 10", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Errorf("duplicate runner %q", r.ID)
		}
		seen[r.ID] = true
		got, ok := ByID(r.ID)
		if !ok || got.ID != r.ID {
			t.Errorf("ByID(%q) failed", r.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig2")
	if r.Metrics["max_eq4_identity_residual_bps"] > 1 {
		t.Errorf("Eq.(4) identity residual too large: %v bps", r.Metrics["max_eq4_identity_residual_bps"])
	}
	if r.Metrics["mean_capacity_ratio_sic_over_strong"] <= 1 {
		t.Error("SIC capacity should exceed the strong link's capacity on average")
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig3")
	if r.Metrics["min_gain"] < 1-1e-9 {
		t.Errorf("capacity gain below 1: %v", r.Metrics["min_gain"])
	}
	if r.Metrics["max_gain"] > 2+1e-9 {
		t.Errorf("capacity gain above bound 2: %v", r.Metrics["max_gain"])
	}
	// Gains concentrate at small similar RSSs.
	if !(r.Metrics["gain_equal_2db"] > r.Metrics["gain_equal_45db"]) {
		t.Error("gain at low equal RSS should beat high equal RSS")
	}
	// The argmax must sit near the low-SNR corner diagonal.
	if r.Metrics["argmax_s1_db"] > 5 || r.Metrics["argmax_s2_db"] > 5 {
		t.Errorf("argmax at (%v, %v) dB, expected the low corner",
			r.Metrics["argmax_s1_db"], r.Metrics["argmax_s2_db"])
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig4")
	// The ridge sits at S1 ≈ 2×S2 (in dB); allow grid-resolution slack.
	if r.Metrics["mean_ridge_offset_db"] > 3 {
		t.Errorf("ridge offset %v dB from the 2× line", r.Metrics["mean_ridge_offset_db"])
	}
	if r.Metrics["max_gain"] > 2+1e-9 {
		t.Errorf("same-receiver time gain cannot exceed 2: %v", r.Metrics["max_gain"])
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig6")
	for _, rg := range []string{"10", "20", "30"} {
		frac := r.Metrics["frac_no_gain_range_"+rg]
		if frac < 0.7 || frac > 1 {
			t.Errorf("range %s: no-gain fraction %v, want ≈0.9 (paper)", rg, frac)
		}
	}
}

func TestFig8(t *testing.T) {
	r, err := Fig8(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig8")
	if r.Metrics["max_gain"] > 1.5 {
		t.Errorf("download max gain %v too high for 'very little benefit'", r.Metrics["max_gain"])
	}
	if r.Metrics["max_gain"] < 1.05 {
		t.Errorf("download max gain %v implausibly flat", r.Metrics["max_gain"])
	}
	// The raw Eq.(10)/Eq.(6) ratio dips below 1 over much of the plane —
	// the paper's point that download traffic barely benefits.
	if r.Metrics["frac_cells_gain_above_1"] > 0.6 {
		t.Errorf("too much of the plane gains: %v", r.Metrics["frac_cells_gain_above_1"])
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig10")
	// Serial total is 15 units by construction (1+2+4+8).
	if d := r.Metrics["serial_total_units"] - 15; d > 1e-9 || d < -1e-9 {
		t.Errorf("serial total = %v units, want 15", r.Metrics["serial_total_units"])
	}
	// The paper's ordering: (C1|C2, C3|C4) is the best pairing.
	if r.Metrics["best_pairing_index"] != 0 {
		t.Errorf("best pairing index = %v, want 0 (C1|C2, C3|C4)", r.Metrics["best_pairing_index"])
	}
	// The paper's illustrative numbers (11.5 < 12 < 13) are hand-rounded;
	// under the exact Shannon model the two bad pairings can tie, so the
	// robust claim is: the matched pairing strictly wins, the others don't
	// beat it.
	if !(r.Metrics["pairing_12_34_units"] < r.Metrics["pairing_13_24_units"]) ||
		!(r.Metrics["pairing_12_34_units"] < r.Metrics["pairing_14_23_units"]) {
		t.Errorf("pairing totals out of order: %v %v %v",
			r.Metrics["pairing_12_34_units"], r.Metrics["pairing_13_24_units"], r.Metrics["pairing_14_23_units"])
	}
	// Techniques improve on plain pairing.
	if !(r.Metrics["power_control_units"] <= r.Metrics["pairing_12_34_units"]) {
		t.Error("power control did not help the best pairing")
	}
	if !(r.Metrics["multirate_units"] <= r.Metrics["pairing_12_34_units"]) {
		t.Error("multirate did not help the best pairing")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig11")
	sic := r.Metrics["one_rx_frac_over_20pct_sic"]
	pc := r.Metrics["one_rx_frac_over_20pct_sic_power_control"]
	mr := r.Metrics["one_rx_frac_over_20pct_sic_multirate"]
	if !(pc >= sic) || !(mr >= sic) {
		t.Errorf("techniques should dominate plain SIC: sic=%v pc=%v mr=%v", sic, pc, mr)
	}
	// Two-receiver gains are much weaker than one-receiver ones.
	if r.Metrics["two_rx_frac_over_20pct_sic"] > sic {
		t.Errorf("two-receiver SIC (%v) should not beat one-receiver (%v)",
			r.Metrics["two_rx_frac_over_20pct_sic"], sic)
	}
}

func TestFig12(t *testing.T) {
	r, err := Fig12(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig12")
	if r.Metrics["worst_rel_gap_matching_vs_exact"] > 1e-6 {
		t.Errorf("matching not optimal: gap %v", r.Metrics["worst_rel_gap_matching_vs_exact"])
	}
	if r.Metrics["example_gain"] < 1 {
		t.Errorf("worked example gain %v < 1", r.Metrics["example_gain"])
	}
}

func TestFig13(t *testing.T) {
	r, err := Fig13(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig13")
	if r.Metrics["usable_snapshots"] < 10 {
		t.Fatalf("only %v usable snapshots", r.Metrics["usable_snapshots"])
	}
	base := r.Metrics["median_gain_sic_pairing"]
	pc := r.Metrics["median_gain_sic_power_control"]
	mr := r.Metrics["median_gain_sic_multirate"]
	if base < 1 {
		t.Errorf("median pairing gain %v < 1", base)
	}
	if pc < base-1e-9 || mr < base-1e-9 {
		t.Errorf("techniques should not lower the median: base=%v pc=%v mr=%v", base, pc, mr)
	}
}

func TestFig14(t *testing.T) {
	r, err := Fig14(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "fig14")
	if r.Metrics["link_pairs"] < 100 {
		t.Fatalf("only %v link pairs", r.Metrics["link_pairs"])
	}
	arb := r.Metrics["frac_over_20pct_arbitrary"]
	arbPack := r.Metrics["frac_over_20pct_arbitrary_packing"]
	dis := r.Metrics["frac_over_20pct_802_11g"]
	disPack := r.Metrics["frac_over_20pct_802_11g_packing"]
	// Packing dominates its base in both regimes.
	if arbPack < arb || disPack < dis {
		t.Errorf("packing should dominate: arb %v→%v, discrete %v→%v", arb, arbPack, dis, disPack)
	}
	// The paper's key claim: discrete rates leave more slack for SIC than
	// ideal rates.
	if !(disPack >= arbPack) {
		t.Errorf("discrete-rate packing (%v) should beat arbitrary-rate packing (%v)", disPack, arbPack)
	}
}

func TestDeterminism(t *testing.T) {
	p := quick(t)
	a, err := Fig6(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %q differs across identical runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

// Every driver — paper figures, ablations, extensions — must be
// deterministic: identical Params produce identical metrics. This is the
// property that makes EXPERIMENTS.md reproducible.
func TestAllDriversDeterministic(t *testing.T) {
	p := quick(t)
	p.Trials = 400
	for _, r := range append(All(), Ablations()...) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			a, err := r.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Run(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Metrics) != len(b.Metrics) {
				t.Fatalf("metric sets differ: %d vs %d", len(a.Metrics), len(b.Metrics))
			}
			for k, v := range a.Metrics {
				if b.Metrics[k] != v {
					t.Errorf("metric %q differs: %v vs %v", k, v, b.Metrics[k])
				}
			}
			// Files must also be byte-identical.
			for name, content := range a.Files {
				if b.Files[name] != content {
					t.Errorf("file %q differs between runs", name)
				}
			}
		})
	}
}

// Seeds matter: a different seed must actually change the randomised
// results (guards against accidentally ignoring Params.Seed).
func TestSeedsChangeRandomisedResults(t *testing.T) {
	p1 := quick(t)
	p1.Trials = 600
	p2 := p1
	p2.Seed = 999
	a, err := Fig6(context.Background(), p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical Fig6 metrics")
	}
}

// Cancellation propagates into every driver: a pre-cancelled context must
// abort each run path — grid rows, Monte-Carlo pools, trace loops — with
// context.Canceled rather than computing a result.
func TestCancelledContextStopsEveryDriver(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := quick(t)
	for _, r := range append(All(), Ablations()...) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if _, err := r.Run(ctx, p); !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled", err)
			}
		})
	}
}
