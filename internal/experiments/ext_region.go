package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/plot"
)

// ExtRegion is an extension experiment for §2: the two-user multiple-access
// capacity region (the paper's reference [12]) rendered explicitly — the
// pentagon boundary, the two SIC corner points where the sum capacity is
// achieved, and the conventional (treat-interference-as-noise) operating
// point strictly inside. It is the geometric picture behind Fig. 2.
func ExtRegion(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	pair := core.Pair{S1: phy.FromDB(20), S2: phy.FromDB(10)}
	region := pair.Region(p.Channel)
	cornerA, cornerB := pair.Corners(p.Channel)
	conv := pair.ConventionalPoint(p.Channel)

	xs, ys := region.Boundary(200)
	toMbps := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			out[i] = v[i] / 1e6
		}
		return out
	}
	series := []plot.Series{
		{Name: "capacity region boundary", X: toMbps(xs), Y: toMbps(ys)},
		{Name: "SIC corner (decode 1 first)", X: []float64{cornerA[0] / 1e6}, Y: []float64{cornerA[1] / 1e6}},
		{Name: "SIC corner (decode 2 first)", X: []float64{cornerB[0] / 1e6}, Y: []float64{cornerB[1] / 1e6}},
		{Name: "no SIC (interference as noise)", X: []float64{conv[0] / 1e6}, Y: []float64{conv[1] / 1e6}},
	}
	svg := plot.XYPlotSVG("Two-user capacity region (S1=20 dB, S2=10 dB)", "R1 (Mbit/s)", "R2 (Mbit/s)", series...)

	var csv strings.Builder
	csv.WriteString("r1_bps,r2_bps\n")
	for i := range xs {
		fmt.Fprintf(&csv, "%g,%g\n", xs[i], ys[i])
	}

	sumGap := region.CSum - (conv[0] + conv[1])
	metrics := map[string]float64{
		"c1_bps":                   region.C1,
		"c2_bps":                   region.C2,
		"csum_bps":                 region.CSum,
		"corner_a_sum_bps":         cornerA[0] + cornerA[1],
		"corner_b_sum_bps":         cornerB[0] + cornerB[1],
		"conventional_sum_bps":     conv[0] + conv[1],
		"sic_over_conventional":    region.CSum / (conv[0] + conv[1]),
		"conventional_gap_to_csum": sumGap,
	}
	r := Result{
		ID:    "ext-region",
		Title: "Two-user capacity region with SIC corners (extension)",
		Files: map[string]string{
			"ext_region.svg": svg,
			"ext_region.csv": csv.String(),
		},
		Metrics: metrics,
	}
	r.Text = fmt.Sprintf(`Extension — the §2 capacity region made explicit
Pair: S1 = 20 dB, S2 = 10 dB over %.0f MHz.
Both SIC corners achieve the sum capacity %.1f Mbit/s exactly; decoding with
interference-as-noise reaches only %.1f Mbit/s (%.2fx less).
`, p.Channel.BandwidthHz/1e6, region.CSum/1e6, (conv[0]+conv[1])/1e6, metrics["sic_over_conventional"]) + r.MetricsBlock()

	if sumGap <= 0 {
		return Result{}, fmt.Errorf("ext-region: conventional point not strictly inside (gap %v)", sumGap)
	}
	return r, nil
}
