package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/wlan"
)

// ExtArchitectures is an extension experiment: it turns the paper's §4
// qualitative architecture survey (Fig. 7's scenarios) into measured gain
// distributions — enterprise upload/download/cross traffic, residential
// download, and the multihop mesh relay — so the "where is SIC worth it"
// conclusion is reproducible as numbers rather than prose.
func ExtArchitectures(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	d := wlan.DefaultDeployment()
	d.Channel = p.Channel
	d.PacketBits = p.PacketBits
	if err := d.Validate(); err != nil {
		return Result{}, err
	}

	metrics := map[string]float64{}
	var series []plot.Series
	var text strings.Builder
	text.WriteString("Extension — SIC gain distribution per wireless architecture (§4)\n\n")
	fmt.Fprintf(&text, "%-22s %10s %10s %10s\n", "scenario", "median", ">20% frac", "max")

	for si, sc := range d.Scenarios() {
		rng := rand.New(rand.NewSource(p.Seed + int64(si)*7919))
		samples := make([]float64, p.Trials)
		for i := range samples {
			samples[i] = sc.Sample(rng)
		}
		e, err := stats.NewECDF(samples)
		if err != nil {
			return Result{}, err
		}
		series = append(series, plot.SeriesFromECDF(sc.Name, e))
		key := strings.ReplaceAll(sc.Name, "-", "_")
		metrics["median_"+key] = e.Quantile(0.5)
		metrics["frac_over_20pct_"+key] = e.FracAbove(1.2)
		metrics["max_"+key] = e.Max()
		fmt.Fprintf(&text, "%-22s %10.3f %10.3f %10.3f\n",
			sc.Name, e.Quantile(0.5), e.FracAbove(1.2), e.Max())
	}

	var csv strings.Builder
	if err := plot.WriteSeriesCSV(&csv, "gain", series...); err != nil {
		return Result{}, err
	}
	r := Result{
		ID:    "ext-architectures",
		Title: "SIC opportunity per wireless architecture (extension)",
		Files: map[string]string{
			"ext_architectures.csv": csv.String(),
			"ext_architectures.svg": plot.CDFPlotSVG("SIC gain per architecture", series...),
		},
		Metrics: metrics,
	}
	r.Text = text.String() + "\n" +
		plot.CDFPlot("Architecture gain CDFs", 64, 16, series...) +
		r.MetricsBlock()
	return r, nil
}
