package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/sched"
)

// Fig10 regenerates the paper's Fig. 10 worked illustration: four clients
// whose solo airtimes follow the 1:2:4:8 pattern, drained (a) serially,
// (b-d) under the three possible pairings with SIC, (e) with power control
// on the best pairing, and (f) with multirate packetization.
//
// The paper stresses its unit numbers are "not precise and meant for
// illustration only"; this driver derives everything from the model and
// verifies the qualitative ordering the paper draws from the picture.
func Fig10(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Choose SNRs whose solo spectral efficiencies are 8,4,2,1 bit/s/Hz so
	// airtimes are proportional to 1,2,4,8.
	effs := []float64{8, 4, 2, 1}
	snrs := make([]float64, len(effs))
	names := []string{"C1", "C2", "C3", "C4"}
	for i, e := range effs {
		snrs[i] = math.Exp2(e) - 1
	}
	unit := p.PacketBits / (8 * p.Channel.BandwidthHz) // airtime of C1 = 1 unit

	soloT := func(i int) float64 {
		return p.PacketBits / p.Channel.Capacity(snrs[i]) / unit
	}
	pairT := func(i, j int) float64 {
		pr := core.Pair{S1: snrs[i], S2: snrs[j]}
		return math.Min(pr.SICTime(p.Channel, p.PacketBits), pr.SerialTime(p.Channel, p.PacketBits)) / unit
	}
	pairPC := func(i, j int) float64 {
		pr := core.Pair{S1: snrs[i], S2: snrs[j]}
		return math.Min(pr.SICTimeWithPowerControl(p.Channel, p.PacketBits), pr.SerialTime(p.Channel, p.PacketBits)) / unit
	}
	pairMR := func(i, j int) float64 {
		pr := core.Pair{S1: snrs[i], S2: snrs[j]}
		return math.Min(pr.MultirateTime(p.Channel, p.PacketBits), pr.SerialTime(p.Channel, p.PacketBits)) / unit
	}

	serial := soloT(0) + soloT(1) + soloT(2) + soloT(3)
	pairings := []struct {
		label string
		a     [2]int
		b     [2]int
	}{
		{"(C1|C2, C3|C4)", [2]int{0, 1}, [2]int{2, 3}},
		{"(C1|C3, C2|C4)", [2]int{0, 2}, [2]int{1, 3}},
		{"(C1|C4, C2|C3)", [2]int{0, 3}, [2]int{1, 2}},
	}
	totals := make([]float64, len(pairings))
	var text strings.Builder
	fmt.Fprintf(&text, "Fig. 10 — pairing illustration (airtimes in units of C1's solo time)\n")
	fmt.Fprintf(&text, "  solo airtimes: %s=%.3g %s=%.3g %s=%.3g %s=%.3g  (serial total %.4g)\n",
		names[0], soloT(0), names[1], soloT(1), names[2], soloT(2), names[3], soloT(3), serial)
	for i, pg := range pairings {
		totals[i] = pairT(pg.a[0], pg.a[1]) + pairT(pg.b[0], pg.b[1])
		fmt.Fprintf(&text, "  pairing %-16s total %.4g\n", pg.label, totals[i])
	}
	bestIdx := 0
	for i := range totals {
		if totals[i] < totals[bestIdx] {
			bestIdx = i
		}
	}
	pcTotal := pairPC(pairings[bestIdx].a[0], pairings[bestIdx].a[1]) + pairPC(pairings[bestIdx].b[0], pairings[bestIdx].b[1])
	mrTotal := pairMR(pairings[bestIdx].a[0], pairings[bestIdx].a[1]) + pairMR(pairings[bestIdx].b[0], pairings[bestIdx].b[1])
	fmt.Fprintf(&text, "  best pairing %s + power control: %.4g\n", pairings[bestIdx].label, pcTotal)
	fmt.Fprintf(&text, "  best pairing %s + multirate:     %.4g\n", pairings[bestIdx].label, mrTotal)

	// Cross-check with the scheduler: its optimal matching must equal the
	// best enumerated pairing.
	clients := make([]sched.Client, 4)
	for i := range clients {
		clients[i] = sched.Client{ID: names[i], SNR: snrs[i]}
	}
	s, err := sched.New(clients, sched.Options{Channel: p.Channel, PacketBits: p.PacketBits})
	if err != nil {
		return Result{}, err
	}
	schedTotal := s.Total / (unit)
	fmt.Fprintf(&text, "  scheduler (optimal matching):    %.4g\n", schedTotal)

	// Render the two timelines the paper draws: serial upload and the
	// scheduler's pairing, as a Gantt SVG.
	var bars []plot.GanttBar
	cursor := 0.0
	for i := range names {
		t := soloT(i)
		bars = append(bars, plot.GanttBar{
			Row: "serial/" + names[i], Start: cursor, End: cursor + t,
			Label: names[i], Kind: "serial",
		})
		cursor += t
	}
	cursor = 0
	for _, sl := range s.Slots {
		t := sl.Time / unit
		kind := "sic"
		switch sl.Mode {
		case sched.ModeSolo:
			kind = "solo"
		case sched.ModeSerial:
			kind = "serial"
		}
		bars = append(bars, plot.GanttBar{
			Row: "paired/" + names[sl.A], Start: cursor, End: cursor + t,
			Label: names[sl.A], Kind: kind,
		})
		if sl.B >= 0 {
			bars = append(bars, plot.GanttBar{
				Row: "paired/" + names[sl.B], Start: cursor, End: cursor + t,
				Label: names[sl.B], Kind: kind,
			})
		}
		cursor += t
	}
	ganttSVG := plot.GanttSVG("Fig. 10 — serial upload vs SIC pairing (time units of C1's airtime)", bars)

	r := Result{
		ID:    "fig10",
		Title: "Pairing / power control / multirate illustration",
		Files: map[string]string{"fig10.svg": ganttSVG},
		Metrics: map[string]float64{
			"serial_total_units":  serial,
			"pairing_12_34_units": totals[0],
			"pairing_13_24_units": totals[1],
			"pairing_14_23_units": totals[2],
			"best_pairing_index":  float64(bestIdx),
			"power_control_units": pcTotal,
			"multirate_units":     mrTotal,
			"scheduler_units":     schedTotal,
			"snr_c1_db":           phy.DB(snrs[0]),
		},
	}
	r.Text = text.String() + r.MetricsBlock()

	// Qualitative checks the paper draws from the picture.
	if !(totals[bestIdx] < serial) {
		return Result{}, fmt.Errorf("fig10: best pairing %.4g did not beat serial %.4g", totals[bestIdx], serial)
	}
	if pcTotal > totals[bestIdx]+1e-9 {
		return Result{}, fmt.Errorf("fig10: power control %.4g worse than plain pairing %.4g", pcTotal, totals[bestIdx])
	}
	if mrTotal > totals[bestIdx]+1e-9 {
		return Result{}, fmt.Errorf("fig10: multirate %.4g worse than plain pairing %.4g", mrTotal, totals[bestIdx])
	}
	if math.Abs(schedTotal-totals[bestIdx]) > 1e-6*totals[bestIdx] {
		return Result{}, fmt.Errorf("fig10: scheduler total %.6g != best enumerated pairing %.6g", schedTotal, totals[bestIdx])
	}
	return r, nil
}
