package experiments

import (
	"context"
	"testing"
)

func TestAblationAlpha(t *testing.T) {
	r, err := AblationAlpha(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ablation-alpha")
	// The paper: lower α ⇒ fewer SIC opportunities. α=4 should show at
	// least as many gaining topologies as α=2.5.
	lo := r.Metrics["frac_with_gain_alpha_2.5"]
	hi := r.Metrics["frac_with_gain_alpha_4.0"]
	if lo > hi+0.02 {
		t.Errorf("α=2.5 gains (%v) exceed α=4 gains (%v); contradicts the paper", lo, hi)
	}
}

func TestAblationResidual(t *testing.T) {
	r, err := AblationResidual(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ablation-residual")
	perfect := r.Metrics["scheduled_drain_s_beta_0"]
	worst := r.Metrics["scheduled_drain_s_beta_0.05"]
	if perfect <= 0 || worst <= 0 {
		t.Fatal("missing drain times")
	}
	if worst <= perfect {
		t.Errorf("5%% residual (%v) should be slower than perfect SIC (%v)", worst, perfect)
	}
	if r.Metrics["decode_failures_beta_0"] != 0 {
		t.Error("perfect SIC recorded decode failures")
	}
	if r.Metrics["decode_failures_beta_0.05"] == 0 {
		t.Error("5% residual recorded no decode failures")
	}
	// SIC scheduling with perfect cancellation beats the serial baseline.
	if perfect >= r.Metrics["serial_drain_s"] {
		t.Errorf("perfect scheduled drain (%v) did not beat serial (%v)", perfect, r.Metrics["serial_drain_s"])
	}
}

func TestAblationGreedy(t *testing.T) {
	p := quick(t)
	p.TraceDays = 2 // need enough ≥4-client snapshots
	r, err := AblationGreedy(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ablation-greedy")
	if r.Metrics["mean_greedy_over_opt"] < 1-1e-9 {
		t.Errorf("greedy cannot beat optimal on average: %v", r.Metrics["mean_greedy_over_opt"])
	}
	if r.Metrics["max_greedy_over_opt"] < 1-1e-9 {
		t.Errorf("max ratio below 1: %v", r.Metrics["max_greedy_over_opt"])
	}
}

func TestAblationsList(t *testing.T) {
	abls := Ablations()
	if len(abls) != 10 {
		t.Fatalf("Ablations() = %d, want 10 (3 ablations + 7 extensions)", len(abls))
	}
	for _, a := range abls {
		if a.Run == nil || a.ID == "" {
			t.Errorf("bad ablation runner %+v", a)
		}
	}
}
