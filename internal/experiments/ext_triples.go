package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ExtTriples is an extension experiment beyond the paper's two-signal
// scope: it lets the upload scheduler form slots of up to three concurrent
// clients decoded by a 3-stage SIC chain (the K-signal generalisation the
// paper leaves as future work) and measures what that buys over optimal
// pairwise matching on realistic trace snapshots.
func ExtTriples(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cfg := trace.DefaultGenConfig(p.Seed)
	cfg.Days = p.TraceDays
	snaps, err := trace.GenerateUpload(cfg)
	if err != nil {
		return Result{}, err
	}
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits}
	// One planner and one grouper serve every snapshot: both are documented
	// to produce exactly the results of their one-shot counterparts
	// (sched.New / sched.GroupsOfUpTo3) while reusing their solver and
	// candidate scratch between calls.
	planner := sched.NewPlanner(opts)
	var grouper sched.Grouper

	var (
		ratios     []float64 // pairTotal / groupTotal per snapshot (≥ 1 means triples help)
		tripleUsed int
		usable     int
		clients    []sched.Client
	)
	for _, snap := range snaps {
		if len(snap.Clients) < 3 {
			continue
		}
		clients = clients[:0]
		for _, c := range snap.Clients {
			if snr := phy.FromDB(c.SNRdB); snr > 0 {
				clients = append(clients, sched.Client{ID: c.ID, SNR: snr})
			}
		}
		if len(clients) < 3 {
			continue
		}
		usable++
		paired, err := planner.Plan(ctx, clients)
		if err != nil {
			return Result{}, err
		}
		grouped, err := grouper.Plan(clients, opts)
		if err != nil {
			return Result{}, err
		}
		ratios = append(ratios, paired.Total/grouped.Total)
		for _, sl := range grouped.Slots {
			if len(sl.Members) == 3 {
				tripleUsed++
				break
			}
		}
	}
	if usable == 0 {
		return Result{}, fmt.Errorf("ext-triples: no snapshots with ≥3 clients")
	}
	e, err := stats.NewECDF(ratios)
	if err != nil {
		return Result{}, err
	}
	sum, _ := stats.Summarize(ratios)

	metrics := map[string]float64{
		"snapshots":                 float64(usable),
		"mean_pair_over_triple":     sum.Mean,
		"p90_pair_over_triple":      sum.P90,
		"max_pair_over_triple":      sum.Max,
		"frac_triples_help":         e.FracAbove(1 + 1e-9),
		"frac_snapshot_uses_triple": float64(tripleUsed) / float64(usable),
	}
	r := Result{
		ID:      "ext-triples",
		Title:   "Three-way SIC slots vs pairwise matching (extension)",
		Files:   map[string]string{},
		Metrics: metrics,
	}
	var text strings.Builder
	fmt.Fprintf(&text, `Extension — slots of up to 3 concurrent uploaders (3-stage SIC chain)
%d trace snapshots with ≥3 clients.
pairwise-optimal / greedy-grouped drain ratio: mean %.4f, p90 %.4f, max %.4f
triples strictly help in %.1f%% of snapshots; %.1f%% of grouped schedules use one.
`, usable, sum.Mean, sum.P90, sum.Max, 100*e.FracAbove(1+1e-9), 100*metrics["frac_snapshot_uses_triple"])
	if sum.Mean > 1.02 {
		text.WriteString("A third decode stage finds compatible clients often enough to matter here —\n" +
			"the paper's two-signal restriction does leave measurable time on the table\n" +
			"when client populations are dense.\n")
	} else {
		text.WriteString("The third decode stage rarely finds a compatible client, supporting the\n" +
			"paper's two-signal scoping.\n")
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}
