package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/adapt"
	"repro/internal/phy"
	"repro/internal/rates"
)

// ExtAdaptation is an extension experiment (not a paper figure): it makes
// the paper's central argument executable. §1 claims SIC's opportunity is
// the *slack* left by imperfect bitrate adaptation and coarse rate tables
// ("4 in 802.11b vs 8 in 802.11g vs 32 in 802.11n"), and that advances in
// adaptation squeeze it out.
//
// Two clients near the pairing sweet spot upload over independently fading
// channels. Each runs a rate-adaptation algorithm; every round the AP
// tries SIC concurrency at the rates the adapters actually chose, which
// succeeds only when the chosen rates fit under the interference-limited
// capacities. The measured SIC speedup is then a direct function of
// adaptation quality and table granularity: crude adapters and coarse
// tables leave slack for SIC, the oracle on a fine table leaves almost
// none.
func ExtAdaptation(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	rounds := p.Trials
	if rounds > 20000 {
		rounds = 20000
	}

	tables := []rates.Table{rates.Dot11b, rates.Dot11g, rates.Dot11n}
	metrics := map[string]float64{}
	var text strings.Builder
	text.WriteString("Extension — SIC gain vs rate-adaptation quality and table granularity\n")
	text.WriteString("(two uploaders near the sweet spot; SIC applied at the adapter-chosen rates)\n\n")
	fmt.Fprintf(&text, "%-12s %-16s %12s %12s %12s\n", "table", "adapter", "efficiency", "sic-gain", "conc-frac")

	for _, table := range tables {
		// Oracle throughput reference per table.
		var oracleTp float64
		roster := adapt.Roster(table, rand.New(rand.NewSource(p.Seed)))
		results := make([]pairedResult, len(roster))
		for i, a := range roster {
			r, err := runPaired(a, table, p, rounds)
			if err != nil {
				return Result{}, fmt.Errorf("ext-adaptation: %s/%s: %w", table.Name(), a.Name(), err)
			}
			results[i] = r
			if a.Name() == "oracle" {
				oracleTp = r.serialThroughput
			}
		}
		for i, a := range roster {
			r := results[i]
			eff := 0.0
			if oracleTp > 0 {
				eff = r.serialThroughput / oracleTp
			}
			key := tableKey(table) + "_" + adapterKey(a.Name())
			metrics["efficiency_"+key] = eff
			metrics["sic_gain_"+key] = r.sicGain
			metrics["concurrency_frac_"+key] = r.concFrac
			fmt.Fprintf(&text, "%-12s %-16s %12.3f %12.3f %12.3f\n",
				table.Name(), a.Name(), eff, r.sicGain, r.concFrac)
		}
		text.WriteByte('\n')
	}

	r := Result{
		ID:      "ext-adaptation",
		Title:   "SIC slack vs bitrate adaptation (extension)",
		Files:   map[string]string{},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()

	// The experiment's own invariant: on every table, the oracle must leave
	// no more SIC opportunity than the fixed-lowest-rate adapter. The
	// fixed adapter's metric key embeds its rate, so scan for it.
	for _, table := range tables {
		or := metrics["sic_gain_"+tableKey(table)+"_oracle"]
		for k, fx := range metrics {
			if strings.HasPrefix(k, "sic_gain_"+tableKey(table)+"_fixed") && or > fx+1e-9 {
				return Result{}, fmt.Errorf("ext-adaptation: oracle gain %v exceeds fixed-rate gain %v on %s", or, fx, table.Name())
			}
		}
	}
	return r, nil
}

type pairedResult struct {
	serialThroughput float64 // delivered bits per second of serial airtime
	sicGain          float64 // serial airtime / SIC-scheduled airtime
	concFrac         float64 // fraction of rounds with feasible concurrency
}

// runPaired simulates two clients running independent copies of the same
// adapter class over correlated-fading channels at the pairing sweet spot.
func runPaired(proto adapt.Adapter, table rates.Table, p Params, rounds int) (pairedResult, error) {
	// Two adapter instances: rebuild a fresh one of the same kind by Reset;
	// adapters are stateful, so clone via the roster is impossible — run
	// the strong and weak clients with two Reset instances sequentially is
	// wrong (channels interact). Instead instantiate two copies here.
	a1, a2 := cloneAdapter(proto, table, p.Seed+100), cloneAdapter(proto, table, p.Seed+200)
	a1.Reset()
	a2.Reset()

	// Sweet spot: weak at 15 dB mean, strong at ~2× in dB.
	weakMean := 15.0
	strongMean := phy.DB(phy.FromDB(weakMean) * (phy.FromDB(weakMean) + 1))
	f1, err := phy.NewFading(strongMean, 4, 0.9)
	if err != nil {
		return pairedResult{}, err
	}
	f2, err := phy.NewFading(weakMean, 4, 0.9)
	if err != nil {
		return pairedResult{}, err
	}
	rng1 := rand.New(rand.NewSource(p.Seed + 11))
	rng2 := rand.New(rand.NewSource(p.Seed + 22))

	var (
		serialAir float64
		sicAir    float64
		delivered float64
		concRound int
	)
	for i := 0; i < rounds; i++ {
		s1 := f1.Next(rng1)
		s2 := f2.Next(rng2)
		r1 := a1.Pick(s1)
		r2 := a2.Pick(s2)
		if r1 <= 0 || r2 <= 0 {
			lowest := table.Steps()[0].BitsPerSec
			serialAir += 2 * p.PacketBits / lowest
			sicAir += 2 * p.PacketBits / lowest
			a1.Observe(false)
			a2.Observe(false)
			continue
		}
		ok1 := r1 <= table.Rate(s1)
		ok2 := r2 <= table.Rate(s2)
		t1 := p.PacketBits / r1
		t2 := p.PacketBits / r2
		serialAir += t1 + t2
		if ok1 {
			delivered += p.PacketBits
		}
		if ok2 {
			delivered += p.PacketBits
		}

		// Concurrency check at the chosen rates: the stronger signal must
		// be decodable under the weaker's interference, the weaker after
		// cancellation — the paper's Eqs. (1)-(2) with actual rates.
		strongSNR, weakSNR := s1, s2
		rStrong, rWeak := r1, r2
		if s2 > s1 {
			strongSNR, weakSNR = s2, s1
			rStrong, rWeak = r2, r1
		}
		feasible := ok1 && ok2 &&
			rStrong <= p.Channel.Capacity(phy.SINR(strongSNR, weakSNR)) &&
			rWeak <= p.Channel.Capacity(weakSNR)
		if feasible {
			concRound++
			sicAir += math.Max(t1, t2)
		} else {
			sicAir += t1 + t2
		}
		a1.Observe(ok1)
		a2.Observe(ok2)
	}

	res := pairedResult{concFrac: float64(concRound) / float64(rounds)}
	if serialAir > 0 {
		res.serialThroughput = delivered / serialAir
	}
	if sicAir > 0 {
		res.sicGain = serialAir / sicAir
	}
	return res, nil
}

// cloneAdapter builds a fresh adapter of the same class as proto.
func cloneAdapter(proto adapt.Adapter, table rates.Table, seed int64) adapt.Adapter {
	switch a := proto.(type) {
	case *adapt.Oracle:
		return &adapt.Oracle{Table: table}
	case *adapt.Fixed:
		return &adapt.Fixed{RateBps: a.RateBps}
	case *adapt.ARF:
		return adapt.NewARF(table)
	case *adapt.AARF:
		return adapt.NewAARF(table)
	case *adapt.SNRThreshold:
		return &adapt.SNRThreshold{Table: table, MarginDB: a.MarginDB}
	case *adapt.Minstrel:
		return adapt.NewMinstrel(table, rand.New(rand.NewSource(seed)))
	default:
		return proto
	}
}

func tableKey(t rates.Table) string {
	return strings.ReplaceAll(strings.TrimPrefix(t.Name(), "802."), ".", "_")
}

func adapterKey(name string) string {
	return strings.NewReplacer("-", "_", "+", "", ".", "_").Replace(strings.ToLower(name))
}
