package experiments

import (
	"context"
	"testing"
)

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestExtAdaptation(t *testing.T) {
	p := quick(t)
	p.Trials = 4000
	r, err := ExtAdaptation(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-adaptation")

	// The paper's argument, quantified three ways.

	// 1. Better adaptation → less SIC gain (per table). The fixed adapter's
	// key embeds each table's lowest rate.
	for tbl, fixedKey := range map[string]string{
		"11b": "sic_gain_11b_fixed_1m",
		"11g": "sic_gain_11g_fixed_6m",
	} {
		oracle := r.Metrics["sic_gain_"+tbl+"_oracle"]
		fixed, ok := r.Metrics[fixedKey]
		if !ok {
			t.Fatalf("missing fixed-rate metric %q (have %v)", fixedKey, keysOf(r.Metrics))
		}
		if oracle > fixed+1e-9 {
			t.Errorf("%s: oracle SIC gain %v exceeds fixed-rate %v", tbl, oracle, fixed)
		}
	}

	// 2. Efficiency ordering: the oracle is the throughput reference.
	for _, tbl := range []string{"11b", "11g", "11n"} {
		if e := r.Metrics["efficiency_"+tbl+"_oracle"]; e < 0.999 || e > 1.001 {
			t.Errorf("%s oracle efficiency %v, want 1", tbl, e)
		}
		if e := r.Metrics["efficiency_"+tbl+"_arf"]; e > 1.001 {
			t.Errorf("%s ARF efficiency %v exceeds the oracle", tbl, e)
		}
	}

	// 3. Even the oracle keeps some SIC opportunity on a coarse table
	//    (quantisation slack), and it shrinks as tables get finer:
	//    b (4 rates) ≥ g (8 rates).
	b := r.Metrics["sic_gain_11b_oracle"]
	g := r.Metrics["sic_gain_11g_oracle"]
	if b < 1 || g < 1 {
		t.Fatalf("SIC gains below 1: b=%v g=%v", b, g)
	}
	if g > b+1e-9 {
		t.Errorf("finer table should not increase oracle SIC gain: 11b=%v 11g=%v", b, g)
	}
}

func TestExtAdaptationDeterministic(t *testing.T) {
	p := quick(t)
	p.Trials = 1000
	a, err := ExtAdaptation(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtAdaptation(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %q differs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

func TestExtArchitectures(t *testing.T) {
	p := quick(t)
	p.Trials = 2000
	r, err := ExtArchitectures(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-architectures")
	// The §4 conclusions, in metric form.
	if up, dl := r.Metrics["frac_over_20pct_enterprise_upload"], r.Metrics["frac_over_20pct_enterprise_download"]; up <= dl {
		t.Errorf("upload (%v) should dominate download (%v)", up, dl)
	}
	if cr := r.Metrics["median_enterprise_cross"]; cr > 1.02 {
		t.Errorf("nearest-AP cross traffic median %v should be ≈1", cr)
	}
	if m := r.Metrics["median_mesh_relay"]; m < 1.05 {
		t.Errorf("mesh relay median %v should show real gains", m)
	}
}

func TestExtLoad(t *testing.T) {
	r, err := ExtLoad(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-load")
	// At the top load point the SIC scheduler must hold lower mean delay.
	if s, c := r.Metrics["serial_mean_delay_s_rate_2400"], r.Metrics["sic_mean_delay_s_rate_2400"]; c >= s {
		t.Errorf("at saturation SIC delay %v should beat serial %v", c, s)
	}
	// Delay grows with load for both MACs (weak monotonicity at the ends).
	if r.Metrics["serial_mean_delay_s_rate_2400"] < r.Metrics["serial_mean_delay_s_rate_200"] {
		t.Error("serial delay did not grow with load")
	}
	if r.Metrics["sic_mean_delay_s_rate_2400"] < r.Metrics["sic_mean_delay_s_rate_200"] {
		t.Error("sic delay did not grow with load")
	}
}

func TestExtPHY(t *testing.T) {
	p := quick(t)
	p.Trials = 3000
	r, err := ExtPHY(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-phy")
	// Perfect cancellation: weak SER ≈ interference-free.
	if d := r.Metrics["genie_weak_ser"] - r.Metrics["genie_weak_ser_alone"]; d > 0.01 || d < -0.01 {
		t.Errorf("genie SIC deviates from interference-free by %v", d)
	}
	// More pilots → smaller beta → faster drain (weakly).
	if r.Metrics["beta_pilots_256"] >= r.Metrics["beta_pilots_4"] {
		t.Errorf("beta did not shrink with pilots: %v vs %v",
			r.Metrics["beta_pilots_256"], r.Metrics["beta_pilots_4"])
	}
	if r.Metrics["scheduled_drain_s_pilots_256"] > r.Metrics["scheduled_drain_s_pilots_4"]+1e-12 {
		t.Errorf("drain with 256 pilots (%v) worse than with 4 (%v)",
			r.Metrics["scheduled_drain_s_pilots_256"], r.Metrics["scheduled_drain_s_pilots_4"])
	}
	// Clipping hurts.
	if r.Metrics["weak_ser_clipped"] <= r.Metrics["weak_ser_no_clip"] {
		t.Errorf("clipping should raise weak SER: %v vs %v",
			r.Metrics["weak_ser_clipped"], r.Metrics["weak_ser_no_clip"])
	}
}

func TestExtMesh(t *testing.T) {
	r, err := ExtMesh(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-mesh")
	if s := r.Metrics["speedup_long_short_long"]; s <= 1.2 {
		t.Errorf("long-short-long speedup %v; the §4.3 recipe should pay", s)
	}
	if s := r.Metrics["speedup_short_hops"]; s > 1.001 {
		t.Errorf("short hops should leave no SIC opening, got %v", s)
	}
	if s := r.Metrics["speedup_uniform_10"]; s < 1 {
		t.Errorf("uniform chain speedup %v below 1", s)
	}
}

func TestExtRegion(t *testing.T) {
	r, err := ExtRegion(context.Background(), quick(t))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-region")
	// Both corners hit the sum capacity; the conventional point does not.
	if d := r.Metrics["corner_a_sum_bps"] - r.Metrics["csum_bps"]; d > 1 || d < -1 {
		t.Errorf("corner A misses the sum bound by %v bps", d)
	}
	if r.Metrics["sic_over_conventional"] <= 1 {
		t.Errorf("SIC sum-rate advantage %v should exceed 1", r.Metrics["sic_over_conventional"])
	}
}

func TestExtTriples(t *testing.T) {
	p := quick(t)
	p.TraceDays = 2
	r, err := ExtTriples(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, "ext-triples")
	if r.Metrics["snapshots"] < 10 {
		t.Fatalf("only %v usable snapshots", r.Metrics["snapshots"])
	}
	// Grouped scheduling ties or beats pairing on average... not guaranteed
	// pointwise (greedy), so assert the aggregate is not a regression.
	if r.Metrics["mean_pair_over_triple"] < 0.99 {
		t.Errorf("grouped scheduling lost on average: %v", r.Metrics["mean_pair_over_triple"])
	}
}
