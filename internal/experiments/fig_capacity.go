package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/stats"
)

// Fig2 regenerates the paper's Fig. 2: aggregate capacity of two concurrent
// transmitters under SIC versus the two individual capacities, swept over
// the stronger signal's SNR with the weaker fixed 6 dB below it.
func Fig2(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	const gapDB = 6.0
	var csv strings.Builder
	csv.WriteString("s1_db,c1_bps,c2_bps,c_sic_bps\n")

	var (
		sumRatioStrong float64
		n              int
		identityErr    float64
	)
	for s1dB := 0.0; s1dB <= 50; s1dB += 0.5 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s1 := phy.FromDB(s1dB)
		s2 := phy.FromDB(s1dB - gapDB)
		pair := core.Pair{S1: s1, S2: s2}
		c1 := p.Channel.Capacity(s1)
		c2 := p.Channel.Capacity(s2)
		cs := pair.CapacityWithSIC(p.Channel)
		fmt.Fprintf(&csv, "%g,%g,%g,%g\n", s1dB, c1, c2, cs)
		if cs < c1 || cs < c2 {
			return Result{}, fmt.Errorf("fig2: SIC capacity %v below an individual capacity at %v dB", cs, s1dB)
		}
		sumRatioStrong += cs / c1
		n++
		// Eq. (4) identity residual.
		rs, rw, _ := pair.FeasibleRates(p.Channel)
		if d := abs(rs + rw - cs); d > identityErr {
			identityErr = d
		}
	}

	meanRatio := sumRatioStrong / float64(n)
	text := fmt.Sprintf(`Fig. 2 — SIC aggregate capacity vs individual capacities
Sweep: S1 in [0,50] dB, S2 = S1 - %.0f dB, B = %.0f MHz.
SIC capacity equals that of a single transmitter with power S1+S2 and always
exceeds both individual capacities.
`, gapDB, p.Channel.BandwidthHz/1e6)

	r := Result{
		ID:    "fig2",
		Title: "Aggregate capacity of two transmitters with SIC",
		Files: map[string]string{"fig2.csv": csv.String()},
		Metrics: map[string]float64{
			"mean_capacity_ratio_sic_over_strong": meanRatio,
			"max_eq4_identity_residual_bps":       identityErr,
		},
	}
	r.Text = text + r.MetricsBlock()
	return r, nil
}

// Fig3 regenerates the capacity-gain heatmap: C₊SIC/C₋SIC over the
// (S1, S2) plane in dB. The paper's observations: gain is always ≥ 1, is
// largest when the two RSSs are small and similar, and is bounded by 2.
func Fig3(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	g, err := capacityGrid(ctx, p, func(pair core.Pair) float64 {
		return pair.CapacityGain(p.Channel)
	})
	if err != nil {
		return Result{}, err
	}
	lo, hi := g.MinMax()
	i, j := g.ArgMax()

	// Diagonal profile: gain at equal RSSs must fall as SNR rises.
	gainLowEqual := core.Pair{S1: phy.FromDB(2), S2: phy.FromDB(2)}.CapacityGain(p.Channel)
	gainHighEqual := core.Pair{S1: phy.FromDB(45), S2: phy.FromDB(45)}.CapacityGain(p.Channel)

	r := Result{
		ID:    "fig3",
		Title: "Relative capacity gain heatmap",
		Files: map[string]string{},
		Metrics: map[string]float64{
			"min_gain":        lo,
			"max_gain":        hi,
			"argmax_s1_db":    g.X(i),
			"argmax_s2_db":    g.Y(j),
			"gain_equal_2db":  gainLowEqual,
			"gain_equal_45db": gainHighEqual,
			"mean_gain":       g.Mean(),
		},
	}
	var csv strings.Builder
	if err := plot.WriteGridCSV(&csv, g, "s1_db", "s2_db", "capacity_gain"); err != nil {
		return Result{}, err
	}
	r.Files["fig3.csv"] = csv.String()
	r.Files["fig3.svg"] = plot.HeatmapSVG(g, "Fig. 3 — C+SIC / C-SIC", "S1 (dB)", "S2 (dB)")
	r.Text = plot.Heatmap(g, "Fig. 3 — C+SIC / C-SIC (lighter = higher gain)", "S1 (dB)", "S2 (dB)") + r.MetricsBlock()
	return r, nil
}

// Fig4 regenerates the same-receiver completion-time gain heatmap:
// Z₋SIC/Z₊SIC over the (S1, S2) plane. The ridge of maximum gain follows
// S1 ≈ 2·S2 in dB (equal feasible rates for both transmitters).
func Fig4(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	g, err := capacityGrid(ctx, p, func(pair core.Pair) float64 {
		return pair.Gain(p.Channel, p.PacketBits)
	})
	if err != nil {
		return Result{}, err
	}
	lo, hi := g.MinMax()

	// Locate the ridge: for several weak-SNR rows, the argmax strong SNR
	// should sit near twice the weak dB value. The surface is symmetric in
	// (S1, S2), so each row crosses the ridge twice (once with roles
	// swapped); restrict to S1 > S2 to measure the canonical crossing.
	var ridgeErrSum float64
	var ridgeN int
	for _, weakDB := range []float64{8, 12, 16, 20} {
		bestGain, bestStrong := 0.0, 0.0
		for i := 0; i < g.NX; i++ {
			s1dB := g.X(i)
			if s1dB <= weakDB {
				continue
			}
			pair := core.Pair{S1: phy.FromDB(s1dB), S2: phy.FromDB(weakDB)}
			if gn := pair.Gain(p.Channel, p.PacketBits); gn > bestGain {
				bestGain, bestStrong = gn, s1dB
			}
		}
		ridgeErrSum += abs(bestStrong - 2*weakDB)
		ridgeN++
	}

	r := Result{
		ID:    "fig4",
		Title: "Same-receiver completion-time gain heatmap",
		Files: map[string]string{},
		Metrics: map[string]float64{
			"min_gain":             lo,
			"max_gain":             hi,
			"mean_ridge_offset_db": ridgeErrSum / float64(ridgeN),
			"mean_gain":            g.Mean(),
		},
	}
	var csv strings.Builder
	if err := plot.WriteGridCSV(&csv, g, "s1_db", "s2_db", "time_gain"); err != nil {
		return Result{}, err
	}
	r.Files["fig4.csv"] = csv.String()
	r.Files["fig4.svg"] = plot.HeatmapSVG(g, "Fig. 4 — Z-SIC / Z+SIC, same receiver", "S1 (dB)", "S2 (dB)")
	r.Text = plot.Heatmap(g, "Fig. 4 — Z-SIC / Z+SIC, same receiver (lighter = higher gain)", "S1 (dB)", "S2 (dB)") + r.MetricsBlock()
	return r, nil
}

// Fig8 regenerates the download heatmap: two APs to one client, gain
// Eq. (10)/Eq. (6). The paper: "very little benefit from SIC".
func Fig8(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	// The raw Eq. (10)/Eq. (6) ratio is plotted, exactly as the paper does;
	// it dips below 1 where forcing concurrency would be a loss (a real MAC
	// would serialise there).
	g, err := capacityGrid(ctx, p, func(pair core.Pair) float64 {
		return core.Download{S1: pair.S1, S2: pair.S2}.Gain(p.Channel, p.PacketBits)
	})
	if err != nil {
		return Result{}, err
	}
	lo, hi := g.MinMax()
	above1 := 0
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if g.At(i, j) > 1 {
				above1++
			}
		}
	}
	r := Result{
		ID:    "fig8",
		Title: "Two-APs-to-one-client download gain heatmap",
		Files: map[string]string{},
		Metrics: map[string]float64{
			"min_gain":                lo,
			"max_gain":                hi,
			"mean_gain":               g.Mean(),
			"frac_cells_gain_above_1": float64(above1) / float64(g.NX*g.NY),
		},
	}
	var csv strings.Builder
	if err := plot.WriteGridCSV(&csv, g, "s1_db", "s2_db", "download_gain"); err != nil {
		return Result{}, err
	}
	r.Files["fig8.csv"] = csv.String()
	r.Files["fig8.svg"] = plot.HeatmapSVG(g, "Fig. 8 — download gain, two APs to one client", "S1 (dB)", "S2 (dB)")
	r.Text = plot.Heatmap(g, "Fig. 8 — download gain, two APs to one client", "S1 (dB)", "S2 (dB)") + r.MetricsBlock()
	return r, nil
}

// capacityGrid evaluates f over the (S1,S2) dB lattice used by the heatmap
// figures, checking ctx between rows so heatmap figures cancel promptly.
func capacityGrid(ctx context.Context, p Params, f func(core.Pair) float64) (*stats.Grid, error) {
	const loDB, hiDB = 0.5, 50.0
	step := (hiDB - loDB) / float64(p.GridN-1)
	g := stats.NewGrid(loDB, loDB, step, step, p.GridN, p.GridN)
	for j := 0; j < p.GridN; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s2dB := g.Y(j)
		for i := 0; i < p.GridN; i++ {
			g.Set(i, j, f(core.Pair{S1: phy.FromDB(g.X(i)), S2: phy.FromDB(s2dB)}))
		}
	}
	return g, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
