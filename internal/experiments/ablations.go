package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mac"
	"repro/internal/mc"
	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements the ablations DESIGN.md calls out: each isolates one
// design choice or assumption and quantifies how much it matters.

// AblationAlpha re-runs the Fig. 6 Monte-Carlo under different path-loss
// exponents. The paper (§3.2): "gains from lower path-loss exponents ... are
// even lower".
func AblationAlpha(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	alphas := []float64{2.5, 3, 4}
	metrics := map[string]float64{}
	var text strings.Builder
	text.WriteString("Ablation — path-loss exponent α in the two-receiver Monte-Carlo\n")
	var prevFracGain float64
	for i, alpha := range alphas {
		pl, err := phy.NewPathLoss(alpha, 1, 60)
		if err != nil {
			return Result{}, err
		}
		cfg := mc.Config{
			Trials: p.Trials, Seed: p.Seed,
			Separation: 20, Range: 20,
			PathLoss: pl, Channel: p.Channel, PacketBits: p.PacketBits,
			Metrics: p.MC,
		}
		gains, err := mc.TwoReceiverGains(ctx, cfg)
		if err != nil {
			return Result{}, err
		}
		e, err := stats.NewECDF(gains)
		if err != nil {
			return Result{}, err
		}
		fracGain := e.FracAbove(1.0)
		metrics[fmt.Sprintf("frac_with_gain_alpha_%.1f", alpha)] = fracGain
		fmt.Fprintf(&text, "  α=%.1f: %.1f%% of topologies gain at all, max gain %.3f\n",
			alpha, 100*fracGain, e.Max())
		if i > 0 && fracGain+0.02 < prevFracGain {
			// Not fatal — just record the reversal in a metric.
			metrics["alpha_monotonicity_violated"] = 1
		}
		prevFracGain = fracGain
	}
	r := Result{
		ID:      "ablation-alpha",
		Title:   "Path-loss exponent ablation (two-receiver SIC opportunity)",
		Files:   map[string]string{},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}

// AblationResidual measures how imperfect cancellation erodes the scheduled
// MAC's advantage: end-to-end drain time of the discrete-event simulator as
// the residual-interference fraction grows. The paper's §8 (citing its
// reference [13]) predicts a sharp cut in SIC's usefulness.
func AblationResidual(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	stations := []mac.Station{
		{ID: 1, SNR: phy.FromDB(32), Backlog: 4},
		{ID: 2, SNR: phy.FromDB(16), Backlog: 4},
		{ID: 3, SNR: phy.FromDB(28), Backlog: 4},
		{ID: 4, SNR: phy.FromDB(13), Backlog: 4},
		{ID: 5, SNR: phy.FromDB(36), Backlog: 4},
		{ID: 6, SNR: phy.FromDB(19), Backlog: 4},
	}
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits}

	cfg := mac.DefaultConfig(p.Channel)
	cfg.PacketBits = p.PacketBits
	serial, err := mac.RunSerial(stations, cfg)
	if err != nil {
		return Result{}, err
	}

	metrics := map[string]float64{"serial_drain_s": serial.Duration}
	var text strings.Builder
	text.WriteString("Ablation — residual cancellation vs scheduled-MAC drain time\n")
	fmt.Fprintf(&text, "  serial CSMA baseline: %.4g ms\n", serial.Duration*1e3)
	var prev float64
	for _, beta := range []float64{0, 0.005, 0.02, 0.05} {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		c := cfg
		c.Residual = beta
		res, err := mac.RunScheduled(stations, c, opts)
		if err != nil {
			return Result{}, fmt.Errorf("residual %v: %w", beta, err)
		}
		key := fmt.Sprintf("scheduled_drain_s_beta_%g", beta)
		metrics[key] = res.Duration
		metrics[fmt.Sprintf("decode_failures_beta_%g", beta)] = float64(res.DecodeFailures)
		fmt.Fprintf(&text, "  β=%-5g: drain %.4g ms, %d decode failures, %d rounds\n",
			beta, res.Duration*1e3, res.DecodeFailures, res.Rounds)
		if res.Duration+1e-12 < prev {
			return Result{}, fmt.Errorf("drain time improved as residual grew (β=%v)", beta)
		}
		prev = res.Duration
	}
	r := Result{
		ID:      "ablation-residual",
		Title:   "Imperfect cancellation ablation (end-to-end MAC simulation)",
		Files:   map[string]string{},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}

// AblationGreedy quantifies what optimal matching buys over best-pair-first
// greedy selection across real(istic) trace snapshots.
func AblationGreedy(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := trace.DefaultGenConfig(p.Seed)
	cfg.Days = p.TraceDays
	snaps, err := trace.GenerateUpload(cfg)
	if err != nil {
		return Result{}, err
	}
	opts := sched.Options{Channel: p.Channel, PacketBits: p.PacketBits, PowerControl: true}

	var ratios []float64
	for _, snap := range snaps {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if len(snap.Clients) < 4 {
			continue // greedy == optimal for n ≤ 3 almost always; focus on real pools
		}
		clients := make([]sched.Client, len(snap.Clients))
		ok := true
		for i, c := range snap.Clients {
			snr := phy.FromDB(c.SNRdB)
			if !(snr > 0) {
				ok = false
				break
			}
			clients[i] = sched.Client{ID: c.ID, SNR: snr}
		}
		if !ok {
			continue
		}
		opt, err := sched.New(clients, opts)
		if err != nil {
			return Result{}, err
		}
		gr, err := sched.Greedy(clients, opts)
		if err != nil {
			return Result{}, err
		}
		ratios = append(ratios, gr.Total/opt.Total)
	}
	if len(ratios) == 0 {
		return Result{}, fmt.Errorf("ablation-greedy: no snapshots with ≥4 clients")
	}
	e, err := stats.NewECDF(ratios)
	if err != nil {
		return Result{}, err
	}
	sum, _ := stats.Summarize(ratios)
	r := Result{
		ID:    "ablation-greedy",
		Title: "Greedy pairing vs Edmonds matching on trace snapshots",
		Files: map[string]string{},
		Metrics: map[string]float64{
			"snapshots":            float64(len(ratios)),
			"mean_greedy_over_opt": sum.Mean,
			"p99_greedy_over_opt":  sum.P99,
			"max_greedy_over_opt":  sum.Max,
			"frac_greedy_optimal":  e.At(1 + 1e-9),
		},
	}
	r.Text = fmt.Sprintf(`Ablation — greedy vs optimal matching (%d snapshots, ≥4 clients)
  greedy/optimal drain-time ratio: mean %.4f, p99 %.4f, max %.4f
  greedy already optimal in %.1f%% of snapshots
`, len(ratios), sum.Mean, sum.P99, sum.Max, 100*e.At(1+1e-9)) + r.MetricsBlock()
	return r, nil
}

// Ablations lists the ablation and extension drivers (kept separate from
// All(), which is strictly the paper's figures).
func Ablations() []Runner {
	return []Runner{
		{"ablation-alpha", "Path-loss exponent ablation", AblationAlpha},
		{"ablation-residual", "Imperfect-cancellation ablation", AblationResidual},
		{"ablation-greedy", "Greedy-vs-matching ablation", AblationGreedy},
		{"ext-adaptation", "SIC slack vs bitrate adaptation (extension)", ExtAdaptation},
		{"ext-architectures", "SIC opportunity per wireless architecture (extension)", ExtArchitectures},
		{"ext-load", "Queueing delay vs offered load (extension)", ExtLoad},
		{"ext-phy", "Symbol-level SIC receiver (extension)", ExtPHY},
		{"ext-mesh", "Mesh pipeline throughput with SIC (extension)", ExtMesh},
		{"ext-region", "Two-user capacity region with SIC corners (extension)", ExtRegion},
		{"ext-triples", "Three-way SIC slots vs pairwise matching (extension)", ExtTriples},
	}
}
