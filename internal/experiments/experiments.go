// Package experiments maps every figure of the paper's evaluation to a
// runnable driver. Each driver regenerates its figure's data from the
// library, renders it (ASCII heatmap/CDF plus CSV), and reports the
// headline metrics that EXPERIMENTS.md compares against the paper's claims.
//
// The drivers are shared by cmd/sicfig (full-resolution figure regeneration)
// and the repository's bench harness (smaller parameter sets, one benchmark
// per figure).
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/mc"
	"repro/internal/phy"
)

// Params tunes the experiment workload. The zero value is invalid; use
// DefaultParams (paper-scale) or QuickParams (CI/bench scale).
type Params struct {
	// Trials is the Monte-Carlo sample count per configuration.
	Trials int
	// Seed drives all randomness.
	Seed int64
	// GridN is the lattice resolution of heatmap figures (GridN×GridN).
	GridN int
	// TraceDays scales the synthetic trace length for Figs. 13-14.
	TraceDays int
	// PacketBits is the packet size for all completion-time formulas.
	PacketBits float64
	// Channel supplies bandwidth and noise.
	Channel phy.Channel
	// MC, when non-nil, receives Monte-Carlo throughput metrics from every
	// sweep a figure runs. Excluded from JSON so attaching instrumentation
	// never changes checkpoint keys (runner.ParamsKey hashes this struct).
	MC *mc.Metrics `json:"-"`
	// ScalarMC forces the Monte-Carlo figures through mc's legacy scalar
	// engine instead of the batched columnar one. The engines are
	// bit-identical by contract (the golden tests pin it), so this is
	// excluded from JSON: checkpoint keys are engine-agnostic, and a
	// checkpoint written under one engine resumes cleanly under the other.
	ScalarMC bool `json:"-"`
}

// DefaultParams mirrors the paper's scale: 10 000 Monte-Carlo trials,
// fine heatmap grids, a two-week trace.
func DefaultParams() Params {
	return Params{
		Trials:     10000,
		Seed:       1,
		GridN:      101,
		TraceDays:  14,
		PacketBits: 12000,
		Channel:    phy.Wifi20MHz,
	}
}

// QuickParams is a reduced workload for tests and benchmarks.
func QuickParams() Params {
	p := DefaultParams()
	p.Trials = 1500
	p.GridN = 41
	p.TraceDays = 2
	return p
}

func (p Params) validate() error {
	switch {
	case p.Trials <= 0:
		return fmt.Errorf("experiments: Trials must be positive")
	case p.GridN < 3:
		return fmt.Errorf("experiments: GridN must be at least 3")
	case p.TraceDays <= 0:
		return fmt.Errorf("experiments: TraceDays must be positive")
	case p.PacketBits <= 0:
		return fmt.Errorf("experiments: PacketBits must be positive")
	case p.Channel.BandwidthHz <= 0:
		return fmt.Errorf("experiments: Channel is required")
	}
	return nil
}

// Result is one regenerated figure.
type Result struct {
	// ID is the experiment key, e.g. "fig4".
	ID string
	// Title describes what the figure shows.
	Title string
	// Text is the rendered figure (ASCII art plus a numbers block).
	Text string
	// Files maps output filenames (e.g. "fig4.csv") to their contents.
	Files map[string]string
	// Metrics holds the headline numbers, keyed by a stable name.
	Metrics map[string]float64
}

// MetricsBlock renders the metrics sorted by key, for embedding in Text and
// EXPERIMENTS.md.
func (r Result) MetricsBlock() string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("  %-42s %.4g\n", k, r.Metrics[k])
	}
	return out
}

// Runner is a figure driver. Run observes ctx between expensive phases —
// grid rows, trial batches, trace snapshots — and returns ctx's error when
// cancelled, so suite-level deadlines propagate into long sweeps without
// affecting the deterministic per-trial seeding.
type Runner struct {
	ID    string
	Title string
	Run   func(ctx context.Context, p Params) (Result, error)
}

// All lists every figure driver in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "Aggregate capacity of two transmitters with SIC", Fig2},
		{"fig3", "Relative capacity gain heatmap (C+SIC / C-SIC)", Fig3},
		{"fig4", "Same-receiver completion-time gain heatmap (Z-SIC / Z+SIC)", Fig4},
		{"fig6", "Two-receiver Monte-Carlo gain CDFs per range", Fig6},
		{"fig8", "Two-APs-to-one-client download gain heatmap", Fig8},
		{"fig10", "Client pairing / power control / multirate / packing illustration", Fig10},
		{"fig11", "Technique comparison CDFs (one- and two-receiver)", Fig11},
		{"fig12", "SIC-aware scheduling as minimum-weight perfect matching", Fig12},
		{"fig13", "Trace-driven upload pairing gains", Fig13},
		{"fig14", "Trace-driven two-pair download gains (arbitrary & 802.11g rates)", Fig14},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
