package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/mesh"
	"repro/internal/phy"
)

// ExtMesh is an extension experiment for §4.3: end-to-end pipeline
// throughput over mesh chains with and without SIC at the relays. It sweeps
// the hop pattern the paper reasons about — long-short-long is "a perfect
// recipe for SIC", uniformly short hops break the decode condition — and a
// long uniform chain where plain spatial reuse already helps and SIC adds
// on top.
func ExtMesh(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	pl, err := phy.NewPathLoss(3.2, 1, 58)
	if err != nil {
		return Result{}, err
	}

	type scenario struct {
		name string
		hops []float64
	}
	scenarios := []scenario{
		{"long-short-long", []float64{30, 4, 30}},
		{"short-hops", []float64{8, 4, 8}},
		{"double-relay", []float64{28, 4, 28, 4, 28}},
		{"uniform-10", []float64{25, 25, 25, 25, 25, 25, 25, 25, 25, 25}},
	}

	metrics := map[string]float64{}
	var text strings.Builder
	text.WriteString("Extension — mesh pipeline throughput with SIC at relays (§4.3)\n\n")
	fmt.Fprintf(&text, "%-18s %6s | %12s %12s %9s\n", "chain", "hops", "serial Mb/s", "SIC Mb/s", "speedup")

	for _, sc := range scenarios {
		n, err := mesh.NewChain(sc.hops, pl, p.Channel)
		if err != nil {
			return Result{}, fmt.Errorf("ext-mesh %s: %w", sc.name, err)
		}
		// The §4.3 scenario fixes the route along the chain (A→C→D→E); a
		// min-ETT router would sometimes skip the short relay hop, which is
		// a different story (see mesh.Route and its tests).
		path := make([]int, len(n.Nodes))
		for i := range path {
			path[i] = i
		}
		serial, err := n.ScheduleFlow(path, p.PacketBits, false)
		if err != nil {
			return Result{}, fmt.Errorf("ext-mesh %s: %w", sc.name, err)
		}
		sic, err := n.ScheduleFlow(path, p.PacketBits, true)
		if err != nil {
			return Result{}, fmt.Errorf("ext-mesh %s: %w", sc.name, err)
		}
		speedup := sic.Throughput / serial.Throughput
		if speedup < 1-1e-12 {
			return Result{}, fmt.Errorf("ext-mesh %s: SIC slowed the flow (%v)", sc.name, speedup)
		}
		key := strings.ReplaceAll(sc.name, "-", "_")
		metrics["serial_bps_"+key] = serial.Throughput
		metrics["sic_bps_"+key] = sic.Throughput
		metrics["speedup_"+key] = speedup
		fmt.Fprintf(&text, "%-18s %6d | %12.2f %12.2f %8.2f×\n",
			sc.name, len(sc.hops), serial.Throughput/1e6, sic.Throughput/1e6, speedup)
	}

	r := Result{
		ID:      "ext-mesh",
		Title:   "Mesh pipeline throughput with SIC (extension)",
		Files:   map[string]string{},
		Metrics: metrics,
	}
	r.Text = text.String() + r.MetricsBlock()
	return r, nil
}
