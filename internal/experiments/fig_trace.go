package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/plot"
	"repro/internal/rates"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig13 regenerates the trace-driven upload evaluation: for every topology
// snapshot with at least two backlogged clients, run the SIC-aware pairing
// scheduler and record the gain over serial upload — plain, with power
// control, and with multirate packetization. The trace is synthetic (see
// package trace and DESIGN.md "Substitutions").
func Fig13(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := trace.DefaultGenConfig(p.Seed)
	cfg.Days = p.TraceDays
	snaps, err := trace.GenerateUpload(cfg)
	if err != nil {
		return Result{}, err
	}

	variants := []struct {
		name string
		opts sched.Options
	}{
		{"SIC pairing", sched.Options{Channel: p.Channel, PacketBits: p.PacketBits}},
		{"SIC+power-control", sched.Options{Channel: p.Channel, PacketBits: p.PacketBits, PowerControl: true}},
		{"SIC+multirate", sched.Options{Channel: p.Channel, PacketBits: p.PacketBits, Multirate: true}},
	}

	gains := make([][]float64, len(variants))
	usable := 0
	for _, snap := range snaps {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if len(snap.Clients) < 2 {
			continue
		}
		clients := make([]sched.Client, len(snap.Clients))
		valid := true
		for i, c := range snap.Clients {
			snr := phy.FromDB(c.SNRdB)
			if !(snr > 0) {
				valid = false
				break
			}
			clients[i] = sched.Client{ID: c.ID, SNR: snr}
		}
		if !valid {
			continue
		}
		usable++
		for vi, v := range variants {
			s, err := sched.New(clients, v.opts)
			if err != nil {
				return Result{}, fmt.Errorf("fig13: snapshot %s@%d: %w", snap.AP, snap.Unix, err)
			}
			gains[vi] = append(gains[vi], s.Gain())
		}
	}
	if usable == 0 {
		return Result{}, fmt.Errorf("fig13: trace produced no snapshots with ≥2 clients")
	}

	metrics := map[string]float64{"usable_snapshots": float64(usable)}
	var series []plot.Series
	for vi, v := range variants {
		e, err := stats.NewECDF(gains[vi])
		if err != nil {
			return Result{}, err
		}
		series = append(series, plot.SeriesFromECDF(v.name, e))
		key := strings.NewReplacer(" ", "_", "+", "_", "-", "_").Replace(strings.ToLower(v.name))
		metrics["median_gain_"+key] = e.Quantile(0.5)
		metrics["frac_over_20pct_"+key] = e.FracAbove(1.2)
	}

	var csv strings.Builder
	if err := plot.WriteSeriesCSV(&csv, "gain", series...); err != nil {
		return Result{}, err
	}
	r := Result{
		ID:    "fig13",
		Title: "Trace-driven upload pairing gains",
		Files: map[string]string{
			"fig13.csv": csv.String(),
			"fig13.svg": plot.CDFPlotSVG("Fig. 13 — trace-driven client pairing (upload)", series...),
		},
		Metrics: metrics,
	}
	r.Text = plot.CDFPlot("Fig. 13 — trace-driven client pairing (upload)", 64, 16, series...) + r.MetricsBlock()
	return r, nil
}

// Fig14 regenerates the trace-driven download evaluation: pairs of AP→client
// links drawn from the synthetic SNR survey, evaluated (a) at ideal
// arbitrary bitrates and (b) at the discrete 802.11g rates, each with and
// without packet packing.
func Fig14(ctx context.Context, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := trace.DefaultGenConfig(p.Seed)
	survey, err := trace.GenerateSurvey(cfg, 100)
	if err != nil {
		return Result{}, err
	}

	crosses := surveyPairs(survey)
	if len(crosses) == 0 {
		return Result{}, fmt.Errorf("fig14: survey produced no valid link pairs")
	}

	// The two halves of the figure use the paper's two methodologies:
	//
	//   (a) "arbitrary bitrates" — the closed-form Eqs. (7)-(9) evaluated on
	//       the recorded SNRs; CaseA contributes no SIC gain, exactly as in
	//       the Fig. 6 accounting.
	//   (b) "discrete bitrates" — the log terms replaced by the actual
	//       802.11g rates sustained under interference; this embeds the
	//       quantisation slack (an interference-limited link often keeps its
	//       whole rate bin), which is where SIC deployments win.
	discrete := rates.Dot11g.RateFunc()

	kinds := []struct {
		name string
		gain func(core.Cross) float64
	}{
		{"arbitrary", func(x core.Cross) float64 {
			return x.Gain(p.Channel, p.PacketBits)
		}},
		{"arbitrary+packing", func(x core.Cross) float64 {
			g := x.Gain(p.Channel, p.PacketBits)
			if pg, ok := x.CrossPack(p.Channel, p.PacketBits); ok && pg > g {
				g = pg
			}
			return g
		}},
		{"802.11g", func(x core.Cross) float64 {
			return x.GainRate(discrete, p.PacketBits)
		}},
		{"802.11g+packing", func(x core.Cross) float64 {
			g := x.GainRate(discrete, p.PacketBits)
			if pg, ok := x.CrossPackRate(discrete, p.PacketBits); ok && pg > g {
				g = pg
			}
			return g
		}},
	}
	samples := make([][]float64, len(kinds))
	for xi, x := range crosses {
		if xi%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		for ki, k := range kinds {
			samples[ki] = append(samples[ki], k.gain(x))
		}
	}

	metrics := map[string]float64{"link_pairs": float64(len(crosses))}
	var seriesA, seriesB []plot.Series
	for ki, k := range kinds {
		e, err := stats.NewECDF(samples[ki])
		if err != nil {
			return Result{}, err
		}
		s := plot.SeriesFromECDF(k.name, e)
		if strings.HasPrefix(k.name, "arbitrary") {
			seriesA = append(seriesA, s)
		} else {
			seriesB = append(seriesB, s)
		}
		key := strings.NewReplacer("+", "_", ".", "_").Replace(k.name)
		frac, lo, hi := e.FracAboveCI(1.2)
		metrics["frac_over_20pct_"+key] = frac
		metrics["frac_over_20pct_"+key+"_ci_lo"] = lo
		metrics["frac_over_20pct_"+key+"_ci_hi"] = hi
		metrics["median_gain_"+key] = e.Quantile(0.5)
	}

	var csvA, csvB strings.Builder
	if err := plot.WriteSeriesCSV(&csvA, "gain", seriesA...); err != nil {
		return Result{}, err
	}
	if err := plot.WriteSeriesCSV(&csvB, "gain", seriesB...); err != nil {
		return Result{}, err
	}
	r := Result{
		ID:    "fig14",
		Title: "Trace-driven two-pair download gains",
		Files: map[string]string{
			"fig14a.csv": csvA.String(),
			"fig14b.csv": csvB.String(),
			"fig14a.svg": plot.CDFPlotSVG("Fig. 14a — arbitrary bitrates", seriesA...),
			"fig14b.svg": plot.CDFPlotSVG("Fig. 14b — discrete 802.11g bitrates", seriesB...),
		},
		Metrics: metrics,
	}
	r.Text = plot.CDFPlot("Fig. 14a — arbitrary bitrates", 64, 16, seriesA...) +
		"\n" +
		plot.CDFPlot("Fig. 14b — discrete 802.11g bitrates", 64, 16, seriesB...) +
		r.MetricsBlock()
	return r, nil
}

// surveyPairs forms the two-transmitter/two-receiver topologies of the
// paper's download study: every combination of two surveyed client
// locations served by two *distinct* APs. The serving AP is NOT restricted
// to the strongest one — as in residential WLANs (§4.2), a client may be
// tied to a particular AP, and those are exactly the scenarios where SIC
// has any opening. Scenarios whose serving link cannot sustain even the
// lowest 802.11g rate (6 dB) are discarded as unserviceable.
func surveyPairs(survey []trace.SurveyPoint) []core.Cross {
	const minServeDB = 6.0

	// Deterministic AP name order.
	apSet := map[string]bool{}
	for _, pt := range survey {
		for ap := range pt.SNRdB {
			apSet[ap] = true
		}
	}
	aps := make([]string, 0, len(apSet))
	for ap := range apSet {
		aps = append(aps, ap)
	}
	sort.Strings(aps)

	var out []core.Cross
	for i := 0; i < len(survey); i++ {
		for j := i + 1; j < len(survey); j++ {
			for _, apA := range aps {
				for _, apB := range aps {
					if apA == apB {
						continue
					}
					sI, okI := survey[i].SNRdB[apA]
					sJ, okJ := survey[j].SNRdB[apB]
					if !okI || !okJ || sI < minServeDB || sJ < minServeDB {
						continue
					}
					var x core.Cross
					x.S[0][0] = phy.FromDB(sI)
					x.S[0][1] = phy.FromDB(survey[i].SNRdB[apB])
					x.S[1][0] = phy.FromDB(survey[j].SNRdB[apA])
					x.S[1][1] = phy.FromDB(sJ)
					if x.Valid() {
						out = append(out, x)
					}
				}
			}
		}
	}
	return out
}
