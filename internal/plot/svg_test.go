package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/stats"
)

// validateXML parses the document to catch malformed SVG.
func validateXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, doc[:min(len(doc), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHeatmapSVG(t *testing.T) {
	doc := HeatmapSVG(demoGrid(), "demo <heat>", "x (dB)", "y (dB)")
	validateXML(t, doc)
	if !strings.Contains(doc, "demo &lt;heat&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Error("not an SVG document")
	}
	// One rect per cell plus chrome.
	if n := strings.Count(doc, "<rect"); n < 20*10 {
		t.Errorf("only %d rects for a 20x10 grid", n)
	}
}

func TestHeatmapSVGConstantGrid(t *testing.T) {
	g := stats.NewGrid(0, 0, 1, 1, 4, 4)
	g.Fill(func(x, y float64) float64 { return 7 })
	doc := HeatmapSVG(g, "flat", "x", "y")
	validateXML(t, doc)
	if strings.Contains(doc, "NaN") {
		t.Error("constant grid produced NaN colours")
	}
}

func TestCDFPlotSVG(t *testing.T) {
	e1, _ := stats.NewECDF([]float64{1, 1.2, 1.5, 2})
	e2, _ := stats.NewECDF([]float64{1, 1.1, 1.15})
	doc := CDFPlotSVG("gains & losses", SeriesFromECDF("sic", e1), SeriesFromECDF("pc", e2))
	validateXML(t, doc)
	if !strings.Contains(doc, "gains &amp; losses") {
		t.Error("title not escaped")
	}
	if strings.Count(doc, "<path") != 2 {
		t.Errorf("want 2 series paths, got %d", strings.Count(doc, "<path"))
	}
	if !strings.Contains(doc, "sic") || !strings.Contains(doc, "pc") {
		t.Error("legend entries missing")
	}
}

func TestCDFPlotSVGEmpty(t *testing.T) {
	doc := CDFPlotSVG("empty")
	validateXML(t, doc)
}

func TestHeatColorRange(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.35, 0.5, 1, 2} {
		c := heatColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("heatColor(%v) = %q", v, c)
		}
	}
	// Lighter at the top of the ramp: parse crude brightness.
	if heatColor(1) == heatColor(0) {
		t.Error("ramp endpoints identical")
	}
}

func TestGanttSVG(t *testing.T) {
	bars := []GanttBar{
		{Row: "C1", Start: 0, End: 2, Label: "sic", Kind: "sic"},
		{Row: "C2", Start: 0, End: 2, Label: "sic", Kind: "sic"},
		{Row: "C3", Start: 2, End: 10, Label: "solo", Kind: "solo"},
		{Row: "C1", Start: 10, End: 11, Kind: "unknown-kind"},
		{Row: "C2", Start: 5, End: 5, Kind: "serial"}, // zero width: skipped
	}
	doc := GanttSVG("Fig. 10 <timelines>", bars)
	validateXML(t, doc)
	if !strings.Contains(doc, "Fig. 10 &lt;timelines&gt;") {
		t.Error("title not escaped")
	}
	for _, lane := range []string{"C1", "C2", "C3"} {
		if !strings.Contains(doc, ">"+lane+"<") {
			t.Errorf("missing lane label %s", lane)
		}
	}
	// Four visible bars (one skipped for zero width): count bar rects by
	// the stroke they carry.
	if n := strings.Count(doc, `stroke="#333"`); n != 4 {
		t.Errorf("want 4 bars, got %d", n)
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	doc := GanttSVG("empty", nil)
	validateXML(t, doc)
}

func TestXYPlotSVG(t *testing.T) {
	line := Series{Name: "boundary", X: []float64{0, 1, 2}, Y: []float64{5, 4, 0}}
	point := Series{Name: "corner", X: []float64{1.5}, Y: []float64{3}}
	doc := XYPlotSVG("region <r>", "R1", "R2", line, point)
	validateXML(t, doc)
	if !strings.Contains(doc, "region &lt;r&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(doc, "<circle") {
		t.Error("single-point series should render a marker")
	}
	if !strings.Contains(doc, "<path") {
		t.Error("line series should render a path")
	}
	// Degenerate: no series.
	validateXML(t, XYPlotSVG("empty", "x", "y"))
}
