package plot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func demoGrid() *stats.Grid {
	g := stats.NewGrid(0, 0, 1, 1, 20, 10)
	g.Fill(func(x, y float64) float64 { return x + y })
	return g
}

func TestHeatmapRenders(t *testing.T) {
	out := Heatmap(demoGrid(), "demo", "xx", "yy")
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "xx") || !strings.Contains(out, "yy") {
		t.Error("missing axis labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 title + 10 rows + axis + ticks + labels.
	if len(lines) != 14 {
		t.Errorf("got %d lines, want 14:\n%s", len(lines), out)
	}
	// Top-right cell (x=19, y=9) has the max value → lightest shade '@'.
	topRow := lines[1]
	if !strings.HasSuffix(topRow, "@") {
		t.Errorf("top row should end with the lightest shade: %q", topRow)
	}
	// Bottom-left (x=0, y=0) is the darkest shade ' '.
	bottomRow := lines[10]
	if !strings.Contains(bottomRow, "|") {
		t.Errorf("bottom row lost its axis: %q", bottomRow)
	}
	if c := bottomRow[strings.IndexByte(bottomRow, '|')+1]; c != ' ' {
		t.Errorf("bottom-left cell shade = %q, want darkest (space)", c)
	}
}

func TestHeatmapConstantGrid(t *testing.T) {
	g := stats.NewGrid(0, 0, 1, 1, 5, 5)
	g.Fill(func(x, y float64) float64 { return 3 })
	out := Heatmap(g, "flat", "x", "y")
	if !strings.Contains(out, "flat") {
		t.Error("missing title")
	}
	// Must not panic or divide by zero; all cells share one shade.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			row := line[i+1:]
			for _, c := range row {
				if c != rune(' ') {
					t.Fatalf("constant grid should render darkest shade everywhere, got %q", row)
				}
			}
		}
	}
}

func TestSeriesFromECDF(t *testing.T) {
	e, err := stats.NewECDF([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := SeriesFromECDF("g", e)
	if s.Name != "g" || len(s.X) != 3 || s.Y[2] != 1 {
		t.Errorf("bad series: %+v", s)
	}
}

func TestCDFPlotRenders(t *testing.T) {
	e1, _ := stats.NewECDF([]float64{1, 1.2, 1.5, 2})
	e2, _ := stats.NewECDF([]float64{1, 1.1, 1.15, 1.2})
	out := CDFPlot("gains", 40, 12, SeriesFromECDF("sic", e1), SeriesFromECDF("pc", e2))
	if !strings.Contains(out, "gains") || !strings.Contains(out, "sic") || !strings.Contains(out, "pc") {
		t.Errorf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("missing series glyphs:\n%s", out)
	}
}

func TestCDFPlotDegenerate(t *testing.T) {
	e, _ := stats.NewECDF([]float64{5, 5, 5})
	out := CDFPlot("flat", 5, 2, SeriesFromECDF("s", e)) // tiny dims get clamped
	if out == "" {
		t.Error("empty output")
	}
	// No series at all must still render.
	if CDFPlot("none", 20, 8) == "" {
		t.Error("empty plot with no series")
	}
}

func TestWriteGridCSV(t *testing.T) {
	g := stats.NewGrid(0, 0, 1, 1, 2, 2)
	g.Set(0, 0, 1)
	g.Set(1, 0, 2)
	g.Set(0, 1, 3)
	g.Set(1, 1, 4)
	var buf bytes.Buffer
	if err := WriteGridCSV(&buf, g, "a", "b", "v"); err != nil {
		t.Fatal(err)
	}
	want := "a,b,v\n0,0,1\n1,0,2\n0,1,3\n1,1,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s1 := Series{Name: "u", X: []float64{1, 3}, Y: []float64{0.5, 1}}
	s2 := Series{Name: "v", X: []float64{2}, Y: []float64{1}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "x", s1, s2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,u,v" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	// x=1: u=0.5, v not yet started → 0.
	if lines[1] != "1,0.5,0" {
		t.Errorf("row1 = %q", lines[1])
	}
	// x=2: u holds 0.5 (step), v=1.
	if lines[2] != "2,0.5,1" {
		t.Errorf("row2 = %q", lines[2])
	}
	// x=3: both at 1.
	if lines[3] != "3,1,1" {
		t.Errorf("row3 = %q", lines[3])
	}
}

func TestStepAt(t *testing.T) {
	s := Series{X: []float64{1, 2, 4}, Y: []float64{0.25, 0.5, 1}}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {3.9, 0.5}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := stepAt(s, c.x); got != c.want {
			t.Errorf("stepAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
