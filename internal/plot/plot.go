// Package plot renders the evaluation's figures without external plotting
// libraries: shaded ASCII heatmaps (the medium of the paper's Figs. 3, 4
// and 8), ASCII CDF line plots (Figs. 6, 11, 13, 14), and CSV exports so
// the same data can be re-plotted with any tool.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// shades runs from dark (low) to light (high), mirroring the paper's
// "the lighter the shade, the higher the gain" convention.
var shades = []rune(" .:-=+*#%@")

// Heatmap renders the grid as shaded ASCII art, one character per cell,
// with simple axis annotations. Rows are printed with y increasing upward.
func Heatmap(g *stats.Grid, title, xLabel, yLabel string) string {
	lo, hi := g.MinMax()
	span := hi - lo
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%c=%.3g .. %c=%.3g]\n", title, shades[len(shades)-1], hi, shades[0], lo)
	for j := g.NY - 1; j >= 0; j-- {
		fmt.Fprintf(&b, "%8.1f |", g.Y(j))
		for i := 0; i < g.NX; i++ {
			v := g.At(i, j)
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", g.NX))
	fmt.Fprintf(&b, "%8s  %-8.1f%*s%8.1f\n", "", g.X(0), g.NX-16, "", g.X(g.NX-1))
	fmt.Fprintf(&b, "%8s  x: %s   y: %s\n", "", xLabel, yLabel)
	return b.String()
}

// Series is one named line of a CDF (or any x→y) plot.
type Series struct {
	Name string
	X, Y []float64
}

// SeriesFromECDF converts an ECDF into a plottable series.
func SeriesFromECDF(name string, e stats.ECDF) Series {
	xs, ys := e.Points()
	return Series{Name: name, X: xs, Y: ys}
}

// CDFPlot renders one or more CDF series as an ASCII line plot of the given
// character dimensions. Each series is drawn with its own glyph.
func CDFPlot(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Common x-range across series.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.X {
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
		}
	}
	if math.IsInf(xmin, 0) || xmin == xmax {
		xmax = xmin + 1
	}

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := int(s.Y[i] * float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			canvas[height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r, line := range canvas {
		yVal := float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%5s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%5s  %-10.3g%*s%10.3g\n", "", xmin, width-20, "", xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "%5s  %c %s\n", "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// WriteGridCSV exports a grid as "x,y,value" rows with a header.
func WriteGridCSV(w io.Writer, g *stats.Grid, xName, yName, vName string) error {
	if _, err := fmt.Fprintf(w, "%s,%s,%s\n", xName, yName, vName); err != nil {
		return err
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if _, err := fmt.Fprintf(w, "%g,%g,%g\n", g.X(i), g.Y(j), g.At(i, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSeriesCSV exports aligned series as CSV: the x column followed by one
// column per series. Series are re-sampled onto the union of x values via
// step interpolation (correct for CDFs).
//
// Rows are rendered into one reused buffer with strconv.AppendFloat, whose
// 'g'/-1 form produces exactly the bytes of fmt's %g — this renderer used
// to dominate Fig. 11's allocation profile, and the rewrite is pinned
// byte-identical by the figure golden tests.
func WriteSeriesCSV(w io.Writer, xName string, series ...Series) error {
	// Union of x values: concatenate, sort, dedupe in place.
	total := 0
	for _, s := range series {
		total += len(s.X)
	}
	xs := make([]float64, 0, total)
	for _, s := range series {
		xs = append(xs, s.X...)
	}
	sort.Float64s(xs)
	if len(xs) > 1 {
		uniq := xs[:1]
		for _, x := range xs[1:] {
			if x != uniq[len(uniq)-1] {
				uniq = append(uniq, x)
			}
		}
		xs = uniq
	}

	header := xName
	for _, s := range series {
		header += "," + s.Name
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, x := range xs {
		buf = strconv.AppendFloat(buf[:0], x, 'g', -1, 64)
		for _, s := range series {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, stepAt(s, x), 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// stepAt evaluates a series at x with left-continuous step interpolation:
// the y of the largest series-x not exceeding x, else 0.
func stepAt(s Series, x float64) float64 {
	// Series X values are sorted (they come from ECDF.Points); find the
	// last index with X[i] <= x.
	i := sort.SearchFloat64s(s.X, x)
	for i < len(s.X) && s.X[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return s.Y[i-1]
}
