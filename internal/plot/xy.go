package plot

import (
	"fmt"
	"math"
	"strings"
)

// XYPlotSVG renders arbitrary x→y series as an SVG line plot with
// auto-scaled axes — used for the capacity-region figure, where the axes
// are rates rather than probabilities.
func XYPlotSVG(title, xLabel, yLabel string, series ...Series) string {
	const (
		plotW  = 420
		plotH  = 320
		margin = 64
		titleH = 26
	)
	legendH := 18*len(series) + 8
	w := plotW + 2*margin
	h := titleH + plotH + 48 + legendH

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if math.IsInf(xmin, 0) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(titleH) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="17" font-size="14">%s</text>`+"\n", margin, svgEscape(title))
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888"/>`+"\n",
		margin, titleH, plotW, plotH)

	// Axis extremes.
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", margin, titleH+plotH+16, xmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin+plotW, titleH+plotH+16, xmax)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", margin-6, py(ymin)+4, ymin)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", margin-6, py(ymax)+4, ymax)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", margin+plotW/2, titleH+plotH+32, svgEscape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		titleH+plotH/2, titleH+plotH/2, svgEscape(yLabel))

	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		color := seriesColors[si%len(seriesColors)]
		if len(s.X) == 1 {
			// A single point renders as a marker.
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", px(s.X[0]), py(s.Y[0]), color)
		} else {
			var path strings.Builder
			fmt.Fprintf(&path, "M %.1f %.1f", px(s.X[0]), py(s.Y[0]))
			for i := 1; i < len(s.X); i++ {
				fmt.Fprintf(&path, " L %.1f %.1f", px(s.X[i]), py(s.Y[i]))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path.String(), color)
		}
		ly := titleH + plotH + 44 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			margin, ly, margin+24, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", margin+30, ly+4, svgEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
