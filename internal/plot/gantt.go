package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GanttBar is one transmission in a schedule timeline (the visual form of
// the paper's Fig. 10 illustrations).
type GanttBar struct {
	// Row labels the lane (typically a client name).
	Row string
	// Start and End bound the bar in schedule-time units.
	Start, End float64
	// Label is drawn inside the bar when it fits.
	Label string
	// Kind selects the bar colour: "sic", "serial", "solo", or "" (default).
	Kind string
}

var ganttColors = map[string]string{
	"sic":    "#2ca02c",
	"serial": "#1f77b4",
	"solo":   "#9467bd",
	"":       "#7f7f7f",
}

// GanttSVG renders transmission bars grouped into labelled lanes.
func GanttSVG(title string, bars []GanttBar) string {
	const (
		laneH  = 26
		barH   = 18
		leftW  = 90
		plotW  = 520
		titleH = 26
		axisH  = 26
	)
	// Lane order: first appearance.
	var rows []string
	rowIdx := map[string]int{}
	for _, b := range bars {
		if _, ok := rowIdx[b.Row]; !ok {
			rowIdx[b.Row] = len(rows)
			rows = append(rows, b.Row)
		}
	}
	tmax := 0.0
	for _, b := range bars {
		if b.End > tmax {
			tmax = b.End
		}
	}
	if tmax <= 0 {
		tmax = 1
	}
	px := func(t float64) float64 { return leftW + t/tmax*plotW }

	h := titleH + laneH*len(rows) + axisH
	w := leftW + plotW + 20
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%d" y="17" font-size="14">%s</text>`+"\n", 8, svgEscape(title))

	for ri, row := range rows {
		y := titleH + ri*laneH
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", leftW-8, y+barH-4, svgEscape(row))
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
			leftW, y+laneH-3, leftW+plotW, y+laneH-3)
	}
	// Bars, sorted for deterministic output.
	sorted := append([]GanttBar(nil), bars...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return rowIdx[sorted[i].Row] < rowIdx[sorted[j].Row]
		}
		return sorted[i].Start < sorted[j].Start
	})
	for _, b := range sorted {
		if b.End <= b.Start {
			continue
		}
		color, ok := ganttColors[b.Kind]
		if !ok {
			color = ganttColors[""]
		}
		y := titleH + rowIdx[b.Row]*laneH
		x0, x1 := px(b.Start), px(b.End)
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.85" stroke="#333" stroke-width="0.5"/>`+"\n",
			x0, y, math.Max(x1-x0, 1), barH, color)
		if b.Label != "" && x1-x0 > 7*float64(len(b.Label)) {
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" fill="white">%s</text>`+"\n", x0+4, y+barH-5, svgEscape(b.Label))
		}
	}
	// Time axis.
	axisY := titleH + laneH*len(rows) + 12
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#888"/>`+"\n", leftW, axisY, leftW+plotW, axisY)
	fmt.Fprintf(&sb, `<text x="%d" y="%d">0</text>`+"\n", leftW, axisY+12)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", leftW+plotW, axisY+12, tmax)
	sb.WriteString("</svg>\n")
	return sb.String()
}
