package plot

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// This file renders figures as standalone SVG documents — the viewable
// counterpart of the ASCII renderings, still with no dependencies.

// svgEscape guards text nodes.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// heatColor maps a normalised value in [0,1] to a dark-to-light colour ramp
// matching the paper's "lighter = higher" convention.
func heatColor(v float64) string {
	if math.IsNaN(v) {
		return "#ff00ff"
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Deep blue → teal → pale yellow.
	r := int(20 + 235*v)
	g := int(24 + 220*v)
	b := int(72 + 130*(1-math.Abs(v-0.35)))
	if b > 255 {
		b = 255
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// HeatmapSVG renders the grid as an SVG heatmap with axes and a value ramp.
func HeatmapSVG(g *stats.Grid, title, xLabel, yLabel string) string {
	const (
		cell   = 6
		margin = 60
		rampW  = 18
		titleH = 28
		labelH = 36
	)
	w := margin + g.NX*cell + 2*rampW + margin
	h := titleH + g.NY*cell + labelH + 20

	lo, hi := g.MinMax()
	span := hi - lo
	norm := func(v float64) float64 {
		if span <= 0 {
			return 0.5
		}
		return (v - lo) / span
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s</text>`+"\n", margin, svgEscape(title))

	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			x := margin + i*cell
			y := titleH + (g.NY-1-j)*cell
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				x, y, cell, cell, heatColor(norm(g.At(i, j))))
		}
	}

	// Axes labels (corners only — the CSV carries full resolution).
	plotBottom := titleH + g.NY*cell
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", margin-4, plotBottom+14, g.X(0))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin+g.NX*cell, plotBottom+14, g.X(g.NX-1))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", margin+g.NX*cell/2, plotBottom+30, svgEscape(xLabel))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin-6, plotBottom, g.Y(0))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin-6, titleH+10, g.Y(g.NY-1))
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		titleH+g.NY*cell/2, titleH+g.NY*cell/2, svgEscape(yLabel))

	// Value ramp.
	rampX := margin + g.NX*cell + 12
	steps := 32
	stepH := float64(g.NY*cell) / float64(steps)
	for s := 0; s < steps; s++ {
		v := 1 - float64(s)/float64(steps-1)
		y := float64(titleH) + float64(s)*stepH
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"/>`+"\n",
			rampX, y, rampW, stepH+0.5, heatColor(v))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", rampX+rampW+4, titleH+10, hi)
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", rampX+rampW+4, plotBottom, lo)

	b.WriteString("</svg>\n")
	return b.String()
}

// seriesColors is a categorical palette for line plots.
var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// CDFPlotSVG renders CDF series as an SVG step plot with a legend.
func CDFPlotSVG(title string, series ...Series) string {
	const (
		plotW  = 480
		plotH  = 280
		margin = 56
		titleH = 26
	)
	legendH := 18*len(series) + 8
	w := plotW + 2*margin
	h := titleH + plotH + 44 + legendH

	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.X {
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
		}
	}
	if math.IsInf(xmin, 0) {
		xmin, xmax = 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(titleH) + (1-y)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="17" font-size="14">%s</text>`+"\n", margin, svgEscape(title))

	// Frame and gridlines at quartiles.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888"/>`+"\n",
		margin, titleH, plotW, plotH)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			margin, py(q), margin+plotW, py(q))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.2f</text>`+"\n", margin-6, py(q)+4, q)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">1.00</text>`+"\n", margin-6, py(1)+4)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">0.00</text>`+"\n", margin-6, py(0)+4)
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", margin, titleH+plotH+16, xmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin+plotW, titleH+plotH+16, xmax)

	var path []byte
	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		color := seriesColors[si%len(seriesColors)]
		xsv, ysv := s.X, s.Y
		if !sort.Float64sAreSorted(xsv) {
			// ECDF-sourced series arrive sorted; sort a copy otherwise.
			xsv = append([]float64(nil), s.X...)
			ysv = append([]float64(nil), s.Y...)
			sort.Sort(xyPoints{xsv, ysv})
		}
		// The path is built into a reused byte buffer; AppendFloat with
		// 'f'/1 renders exactly fmt's %.1f, keeping the bytes identical to
		// the former Fprintf-per-point version.
		path = append(path[:0], "M "...)
		prevY := 0.0
		path = appendPathPoint(path, px(xsv[0]), py(prevY))
		for i := range xsv {
			// Step: horizontal to the new x at the old y, then vertical.
			path = append(path, " L "...)
			path = appendPathPoint(path, px(xsv[i]), py(prevY))
			path = append(path, " L "...)
			path = appendPathPoint(path, px(xsv[i]), py(ysv[i]))
			prevY = ysv[i]
		}
		path = append(path, " L "...)
		path = appendPathPoint(path, px(xmax), py(prevY))
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path, color)

		ly := titleH + plotH + 34 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			margin, ly, margin+24, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", margin+30, ly+4, svgEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// appendPathPoint appends "X Y" with one decimal place each, byte-equal to
// fmt.Sprintf("%.1f %.1f", x, y).
func appendPathPoint(buf []byte, x, y float64) []byte {
	buf = strconv.AppendFloat(buf, x, 'f', 1, 64)
	buf = append(buf, ' ')
	return strconv.AppendFloat(buf, y, 'f', 1, 64)
}

// xyPoints sorts parallel x/y slices by x.
type xyPoints struct{ x, y []float64 }

func (p xyPoints) Len() int           { return len(p.x) }
func (p xyPoints) Less(i, j int) bool { return p.x[i] < p.x[j] }
func (p xyPoints) Swap(i, j int) {
	p.x[i], p.x[j] = p.x[j], p.x[i]
	p.y[i], p.y[j] = p.y[j], p.y[i]
}
