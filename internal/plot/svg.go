package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// This file renders figures as standalone SVG documents — the viewable
// counterpart of the ASCII renderings, still with no dependencies.

// svgEscape guards text nodes.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// heatColor maps a normalised value in [0,1] to a dark-to-light colour ramp
// matching the paper's "lighter = higher" convention.
func heatColor(v float64) string {
	if math.IsNaN(v) {
		return "#ff00ff"
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Deep blue → teal → pale yellow.
	r := int(20 + 235*v)
	g := int(24 + 220*v)
	b := int(72 + 130*(1-math.Abs(v-0.35)))
	if b > 255 {
		b = 255
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// HeatmapSVG renders the grid as an SVG heatmap with axes and a value ramp.
func HeatmapSVG(g *stats.Grid, title, xLabel, yLabel string) string {
	const (
		cell   = 6
		margin = 60
		rampW  = 18
		titleH = 28
		labelH = 36
	)
	w := margin + g.NX*cell + 2*rampW + margin
	h := titleH + g.NY*cell + labelH + 20

	lo, hi := g.MinMax()
	span := hi - lo
	norm := func(v float64) float64 {
		if span <= 0 {
			return 0.5
		}
		return (v - lo) / span
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s</text>`+"\n", margin, svgEscape(title))

	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			x := margin + i*cell
			y := titleH + (g.NY-1-j)*cell
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				x, y, cell, cell, heatColor(norm(g.At(i, j))))
		}
	}

	// Axes labels (corners only — the CSV carries full resolution).
	plotBottom := titleH + g.NY*cell
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", margin-4, plotBottom+14, g.X(0))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin+g.NX*cell, plotBottom+14, g.X(g.NX-1))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", margin+g.NX*cell/2, plotBottom+30, svgEscape(xLabel))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin-6, plotBottom, g.Y(0))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin-6, titleH+10, g.Y(g.NY-1))
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		titleH+g.NY*cell/2, titleH+g.NY*cell/2, svgEscape(yLabel))

	// Value ramp.
	rampX := margin + g.NX*cell + 12
	steps := 32
	stepH := float64(g.NY*cell) / float64(steps)
	for s := 0; s < steps; s++ {
		v := 1 - float64(s)/float64(steps-1)
		y := float64(titleH) + float64(s)*stepH
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"/>`+"\n",
			rampX, y, rampW, stepH+0.5, heatColor(v))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", rampX+rampW+4, titleH+10, hi)
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", rampX+rampW+4, plotBottom, lo)

	b.WriteString("</svg>\n")
	return b.String()
}

// seriesColors is a categorical palette for line plots.
var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// CDFPlotSVG renders CDF series as an SVG step plot with a legend.
func CDFPlotSVG(title string, series ...Series) string {
	const (
		plotW  = 480
		plotH  = 280
		margin = 56
		titleH = 26
	)
	legendH := 18*len(series) + 8
	w := plotW + 2*margin
	h := titleH + plotH + 44 + legendH

	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.X {
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
		}
	}
	if math.IsInf(xmin, 0) {
		xmin, xmax = 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(titleH) + (1-y)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="17" font-size="14">%s</text>`+"\n", margin, svgEscape(title))

	// Frame and gridlines at quartiles.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888"/>`+"\n",
		margin, titleH, plotW, plotH)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			margin, py(q), margin+plotW, py(q))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.2f</text>`+"\n", margin-6, py(q)+4, q)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">1.00</text>`+"\n", margin-6, py(1)+4)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">0.00</text>`+"\n", margin-6, py(0)+4)
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", margin, titleH+plotH+16, xmin)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`+"\n", margin+plotW, titleH+plotH+16, xmax)

	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		color := seriesColors[si%len(seriesColors)]
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, c int) bool { return s.X[idx[a]] < s.X[idx[c]] })
		var path strings.Builder
		prevY := 0.0
		fmt.Fprintf(&path, "M %.1f %.1f", px(s.X[idx[0]]), py(prevY))
		for _, i := range idx {
			// Step: horizontal to the new x at the old y, then vertical.
			fmt.Fprintf(&path, " L %.1f %.1f", px(s.X[i]), py(prevY))
			fmt.Fprintf(&path, " L %.1f %.1f", px(s.X[i]), py(s.Y[i]))
			prevY = s.Y[i]
		}
		fmt.Fprintf(&path, " L %.1f %.1f", px(xmax), py(prevY))
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path.String(), color)

		ly := titleH + plotH + 34 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			margin, ly, margin+24, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", margin+30, ly+4, svgEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
