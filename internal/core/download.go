package core

import (
	"math"

	"repro/internal/phy"
)

// Download models §4.1's "download traffic: two APs to one client" scenario
// (the paper's Fig. 8). Two APs, joined by a wired backbone, each hold one
// packet for the same client; with SIC both can transmit simultaneously.
//
// S1 and S2 are the client's linear received SNRs from the two APs.
type Download struct {
	S1, S2 float64
}

// SerialTime is Eq. (10): without SIC the backbone lets us route *both*
// packets through the stronger AP, so the baseline is two back-to-back
// transmissions at the better rate.
func (d Download) SerialTime(ch phy.Channel, bits float64) float64 {
	best := math.Max(ch.Capacity(d.S1), ch.Capacity(d.S2))
	return 2 * phy.TxTime(bits, best)
}

// SICTime is Eq. (6) applied to this scenario: both APs transmit
// concurrently and the client decodes via SIC.
func (d Download) SICTime(ch phy.Channel, bits float64) float64 {
	return Pair{S1: d.S1, S2: d.S2}.SICTime(ch, bits)
}

// Gain is the ratio plotted in Fig. 8, Eq. (10)/Eq. (6). Because the
// baseline already exploits the stronger AP for both packets, the gain is
// markedly smaller than in the upload case — the paper's point that
// download traffic benefits little from SIC.
func (d Download) Gain(ch phy.Channel, bits float64) float64 {
	return d.SerialTime(ch, bits) / d.SICTime(ch, bits)
}
