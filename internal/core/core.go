// Package core implements the paper's analytical contribution: the
// feasibility and gain equations for two-signal successive interference
// cancellation (SIC) at a MAC-layer vantage point.
//
// It covers
//
//   - Eqs. (1)–(2): the highest feasible bitrates of the stronger and weaker
//     transmitter at a common SIC receiver,
//   - Eqs. (3)–(4): channel capacity without and with SIC,
//   - Eqs. (5)–(6): two-packet completion time without and with SIC for two
//     transmitters sharing a receiver,
//   - Eqs. (7)–(9): completion times for the two-transmitter/two-receiver
//     building blocks (the four cases of the paper's Fig. 5),
//   - Eq. (10): the two-APs-to-one-client download baseline,
//   - §5's enabling techniques: power reduction, multirate packetization and
//     packet packing.
//
// All signal strengths are linear power ratios relative to the noise floor
// (see package phy). All times are in seconds, packet lengths in bits.
package core

import (
	"fmt"
	"math"

	"repro/internal/phy"
)

// Pair is two concurrent transmissions arriving at one SIC-capable receiver
// (the paper's Fig. 1 building block: clients uploading to a common AP).
// S1 and S2 are the linear received SNRs of the two transmitters; order does
// not matter, methods sort internally so that the stronger signal is the one
// decoded first.
type Pair struct {
	S1, S2 float64
}

// ordered returns the pair as (strong, weak).
func (p Pair) ordered() (strong, weak float64) {
	if p.S1 >= p.S2 {
		return p.S1, p.S2
	}
	return p.S2, p.S1
}

// Valid reports whether both received SNRs are positive finite numbers.
func (p Pair) Valid() bool {
	return p.S1 > 0 && p.S2 > 0 &&
		!math.IsInf(p.S1, 1) && !math.IsInf(p.S2, 1) &&
		!math.IsNaN(p.S1) && !math.IsNaN(p.S2)
}

// String renders the pair in dB for human consumption.
func (p Pair) String() string {
	return fmt.Sprintf("Pair(%.1f dB, %.1f dB)", phy.DB(p.S1), phy.DB(p.S2))
}

// FeasibleRates returns the highest bitrates (bits/s) at which the two
// transmitters can send *concurrently* such that the receiver can decode
// both via SIC — Eqs. (1) and (2):
//
//	r_strong = B·log2(1 + S_strong/(S_weak + N0))   (decoded first, under interference)
//	r_weak   = B·log2(1 + S_weak/N0)                (decoded after perfect cancellation)
//
// strongIsS1 reports which member of the pair is the stronger signal.
func (p Pair) FeasibleRates(ch phy.Channel) (rStrong, rWeak float64, strongIsS1 bool) {
	strong, weak := p.ordered()
	rStrong = ch.Capacity(phy.SINR(strong, weak))
	rWeak = ch.Capacity(weak)
	return rStrong, rWeak, p.S1 >= p.S2
}

// CapacityNoSIC is Eq. (3): without SIC only one transmitter is active at a
// time, so the channel capacity is the better of the two individual links.
func (p Pair) CapacityNoSIC(ch phy.Channel) float64 {
	return math.Max(ch.Capacity(p.S1), ch.Capacity(p.S2))
}

// CapacityWithSIC is Eq. (4): the aggregate capacity with SIC, which equals
// the capacity of a single virtual transmitter of power S1+S2:
//
//	C = B·log2(1 + S_strong/(S_weak+N0)) + B·log2(1 + S_weak/N0)
//	  = B·log2(1 + (S1+S2)/N0)
func (p Pair) CapacityWithSIC(ch phy.Channel) float64 {
	return ch.Capacity(p.S1 + p.S2)
}

// CapacityGain is the relative capacity gain C₊SIC/C₋SIC plotted in the
// paper's Fig. 3. It is always ≥ 1 for valid pairs.
func (p Pair) CapacityGain(ch phy.Channel) float64 {
	return p.CapacityWithSIC(ch) / p.CapacityNoSIC(ch)
}

// SerialTime is Eq. (5): the time to deliver one packet of bits from each
// transmitter sequentially, each at its interference-free optimal rate.
func (p Pair) SerialTime(ch phy.Channel, bits float64) float64 {
	return phy.TxTime(bits, ch.Capacity(p.S1)) + phy.TxTime(bits, ch.Capacity(p.S2))
}

// SICTime is Eq. (6): the time to deliver both packets concurrently with
// SIC. Both start together; completion is dictated by the slower of the two
// feasible rates.
func (p Pair) SICTime(ch phy.Channel, bits float64) float64 {
	rs, rw, _ := p.FeasibleRates(ch)
	return math.Max(phy.TxTime(bits, rs), phy.TxTime(bits, rw))
}

// Gain is the MAC-layer gain from SIC for this pair, Z₋SIC/Z₊SIC (the
// quantity shaded in the paper's Fig. 4). Values above 1 mean SIC finishes
// the two packets faster than serialising them.
func (p Pair) Gain(ch phy.Channel, bits float64) float64 {
	return p.SerialTime(ch, bits) / p.SICTime(ch, bits)
}

// SICTimeImperfect generalises SICTime with a residual-cancellation factor
// beta in [0,1]: after subtracting the stronger signal a fraction beta of
// its power remains as interference on the weaker one. beta = 0 is perfect
// cancellation (Eq. 6); beta = 1 is no cancellation at all. The paper's §8
// (citing its reference [13]) notes imperfections sharply cut SIC's
// usefulness; this knob lets the ablation benches quantify that.
func (p Pair) SICTimeImperfect(ch phy.Channel, bits, beta float64) float64 {
	strong, weak := p.ordered()
	rStrong := ch.Capacity(phy.SINR(strong, weak))
	rWeak := ch.Capacity(phy.SINR(weak, beta*strong))
	return math.Max(phy.TxTime(bits, rStrong), phy.TxTime(bits, rWeak))
}

// EqualRateStrongSNR returns the stronger-signal SNR at which SIC gain
// peaks for a given weaker-signal SNR: the point where both feasible rates
// coincide, S_strong/(S_weak+1) = S_weak, i.e. S_strong = S_weak·(S_weak+1)
// ≈ S_weak² for large SNR ("twice in dB", §3.1).
func EqualRateStrongSNR(weak float64) float64 {
	return weak * (weak + 1)
}

// BestPartnerSNR returns the weaker-signal SNR that pairs perfectly with a
// given stronger-signal SNR: the solution of x(x+1) = strong, i.e. the
// positive root x = (−1+√(1+4·strong))/2.
func BestPartnerSNR(strong float64) float64 {
	return (math.Sqrt(1+4*strong) - 1) / 2
}
