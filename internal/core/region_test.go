package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestRegionBounds(t *testing.T) {
	p := Pair{S1: 15, S2: 3}
	r := p.Region(ch)
	b := ch.BandwidthHz
	if !almostEqual(r.C1, 4*b, 1e-9) { // log2(16) = 4
		t.Errorf("C1 = %v, want %v", r.C1, 4*b)
	}
	if !almostEqual(r.C2, 2*b, 1e-9) { // log2(4) = 2
		t.Errorf("C2 = %v, want %v", r.C2, 2*b)
	}
	// CSum = B log2(1+18) < C1+C2.
	if r.CSum >= r.C1+r.C2 {
		t.Errorf("sum bound %v not binding vs %v", r.CSum, r.C1+r.C2)
	}
}

func TestCornersOnDominantFace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		r := p.Region(ch)
		a, b := p.Corners(ch)
		// Both corners achieve the sum capacity exactly (the Eq. 4 identity).
		if !almostEqual(a[0]+a[1], r.CSum, 1e-9) {
			t.Fatalf("corner A misses the sum bound for %v: %v vs %v", p, a[0]+a[1], r.CSum)
		}
		if !almostEqual(b[0]+b[1], r.CSum, 1e-9) {
			t.Fatalf("corner B misses the sum bound for %v: %v vs %v", p, b[0]+b[1], r.CSum)
		}
		// And both are inside the region.
		if !r.Contains(a[0], a[1]) || !r.Contains(b[0], b[1]) {
			t.Fatalf("corner outside region for %v", p)
		}
	}
}

func TestConventionalPointStrictlyInside(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		r := p.Region(ch)
		c := p.ConventionalPoint(ch)
		if !r.Contains(c[0], c[1]) {
			t.Fatalf("conventional point outside region for %v", p)
		}
		// Without SIC the sum rate is strictly below the SIC sum capacity.
		if c[0]+c[1] >= r.CSum {
			t.Fatalf("conventional sum rate %v reaches the SIC bound %v for %v", c[0]+c[1], r.CSum, p)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{C1: 10, C2: 8, CSum: 14}
	cases := []struct {
		r1, r2 float64
		want   bool
	}{
		{0, 0, true},
		{10, 4, true},
		{10, 4.1, false}, // violates sum
		{6, 8, true},
		{11, 0, false}, // violates C1
		{0, 9, false},  // violates C2
		{-1, 0, false},
		{0, -1, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.r1, c.r2); got != c.want {
			t.Errorf("Contains(%v, %v) = %v, want %v", c.r1, c.r2, got, c.want)
		}
	}
}

func TestBoundary(t *testing.T) {
	p := Pair{S1: phy15(), S2: phy3()}
	r := p.Region(ch)
	r1s, r2s := r.Boundary(50)
	if len(r1s) != 50 || len(r2s) != 50 {
		t.Fatalf("boundary lengths %d/%d", len(r1s), len(r2s))
	}
	// r1 increases, r2 decreases (weakly), endpoints pinned.
	if !sort.Float64sAreSorted(r1s) {
		t.Error("r1 samples not sorted")
	}
	for i := 1; i < len(r2s); i++ {
		if r2s[i] > r2s[i-1]+1e-9 {
			t.Fatalf("r2 increased along the boundary at %d", i)
		}
	}
	if r1s[0] != 0 || !almostEqual(r1s[len(r1s)-1], r.C1, 1e-9) {
		t.Error("r1 endpoints wrong")
	}
	// Every boundary point is achievable.
	for i := range r1s {
		if !r.Contains(r1s[i], r2s[i]) {
			t.Fatalf("boundary point %d outside region", i)
		}
	}
	// Degenerate n.
	a, b := r.Boundary(1)
	if len(a) != 2 || len(b) != 2 {
		t.Error("Boundary(1) should clamp to 2 samples")
	}
}

// helpers so the test reads as linear SNRs without magic numbers.
func phy15() float64 { return 15 }
func phy3() float64  { return 3 }
