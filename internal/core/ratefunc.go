package core

import (
	"math"

	"repro/internal/phy"
)

// RateFunc maps a linear SINR to an achievable bitrate in bits/second.
//
// The paper's primary analysis uses the ideal Shannon rate (each packet "at
// the best feasible rate supported by the channel"); its §7 discrete-bitrate
// evaluation replaces the logarithmic terms with the actual 802.11g rates
// observed in experiments. A RateFunc abstracts over both so every gain
// formula can be evaluated under either regime. Implementations must be
// monotone non-decreasing in SINR and return 0 for an unusable channel.
type RateFunc func(sinr float64) float64

// ShannonRate returns the ideal continuous-rate function for a channel.
func ShannonRate(ch phy.Channel) RateFunc {
	return func(sinr float64) float64 { return ch.Capacity(sinr) }
}

// SerialTimeRate is Eq. (5) under an arbitrary rate function.
func (p Pair) SerialTimeRate(rate RateFunc, bits float64) float64 {
	return phy.TxTime(bits, rate(p.S1)) + phy.TxTime(bits, rate(p.S2))
}

// SICTimeRate is Eq. (6) under an arbitrary rate function: the stronger
// signal is decoded under interference, the weaker after cancellation.
func (p Pair) SICTimeRate(rate RateFunc, bits float64) float64 {
	strong, weak := p.ordered()
	rStrong := rate(phy.SINR(strong, weak))
	rWeak := rate(weak)
	return math.Max(phy.TxTime(bits, rStrong), phy.TxTime(bits, rWeak))
}

// GainRate is Z₋SIC/Z₊SIC under an arbitrary rate function, with the serial
// fallback available to the SIC MAC (discrete rates can make concurrency
// strictly worse than serialising, and no sane scheduler would force it).
func (p Pair) GainRate(rate RateFunc, bits float64) float64 {
	serial := p.SerialTimeRate(rate, bits)
	if math.IsInf(serial, 1) {
		return 1 // an unreachable link: no finite baseline, no gain to claim
	}
	sic := math.Min(p.SICTimeRate(rate, bits), serial)
	return serial / sic
}

// SerialTimeRate is the two-receiver serial baseline (Eq. 8) under an
// arbitrary rate function.
func (x Cross) SerialTimeRate(rate RateFunc, bits float64) float64 {
	return phy.TxTime(bits, rate(x.S[0][0])) + phy.TxTime(bits, rate(x.S[1][1]))
}

// ConcurrentTimeRate evaluates Eqs. (7)/(9) under an arbitrary rate
// function. Feasibility is decided by rates rather than raw SINRs: the
// interferer's packet is decodable at the cancelling receiver iff the rate
// the interferer actually uses does not exceed the rate its SINR at that
// receiver supports. This is precisely the §7 "discrete bitrates"
// computation, and degenerates to the SINR conditions under Shannon rates.
//
// Unlike the Shannon-path ConcurrentTime (which mirrors the paper's Fig. 6
// accounting, where CaseA needs no SIC and earns no SIC gain), the
// rate-function path admits CaseA concurrency at interference-limited
// rates: the §7 testbed measured exactly "the bitrate supported from an AP
// to a client under interference from other APs", i.e. capture-based
// concurrency in an SIC deployment with carrier sensing disabled. Under
// discrete rates this is where most of the quantisation slack shows up —
// when the interference does not push the link out of its rate bin,
// concurrency is free.
func (x Cross) ConcurrentTimeRate(rate RateFunc, bits float64) (t float64, ok bool) {
	switch x.Case() {
	case CaseA:
		r1 := rate(phy.SINR(x.S[0][0], x.S[0][1]))
		r2 := rate(phy.SINR(x.S[1][1], x.S[1][0]))
		if r1 <= 0 || r2 <= 0 {
			return math.Inf(1), false
		}
		return math.Max(phy.TxTime(bits, r1), phy.TxTime(bits, r2)), true
	case CaseB:
		// T1 transmits at the rate its own link supports under interference.
		r1 := rate(phy.SINR(x.S[0][0], x.S[0][1]))
		// R2 can decode T1 iff its SINR for T1 supports ≥ that rate.
		if r1 <= 0 || rate(phy.SINR(x.S[1][0], x.S[1][1])) < r1 {
			return math.Inf(1), false
		}
		r2 := rate(x.S[1][1])
		if r2 <= 0 {
			return math.Inf(1), false
		}
		return math.Max(phy.TxTime(bits, r1), phy.TxTime(bits, r2)), true
	case CaseC:
		return x.swapped().ConcurrentTimeRate(rate, bits)
	default: // CaseD
		r1 := rate(x.S[0][0])
		r2 := rate(x.S[1][1])
		if r1 <= 0 || r2 <= 0 {
			return math.Inf(1), false
		}
		if rate(phy.SINR(x.S[1][0], x.S[1][1])) < r1 {
			return math.Inf(1), false
		}
		if rate(phy.SINR(x.S[0][1], x.S[0][0])) < r2 {
			return math.Inf(1), false
		}
		return math.Max(phy.TxTime(bits, r1), phy.TxTime(bits, r2)), true
	}
}

// GainRate is the two-receiver SIC gain under an arbitrary rate function,
// with the serial fallback.
func (x Cross) GainRate(rate RateFunc, bits float64) float64 {
	serial := x.SerialTimeRate(rate, bits)
	if math.IsInf(serial, 1) {
		return 1
	}
	best := serial
	if t, ok := x.ConcurrentTimeRate(rate, bits); ok && t < best {
		best = t
	}
	return serial / best
}

// CrossPackRate applies packet packing under an arbitrary rate function
// (Fig. 14's "with packing" series). Mechanics mirror CrossPack.
func (x Cross) CrossPackRate(rate RateFunc, bits float64) (gain float64, feasible bool) {
	if x.Case() == CaseC {
		return x.swapped().CrossPackRate(rate, bits)
	}
	_, ok := x.ConcurrentTimeRate(rate, bits)
	if !ok {
		return 1, false
	}

	var r1, r2 float64
	switch x.Case() {
	case CaseA:
		r1 = rate(phy.SINR(x.S[0][0], x.S[0][1]))
		r2 = rate(phy.SINR(x.S[1][1], x.S[1][0]))
	case CaseB:
		r1 = rate(phy.SINR(x.S[0][0], x.S[0][1]))
		r2 = rate(x.S[1][1])
	case CaseD:
		r1 = rate(x.S[0][0])
		r2 = rate(x.S[1][1])
	default:
		return 1, false
	}
	t1 := phy.TxTime(bits, r1)
	t2 := phy.TxTime(bits, r2)

	slow, fast := t1, t2
	fastFree, slowFree := rate(x.S[1][1]), rate(x.S[0][0])
	if fast > slow {
		slow, fast = fast, slow
		fastFree, slowFree = rate(x.S[0][0]), rate(x.S[1][1])
	}
	if math.IsInf(slow, 1) || fast <= 0 {
		return 1, false
	}
	n := int(slow / fast)
	if n < 1 {
		n = 1
	}
	packed := math.Max(slow, float64(n)*fast)
	serial := phy.TxTime(bits, slowFree) + float64(n)*phy.TxTime(bits, fastFree)
	g := serial / packed
	if g < 1 {
		return 1, true
	}
	return g, true
}
