package core

import (
	"math"

	"repro/internal/phy"
)

// This file implements §5 of the paper: the link-layer techniques that pull
// a client pair toward the SIC sweet spot where both transmitters achieve
// the same feasible bitrate.

// PowerReduction is the outcome of the §5.2 optimisation: scale the weaker
// client's transmit power by Scale ∈ (0, 1] so that (when possible) the two
// SIC-feasible bitrates are equal, minimising the joint completion time.
type PowerReduction struct {
	// Scale is the multiplicative power reduction applied to the weaker
	// transmitter's received SNR. 1 means no reduction helps.
	Scale float64
	// Pair is the resulting pair after scaling.
	Pair Pair
}

// PowerReduce computes the optimal power reduction for the pair.
//
// When the stronger transmitter is the bottleneck (its interference-limited
// rate is below the weaker's post-cancellation rate — the usual situation
// when the two RSSs are close), shrinking the weaker signal raises the
// stronger's SINR while lowering the weaker's rate; the joint completion
// time is minimised where the two rates meet:
//
//	S_strong/(x+N0) = x/N0  ⇒  x² + x·N0 − N0·S_strong = 0
//	x* = (−1 + √(1+4·S_strong))/2   (with N0 ≡ 1)
//
// If x* ≥ S_weak the weaker client would have to *increase* power, which the
// paper rules out (it would amplify overall channel interference), so the
// pair is returned unchanged. Likewise if the weaker link is already the
// bottleneck, reduction cannot help (§5.4: "if the weaker client has lower
// bitrate, power reduction won't help").
func (p Pair) PowerReduce() PowerReduction {
	strong, weak := p.ordered()
	xStar := BestPartnerSNR(strong)
	if xStar >= weak {
		return PowerReduction{Scale: 1, Pair: Pair{S1: strong, S2: weak}}
	}
	return PowerReduction{Scale: xStar / weak, Pair: Pair{S1: strong, S2: xStar}}
}

// SICTimeWithPowerControl is the joint completion time with SIC after
// applying the optimal §5.2 power reduction. It is never worse than SICTime.
func (p Pair) SICTimeWithPowerControl(ch phy.Channel, bits float64) float64 {
	return p.PowerReduce().Pair.SICTime(ch, bits)
}

// MultirateTime implements §5.3 multirate packetization: during the overlap
// the stronger client is limited to its SIC rate, but once the weaker
// (faster, post-cancellation) client finishes, the remainder of the stronger
// packet is transmitted at its interference-free rate.
//
// Both packets start at t=0. The weaker finishes at t_w = L/r_weak. If the
// stronger has bits left at t_w they drain at B·log2(1+S_strong/N0).
func (p Pair) MultirateTime(ch phy.Channel, bits float64) float64 {
	strong, weak := p.ordered()
	rStrongSIC := ch.Capacity(phy.SINR(strong, weak))
	rWeak := ch.Capacity(weak)
	rStrongFree := ch.Capacity(strong)

	tWeak := phy.TxTime(bits, rWeak)
	if math.IsInf(tWeak, 1) {
		// The weaker link cannot carry the packet at all; the "overlap" never
		// ends, so multirate degenerates to plain SIC.
		return p.SICTime(ch, bits)
	}
	sentInOverlap := rStrongSIC * tWeak
	if sentInOverlap >= bits {
		// The stronger finished within the overlap; the weaker bounds completion.
		return tWeak
	}
	return tWeak + phy.TxTime(bits-sentInOverlap, rStrongFree)
}

// Packing is the outcome of §5.4 packet packing at a common receiver: while
// the slower transmission is on the air, the faster transmitter sends a
// train of back-to-back packets instead of just one.
type Packing struct {
	// Packets is the number of packets delivered by the faster transmitter
	// (≥ 1).
	Packets int
	// Time is the joint completion time for the whole exchange.
	Time float64
}

// Pack computes packet packing for a pair at a common SIC receiver: the
// faster of the two SIC-feasible rates fits as many packets as possible
// under the slower one's airtime (always at least one).
func (p Pair) Pack(ch phy.Channel, bits float64) Packing {
	rs, rw, _ := p.FeasibleRates(ch)
	tStrong := phy.TxTime(bits, rs)
	tWeak := phy.TxTime(bits, rw)
	slow, fast := tStrong, tWeak
	if fast > slow {
		slow, fast = fast, slow
	}
	if math.IsInf(slow, 1) || fast <= 0 {
		return Packing{Packets: 1, Time: math.Max(tStrong, tWeak)}
	}
	n := int(slow / fast)
	if n < 1 {
		n = 1
	}
	return Packing{Packets: n, Time: math.Max(slow, float64(n)*fast)}
}

// PackingGain compares SIC-with-packing against the serial baseline carrying
// the same bit volume: the faster transmitter's extra packets would also
// have to be serialised in the baseline, each at its interference-free rate.
// The result is the ratio of baseline time to packed time (≥ 0; > 1 means
// packing wins).
func (p Pair) PackingGain(ch phy.Channel, bits float64) float64 {
	rs, rw, strongIsS1 := p.FeasibleRates(ch)
	strong, weak := p.ordered()
	_ = strongIsS1
	pk := p.Pack(ch, bits)

	// Which transmitter supplied the extra packets? The faster of the two
	// SIC-feasible rates.
	var fastFree, slowFree float64
	if phy.TxTime(bits, rs) <= phy.TxTime(bits, rw) {
		fastFree, slowFree = ch.Capacity(strong), ch.Capacity(weak)
	} else {
		fastFree, slowFree = ch.Capacity(weak), ch.Capacity(strong)
	}
	serial := phy.TxTime(bits, slowFree) + float64(pk.Packets)*phy.TxTime(bits, fastFree)
	return serial / pk.Time
}

// CrossPack applies packet packing to the two-receiver building block
// (used by the paper's Fig. 11b and Fig. 14 evaluation): when SIC-enabled
// concurrency is feasible, the link with the shorter airtime sends
// back-to-back packets until the longer one finishes.
//
// It returns the per-bit-normalised gain over the serial baseline carrying
// the same packet count, and feasible=false (gain 1) when concurrency is
// impossible, in which case packing cannot be applied either.
func (x Cross) CrossPack(ch phy.Channel, bits float64) (gain float64, feasible bool) {
	tConc, ok := x.ConcurrentTime(ch, bits)
	if !ok || math.IsInf(tConc, 1) {
		return 1, false
	}

	// Per-link airtimes during SIC concurrency.
	var t1, t2 float64
	switch x.Case() {
	case CaseB:
		t1 = phy.TxTime(bits, ch.Capacity(phy.SINR(x.S[0][0], x.S[0][1])))
		t2 = phy.TxTime(bits, ch.Capacity(x.S[1][1]))
	case CaseC:
		return x.swapped().CrossPack(ch, bits)
	case CaseD:
		t1 = phy.TxTime(bits, ch.Capacity(x.S[0][0]))
		t2 = phy.TxTime(bits, ch.Capacity(x.S[1][1]))
	default:
		return 1, false
	}

	slow, fast := t1, t2
	fastFree := ch.Capacity(x.S[1][1])
	slowFree := ch.Capacity(x.S[0][0])
	if fast > slow {
		slow, fast = fast, slow
		fastFree, slowFree = ch.Capacity(x.S[0][0]), ch.Capacity(x.S[1][1])
	}
	n := int(slow / fast)
	if n < 1 {
		n = 1
	}
	packed := math.Max(slow, float64(n)*fast)
	serial := phy.TxTime(bits, slowFree) + float64(n)*phy.TxTime(bits, fastFree)
	g := serial / packed
	if g < 1 {
		// Packing never forces concurrency when serialising is better.
		return 1, true
	}
	return g, true
}
