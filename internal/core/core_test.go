package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phy"
)

var ch = phy.Wifi20MHz

const pktBits = 12000 // 1500-byte packet

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	return diff <= tol || diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// randPair draws a pair with SNRs log-uniform in [0 dB, 50 dB].
func randPair(rng *rand.Rand) Pair {
	return Pair{
		S1: phy.FromDB(rng.Float64() * 50),
		S2: phy.FromDB(rng.Float64() * 50),
	}
}

func TestPairOrdered(t *testing.T) {
	p := Pair{S1: 2, S2: 10}
	s, w := p.ordered()
	if s != 10 || w != 2 {
		t.Errorf("ordered() = (%v, %v), want (10, 2)", s, w)
	}
	_, _, strongIsS1 := p.FeasibleRates(ch)
	if strongIsS1 {
		t.Error("strongIsS1 = true for S2 > S1")
	}
}

func TestPairValid(t *testing.T) {
	cases := []struct {
		p    Pair
		want bool
	}{
		{Pair{1, 1}, true},
		{Pair{0, 1}, false},
		{Pair{1, -1}, false},
		{Pair{math.Inf(1), 1}, false},
		{Pair{math.NaN(), 1}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("%+v.Valid() = %v, want %v", c.p, got, c.want)
		}
	}
}

// Eq. (4) identity: the sum of the two SIC rates equals the capacity of a
// single transmitter with power S1+S2.
func TestCapacityWithSICIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := randPair(rng)
		rs, rw, _ := p.FeasibleRates(ch)
		sum := rs + rw
		joint := p.CapacityWithSIC(ch)
		if !almostEqual(sum, joint, 1e-9) {
			t.Fatalf("identity violated for %v: r_s+r_w = %v, C(S1+S2) = %v", p, sum, joint)
		}
	}
}

// SIC capacity always beats the best individual capacity (Fig. 2's message).
func TestCapacityGainAtLeastOne(t *testing.T) {
	f := func(a, b float64) bool {
		p := Pair{S1: 1 + math.Abs(a), S2: 1 + math.Abs(b)}
		if !p.Valid() {
			return true
		}
		return p.CapacityGain(ch) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The relative capacity gain is bounded by 2 (achieved when both RSSs are
// equal) and approaches it only for similar strengths — Fig. 3's shading.
func TestCapacityGainShape(t *testing.T) {
	// Equal small RSSs give the largest gains.
	low := Pair{S1: phy.FromDB(3), S2: phy.FromDB(3)}
	high := Pair{S1: phy.FromDB(40), S2: phy.FromDB(40)}
	skew := Pair{S1: phy.FromDB(40), S2: phy.FromDB(5)}
	gl, gh, gs := low.CapacityGain(ch), high.CapacityGain(ch), skew.CapacityGain(ch)
	if !(gl > gh) {
		t.Errorf("low-SNR equal pair gain %v should exceed high-SNR equal pair gain %v", gl, gh)
	}
	if !(gh > gs) {
		t.Errorf("equal pair gain %v should exceed skewed pair gain %v", gh, gs)
	}
	if gl > 2 {
		t.Errorf("capacity gain %v exceeds theoretical bound 2", gl)
	}
}

func TestFeasibleRatesKnown(t *testing.T) {
	// S_strong = 15, S_weak = 3 (linear): r_strong = B log2(1+15/4) = B log2(4.75),
	// r_weak = B log2(4) = 2B.
	p := Pair{S1: 15, S2: 3}
	rs, rw, strongIsS1 := p.FeasibleRates(ch)
	if !strongIsS1 {
		t.Error("strongIsS1 should be true")
	}
	wantRS := ch.BandwidthHz * math.Log2(1+15.0/4.0)
	if !almostEqual(rs, wantRS, 1e-9) {
		t.Errorf("rStrong = %v, want %v", rs, wantRS)
	}
	if !almostEqual(rw, 2*ch.BandwidthHz, 1e-9) {
		t.Errorf("rWeak = %v, want %v", rw, 2*ch.BandwidthHz)
	}
}

// The paper's §2.2 remark: to facilitate SIC the stronger transmitter's rate
// may have to be LOWER than the weaker's. Happens when S_s < S_w·(S_w+1).
func TestStrongerCanBeSlower(t *testing.T) {
	p := Pair{S1: phy.FromDB(21), S2: phy.FromDB(20)} // similar RSSs
	rs, rw, _ := p.FeasibleRates(ch)
	if rs >= rw {
		t.Errorf("with similar RSSs the stronger should be slower: rStrong=%v rWeak=%v", rs, rw)
	}
}

func TestSerialAndSICTimeKnown(t *testing.T) {
	// S1 = 3 (C = 2B), S2 = 15 (C = 4B); L = bits.
	p := Pair{S1: 3, S2: 15}
	b := ch.BandwidthHz
	wantSerial := pktBits/(2*b) + pktBits/(4*b)
	if got := p.SerialTime(ch, pktBits); !almostEqual(got, wantSerial, 1e-9) {
		t.Errorf("SerialTime = %v, want %v", got, wantSerial)
	}
	// SIC: strong=15 decoded under weak=3: r_s = B log2(1+15/4); weak at 2B.
	rs := b * math.Log2(1+15.0/4.0)
	wantSIC := math.Max(pktBits/rs, pktBits/(2*b))
	if got := p.SICTime(ch, pktBits); !almostEqual(got, wantSIC, 1e-9) {
		t.Errorf("SICTime = %v, want %v", got, wantSIC)
	}
}

// The gain surface of Fig. 4 peaks on the ridge S_strong = S_weak·(S_weak+1):
// moving the strong SNR off the ridge in either direction cannot increase
// the gain.
func TestGainPeaksAtEqualRates(t *testing.T) {
	for _, weakDB := range []float64{5, 10, 15, 20} {
		weak := phy.FromDB(weakDB)
		ridge := EqualRateStrongSNR(weak)
		gRidge := Pair{S1: ridge, S2: weak}.Gain(ch, pktBits)
		for _, f := range []float64{0.25, 0.5, 2, 4} {
			g := Pair{S1: ridge * f, S2: weak}.Gain(ch, pktBits)
			if g > gRidge+1e-9 {
				t.Errorf("weak=%v dB: gain off ridge (×%v) %v exceeds ridge gain %v", weakDB, f, g, gRidge)
			}
		}
		// On the ridge the two feasible rates coincide.
		rs, rw, _ := Pair{S1: ridge, S2: weak}.FeasibleRates(ch)
		if !almostEqual(rs, rw, 1e-9) {
			t.Errorf("weak=%v dB: ridge rates differ: %v vs %v", weakDB, rs, rw)
		}
	}
}

func TestBestPartnerInvertsEqualRate(t *testing.T) {
	f := func(x float64) bool {
		weak := math.Abs(x)
		if weak == 0 || weak > 1e9 || math.IsNaN(weak) || math.IsInf(weak, 0) {
			return true
		}
		strong := EqualRateStrongSNR(weak)
		return almostEqual(BestPartnerSNR(strong), weak, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// MAC-layer sanity: the SIC gain for a same-receiver pair is at least ~1
// once the serial fallback is considered; SICTime alone can exceed
// SerialTime for very disparate RSSs. (That is the paper's §3.1 insight that
// gains fall off away from the ridge.)
func TestSICSometimesWorseThanSerial(t *testing.T) {
	p := Pair{S1: phy.FromDB(45), S2: phy.FromDB(2)}
	if p.SICTime(ch, pktBits) <= p.SerialTime(ch, pktBits) {
		t.Skip("expected a counterexample pair; model may be more favourable")
	}
}

func TestSICTimeImperfect(t *testing.T) {
	p := Pair{S1: phy.FromDB(30), S2: phy.FromDB(15)}
	perfect := p.SICTimeImperfect(ch, pktBits, 0)
	if !almostEqual(perfect, p.SICTime(ch, pktBits), 1e-12) {
		t.Errorf("beta=0 must equal SICTime: %v vs %v", perfect, p.SICTime(ch, pktBits))
	}
	prev := perfect
	for _, beta := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
		tm := p.SICTimeImperfect(ch, pktBits, beta)
		if tm < prev-1e-12 {
			t.Errorf("completion time must not improve as beta grows: beta=%v: %v < %v", beta, tm, prev)
		}
		prev = tm
	}
}

func TestPowerReduce(t *testing.T) {
	// Similar RSSs: stronger is the bottleneck, reduction should help and
	// equalise the rates.
	p := Pair{S1: phy.FromDB(21), S2: phy.FromDB(20)}
	pr := p.PowerReduce()
	if pr.Scale >= 1 {
		t.Fatalf("similar pair should reduce power, got scale %v", pr.Scale)
	}
	rs, rw, _ := pr.Pair.FeasibleRates(ch)
	if !almostEqual(rs, rw, 1e-9) {
		t.Errorf("after reduction rates should be equal: %v vs %v", rs, rw)
	}
	if got, want := pr.Pair.SICTime(ch, pktBits), p.SICTime(ch, pktBits); got >= want {
		t.Errorf("power control should strictly help here: %v >= %v", got, want)
	}
}

func TestPowerReduceNoOpWhenWeakIsBottleneck(t *testing.T) {
	// Very disparate RSSs: weaker is the bottleneck; no reduction possible.
	p := Pair{S1: phy.FromDB(45), S2: phy.FromDB(3)}
	pr := p.PowerReduce()
	if pr.Scale != 1 {
		t.Errorf("disparate pair must not reduce power, got scale %v", pr.Scale)
	}
}

// Power control never hurts — property over random pairs.
func TestPowerControlNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		withPC := p.SICTimeWithPowerControl(ch, pktBits)
		without := p.SICTime(ch, pktBits)
		if withPC > without+1e-9*without {
			t.Fatalf("power control made %v worse: %v > %v", p, withPC, without)
		}
	}
}

// Power-control scale is always in (0, 1].
func TestPowerReduceScaleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		pr := p.PowerReduce()
		if !(pr.Scale > 0 && pr.Scale <= 1) {
			t.Fatalf("scale out of range for %v: %v", p, pr.Scale)
		}
	}
}

// Multirate packetization never hurts relative to plain SIC.
func TestMultirateNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		mr := p.MultirateTime(ch, pktBits)
		plain := p.SICTime(ch, pktBits)
		if mr > plain+1e-9*plain {
			t.Fatalf("multirate made %v worse: %v > %v", p, mr, plain)
		}
	}
}

// Multirate strictly helps when the stronger client is the bottleneck.
func TestMultirateHelpsBottleneckedStrong(t *testing.T) {
	p := Pair{S1: phy.FromDB(22), S2: phy.FromDB(20)}
	mr := p.MultirateTime(ch, pktBits)
	plain := p.SICTime(ch, pktBits)
	if !(mr < plain) {
		t.Errorf("multirate should strictly help: %v vs %v", mr, plain)
	}
}

// Multirate can never beat the weaker link's own airtime (the weaker packet
// still has to be delivered).
func TestMultirateLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		p := randPair(rng)
		_, weak := p.ordered()
		tWeak := pktBits / ch.Capacity(weak)
		if mr := p.MultirateTime(ch, pktBits); mr < tWeak-1e-9 {
			t.Fatalf("multirate %v beat the weak-link bound %v for %v", mr, tWeak, p)
		}
	}
}

func TestPackBasics(t *testing.T) {
	p := Pair{S1: phy.FromDB(25), S2: phy.FromDB(12)}
	pk := p.Pack(ch, pktBits)
	if pk.Packets < 1 {
		t.Fatalf("Pack must deliver at least one extra-side packet, got %d", pk.Packets)
	}
	if pk.Time < p.SICTime(ch, pktBits)-1e-9 {
		t.Errorf("packing time %v cannot be below plain SIC time %v", pk.Time, p.SICTime(ch, pktBits))
	}
}

// Packing gain is ≥ 1 whenever plain SIC already wins, and the packed
// exchange always carries (1+n) packets in the reported time.
func TestPackingGainReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		g := p.PackingGain(ch, pktBits)
		if math.IsNaN(g) || g < 0 {
			t.Fatalf("bad packing gain %v for %v", g, p)
		}
	}
}

func TestDownloadGainModest(t *testing.T) {
	// Fig. 8's message: the best download gains are modest (≤ ~1.3) and
	// most of the plane is close to 1.
	maxGain := 0.0
	for s1dB := 1.0; s1dB <= 50; s1dB += 1 {
		for s2dB := 1.0; s2dB <= 50; s2dB += 1 {
			d := Download{S1: phy.FromDB(s1dB), S2: phy.FromDB(s2dB)}
			g := d.Gain(ch, pktBits)
			if g > maxGain {
				maxGain = g
			}
		}
	}
	if maxGain > 1.5 {
		t.Errorf("download gain ceiling %v is higher than the paper's 'very little benefit'", maxGain)
	}
	if maxGain < 1.05 {
		t.Errorf("download gain ceiling %v is implausibly flat", maxGain)
	}
}

func TestDownloadSerialUsesStrongerAP(t *testing.T) {
	d := Download{S1: 3, S2: 15}
	want := 2 * pktBits / (4 * ch.BandwidthHz) // both packets via the S=15 AP (C=4B)
	if got := d.SerialTime(ch, pktBits); !almostEqual(got, want, 1e-9) {
		t.Errorf("SerialTime = %v, want %v", got, want)
	}
}

// Upload gain (same pair) must always be at least the download gain: the
// download baseline is stronger (both packets through the better AP).
func TestUploadGainDominatesDownload(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		up := p.Gain(ch, pktBits)
		down := Download{S1: p.S1, S2: p.S2}.Gain(ch, pktBits)
		if down > up+1e-9 {
			t.Fatalf("download gain %v exceeds upload gain %v for %v", down, up, p)
		}
	}
}

// PowerReduce is idempotent: reducing an already-reduced pair is a no-op.
func TestPowerReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		once := p.PowerReduce()
		twice := once.Pair.PowerReduce()
		if math.Abs(twice.Scale-1) > 1e-9 {
			t.Fatalf("second reduction changed %v: scale %v", once.Pair, twice.Scale)
		}
	}
}

// The techniques commute with pair-member relabeling.
func TestTechniquesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for i := 0; i < 2000; i++ {
		p := randPair(rng)
		q := Pair{S1: p.S2, S2: p.S1}
		if a, b := p.SICTime(ch, pktBits), q.SICTime(ch, pktBits); !almostEqual(a, b, 1e-12) {
			t.Fatalf("SICTime asymmetric: %v vs %v", a, b)
		}
		if a, b := p.MultirateTime(ch, pktBits), q.MultirateTime(ch, pktBits); !almostEqual(a, b, 1e-12) {
			t.Fatalf("MultirateTime asymmetric: %v vs %v", a, b)
		}
		if a, b := p.SICTimeWithPowerControl(ch, pktBits), q.SICTimeWithPowerControl(ch, pktBits); !almostEqual(a, b, 1e-12) {
			t.Fatalf("power control asymmetric: %v vs %v", a, b)
		}
		if a, b := p.PackingGain(ch, pktBits), q.PackingGain(ch, pktBits); !almostEqual(a, b, 1e-12) {
			t.Fatalf("packing asymmetric: %v vs %v", a, b)
		}
	}
}

// SICTimeImperfect interpolates sensibly: beta=1 equals treating the strong
// signal as pure interference for the weak decode.
func TestSICTimeImperfectEndpoint(t *testing.T) {
	p := Pair{S1: phy.FromDB(28), S2: phy.FromDB(14)}
	strong, weak := p.ordered()
	rStrong := ch.Capacity(phy.SINR(strong, weak))
	rWeakNoCancel := ch.Capacity(phy.SINR(weak, strong))
	want := math.Max(pktBits/rStrong, pktBits/rWeakNoCancel)
	if got := p.SICTimeImperfect(ch, pktBits, 1); !almostEqual(got, want, 1e-12) {
		t.Errorf("beta=1 time %v, want %v", got, want)
	}
}
