package core

import (
	"math"

	"repro/internal/phy"
)

// Region is the two-user multiple-access capacity region the paper's §2
// builds on (its reference [12], Tse & Viswanath): the pentagon
//
//	R1 ≤ B·log2(1 + S1/N0)
//	R2 ≤ B·log2(1 + S2/N0)
//	R1 + R2 ≤ B·log2(1 + (S1+S2)/N0)
//
// SIC achieves the two corner points of the dominant face; time-sharing
// between them reaches every point on it. Conventional decoding (treating
// the other user as noise) reaches only the interior point
// (C(S1/(S2+N0)), C(S2/(S1+N0))).
type Region struct {
	// C1 and C2 are the single-user capacity bounds (bits/s).
	C1, C2 float64
	// CSum is the sum-rate bound (bits/s).
	CSum float64
}

// Region computes the capacity region of the pair over a channel.
func (p Pair) Region(ch phy.Channel) Region {
	return Region{
		C1:   ch.Capacity(p.S1),
		C2:   ch.Capacity(p.S2),
		CSum: p.CapacityWithSIC(ch),
	}
}

// Contains reports whether the rate pair (r1, r2) is achievable. The
// comparison uses a relative tolerance so corner points computed through
// different formulas (which agree only to floating-point precision at
// hundreds of Mbit/s) are classified as inside.
func (r Region) Contains(r1, r2 float64) bool {
	tol := func(bound float64) float64 { return 1e-9 * math.Max(1, bound) }
	return r1 >= 0 && r2 >= 0 &&
		r1 <= r.C1+tol(r.C1) && r2 <= r.C2+tol(r.C2) &&
		r1+r2 <= r.CSum+tol(r.CSum)
}

// Corners returns the two SIC corner points of the dominant face.
//
// cornerA decodes user 1 first (user 1 suffers user 2's interference, user
// 2 rides clean after cancellation); cornerB is the opposite order. For a
// pair p over channel ch these are exactly Eqs. (1)-(2) of the paper and
// their mirror.
func (p Pair) Corners(ch phy.Channel) (a, b [2]float64) {
	a = [2]float64{
		ch.Capacity(phy.SINR(p.S1, p.S2)), // user 1 decoded under interference
		ch.Capacity(p.S2),                 // user 2 after cancellation
	}
	b = [2]float64{
		ch.Capacity(p.S1),
		ch.Capacity(phy.SINR(p.S2, p.S1)),
	}
	return a, b
}

// ConventionalPoint is the rate pair without SIC when both transmit
// concurrently and each receiver-side decode treats the other signal as
// noise.
func (p Pair) ConventionalPoint(ch phy.Channel) [2]float64 {
	return [2]float64{
		ch.Capacity(phy.SINR(p.S1, p.S2)),
		ch.Capacity(phy.SINR(p.S2, p.S1)),
	}
}

// Boundary samples n points of the region's outer boundary for plotting,
// walking R1 from 0 to C1 and reporting the max achievable R2 at each R1.
func (r Region) Boundary(n int) (r1s, r2s []float64) {
	if n < 2 {
		n = 2
	}
	r1s = make([]float64, n)
	r2s = make([]float64, n)
	for i := 0; i < n; i++ {
		r1 := r.C1 * float64(i) / float64(n-1)
		r2 := math.Min(r.C2, r.CSum-r1)
		if r2 < 0 {
			r2 = 0
		}
		r1s[i] = r1
		r2s[i] = r2
	}
	return r1s, r2s
}
