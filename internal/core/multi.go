package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/phy"
)

// This file implements the generalisations the paper sketches as future
// work: K-signal successive cancellation chains and §5.4's "more generic
// version of packet packing ... multiple higher bitrate transmissions from
// different clients in parallel with a single lower bitrate transmission".

// ErrNoSignals is returned for empty signal sets.
var ErrNoSignals = errors.New("core: no signals")

// ChainRates returns, for K concurrent transmitters at a common receiver,
// the highest bitrates decodable by a K-stage SIC chain (strongest first,
// perfect cancellation):
//
//	r_k = B·log2(1 + S_k / (Σ_{j>k} S_j + N0))
//
// rates[i] corresponds to snrs[i] (the caller's order); the decode order is
// by descending SNR. The sum of the returned rates equals the K-user sum
// capacity B·log2(1+ΣS/N0) — the Eq. (4) identity generalised.
func ChainRates(ch phy.Channel, snrs []float64) ([]float64, error) {
	if len(snrs) == 0 {
		return nil, ErrNoSignals
	}
	for _, s := range snrs {
		if !(s > 0) || math.IsInf(s, 1) || math.IsNaN(s) {
			return nil, errInvalidChainSNR
		}
	}
	idx := make([]int, len(snrs))
	for i := range idx {
		idx[i] = i
	}
	// Decode order is pinned: descending SNR with ascending input index on
	// exact ties. A bare ">" comparator left tied signals in sort.Slice's
	// unspecified order, so two runs (or Go versions) could assign the tied
	// transmitters' rates to different indices.
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := snrs[idx[a]], snrs[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})

	rates := make([]float64, len(snrs))
	var weaker float64
	for _, s := range snrs {
		weaker += s
	}
	for _, i := range idx {
		weaker -= snrs[i]
		rates[i] = ch.Capacity(phy.SINR(snrs[i], weaker))
	}
	return rates, nil
}

// maxChainInline bounds the chain size ChainTime handles entirely on the
// stack. The triple scheduler evaluates K ≤ 3 chains O(n³) times per
// snapshot, so this path must not allocate.
const maxChainInline = 8

var errInvalidChainSNR = errors.New("core: invalid SNR in chain")

// ChainTime is the completion time of one packet from each of K concurrent
// transmitters through a K-stage SIC chain: all start together, completion
// is bounded by the slowest feasible rate.
//
// For chains up to maxChainInline signals this runs allocation-free with
// the exact arithmetic of ChainRates — same summation and subtraction
// order, so the result is bit-identical to reducing ChainRates (the
// property test in multi_test.go pins this).
func ChainTime(ch phy.Channel, bits float64, snrs []float64) (float64, error) {
	n := len(snrs)
	if n == 0 {
		return 0, ErrNoSignals
	}
	if n > maxChainInline {
		rates, err := ChainRates(ch, snrs)
		if err != nil {
			return 0, err
		}
		worst := 0.0
		for _, r := range rates {
			if t := phy.TxTime(bits, r); t > worst {
				worst = t
			}
		}
		return worst, nil
	}
	var total float64
	for _, s := range snrs {
		if !(s > 0) || math.IsInf(s, 1) || math.IsNaN(s) {
			return 0, errInvalidChainSNR
		}
		total += s
	}
	// Insertion sort into decode order: descending SNR, stable so exact
	// ties keep ascending input index — the same pinned order ChainRates
	// uses.
	var ord [maxChainInline]int
	for i := 0; i < n; i++ {
		j := i
		for ; j > 0; j-- {
			if snrs[ord[j-1]] >= snrs[i] {
				break
			}
			ord[j] = ord[j-1]
		}
		ord[j] = i
	}
	worst := 0.0
	weaker := total
	for k := 0; k < n; k++ {
		s := snrs[ord[k]]
		weaker -= s
		r := ch.Capacity(phy.SINR(s, weaker))
		if t := phy.TxTime(bits, r); t > worst {
			worst = t
		}
	}
	return worst, nil
}

// GenericPacking is the outcome of the §5.4 generic packer.
type GenericPacking struct {
	// Anchor indexes the slow transmission that spans the slot.
	Anchor int
	// Parallel lists the other transmitters that fit packets inside the
	// anchor's airtime, with how many packets each delivers.
	Parallel []PackedTrain
	// Time is the slot's completion time.
	Time float64
	// Bits is the total payload delivered in the slot.
	Bits float64
}

// PackedTrain is one transmitter's back-to-back packet train inside a slot.
type PackedTrain struct {
	// Index identifies the transmitter in the caller's SNR slice.
	Index int
	// Packets delivered (≥ 1).
	Packets int
	// Rate used for the train.
	Rate float64
}

// PackGeneric builds a §5.4 generic packing slot: the weakest-rate
// transmitter anchors the slot with one packet, and every other transmitter
// that the SIC chain can decode sends as many packets as fit within the
// anchor's airtime. Rates are the K-chain rates, so every concurrent signal
// remains decodable throughout the overlap (the conservative regime; the
// paper notes synchronisation limits make even this "difficult today").
func PackGeneric(ch phy.Channel, bits float64, snrs []float64) (GenericPacking, error) {
	rates, err := ChainRates(ch, snrs)
	if err != nil {
		return GenericPacking{}, err
	}
	// Anchor: the slowest feasible rate (it spans the slot).
	anchor := 0
	for i, r := range rates {
		if r <= 0 {
			return GenericPacking{}, errors.New("core: chain has an undecodable signal")
		}
		if phy.TxTime(bits, r) > phy.TxTime(bits, rates[anchor]) {
			anchor = i
		}
	}
	slot := phy.TxTime(bits, rates[anchor])
	gp := GenericPacking{Anchor: anchor, Time: slot, Bits: bits}
	for i, r := range rates {
		if i == anchor {
			continue
		}
		per := phy.TxTime(bits, r)
		n := int(slot / per)
		if n < 1 {
			n = 1 // at least the one packet the slot was built for
		}
		if float64(n)*per > slot {
			// A train that outruns the anchor extends the slot; keep the
			// anchor authoritative by trimming the train.
			n = int(slot / per)
			if n < 1 {
				n = 1
				if per > gp.Time {
					gp.Time = per
				}
			}
		}
		gp.Parallel = append(gp.Parallel, PackedTrain{Index: i, Packets: n, Rate: r})
		gp.Bits += float64(n) * bits
	}
	return gp, nil
}

// GenericPackingGain compares the packed slot against serialising the same
// bit volume, every packet at its sender's interference-free rate.
func GenericPackingGain(ch phy.Channel, bits float64, snrs []float64) (float64, error) {
	gp, err := PackGeneric(ch, bits, snrs)
	if err != nil {
		return 0, err
	}
	serial := phy.TxTime(bits, ch.Capacity(snrs[gp.Anchor]))
	for _, tr := range gp.Parallel {
		serial += float64(tr.Packets) * phy.TxTime(bits, ch.Capacity(snrs[tr.Index]))
	}
	if gp.Time <= 0 {
		return 0, errors.New("core: degenerate packing slot")
	}
	g := serial / gp.Time
	if g < 1 {
		// Serialising is always available; generic packing is opt-in.
		return 1, nil
	}
	return g, nil
}
