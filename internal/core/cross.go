package core

import (
	"fmt"
	"math"

	"repro/internal/phy"
)

// Cross is the two-transmitter, two-receiver building block of the paper's
// §3.2 (Fig. 5): transmitter T1 sends to receiver R1 while T2 sends to R2.
//
// S[j][i] is the linear received SNR of transmitter i at receiver j, matching
// the paper's S_j^i notation (zero-indexed): S[0][0] is T1 at its own
// receiver R1, S[0][1] is T2's interference at R1, and so on.
type Cross struct {
	S [2][2]float64
}

// Case identifies which of the four interference patterns of the paper's
// Fig. 5 a topology falls into.
type Case int

const (
	// CaseA (Fig. 5a): each receiver's signal of interest is the stronger
	// one. SIC is not needed.
	CaseA Case = iota
	// CaseB (Fig. 5b): R1 is fine, R2 suffers stronger interference from T1
	// and needs SIC.
	CaseB
	// CaseC (Fig. 5c): mirror image of CaseB — R1 needs SIC.
	CaseC
	// CaseD (Fig. 5d): both receivers need SIC.
	CaseD
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseA:
		return "A(no SIC needed)"
	case CaseB:
		return "B(SIC at R2)"
	case CaseC:
		return "C(SIC at R1)"
	case CaseD:
		return "D(SIC at both)"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// Valid reports whether all four received SNRs are positive finite numbers.
func (x Cross) Valid() bool {
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			s := x.S[j][i]
			if !(s > 0) || math.IsInf(s, 1) || math.IsNaN(s) {
				return false
			}
		}
	}
	return true
}

// Case classifies the topology per Fig. 5. Ties count as "signal of interest
// is stronger", i.e. no SIC needed at that receiver.
func (x Cross) Case() Case {
	r1NeedsSIC := x.S[0][0] < x.S[0][1]
	r2NeedsSIC := x.S[1][1] < x.S[1][0]
	switch {
	case !r1NeedsSIC && !r2NeedsSIC:
		return CaseA
	case !r1NeedsSIC && r2NeedsSIC:
		return CaseB
	case r1NeedsSIC && !r2NeedsSIC:
		return CaseC
	default:
		return CaseD
	}
}

// swapped returns the topology with the roles of the two links exchanged,
// mapping CaseC onto CaseB.
func (x Cross) swapped() Cross {
	return Cross{S: [2][2]float64{
		{x.S[1][1], x.S[1][0]},
		{x.S[0][1], x.S[0][0]},
	}}
}

// SICFeasible reports whether SIC-enabled concurrent transmission of both
// packets is possible, applying the per-case conditions derived in §3.2:
//
//   - CaseA: SIC is not needed; this method reports false because no
//     cancellation takes place (use ConcurrentFeasible for plain capture).
//   - CaseB: R2 must decode T1's packet, which T1 transmits at the optimal
//     rate for its own link, so S₂¹/(S₂²+N0) ≥ S₁¹/(S₁²+N0) is required.
//   - CaseC: mirror of CaseB.
//   - CaseD: both receivers must decode the interferer transmitted at its
//     interference-free rate: S₂¹/(S₂²+N0) ≥ S₁¹/N0 and S₁²/(S₁¹+N0) ≥ S₂²/N0.
func (x Cross) SICFeasible() bool {
	switch x.Case() {
	case CaseA:
		return false
	case CaseB:
		// Interferer T1's SINR at R2 must support the rate T1 uses to R1.
		return phy.SINR(x.S[1][0], x.S[1][1]) >= phy.SINR(x.S[0][0], x.S[0][1])
	case CaseC:
		return x.swapped().SICFeasible()
	default: // CaseD
		condR2 := phy.SINR(x.S[1][0], x.S[1][1]) >= x.S[0][0]
		condR1 := phy.SINR(x.S[0][1], x.S[0][0]) >= x.S[1][1]
		return condR2 && condR1
	}
}

// SerialTime is the baseline Eq. (8): both packets transmitted sequentially,
// each link at its interference-free optimal rate.
func (x Cross) SerialTime(ch phy.Channel, bits float64) float64 {
	return phy.TxTime(bits, ch.Capacity(x.S[0][0])) + phy.TxTime(bits, ch.Capacity(x.S[1][1]))
}

// ConcurrentTime returns the completion time of SIC-enabled concurrent
// transmission (Eqs. 7 and 9) and whether such concurrency is feasible at
// all. For CaseA it returns the plain interference-tolerant concurrent time
// with ok=false, because that mode needs no SIC and the paper attributes no
// SIC gain to it.
func (x Cross) ConcurrentTime(ch phy.Channel, bits float64) (t float64, ok bool) {
	switch x.Case() {
	case CaseA:
		t1 := phy.TxTime(bits, ch.Capacity(phy.SINR(x.S[0][0], x.S[0][1])))
		t2 := phy.TxTime(bits, ch.Capacity(phy.SINR(x.S[1][1], x.S[1][0])))
		return math.Max(t1, t2), false
	case CaseB:
		if !x.SICFeasible() {
			return math.Inf(1), false
		}
		// Eq. (7): T1 at its interference-limited rate, T2 interference-free
		// after R2 cancels T1.
		t1 := phy.TxTime(bits, ch.Capacity(phy.SINR(x.S[0][0], x.S[0][1])))
		t2 := phy.TxTime(bits, ch.Capacity(x.S[1][1]))
		return math.Max(t1, t2), true
	case CaseC:
		return x.swapped().ConcurrentTime(ch, bits)
	default: // CaseD
		if !x.SICFeasible() {
			return math.Inf(1), false
		}
		// Eq. (9): both links run at interference-free rates thanks to SIC
		// at each receiver.
		t1 := phy.TxTime(bits, ch.Capacity(x.S[0][0]))
		t2 := phy.TxTime(bits, ch.Capacity(x.S[1][1]))
		return math.Max(t1, t2), true
	}
}

// SICTime is the best completion time achievable with SIC receivers: the
// concurrent mode when feasible, otherwise the serial fallback. A SIC-aware
// MAC always has serialisation available, so this never exceeds SerialTime.
func (x Cross) SICTime(ch phy.Channel, bits float64) float64 {
	serial := x.SerialTime(ch, bits)
	if t, ok := x.ConcurrentTime(ch, bits); ok {
		return math.Min(t, serial)
	}
	return serial
}

// Gain is the paper's Monte-Carlo metric for the two-receiver scenario
// (Fig. 6): Z₋SIC / Z₊SIC. It is exactly 1 whenever SIC is infeasible or
// unneeded — which the paper finds is ~90% of random topologies.
func (x Cross) Gain(ch phy.Channel, bits float64) float64 {
	return x.SerialTime(ch, bits) / x.SICTime(ch, bits)
}
