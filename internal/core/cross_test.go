package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/phy"
)

// crossFromDB builds a Cross from dB values: s[j][i] = SNR of tx i at rx j.
func crossFromDB(s11, s12, s21, s22 float64) Cross {
	return Cross{S: [2][2]float64{
		{phy.FromDB(s11), phy.FromDB(s12)},
		{phy.FromDB(s21), phy.FromDB(s22)},
	}}
}

func randCross(rng *rand.Rand) Cross {
	var x Cross
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			x.S[j][i] = phy.FromDB(rng.Float64() * 50)
		}
	}
	return x
}

func TestCrossCaseClassification(t *testing.T) {
	cases := []struct {
		name string
		x    Cross
		want Case
	}{
		{"both signals of interest dominate", crossFromDB(30, 10, 10, 30), CaseA},
		{"R2 suffers", crossFromDB(30, 10, 40, 20), CaseB},
		{"R1 suffers", crossFromDB(10, 30, 10, 30), CaseC},
		{"both suffer", crossFromDB(10, 30, 40, 20), CaseD},
		{"exact ties count as no SIC", crossFromDB(20, 20, 20, 20), CaseA},
	}
	for _, c := range cases {
		if got := c.x.Case(); got != c.want {
			t.Errorf("%s: Case() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCrossValid(t *testing.T) {
	if !crossFromDB(10, 20, 30, 40).Valid() {
		t.Error("valid cross reported invalid")
	}
	bad := Cross{S: [2][2]float64{{1, 2}, {3, 0}}}
	if bad.Valid() {
		t.Error("cross with zero SNR reported valid")
	}
	nan := Cross{S: [2][2]float64{{1, 2}, {3, math.NaN()}}}
	if nan.Valid() {
		t.Error("cross with NaN SNR reported valid")
	}
}

// The paper's worked example in §3.2: T1→R1 at 40 dB, T2 at R1 50 dB,
// T2→R2 30 dB. R1 needs SIC (CaseC with the interference at R1 dominant).
// The SINR of the stronger (interfering) signal at R1 is 10 dB; SIC works
// iff T2's own-link rate (30 dB) is not above what 10 dB can carry — it is
// above, so SIC must be infeasible.
func TestCrossPaperWorkedExample(t *testing.T) {
	// S11=40 (T1@R1), S12=50 (T2@R1), S21 tiny (T1@R2), S22=30 (T2@R2).
	x := crossFromDB(40, 50, 1, 30)
	if got := x.Case(); got != CaseC {
		t.Fatalf("Case() = %v, want CaseC", got)
	}
	if x.SICFeasible() {
		t.Error("paper example: R1 cannot decode T2 at rate r30 with SINR 10 dB; SIC must be infeasible")
	}
	// If T2 instead aims for a 10 dB-feasible rate — modelled by giving T2 a
	// 10 dB own link — SIC becomes feasible.
	y := crossFromDB(40, 50, 1, 10)
	if y.Case() != CaseC {
		t.Fatalf("modified example Case() = %v, want CaseC", y.Case())
	}
	if !y.SICFeasible() {
		t.Error("modified example: rate r10 should be decodable at R1 (SINR exactly 10 dB)")
	}
}

func TestCaseBFeasibility(t *testing.T) {
	// CaseB: R2 needs SIC. Feasible iff SINR of T1 at R2 >= SINR of T1 at R1.
	feasible := crossFromDB(20, 10, 45, 25) // T1@R2 45 vs T2@R2 25 → SINR≈20dB > T1@R1 SINR≈10dB
	if feasible.Case() != CaseB {
		t.Fatalf("Case = %v, want B", feasible.Case())
	}
	if !feasible.SICFeasible() {
		t.Error("expected feasible CaseB")
	}
	infeasible := crossFromDB(30, 1, 35, 35-1) // hmm adjusted below
	_ = infeasible
	inf2 := crossFromDB(30, 10, 36, 35) // T1@R2 SINR ≈ 1dB < T1@R1 SINR ≈ 20dB
	if inf2.Case() != CaseB {
		t.Fatalf("Case = %v, want B", inf2.Case())
	}
	if inf2.SICFeasible() {
		t.Error("expected infeasible CaseB")
	}
}

func TestCaseDFeasibilityAndTime(t *testing.T) {
	// CaseD needs very strong cross links: SINR of interferer at the
	// cancelling receiver must exceed the interferer's interference-FREE
	// own-link SNR. Construct: own links weak (10 dB), cross links huge.
	x := crossFromDB(10, 60, 60, 10)
	if x.Case() != CaseD {
		t.Fatalf("Case = %v, want D", x.Case())
	}
	if !x.SICFeasible() {
		t.Fatal("expected feasible CaseD")
	}
	tm, ok := x.ConcurrentTime(ch, pktBits)
	if !ok {
		t.Fatal("ConcurrentTime not ok for feasible CaseD")
	}
	// Eq. 9: both at interference-free rates.
	want := math.Max(
		pktBits/ch.Capacity(phy.FromDB(10)),
		pktBits/ch.Capacity(phy.FromDB(10)))
	if !almostEqual(tm, want, 1e-9) {
		t.Errorf("CaseD concurrent time = %v, want %v", tm, want)
	}
	// And the gain should be exactly 2 here (two equal links in parallel).
	if g := x.Gain(ch, pktBits); !almostEqual(g, 2, 1e-9) {
		t.Errorf("CaseD symmetric gain = %v, want 2", g)
	}
}

func TestCaseAGainIsOne(t *testing.T) {
	x := crossFromDB(30, 10, 10, 30)
	if g := x.Gain(ch, pktBits); g != 1 {
		t.Errorf("CaseA gain = %v, want exactly 1 (no SIC involvement)", g)
	}
}

// SICTime never exceeds SerialTime (the scheduler can always serialise).
func TestCrossSICNeverWorseThanSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		x := randCross(rng)
		if x.SICTime(ch, pktBits) > x.SerialTime(ch, pktBits)+1e-9 {
			t.Fatalf("SICTime exceeds SerialTime for %+v", x)
		}
	}
}

// Gain is always ≥ 1 and the swapped topology yields the same gain.
func TestCrossGainSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		x := randCross(rng)
		g := x.Gain(ch, pktBits)
		if g < 1-1e-12 {
			t.Fatalf("gain %v < 1 for %+v", g, x)
		}
		gs := x.swapped().Gain(ch, pktBits)
		if !almostEqual(g, gs, 1e-9) {
			t.Fatalf("gain not symmetric under link swap: %v vs %v for %+v", g, gs, x)
		}
	}
}

// Under Shannon rates, the generic RateFunc path must agree with the
// closed-form methods everywhere.
func TestRateFuncMatchesShannonPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sh := ShannonRate(ch)
	for i := 0; i < 3000; i++ {
		p := randPair(rng)
		if a, b := p.SerialTime(ch, pktBits), p.SerialTimeRate(sh, pktBits); !almostEqual(a, b, 1e-9) {
			t.Fatalf("pair serial mismatch: %v vs %v", a, b)
		}
		if a, b := p.SICTime(ch, pktBits), p.SICTimeRate(sh, pktBits); !almostEqual(a, b, 1e-9) {
			t.Fatalf("pair SIC mismatch: %v vs %v", a, b)
		}
		x := randCross(rng)
		if a, b := x.SerialTime(ch, pktBits), x.SerialTimeRate(sh, pktBits); !almostEqual(a, b, 1e-9) {
			t.Fatalf("cross serial mismatch: %v vs %v", a, b)
		}
		ta, oka := x.ConcurrentTime(ch, pktBits)
		tb, okb := x.ConcurrentTimeRate(sh, pktBits)
		if x.Case() == CaseA {
			// The Shannon path reports the no-SIC concurrent time for CaseA
			// with ok=false (no SIC gain attributed, Fig. 6 accounting); the
			// rate path models the §7 capture-based concurrency with ok=true.
			// The times themselves must agree.
			if oka {
				t.Fatalf("CaseA Shannon path must not claim SIC concurrency")
			}
			if !okb {
				t.Fatalf("CaseA rate path should report capture concurrency")
			}
			if !almostEqual(ta, tb, 1e-9) {
				t.Fatalf("CaseA concurrent time mismatch: %v vs %v", ta, tb)
			}
			continue
		}
		if oka != okb {
			t.Fatalf("feasibility mismatch for %+v (case %v): %v vs %v", x, x.Case(), oka, okb)
		}
		if oka && !almostEqual(ta, tb, 1e-9) {
			t.Fatalf("concurrent time mismatch: %v vs %v", ta, tb)
		}
	}
}

func TestCrossPackGainAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	feasibleSeen := false
	for i := 0; i < 20000; i++ {
		x := randCross(rng)
		g, ok := x.CrossPack(ch, pktBits)
		if g < 1-1e-12 || math.IsNaN(g) {
			t.Fatalf("bad pack gain %v for %+v", g, x)
		}
		if ok {
			feasibleSeen = true
		}
	}
	if !feasibleSeen {
		t.Error("no feasible packing topology in 20000 draws; generator or feasibility is broken")
	}
}

func TestGainRateDiscrete(t *testing.T) {
	// A step-function rate: 10 Mbps above 10 dB, 1 Mbps above 0 dB.
	step := func(sinr float64) float64 {
		db := phy.DB(sinr)
		switch {
		case db >= 10:
			return 10e6
		case db >= 0:
			return 1e6
		default:
			return 0
		}
	}
	// Pair: slack lets both transmit at their clean discrete rates.
	p := Pair{S1: phy.FromDB(30), S2: phy.FromDB(15)}
	if g := p.GainRate(step, pktBits); g < 1 {
		t.Errorf("pair discrete gain %v < 1", g)
	}
	// Unreachable pair: serial time infinite → gain 1... the weak side at
	// -5 dB cannot transmit at all.
	dead := Pair{S1: phy.FromDB(30), S2: phy.FromDB(-5)}
	if g := dead.GainRate(step, pktBits); math.IsNaN(g) {
		t.Errorf("dead pair produced NaN gain")
	}

	// Cross with an unreachable serving link: gain exactly 1.
	x := Cross{S: [2][2]float64{
		{phy.FromDB(-5), phy.FromDB(20)},
		{phy.FromDB(3), phy.FromDB(25)},
	}}
	if g := x.GainRate(step, pktBits); g != 1 {
		t.Errorf("cross with dead link gain %v, want 1", g)
	}
	// CaseA cross with big slack: capture concurrency gives gain close to 2.
	a := Cross{S: [2][2]float64{
		{phy.FromDB(30), phy.FromDB(12)},
		{phy.FromDB(12), phy.FromDB(30)},
	}}
	if g := a.GainRate(step, pktBits); g < 1.5 {
		t.Errorf("slack-covered CaseA gain %v, want ≈2", g)
	}
	if g, ok := a.CrossPackRate(step, pktBits); !ok || g < 1 {
		t.Errorf("CaseA packing: gain %v ok=%v", g, ok)
	}
	// CaseB cross under the step function.
	b := crossFromDB(20, 10, 45, 25)
	if g := b.GainRate(step, pktBits); g < 1 {
		t.Errorf("CaseB discrete gain %v < 1", g)
	}
	if _, ok := b.CrossPackRate(step, pktBits); !ok {
		t.Log("CaseB packing infeasible under the step table (acceptable)")
	}
}

func TestStringers(t *testing.T) {
	p := Pair{S1: phy.FromDB(30), S2: phy.FromDB(15)}
	if s := p.String(); s == "" || s[:4] != "Pair" {
		t.Errorf("Pair.String() = %q", s)
	}
	for c, want := range map[Case]string{
		CaseA:   "A(no SIC needed)",
		CaseB:   "B(SIC at R2)",
		CaseC:   "C(SIC at R1)",
		CaseD:   "D(SIC at both)",
		Case(9): "Case(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Case(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
