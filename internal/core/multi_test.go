package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/phy"
)

func TestChainRatesErrors(t *testing.T) {
	if _, err := ChainRates(ch, nil); err != ErrNoSignals {
		t.Errorf("empty: %v", err)
	}
	if _, err := ChainRates(ch, []float64{1, -2}); err == nil {
		t.Error("negative SNR accepted")
	}
	if _, err := ChainRates(ch, []float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

// The K-user sum-capacity identity: Σ r_k = B log2(1 + ΣS).
func TestChainRatesSumCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		k := 2 + rng.Intn(5)
		snrs := make([]float64, k)
		var total float64
		for i := range snrs {
			snrs[i] = phy.FromDB(rng.Float64() * 45)
			total += snrs[i]
		}
		rates, err := ChainRates(ch, snrs)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range rates {
			sum += r
		}
		want := ch.Capacity(total)
		if !almostEqual(sum, want, 1e-9) {
			t.Fatalf("trial %d: Σr = %v, want %v", trial, sum, want)
		}
	}
}

// K=2 chain must agree with Pair.FeasibleRates.
func TestChainMatchesPair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		p := randPair(rng)
		rates, err := ChainRates(ch, []float64{p.S1, p.S2})
		if err != nil {
			t.Fatal(err)
		}
		rs, rw, strongIsS1 := p.FeasibleRates(ch)
		want := []float64{rw, rs}
		if strongIsS1 {
			want = []float64{rs, rw}
		}
		if !almostEqual(rates[0], want[0], 1e-9) || !almostEqual(rates[1], want[1], 1e-9) {
			t.Fatalf("chain %v != pair rates %v", rates, want)
		}
	}
}

// Order independence: rates follow the caller's indices regardless of input
// permutation.
func TestChainRatesOrderIndependent(t *testing.T) {
	snrs := []float64{phy.FromDB(30), phy.FromDB(10), phy.FromDB(20)}
	r1, err := ChainRates(ch, snrs)
	if err != nil {
		t.Fatal(err)
	}
	perm := []float64{snrs[2], snrs[0], snrs[1]}
	r2, err := ChainRates(ch, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r1[0], r2[1], 1e-12) || !almostEqual(r1[1], r2[2], 1e-12) || !almostEqual(r1[2], r2[0], 1e-12) {
		t.Errorf("permutation changed per-signal rates: %v vs %v", r1, r2)
	}
}

func TestChainTime(t *testing.T) {
	snrs := []float64{phy.FromDB(30), phy.FromDB(15)}
	tm, err := ChainTime(ch, pktBits, snrs)
	if err != nil {
		t.Fatal(err)
	}
	want := Pair{S1: snrs[0], S2: snrs[1]}.SICTime(ch, pktBits)
	if !almostEqual(tm, want, 1e-12) {
		t.Errorf("ChainTime = %v, want %v", tm, want)
	}
}

func TestPackGenericThreeClients(t *testing.T) {
	// One far (slow) client anchors; two near clients pack trains — the
	// paper's Fig. 10g scenario.
	snrs := []float64{phy.FromDB(8), phy.FromDB(35), phy.FromDB(25)}
	gp, err := PackGeneric(ch, pktBits, snrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Parallel) != 2 {
		t.Fatalf("want 2 parallel trains, got %d", len(gp.Parallel))
	}
	totalPkts := 1
	for _, tr := range gp.Parallel {
		if tr.Packets < 1 {
			t.Errorf("train %d has %d packets", tr.Index, tr.Packets)
		}
		totalPkts += tr.Packets
	}
	if gp.Bits != float64(totalPkts)*pktBits {
		t.Errorf("bits accounting: %v vs %v packets", gp.Bits, totalPkts)
	}
	// Trains must fit inside the slot.
	for _, tr := range gp.Parallel {
		if float64(tr.Packets)*(pktBits/tr.Rate) > gp.Time+1e-12 {
			t.Errorf("train %d overruns the slot", tr.Index)
		}
	}
}

func TestGenericPackingGainProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	saw2x := false
	for trial := 0; trial < 2000; trial++ {
		k := 2 + rng.Intn(4)
		snrs := make([]float64, k)
		for i := range snrs {
			snrs[i] = phy.FromDB(3 + rng.Float64()*40)
		}
		g, err := GenericPackingGain(ch, pktBits, snrs)
		if err != nil {
			t.Fatal(err)
		}
		if g < 1-1e-12 || math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("bad gain %v for %v", g, snrs)
		}
		if g > 2 {
			saw2x = true
		}
	}
	if !saw2x {
		t.Log("no >2x packing gain observed (possible but unusual at these draws)")
	}
}

// With K clients the generic packer can beat the best 2-client packing —
// the reason the paper calls it out as a future direction.
func TestGenericBeatsPairwiseSometimes(t *testing.T) {
	snrs := []float64{phy.FromDB(6), phy.FromDB(34), phy.FromDB(26)}
	g3, err := GenericPackingGain(ch, pktBits, snrs)
	if err != nil {
		t.Fatal(err)
	}
	// Best pairwise packing gain among the three pairs.
	best2 := 0.0
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if g := (Pair{S1: snrs[i], S2: snrs[j]}).PackingGain(ch, pktBits); g > best2 {
				best2 = g
			}
		}
	}
	if g3 <= best2 {
		t.Errorf("3-way packing (%v) should beat best pairwise (%v) here", g3, best2)
	}
}

// TestChainTimeMatchesChainRatesBitwise pins the inline fast path: for
// chains within the stack bound, ChainTime must equal the max transmit
// time over ChainRates bit for bit (identical summation and decode-order
// subtraction), and it must not allocate.
func TestChainTimeMatchesChainRatesBitwise(t *testing.T) {
	ch := phy.Wifi20MHz
	rng := rand.New(rand.NewSource(11))
	for k := 1; k <= maxChainInline; k++ {
		for trial := 0; trial < 200; trial++ {
			snrs := make([]float64, k)
			for i := range snrs {
				snrs[i] = math.Exp(rng.Float64()*12 - 2)
			}
			rates, err := ChainRates(ch, snrs)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, r := range rates {
				if tt := phy.TxTime(12000, r); tt > want {
					want = tt
				}
			}
			got, err := ChainTime(ch, 12000, snrs)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("K=%d trial %d: ChainTime %v != max-over-ChainRates %v", k, trial, got, want)
			}
		}
	}
	snrs := []float64{40, 7, 19}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := ChainTime(ch, 12000, snrs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ChainTime(K=3) allocated %.0f times, want 0", allocs)
	}
}

// TestChainTiedSNRsDeterministic pins the tie-break: exactly equal SNRs
// decode in ascending input index order, so tied transmitters' rates are
// assigned deterministically run to run.
func TestChainTiedSNRsDeterministic(t *testing.T) {
	ch := phy.Wifi20MHz
	snrs := []float64{25, 25, 25, 4}
	first, err := ChainRates(ch, snrs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		again, err := ChainRates(ch, snrs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if math.Float64bits(first[i]) != math.Float64bits(again[i]) {
				t.Fatalf("trial %d: tied rates reassigned: %v vs %v", trial, first, again)
			}
		}
	}
	// Ascending index = earlier decode = more residual interference below
	// it only for distinct values; for exact ties the earlier index must
	// get the earlier (lower-rate) chain stage.
	if !(first[0] <= first[1] && first[1] <= first[2]) {
		t.Errorf("tied signals not decoded in ascending index order: %v", first)
	}
	// The slow path (chains past the stack bound) shares the same pinned
	// order and still runs.
	longer := append([]float64{}, snrs...)
	for i := 0; i < 6; i++ {
		longer = append(longer, snrs...)
	}
	if _, err := ChainTime(ch, 12000, longer); err != nil {
		t.Fatal(err)
	}
}
