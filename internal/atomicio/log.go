package atomicio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Log is an append-only record log with crash-tolerant recovery: the
// durable half of a snapshot+WAL persistence scheme. Each record is framed
// as a 4-byte big-endian payload length, the payload, and a CRC-32 (IEEE)
// over length+payload. On open the tail is scanned; the first torn or
// corrupted frame truncates the file back to the last intact record, so a
// write interrupted by a crash costs exactly the interrupted record and
// never the log.
//
// Appends are plain writes: they survive a killed process as soon as the
// syscall returns, and survive machine failure once Sync (or the owner's
// next snapshot) lands. A Log is not safe for concurrent use; callers
// serialise access.
type Log struct {
	path    string
	f       *os.File
	records int64
}

// MaxLogRecord bounds one record's payload. Anything larger in a length
// prefix is corruption, not data.
const MaxLogRecord = 1 << 20

const logFrameOverhead = 8 // 4-byte length prefix + 4-byte CRC

// ParseLogRecords scans data as a sequence of framed records. It returns
// the intact payloads (aliasing data), the byte offset of the end of the
// last intact record, and whether trailing bytes had to be discarded.
// It never fails: arbitrary bytes parse as some (possibly empty) prefix.
func ParseLogRecords(data []byte) (payloads [][]byte, good int, torn bool) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return payloads, off, false
		}
		if len(rest) < logFrameOverhead+1 {
			return payloads, off, true
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n == 0 || n > MaxLogRecord || len(rest) < logFrameOverhead+int(n) {
			return payloads, off, true
		}
		frame := rest[:4+n]
		if crc32.ChecksumIEEE(frame) != binary.BigEndian.Uint32(rest[4+n:8+n]) {
			return payloads, off, true
		}
		payloads = append(payloads, frame[4:])
		off += logFrameOverhead + int(n)
	}
}

// OpenLog opens (creating if absent) the log at path, replays it, and
// positions it for appending. It returns the recovered payloads in append
// order and whether a torn tail was truncated away.
func OpenLog(path string) (l *Log, payloads [][]byte, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("atomicio: opening log %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		//lint:allow closecheck open failed before any write; nothing to lose
		f.Close()
		return nil, nil, false, fmt.Errorf("atomicio: reading log %s: %w", path, err)
	}
	payloads, good, torn := ParseLogRecords(data)
	if torn {
		if err := f.Truncate(int64(good)); err != nil {
			//lint:allow closecheck truncate failure already aborts the open
			f.Close()
			return nil, nil, false, fmt.Errorf("atomicio: truncating torn log %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		//lint:allow closecheck seek failure already aborts the open
		f.Close()
		return nil, nil, false, fmt.Errorf("atomicio: seeking log %s: %w", path, err)
	}
	return &Log{path: path, f: f, records: int64(len(payloads))}, payloads, torn, nil
}

// Append frames and writes one record.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxLogRecord {
		return fmt.Errorf("atomicio: log record of %d bytes (must be 1..%d)", len(payload), MaxLogRecord)
	}
	buf := make([]byte, logFrameOverhead+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	copy(buf[4:], payload)
	binary.BigEndian.PutUint32(buf[4+len(payload):], crc32.ChecksumIEEE(buf[:4+len(payload)]))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("atomicio: appending to log %s: %w", l.path, err)
	}
	l.records++
	return nil
}

// Records returns the number of records in the log (replayed + appended
// since open, minus resets).
func (l *Log) Records() int64 { return l.records }

// Reset empties the log. Callers do this right after committing a snapshot
// that supersedes every logged record; if the process dies between the
// snapshot and the reset, replaying the stale records must be idempotent.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("atomicio: resetting log %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("atomicio: rewinding log %s: %w", l.path, err)
	}
	l.records = 0
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing log %s: %w", l.path, err)
	}
	return nil
}

// Close syncs and closes the log. Both errors are reported: an unsynced
// close can mean lost records.
func (l *Log) Close() error {
	serr := l.f.Sync()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("atomicio: closing log %s: %w", l.path, err)
	}
	if serr != nil {
		return fmt.Errorf("atomicio: syncing log %s at close: %w", l.path, serr)
	}
	return nil
}
