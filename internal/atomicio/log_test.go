package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openLogT(t *testing.T, path string) (*Log, [][]byte, bool) {
	t.Helper()
	l, payloads, torn, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, payloads, torn
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, payloads, torn := openLogT(t, path)
	if len(payloads) != 0 || torn {
		t.Fatalf("fresh log: %d payloads, torn=%v", len(payloads), torn)
	}
	want := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xAB}, 300)}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != 3 {
		t.Fatalf("records = %d, want 3", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, payloads, torn := openLogT(t, path)
	defer l2.Close()
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, payloads[i], want[i])
		}
	}
	// Appends continue after a replayed open.
	if err := l2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	if l2.Records() != 4 {
		t.Fatalf("records after replayed append = %d, want 4", l2.Records())
	}
}

// TestLogTornTail: every way a tail can be damaged — truncated frame,
// truncated header, flipped payload bit, flipped CRC — loses exactly the
// damaged record and keeps the intact prefix.
func TestLogTornTail(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "t.wal")
		l, _, _ := openLogT(t, path)
		l.Append([]byte("alpha"))
		l.Append([]byte("beta"))
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	damage := map[string]func([]byte) []byte{
		"truncated payload": func(d []byte) []byte { return d[:len(d)-3] },
		"truncated header":  func(d []byte) []byte { return d[:len(d)-len("beta")-6] },
		"flipped payload":   func(d []byte) []byte { d[len(d)-6] ^= 0xFF; return d },
		"flipped crc":       func(d []byte) []byte { d[len(d)-1] ^= 0xFF; return d },
		"garbage appended":  func(d []byte) []byte { return append(d, 0xDE, 0xAD, 0xBE) },
	}
	for name, f := range damage {
		t.Run(name, func(t *testing.T) {
			path, data := build(t)
			if err := os.WriteFile(path, f(data), 0o644); err != nil {
				t.Fatal(err)
			}
			l, payloads, torn := openLogT(t, path)
			if !torn {
				t.Fatal("damage not reported as torn")
			}
			if name == "garbage appended" {
				if len(payloads) != 2 {
					t.Fatalf("recovered %d records, want both intact ones", len(payloads))
				}
			} else if len(payloads) != 1 || string(payloads[0]) != "alpha" {
				t.Fatalf("recovered %v, want just alpha", payloads)
			}
			// The truncated log accepts appends and replays cleanly again.
			if err := l.Append([]byte("gamma")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, payloads, torn = openLogT(t, path)
			if torn {
				t.Fatal("log still torn after truncate+append")
			}
			if string(payloads[len(payloads)-1]) != "gamma" {
				t.Fatalf("post-recovery append lost: %v", payloads)
			}
		})
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _, _ := openLogT(t, path)
	l.Append([]byte("stale"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("records after reset = %d", l.Records())
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, payloads, torn := openLogT(t, path)
	if torn || len(payloads) != 1 || string(payloads[0]) != "fresh" {
		t.Fatalf("post-reset replay = %q (torn=%v), want just fresh", payloads, torn)
	}
}

func TestLogRejectsOversizeRecord(t *testing.T) {
	l, _, _ := openLogT(t, filepath.Join(t.TempDir(), "t.wal"))
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := l.Append(make([]byte, MaxLogRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

// FuzzLogParse: arbitrary bytes must parse without panicking, the good
// offset must land inside the input, and the recovered prefix must re-parse
// to the identical payloads with no tear.
func FuzzLogParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 'x', 0, 0, 0, 0})
	l, _, _, err := OpenLog(filepath.Join(f.TempDir(), "seed.wal"))
	if err == nil {
		l.Append([]byte("seed"))
		data, _ := os.ReadFile(l.path)
		f.Add(data)
		l.Close()
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, good, torn := ParseLogRecords(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		if !torn && good != len(data) {
			t.Fatalf("untorn parse stopped at %d of %d", good, len(data))
		}
		again, good2, torn2 := ParseLogRecords(data[:good])
		if torn2 || good2 != good || len(again) != len(payloads) {
			t.Fatalf("recovered prefix does not re-parse cleanly: %d/%v vs %d/%v", good, torn, good2, torn2)
		}
		for i := range payloads {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d differs on re-parse", i)
			}
		}
	})
}
