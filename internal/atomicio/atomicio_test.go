package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempLeft reports whether any staging files linger in dir.
func tempLeft(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			return true
		}
	}
	return false
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("content = %q, want %q", got, "hello")
	}
	if tempLeft(t, dir) {
		t.Error("staging file left behind")
	}

	// Overwrite replaces the old contents completely.
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x" {
		t.Errorf("after overwrite content = %q, want %q", got, "x")
	}
}

func TestAbortLeavesDestinationAlone(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("new-but-abandoned")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	f.Abort() // idempotent

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Errorf("content = %q, want untouched %q", got, "old")
	}
	if tempLeft(t, dir) {
		t.Error("staging file left behind after Abort")
	}
}

func TestCommitThenAbortIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort() // must not delete the committed file
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "kept" {
		t.Errorf("content = %q, want %q", got, "kept")
	}
	if err := f.Commit(); err == nil {
		t.Error("second Commit should fail")
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Error("Create in a missing directory should fail")
	}
}
