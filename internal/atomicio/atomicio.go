// Package atomicio provides crash-safe file writes. Data is staged in a
// temporary file in the destination directory, flushed to stable storage
// with fsync, and renamed over the destination, so readers observe either
// the old contents or the complete new contents — never a torn write. The
// containing directory is fsynced after the rename so the new directory
// entry itself survives a crash.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. It is the drop-in
// crash-safe counterpart of os.WriteFile.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	if err := f.Chmod(perm); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// File is an in-progress atomic write. Write the contents, then call
// Commit to publish them under the destination name, or Abort to discard
// them. Until Commit returns, the destination is untouched.
type File struct {
	dest string
	tmp  *os.File
	done bool
}

// Create starts an atomic write targeting path. The temporary file lives
// in path's directory so the final rename stays within one filesystem.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: staging %s: %w", path, err)
	}
	return &File{dest: path, tmp: tmp}, nil
}

// Name returns the destination path the file will be committed to.
func (f *File) Name() string { return f.dest }

// Write implements io.Writer on the staged temporary file.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Chmod sets the permissions the committed file will carry.
func (f *File) Chmod(perm os.FileMode) error { return f.tmp.Chmod(perm) }

// Commit fsyncs the staged contents, closes the temporary file and renames
// it over the destination, then fsyncs the directory. Every error on that
// path — including Close, whose failure can mean lost writes — is
// propagated; on error the temporary file is removed and the destination
// keeps its previous contents.
func (f *File) Commit() error {
	if f.done {
		return fmt.Errorf("atomicio: %s already committed or aborted", f.dest)
	}
	f.done = true
	name := f.tmp.Name()
	if err := f.tmp.Sync(); err != nil {
		//lint:allow closecheck best-effort cleanup; the sync failure below already aborts the write
		f.tmp.Close()
		os.Remove(name)
		return fmt.Errorf("atomicio: syncing %s: %w", f.dest, err)
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: closing %s: %w", f.dest, err)
	}
	if err := os.Rename(name, f.dest); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: publishing %s: %w", f.dest, err)
	}
	return syncDir(filepath.Dir(f.dest))
}

// Abort discards the staged contents. It is a no-op after Commit or a
// previous Abort, so it is safe to defer unconditionally.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	name := f.tmp.Name()
	//lint:allow closecheck Abort discards the staged write; a close failure cannot lose anything
	f.tmp.Close()
	os.Remove(name)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems refuse to fsync directories; that is not worth failing a
// completed write over, so only open errors are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: opening directory %s: %w", dir, err)
	}
	defer d.Close()
	d.Sync()
	return nil
}
