// Package mc is the Monte-Carlo harness behind the paper's randomised
// evaluations: Fig. 6 (two transmitters to two receivers) and Fig. 11
// (technique comparison). Topologies are drawn exactly as §3.2 describes —
// transmitters a fixed distance apart, receivers uniform within range — and
// every trial derives its RNG deterministically from the config seed, so
// runs are reproducible and parallelisable.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/topo"
)

// Config parameterises a Monte-Carlo experiment.
type Config struct {
	// Trials is the number of random topologies (the paper uses 10 000).
	Trials int
	// Seed feeds the per-trial RNGs.
	Seed int64
	// Separation is the transmitter-to-transmitter distance in meters
	// (two-receiver experiments only).
	Separation float64
	// Range is the radius within which each receiver (or transmitter, for
	// the common-receiver experiment) is placed, in meters.
	Range float64
	// PathLoss converts distance to received SNR.
	PathLoss phy.PathLoss
	// Channel supplies bandwidth for all capacity computations.
	Channel phy.Channel
	// PacketBits is the packet size used in all completion-time formulas.
	PacketBits float64
	// Metrics, when non-nil, receives throughput instrumentation: trial
	// counts, sweep wall time and a trials/sec gauge. Timing is read
	// through obs and feeds metrics only — it never influences trial
	// seeding or results, so same-seed reproducibility is untouched.
	Metrics *Metrics
	// Scalar forces the legacy one-trial-at-a-time engine instead of the
	// batched columnar one. Both derive every trial's RNG from Seed and
	// the trial index identically and produce bit-identical samples (the
	// golden tests in internal/experiments pin this); Scalar exists as an
	// escape hatch and as the oracle the batched engine is tested against.
	Scalar bool
}

// Metrics is the package's observability bundle. Construct with NewMetrics
// over the process registry and share one instance across sweeps.
type Metrics struct {
	// Trials counts completed trials across all sweeps.
	Trials *obs.Counter
	// Sweeps counts runParallel invocations that ran to the end.
	Sweeps *obs.Counter
	// SweepSeconds is the wall-time distribution of whole sweeps.
	SweepSeconds *obs.Histogram
	// TrialsPerSec is the most recent sweep's throughput.
	TrialsPerSec *obs.Gauge
}

// NewMetrics registers the Monte-Carlo metrics on reg. Calling it twice
// with the same registry returns handles to the same underlying series.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Trials:       reg.Counter("mc_trials_total", "Monte-Carlo trials completed", nil),
		Sweeps:       reg.Counter("mc_sweeps_total", "Monte-Carlo sweeps completed", nil),
		SweepSeconds: reg.Histogram("mc_sweep_seconds", "wall time per Monte-Carlo sweep", obs.ExpBuckets(1e-3, 2, 16), nil),
		TrialsPerSec: reg.Gauge("mc_trials_per_second", "throughput of the most recent sweep", nil),
	}
}

// PartialError reports a sweep cut short by context cancellation after
// some trials already completed. Callers that checkpoint or report
// progress (the suite runner) can surface "completed X of Y" instead of
// pretending nothing ran; errors.Is still sees the underlying context
// error, so retry/timeout classification is unchanged.
type PartialError struct {
	// Completed is how many trials finished before the sweep stopped.
	Completed int
	// Trials is the configured sweep size.
	Trials int
	// Err is the context error that stopped the sweep.
	Err error
}

// Error implements error; the first line carries the progress numbers so
// one-line status reports keep them.
func (e *PartialError) Error() string {
	return fmt.Sprintf("mc: sweep interrupted after %d/%d trials: %v", e.Completed, e.Trials, e.Err)
}

// Unwrap exposes the underlying context error to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

func (c Config) validate() error {
	if c.Trials <= 0 {
		return errors.New("mc: Trials must be positive")
	}
	if c.Range <= 0 {
		return errors.New("mc: Range must be positive")
	}
	if c.PacketBits <= 0 {
		return errors.New("mc: PacketBits must be positive")
	}
	if c.Channel.BandwidthHz <= 0 {
		return errors.New("mc: Channel is required")
	}
	if c.PathLoss.RefSNR <= 0 {
		return errors.New("mc: PathLoss is required")
	}
	return nil
}

// trialSeedStride spreads trial indices across the seed space. It is part
// of the determinism contract: every engine derives trial i's RNG as
// rand.NewSource(Seed + i*trialSeedStride) (or a reseed to the same
// value), so scheduling, batching and cancellation can never change which
// random stream a trial consumes.
const trialSeedStride = 0x9e3779b9

// finishSweep folds the shared end-of-sweep accounting for both engines:
// completed trials always count (that is the whole point of the progress
// accounting), sweep-level metrics only on full completion, and the
// returned error is the worker failure, a *PartialError for a sweep the
// context actually cut short, or nil. A sweep whose last trial finished
// before anyone observed the cancellation is complete, not partial: its
// samples are the same bytes an uncancelled run would produce, so it is
// reported as a success instead of being dropped (the counters would
// otherwise disagree — Metrics.Trials says Trials, the error says
// "interrupted").
func finishSweep(cfg Config, tm obs.Timer, completed int64, parent context.Context, workerErr error) error {
	if m := cfg.Metrics; m != nil {
		m.Trials.Add(completed)
	}
	if workerErr != nil {
		return workerErr
	}
	if err := parent.Err(); err != nil && int(completed) != cfg.Trials {
		return &PartialError{Completed: int(completed), Trials: cfg.Trials, Err: err}
	}
	if m := cfg.Metrics; m != nil {
		m.Sweeps.Inc()
		secs := tm.Elapsed().Seconds()
		m.SweepSeconds.Observe(secs)
		if secs > 0 {
			m.TrialsPerSec.Set(float64(cfg.Trials) / secs)
		}
	}
	return nil
}

// runParallel evaluates f once per trial index across a worker pool,
// collecting one sample per trial in order. Each trial gets its own RNG
// seeded from Config.Seed and the trial index, making the result
// independent of scheduling — and of cancellation: ctx only decides how
// many trials run, never which seed a trial gets. When ctx is cancelled
// the pool stops dispatching, drains, and a *PartialError wrapping
// ctx.Err() reports how many trials had already finished. A panic in any
// trial is recovered, annotated with its stack, and surfaced as an error
// instead of taking down the process.
func runParallel(parent context.Context, cfg Config, f func(rng *rand.Rand) float64) ([]float64, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var tm obs.Timer
	if cfg.Metrics != nil {
		tm = obs.StartTimer()
	}

	var done atomic.Int64
	out := make([]float64, cfg.Trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Trials; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicErr error
	)
	trial := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("mc: trial %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*trialSeedStride))
		out[i] = f(rng)
		return nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := trial(i); err != nil {
					panicMu.Lock()
					if panicErr == nil {
						panicErr = err
					}
					panicMu.Unlock()
					cancel() // stop dispatching further trials
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()

	if err := finishSweep(cfg, tm, done.Load(), parent, panicErr); err != nil {
		return nil, err
	}
	return out, nil
}

// TwoReceiverGains reproduces the Fig. 6 experiment: random two-link
// topologies, SIC gain Z₋SIC/Z₊SIC per topology (1 when SIC is infeasible
// or unneeded). Cancelling ctx aborts the sweep with ctx's error.
func TwoReceiverGains(ctx context.Context, cfg Config) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Separation <= 0 {
		return nil, errors.New("mc: Separation must be positive for two-receiver experiments")
	}
	if cfg.Scalar {
		return runParallel(ctx, cfg, func(rng *rand.Rand) float64 {
			return twoReceiverGain(cfg, TechSIC, crossSample(cfg, rng))
		})
	}
	return runBatched(ctx, cfg, twoReceiverEval(TechSIC))
}

// crossSample draws one §3.2 topology and evaluates its RSS matrix.
func crossSample(cfg Config, rng *rand.Rand) core.Cross {
	pl := topo.PlaceTwoLinks(rng, cfg.Separation, cfg.Range)
	var x core.Cross
	x.S[0][0] = cfg.PathLoss.SNRAt(pl.T1.Dist(pl.R1))
	x.S[0][1] = cfg.PathLoss.SNRAt(pl.T2.Dist(pl.R1))
	x.S[1][0] = cfg.PathLoss.SNRAt(pl.T1.Dist(pl.R2))
	x.S[1][1] = cfg.PathLoss.SNRAt(pl.T2.Dist(pl.R2))
	return x
}

// Technique labels the §5 mechanisms compared in Fig. 11.
type Technique int

const (
	// TechSIC is plain SIC concurrency with serial fallback.
	TechSIC Technique = iota
	// TechPowerControl is SIC plus §5.2 power reduction.
	TechPowerControl
	// TechMultirate is SIC plus §5.3 multirate packetization.
	TechMultirate
	// TechPacking is SIC plus §5.4 packet packing.
	TechPacking
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case TechSIC:
		return "SIC"
	case TechPowerControl:
		return "SIC+power-control"
	case TechMultirate:
		return "SIC+multirate"
	case TechPacking:
		return "SIC+packing"
	}
	return "unknown-technique"
}

// SameReceiverGains reproduces the one-receiver half of Fig. 11: random
// two-transmitter/common-receiver topologies (transmitters uniform within
// Range of the receiver) and the gain of the chosen technique over the
// serial baseline. The serial fallback is always available, so samples are
// ≥ 1.
func SameReceiverGains(ctx context.Context, cfg Config, tech Technique) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Scalar {
		return runParallel(ctx, cfg, func(rng *rand.Rand) float64 {
			rx := topo.Point{}
			t1 := topo.UniformInDisc(rng, rx, cfg.Range)
			t2 := topo.UniformInDisc(rng, rx, cfg.Range)
			p := core.Pair{
				S1: cfg.PathLoss.SNRAt(rx.Dist(t1)),
				S2: cfg.PathLoss.SNRAt(rx.Dist(t2)),
			}
			return sameReceiverGain(cfg, tech, p)
		})
	}
	return runBatched(ctx, cfg, sameReceiverEval(tech))
}

// sameReceiverGain evaluates the chosen technique's gain over the serial
// baseline for one drawn common-receiver pair. Both engines funnel through
// this one function, so the per-trial arithmetic cannot drift between the
// scalar and batched paths.
func sameReceiverGain(cfg Config, tech Technique, p core.Pair) float64 {
	serial := p.SerialTime(cfg.Channel, cfg.PacketBits)
	var t float64
	switch tech {
	case TechPowerControl:
		t = p.SICTimeWithPowerControl(cfg.Channel, cfg.PacketBits)
	case TechMultirate:
		t = p.MultirateTime(cfg.Channel, cfg.PacketBits)
	case TechPacking:
		g := p.PackingGain(cfg.Channel, cfg.PacketBits)
		if g < 1 {
			g = 1
		}
		return g
	default:
		t = p.SICTime(cfg.Channel, cfg.PacketBits)
	}
	if t >= serial {
		return 1
	}
	return serial / t
}

// twoReceiverGain evaluates the per-topology gain of the technique in the
// two-receiver scenario; like sameReceiverGain it is the single evaluation
// path shared by the scalar and batched engines.
func twoReceiverGain(cfg Config, tech Technique, x core.Cross) float64 {
	switch tech {
	case TechPacking:
		base := x.Gain(cfg.Channel, cfg.PacketBits)
		if g, ok := x.CrossPack(cfg.Channel, cfg.PacketBits); ok && g > base {
			return g
		}
		return base
	default:
		return x.Gain(cfg.Channel, cfg.PacketBits)
	}
}

// TwoReceiverTechniqueGains reproduces the two-receiver half of Fig. 11:
// per-topology gain for plain SIC or SIC-with-packing. (Multirate
// packetization is impossible in this scenario — the paper's §5.5 — and
// power control has no lever because each transmission already runs at its
// receiver-limited rate.)
func TwoReceiverTechniqueGains(ctx context.Context, cfg Config, tech Technique) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Separation <= 0 {
		return nil, errors.New("mc: Separation must be positive for two-receiver experiments")
	}
	if cfg.Scalar {
		return runParallel(ctx, cfg, func(rng *rand.Rand) float64 {
			return twoReceiverGain(cfg, tech, crossSample(cfg, rng))
		})
	}
	return runBatched(ctx, cfg, twoReceiverEval(tech))
}
