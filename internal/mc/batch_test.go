package mc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestReseedMatchesFreshSource pins the mechanism the batched engine's
// determinism rests on: re-seeding one *rand.Rand produces the exact
// variate stream of a freshly constructed rand.New(rand.NewSource(seed)).
func TestReseedMatchesFreshSource(t *testing.T) {
	shared := rand.New(rand.NewSource(0))
	for _, seed := range []int64{1, 7, 1 + 3*trialSeedStride, -42} {
		fresh := rand.New(rand.NewSource(seed))
		shared.Seed(seed)
		for k := 0; k < 32; k++ {
			a, b := fresh.Float64(), shared.Float64()
			if a != b {
				t.Fatalf("seed %d draw %d: fresh %v vs reseeded %v", seed, k, a, b)
			}
		}
	}
}

// TestBatchedMatchesScalarBitwise is the engine-level oracle: every sweep
// family and technique must produce bit-identical samples through the
// batched and scalar paths. Trials spans several full blocks plus a
// partial one, so block edges are exercised.
func TestBatchedMatchesScalarBitwise(t *testing.T) {
	const trials = 3*batchBlock + 37
	run := func(name string, sweep func(Config) ([]float64, error)) {
		t.Helper()
		batchedCfg := testConfig(trials)
		batched, err := sweep(batchedCfg)
		if err != nil {
			t.Fatalf("%s batched: %v", name, err)
		}
		scalarCfg := testConfig(trials)
		scalarCfg.Scalar = true
		scalar, err := sweep(scalarCfg)
		if err != nil {
			t.Fatalf("%s scalar: %v", name, err)
		}
		for i := range scalar {
			if math.Float64bits(scalar[i]) != math.Float64bits(batched[i]) {
				t.Fatalf("%s trial %d: scalar %v (%#x) != batched %v (%#x)",
					name, i, scalar[i], math.Float64bits(scalar[i]), batched[i], math.Float64bits(batched[i]))
			}
		}
	}
	run("TwoReceiverGains", func(cfg Config) ([]float64, error) {
		return TwoReceiverGains(context.Background(), cfg)
	})
	for _, tech := range []Technique{TechSIC, TechPowerControl, TechMultirate, TechPacking} {
		tech := tech
		run("SameReceiverGains/"+tech.String(), func(cfg Config) ([]float64, error) {
			return SameReceiverGains(context.Background(), cfg, tech)
		})
	}
	for _, tech := range []Technique{TechSIC, TechPacking} {
		tech := tech
		run("TwoReceiverTechniqueGains/"+tech.String(), func(cfg Config) ([]float64, error) {
			return TwoReceiverTechniqueGains(context.Background(), cfg, tech)
		})
	}
}

// cancellingEval wraps the two-receiver eval so that the parent context is
// cancelled once a fixed number of trials have been reduced — a
// deterministic stand-in for "the user hit ctrl-C mid-sweep".
func cancellingEval(cancel context.CancelFunc, after int64, reduced *atomic.Int64) batchEval {
	ev := twoReceiverEval(TechSIC)
	inner := ev.gain
	ev.gain = func(cfg *Config, col *[maxCols][]float64, j int) float64 {
		if reduced.Add(1) == after {
			cancel()
		}
		return inner(cfg, col, j)
	}
	return ev
}

// TestInterruptedSweepCountersAgree is the satellite regression test for
// the trial-accounting audit: cancel a sweep mid-batch and cross-check
// that the runner-visible PartialError.Completed and Metrics.Trials agree
// exactly — the partial block is neither dropped nor double-counted —
// under both engines.
func TestInterruptedSweepCountersAgree(t *testing.T) {
	const trials = 64 * batchBlock

	t.Run("batched", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := testConfig(trials)
		cfg.Metrics = NewMetrics(obs.NewRegistry())
		var reduced atomic.Int64
		_, err := runBatched(ctx, cfg, cancellingEval(cancel, batchBlock+3, &reduced))
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PartialError", err)
		}
		if got := cfg.Metrics.Trials.Get(); got != int64(pe.Completed) {
			t.Errorf("mc_trials_total = %d, PartialError.Completed = %d; counters disagree", got, pe.Completed)
		}
		if pe.Completed < batchBlock+3 || pe.Completed >= trials {
			t.Errorf("Completed = %d, want a mid-sweep value in [%d, %d)", pe.Completed, batchBlock+3, trials)
		}
		if got := cfg.Metrics.Sweeps.Get(); got != 0 {
			t.Errorf("mc_sweeps_total = %d after interruption, want 0", got)
		}
	})

	t.Run("scalar", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := testConfig(trials)
		cfg.Metrics = NewMetrics(obs.NewRegistry())
		var evaluated atomic.Int64
		_, err := runParallel(ctx, cfg, func(rng *rand.Rand) float64 {
			if evaluated.Add(1) == 100 {
				cancel()
			}
			return twoReceiverGain(cfg, TechSIC, crossSample(cfg, rng))
		})
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PartialError", err)
		}
		if got := cfg.Metrics.Trials.Get(); got != int64(pe.Completed) {
			t.Errorf("mc_trials_total = %d, PartialError.Completed = %d; counters disagree", got, pe.Completed)
		}
		if got := cfg.Metrics.Sweeps.Get(); got != 0 {
			t.Errorf("mc_sweeps_total = %d after interruption, want 0", got)
		}
	})
}

// TestCancelAfterFinalTrialIsNotPartial pins the accounting fix: a context
// cancelled only after every trial has finished yields a complete result —
// the samples are byte-identical to an uncancelled run's, so reporting
// "interrupted after N/N trials" (with Metrics.Trials already at N) was a
// contradiction.
func TestCancelAfterFinalTrialIsNotPartial(t *testing.T) {
	t.Run("batched", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := testConfig(batchBlock) // exactly one block
		cfg.Metrics = NewMetrics(obs.NewRegistry())
		var reduced atomic.Int64
		out, err := runBatched(ctx, cfg, cancellingEval(cancel, batchBlock, &reduced))
		if err != nil {
			t.Fatalf("fully-completed sweep reported error: %v", err)
		}
		if len(out) != batchBlock {
			t.Fatalf("len(out) = %d, want %d", len(out), batchBlock)
		}
		if got := cfg.Metrics.Trials.Get(); got != batchBlock {
			t.Errorf("mc_trials_total = %d, want %d", got, batchBlock)
		}
		if got := cfg.Metrics.Sweeps.Get(); got != 1 {
			t.Errorf("mc_sweeps_total = %d, want 1", got)
		}
	})

	t.Run("scalar", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const trials = 8
		cfg := testConfig(trials)
		cfg.Scalar = true
		cfg.Metrics = NewMetrics(obs.NewRegistry())
		var evaluated atomic.Int64
		out, err := runParallel(ctx, cfg, func(rng *rand.Rand) float64 {
			if evaluated.Add(1) == trials {
				cancel()
			}
			return twoReceiverGain(cfg, TechSIC, crossSample(cfg, rng))
		})
		if err != nil {
			t.Fatalf("fully-completed sweep reported error: %v", err)
		}
		if len(out) != trials {
			t.Fatalf("len(out) = %d, want %d", len(out), trials)
		}
		if got := cfg.Metrics.Sweeps.Get(); got != 1 {
			t.Errorf("mc_sweeps_total = %d, want 1", got)
		}
	})
}

// TestBatchedTrialPanicSurfacesAsError mirrors the scalar engine's panic
// contract: the error names the panicking trial and carries a stack.
func TestBatchedTrialPanicSurfacesAsError(t *testing.T) {
	cfg := testConfig(2*batchBlock + 10)
	ev := twoReceiverEval(TechSIC)
	inner := ev.gain
	ev.gain = func(c *Config, col *[maxCols][]float64, j int) float64 {
		if j == 7 {
			panic("boom")
		}
		return inner(c, col, j)
	}
	_, err := runBatched(context.Background(), cfg, ev)
	if err == nil {
		t.Fatal("panicking trial returned nil error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic error %q missing value or marker", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("panic error should carry a stack trace, got %q", err)
	}
}

// TestBatchedSteadyStateAllocs guards the tentpole's headline: the batched
// engine amortises all per-trial scratch into per-worker arenas, so a
// sweep's allocation count is tiny and independent of Trials.
func TestBatchedSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting sweep")
	}
	const trials = 16 * batchBlock
	cfg := testConfig(trials)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := TwoReceiverGains(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: result slice, per-worker arenas, channels/goroutines — all
	// O(workers), none O(trials). 0.05 allocs/trial ≈ 200 for this sweep.
	if perTrial := allocs / trials; perTrial > 0.05 {
		t.Errorf("batched sweep allocated %.0f times (%.3f/trial), want ~0/trial", allocs, perTrial)
	}
}
