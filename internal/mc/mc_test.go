package mc

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/stats"
)

func testConfig(trials int) Config {
	pl, err := phy.NewPathLoss(4, 1, 60)
	if err != nil {
		panic(err)
	}
	return Config{
		Trials: trials,
		Seed:   1,
		// The paper separates transmitters by the range itself, so the
		// coverage discs overlap and SIC's topological conditions occur.
		Separation: 20,
		Range:      20,
		PathLoss:   pl,
		Channel:    phy.Wifi20MHz,
		PacketBits: 12000,
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig(10)
	bad := base
	bad.Trials = 0
	if _, err := TwoReceiverGains(context.Background(), bad); err == nil {
		t.Error("zero trials accepted")
	}
	bad = base
	bad.Range = 0
	if _, err := TwoReceiverGains(context.Background(), bad); err == nil {
		t.Error("zero range accepted")
	}
	bad = base
	bad.Separation = 0
	if _, err := TwoReceiverGains(context.Background(), bad); err == nil {
		t.Error("zero separation accepted for two-receiver")
	}
	bad = base
	bad.PacketBits = 0
	if _, err := SameReceiverGains(context.Background(), bad, TechSIC); err == nil {
		t.Error("zero packet bits accepted")
	}
	bad = base
	bad.Channel = phy.Channel{}
	if _, err := SameReceiverGains(context.Background(), bad, TechSIC); err == nil {
		t.Error("zero channel accepted")
	}
	bad = base
	bad.PathLoss = phy.PathLoss{}
	if _, err := SameReceiverGains(context.Background(), bad, TechSIC); err == nil {
		t.Error("zero path loss accepted")
	}
}

func TestTwoReceiverGainsMatchPaperShape(t *testing.T) {
	// Fig. 6's headline: no gain from SIC in ~90% of random two-receiver
	// topologies. Allow a generous band around the paper's number.
	gains, err := TwoReceiverGains(context.Background(), testConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	e, err := stats.NewECDF(gains)
	if err != nil {
		t.Fatal(err)
	}
	noGain := e.At(1.0)
	if noGain < 0.70 || noGain > 0.999 {
		t.Errorf("fraction with no SIC gain = %v, want the large majority (paper: ≈0.9)", noGain)
	}
	for _, g := range gains {
		if g < 1-1e-12 {
			t.Fatalf("gain %v below 1", g)
		}
	}
}

func TestTwoReceiverGainsDeterministic(t *testing.T) {
	a, err := TwoReceiverGains(context.Background(), testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoReceiverGains(context.Background(), testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSameReceiverTechniqueOrdering(t *testing.T) {
	// Fig. 11a: every technique dominates plain SIC in distribution, and
	// plain SIC itself yields gains ≥ 1.
	cfg := testConfig(4000)
	sic, err := SameReceiverGains(context.Background(), cfg, TechSIC)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{TechPowerControl, TechMultirate, TechPacking} {
		withTech, err := SameReceiverGains(context.Background(), cfg, tech)
		if err != nil {
			t.Fatal(err)
		}
		// Identical seeds → same topology per index → pointwise comparison
		// is meaningful.
		worse := 0
		for i := range sic {
			if withTech[i] < sic[i]-1e-9 {
				worse++
			}
		}
		if worse > 0 {
			t.Errorf("%v made %d/%d topologies worse than plain SIC", tech, worse, len(sic))
		}
	}
}

func TestSameReceiverSICGainBand(t *testing.T) {
	// Fig. 11a: plain SIC gains over 20% in roughly 20% of topologies —
	// modest but real. Accept a broad band.
	gains, err := SameReceiverGains(context.Background(), testConfig(5000), TechSIC)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := stats.NewECDF(gains)
	frac := e.FracAbove(1.2)
	if frac < 0.03 || frac > 0.6 {
		t.Errorf("fraction of one-receiver topologies with >20%% SIC gain = %v, want a modest minority (paper: ≈0.2)", frac)
	}
}

func TestTechniquesBeatPlainSICInAggregate(t *testing.T) {
	// Fig. 11a: with a mechanism, >20% gain in ~40% of topologies — roughly
	// double plain SIC's fraction. Check the aggregate ordering.
	cfg := testConfig(5000)
	sic, _ := SameReceiverGains(context.Background(), cfg, TechSIC)
	pc, _ := SameReceiverGains(context.Background(), cfg, TechPowerControl)
	eSIC, _ := stats.NewECDF(sic)
	ePC, _ := stats.NewECDF(pc)
	if ePC.FracAbove(1.2) <= eSIC.FracAbove(1.2) {
		t.Errorf("power control should raise the >20%%-gain fraction: %v vs %v",
			ePC.FracAbove(1.2), eSIC.FracAbove(1.2))
	}
}

func TestTwoReceiverTechniqueGains(t *testing.T) {
	cfg := testConfig(4000)
	plain, err := TwoReceiverTechniqueGains(context.Background(), cfg, TechSIC)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := TwoReceiverTechniqueGains(context.Background(), cfg, TechPacking)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if packed[i] < plain[i]-1e-9 {
			t.Fatalf("packing made topology %d worse: %v < %v", i, packed[i], plain[i])
		}
	}
	// Fig. 11b: even with optimisations the two-receiver case gains little.
	ePacked, _ := stats.NewECDF(packed)
	if frac := ePacked.FracAbove(1.2); frac > 0.5 {
		t.Errorf("two-receiver packing >20%% gain fraction = %v; paper says very little gain", frac)
	}
}

func TestTechniqueString(t *testing.T) {
	want := map[Technique]string{
		TechSIC:          "SIC",
		TechPowerControl: "SIC+power-control",
		TechMultirate:    "SIC+multirate",
		TechPacking:      "SIC+packing",
		Technique(42):    "unknown-technique",
	}
	for tech, s := range want {
		if tech.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(tech), tech.String(), s)
		}
	}
}

func TestCancelledContextAbortsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TwoReceiverGains(ctx, testConfig(100000)); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestCancellationDoesNotPerturbSeeding(t *testing.T) {
	// Cancellation must only decide how many trials run, never which seed a
	// trial index gets: a full run after a cancelled run is still identical
	// to a fresh full run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = TwoReceiverGains(ctx, testConfig(500))
	a, err := TwoReceiverGains(context.Background(), testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoReceiverGains(context.Background(), testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs after a cancelled run: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrialPanicSurfacesAsError(t *testing.T) {
	cfg := testConfig(64)
	_, err := runParallel(context.Background(), cfg, func(_ *rand.Rand) float64 {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panicking trial returned nil error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic error %q missing value or marker", err)
	}
	if !strings.Contains(err.Error(), "runParallel") && !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("panic error should carry a stack trace, got %q", err)
	}
}

// TestPartialErrorReportsProgress pins satellite-3's contract: a cancelled
// sweep surfaces how many trials finished, wrapped so errors.Is still
// classifies it as the context error.
func TestPartialErrorReportsProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TwoReceiverGains(ctx, testConfig(100000))
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PartialError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("PartialError does not unwrap to context.Canceled: %v", err)
	}
	if pe.Trials != 100000 {
		t.Errorf("Trials = %d, want 100000", pe.Trials)
	}
	if pe.Completed < 0 || pe.Completed > pe.Trials {
		t.Errorf("Completed = %d out of range [0, %d]", pe.Completed, pe.Trials)
	}
	want := "mc: sweep interrupted after"
	if !strings.Contains(err.Error(), want) || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error %q missing %q or cause", err, want)
	}
}

func TestMetricsCountCompletedSweep(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(200)
	cfg.Metrics = NewMetrics(reg)
	if _, err := TwoReceiverGains(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Metrics.Trials.Get(); got != 200 {
		t.Errorf("mc_trials_total = %d, want 200", got)
	}
	if got := cfg.Metrics.Sweeps.Get(); got != 1 {
		t.Errorf("mc_sweeps_total = %d, want 1", got)
	}
	if got := cfg.Metrics.SweepSeconds.Count(); got != 1 {
		t.Errorf("mc_sweep_seconds count = %d, want 1", got)
	}
	if got := cfg.Metrics.TrialsPerSec.Get(); got <= 0 {
		t.Errorf("mc_trials_per_second = %v, want > 0", got)
	}
}

func TestMetricsCountInterruptedSweep(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(100000)
	cfg.Metrics = NewMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TwoReceiverGains(ctx, cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if got := cfg.Metrics.Trials.Get(); got != int64(pe.Completed) {
		t.Errorf("mc_trials_total = %d, want Completed = %d", got, pe.Completed)
	}
	if got := cfg.Metrics.Sweeps.Get(); got != 0 {
		t.Errorf("mc_sweeps_total = %d after interruption, want 0", got)
	}
}
