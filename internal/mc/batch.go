package mc

// The batched, columnar Monte-Carlo engine. Instead of allocating a fresh
// RNG and evaluating one topology at a time, workers pull blocks of trial
// indices, draw the block's topologies into structure-of-arrays distance
// columns held in a per-worker arena, convert whole columns to SNR with the
// phy slice kernels, and only then reduce each trial to its gain sample.
// Steady state is ~0 allocations per trial: the arena (columns + one
// reusable *rand.Rand) is allocated once per worker per sweep.
//
// Determinism contract (see DESIGN.md): trial i's stream is obtained by
// re-seeding the worker's RNG to Seed + i*trialSeedStride, which by
// construction of math/rand yields the exact same variates as the scalar
// engine's rand.New(rand.NewSource(...)) per trial. Draw order inside a
// trial matches the scalar closures call for call, and the phy slice
// kernels are element-wise wrappers of the scalar functions, so the two
// engines produce bit-identical samples for the same Config — pinned by
// the oracle tests in batch_test.go and the golden tests in
// internal/experiments.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topo"
)

// batchBlock is how many trials a worker processes per dispatch. Big
// enough to amortise channel handoffs and keep the column kernels in
// straight-line loops, small enough that the arena (maxCols columns of
// float64) stays comfortably inside L1/L2 and cancellation latency stays
// bounded: a worker finishes at most one in-flight block after ctx fires.
const batchBlock = 256

// maxCols is the widest column set any sweep needs (the two-receiver
// topologies have four transmitter→receiver distances).
const maxCols = 4

// batchEval describes one sweep family to the batched engine.
type batchEval struct {
	// cols is how many leading arena columns draw fills with distances;
	// the engine converts each to SNR in place with PathLoss.SNRAtSlice.
	cols int
	// draw consumes trial j's RNG stream (already seeded for the global
	// trial index) and writes its distance columns at row j. It must
	// consume variates in exactly the order the scalar engine's closure
	// does.
	draw func(cfg *Config, rng *rand.Rand, col *[maxCols][]float64, j int)
	// gain reduces row j of the (now SNR-valued) columns to the trial's
	// sample, via the same helper the scalar engine calls.
	gain func(cfg *Config, col *[maxCols][]float64, j int) float64
}

// arena is the per-worker reusable scratch: one RNG re-seeded per trial
// and the structure-of-arrays columns for one block.
type arena struct {
	rng *rand.Rand
	col [maxCols][]float64
}

func newArena(cols int) *arena {
	a := &arena{rng: rand.New(rand.NewSource(0))}
	for k := 0; k < cols; k++ {
		a.col[k] = make([]float64, batchBlock)
	}
	return a
}

// runBlock processes trials [lo, hi): draw pass, column SNR pass, reduce
// pass. done advances once per finished trial, so progress accounting
// under cancellation agrees with the scalar engine (a partial final block
// is simply a shorter one — never dropped or double-counted). A panic is
// recovered and attributed to the trial being processed.
func (a *arena) runBlock(cfg *Config, ev batchEval, lo, hi int, out []float64, done *atomic.Int64) (err error) {
	cur := lo
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mc: trial %d panicked: %v\n%s", cur, r, debug.Stack())
		}
	}()
	n := hi - lo
	for j := 0; j < n; j++ {
		cur = lo + j
		a.rng.Seed(cfg.Seed + int64(cur)*trialSeedStride)
		ev.draw(cfg, a.rng, &a.col, j)
	}
	cur = lo // the column kernels span the block; attribute to its start
	for k := 0; k < ev.cols; k++ {
		cfg.PathLoss.SNRAtSlice(a.col[k][:n], a.col[k][:n])
	}
	for j := 0; j < n; j++ {
		cur = lo + j
		out[cur] = ev.gain(cfg, &a.col, j)
		done.Add(1)
	}
	return nil
}

// runBatched is the block-dispatch twin of runParallel: same worker-pool
// shape, same cancellation semantics, same per-trial seed derivation —
// but trials travel in blocks and all per-trial scratch lives in the
// worker's arena.
func runBatched(parent context.Context, cfg Config, ev batchEval) ([]float64, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var tm obs.Timer
	if cfg.Metrics != nil {
		tm = obs.StartTimer()
	}

	var done atomic.Int64
	out := make([]float64, cfg.Trials)
	blocks := (cfg.Trials + batchBlock - 1) / batchBlock
	workers := runtime.GOMAXPROCS(0)
	if workers > blocks {
		workers = blocks
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for b := 0; b < blocks; b++ {
			select {
			case next <- b:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			a := newArena(ev.cols)
			for b := range next {
				lo := b * batchBlock
				hi := lo + batchBlock
				if hi > cfg.Trials {
					hi = cfg.Trials
				}
				if err := a.runBlock(&cfg, ev, lo, hi, out, &done); err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = err
					}
					failMu.Unlock()
					cancel() // stop dispatching further blocks
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := finishSweep(cfg, tm, done.Load(), parent, failErr); err != nil {
		return nil, err
	}
	return out, nil
}

// twoReceiverEval is the batched form of the Fig. 6 / Fig. 11 two-receiver
// sweeps: four distance columns (T1→R1, T2→R1, T1→R2, T2→R2, mirroring
// crossSample's matrix layout) reduced through twoReceiverGain.
func twoReceiverEval(tech Technique) batchEval {
	return batchEval{
		cols: 4,
		draw: func(cfg *Config, rng *rand.Rand, col *[maxCols][]float64, j int) {
			pl := topo.PlaceTwoLinks(rng, cfg.Separation, cfg.Range)
			col[0][j] = pl.T1.Dist(pl.R1)
			col[1][j] = pl.T2.Dist(pl.R1)
			col[2][j] = pl.T1.Dist(pl.R2)
			col[3][j] = pl.T2.Dist(pl.R2)
		},
		gain: func(cfg *Config, col *[maxCols][]float64, j int) float64 {
			var x core.Cross
			x.S[0][0] = col[0][j]
			x.S[0][1] = col[1][j]
			x.S[1][0] = col[2][j]
			x.S[1][1] = col[3][j]
			return twoReceiverGain(*cfg, tech, x)
		},
	}
}

// sameReceiverEval is the batched form of the Fig. 11 common-receiver
// sweep: two transmitter→receiver distance columns reduced through
// sameReceiverGain.
func sameReceiverEval(tech Technique) batchEval {
	return batchEval{
		cols: 2,
		draw: func(cfg *Config, rng *rand.Rand, col *[maxCols][]float64, j int) {
			rx := topo.Point{}
			t1 := topo.UniformInDisc(rng, rx, cfg.Range)
			t2 := topo.UniformInDisc(rng, rx, cfg.Range)
			col[0][j] = rx.Dist(t1)
			col[1][j] = rx.Dist(t2)
		},
		gain: func(cfg *Config, col *[maxCols][]float64, j int) float64 {
			return sameReceiverGain(*cfg, tech, core.Pair{S1: col[0][j], S2: col[1][j]})
		},
	}
}
