package schedd

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/session"
)

// Handoff transfers one station's session to the peer daemon at addr
// (host:port of its query listener). Attempts carry a per-attempt deadline
// and retry under capped exponential backoff with jitter; the transfer ID
// makes retries idempotent at the peer, so a reply lost on the wire cannot
// double-install the session. On success the session and the station's
// table entry are removed locally. When every attempt fails the session
// stays local and the error is returned: the station simply starts cold at
// the peer, which is the designed degradation, and the abandonment is
// counted.
func (s *Server) Handoff(ctx context.Context, station uint32, addr string) (uint64, error) {
	st, ok := s.sessions.Get(station)
	if !ok {
		return 0, fmt.Errorf("schedd: no session for station %d", station)
	}
	transfer := s.transferBase ^ s.transferSeq.Add(1)
	line := "HANDOFF " + base64.StdEncoding.EncodeToString(session.EncodeHandoff(transfer, st)) + "\n"

	backoff := s.cfg.HandoffBackoff
	var lastErr error
	for attempt := 0; attempt < s.cfg.HandoffAttempts; attempt++ {
		if attempt > 0 {
			s.sessionEvents.Inc("handoff_retry")
			if err := s.sleep(ctx, s.withJitter(backoff)); err != nil {
				lastErr = err
				break
			}
			if backoff *= 2; backoff > s.cfg.HandoffMaxBackoff {
				backoff = s.cfg.HandoffMaxBackoff
			}
		}
		if err := s.handoffAttempt(ctx, addr, line, transfer); err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		// Acknowledged: the peer owns the session now.
		s.sessions.Remove(station, transfer, s.cfg.now())
		s.table.remove(st.AP, station)
		s.sessionEvents.Inc("handoff_ok")
		return transfer, nil
	}
	s.sessionEvents.Inc("handoff_abandoned")
	return transfer, fmt.Errorf("schedd: handoff of station %d to %s abandoned after %d attempts: %w",
		station, addr, s.cfg.HandoffAttempts, lastErr)
}

// handoffAttempt makes one round trip: dial, send the HANDOFF line, read
// the one-line JSON reply, verify the transfer echo. A reply marked
// applied=false is still success — it means a previous attempt landed and
// the peer deduplicated this one.
func (s *Server) handoffAttempt(ctx context.Context, addr, line string, transfer uint64) error {
	actx, cancel := context.WithTimeout(ctx, s.cfg.HandoffTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(actx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	//lint:allow closecheck read side already saw the reply or the error; close is best-effort
	defer conn.Close()
	dl, ok := actx.Deadline()
	if !ok {
		dl = s.cfg.now().Add(s.cfg.HandoffTimeout)
	}
	if err := conn.SetDeadline(dl); err != nil {
		return fmt.Errorf("deadline %s: %w", addr, err)
	}
	if _, err := conn.Write([]byte(line)); err != nil {
		return fmt.Errorf("send %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 4096)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("reply %s: %w", addr, err)
		}
		return fmt.Errorf("reply %s: connection closed", addr)
	}
	var resp struct {
		Transfer string `json:"transfer"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return fmt.Errorf("reply %s: %w", addr, err)
	}
	if resp.Error != "" {
		return fmt.Errorf("peer %s rejected handoff: %s", addr, resp.Error)
	}
	if want := fmt.Sprintf("%016x", transfer); resp.Transfer != want {
		return fmt.Errorf("peer %s acked transfer %s, want %s", addr, resp.Transfer, want)
	}
	return nil
}

// withJitter spreads d over [0.5d, 1.5d) so synchronized failures do not
// retry in lockstep.
func (s *Server) withJitter(d time.Duration) time.Duration {
	s.jitterMu.Lock()
	f := 0.5 + s.jitter.Float64()
	s.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleep waits d or until ctx is done, whichever comes first.
func (s *Server) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
