package schedd

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape fetches one admin path and returns the body.
func scrape(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// promValue extracts the value of one exact series line ("name{labels}")
// from exposition text; ok is false when the series is absent.
func promValue(text, series string) (v int64, ok bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, found := strings.CutPrefix(line, series+" ")
		if !found {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return int64(f), true
	}
	return 0, false
}

// TestMetricsEndpointMatchesDrainDump drives report and query traffic at a
// daemon whose registry is mounted on an admin mux, scrapes /metrics while
// the daemon is live, and then checks the final exposition against the
// drain-time counter dump: every event counter the daemon reports over
// HEALTH/String must appear in /metrics with the identical value — one
// snapshot path, two renderings.
func TestMetricsEndpointMatchesDrainDump(t *testing.T) {
	s, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.AdminMux(s.Registry(), nil))
	defer srv.Close()

	for st := 1; st <= 8; st++ {
		sendReports(t, s, Report{AP: 1, Station: uint32(st), Seq: 1, SNRMilliDB: int32(10_000 + 2_000*st)})
	}
	waitCounter(t, s, "reports_ok", 8)

	c := dialQuery(t, s)
	defer c.close()
	const queries = 25
	for i := 0; i < queries; i++ {
		if resp := c.roundTrip(t, "SCHED 1"); resp["error"] != nil {
			t.Fatalf("query %d failed: %v", i, resp["error"])
		}
		if i == queries/2 {
			// Mid-traffic scrape: the endpoint is live while the daemon
			// serves, and already exposes the family being incremented.
			code, body := scrape(t, srv, "/metrics")
			if code != http.StatusOK {
				t.Fatalf("/metrics mid-run status %d", code)
			}
			if !strings.Contains(body, "sicschedd_ladder_seconds_bucket") {
				t.Error("mid-run scrape missing ladder histogram")
			}
		}
	}
	c.roundTrip(t, "BOGUS")   // query_bad
	c.roundTrip(t, "SCHED 9") // served_empty
	c.roundTrip(t, "HEALTH")  // health_queries

	if code, _ := scrape(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
	if code, _ := scrape(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	shutdown(t, s)

	_, body := scrape(t, srv, "/metrics")
	snap := s.Counters().Snapshot()
	if snap["queries"] < queries {
		t.Fatalf("drain dump lost queries: %v", snap)
	}
	for name, want := range snap {
		series := fmt.Sprintf(`sicschedd_events_total{event="%s"}`, name)
		got, ok := promValue(body, series)
		if !ok {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, drain dump says %d", series, got, want)
		}
	}

	// The planner-reuse counters ride the same registry: one serial client
	// issued every query for one AP, so the first solve ran cold and each
	// repeat warm-started (no contention possible on a single connection).
	planner := s.PlannerEvents().Snapshot()
	if planner["plan_cold"] != 1 || planner["plan_warm"] != queries-1 || planner["plan_contended"] != 0 {
		t.Errorf("planner counters %v, want 1 cold + %d warm", planner, queries-1)
	}
	for name, want := range planner {
		series := fmt.Sprintf(`sicschedd_planner_total{path="%s"}`, name)
		if got, ok := promValue(body, series); !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", series, got, ok, want)
		}
	}

	// Every served query timed at least one rung attempt, so the ladder
	// histogram cannot undercount the serving counters.
	var attempts, served int64
	for _, lvl := range []Level{LevelBlossom, LevelGreedy, LevelSerial} {
		series := fmt.Sprintf(`sicschedd_ladder_seconds_count{level="%s"}`, lvl)
		n, ok := promValue(body, series)
		if !ok {
			t.Fatalf("series %s missing from /metrics", series)
		}
		attempts += n
		served += snap["served_"+lvl.String()]
	}
	if attempts < served {
		t.Errorf("ladder attempts %d < served queries %d", attempts, served)
	}
	if n, ok := promValue(body, "sicschedd_query_seconds_count"); !ok || n != served {
		t.Errorf("sicschedd_query_seconds_count = %d (present %v), want %d", n, ok, served)
	}
}
