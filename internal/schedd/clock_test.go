package schedd

import (
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock. No background ticking: time moves
// only when the test says so, making every duration the daemon computes
// exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// newFakeClock starts far in the future so any time that leaks in from the
// real clock is immediately recognisable by its year.
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2030, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestInjectedClockDrivesAllTimeReads is the regression test for the clock
// bypasses: the daemon installed cfg.now but read time.Now directly for the
// idle read deadline, the query latency and the shutdown nudge. With every
// read routed through the injected clock, a fake clock must see exact
// daemon time arithmetic: a 50 ms solver stall reports elapsed_ms == 50, a
// 5 s advance reports uptime accordingly, and every read deadline is
// derived from fake time (year 2030), not the wall clock.
func TestInjectedClockDrivesAllTimeReads(t *testing.T) {
	fc := newFakeClock()
	var mu sync.Mutex
	var deadlines []time.Time
	cfg := Config{
		now: fc.Now,
		slowLevel: func(l Level) {
			if l == LevelBlossom {
				fc.Advance(50 * time.Millisecond)
			}
		},
		setReadDeadline: func(conn net.Conn, dl time.Time) error {
			mu.Lock()
			deadlines = append(deadlines, dl)
			mu.Unlock()
			// Bridge to a real deadline with the same remaining duration, so
			// the kernel still enforces what the fake deadline means.
			return conn.SetReadDeadline(time.Now().Add(dl.Sub(fc.Now())))
		},
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sendReports(t, s,
		Report{AP: 1, Station: 1, Seq: 1, SNRMilliDB: 30_000},
		Report{AP: 1, Station: 2, Seq: 1, SNRMilliDB: 20_000},
	)
	waitCounter(t, s, "reports_ok", 2)

	c := dialQuery(t, s)
	defer c.close()
	resp := c.roundTrip(t, "SCHED 1")
	if e, ok := resp["error"]; ok {
		t.Fatalf("SCHED failed: %v", e)
	}
	// The blossom stall advanced the fake clock exactly 50 ms between the
	// query's start and end reads. The old code read the wall clock here and
	// would report ~0.
	if got := resp["elapsed_ms"].(float64); got != 50 {
		t.Errorf("elapsed_ms = %v, want exactly 50", got)
	}

	fc.Advance(5 * time.Second)
	h := c.roundTrip(t, "HEALTH")
	// 50 ms from the stall plus the 5 s advance, measured from the fake
	// start time. The old code mixed time.Since into fake arithmetic.
	if got := h["uptime_ms"].(float64); got != 5050 {
		t.Errorf("uptime_ms = %v, want exactly 5050", got)
	}

	mu.Lock()
	if len(deadlines) == 0 {
		t.Fatal("setReadDeadline hook never invoked")
	}
	for i, dl := range deadlines {
		if dl.Year() != 2030 {
			t.Errorf("deadline %d = %v derived from the wall clock, want fake time", i, dl)
		}
	}
	mu.Unlock()

	shutdown(t, s)
	// The drain nudge must be "fake now", not wall now: an idle handler is
	// kicked out of its read immediately in daemon time.
	mu.Lock()
	last := deadlines[len(deadlines)-1]
	mu.Unlock()
	if !last.Equal(fc.Now()) {
		t.Errorf("shutdown nudge deadline = %v, want %v", last, fc.Now())
	}
}
