package schedd

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/phy"
	"repro/internal/sched"
)

func ladderClients(n int) []sched.Client {
	rng := rand.New(rand.NewSource(99))
	cs := make([]sched.Client, n)
	for i := range cs {
		cs[i] = sched.Client{ID: "c", SNR: phy.FromDB(5 + 30*rng.Float64())}
	}
	return cs
}

var ladderOpts = sched.Options{Channel: phy.Wifi20MHz, PacketBits: 12000}

// TestLadderPrefersBlossom: with generous budgets the top rung answers.
func TestLadderPrefersBlossom(t *testing.T) {
	res, err := runLadder(context.Background(), ladderClients(12), ladderOpts,
		Budgets{Blossom: 5 * time.Second, Greedy: 5 * time.Second}, ladderHooks{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelBlossom {
		t.Fatalf("level = %v, want blossom", res.level)
	}
	if len(res.schedule.Slots) == 0 {
		t.Fatal("empty schedule")
	}
}

// TestLadderDegradesUnderBudgets: a simulated slow solver (60 ms per rung)
// under a 50 ms blossom budget and 10 ms greedy budget must degrade all the
// way to serial — and still answer. This is the acceptance scenario: a
// 40-client snapshot with an injected per-rung stall can never hold a query
// past its deadline.
func TestLadderDegradesUnderBudgets(t *testing.T) {
	clients := ladderClients(40)
	delays := map[Level]time.Duration{
		LevelBlossom: 60 * time.Millisecond,
		LevelGreedy:  60 * time.Millisecond,
	}
	var visited []Level
	slow := func(l Level) {
		visited = append(visited, l)
		time.Sleep(delays[l])
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	res, err := runLadder(ctx, clients, ladderOpts,
		Budgets{Blossom: 50 * time.Millisecond, Greedy: 10 * time.Millisecond}, ladderHooks{slow: slow}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelSerial {
		t.Fatalf("level = %v, want serial", res.level)
	}
	if len(res.schedule.Slots) != len(clients) {
		t.Fatalf("serial schedule has %d slots, want %d", len(res.schedule.Slots), len(clients))
	}
	if len(visited) != 3 || visited[0] != LevelBlossom || visited[1] != LevelGreedy || visited[2] != LevelSerial {
		t.Fatalf("ladder order %v, want blossom, greedy, serial", visited)
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Fatalf("degraded query took %v; budgets not enforced", e)
	}
}

// TestLadderSkipsToSerialOnDeadQuery: when the overall query deadline is
// already gone, the matching rungs are skipped entirely and serial still
// answers (the daemon never returns nothing when it has clients).
func TestLadderSkipsToSerialOnDeadQuery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visited []Level
	res, err := runLadder(ctx, ladderClients(6), ladderOpts,
		Budgets{Blossom: time.Second, Greedy: time.Second},
		ladderHooks{slow: func(l Level) { visited = append(visited, l) }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelSerial {
		t.Fatalf("level = %v, want serial", res.level)
	}
	if len(visited) != 1 || visited[0] != LevelSerial {
		t.Fatalf("visited %v, want only serial", visited)
	}
}

// TestLadderGreedyRung: blossom exhausted, greedy fits — the middle rung
// answers and is recorded.
func TestLadderGreedyRung(t *testing.T) {
	slow := func(l Level) {
		if l == LevelBlossom {
			time.Sleep(30 * time.Millisecond)
		}
	}
	res, err := runLadder(context.Background(), ladderClients(10), ladderOpts,
		Budgets{Blossom: 5 * time.Millisecond, Greedy: 5 * time.Second}, ladderHooks{slow: slow}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelGreedy {
		t.Fatalf("level = %v, want greedy", res.level)
	}
}

// TestLadderObservesRungLatency: the observe hook sees every rung attempt,
// timed by the injected clock — each attempt reads the clock exactly twice,
// so a 1 ms-per-read step clock yields exactly 1 ms per attempt.
func TestLadderObservesRungLatency(t *testing.T) {
	base := time.Unix(1000, 0)
	var reads int
	now := func() time.Time {
		reads++
		return base.Add(time.Duration(reads) * time.Millisecond)
	}
	type rec struct {
		l Level
		d time.Duration
	}
	var recs []rec
	hooks := ladderHooks{now: now, observe: func(l Level, d time.Duration) { recs = append(recs, rec{l, d}) }}

	res, err := runLadder(context.Background(), ladderClients(8), ladderOpts,
		Budgets{Blossom: 5 * time.Second, Greedy: 5 * time.Second}, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelBlossom {
		t.Fatalf("level = %v, want blossom", res.level)
	}
	if len(recs) != 1 || recs[0].l != LevelBlossom || recs[0].d != time.Millisecond {
		t.Fatalf("observations %v, want one blossom attempt of exactly 1ms", recs)
	}

	// A dead query skips straight to serial; the serial attempt is observed
	// too — it is part of the latency story even though it cannot stall.
	recs = nil
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = runLadder(ctx, ladderClients(4), ladderOpts,
		Budgets{Blossom: time.Second, Greedy: time.Second}, hooks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.level != LevelSerial {
		t.Fatalf("level = %v, want serial", res.level)
	}
	if len(recs) != 1 || recs[0].l != LevelSerial || recs[0].d != time.Millisecond {
		t.Fatalf("observations %v, want one serial attempt of exactly 1ms", recs)
	}
}

// TestLadderReusesPlanner: consecutive ladder runs through the same
// Planner answer identically to plannerless runs, and after the first
// query the optimal rung warm-starts instead of solving from scratch.
func TestLadderReusesPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clients := ladderClients(14)
	pl := sched.NewPlanner(ladderOpts)
	budgets := Budgets{Blossom: 5 * time.Second, Greedy: 5 * time.Second}
	for round := 0; round < 6; round++ {
		if round > 0 {
			clients[rng.Intn(len(clients))].SNR *= 1 + 0.02*rng.Float64()
		}
		got, err := runLadder(context.Background(), clients, ladderOpts, budgets, ladderHooks{}, pl)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.level != LevelBlossom {
			t.Fatalf("round %d: level = %v, want blossom", round, got.level)
		}
		want, err := runLadder(context.Background(), clients, ladderOpts, budgets, ladderHooks{}, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if diff := got.schedule.Total - want.schedule.Total; diff > 1e-6*want.schedule.Total || diff < -1e-6*want.schedule.Total {
			t.Fatalf("round %d: planner total %v, plannerless total %v", round, got.schedule.Total, want.schedule.Total)
		}
	}
	if s := pl.Stats(); s.Cold != 1 || s.Warm != 5 {
		t.Fatalf("planner stats = %+v, want 1 cold + 5 warm across 6 queries", s)
	}
}

// TestLevelString: every rung has a stable, non-placeholder name (they are
// serialized into responses).
func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelBlossom: "blossom", LevelGreedy: "greedy", LevelSerial: "serial"} {
		if l.String() != want {
			t.Fatalf("Level(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}
