package schedd

import (
	"context"
	"encoding/base64"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/session"
)

// flakyProxy fronts a daemon's TCP listener and kills the first failN
// connections on accept — injected peer loss for retry coverage.
type flakyProxy struct {
	ln    net.Listener
	failN int32
	fails atomic.Int32
}

func newFlakyProxy(t *testing.T, target string, failN int32) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, failN: failN}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if p.fails.Add(1) <= p.failN {
				conn.Close() // injected loss
				continue
			}
			go proxyPipe(conn, target)
		}
	}()
	return p
}

func proxyPipe(client net.Conn, target string) {
	defer client.Close()
	server, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	defer server.Close()
	go io.Copy(server, client)
	io.Copy(client, server)
}

func fastHandoffCfg() Config {
	return Config{
		HandoffAttempts:   4,
		HandoffBackoff:    5 * time.Millisecond,
		HandoffMaxBackoff: 20 * time.Millisecond,
		HandoffTimeout:    500 * time.Millisecond,
	}
}

// TestHandoffRetriesThenSucceeds: with the first two connections to the
// peer cut, the transfer retries with backoff and completes exactly once;
// the session moves and both sides count the outcome.
func TestHandoffRetriesThenSucceeds(t *testing.T) {
	a, err := Start(fastHandoffCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, a)
	b, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	proxy := newFlakyProxy(t, b.TCPAddr().String(), 2)

	sendReports(t, a, Report{AP: 1, Station: 9, Seq: 5, SNRMilliDB: 22_000})
	waitCounter(t, a, "reports_ok", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Handoff(ctx, 9, proxy.ln.Addr().String()); err != nil {
		t.Fatalf("handoff failed despite retry budget: %v", err)
	}
	if got := a.SessionEvents().Get("handoff_retry"); got != 2 {
		t.Fatalf("handoff_retry = %d, want 2", got)
	}
	if got := a.SessionEvents().Get("handoff_ok"); got != 1 {
		t.Fatalf("handoff_ok = %d, want 1", got)
	}
	// The session left A entirely...
	if _, ok := a.Session(9); ok {
		t.Fatal("session still at origin after handoff")
	}
	if _, clients := a.Occupancy(); clients != 0 {
		t.Fatalf("origin table still holds %d clients", clients)
	}
	// ...and landed at B with its history and identity.
	st, ok := b.Session(9)
	if !ok {
		t.Fatal("session missing at peer")
	}
	if st.Seq != 5 || st.Handoffs != 1 {
		t.Fatalf("transferred session = %+v, want seq 5 handoffs 1", st)
	}
	if got := b.SessionEvents().Get("handoff_in"); got != 1 {
		t.Fatalf("peer handoff_in = %d, want 1", got)
	}
	// B can schedule the station straight away.
	c := dialQuery(t, b)
	defer c.close()
	resp := c.roundTrip(t, "SCHED 1")
	if resp["error"] != nil {
		t.Fatalf("peer cannot schedule handed-off station: %v", resp["error"])
	}
}

// TestHandoffReplayIsIdempotent: the same encoded transfer delivered twice
// (a retry after a lost ack) installs once and is acknowledged both times.
func TestHandoffReplayIsIdempotent(t *testing.T) {
	b, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)

	msg := session.EncodeHandoff(77, session.State{
		Station: 9, AP: 1, Seq: 5, SNRMilliDB: 22_000,
		FirstSeen: time.Now().Add(-time.Minute).UnixNano(),
		LastSeen:  time.Now().UnixNano(),
	})
	line := "HANDOFF " + base64.StdEncoding.EncodeToString(msg)

	c := dialQuery(t, b)
	defer c.close()
	first := c.roundTrip(t, line)
	if first["applied"] != true {
		t.Fatalf("first delivery not applied: %v", first)
	}
	second := c.roundTrip(t, line)
	if second["applied"] != false {
		t.Fatalf("replay applied again: %v", second)
	}
	if first["transfer"] != second["transfer"] {
		t.Fatalf("transfer echo differs: %v vs %v", first["transfer"], second["transfer"])
	}
	if got := b.SessionEvents().Get("handoff_dup"); got != 1 {
		t.Fatalf("handoff_dup = %d, want 1", got)
	}
	if st, _ := b.Session(9); st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1 (replay must not double-install)", st.Handoffs)
	}
}

// TestHandoffAbandonedKeepsSession: an unreachable peer exhausts the retry
// budget; the abandonment is counted and the session stays schedulable
// locally (the peer will simply see a cold session when the client shows
// up there).
func TestHandoffAbandonedKeepsSession(t *testing.T) {
	a, err := Start(fastHandoffCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, a)

	// A listener that closed: connections are refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	sendReports(t, a, Report{AP: 1, Station: 9, Seq: 5, SNRMilliDB: 22_000})
	waitCounter(t, a, "reports_ok", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Handoff(ctx, 9, deadAddr); err == nil {
		t.Fatal("handoff to dead peer reported success")
	}
	if got := a.SessionEvents().Get("handoff_abandoned"); got != 1 {
		t.Fatalf("handoff_abandoned = %d, want 1", got)
	}
	if got := a.SessionEvents().Get("handoff_retry"); got != 3 {
		t.Fatalf("handoff_retry = %d, want 3 (4 attempts)", got)
	}
	if _, ok := a.Session(9); !ok {
		t.Fatal("session lost on abandoned handoff")
	}
	c := dialQuery(t, a)
	defer c.close()
	if resp := c.roundTrip(t, "SCHED 1"); resp["error"] != nil {
		t.Fatalf("station unschedulable after abandoned handoff: %v", resp["error"])
	}
}

// TestMoveCommand: the MOVE query command drives a whole transfer over the
// wire, and a handoff for an unknown station is a clean error.
func TestMoveCommand(t *testing.T) {
	a, err := Start(fastHandoffCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, a)
	b, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)

	sendReports(t, a, Report{AP: 1, Station: 9, Seq: 5, SNRMilliDB: 22_000})
	waitCounter(t, a, "reports_ok", 1)

	c := dialQuery(t, a)
	defer c.close()
	resp := c.roundTrip(t, "MOVE 9 "+b.TCPAddr().String())
	if resp["error"] != nil {
		t.Fatalf("MOVE failed: %v", resp["error"])
	}
	if resp["transfer"] == "" {
		t.Fatalf("MOVE reply missing transfer ID: %v", resp)
	}
	if _, ok := b.Session(9); !ok {
		t.Fatal("MOVE did not deliver the session")
	}
	if resp := c.roundTrip(t, "MOVE 404 "+b.TCPAddr().String()); resp["error"] == nil {
		t.Fatal("MOVE of unknown station succeeded")
	}
	if resp := c.roundTrip(t, "MOVE notanumber x"); resp["error"] == nil {
		t.Fatal("malformed MOVE accepted")
	}
}

// TestKill9MidHandoff: the receiving daemon is killed in-process after the
// transfer lands; its restart recovers the handed-in session from the WAL
// and the origin's retry of the same transfer is still deduplicated.
func TestKill9MidHandoff(t *testing.T) {
	dir := t.TempDir()
	b, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	msg := session.EncodeHandoff(88, session.State{
		Station: 9, AP: 1, Seq: 5, SNRMilliDB: 22_000,
		FirstSeen: time.Now().Add(-time.Minute).UnixNano(),
		LastSeen:  time.Now().UnixNano(),
	})
	line := "HANDOFF " + base64.StdEncoding.EncodeToString(msg)
	c := dialQuery(t, b)
	if resp := c.roundTrip(t, line); resp["applied"] != true {
		t.Fatalf("transfer not applied: %v", resp)
	}
	c.close()
	b.Kill() // crash before any snapshot

	b2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b2)
	st, ok := b2.Session(9)
	if !ok {
		t.Fatal("handed-in session lost in crash")
	}
	if st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", st.Handoffs)
	}
	// The origin retries the transfer against the restarted peer: still a
	// duplicate, because the dedup set survived via the WAL.
	c2 := dialQuery(t, b2)
	defer c2.close()
	if resp := c2.roundTrip(t, line); resp["applied"] != false {
		t.Fatalf("transfer replay applied after restart: %v", resp)
	}
}
