package schedd

import (
	"bufio"
	"context"
	cryptorand "crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/session"
)

// Config parameterises the daemon. The zero value of every field gets a
// sensible default from fillDefaults; addresses default to loopback with
// kernel-assigned ports so tests can run many daemons concurrently.
type Config struct {
	// UDPAddr receives report datagrams.
	UDPAddr string
	// TCPAddr serves schedule and health queries.
	TCPAddr string
	// Sched configures cost computation; Channel and PacketBits are
	// defaulted to Wifi20MHz / 12000 bits when zero.
	Sched sched.Options
	// TTL is the client staleness bound: reports older than this are
	// evicted and never scheduled. Default 30s.
	TTL time.Duration
	// MaxClients bounds the per-AP client table. Default 64.
	MaxClients int
	// MaxAPs bounds how many APs the table tracks. Default 1024.
	MaxAPs int
	// QueueDepth bounds the ingest queue between the UDP reader and the
	// decode worker; overflow sheds oldest-first. Default 1024.
	QueueDepth int
	// Budgets are the per-rung time budgets of the degradation ladder.
	// Defaults: 50ms blossom, 10ms greedy.
	Budgets Budgets
	// QueryDeadline is the overall per-query budget; the ladder runs inside
	// it. Default 250ms.
	QueryDeadline time.Duration
	// MaxInflight bounds concurrently-served schedule queries; excess
	// queries are answered with an overload error and a retry-after hint
	// instead of queueing. Default 32.
	MaxInflight int
	// RetryAfter is the hint returned with overload responses. Default
	// 100ms.
	RetryAfter time.Duration
	// IdleTimeout closes query connections with no traffic. Default 60s.
	IdleTimeout time.Duration
	// Registry receives the daemon's metrics (event counters, per-rung
	// ladder latency histograms, query latency). Default: a fresh private
	// registry; pass a shared one to expose the daemon on an admin
	// endpoint alongside other subsystems.
	Registry *obs.Registry
	// DataDir enables durable sessions: the session table is persisted
	// there (snapshot + WAL) and recovered on restart. Empty keeps
	// sessions memory-only.
	DataDir string
	// MaxSessions bounds the durable session table. Default 4096.
	MaxSessions int
	// SessionHistory caps each session's retained report history.
	// Default 8.
	SessionHistory int
	// HandoffAttempts bounds AP-to-AP transfer tries before degrading to a
	// cold session at the peer. Default 4.
	HandoffAttempts int
	// HandoffBackoff is the initial retry delay, doubled per attempt with
	// ±50% jitter and capped at HandoffMaxBackoff. Defaults 50ms / 1s.
	HandoffBackoff    time.Duration
	HandoffMaxBackoff time.Duration
	// HandoffTimeout is the per-attempt deadline covering dial, write and
	// response. Default 2s.
	HandoffTimeout time.Duration
	// ShardID names this daemon inside a sharded gateway tier; it is
	// echoed (with a per-boot instance nonce and the last ring epoch the
	// gateway pushed) in HEALTH responses so a gateway can tell a healthy
	// shard from a restarted one that lost its sessions. Empty means the
	// daemon is standalone; the fields are still served.
	ShardID string

	// now is the daemon's clock: table staleness, uptime, read deadlines,
	// rung timing. A test hook — every time read in the daemon goes
	// through it, so a fake clock sees exactly the daemon's time
	// arithmetic.
	now func() time.Time
	// setReadDeadline applies a read deadline to a query connection. A
	// test hook paired with now: fake-clock tests intercept it to check
	// deadline arithmetic and bridge to real deadlines.
	setReadDeadline func(net.Conn, time.Time) error
	// slowLevel is a test hook invoked before each ladder rung runs; tests
	// use it to simulate pathological solver latency.
	slowLevel func(Level)
	// holdIngest, when non-nil, blocks the decode worker until closed —
	// a test hook to fill the ingest queue deterministically.
	holdIngest chan struct{}
}

func (c Config) fillDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.TCPAddr == "" {
		c.TCPAddr = "127.0.0.1:0"
	}
	if c.Sched.Channel.BandwidthHz <= 0 {
		c.Sched.Channel = phy.Wifi20MHz
	}
	if c.Sched.PacketBits <= 0 {
		c.Sched.PacketBits = 12000
	}
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 64
	}
	if c.MaxAPs <= 0 {
		c.MaxAPs = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Budgets.Blossom <= 0 {
		c.Budgets.Blossom = 50 * time.Millisecond
	}
	if c.Budgets.Greedy <= 0 {
		c.Budgets.Greedy = 10 * time.Millisecond
	}
	if c.QueryDeadline <= 0 {
		c.QueryDeadline = 250 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 100 * time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.SessionHistory <= 0 {
		c.SessionHistory = 8
	}
	if c.HandoffAttempts <= 0 {
		c.HandoffAttempts = 4
	}
	if c.HandoffBackoff <= 0 {
		c.HandoffBackoff = 50 * time.Millisecond
	}
	if c.HandoffMaxBackoff <= 0 {
		c.HandoffMaxBackoff = time.Second
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.setReadDeadline == nil {
		c.setReadDeadline = func(conn net.Conn, t time.Time) error { return conn.SetReadDeadline(t) }
	}
	return c
}

// Server is the live scheduling daemon. Create with Start; stop with
// Shutdown. Counters stay readable after shutdown so the final flush can be
// reported.
type Server struct {
	cfg      Config
	counters *obs.Group
	// ladderHist is indexed by Level: wall time of every rung attempt.
	ladderHist [3]*obs.Histogram
	// queryHist is the end-to-end SCHED latency (snapshot + ladder).
	queryHist *obs.Histogram
	table     *clientTable
	started   time.Time

	udp *net.UDPConn
	tcp net.Listener

	queue    chan []byte
	inflight atomic.Int64
	closing  atomic.Bool
	killed   atomic.Bool // simulated crash: skip the shutdown drain
	done     chan struct{}

	// sessions is the durable session layer; sessionEvents counts its
	// lifecycle outcomes and recoveryHist times startup recovery.
	sessions      *session.Manager
	sessionEvents *obs.Group
	recoveryHist  *obs.Histogram
	// transferBase ^ transferSeq yields unique handoff transfer IDs; the
	// random base keeps IDs from colliding across daemon restarts.
	transferBase uint64
	transferSeq  atomic.Uint64
	// instance is a per-boot random nonce echoed in HEALTH; a gateway that
	// sees it change knows the shard restarted (and, without a data dir,
	// lost its sessions). ringEpoch is the last epoch a gateway pushed via
	// the EPOCH command — in-memory only, so a restart resets it to 0,
	// which is the second restart tell.
	instance  string
	ringEpoch atomic.Uint64
	jitterMu  sync.Mutex
	jitter    *rand.Rand

	// baseCtx parents every per-query deadline context. It lives as long
	// as the server and is cancelled only when a shutdown drain is cut
	// short, aborting in-flight ladder solves whose clients are gone.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	wg     sync.WaitGroup // reader, worker, acceptor
	connWG sync.WaitGroup // per-connection handlers

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// planners holds one warm-startable sched.Planner per AP, so repeated
	// queries for a mostly-stable client population reuse the cost table
	// and resume the matcher from the previous solution. plannerEvents
	// counts how each query's optimal solve ran (its own metric group so
	// the serving-event counters stay byte-compatible for scrapers).
	plannerMu     sync.Mutex
	planners      map[uint32]*apPlanner
	plannerEvents *obs.Group
}

// apPlanner is the per-AP planner slot. Its mutex serialises queries for
// the same AP through the (not concurrency-safe) Planner; concurrent
// queries for one AP do not wait — they fall back to a plannerless ladder
// rather than queue behind the lock.
type apPlanner struct {
	mu sync.Mutex
	pl *sched.Planner
}

// counterNames is every counter the daemon maintains.
func counterNames() []string {
	names := dropReasons()
	names = append(names,
		"ingest_datagrams", // datagrams read off the socket
		"ingest_shed",      // datagrams shed by the bounded queue (oldest first)
		"reports_ok",       // reports folded into the table
		"drop_duplicate",   // reports rejected by sequence-number dedup
		"drop_aps_full",    // reports for a new AP past the AP budget
		"table_evictions",  // fresh clients displacing stale ones at a full AP
		"queries",          // SCHED commands received
		"served_blossom",   // queries answered at ladder level 0
		"served_greedy",    // level 1
		"served_serial",    // level 2
		"served_empty",     // queries for APs with no fresh clients
		"query_overload",   // queries shed with a retry-after hint
		"query_bad",        // malformed query lines
		"query_failed",     // ladder returned an error (validation failure)
		"health_queries",   // HEALTH commands
		"epoch_updates",    // EPOCH commands that advanced the ring epoch
	)
	return names
}

// sessionEventNames is every session-lifecycle counter
// (sicschedd_session_total{event=...}).
func sessionEventNames() []string {
	return []string{
		"cold",              // a station seen for the first time
		"resume",            // a reconnect resumed its session (reboot or gap)
		"roam",              // a station moved APs with its session intact
		"handoff_ok",        // outbound transfer acknowledged by the peer
		"handoff_retry",     // an outbound transfer attempt was retried
		"handoff_abandoned", // retries exhausted; peer gets a cold session
		"handoff_in",        // inbound transfer installed
		"handoff_dup",       // inbound transfer replay suppressed by its ID
		"wal_replay",        // WAL records replayed at startup
		"wal_torn",          // a torn WAL tail was truncated at startup
		"snapshot_restore",  // sessions restored from the startup snapshot
	}
}

// Start binds the sockets and launches the serving goroutines.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.fillDefaults()
	uaddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		return nil, fmt.Errorf("schedd: resolving UDP addr: %w", err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("schedd: binding UDP: %w", err)
	}
	tcp, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("schedd: binding TCP: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		counters: cfg.Registry.Group("sicschedd_events_total", "daemon serving events", "event", counterNames()...),
		queryHist: cfg.Registry.Histogram("sicschedd_query_seconds",
			"end-to-end SCHED latency (table snapshot + degradation ladder)",
			obs.DefLatencyBuckets(), nil),
		table:    newClientTable(cfg.TTL, cfg.MaxClients, cfg.MaxAPs),
		started:  cfg.now(),
		udp:      udp,
		tcp:      tcp,
		queue:    make(chan []byte, cfg.QueueDepth),
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		planners: make(map[uint32]*apPlanner),
		plannerEvents: cfg.Registry.Group("sicschedd_planner_total",
			"per-AP planner reuse: how each query's optimal solve ran", "path",
			"plan_cold", "plan_warm", "plan_contended"),
	}
	for _, lvl := range []Level{LevelBlossom, LevelGreedy, LevelSerial} {
		s.ladderHist[lvl] = cfg.Registry.Histogram("sicschedd_ladder_seconds",
			"wall time of each degradation-ladder rung attempt",
			obs.DefLatencyBuckets(), obs.Labels{"level": lvl.String()})
	}
	s.sessionEvents = cfg.Registry.Group("sicschedd_session_total",
		"session lifecycle: recovery, resume/roam, handoff outcomes", "event",
		sessionEventNames()...)
	s.recoveryHist = cfg.Registry.Histogram("sicschedd_recovery_seconds",
		"startup session recovery time (snapshot load + WAL replay + table restore)",
		obs.DefLatencyBuckets(), nil)

	var seed [16]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		udp.Close()
		tcp.Close()
		return nil, fmt.Errorf("schedd: seeding transfer IDs: %w", err)
	}
	s.transferBase = binary.BigEndian.Uint64(seed[:8])
	s.jitter = rand.New(rand.NewSource(int64(s.transferBase)))
	s.instance = fmt.Sprintf("%016x", binary.BigEndian.Uint64(seed[8:]))

	// Recover the durable session layer and rebuild the scheduling table
	// from it, so the first post-restart SCHED answers with pre-crash
	// context.
	recoverStart := cfg.now()
	s.sessions, err = session.Open(session.Config{
		Dir:           cfg.DataDir,
		MaxSessions:   cfg.MaxSessions,
		HistoryLen:    cfg.SessionHistory,
		ResumeGap:     cfg.TTL,
		SnapshotEvery: 4096,
	}, recoverStart)
	if err != nil {
		udp.Close()
		tcp.Close()
		return nil, err
	}
	rec := s.sessions.Recovery()
	s.sessionEvents.Add("wal_replay", int64(rec.WALRecords))
	s.sessionEvents.Add("snapshot_restore", int64(rec.SnapshotSessions))
	if rec.WALTorn {
		s.sessionEvents.Inc("wal_torn")
	}
	if cfg.DataDir != "" {
		for _, st := range s.sessions.Sessions() {
			s.table.restore(st.Station, st.AP, st.SNRMilliDB, st.Seq, time.Unix(0, st.LastSeen))
		}
		s.recoveryHist.Observe(cfg.now().Sub(recoverStart).Seconds())
	}

	//lint:allow ctxfirst the daemon owns its queries' lifetimes; this is the one root context, cancelled by Shutdown
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.wg.Add(3)
	go s.readLoop()
	go s.decodeLoop()
	go s.acceptLoop()
	return s, nil
}

// UDPAddr returns the bound report-ingest address.
func (s *Server) UDPAddr() net.Addr { return s.udp.LocalAddr() }

// TCPAddr returns the bound query address.
func (s *Server) TCPAddr() net.Addr { return s.tcp.Addr() }

// Counters exposes the serving counters (live; also valid after Shutdown).
func (s *Server) Counters() *obs.Group { return s.counters }

// Registry exposes the daemon's metrics registry — the same one passed in
// Config.Registry, or the private default — for mounting on an admin
// endpoint.
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// LadderHist returns the latency histogram of one ladder rung, for
// quantile reporting at drain time.
func (s *Server) LadderHist(l Level) *obs.Histogram { return s.ladderHist[l] }

// Occupancy reports the current AP and client table sizes (fresh entries
// only).
func (s *Server) Occupancy() (aps, clients int) { return s.table.occupancy(s.cfg.now()) }

// SessionEvents exposes the session-lifecycle counters (resume, roam,
// handoff outcomes, recovery).
func (s *Server) SessionEvents() *obs.Group { return s.sessionEvents }

// SessionRecovery reports what startup recovery found on disk.
func (s *Server) SessionRecovery() session.RecoveryStats { return s.sessions.Recovery() }

// Sessions reports the durable session count.
func (s *Server) Sessions() int { return s.sessions.Len() }

// Session returns a copy of one station's durable session.
func (s *Server) Session(station uint32) (session.State, bool) { return s.sessions.Get(station) }

// PlannerEvents exposes the planner-reuse counters (plan_cold, plan_warm,
// plan_contended).
func (s *Server) PlannerEvents() *obs.Group { return s.plannerEvents }

// plannerFor returns the AP's planner slot, creating it on first use. The
// map is bounded by the same MaxAPs budget as the client table; past it an
// arbitrary planner is evicted — losing only warm-start state, never
// correctness.
func (s *Server) plannerFor(ap uint32) *apPlanner {
	s.plannerMu.Lock()
	defer s.plannerMu.Unlock()
	if p, ok := s.planners[ap]; ok {
		return p
	}
	if len(s.planners) >= s.cfg.MaxAPs {
		for k := range s.planners {
			delete(s.planners, k)
			break
		}
	}
	p := &apPlanner{pl: sched.NewPlanner(s.cfg.Sched)}
	s.planners[ap] = p
	return p
}

// readLoop pulls datagrams off the socket into the bounded ingest queue,
// shedding oldest-first under pressure so a burst can never grow memory
// without bound — fresher reports are worth strictly more than stale ones.
func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	for {
		n, _, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.counters.Inc("ingest_datagrams")
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		select {
		case s.queue <- pkt:
		default:
			// Queue full: drop the oldest queued datagram to admit the new
			// one. Two non-blocking steps; if the worker races us and makes
			// room, so much the better.
			select {
			case <-s.queue:
				s.counters.Inc("ingest_shed")
			default:
			}
			select {
			case s.queue <- pkt:
			default:
				s.counters.Inc("ingest_shed")
			}
		}
	}
}

// decodeLoop drains the ingest queue: decode, count the reject reason or
// fold the report into the client table.
func (s *Server) decodeLoop() {
	defer s.wg.Done()
	if s.cfg.holdIngest != nil {
		<-s.cfg.holdIngest
	}
	for {
		select {
		case pkt := <-s.queue:
			s.ingest(pkt)
		case <-s.done:
			if s.killed.Load() {
				// Simulated crash: queued datagrams die with the process.
				return
			}
			// Drain whatever is already queued, then exit: shutdown flushes
			// the pipeline rather than discarding it.
			for {
				select {
				case pkt := <-s.queue:
					s.ingest(pkt)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) ingest(pkt []byte) {
	r, err := DecodeReport(pkt)
	if err != nil {
		s.counters.Inc(DropReason(err))
		return
	}
	now := s.cfg.now()
	switch s.table.upsert(r, now) {
	case upsertOK:
		s.counters.Inc("reports_ok")
	case upsertDuplicate:
		s.counters.Inc("drop_duplicate")
		return
	case upsertEvicted:
		s.counters.Inc("reports_ok")
		s.counters.Inc("table_evictions")
	case upsertAPsFull:
		s.counters.Inc("drop_aps_full")
		return
	}
	// Accepted reports feed the durable session layer; a roam cleans up
	// the station's entry at the AP it left so it is never scheduled in
	// two cells at once.
	res := s.sessions.Observe(session.Obs{
		Station:    r.Station,
		AP:         r.AP,
		Seq:        r.Seq,
		SNRMilliDB: r.SNRMilliDB,
		At:         now,
	})
	if res.Roamed {
		s.table.remove(res.PrevAP, r.Station)
	}
	switch res.Outcome {
	case session.OutcomeNew:
		s.sessionEvents.Inc("cold")
	case session.OutcomeResume:
		s.sessionEvents.Inc("resume")
	case session.OutcomeRoam:
		s.sessionEvents.Inc("roam")
	}
}

// acceptLoop accepts query connections.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// armRead sets the idle read deadline for the next command, unless shutdown
// has begun. Serialised with Shutdown's deadline nudge under mu so a handler
// returning from an in-flight query can never overwrite the nudge and block
// the drain on an idle read.
func (s *Server) armRead(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return false
	}
	if err := s.cfg.setReadDeadline(conn, s.cfg.now().Add(s.cfg.IdleTimeout)); err != nil {
		// A conn that cannot arm its idle deadline must not be read from
		// unarmed; telling the handler to hang up is the safe failure.
		return false
	}
	return true
}

// handleConn serves newline-delimited commands on one connection:
//
//	SCHED <apID>            -> one-line JSON schedule (or error) for the AP
//	HEALTH                  -> one-line JSON counters + table occupancy
//	HANDOFF <base64>        -> install a session transferred from a peer
//	MOVE <station> <addr>   -> hand this station's session off to a peer
//	EPOCH <n>               -> record the gateway's ring epoch (monotonic)
//	QUIT                    -> close the connection
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(conn)
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 4096)
	for {
		if !s.armRead(conn) {
			enc.Encode(errorResponse{Error: "shutting down"})
			return
		}
		if !sc.Scan() {
			return
		}
		if s.closing.Load() {
			enc.Encode(errorResponse{Error: "shutting down"})
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "QUIT":
			return
		case "HEALTH":
			s.counters.Inc("health_queries")
			aps, clients := s.table.occupancy(s.cfg.now())
			enc.Encode(healthResponse{
				UptimeMS:  s.cfg.now().Sub(s.started).Milliseconds(),
				APs:       aps,
				Clients:   clients,
				Sessions:  s.sessions.Len(),
				Counters:  s.counters.Snapshot(),
				Shard:     s.cfg.ShardID,
				Instance:  s.instance,
				RingEpoch: s.ringEpoch.Load(),
			})
		case "EPOCH":
			if len(fields) != 2 {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "usage: EPOCH <n>"})
				continue
			}
			epoch, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "bad epoch: " + fields[1]})
				continue
			}
			// Epochs only advance: a delayed push from a gateway that
			// already moved on cannot rewind the shard's view.
			for {
				cur := s.ringEpoch.Load()
				if epoch <= cur {
					break
				}
				if s.ringEpoch.CompareAndSwap(cur, epoch) {
					s.counters.Inc("epoch_updates")
					break
				}
			}
			enc.Encode(epochResponse{RingEpoch: s.ringEpoch.Load()})
		case "HANDOFF":
			if len(fields) != 2 {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "usage: HANDOFF <base64 transfer>"})
				continue
			}
			enc.Encode(s.serveHandoff(fields[1]))
		case "MOVE":
			if len(fields) != 3 {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "usage: MOVE <station> <host:port>"})
				continue
			}
			sta, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "bad station id: " + fields[1]})
				continue
			}
			transfer, err := s.Handoff(s.baseCtx, uint32(sta), fields[2])
			if err != nil {
				enc.Encode(errorResponse{Error: err.Error()})
				continue
			}
			enc.Encode(moveResponse{Station: uint32(sta), Transfer: fmt.Sprintf("%016x", transfer)})
		case "SCHED":
			if len(fields) != 2 {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "usage: SCHED <apID>"})
				continue
			}
			ap, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				s.counters.Inc("query_bad")
				enc.Encode(errorResponse{Error: "bad AP id: " + fields[1]})
				continue
			}
			enc.Encode(s.serveSched(uint32(ap)))
		default:
			s.counters.Inc("query_bad")
			enc.Encode(errorResponse{Error: "unknown command " + fields[0]})
		}
	}
}

// errorResponse is the error shape of every query reply; RetryAfterMS is
// set only on overload shedding.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// slotResponse is one schedule slot in a query reply.
type slotResponse struct {
	Mode  string  `json:"mode"`
	A     uint32  `json:"a"`
	B     uint32  `json:"b,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	MS    float64 `json:"ms"`
}

// schedResponse is a successful schedule reply. Level records the
// degradation-ladder rung that answered.
type schedResponse struct {
	AP      uint32         `json:"ap"`
	Level   string         `json:"level"`
	Clients int            `json:"clients"`
	TotalMS float64        `json:"total_ms"`
	Gain    float64        `json:"gain"`
	Slots   []slotResponse `json:"slots"`
	ElapsMS float64        `json:"elapsed_ms"`
}

// healthResponse answers HEALTH. APs/Clients count fresh schedulable
// entries; Sessions counts durable sessions (which outlive freshness).
// Shard/Instance/RingEpoch were appended for the gateway tier — appended
// JSON fields, so pre-gateway clients parse the response unchanged. A
// gateway watches Instance (fresh random nonce per boot) and RingEpoch
// (resets to 0 on restart, since EPOCH pushes are in-memory) to detect a
// restarted shard that lost its sessions.
type healthResponse struct {
	UptimeMS  int64            `json:"uptime_ms"`
	APs       int              `json:"aps"`
	Clients   int              `json:"clients"`
	Sessions  int              `json:"sessions"`
	Counters  map[string]int64 `json:"counters"`
	Shard     string           `json:"shard,omitempty"`
	Instance  string           `json:"instance"`
	RingEpoch uint64           `json:"ring_epoch"`
}

// epochResponse answers EPOCH with the (possibly already newer) stored
// ring epoch.
type epochResponse struct {
	RingEpoch uint64 `json:"ring_epoch"`
}

// handoffResponse answers an inbound HANDOFF; Applied is false when the
// transfer ID was already consumed (an idempotent replay).
type handoffResponse struct {
	Transfer string `json:"transfer"`
	Applied  bool   `json:"applied"`
}

// moveResponse answers MOVE after the transfer completed.
type moveResponse struct {
	Station  uint32 `json:"station"`
	Transfer string `json:"transfer"`
}

// serveHandoff installs a session transferred from a peer daemon. The
// transfer ID makes replays (peer retries after a lost ack) harmless; a
// duplicate still acknowledges success so the peer stops retrying.
func (s *Server) serveHandoff(b64 string) any {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		s.counters.Inc("query_bad")
		return errorResponse{Error: "handoff: bad base64: " + err.Error()}
	}
	transfer, st, err := session.DecodeHandoff(raw)
	if err != nil {
		s.counters.Inc("query_bad")
		return errorResponse{Error: err.Error()}
	}
	now := s.cfg.now()
	applied := s.sessions.ApplyHandoff(transfer, st, now)
	if applied {
		s.sessionEvents.Inc("handoff_in")
		// The handed-in station becomes schedulable here immediately,
		// carrying the peer's freshness so TTL semantics are unchanged.
		s.table.restore(st.Station, st.AP, st.SNRMilliDB, st.Seq, time.Unix(0, st.LastSeen))
	} else {
		s.sessionEvents.Inc("handoff_dup")
	}
	return handoffResponse{Transfer: fmt.Sprintf("%016x", transfer), Applied: applied}
}

// serveSched answers one SCHED query under the daemon's admission control
// and query deadline.
func (s *Server) serveSched(ap uint32) any {
	s.counters.Inc("queries")
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.counters.Inc("query_overload")
		return errorResponse{
			Error:        "overloaded",
			RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
		}
	}
	defer s.inflight.Add(-1)

	start := s.cfg.now()
	clients, ids := s.table.snapshot(ap, start)
	if len(clients) == 0 {
		s.counters.Inc("served_empty")
		return errorResponse{Error: fmt.Sprintf("no fresh reports for ap %d", ap)}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.QueryDeadline)
	defer cancel()
	hooks := ladderHooks{
		slow: s.cfg.slowLevel,
		now:  s.cfg.now,
		observe: func(l Level, d time.Duration) {
			s.ladderHist[l].Observe(d.Seconds())
		},
	}
	// Serve through the AP's warm planner when it is free; under
	// contention (two concurrent queries for one AP) fall back to a
	// plannerless ladder rather than serialise queries behind the lock.
	var res ladderResult
	var err error
	if slot := s.plannerFor(ap); slot.mu.TryLock() {
		before := slot.pl.Stats()
		res, err = runLadder(ctx, clients, s.cfg.Sched, s.cfg.Budgets, hooks, slot.pl)
		after := slot.pl.Stats()
		slot.mu.Unlock()
		s.plannerEvents.Add("plan_cold", int64(after.Cold-before.Cold))
		s.plannerEvents.Add("plan_warm", int64(after.Warm-before.Warm))
	} else {
		s.plannerEvents.Inc("plan_contended")
		res, err = runLadder(ctx, clients, s.cfg.Sched, s.cfg.Budgets, hooks, nil)
	}
	if err != nil {
		s.counters.Inc("query_failed")
		return errorResponse{Error: err.Error()}
	}
	s.counters.Inc("served_" + res.level.String())
	elapsed := s.cfg.now().Sub(start)
	s.queryHist.Observe(elapsed.Seconds())

	resp := schedResponse{
		AP:      ap,
		Level:   res.level.String(),
		Clients: len(clients),
		TotalMS: res.schedule.Total * 1e3,
		Gain:    res.schedule.Gain(),
		ElapsMS: float64(elapsed.Microseconds()) / 1e3,
	}
	for _, sl := range res.schedule.Slots {
		out := slotResponse{
			Mode: sl.Mode.String(),
			A:    ids[sl.A],
			MS:   sl.Time * 1e3,
		}
		if sl.B >= 0 {
			out.B = ids[sl.B]
			out.Scale = sl.WeakScale
			// Record the pairing in both stations' sessions so a handoff
			// or restart carries the planner's last verdict with it.
			s.sessions.NotePairing(ids[sl.A], ids[sl.B], uint8(res.level), start)
			s.sessions.NotePairing(ids[sl.B], ids[sl.A], uint8(res.level), start)
		} else {
			s.sessions.NotePairing(ids[sl.A], 0, uint8(res.level), start)
		}
		resp.Slots = append(resp.Slots, out)
	}
	return resp
}

// Shutdown stops the daemon gracefully: ingest sockets close, the queued
// datagrams already accepted are flushed into the table, in-flight queries
// run to completion, and idle connections are released. If ctx expires
// before the drain completes, remaining connections are force-closed. The
// counters survive shutdown for a final flush.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closing.Swap(true) {
		return errors.New("schedd: already shut down")
	}
	s.udp.Close()
	s.tcp.Close()
	close(s.done)
	s.wg.Wait()

	// Nudge idle connection handlers out of their blocking reads; handlers
	// mid-query are not reading and will finish their response first.
	s.mu.Lock()
	for conn := range s.conns {
		if err := s.cfg.setReadDeadline(conn, s.cfg.now()); err != nil {
			// The nudge did not land, so the idle read it was meant to wake
			// may never return; close outright rather than hang the drain.
			conn.Close()
		}
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.cancelBase()
		// A clean close compacts: the WAL empties and the snapshot alone
		// restores the table at next start.
		return s.sessions.Close()
	case <-ctx.Done():
		// The drain deadline passed: abort in-flight ladder solves via the
		// base context and force-close the connections they would answer.
		s.cancelBase()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-drained
		return errors.Join(fmt.Errorf("schedd: drain cut short: %w", ctx.Err()), s.sessions.Close())
	}
}

// Instance returns the per-boot random nonce echoed in HEALTH responses.
func (s *Server) Instance() string { return s.instance }

// RingEpoch returns the last ring epoch pushed by a gateway via EPOCH.
func (s *Server) RingEpoch() uint64 { return s.ringEpoch.Load() }

// Kill simulates an abrupt crash, for recovery tests and chaos tooling
// (cmd/sicsoak kills shards mid-run with it): sockets close and goroutines
// stop, but the ingest queue is not flushed, no session snapshot is
// written, and connections are severed mid-stream. Recovery must come from
// the WAL alone.
//
//lint:allow ctxfirst a simulated crash must not be cancellable: the waits here are process teardown, and a ctx would soften the failure being modelled
func (s *Server) Kill() {
	s.killed.Store(true)
	if s.closing.Swap(true) {
		return
	}
	s.udp.Close()
	s.tcp.Close()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancelBase()
	s.connWG.Wait()
	s.sessions.Kill()
}
