package schedd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/phy"
	"repro/internal/sched"
)

// upsertOutcome says what the table did with a decoded report; each maps to
// one counter.
type upsertOutcome int

const (
	upsertOK upsertOutcome = iota
	upsertDuplicate
	upsertEvicted // admitted, but displaced the stalest entry of a full AP
	upsertAPsFull // rejected: AP budget exhausted and report is for a new AP
)

// clientEntry is the table's record of one station at one AP.
type clientEntry struct {
	snrMilliDB int32
	seq        uint32
	seen       time.Time
}

// clientTable is the daemon's bounded, staleness-evicting view of the
// world: per AP, the most recent report per station. All methods are safe
// for concurrent use.
//
// Bounds are hard: at most maxAPs AP entries, at most maxClients stations
// per AP. When a new station arrives at a full AP the stalest entry is
// displaced (the live network is the source of truth; holding a dead
// client out of preference for it would be the wrong kind of fairness).
// A new AP past the AP budget is rejected outright — AP identities come
// from the untrusted wire, and letting them grow without bound is a memory
// DoS.
type clientTable struct {
	ttl        time.Duration
	maxClients int
	maxAPs     int

	mu  sync.Mutex
	aps map[uint32]map[uint32]*clientEntry
}

func newClientTable(ttl time.Duration, maxClients, maxAPs int) *clientTable {
	return &clientTable{
		ttl:        ttl,
		maxClients: maxClients,
		maxAPs:     maxAPs,
		aps:        make(map[uint32]map[uint32]*clientEntry),
	}
}

// upsert folds one decoded report into the table.
func (t *clientTable) upsert(r Report, now time.Time) upsertOutcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[r.AP]
	if ap == nil {
		t.evictStaleAPsLocked(now)
		if len(t.aps) >= t.maxAPs {
			return upsertAPsFull
		}
		ap = make(map[uint32]*clientEntry)
		t.aps[r.AP] = ap
	}
	if e := ap[r.Station]; e != nil {
		// Duplicate suppression: sequence numbers must advance. A replayed
		// or re-ordered datagram is dropped; an advanced one refreshes.
		if r.Seq <= e.seq {
			return upsertDuplicate
		}
		e.seq, e.snrMilliDB, e.seen = r.Seq, r.SNRMilliDB, now
		return upsertOK
	}
	outcome := upsertOK
	if len(ap) >= t.maxClients {
		t.dropStaleLocked(ap, now)
	}
	if len(ap) >= t.maxClients {
		// Still full after TTL eviction: displace the stalest entry.
		var victim uint32
		var oldest time.Time
		first := true
		for id, e := range ap {
			if first || e.seen.Before(oldest) {
				victim, oldest, first = id, e.seen, false
			}
		}
		delete(ap, victim)
		outcome = upsertEvicted
	}
	ap[r.Station] = &clientEntry{snrMilliDB: r.SNRMilliDB, seq: r.Seq, seen: now}
	return outcome
}

// dropStaleLocked removes entries older than the TTL from one AP's map.
func (t *clientTable) dropStaleLocked(ap map[uint32]*clientEntry, now time.Time) {
	for id, e := range ap {
		if now.Sub(e.seen) > t.ttl {
			delete(ap, id)
		}
	}
}

// evictStaleAPsLocked removes APs whose every client has gone stale, making
// room in the AP budget before rejecting a new AP.
func (t *clientTable) evictStaleAPsLocked(now time.Time) {
	for apID, ap := range t.aps {
		t.dropStaleLocked(ap, now)
		if len(ap) == 0 {
			delete(t.aps, apID)
		}
	}
}

// snapshot returns the AP's fresh clients as scheduler inputs plus the
// index-aligned station ids, evicting stale entries on the way. Station
// order is deterministic (ascending id) so identical tables produce
// identical schedules.
func (t *clientTable) snapshot(apID uint32, now time.Time) ([]sched.Client, []uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[apID]
	if ap == nil {
		return nil, nil
	}
	t.dropStaleLocked(ap, now)
	if len(ap) == 0 {
		delete(t.aps, apID)
		return nil, nil
	}
	ids := make([]uint32, 0, len(ap))
	for id := range ap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]sched.Client, len(ids))
	for i, id := range ids {
		out[i] = sched.Client{
			ID:  fmt.Sprintf("sta%d", id),
			SNR: phy.FromDB(float64(ap[id].snrMilliDB) / 1000),
		}
	}
	return out, ids
}

// occupancy reports the table's current (apCount, clientCount) for health
// queries; stale entries are counted as-is, eviction happens lazily.
func (t *clientTable) occupancy() (aps, clients int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ap := range t.aps {
		clients += len(ap)
	}
	return len(t.aps), clients
}
