package schedd

import (
	"slices"
	"strconv"
	"sync"
	"time"

	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/session"
)

// upsertOutcome says what the table did with a decoded report; each maps to
// one counter.
type upsertOutcome int

const (
	upsertOK upsertOutcome = iota
	upsertDuplicate
	upsertEvicted // admitted, but displaced the stalest entry of a full AP
	upsertAPsFull // rejected: AP budget exhausted and report is for a new AP
)

// clientEntry is the table's record of one station at one AP.
type clientEntry struct {
	id         string // cached "sta<N>" scheduler ID; stations are immutable
	snrMilliDB int32
	seq        uint32
	seen       time.Time
}

// staID renders a station's scheduler ID. Computed once per entry and
// cached so snapshot stays allocation-free on the query path.
func staID(station uint32) string {
	return "sta" + strconv.FormatUint(uint64(station), 10)
}

// clientTable is the daemon's bounded, staleness-evicting view of the
// world: per AP, the most recent report per station. All methods are safe
// for concurrent use.
//
// Bounds are hard: at most maxAPs AP entries, at most maxClients stations
// per AP. When a new station arrives at a full AP the stalest entry is
// displaced (the live network is the source of truth; holding a dead
// client out of preference for it would be the wrong kind of fairness).
// A new AP past the AP budget is rejected outright — AP identities come
// from the untrusted wire, and letting them grow without bound is a memory
// DoS.
type clientTable struct {
	ttl        time.Duration
	maxClients int
	maxAPs     int

	mu  sync.Mutex
	aps map[uint32]map[uint32]*clientEntry
}

func newClientTable(ttl time.Duration, maxClients, maxAPs int) *clientTable {
	return &clientTable{
		ttl:        ttl,
		maxClients: maxClients,
		maxAPs:     maxAPs,
		aps:        make(map[uint32]map[uint32]*clientEntry),
	}
}

// upsert folds one decoded report into the table.
func (t *clientTable) upsert(r Report, now time.Time) upsertOutcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[r.AP]
	if ap == nil {
		t.evictStaleAPsLocked(now)
		if len(t.aps) >= t.maxAPs {
			return upsertAPsFull
		}
		ap = make(map[uint32]*clientEntry)
		t.aps[r.AP] = ap
	}
	if e := ap[r.Station]; e != nil {
		// Duplicate suppression: sequence numbers must advance in the RFC
		// 1982 serial sense (wrap-safe), with session.SeqAdvance also
		// admitting a rebooted station restarting inside the reset window
		// — previously such a station was locked out until TTL expiry.
		adv, _ := session.SeqAdvance(e.seq, r.Seq)
		if !adv {
			return upsertDuplicate
		}
		e.seq, e.snrMilliDB, e.seen = r.Seq, r.SNRMilliDB, now
		return upsertOK
	}
	outcome := upsertOK
	if len(ap) >= t.maxClients {
		t.dropStaleLocked(ap, now)
	}
	if len(ap) >= t.maxClients {
		// Still full after TTL eviction: displace the stalest entry.
		var victim uint32
		var oldest time.Time
		first := true
		for id, e := range ap {
			if first || e.seen.Before(oldest) {
				victim, oldest, first = id, e.seen, false
			}
		}
		delete(ap, victim)
		outcome = upsertEvicted
	}
	ap[r.Station] = &clientEntry{id: staID(r.Station), snrMilliDB: r.SNRMilliDB, seq: r.Seq, seen: now}
	return outcome
}

// restore reinstalls one station recovered from the durable session layer,
// respecting the same AP and client budgets as live traffic. Entries are
// only installed when absent or older than the recovered state, so restore
// after live reports have arrived is harmless. Reports whether the entry
// was installed.
func (t *clientTable) restore(station, apID uint32, snrMilliDB int32, seq uint32, seen time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[apID]
	if ap == nil {
		if len(t.aps) >= t.maxAPs {
			return false
		}
		ap = make(map[uint32]*clientEntry)
		t.aps[apID] = ap
	}
	if e := ap[station]; e != nil {
		if !seen.After(e.seen) {
			return false
		}
		e.snrMilliDB, e.seq, e.seen = snrMilliDB, seq, seen
		return true
	}
	if len(ap) >= t.maxClients {
		return false
	}
	ap[station] = &clientEntry{id: staID(station), snrMilliDB: snrMilliDB, seq: seq, seen: seen}
	return true
}

// remove drops one station from one AP — the cleanup half of a roam or a
// completed hand-off to a peer daemon.
func (t *clientTable) remove(apID, station uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[apID]
	if ap == nil {
		return
	}
	delete(ap, station)
	if len(ap) == 0 {
		delete(t.aps, apID)
	}
}

// dropStaleLocked removes entries older than the TTL from one AP's map.
func (t *clientTable) dropStaleLocked(ap map[uint32]*clientEntry, now time.Time) {
	for id, e := range ap {
		if now.Sub(e.seen) > t.ttl {
			delete(ap, id)
		}
	}
}

// evictStaleAPsLocked removes APs whose every client has gone stale, making
// room in the AP budget before rejecting a new AP.
func (t *clientTable) evictStaleAPsLocked(now time.Time) {
	for apID, ap := range t.aps {
		t.dropStaleLocked(ap, now)
		if len(ap) == 0 {
			delete(t.aps, apID)
		}
	}
}

// snapshot returns the AP's fresh clients as scheduler inputs plus the
// index-aligned station ids, evicting stale entries on the way. Station
// order is deterministic (ascending id) so identical tables produce
// identical schedules.
func (t *clientTable) snapshot(apID uint32, now time.Time) ([]sched.Client, []uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ap := t.aps[apID]
	if ap == nil {
		return nil, nil
	}
	t.dropStaleLocked(ap, now)
	if len(ap) == 0 {
		delete(t.aps, apID)
		return nil, nil
	}
	ids := make([]uint32, 0, len(ap))
	for id := range ap {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	out := make([]sched.Client, len(ids))
	for i, id := range ids {
		e := ap[id]
		out[i] = sched.Client{
			ID:  e.id,
			SNR: phy.FromDB(float64(e.snrMilliDB) / 1000),
		}
	}
	return out, ids
}

// occupancy reports the table's (apCount, clientCount) for health queries,
// evicting stale entries first so health reflects schedulable clients
// rather than an inflated count of expired ones.
func (t *clientTable) occupancy(now time.Time) (aps, clients int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictStaleAPsLocked(now)
	for _, ap := range t.aps {
		clients += len(ap)
	}
	return len(t.aps), clients
}
