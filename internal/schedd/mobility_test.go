package schedd

import (
	"context"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMobilityTraceEndToEnd drives a generated random-waypoint mobility
// trace through two live daemons that split AP ownership, handing sessions
// off whenever a station crosses the ownership boundary. It is the
// integration proof of the whole layer: identity follows the station
// across daemons, every transfer completes exactly once, and no session is
// lost or duplicated.
func TestMobilityTraceEndToEnd(t *testing.T) {
	cfg := trace.DefaultRoamConfig(5)
	steps, err := trace.GenerateRoaming(cfg)
	if err != nil {
		t.Fatal(err)
	}

	daemons := make([]*Server, 2)
	for i := range daemons {
		d, err := Start(fastHandoffCfg())
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown(t, d)
		daemons[i] = d
	}
	// Ownership split: daemon 0 owns the low half of the AP grid, daemon 1
	// the high half.
	owner := func(ap uint32) int {
		if int(ap) <= cfg.APs/2 {
			return 0
		}
		return 1
	}

	toMilliDB := func(db float64) int32 {
		m := int32(db * 1000)
		if m > MaxSNRMilliDB {
			m = MaxSNRMilliDB
		}
		if m < -MaxSNRMilliDB {
			m = -MaxSNRMilliDB
		}
		return m
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	lastOwner := map[uint32]int{}
	firstSeen := map[uint32]int64{}
	expectOK := [2]int64{}
	crossings := 0
	for _, step := range steps {
		// Transfers first: a station crossing the boundary moves its
		// session before its report lands at the new owner.
		for _, o := range step.Obs {
			cur := owner(o.AP)
			prev, seen := lastOwner[o.Station]
			if seen && prev != cur {
				if _, err := daemons[prev].Handoff(ctx, o.Station, daemons[cur].TCPAddr().String()); err != nil {
					t.Fatalf("handoff of station %d: %v", o.Station, err)
				}
				crossings++
			}
			lastOwner[o.Station] = cur
		}
		// Then the step's reports, each to its AP's owner.
		for _, o := range step.Obs {
			cur := owner(o.AP)
			sendReports(t, daemons[cur], Report{
				AP:         o.AP,
				Station:    o.Station,
				Seq:        uint32(step.Unix/int64(cfg.StepSeconds)) + 1,
				SNRMilliDB: toMilliDB(o.SNRdB),
			})
			expectOK[cur]++
		}
		for i, d := range daemons {
			waitCounter(t, d, "reports_ok", expectOK[i])
		}
		// Capture each station's birth time once its first report landed.
		for _, o := range step.Obs {
			if _, ok := firstSeen[o.Station]; !ok {
				st, ok := daemons[owner(o.AP)].Session(o.Station)
				if !ok {
					t.Fatalf("station %d has no session after its first report", o.Station)
				}
				firstSeen[o.Station] = st.FirstSeen
			}
		}
	}
	if crossings == 0 {
		t.Fatal("trace never crossed the ownership boundary; test exercises nothing")
	}

	var ok, abandoned int64
	for _, d := range daemons {
		ok += d.SessionEvents().Get("handoff_ok")
		abandoned += d.SessionEvents().Get("handoff_abandoned")
	}
	if ok != int64(crossings) {
		t.Fatalf("handoff_ok = %d, want one per crossing (%d)", ok, crossings)
	}
	if abandoned != 0 {
		t.Fatalf("handoff_abandoned = %d with both daemons healthy", abandoned)
	}
	// Conservation: every station has exactly one session, at its final
	// owner, with its original identity intact.
	if total := daemons[0].Sessions() + daemons[1].Sessions(); total != cfg.Clients {
		t.Fatalf("session total = %d, want %d (no loss, no duplication)", total, cfg.Clients)
	}
	for sta, own := range lastOwner {
		st, found := daemons[own].Session(sta)
		if !found {
			t.Fatalf("station %d missing at its final owner", sta)
		}
		if st.FirstSeen != firstSeen[sta] {
			t.Fatalf("station %d FirstSeen changed across handoffs: %d -> %d", sta, firstSeen[sta], st.FirstSeen)
		}
		if len(st.History) == 0 {
			t.Fatalf("station %d history empty after roaming", sta)
		}
	}
}
