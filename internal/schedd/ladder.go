package schedd

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sched"
)

// Level identifies the rung of the degradation ladder that produced a
// schedule. Lower is better; every response records its level so operators
// can see quality degrade before latency does.
type Level int

const (
	// LevelBlossom: optimal minimum-weight perfect matching (sched.NewCtx).
	LevelBlossom Level = iota
	// LevelGreedy: best-pair-first greedy pairing (sched.GreedyCtx).
	LevelGreedy
	// LevelSerial: everyone transmits alone; O(n), cannot stall.
	LevelSerial
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelBlossom:
		return "blossom"
	case LevelGreedy:
		return "greedy"
	case LevelSerial:
		return "serial"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Budgets carries the per-rung time budgets. The serial rung has none: it
// is the floor that makes the ladder total.
type Budgets struct {
	Blossom time.Duration
	Greedy  time.Duration
}

// ladderResult is a schedule plus its provenance.
type ladderResult struct {
	schedule sched.Schedule
	level    Level
}

// ladderHooks bundles runLadder's injection points. Every field is
// optional; the zero value runs the ladder untimed and unobserved.
type ladderHooks struct {
	// slow is a test hook invoked before each rung runs; tests use it to
	// simulate pathological solver latency.
	slow func(Level)
	// now is the clock used to time rung attempts; timing is skipped when
	// now or observe is nil. The server passes its injected clock here so
	// fake-clock tests see exact rung latencies.
	now func() time.Time
	// observe receives the wall time of every rung attempt — failed ones
	// included, since a blossom rung that burns its whole budget and loses
	// is exactly what the latency histogram is for.
	observe func(Level, time.Duration)
}

// timed runs one rung attempt under the hooks' clock.
func (h ladderHooks) timed(l Level, f func() (sched.Schedule, error)) (sched.Schedule, error) {
	if h.slow != nil {
		h.slow(l)
	}
	if h.now == nil || h.observe == nil {
		return f()
	}
	t0 := h.now()
	s, err := f()
	h.observe(l, h.now().Sub(t0))
	return s, err
}

// runLadder answers one scheduling query within ctx by walking the
// degradation ladder: each rung runs under min(its own budget, ctx's
// remaining deadline); on timeout, cancellation or any solver error the
// next rung is tried. The serial rung runs under ctx alone — if even that
// is cancelled the query deadline as a whole has passed and the error is
// returned.
//
// When pl is non-nil the blossom and greedy rungs run through it, reusing
// its memoized cost table and warm-starting the matcher across queries for
// the same AP; a nil pl falls back to the one-shot entry points. Notably, a
// blossom rung that burns its budget leaves the cost table behind, so the
// greedy rung that follows skips the O(n²) cost rebuild.
func runLadder(ctx context.Context, clients []sched.Client, opts sched.Options, b Budgets, h ladderHooks, pl *sched.Planner) (ladderResult, error) {
	type rung struct {
		level  Level
		budget time.Duration
		run    func(context.Context) (sched.Schedule, error)
	}
	rungs := []rung{
		{LevelBlossom, b.Blossom, func(c context.Context) (sched.Schedule, error) {
			if pl != nil {
				return pl.Plan(c, clients)
			}
			return sched.NewCtx(c, clients, opts)
		}},
		{LevelGreedy, b.Greedy, func(c context.Context) (sched.Schedule, error) {
			if pl != nil {
				return pl.PlanGreedy(c, clients)
			}
			return sched.GreedyCtx(c, clients, opts)
		}},
	}
	for _, r := range rungs {
		if ctx.Err() != nil {
			break // overall deadline already gone; fall through to serial
		}
		rctx := ctx
		var cancel context.CancelFunc
		if r.budget > 0 {
			rctx, cancel = context.WithTimeout(ctx, r.budget)
		}
		s, err := h.timed(r.level, func() (sched.Schedule, error) { return r.run(rctx) })
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return ladderResult{schedule: s, level: r.level}, nil
		}
	}
	s, err := h.timed(LevelSerial, func() (sched.Schedule, error) { return sched.Serial(clients, opts) })
	if err != nil {
		return ladderResult{}, err
	}
	return ladderResult{schedule: s, level: LevelSerial}, nil
}
