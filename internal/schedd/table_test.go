package schedd

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func TestTableUpsertAndSnapshot(t *testing.T) {
	tb := newClientTable(30*time.Second, 8, 4)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0); got != upsertOK {
		t.Fatalf("first upsert: %v", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 11, Seq: 1, SNRMilliDB: 15_000}, t0); got != upsertOK {
		t.Fatalf("second upsert: %v", got)
	}
	clients, ids := tb.snapshot(1, t0)
	if len(clients) != 2 || len(ids) != 2 {
		t.Fatalf("snapshot: %d clients, %d ids", len(clients), len(ids))
	}
	if ids[0] != 10 || ids[1] != 11 {
		t.Fatalf("ids not sorted: %v", ids)
	}
	if clients[0].SNR <= clients[1].SNR {
		t.Fatalf("SNR ordering wrong: %v vs %v", clients[0].SNR, clients[1].SNR)
	}
}

func TestTableDuplicateSuppression(t *testing.T) {
	tb := newClientTable(30*time.Second, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 5, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 5, SNRMilliDB: 30_000}, t0); got != upsertDuplicate {
		t.Fatalf("replay: %v, want duplicate", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 4, SNRMilliDB: 30_000}, t0); got != upsertDuplicate {
		t.Fatalf("stale seq: %v, want duplicate", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 6, SNRMilliDB: 31_000}, t0); got != upsertOK {
		t.Fatalf("advancing seq: %v, want ok", got)
	}
	clients, _ := tb.snapshot(1, t0)
	if len(clients) != 1 {
		t.Fatalf("table grew on duplicates: %d clients", len(clients))
	}
}

func TestTableStalenessEviction(t *testing.T) {
	tb := newClientTable(10*time.Second, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	tb.upsert(Report{AP: 1, Station: 11, Seq: 1, SNRMilliDB: 20_000}, t0.Add(8*time.Second))
	clients, ids := tb.snapshot(1, t0.Add(15*time.Second))
	if len(clients) != 1 || ids[0] != 11 {
		t.Fatalf("staleness eviction failed: ids=%v", ids)
	}
	// Everything stale: the AP itself disappears.
	if clients, _ := tb.snapshot(1, t0.Add(time.Hour)); clients != nil {
		t.Fatalf("fully stale AP still schedulable: %v", clients)
	}
	if aps, _ := tb.occupancy(); aps != 0 {
		t.Fatalf("stale AP still occupies the table: %d", aps)
	}
}

func TestTableBoundedClients(t *testing.T) {
	tb := newClientTable(time.Hour, 3, 4)
	for i := uint32(0); i < 3; i++ {
		tb.upsert(Report{AP: 1, Station: 10 + i, Seq: 1, SNRMilliDB: 30_000}, t0.Add(time.Duration(i)*time.Second))
	}
	// A fourth, fresher station displaces the stalest (station 10).
	if got := tb.upsert(Report{AP: 1, Station: 99, Seq: 1, SNRMilliDB: 25_000}, t0.Add(time.Minute)); got != upsertEvicted {
		t.Fatalf("full-AP upsert: %v, want evicted", got)
	}
	_, ids := tb.snapshot(1, t0.Add(time.Minute))
	if len(ids) != 3 {
		t.Fatalf("bound not enforced: %d clients", len(ids))
	}
	for _, id := range ids {
		if id == 10 {
			t.Fatal("stalest entry survived the displacement")
		}
	}
}

func TestTableBoundedAPs(t *testing.T) {
	tb := newClientTable(time.Hour, 8, 2)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	tb.upsert(Report{AP: 2, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 3, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0); got != upsertAPsFull {
		t.Fatalf("AP budget: %v, want apsFull", got)
	}
	// Once existing APs go stale they make room for new ones.
	if got := tb.upsert(Report{AP: 3, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0.Add(2*time.Hour)); got != upsertOK {
		t.Fatalf("post-staleness AP admit: %v, want ok", got)
	}
}
