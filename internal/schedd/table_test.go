package schedd

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func TestTableUpsertAndSnapshot(t *testing.T) {
	tb := newClientTable(30*time.Second, 8, 4)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0); got != upsertOK {
		t.Fatalf("first upsert: %v", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 11, Seq: 1, SNRMilliDB: 15_000}, t0); got != upsertOK {
		t.Fatalf("second upsert: %v", got)
	}
	clients, ids := tb.snapshot(1, t0)
	if len(clients) != 2 || len(ids) != 2 {
		t.Fatalf("snapshot: %d clients, %d ids", len(clients), len(ids))
	}
	if ids[0] != 10 || ids[1] != 11 {
		t.Fatalf("ids not sorted: %v", ids)
	}
	if clients[0].SNR <= clients[1].SNR {
		t.Fatalf("SNR ordering wrong: %v vs %v", clients[0].SNR, clients[1].SNR)
	}
}

func TestTableDuplicateSuppression(t *testing.T) {
	tb := newClientTable(30*time.Second, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 5, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 5, SNRMilliDB: 30_000}, t0); got != upsertDuplicate {
		t.Fatalf("replay: %v, want duplicate", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 4, SNRMilliDB: 30_000}, t0); got != upsertDuplicate {
		t.Fatalf("stale seq: %v, want duplicate", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 6, SNRMilliDB: 31_000}, t0); got != upsertOK {
		t.Fatalf("advancing seq: %v, want ok", got)
	}
	clients, _ := tb.snapshot(1, t0)
	if len(clients) != 1 {
		t.Fatalf("table grew on duplicates: %d clients", len(clients))
	}
}

func TestTableStalenessEviction(t *testing.T) {
	tb := newClientTable(10*time.Second, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	tb.upsert(Report{AP: 1, Station: 11, Seq: 1, SNRMilliDB: 20_000}, t0.Add(8*time.Second))
	clients, ids := tb.snapshot(1, t0.Add(15*time.Second))
	if len(clients) != 1 || ids[0] != 11 {
		t.Fatalf("staleness eviction failed: ids=%v", ids)
	}
	// Everything stale: the AP itself disappears.
	if clients, _ := tb.snapshot(1, t0.Add(time.Hour)); clients != nil {
		t.Fatalf("fully stale AP still schedulable: %v", clients)
	}
	if aps, _ := tb.occupancy(t0.Add(time.Hour)); aps != 0 {
		t.Fatalf("stale AP still occupies the table: %d", aps)
	}
}

// TestTableSeqReset: the regression this PR fixes — a rebooted station
// restarting at a low sequence number was dropped as a duplicate until TTL
// expiry. The reset window now readmits it immediately.
func TestTableSeqReset(t *testing.T) {
	tb := newClientTable(time.Hour, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 500, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 28_000}, t0.Add(time.Second)); got != upsertOK {
		t.Fatalf("rebooted station locked out: %v", got)
	}
	clients, _ := tb.snapshot(1, t0.Add(time.Second))
	if len(clients) != 1 {
		t.Fatalf("clients = %d", len(clients))
	}
	// The reset took: the next serial advance from the new epoch works.
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 2, SNRMilliDB: 28_500}, t0.Add(2*time.Second)); got != upsertOK {
		t.Fatalf("post-reset advance dropped: %v", got)
	}
}

// TestTableSeqWraparound: serial comparison keeps dedup working when the
// sequence counter wraps uint32.
func TestTableSeqWraparound(t *testing.T) {
	tb := newClientTable(time.Hour, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: ^uint32(0) - 1, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: 3, SNRMilliDB: 30_000}, t0.Add(time.Second)); got != upsertOK {
		t.Fatalf("wraparound advance dropped: %v", got)
	}
	if got := tb.upsert(Report{AP: 1, Station: 10, Seq: ^uint32(0), SNRMilliDB: 30_000}, t0.Add(2*time.Second)); got != upsertDuplicate {
		t.Fatalf("pre-wrap replay accepted: %v", got)
	}
}

// TestTableOccupancyFresh: health numbers must count schedulable clients,
// not expired ones.
func TestTableOccupancyFresh(t *testing.T) {
	tb := newClientTable(10*time.Second, 8, 4)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	tb.upsert(Report{AP: 1, Station: 11, Seq: 1, SNRMilliDB: 20_000}, t0.Add(30*time.Second))
	tb.upsert(Report{AP: 2, Station: 12, Seq: 1, SNRMilliDB: 10_000}, t0)
	// At t0+35s: station 10 and all of AP 2 are stale.
	aps, clients := tb.occupancy(t0.Add(35 * time.Second))
	if aps != 1 || clients != 1 {
		t.Fatalf("occupancy = (%d aps, %d clients), want (1, 1)", aps, clients)
	}
}

func TestTableRestoreAndRemove(t *testing.T) {
	tb := newClientTable(time.Hour, 2, 2)
	if !tb.restore(10, 1, 30_000, 5, t0) {
		t.Fatal("restore into empty table failed")
	}
	// Restore never clobbers a fresher live entry.
	tb.upsert(Report{AP: 1, Station: 11, Seq: 9, SNRMilliDB: 20_000}, t0.Add(time.Minute))
	if tb.restore(11, 1, 1_000, 2, t0) {
		t.Fatal("stale restore overwrote a live entry")
	}
	clients, ids := tb.snapshot(1, t0.Add(time.Minute))
	if len(clients) != 2 || ids[1] != 11 {
		t.Fatalf("snapshot after restore: %v", ids)
	}
	if clients[1].SNR < clients[0].SNR/100 {
		t.Fatalf("restore clobbered SNR: %v", clients)
	}
	// Budgets hold: a third restore into a 2-client AP is refused.
	if tb.restore(12, 1, 5_000, 1, t0.Add(time.Minute)) {
		t.Fatal("restore ignored the client budget")
	}
	tb.remove(1, 10)
	_, ids = tb.snapshot(1, t0.Add(time.Minute))
	if len(ids) != 1 || ids[0] != 11 {
		t.Fatalf("remove failed: %v", ids)
	}
	// Removing the last station drops the AP entry itself.
	tb.remove(1, 11)
	if aps, _ := tb.occupancy(t0.Add(time.Minute)); aps != 0 {
		t.Fatalf("empty AP lingers: %d", aps)
	}
}

// TestSnapshotAllocs pins the query path's allocation budget: the ids
// slice and the clients slice, nothing per-entry (IDs are cached strings).
func TestSnapshotAllocs(t *testing.T) {
	tb := newClientTable(time.Hour, 64, 4)
	for i := uint32(0); i < 24; i++ {
		tb.upsert(Report{AP: 1, Station: 100 + i, Seq: 1, SNRMilliDB: int32(10_000 + i)}, t0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		clients, ids := tb.snapshot(1, t0)
		if len(clients) != 24 || len(ids) != 24 {
			t.Fatalf("snapshot shrank: %d/%d", len(clients), len(ids))
		}
	})
	if allocs > 2 {
		t.Fatalf("snapshot allocates %.0f objects per call, budget is 2", allocs)
	}
}

func BenchmarkTableSnapshot(b *testing.B) {
	tb := newClientTable(time.Hour, 64, 4)
	for i := uint32(0); i < 32; i++ {
		tb.upsert(Report{AP: 1, Station: 100 + i, Seq: 1, SNRMilliDB: int32(10_000 + i)}, t0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients, _ := tb.snapshot(1, t0)
		if len(clients) != 32 {
			b.Fatal("snapshot shrank")
		}
	}
}

func TestTableBoundedClients(t *testing.T) {
	tb := newClientTable(time.Hour, 3, 4)
	for i := uint32(0); i < 3; i++ {
		tb.upsert(Report{AP: 1, Station: 10 + i, Seq: 1, SNRMilliDB: 30_000}, t0.Add(time.Duration(i)*time.Second))
	}
	// A fourth, fresher station displaces the stalest (station 10).
	if got := tb.upsert(Report{AP: 1, Station: 99, Seq: 1, SNRMilliDB: 25_000}, t0.Add(time.Minute)); got != upsertEvicted {
		t.Fatalf("full-AP upsert: %v, want evicted", got)
	}
	_, ids := tb.snapshot(1, t0.Add(time.Minute))
	if len(ids) != 3 {
		t.Fatalf("bound not enforced: %d clients", len(ids))
	}
	for _, id := range ids {
		if id == 10 {
			t.Fatal("stalest entry survived the displacement")
		}
	}
}

func TestTableBoundedAPs(t *testing.T) {
	tb := newClientTable(time.Hour, 8, 2)
	tb.upsert(Report{AP: 1, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	tb.upsert(Report{AP: 2, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0)
	if got := tb.upsert(Report{AP: 3, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0); got != upsertAPsFull {
		t.Fatalf("AP budget: %v, want apsFull", got)
	}
	// Once existing APs go stale they make room for new ones.
	if got := tb.upsert(Report{AP: 3, Station: 10, Seq: 1, SNRMilliDB: 30_000}, t0.Add(2*time.Hour)); got != upsertOK {
		t.Fatalf("post-staleness AP admit: %v, want ok", got)
	}
}
