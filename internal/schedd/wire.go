// Package schedd implements the live SIC scheduling service: a long-lived
// daemon that ingests client RSSI reports over UDP, maintains a bounded
// per-AP client table, and answers schedule queries over TCP under a hard
// per-query deadline.
//
// Robustness is the design headline, in three layers:
//
//   - The wire codec (this file) is length-prefixed and CRC-guarded;
//     malformed, oversized, truncated, corrupted or duplicate datagrams are
//     rejected with a per-reason drop counter rather than an error path that
//     could stall ingest.
//   - Scheduling runs on a degradation ladder (ladder.go): optimal blossom
//     matching, then greedy pairing, then a serial fallback, each under its
//     own time budget, so a slow or pathological instance can never hold the
//     serving loop past its deadline. Every response records which rung
//     answered.
//   - Load is shed instead of queued without bound (server.go): the ingest
//     queue is bounded with oldest-first drop, and query admission control
//     answers "overloaded + retry-after" once the in-flight limit is hit.
package schedd

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Wire constants for the report datagram.
const (
	// ReportMagic identifies scheduling-daemon datagrams; deliberately
	// distinct from frame.Magic so a misdirected MAC frame is rejected at
	// the first two bytes.
	ReportMagic = 0x51CD
	// ReportVersion is the current wire version.
	ReportVersion = 1
	// reportTypeRSSI is the only datagram type so far.
	reportTypeRSSI = 1
	// ReportLen is the exact length of a report datagram:
	//
	//	offset  size  field
	//	0       2     magic 0x51CD
	//	2       1     version (1)
	//	3       1     type (1 = RSSI report)
	//	4       4     total datagram length (= 28; length prefix)
	//	8       4     AP id
	//	12      4     station id
	//	16      4     report sequence number (per station, monotonic)
	//	20      4     SNR at the AP in milli-dB (signed)
	//	24      4     CRC-32 (IEEE) over bytes [0, 24)
	ReportLen = 28
)

// MaxSNRMilliDB bounds the advertised SNR to ±100 dB: anything outside is a
// sensor bug or an attack, not a radio.
const MaxSNRMilliDB = 100_000

// Report is one client RSSI report: station's SNR as received at its AP.
// Seq is a per-station monotonic counter used for duplicate suppression —
// a report whose Seq does not advance past the table's last-seen value for
// that station is dropped as a duplicate.
type Report struct {
	AP, Station uint32
	Seq         uint32
	SNRMilliDB  int32
}

// Decode reject reasons, one per counter. Keeping them as errors (rather
// than an enum) lets the ingest loop count them and tests assert on them
// with errors.Is.
var (
	ErrReportShort    = errors.New("schedd: datagram shorter than a report")
	ErrReportOversize = errors.New("schedd: datagram longer than a report")
	ErrReportMagic    = errors.New("schedd: bad magic")
	ErrReportVersion  = errors.New("schedd: unsupported version")
	ErrReportType     = errors.New("schedd: unknown report type")
	ErrReportLength   = errors.New("schedd: length prefix inconsistent with datagram")
	ErrReportCRC      = errors.New("schedd: CRC mismatch")
	ErrReportStation  = errors.New("schedd: invalid station id")
	ErrReportSNR      = errors.New("schedd: SNR outside plausible range")
)

// broadcastID mirrors frame.Broadcast: never a valid station.
const broadcastID = ^uint32(0)

// Marshal serialises the report. It returns an error for reports that could
// never decode (invalid station, implausible SNR) so garbage cannot be put
// on the wire in the first place.
func (r Report) Marshal() ([]byte, error) {
	if r.Station == 0 || r.Station == broadcastID {
		return nil, ErrReportStation
	}
	if r.SNRMilliDB > MaxSNRMilliDB || r.SNRMilliDB < -MaxSNRMilliDB {
		return nil, ErrReportSNR
	}
	buf := make([]byte, ReportLen)
	binary.BigEndian.PutUint16(buf[0:2], ReportMagic)
	buf[2] = ReportVersion
	buf[3] = reportTypeRSSI
	binary.BigEndian.PutUint32(buf[4:8], ReportLen)
	binary.BigEndian.PutUint32(buf[8:12], r.AP)
	binary.BigEndian.PutUint32(buf[12:16], r.Station)
	binary.BigEndian.PutUint32(buf[16:20], r.Seq)
	binary.BigEndian.PutUint32(buf[20:24], uint32(r.SNRMilliDB))
	binary.BigEndian.PutUint32(buf[24:28], crc32.ChecksumIEEE(buf[:24]))
	return buf, nil
}

// DecodeReport parses and validates one datagram. Every failure mode maps
// to exactly one of the Err* reasons above; DropReason translates the error
// to its counter name.
func DecodeReport(buf []byte) (Report, error) {
	if len(buf) < ReportLen {
		return Report{}, ErrReportShort
	}
	if len(buf) > ReportLen {
		return Report{}, ErrReportOversize
	}
	if binary.BigEndian.Uint16(buf[0:2]) != ReportMagic {
		return Report{}, ErrReportMagic
	}
	if buf[2] != ReportVersion {
		return Report{}, ErrReportVersion
	}
	if buf[3] != reportTypeRSSI {
		return Report{}, ErrReportType
	}
	if binary.BigEndian.Uint32(buf[4:8]) != ReportLen {
		return Report{}, ErrReportLength
	}
	if crc32.ChecksumIEEE(buf[:24]) != binary.BigEndian.Uint32(buf[24:28]) {
		return Report{}, ErrReportCRC
	}
	r := Report{
		AP:         binary.BigEndian.Uint32(buf[8:12]),
		Station:    binary.BigEndian.Uint32(buf[12:16]),
		Seq:        binary.BigEndian.Uint32(buf[16:20]),
		SNRMilliDB: int32(binary.BigEndian.Uint32(buf[20:24])),
	}
	if r.Station == 0 || r.Station == broadcastID {
		return Report{}, ErrReportStation
	}
	if r.SNRMilliDB > MaxSNRMilliDB || r.SNRMilliDB < -MaxSNRMilliDB {
		return Report{}, ErrReportSNR
	}
	return r, nil
}

// DropReason maps a DecodeReport error to its drop-counter name. Unknown
// errors map to "drop_other" so no rejection ever goes uncounted.
func DropReason(err error) string {
	switch {
	case errors.Is(err, ErrReportShort):
		return "drop_short"
	case errors.Is(err, ErrReportOversize):
		return "drop_oversize"
	case errors.Is(err, ErrReportMagic):
		return "drop_magic"
	case errors.Is(err, ErrReportVersion):
		return "drop_version"
	case errors.Is(err, ErrReportType):
		return "drop_type"
	case errors.Is(err, ErrReportLength):
		return "drop_length"
	case errors.Is(err, ErrReportCRC):
		return "drop_crc"
	case errors.Is(err, ErrReportStation):
		return "drop_station"
	case errors.Is(err, ErrReportSNR):
		return "drop_snr"
	default:
		return "drop_other"
	}
}

// DropReasons enumerates every counter name DropReason can return, so other
// tiers (the sicgw gateway) can build drop-counter sets that stay aligned
// with the daemon's as reject reasons are added.
func DropReasons() []string { return dropReasons() }

// dropReasons enumerates every counter DropReason can return, for counter
// set construction.
func dropReasons() []string {
	return []string{
		"drop_short", "drop_oversize", "drop_magic", "drop_version",
		"drop_type", "drop_length", "drop_crc", "drop_station",
		"drop_snr", "drop_other",
	}
}
