package schedd

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func mustMarshal(t *testing.T, r Report) []byte {
	t.Helper()
	buf, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestReportRoundTrip(t *testing.T) {
	in := Report{AP: 7, Station: 42, Seq: 1234, SNRMilliDB: -12_345}
	buf := mustMarshal(t, in)
	if len(buf) != ReportLen {
		t.Fatalf("marshalled length %d, want %d", len(buf), ReportLen)
	}
	out, err := DecodeReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeReportRejections(t *testing.T) {
	good := mustMarshal(t, Report{AP: 1, Station: 2, Seq: 3, SNRMilliDB: 20_000})

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
		reason string
	}{
		{"short", func(b []byte) []byte { return b[:10] }, ErrReportShort, "drop_short"},
		{"empty", func(b []byte) []byte { return nil }, ErrReportShort, "drop_short"},
		{"oversize", func(b []byte) []byte { return append(b, 0) }, ErrReportOversize, "drop_oversize"},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrReportMagic, "drop_magic"},
		{"version", func(b []byte) []byte {
			b[2] = 99
			fixCRC(b)
			return b
		}, ErrReportVersion, "drop_version"},
		{"type", func(b []byte) []byte {
			b[3] = 77
			fixCRC(b)
			return b
		}, ErrReportType, "drop_type"},
		{"length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[4:8], 1000)
			fixCRC(b)
			return b
		}, ErrReportLength, "drop_length"},
		{"crc", func(b []byte) []byte { b[20] ^= 0x01; return b }, ErrReportCRC, "drop_crc"},
		{"station-zero", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[12:16], 0)
			fixCRC(b)
			return b
		}, ErrReportStation, "drop_station"},
		{"station-broadcast", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[12:16], ^uint32(0))
			fixCRC(b)
			return b
		}, ErrReportStation, "drop_station"},
		{"snr-implausible", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[20:24], uint32(int32(MaxSNRMilliDB+1)))
			fixCRC(b)
			return b
		}, ErrReportSNR, "drop_snr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := append([]byte(nil), good...)
			buf = tc.mutate(buf)
			_, err := DecodeReport(buf)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if got := DropReason(err); got != tc.reason {
				t.Fatalf("DropReason = %q, want %q", got, tc.reason)
			}
		})
	}
}

// fixCRC recomputes the trailer after a deliberate header mutation so the
// test exercises the targeted check, not the CRC.
func fixCRC(b []byte) {
	binary.BigEndian.PutUint32(b[24:28], crc32.ChecksumIEEE(b[:24]))
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := (Report{Station: 0}).Marshal(); !errors.Is(err, ErrReportStation) {
		t.Fatalf("station 0: %v", err)
	}
	if _, err := (Report{Station: ^uint32(0)}).Marshal(); !errors.Is(err, ErrReportStation) {
		t.Fatalf("broadcast station: %v", err)
	}
	if _, err := (Report{Station: 1, SNRMilliDB: MaxSNRMilliDB + 1}).Marshal(); !errors.Is(err, ErrReportSNR) {
		t.Fatalf("oversized SNR: %v", err)
	}
}

// TestDropReasonsCoverAllErrors: every decode error maps to a distinct
// counter that exists in the declared reason set.
func TestDropReasonsCoverAllErrors(t *testing.T) {
	declared := map[string]bool{}
	for _, r := range dropReasons() {
		declared[r] = true
	}
	for _, err := range []error{
		ErrReportShort, ErrReportOversize, ErrReportMagic, ErrReportVersion,
		ErrReportType, ErrReportLength, ErrReportCRC, ErrReportStation,
		ErrReportSNR, errors.New("anything else"),
	} {
		if !declared[DropReason(err)] {
			t.Fatalf("DropReason(%v) = %q not in dropReasons()", err, DropReason(err))
		}
	}
}

// FuzzDecodeReport: the codec must never panic, and every accepted datagram
// must re-marshal to the identical wire bytes (no mushy parses).
func FuzzDecodeReport(f *testing.F) {
	good, err := Report{AP: 3, Station: 9, Seq: 77, SNRMilliDB: 15_000}.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, ReportLen))
	f.Add(append(append([]byte(nil), good...), 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReport(data)
		if err != nil {
			if DropReason(err) == "drop_other" {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		re, err := r.Marshal()
		if err != nil {
			t.Fatalf("accepted report %+v fails to re-marshal: %v", r, err)
		}
		if string(re) != string(data) {
			t.Fatalf("re-marshal mismatch:\n in  %x\n out %x", data, re)
		}
	})
}
