package schedd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutinesBack polls until the goroutine count returns to (near) the
// recorded baseline, failing the test if daemon goroutines leaked.
func waitGoroutinesBack(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.Gosched(); runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testClient wraps one TCP query connection.
type testClient struct {
	conn net.Conn
	rd   *bufio.Reader
}

func dialQuery(t *testing.T, s *Server) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	return &testClient{conn: conn, rd: bufio.NewReader(conn)}
}

func (c *testClient) close() { c.conn.Close() }

// roundTrip sends one command line and decodes the one-line JSON reply into
// a generic map.
func (c *testClient) roundTrip(t *testing.T, cmd string) map[string]any {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		t.Fatal(err)
	}
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading reply to %q: %v", cmd, err)
	}
	var out map[string]any
	if err := json.Unmarshal(line, &out); err != nil {
		t.Fatalf("bad JSON reply %q: %v", line, err)
	}
	return out
}

// sendReports marshals and fires reports at the daemon's UDP socket.
func sendReports(t *testing.T, s *Server, reports ...Report) {
	t.Helper()
	conn, err := net.Dial("udp", s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, r := range reports {
		buf, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
}

// waitCounter polls until the named counter reaches want.
func waitCounter(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.Counters().Get(name); got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want >= %d (all: %s)", name, s.Counters().Get(name), want, s.Counters())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerEndToEnd: reports in over UDP, a schedule out over TCP, health
// counters that add up.
func TestServerEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sendReports(t, s,
		Report{AP: 7, Station: 1, Seq: 1, SNRMilliDB: 30_000},
		Report{AP: 7, Station: 2, Seq: 1, SNRMilliDB: 15_000},
		Report{AP: 7, Station: 3, Seq: 1, SNRMilliDB: 28_000},
		Report{AP: 7, Station: 4, Seq: 1, SNRMilliDB: 14_000},
	)
	waitCounter(t, s, "reports_ok", 4)

	c := dialQuery(t, s)
	defer c.close()
	resp := c.roundTrip(t, "SCHED 7")
	if resp["error"] != nil {
		t.Fatalf("query error: %v", resp["error"])
	}
	if resp["level"] != "blossom" {
		t.Fatalf("level = %v, want blossom", resp["level"])
	}
	if n := resp["clients"].(float64); n != 4 {
		t.Fatalf("clients = %v, want 4", n)
	}
	if g := resp["gain"].(float64); g < 1 {
		t.Fatalf("gain = %v, want >= 1", g)
	}
	slots := resp["slots"].([]any)
	if len(slots) != 2 {
		t.Fatalf("4 clients should pair into 2 slots, got %d", len(slots))
	}

	// An AP nobody reported for answers with an explicit error.
	if resp := c.roundTrip(t, "SCHED 999"); resp["error"] == nil {
		t.Fatal("unknown AP served a schedule")
	}

	// Malformed commands are counted, not fatal.
	if resp := c.roundTrip(t, "BOGUS"); resp["error"] == nil {
		t.Fatal("unknown command accepted")
	}
	if resp := c.roundTrip(t, "SCHED notanumber"); resp["error"] == nil {
		t.Fatal("bad AP id accepted")
	}

	health := c.roundTrip(t, "HEALTH")
	counters := health["counters"].(map[string]any)
	if counters["reports_ok"].(float64) != 4 {
		t.Fatalf("health reports_ok = %v", counters["reports_ok"])
	}
	if counters["served_blossom"].(float64) != 1 {
		t.Fatalf("health served_blossom = %v", counters["served_blossom"])
	}
	if counters["query_bad"].(float64) != 2 {
		t.Fatalf("health query_bad = %v", counters["query_bad"])
	}

	shutdown(t, s)
	waitGoroutinesBack(t, baseline)
}

// TestServerDropsMalformedDatagrams: garbage on the wire increments the
// right per-reason counters and never reaches the table.
func TestServerDropsMalformedDatagrams(t *testing.T) {
	s, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	conn, err := net.Dial("udp", s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	good, _ := Report{AP: 1, Station: 5, Seq: 1, SNRMilliDB: 20_000}.Marshal()
	corrupted := append([]byte(nil), good...)
	corrupted[21] ^= 0xFF // payload bit flips -> CRC reject

	conn.Write([]byte("not a report")) // short
	conn.Write(append(good, 0xAA))     // oversize
	conn.Write(corrupted)              // crc
	conn.Write(good)                   // ok
	conn.Write(good)                   // duplicate (same seq)
	waitCounter(t, s, "drop_short", 1)
	waitCounter(t, s, "drop_oversize", 1)
	waitCounter(t, s, "drop_crc", 1)
	waitCounter(t, s, "reports_ok", 1)
	waitCounter(t, s, "drop_duplicate", 1)

	if aps, clients := s.table.occupancy(time.Now()); aps != 1 || clients != 1 {
		t.Fatalf("table occupancy %d/%d, want 1/1", aps, clients)
	}
}

// TestServerShedsOldestUnderQueuePressure: with the decode worker held and
// a tiny queue, a burst must shed the oldest datagrams and keep the newest.
func TestServerShedsOldestUnderQueuePressure(t *testing.T) {
	hold := make(chan struct{})
	s, err := Start(Config{QueueDepth: 4, holdIngest: hold})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	var reports []Report
	for i := uint32(1); i <= 10; i++ {
		reports = append(reports, Report{AP: 1, Station: i, Seq: 1, SNRMilliDB: 20_000})
	}
	sendReports(t, s, reports...)
	waitCounter(t, s, "ingest_datagrams", 10)
	waitCounter(t, s, "ingest_shed", 6)

	close(hold)
	waitCounter(t, s, "reports_ok", 4)
	_, ids := s.table.snapshot(1, time.Now())
	if len(ids) != 4 {
		t.Fatalf("table has %d clients, want the 4 newest", len(ids))
	}
	for _, id := range ids {
		if id <= 6 {
			t.Fatalf("old report for station %d survived oldest-first shedding (ids %v)", id, ids)
		}
	}
}

// TestServerOverloadRetryAfter: queries past MaxInflight are shed with a
// retry-after hint instead of queueing.
func TestServerOverloadRetryAfter(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, err := Start(Config{
		MaxInflight:   1,
		RetryAfter:    123 * time.Millisecond,
		QueryDeadline: 5 * time.Second,
		Budgets:       Budgets{Blossom: 4 * time.Second, Greedy: time.Second},
		slowLevel: func(l Level) {
			if l == LevelBlossom {
				once.Do(func() { <-release })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	sendReports(t, s,
		Report{AP: 1, Station: 1, Seq: 1, SNRMilliDB: 30_000},
		Report{AP: 1, Station: 2, Seq: 1, SNRMilliDB: 15_000},
	)
	waitCounter(t, s, "reports_ok", 2)

	// First query parks inside the ladder until released.
	slowDone := make(chan map[string]any, 1)
	c1 := dialQuery(t, s)
	defer c1.close()
	go func() {
		slowDone <- c1.roundTrip(t, "SCHED 1")
	}()

	// Wait until the slow query is truly in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	c2 := dialQuery(t, s)
	defer c2.close()
	resp := c2.roundTrip(t, "SCHED 1")
	if resp["error"] != "overloaded" {
		t.Fatalf("second query got %v, want overloaded", resp)
	}
	if resp["retry_after_ms"].(float64) != 123 {
		t.Fatalf("retry_after_ms = %v, want 123", resp["retry_after_ms"])
	}

	close(release)
	if resp := <-slowDone; resp["error"] != nil {
		t.Fatalf("slow query failed: %v", resp)
	}
	if got := s.Counters().Get("query_overload"); got != 1 {
		t.Fatalf("query_overload = %d, want 1", got)
	}
}

// TestServerDeadlineDegradation is the acceptance scenario end to end: a
// 40-client snapshot with an injected 50 ms matching budget and a slow
// solver must still answer every query inside the query deadline, recording
// the serial rung.
func TestServerDeadlineDegradation(t *testing.T) {
	s, err := Start(Config{
		Budgets:       Budgets{Blossom: 50 * time.Millisecond, Greedy: 10 * time.Millisecond},
		QueryDeadline: 400 * time.Millisecond,
		slowLevel: func(l Level) {
			if l != LevelSerial {
				time.Sleep(60 * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	var reports []Report
	for i := uint32(1); i <= 40; i++ {
		reports = append(reports, Report{AP: 3, Station: i, Seq: 1, SNRMilliDB: int32(10_000 + 500*int(i))})
	}
	sendReports(t, s, reports...)
	waitCounter(t, s, "reports_ok", 40)

	c := dialQuery(t, s)
	defer c.close()
	for q := 0; q < 3; q++ {
		start := time.Now()
		resp := c.roundTrip(t, "SCHED 3")
		elapsed := time.Since(start)
		if resp["error"] != nil {
			t.Fatalf("query %d failed: %v", q, resp["error"])
		}
		if resp["level"] != "serial" {
			t.Fatalf("query %d: level = %v, want serial (both matchers over budget)", q, resp["level"])
		}
		if n := resp["clients"].(float64); n != 40 {
			t.Fatalf("query %d: clients = %v, want 40", q, n)
		}
		if elapsed > 400*time.Millisecond {
			t.Fatalf("query %d took %v, beyond the 400ms deadline", q, elapsed)
		}
	}
	if got := s.Counters().Get("served_serial"); got != 3 {
		t.Fatalf("served_serial = %d, want 3", got)
	}
}

// TestServerShutdownDrainsInFlightQuery is the kill-mid-query test: a
// shutdown issued while a query is being served must let that query finish,
// leak no goroutines, and leave the counters intact and readable.
func TestServerShutdownDrainsInFlightQuery(t *testing.T) {
	baseline := runtime.NumGoroutine()
	entered := make(chan struct{})
	var once sync.Once
	s, err := Start(Config{
		QueryDeadline: 5 * time.Second,
		Budgets:       Budgets{Blossom: 4 * time.Second, Greedy: time.Second},
		slowLevel: func(l Level) {
			if l == LevelBlossom {
				once.Do(func() { close(entered) })
				time.Sleep(150 * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sendReports(t, s,
		Report{AP: 1, Station: 1, Seq: 1, SNRMilliDB: 30_000},
		Report{AP: 1, Station: 2, Seq: 1, SNRMilliDB: 15_000},
	)
	waitCounter(t, s, "reports_ok", 2)

	c := dialQuery(t, s)
	defer c.close()
	respc := make(chan map[string]any, 1)
	go func() {
		respc <- c.roundTrip(t, "SCHED 1")
	}()
	<-entered // the query is now mid-ladder

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during in-flight query: %v", err)
	}

	select {
	case resp := <-respc:
		if resp["error"] != nil {
			t.Fatalf("in-flight query was not drained: %v", resp["error"])
		}
		if resp["level"] != "blossom" {
			t.Fatalf("drained query level = %v, want blossom", resp["level"])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never completed")
	}

	// Counters survive shutdown, and the drained query is accounted.
	if got := s.Counters().Get("served_blossom"); got != 1 {
		t.Fatalf("served_blossom = %d after shutdown, want 1", got)
	}
	if got := s.Counters().Get("reports_ok"); got != 2 {
		t.Fatalf("reports_ok = %d after shutdown, want 2", got)
	}
	waitGoroutinesBack(t, baseline)

	// Second shutdown is rejected, not a crash.
	if err := s.Shutdown(context.Background()); err == nil {
		t.Fatal("double shutdown accepted")
	}
}

// TestServerShutdownWithIdleConns: connections sitting idle in a read must
// not hold shutdown hostage.
func TestServerShutdownWithIdleConns(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := dialQuery(t, s)
	defer c1.close()
	c2 := dialQuery(t, s)
	defer c2.close()
	c1.roundTrip(t, "HEALTH") // ensure both handlers are up
	c2.roundTrip(t, "HEALTH")

	start := time.Now()
	shutdown(t, s)
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("idle conns delayed shutdown by %v", e)
	}
	waitGoroutinesBack(t, baseline)
}

// TestHealthShardIdentityAndEpoch covers the gateway-facing HEALTH
// extension: shard name and per-boot instance are echoed, the ring epoch
// starts at 0, EPOCH advances it monotonically (never backwards), and a
// restart resets it while changing the instance — the two signals a
// gateway uses to spot a shard that lost its sessions.
func TestHealthShardIdentityAndEpoch(t *testing.T) {
	s, err := Start(Config{ShardID: "shard-a"})
	if err != nil {
		t.Fatal(err)
	}
	c := dialQuery(t, s)
	h := c.roundTrip(t, "HEALTH")
	if h["shard"] != "shard-a" {
		t.Fatalf("shard = %v, want shard-a", h["shard"])
	}
	inst, _ := h["instance"].(string)
	if len(inst) != 16 || inst != s.Instance() {
		t.Fatalf("instance = %q, want the server's 16-hex nonce %q", inst, s.Instance())
	}
	if h["ring_epoch"] != float64(0) {
		t.Fatalf("fresh ring_epoch = %v, want 0", h["ring_epoch"])
	}

	if r := c.roundTrip(t, "EPOCH 7"); r["ring_epoch"] != float64(7) {
		t.Fatalf("EPOCH 7 reply = %v", r)
	}
	// A stale push cannot rewind.
	if r := c.roundTrip(t, "EPOCH 3"); r["ring_epoch"] != float64(7) {
		t.Fatalf("stale EPOCH rewound the epoch: %v", r)
	}
	if r := c.roundTrip(t, "EPOCH x"); r["error"] == nil {
		t.Fatalf("malformed EPOCH accepted: %v", r)
	}
	if h := c.roundTrip(t, "HEALTH"); h["ring_epoch"] != float64(7) {
		t.Fatalf("HEALTH ring_epoch = %v, want 7", h["ring_epoch"])
	}
	if got := s.Counters().Get("epoch_updates"); got != 1 {
		t.Fatalf("epoch_updates = %d, want 1 (only the advance counts)", got)
	}
	c.close()
	shutdown(t, s)

	// A restarted shard forgets the pushed epoch and mints a new instance.
	s2, err := Start(Config{ShardID: "shard-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	c2 := dialQuery(t, s2)
	defer c2.close()
	h2 := c2.roundTrip(t, "HEALTH")
	if h2["ring_epoch"] != float64(0) {
		t.Fatalf("restarted ring_epoch = %v, want 0", h2["ring_epoch"])
	}
	if h2["instance"] == inst {
		t.Fatal("restarted shard reused its instance nonce")
	}
}
