package schedd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/emu"
)

// chaosModel is the fault mix used by the soak: enough loss and corruption
// that every rejection path fires, plus occasional station stalls.
var chaosModel = emu.FaultModel{Loss: 0.15, Corrupt: 0.10, Stall: 0.02, StallSlots: 3}

// runChaosTraffic pushes `rounds` report rounds for stations 1..nStations
// (10 stations per AP) through the wire-chaos model into the daemon's UDP
// socket. Every chaos decision is keyed on (station, seq), so for a fixed
// seed the byte stream that reaches the socket is identical across runs.
// Every 7th surviving datagram is sent twice to exercise duplicate
// suppression. Returns the number of datagrams actually transmitted.
//
// Sends are paced against the ingest_datagrams counter so the kernel socket
// buffer can never overflow — loopback delivery is then lossless and the
// decode-level counters are a pure function of the seed.
func runChaosTraffic(t *testing.T, s *Server, chaos *emu.WireChaos, rounds, nStations int) int {
	t.Helper()
	conn, err := net.Dial("udp", s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sent := 0
	skip := make(map[uint32]int)
	for round := 0; round < rounds; round++ {
		seq := uint32(round + 1)
		for st := uint32(1); st <= uint32(nStations); st++ {
			if skip[st] > 0 { // station frozen mid-stall
				skip[st]--
				continue
			}
			if n := chaos.Stall(st, seq); n > 0 {
				skip[st] = n - 1 // this datagram is the first suppressed one
				continue
			}
			if chaos.Drop(st, seq) {
				continue
			}
			r := Report{AP: 1 + (st-1)/10, Station: st, Seq: seq, SNRMilliDB: int32(5_000 + 700*int(st))}
			buf, err := r.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			buf = chaos.Corrupt(buf, st, seq)
			if _, err := conn.Write(buf); err != nil {
				t.Fatal(err)
			}
			sent++
			if (int(st)+round)%7 == 0 { // wire-level duplicate
				if _, err := conn.Write(buf); err != nil {
					t.Fatal(err)
				}
				sent++
			}
		}
		waitCounter(t, s, "ingest_datagrams", int64(sent))
	}
	return sent
}

// deterministicCounters is the subset of daemon counters that is a pure
// function of (seed, traffic schedule): everything decided per datagram.
// Queue shedding and query counters depend on goroutine timing and are
// excluded on purpose.
func deterministicCounters(s *Server) map[string]int64 {
	keep := append(dropReasons(),
		"ingest_datagrams", "reports_ok", "drop_duplicate", "drop_aps_full")
	snap := s.Counters().Snapshot()
	out := make(map[string]int64, len(keep))
	for _, k := range keep {
		out[k] = snap[k]
	}
	return out
}

// chaosRun boots a daemon, plays the seeded traffic, shuts down cleanly and
// returns the deterministic counter snapshot.
func chaosRun(t *testing.T, seed int64, rounds, nStations int) map[string]int64 {
	t.Helper()
	chaos, err := emu.NewWireChaos(chaosModel, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(Config{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	runChaosTraffic(t, s, chaos, rounds, nStations)
	shutdown(t, s) // drains the queue, so the snapshot below is complete
	return deterministicCounters(s)
}

// TestChaosDeterministicCounters: two runs with the same seed produce
// identical drop counters; a different seed produces a different fault
// pattern. This is the regression gate for the reproducibility promise.
func TestChaosDeterministicCounters(t *testing.T) {
	a := chaosRun(t, 42, 40, 40)
	b := chaosRun(t, 42, 40, 40)
	for k, av := range a {
		if bv := b[k]; av != bv {
			t.Errorf("counter %s: run A %d, run B %d (same seed must agree)", k, av, bv)
		}
	}
	if a["reports_ok"] == 0 {
		t.Fatal("chaos run delivered no valid reports")
	}
	if a["drop_crc"] == 0 {
		t.Fatal("corruption never hit the CRC check")
	}
	if a["drop_duplicate"] == 0 {
		t.Fatal("duplicates never exercised")
	}

	c := chaosRun(t, 43, 40, 40)
	diverged := false
	for k, av := range a {
		if c[k] != av {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical counters; chaos is not seeded")
	}
}

// TestChaosKillRestart is the durability arm of the chaos harness: seeded
// chaos traffic into a persistent daemon, an abrupt kill (no snapshot, no
// drain), restart on the same data directory, more traffic — repeated for
// several cycles. Across every cycle the daemon must come back, recover
// its sessions from snapshot+WAL, preserve sequence continuity (replays of
// pre-kill reports stay duplicates), and keep serving.
func TestChaosKillRestart(t *testing.T) {
	const (
		cycles    = 3
		rounds    = 10
		nStations = 30
	)
	dir := t.TempDir()
	chaos, err := emu.NewWireChaos(chaosModel, 11)
	if err != nil {
		t.Fatal(err)
	}

	var prevSessions int
	seqBase := 0
	for cycle := 0; cycle < cycles; cycle++ {
		s, err := Start(Config{TTL: time.Hour, DataDir: dir})
		if err != nil {
			t.Fatalf("cycle %d: restart failed: %v", cycle, err)
		}
		if cycle > 0 {
			// Session continuity: everything alive at the kill is back.
			if got := s.Sessions(); got != prevSessions {
				t.Fatalf("cycle %d: recovered %d sessions, want %d", cycle, got, prevSessions)
			}
			replayed := s.SessionEvents().Get("wal_replay") + s.SessionEvents().Get("snapshot_restore")
			if replayed == 0 {
				t.Fatalf("cycle %d: restart recovered nothing", cycle)
			}
			// Replay a pre-kill report: the recovered session still knows
			// its sequence position.
			sendReports(t, s, Report{AP: 1, Station: 1, Seq: uint32(seqBase), SNRMilliDB: int32(5_700)})
			waitCounter(t, s, "drop_duplicate", 1)
		}

		// Chaos traffic with strictly advancing sequences across cycles.
		conn, err := net.Dial("udp", s.UDPAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		sent := int(s.Counters().Get("ingest_datagrams"))
		for round := 0; round < rounds; round++ {
			seq := uint32(seqBase + round + 1)
			for st := uint32(1); st <= nStations; st++ {
				if chaos.Drop(st, seq) {
					continue
				}
				r := Report{AP: 1 + (st-1)/10, Station: st, Seq: seq, SNRMilliDB: int32(5_000 + 700*int(st))}
				buf, mErr := r.Marshal()
				if mErr != nil {
					t.Fatal(mErr)
				}
				if _, err := conn.Write(chaos.Corrupt(buf, st, seq)); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			waitCounter(t, s, "ingest_datagrams", int64(sent))
		}
		conn.Close()
		seqBase += rounds

		// The daemon serves from the (partly recovered) table before dying.
		c := dialQuery(t, s)
		if resp := c.roundTrip(t, "SCHED 1"); resp["error"] != nil {
			t.Fatalf("cycle %d: SCHED failed: %v", cycle, resp["error"])
		}
		c.close()
		prevSessions = s.Sessions()
		if prevSessions == 0 {
			t.Fatalf("cycle %d: no sessions formed", cycle)
		}
		s.Kill()
	}

	// Final restart proves the last kill is recoverable too.
	s, err := Start(Config{TTL: time.Hour, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)
	if got := s.Sessions(); got != prevSessions {
		t.Fatalf("final restart: %d sessions, want %d", got, prevSessions)
	}
}

// queryLoop hammers SCHED/HEALTH queries until done closes. Errors are
// tolerated (the daemon may be shutting down); service is asserted through
// the daemon's own counters.
func queryLoop(addr string, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		rd := bufio.NewReader(conn)
		for ap := 1; ap <= 4; ap++ {
			select {
			case <-done:
				conn.Close()
				return
			default:
			}
			if _, err := fmt.Fprintf(conn, "SCHED %d\n", ap); err != nil {
				break
			}
			if _, err := rd.ReadBytes('\n'); err != nil {
				break
			}
		}
		fmt.Fprintf(conn, "HEALTH\n")
		rd.ReadBytes('\n')
		conn.Close()
	}
}

// TestChaosSoak runs the full daemon under the seeded fault model with
// concurrent schedule queries for a fixed wall-clock duration (default 2s;
// CI sets SCHEDD_SOAK=30s). The daemon must keep serving, crash never,
// shut down cleanly and leak no goroutines.
func TestChaosSoak(t *testing.T) {
	dur := 2 * time.Second
	if v := os.Getenv("SCHEDD_SOAK"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SCHEDD_SOAK %q: %v", v, err)
		}
		dur = parsed
	}

	baseline := runtime.NumGoroutine()
	chaos, err := emu.NewWireChaos(chaosModel, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(Config{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queryLoop(s.TCPAddr().String(), done)
		}()
	}

	const nStations = 40
	deadline := time.Now().Add(dur)
	sent, round := 0, 0
	skip := make(map[uint32]int)
	conn, err := net.Dial("udp", s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for time.Now().Before(deadline) {
		round++
		seq := uint32(round)
		for st := uint32(1); st <= nStations; st++ {
			if skip[st] > 0 {
				skip[st]--
				continue
			}
			if n := chaos.Stall(st, seq); n > 0 {
				skip[st] = n - 1
				continue
			}
			if chaos.Drop(st, seq) {
				continue
			}
			r := Report{AP: 1 + (st-1)/10, Station: st, Seq: seq, SNRMilliDB: int32(5_000 + 700*int(st))}
			buf, mErr := r.Marshal()
			if mErr != nil {
				t.Fatal(mErr)
			}
			if _, err := conn.Write(chaos.Corrupt(buf, st, seq)); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		waitCounter(t, s, "ingest_datagrams", int64(sent))
		time.Sleep(2 * time.Millisecond) // let queries interleave with ingest
	}
	close(done)
	wg.Wait()

	snap := s.Counters().Snapshot()
	served := snap["served_blossom"] + snap["served_greedy"] + snap["served_serial"]
	if served == 0 {
		t.Fatalf("soak served no schedules; counters: %s", s.Counters())
	}
	if snap["reports_ok"] == 0 {
		t.Fatalf("soak ingested no valid reports; counters: %s", s.Counters())
	}
	inj := chaos.Injected()
	if inj.FramesLost == 0 || inj.CRCRejects == 0 {
		t.Fatalf("fault model idle during soak: %+v", inj)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("soak shutdown: %v", err)
	}
	waitGoroutinesBack(t, baseline)
	t.Logf("soak: %d rounds, %d datagrams, %d served, injected %+v; %s",
		round, sent, served, inj, s.Counters())
}
