package schedd

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// schedJSON canonicalises one SCHED reply for cross-restart comparison:
// elapsed_ms is wall time and legitimately differs between runs; every
// other byte of the answer must reproduce. Re-marshalling the map sorts
// the keys, so equal maps give equal bytes.
func schedJSON(t *testing.T, resp map[string]any) string {
	t.Helper()
	if resp["error"] != nil {
		t.Fatalf("SCHED failed: %v", resp["error"])
	}
	delete(resp, "elapsed_ms")
	buf, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func seedStations(t *testing.T, s *Server) {
	t.Helper()
	sendReports(t, s,
		Report{AP: 1, Station: 1, Seq: 10, SNRMilliDB: 30_000},
		Report{AP: 1, Station: 2, Seq: 10, SNRMilliDB: 15_000},
		Report{AP: 1, Station: 3, Seq: 10, SNRMilliDB: 28_000},
		Report{AP: 1, Station: 4, Seq: 10, SNRMilliDB: 14_000},
	)
	waitCounter(t, s, "reports_ok", 4)
}

// TestRestartRecoversSessions: a graceful restart answers the same AP with
// a byte-identical schedule, recovered purely from the snapshot.
func TestRestartRecoversSessions(t *testing.T) {
	dir := t.TempDir()
	s, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedStations(t, s)
	c := dialQuery(t, s)
	before := schedJSON(t, c.roundTrip(t, "SCHED 1"))
	c.close()
	shutdown(t, s)

	s2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	if got := s2.SessionEvents().Get("snapshot_restore"); got != 4 {
		t.Fatalf("snapshot_restore = %d, want 4", got)
	}
	if got := s2.SessionEvents().Get("wal_replay"); got != 0 {
		t.Fatalf("wal_replay after clean shutdown = %d, want 0", got)
	}
	c2 := dialQuery(t, s2)
	defer c2.close()
	after := schedJSON(t, c2.roundTrip(t, "SCHED 1"))
	if before != after {
		t.Fatalf("schedule changed across restart:\n before %s\n after  %s", before, after)
	}
	// HEALTH reports the recovered sessions.
	h := c2.roundTrip(t, "HEALTH")
	if got := h["sessions"].(float64); got != 4 {
		t.Fatalf("sessions = %v, want 4", got)
	}
}

// TestKillRecoversFromWAL: an abrupt in-process crash (no snapshot, no
// drain) recovers from WAL replay and still answers identically.
func TestKillRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedStations(t, s)
	c := dialQuery(t, s)
	before := schedJSON(t, c.roundTrip(t, "SCHED 1"))
	c.close()
	s.Kill()

	s2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	if got := s2.SessionEvents().Get("wal_replay"); got < 4 {
		t.Fatalf("wal_replay = %d, want >= 4 (one per accepted report)", got)
	}
	rec := s2.SessionRecovery()
	if rec.WALTorn {
		t.Fatal("clean WAL reported torn")
	}
	c2 := dialQuery(t, s2)
	defer c2.close()
	after := schedJSON(t, c2.roundTrip(t, "SCHED 1"))
	if before != after {
		t.Fatalf("schedule changed across crash:\n before %s\n after  %s", before, after)
	}
}

// TestTornWALStartsCleanly: tearing the last WAL record mid-write loses
// only that record; startup still succeeds and the surviving sessions
// schedule.
func TestTornWALStartsCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seedStations(t, s)
	s.Kill()

	// Tear the tail: chop bytes off the last record, as a crash mid-write
	// would.
	wal := filepath.Join(dir, "sessions.wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("torn WAL failed startup: %v", err)
	}
	defer shutdown(t, s2)
	if got := s2.SessionEvents().Get("wal_torn"); got != 1 {
		t.Fatalf("wal_torn = %d, want 1", got)
	}
	if got := s2.SessionEvents().Get("wal_replay"); got != 3 {
		t.Fatalf("wal_replay = %d, want the 3 intact records", got)
	}
	c := dialQuery(t, s2)
	defer c.close()
	resp := c.roundTrip(t, "SCHED 1")
	if resp["error"] != nil {
		t.Fatalf("SCHED after torn recovery: %v", resp["error"])
	}
	if n := resp["clients"].(float64); n != 3 {
		t.Fatalf("clients = %v, want the 3 recovered stations", n)
	}
}

// TestSeqContinuityAcrossRestart: the recovered session remembers each
// station's sequence position, so a post-restart replay is still a
// duplicate — and a rebooted station restarting at Seq=1 is readmitted
// immediately instead of being locked out.
func TestSeqContinuityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sendReports(t, s, Report{AP: 1, Station: 1, Seq: 500, SNRMilliDB: 30_000})
	waitCounter(t, s, "reports_ok", 1)
	shutdown(t, s)

	s2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	// Replay of the pre-restart report: duplicate, not a fresh client.
	sendReports(t, s2, Report{AP: 1, Station: 1, Seq: 500, SNRMilliDB: 30_000})
	waitCounter(t, s2, "drop_duplicate", 1)
	// Reboot to Seq=1: accepted as an epoch reset, counted as a resume.
	sendReports(t, s2, Report{AP: 1, Station: 1, Seq: 1, SNRMilliDB: 29_000})
	waitCounter(t, s2, "reports_ok", 1)
	if got := s2.SessionEvents().Get("resume"); got != 1 {
		t.Fatalf("resume = %d, want 1", got)
	}
	st, ok := s2.Session(1)
	if !ok {
		t.Fatal("session lost")
	}
	if st.Epoch != 1 || st.Seq != 1 {
		t.Fatalf("post-reboot session = %+v, want epoch 1 seq 1", st)
	}
}

// helperEnv is set when the test binary re-executes itself as a daemon
// process for kill -9 coverage.
const helperEnv = "SCHEDD_HELPER"

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

// helperMain runs a real daemon in a disposable process: print the bound
// addresses for the parent, then serve until killed.
func helperMain() {
	s, err := Start(Config{DataDir: os.Getenv("SCHEDD_DATA_DIR")})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("UDP", s.UDPAddr().String())
	fmt.Println("TCP", s.TCPAddr().String())
	select {}
}

// TestKill9Restart: a real SIGKILL of a separate daemon process, then a
// restart on the same data directory, must recover every accepted report
// from the WAL. This is the no-cooperation version of TestKillRecoversFromWAL:
// nothing in the dying process gets to run cleanup.
func TestKill9Restart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), helperEnv+"=1", "SCHEDD_DATA_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var udpAddr, tcpAddr string
	if _, err := fmt.Fscanf(stdout, "UDP %s\nTCP %s\n", &udpAddr, &tcpAddr); err != nil {
		t.Fatalf("reading helper addresses: %v", err)
	}

	// Feed the daemon over the real wire, then confirm it answers.
	reports := []Report{
		{AP: 1, Station: 1, Seq: 10, SNRMilliDB: 30_000},
		{AP: 1, Station: 2, Seq: 10, SNRMilliDB: 15_000},
	}
	sendReportsTo(t, udpAddr, reports...)
	before := waitSchedAnswer(t, tcpAddr, 1, 2)

	// SIGKILL: no defers, no snapshot, no flush.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	s, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("restart after kill -9: %v", err)
	}
	defer shutdown(t, s)
	// At least the two reports (the pre-kill SCHED answer may add pairing
	// records on top).
	if got := s.SessionEvents().Get("wal_replay"); got < 2 {
		t.Fatalf("wal_replay = %d, want >= 2", got)
	}
	c := dialQuery(t, s)
	defer c.close()
	after := schedJSON(t, c.roundTrip(t, "SCHED 1"))
	if before != after {
		t.Fatalf("schedule changed across kill -9:\n before %s\n after  %s", before, after)
	}
}

// sendReportsTo fires reports at an arbitrary UDP address (a daemon in
// another process).
func sendReportsTo(t *testing.T, addr string, reports ...Report) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, r := range reports {
		buf, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
}

// waitSchedAnswer polls SCHED <ap> on an external daemon until it reports
// the expected client count, returning the canonical answer.
func waitSchedAnswer(t *testing.T, addr string, ap uint32, wantClients int) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := externalRoundTrip(addr, fmt.Sprintf("SCHED %d", ap))
		if err == nil && resp["error"] == nil {
			if n, ok := resp["clients"].(float64); ok && int(n) == wantClients {
				return schedJSON(t, resp)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("external daemon never served %d clients (last: %v, err %v)", wantClients, resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func externalRoundTrip(addr, cmd string) (map[string]any, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(conn)
	var out map[string]any
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// TestDurabilityMatrix sanity-checks that equal session states survive the
// three recovery paths identically: clean close, crash, crash+torn tail.
func TestDurabilityMatrix(t *testing.T) {
	build := func(t *testing.T, stop func(*Server)) []uint32 {
		dir := t.TempDir()
		s, err := Start(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		seedStations(t, s)
		stop(s)
		s2, err := Start(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown(t, s2)
		var ids []uint32
		for sta := uint32(1); sta <= 4; sta++ {
			if _, ok := s2.Session(sta); ok {
				ids = append(ids, sta)
			}
		}
		return ids
	}
	clean := build(t, func(s *Server) { shutdown(t, s) })
	crashed := build(t, func(s *Server) { s.Kill() })
	if !reflect.DeepEqual(clean, crashed) {
		t.Fatalf("recovery differs: clean %v vs crash %v", clean, crashed)
	}
	if len(clean) != 4 {
		t.Fatalf("recovered %d sessions, want 4", len(clean))
	}
}
