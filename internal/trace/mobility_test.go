package trace

import (
	"reflect"
	"testing"
)

func TestGenerateRoamingDeterministic(t *testing.T) {
	a, err := GenerateRoaming(DefaultRoamConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRoaming(DefaultRoamConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := GenerateRoaming(DefaultRoamConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateRoamingShape(t *testing.T) {
	cfg := DefaultRoamConfig(7)
	steps, err := GenerateRoaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != cfg.Steps {
		t.Fatalf("steps = %d, want %d", len(steps), cfg.Steps)
	}
	roams := 0
	lastAP := map[uint32]uint32{}
	for i, st := range steps {
		if st.Unix != int64(i*cfg.StepSeconds) {
			t.Fatalf("step %d at %d, want %d", i, st.Unix, i*cfg.StepSeconds)
		}
		if len(st.Obs) != cfg.Clients {
			t.Fatalf("step %d has %d obs, want %d", i, len(st.Obs), cfg.Clients)
		}
		for j, o := range st.Obs {
			if o.Station != uint32(j+1) {
				t.Fatalf("step %d obs %d station = %d, want %d (ordered, 1-based)", i, j, o.Station, j+1)
			}
			if o.AP < 1 || o.AP > uint32(cfg.APs) {
				t.Fatalf("step %d station %d at AP %d, want 1..%d", i, o.Station, o.AP, cfg.APs)
			}
			if prev, ok := lastAP[o.Station]; ok && prev != o.AP {
				roams++
			}
			lastAP[o.Station] = o.AP
		}
	}
	// The whole point of the trace: stations must actually cross cells.
	if roams == 0 {
		t.Fatal("no station ever changed AP; mobility trace exercises no roaming")
	}
}

func TestRoamConfigValidate(t *testing.T) {
	cfg := DefaultRoamConfig(1)
	cfg.Clients = 0
	if _, err := GenerateRoaming(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
