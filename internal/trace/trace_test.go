package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestGenConfigValidate(t *testing.T) {
	good := DefaultGenConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.APs = 0 },
		func(c *GenConfig) { c.APSpacing = 0 },
		func(c *GenConfig) { c.Days = 0 },
		func(c *GenConfig) { c.SnapshotMinutes = 0 },
		func(c *GenConfig) { c.PeakClients = 0 },
		func(c *GenConfig) { c.PathLoss.RefSNR = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultGenConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateUploadShape(t *testing.T) {
	cfg := DefaultGenConfig(7)
	cfg.Days = 2 // keep the test fast
	snaps, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("empty trace")
	}
	apSeen := map[string]bool{}
	maxClients := 0
	for _, s := range snaps {
		if s.AP == "" {
			t.Fatal("snapshot with empty AP")
		}
		apSeen[s.AP] = true
		if len(s.Clients) == 0 {
			t.Fatal("snapshot with no clients should be omitted")
		}
		if len(s.Clients) > maxClients {
			maxClients = len(s.Clients)
		}
		for _, c := range s.Clients {
			if c.ID == "" || math.IsNaN(c.SNRdB) {
				t.Fatalf("bad client observation %+v", c)
			}
		}
	}
	if len(apSeen) != cfg.APs {
		t.Errorf("trace covers %d APs, want %d", len(apSeen), cfg.APs)
	}
	if maxClients < 2 {
		t.Errorf("max clients per snapshot = %d; pairing needs at least 2 sometimes", maxClients)
	}
}

func TestGenerateUploadDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(42)
	cfg.Days = 1
	a, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].AP != b[i].AP || a[i].Unix != b[i].Unix || len(a[i].Clients) != len(b[i].Clients) {
			t.Fatalf("snapshot %d differs", i)
		}
		for j := range a[i].Clients {
			if a[i].Clients[j] != b[i].Clients[j] {
				t.Fatalf("snapshot %d client %d differs", i, j)
			}
		}
	}
}

func TestGenerateUploadDiurnalPattern(t *testing.T) {
	cfg := DefaultGenConfig(3)
	cfg.Days = 7
	snaps, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Weekday working hours (Mon 9:00-18:00) must carry more clients than
	// weekday nights (0:00-6:00) in aggregate.
	var work, night int
	for _, s := range snaps {
		minutes := s.Unix / 60
		hourOfWeek := int(minutes/60) % (7 * 24)
		day, hour := hourOfWeek/24, hourOfWeek%24
		if day < 5 && hour >= 9 && hour < 18 {
			work += len(s.Clients)
		}
		if day < 5 && hour < 6 {
			night += len(s.Clients)
		}
	}
	if work <= night*3 {
		t.Errorf("diurnal profile missing: work-hour clients %d vs night %d", work, night)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig(9)
	cfg.Days = 1
	snaps, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(snaps) {
		t.Fatalf("round trip lost snapshots: %d vs %d", len(back), len(snaps))
	}
	for i := range snaps {
		if snaps[i].AP != back[i].AP || snaps[i].Unix != back[i].Unix {
			t.Fatalf("snapshot %d header mismatch", i)
		}
		for j := range snaps[i].Clients {
			if snaps[i].Clients[j] != back[i].Clients[j] {
				t.Fatalf("snapshot %d client %d mismatch", i, j)
			}
		}
	}
}

func TestReadSnapshotsRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"unix":0,"ap":"","clients":[{"id":"a","snr_db":10}]}`,   // empty AP
		`{"unix":0,"ap":"ap0","clients":[{"id":"","snr_db":10}]}`, // empty client
		`not json at all`, // parse error
	}
	for i, c := range cases {
		if _, err := ReadSnapshots(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadSnapshotsEmpty(t *testing.T) {
	snaps, err := ReadSnapshots(strings.NewReader(""))
	if err != nil || len(snaps) != 0 {
		t.Errorf("empty stream: %v, %d snaps", err, len(snaps))
	}
}

func TestGenerateSurveyShape(t *testing.T) {
	cfg := DefaultGenConfig(11)
	pts, err := GenerateSurvey(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("got %d points, want 100", len(pts))
	}
	names := map[string]bool{}
	for _, p := range pts {
		if names[p.Client] {
			t.Fatalf("duplicate client name %q", p.Client)
		}
		names[p.Client] = true
		if len(p.SNRdB) != cfg.APs {
			t.Fatalf("point %q has %d AP observations, want %d", p.Client, len(p.SNRdB), cfg.APs)
		}
	}
	if _, err := GenerateSurvey(cfg, 0); err == nil {
		t.Error("zero locations accepted")
	}
}

func TestSurveyRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig(13)
	pts, err := GenerateSurvey(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSurvey(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSurvey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(back), len(pts))
	}
	for i := range pts {
		if pts[i].Client != back[i].Client {
			t.Fatalf("point %d name mismatch", i)
		}
		for ap, v := range pts[i].SNRdB {
			if back[i].SNRdB[ap] != v {
				t.Fatalf("point %d AP %s mismatch", i, ap)
			}
		}
	}
}

func TestReadSurveyRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"client":"","snr_db":{"ap0":10}}`, // empty client
		`{"client":"x","snr_db":{}}`,        // no observations
		`{{{`,                               // parse error
	}
	for i, c := range cases {
		if _, err := ReadSurvey(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOccupancyProfile(t *testing.T) {
	// Monday 13:00 is peak; Monday 03:00 and Saturday 13:00 are not.
	if occupancy(13) != 1.0 {
		t.Errorf("Mon 13:00 occupancy = %v, want 1", occupancy(13))
	}
	if occupancy(3) >= 0.5 {
		t.Errorf("Mon 03:00 occupancy = %v, want low", occupancy(3))
	}
	if occupancy(5*24+13) >= 0.5 {
		t.Errorf("Sat 13:00 occupancy = %v, want reduced", occupancy(5*24+13))
	}
}

func TestPoissonMean(t *testing.T) {
	cfg := DefaultGenConfig(5)
	_ = cfg
	// Check the helper directly through the generator's behaviour is hard;
	// test the distribution here.
	rng := newTestRand()
	const mean = 6.0
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.15 {
		t.Errorf("poisson mean = %v, want ≈%v", got, mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if poisson(rng, -2) != 0 {
		t.Error("poisson(negative) != 0")
	}
}

// newTestRand returns a deterministic RNG for distribution tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(12345)) }

func TestAnalyze(t *testing.T) {
	cfg := DefaultGenConfig(21)
	cfg.Days = 2
	snaps, err := GenerateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Analyze(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != len(snaps) {
		t.Errorf("Snapshots = %d, want %d", st.Snapshots, len(snaps))
	}
	if st.APs != cfg.APs {
		t.Errorf("APs = %d, want %d", st.APs, cfg.APs)
	}
	if st.TotalClients <= 0 {
		t.Error("no client observations")
	}
	if st.PairableFraction <= 0 || st.PairableFraction > 1 {
		t.Errorf("pairable fraction %v out of range", st.PairableFraction)
	}
	if st.ClientsPerSnapshot.Min < 1 {
		t.Error("empty snapshots should never be emitted")
	}
	if st.BusiestAP == "" {
		t.Error("no busiest AP")
	}
	// The report renders without issue.
	if s := st.String(); len(s) < 50 {
		t.Errorf("report too short: %q", s)
	}
	// Empty trace rejected.
	if _, err := Analyze(nil); err == nil {
		t.Error("empty trace accepted")
	}
}
