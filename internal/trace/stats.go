package trace

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Stats summarises an upload trace: the sanity numbers one checks before
// trusting a scheduling evaluation built on it.
type Stats struct {
	// Snapshots is the record count.
	Snapshots int
	// APs is the number of distinct access points.
	APs int
	// TotalClients counts client observations across snapshots.
	TotalClients int
	// ClientsPerSnapshot summarises the per-snapshot population.
	ClientsPerSnapshot stats.Summary
	// SNRdB summarises the observed RSSI distribution.
	SNRdB stats.Summary
	// PairableFraction is the fraction of snapshots with ≥2 clients — the
	// ones the SIC scheduler can do anything with.
	PairableFraction float64
	// BusiestAP names the AP with the most client observations.
	BusiestAP string
}

// Analyze computes Stats over a snapshot trace.
func Analyze(snaps []Snapshot) (Stats, error) {
	if len(snaps) == 0 {
		return Stats{}, errors.New("trace: empty trace")
	}
	var (
		perSnap  []float64
		snrs     []float64
		pairable int
	)
	apCounts := map[string]int{}
	for _, s := range snaps {
		perSnap = append(perSnap, float64(len(s.Clients)))
		apCounts[s.AP] += len(s.Clients)
		if len(s.Clients) >= 2 {
			pairable++
		}
		for _, c := range s.Clients {
			snrs = append(snrs, c.SNRdB)
		}
	}
	cps, err := stats.Summarize(perSnap)
	if err != nil {
		return Stats{}, err
	}
	snr, err := stats.Summarize(snrs)
	if err != nil {
		return Stats{}, fmt.Errorf("trace: no client observations: %w", err)
	}
	busiest, best := "", -1
	for ap, n := range apCounts {
		if n > best || (n == best && ap < busiest) {
			busiest, best = ap, n
		}
	}
	return Stats{
		Snapshots:          len(snaps),
		APs:                len(apCounts),
		TotalClients:       len(snrs),
		ClientsPerSnapshot: cps,
		SNRdB:              snr,
		PairableFraction:   float64(pairable) / float64(len(snaps)),
		BusiestAP:          busiest,
	}, nil
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "snapshots:            %d across %d APs\n", s.Snapshots, s.APs)
	fmt.Fprintf(&b, "client observations:  %d (busiest AP: %s)\n", s.TotalClients, s.BusiestAP)
	fmt.Fprintf(&b, "clients/snapshot:     mean %.2f, median %.0f, p90 %.0f, max %.0f\n",
		s.ClientsPerSnapshot.Mean, s.ClientsPerSnapshot.Median, s.ClientsPerSnapshot.P90, s.ClientsPerSnapshot.Max)
	fmt.Fprintf(&b, "RSSI (dB):            mean %.1f ± %.1f, range [%.1f, %.1f]\n",
		s.SNRdB.Mean, s.SNRdB.Std, s.SNRdB.Min, s.SNRdB.Max)
	fmt.Fprintf(&b, "pairable snapshots:   %.1f%% (≥2 clients)\n", 100*s.PairableFraction)
	return b.String()
}
