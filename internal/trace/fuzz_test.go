package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSnapshots hammers the JSONL parser: it must never panic, and any
// accepted trace must round-trip through WriteSnapshots/ReadSnapshots.
func FuzzReadSnapshots(f *testing.F) {
	cfg := DefaultGenConfig(1)
	cfg.Days = 1
	if snaps, err := GenerateUpload(cfg); err == nil && len(snaps) > 3 {
		var buf bytes.Buffer
		if err := WriteSnapshots(&buf, snaps[:3]); err == nil {
			f.Add(buf.String())
		}
	}
	f.Add(`{"unix":0,"ap":"ap0","clients":[{"id":"a","snr_db":10}]}`)
	f.Add(`garbage`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		snaps, err := ReadSnapshots(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSnapshots(&buf, snaps); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		back, err := ReadSnapshots(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(snaps) {
			t.Fatalf("round trip changed count: %d vs %d", len(back), len(snaps))
		}
	})
}
