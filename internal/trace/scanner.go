package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxSnapshotLine bounds one JSON Lines record; a busy AP snapshot is a few
// kilobytes, so 16 MiB leaves three orders of magnitude of headroom while
// still refusing to buffer a corrupt never-ending line.
const maxSnapshotLine = 16 << 20

// SnapshotScanner streams a JSON Lines snapshot trace one record at a time
// without holding the trace in memory. Unlike ReadSnapshots it survives bad
// input: lines that fail to parse or validate are skipped and counted
// instead of aborting the stream, so one corrupt record cannot poison a
// multi-day trace. Callers should report Malformed() when the scan ends.
//
//	sc := trace.NewSnapshotScanner(f)
//	for sc.Scan() {
//		use(sc.Snapshot())
//	}
//	if err := sc.Err(); err != nil { ... }      // I/O failure
//	if n := sc.Malformed(); n > 0 { ... }       // skipped records
type SnapshotScanner struct {
	sc        *bufio.Scanner
	cur       Snapshot
	line      int
	malformed int
	err       error
}

// NewSnapshotScanner wraps r; the reader is consumed line by line.
func NewSnapshotScanner(r io.Reader) *SnapshotScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxSnapshotLine)
	return &SnapshotScanner{sc: sc}
}

// Scan advances to the next well-formed snapshot, skipping and counting
// malformed lines. It returns false at end of input or on an I/O error
// (distinguish with Err).
func (s *SnapshotScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		raw := bytes.TrimSpace(s.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			s.malformed++
			continue
		}
		if err := snap.validate(); err != nil {
			s.malformed++
			continue
		}
		s.cur = snap
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("trace: line %d: %w", s.line+1, err)
	}
	return false
}

// Snapshot returns the record produced by the last successful Scan.
func (s *SnapshotScanner) Snapshot() Snapshot { return s.cur }

// Malformed counts the lines skipped so far because they failed to parse or
// validate.
func (s *SnapshotScanner) Malformed() int { return s.malformed }

// Err returns the I/O error that stopped the scan, if any. Malformed lines
// are not errors; they are counted instead.
func (s *SnapshotScanner) Err() error { return s.err }
