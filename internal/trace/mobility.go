package trace

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/topo"
)

// Mobility traces model the roaming the durable session layer exists for:
// unlike GenerateUpload, where anonymous clients scatter fresh every
// window, a roaming trace follows identified stations as they walk the
// building, re-associating with whichever AP is nearest. Identities are
// stable station IDs (starting at 1, matching the schedd wire's "station 0
// is invalid" rule) so a driver can feed the steps straight into daemons
// and watch sessions roam and hand off.

// RoamObs is one station's report during one mobility step: the AP it is
// associated with (nearest by path loss geometry) and its shadowed SNR
// there.
type RoamObs struct {
	// Station is the stable station identity (>= 1).
	Station uint32 `json:"station"`
	// AP is the 1-based index of the associated access point.
	AP uint32 `json:"ap"`
	// SNRdB is the station's SNR at that AP.
	SNRdB float64 `json:"snr_db"`
}

// RoamStep is one time step of a mobility trace: every station's
// association and signal at that instant.
type RoamStep struct {
	// Unix is the step time in seconds since the epoch (simulated time).
	Unix int64 `json:"unix"`
	// Obs holds one observation per station, ordered by station ID.
	Obs []RoamObs `json:"obs"`
}

// RoamConfig parameterises the mobility generator.
type RoamConfig struct {
	// Seed drives all randomness; identical configs generate identical
	// traces.
	Seed int64
	// APs is the number of access points on the building grid.
	APs int
	// APSpacing is the grid spacing in meters.
	APSpacing float64
	// Clients is the number of roaming stations.
	Clients int
	// Steps is the number of time steps.
	Steps int
	// StepSeconds is the simulated seconds between steps.
	StepSeconds int
	// SpeedMPS is walking speed in meters per second (~1.4 for a person).
	SpeedMPS float64
	// PathLoss maps distance to SNR.
	PathLoss phy.PathLoss
	// ShadowSigmaDB is the log-normal shadowing deviation.
	ShadowSigmaDB float64
}

// Validate reports the first problem with the configuration.
func (c RoamConfig) Validate() error {
	switch {
	case c.APs <= 0:
		return errors.New("trace: APs must be positive")
	case c.APSpacing <= 0:
		return errors.New("trace: APSpacing must be positive")
	case c.Clients <= 0:
		return errors.New("trace: Clients must be positive")
	case c.Steps <= 0:
		return errors.New("trace: Steps must be positive")
	case c.StepSeconds <= 0:
		return errors.New("trace: StepSeconds must be positive")
	case c.SpeedMPS <= 0:
		return errors.New("trace: SpeedMPS must be positive")
	case c.PathLoss.RefSNR <= 0:
		return errors.New("trace: PathLoss is required")
	}
	return nil
}

// DefaultRoamConfig is a small building with enough walking time that
// stations cross cell boundaries: 4 APs, 6 stations, 10 simulated minutes.
func DefaultRoamConfig(seed int64) RoamConfig {
	pl, err := phy.NewPathLoss(3.5, 1, 55)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return RoamConfig{
		Seed:          seed,
		APs:           4,
		APSpacing:     30,
		Clients:       6,
		Steps:         60,
		StepSeconds:   10,
		SpeedMPS:      1.4,
		PathLoss:      pl,
		ShadowSigmaDB: 3,
	}
}

// walker is one station's random-waypoint state: current position and the
// waypoint it is walking toward.
type walker struct {
	pos, dst topo.Point
}

// GenerateRoaming produces a random-waypoint mobility trace: each station
// walks toward a uniformly-chosen waypoint at the configured speed,
// picking a new waypoint on arrival, associating each step with the AP of
// strongest mean signal (nearest, under symmetric path loss).
func GenerateRoaming(cfg RoamConfig) ([]RoamStep, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	aps := topo.Grid(cfg.APs, cfg.APSpacing, topo.Point{})
	maxX, maxY := 0.0, 0.0
	for _, p := range aps {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	margin := cfg.APSpacing / 2
	randPoint := func() topo.Point {
		return topo.Point{
			X: -margin + rng.Float64()*(maxX+2*margin),
			Y: -margin + rng.Float64()*(maxY+2*margin),
		}
	}

	walkers := make([]walker, cfg.Clients)
	for i := range walkers {
		walkers[i] = walker{pos: randPoint(), dst: randPoint()}
	}

	stepDist := cfg.SpeedMPS * float64(cfg.StepSeconds)
	out := make([]RoamStep, 0, cfg.Steps)
	for s := 0; s < cfg.Steps; s++ {
		step := RoamStep{Unix: int64(s * cfg.StepSeconds)}
		for i := range walkers {
			w := &walkers[i]
			// Advance toward the waypoint; on (or past) arrival, pick the
			// next one and stop there this step.
			dx, dy := w.dst.X-w.pos.X, w.dst.Y-w.pos.Y
			dist := math.Hypot(dx, dy)
			if dist <= stepDist {
				w.pos = w.dst
				w.dst = randPoint()
			} else {
				w.pos.X += dx / dist * stepDist
				w.pos.Y += dy / dist * stepDist
			}
			// Associate with the nearest AP (strongest mean signal under
			// symmetric path loss), then report shadowed SNR there.
			best, bestDist := 0, math.Inf(1)
			for a, p := range aps {
				if d := math.Hypot(w.pos.X-p.X, w.pos.Y-p.Y); d < bestDist {
					best, bestDist = a, d
				}
			}
			snr := phy.DB(cfg.PathLoss.SNRAt(bestDist)) + rng.NormFloat64()*cfg.ShadowSigmaDB
			step.Obs = append(step.Obs, RoamObs{
				Station: uint32(i + 1),
				AP:      uint32(best + 1),
				SNRdB:   snr,
			})
		}
		out = append(out, step)
	}
	return out, nil
}
