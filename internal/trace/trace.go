// Package trace supplies the trace substrate for the paper's §7 evaluation.
//
// The original study used two proprietary data sets collected at Duke
// University: (a) two weeks of 802.11g per-client RSSI observations at
// building APs, parsed into 15-minute topology snapshots, and (b) an SNR
// survey of 100 client locations against 5 co-located Soekris APs. Neither
// is public, so this package generates synthetic equivalents with the same
// shape: per-snapshot sets of (client, RSSI-at-AP) for upload scheduling,
// and per-location AP SNR vectors for the download study. Placement uses
// log-distance path loss with log-normal shadowing and a diurnal occupancy
// profile, which yields realistic RSSI spreads; see DESIGN.md
// ("Substitutions") for why this preserves the evaluated behaviour.
//
// Traces serialise as JSON Lines so they can be inspected, filtered and
// regenerated with ordinary tools.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/topo"
)

// ClientObs is one client observed at an AP with its received signal
// strength (as SNR in dB, noise-floor normalised).
type ClientObs struct {
	ID    string  `json:"id"`
	SNRdB float64 `json:"snr_db"`
}

// Snapshot is the paper's unit of scheduling evaluation: the set of wireless
// clients associated with one AP during one 15-minute window.
type Snapshot struct {
	// Unix is the window start in seconds since the epoch (simulated time).
	Unix int64 `json:"unix"`
	// AP names the access point.
	AP string `json:"ap"`
	// Clients are the associated clients and their RSSI at this AP.
	Clients []ClientObs `json:"clients"`
}

// SurveyPoint is one client location of the download survey: its SNR in dB
// from every AP that covers it.
type SurveyPoint struct {
	// Client names the surveyed location.
	Client string `json:"client"`
	// SNRdB maps AP name to the location's SNR from that AP.
	SNRdB map[string]float64 `json:"snr_db"`
}

// WriteSnapshots streams snapshots as JSON Lines.
func WriteSnapshots(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return fmt.Errorf("trace: encoding snapshot %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// validate reports the first structural problem with a decoded snapshot.
func (s *Snapshot) validate() error {
	if s.AP == "" {
		return errors.New("missing AP name")
	}
	for _, c := range s.Clients {
		if c.ID == "" {
			return errors.New("client with empty ID")
		}
		if math.IsNaN(c.SNRdB) || math.IsInf(c.SNRdB, 0) {
			return fmt.Errorf("client %q has invalid SNR", c.ID)
		}
	}
	return nil
}

// ReadSnapshots parses a JSON Lines snapshot stream, validating each record.
// It fails on the first malformed record; use SnapshotScanner to stream past
// bad lines instead.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	dec := json.NewDecoder(r)
	var out []Snapshot
	for {
		var s Snapshot
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: snapshot %d: %w", len(out), err)
		}
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("trace: snapshot %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}

// WriteSurvey streams survey points as JSON Lines.
func WriteSurvey(w io.Writer, pts []SurveyPoint) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range pts {
		if err := enc.Encode(&pts[i]); err != nil {
			return fmt.Errorf("trace: encoding survey point %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSurvey parses a JSON Lines survey stream.
func ReadSurvey(r io.Reader) ([]SurveyPoint, error) {
	dec := json.NewDecoder(r)
	var out []SurveyPoint
	for {
		var p SurveyPoint
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: survey point %d: %w", len(out), err)
		}
		if p.Client == "" {
			return nil, fmt.Errorf("trace: survey point %d: missing client name", len(out))
		}
		if len(p.SNRdB) == 0 {
			return nil, fmt.Errorf("trace: survey point %d: no AP observations", len(out))
		}
		out = append(out, p)
	}
}

// GenConfig parameterises the synthetic trace generator.
type GenConfig struct {
	// Seed drives all randomness; identical configs generate identical traces.
	Seed int64
	// APs is the number of access points, laid out on a building-like grid.
	APs int
	// APSpacing is the grid spacing in meters (typical office: 25–40 m).
	APSpacing float64
	// Days of simulated collection (the paper: 14).
	Days int
	// SnapshotMinutes is the window length (the paper: 15).
	SnapshotMinutes int
	// PeakClients is the mean client count per AP during busy weekday hours.
	PeakClients float64
	// PathLoss maps distance to SNR.
	PathLoss phy.PathLoss
	// ShadowSigmaDB is the log-normal shadowing deviation (indoor: ~6 dB).
	ShadowSigmaDB float64
}

// Validate reports the first problem with the configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.APs <= 0:
		return errors.New("trace: APs must be positive")
	case c.APSpacing <= 0:
		return errors.New("trace: APSpacing must be positive")
	case c.Days <= 0:
		return errors.New("trace: Days must be positive")
	case c.SnapshotMinutes <= 0:
		return errors.New("trace: SnapshotMinutes must be positive")
	case c.PeakClients <= 0:
		return errors.New("trace: PeakClients must be positive")
	case c.PathLoss.RefSNR <= 0:
		return errors.New("trace: PathLoss is required")
	}
	return nil
}

// DefaultGenConfig mirrors the paper's collection: 2 weeks of 15-minute
// snapshots in a busy multi-AP building.
func DefaultGenConfig(seed int64) GenConfig {
	pl, err := phy.NewPathLoss(3.5, 1, 55) // indoor α=3.5, 55 dB at 1 m
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return GenConfig{
		Seed:            seed,
		APs:             5,
		APSpacing:       30,
		Days:            14,
		SnapshotMinutes: 15,
		PeakClients:     8,
		PathLoss:        pl,
		ShadowSigmaDB:   6,
	}
}

// occupancy returns the mean clients-per-AP multiplier for a given simulated
// hour-of-week, modelling a busy university building: full during weekday
// working hours, reduced evenings, near-empty nights and weekends.
func occupancy(hourOfWeek int) float64 {
	day := hourOfWeek / 24 // 0 = Monday
	hour := hourOfWeek % 24
	weekend := day >= 5
	switch {
	case weekend && hour >= 10 && hour < 18:
		return 0.25
	case weekend:
		return 0.05
	case hour >= 9 && hour < 18:
		return 1.0
	case hour >= 7 && hour < 9, hour >= 18 && hour < 22:
		return 0.4
	default:
		return 0.05
	}
}

// poisson draws a Poisson variate by inversion (mean < ~30 here, so the
// naive product method is fine and allocation-free).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateUpload produces the upload-evaluation trace: one snapshot per AP
// per window across the configured collection period. Clients scatter
// uniformly over the building footprint each window, associate with their
// nearest AP, and report shadowed RSSI.
func GenerateUpload(cfg GenConfig) ([]Snapshot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	aps := topo.Grid(cfg.APs, cfg.APSpacing, topo.Point{})
	// Building footprint: the AP grid's bounding box plus one spacing of
	// margin on each side.
	maxX, maxY := 0.0, 0.0
	for _, p := range aps {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	margin := cfg.APSpacing / 2

	windows := cfg.Days * 24 * 60 / cfg.SnapshotMinutes
	var out []Snapshot
	clientSeq := 0
	for w := 0; w < windows; w++ {
		minutes := w * cfg.SnapshotMinutes
		hourOfWeek := (minutes / 60) % (7 * 24)
		mean := cfg.PeakClients * occupancy(hourOfWeek)

		perAP := make([][]ClientObs, len(aps))
		total := poisson(rng, mean*float64(len(aps)))
		for c := 0; c < total; c++ {
			pos := topo.UniformInRect(rng, -margin, -margin, maxX+margin, maxY+margin)
			apIdx, dist := topo.Nearest(pos, aps)
			snr := cfg.PathLoss.Shadowed(dist, cfg.ShadowSigmaDB, rng)
			clientSeq++
			perAP[apIdx] = append(perAP[apIdx], ClientObs{
				ID:    fmt.Sprintf("c%06d", clientSeq),
				SNRdB: phy.DB(snr),
			})
		}
		for i := range aps {
			if len(perAP[i]) == 0 {
				continue // the paper's snapshots only list active client sets
			}
			out = append(out, Snapshot{
				Unix:    int64(minutes) * 60,
				AP:      fmt.Sprintf("ap%d", i),
				Clients: perAP[i],
			})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("trace: generated an empty trace; raise PeakClients or Days")
	}
	return out, nil
}

// GenerateSurvey produces the download-evaluation survey: nLocations client
// positions scattered across the AP footprint, each recording its shadowed
// SNR from every AP (the paper surveyed 100 locations against 5 APs).
func GenerateSurvey(cfg GenConfig, nLocations int) ([]SurveyPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nLocations <= 0 {
		return nil, errors.New("trace: nLocations must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	aps := topo.Grid(cfg.APs, cfg.APSpacing, topo.Point{})
	maxX, maxY := 0.0, 0.0
	for _, p := range aps {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	margin := cfg.APSpacing / 2

	out := make([]SurveyPoint, 0, nLocations)
	for i := 0; i < nLocations; i++ {
		pos := topo.UniformInRect(rng, -margin, -margin, maxX+margin, maxY+margin)
		snrs := make(map[string]float64, len(aps))
		for a, ap := range aps {
			snr := cfg.PathLoss.Shadowed(pos.Dist(ap), cfg.ShadowSigmaDB, rng)
			snrs[fmt.Sprintf("ap%d", a)] = phy.DB(snr)
		}
		out = append(out, SurveyPoint{Client: fmt.Sprintf("loc%03d", i), SNRdB: snrs})
	}
	return out, nil
}
