package trace

import (
	"errors"
	"strings"
	"testing"
)

func collect(t *testing.T, sc *SnapshotScanner) []Snapshot {
	t.Helper()
	var out []Snapshot
	for sc.Scan() {
		out = append(out, sc.Snapshot())
	}
	return out
}

func TestSnapshotScannerCleanStream(t *testing.T) {
	in := `{"unix":0,"ap":"ap0","clients":[{"id":"a","snr_db":20}]}
{"unix":900,"ap":"ap1","clients":[{"id":"b","snr_db":15}]}
`
	sc := NewSnapshotScanner(strings.NewReader(in))
	got := collect(t, sc)
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 2 || got[0].AP != "ap0" || got[1].AP != "ap1" {
		t.Fatalf("scanned %+v", got)
	}
	if sc.Malformed() != 0 {
		t.Fatalf("clean stream counted %d malformed lines", sc.Malformed())
	}
}

// TestSnapshotScannerSkipsMalformed: broken JSON, invalid records and blank
// lines are skipped and counted; the good records still come through in
// order.
func TestSnapshotScannerSkipsMalformed(t *testing.T) {
	in := strings.Join([]string{
		`{"unix":0,"ap":"ap0","clients":[{"id":"a","snr_db":20}]}`,
		`{"unix":1,"ap":"ap1","clien`,                            // truncated JSON
		`not json at all`,                                        // garbage
		`{"unix":2,"clients":[]}`,                                // validation: missing AP
		`{"unix":3,"ap":"ap2","clients":[{"id":"","snr_db":9}]}`, // empty client ID
		``, // blank: ignored, not malformed
		`{"unix":4,"ap":"ap3","clients":[{"id":"c","snr_db":12}]}`,
	}, "\n") + "\n"
	sc := NewSnapshotScanner(strings.NewReader(in))
	got := collect(t, sc)
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 2 || got[0].AP != "ap0" || got[1].AP != "ap3" {
		t.Fatalf("scanned %+v, want ap0 and ap3", got)
	}
	if sc.Malformed() != 4 {
		t.Fatalf("Malformed() = %d, want 4", sc.Malformed())
	}
}

// TestSnapshotScannerAgreesWithReadSnapshots: on a well-formed stream the
// two readers are interchangeable.
func TestSnapshotScannerAgreesWithReadSnapshots(t *testing.T) {
	snaps, err := GenerateUpload(DefaultGenConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	strict, err := ReadSnapshots(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSnapshotScanner(strings.NewReader(buf.String()))
	streamed := collect(t, sc)
	if sc.Err() != nil || sc.Malformed() != 0 {
		t.Fatalf("err %v, malformed %d", sc.Err(), sc.Malformed())
	}
	if len(streamed) != len(strict) {
		t.Fatalf("streamed %d snapshots, strict reader %d", len(streamed), len(strict))
	}
	for i := range strict {
		if streamed[i].AP != strict[i].AP || streamed[i].Unix != strict[i].Unix ||
			len(streamed[i].Clients) != len(strict[i].Clients) {
			t.Fatalf("snapshot %d diverges: %+v vs %+v", i, streamed[i], strict[i])
		}
	}
}

type failingReader struct{ err error }

func (r failingReader) Read([]byte) (int, error) { return 0, r.err }

func TestSnapshotScannerReportsIOError(t *testing.T) {
	boom := errors.New("disk on fire")
	sc := NewSnapshotScanner(failingReader{err: boom})
	if sc.Scan() {
		t.Fatal("Scan succeeded on a failing reader")
	}
	if !errors.Is(sc.Err(), boom) {
		t.Fatalf("Err() = %v, want wrapped %v", sc.Err(), boom)
	}
	if sc.Scan() {
		t.Fatal("Scan after error must keep returning false")
	}
}
