package adapt

import (
	"errors"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/rates"
)

// TrialConfig drives a rate-adaptation trial over a fading link.
type TrialConfig struct {
	// Table is the discrete rate set in force.
	Table rates.Table
	// Fading describes the channel process.
	Fading phy.Fading
	// Frames is the number of data frames to send.
	Frames int
	// FrameBits is the frame size.
	FrameBits float64
	// EstErrDB is the standard deviation of the SNR-estimate noise shown to
	// SNR-aware adapters (0 = perfect estimates).
	EstErrDB float64
	// SoftPER switches frame outcomes from the hard threshold criterion to
	// Bernoulli draws against the table's logistic PER curve — the regime
	// real adapters (ARF, Minstrel) were designed for, where marginal rates
	// fail occasionally instead of deterministically.
	SoftPER bool
	// Seed derives the trial's RNG.
	Seed int64
}

// TrialResult summarises one adapter's run.
type TrialResult struct {
	// Name is the adapter's name.
	Name string
	// Throughput is delivered bits per second of airtime spent.
	Throughput float64
	// SuccessRate is the fraction of frames delivered.
	SuccessRate float64
	// MeanSlack is the mean, over delivered frames, of the ratio between
	// the rate the channel would have supported (per the table) and the
	// rate actually used — the headroom SIC could harvest. 1 = no slack.
	MeanSlack float64
	// FracUnderRate is the fraction of delivered frames sent below the
	// channel-supported table rate.
	FracUnderRate float64
}

// Run executes one adapter over the configured channel. The same Seed
// produces the same channel realisation for every adapter, so results are
// directly comparable across adapters.
func Run(a Adapter, cfg TrialConfig) (TrialResult, error) {
	if cfg.Frames <= 0 {
		return TrialResult{}, errors.New("adapt: Frames must be positive")
	}
	if cfg.FrameBits <= 0 {
		return TrialResult{}, errors.New("adapt: FrameBits must be positive")
	}
	if cfg.Table.Len() == 0 {
		return TrialResult{}, errors.New("adapt: empty rate table")
	}
	if cfg.EstErrDB < 0 {
		return TrialResult{}, errors.New("adapt: negative estimate error")
	}
	chRng := rand.New(rand.NewSource(cfg.Seed))
	estRng := rand.New(rand.NewSource(cfg.Seed + 1))
	lossRng := rand.New(rand.NewSource(cfg.Seed + 2))
	fading := cfg.Fading // copy; Run must not mutate the caller's process
	fading.Reset()
	a.Reset()

	var (
		airtime    float64
		delivered  float64
		successes  int
		slackSum   float64
		underCount int
	)
	for i := 0; i < cfg.Frames; i++ {
		snr := fading.Next(chRng)
		est := snr
		if cfg.EstErrDB > 0 {
			est = phy.FromDB(phy.DB(snr) + estRng.NormFloat64()*cfg.EstErrDB)
		}
		rate := a.Pick(est)
		if rate <= 0 {
			// The adapter declined to transmit (e.g. SNR below the table);
			// charge one lowest-rate airtime as a deferral penalty.
			airtime += cfg.FrameBits / cfg.Table.Steps()[0].BitsPerSec
			a.Observe(false)
			continue
		}
		supported := cfg.Table.Rate(snr)
		var success bool
		if cfg.SoftPER {
			success = lossRng.Float64() >= cfg.Table.PER(rate, snr)
		} else {
			success = rate <= supported && supported > 0
		}
		airtime += cfg.FrameBits / rate
		if success {
			successes++
			delivered += cfg.FrameBits
			slackSum += supported / rate
			if rate < supported {
				underCount++
			}
		}
		a.Observe(success)
	}

	res := TrialResult{
		Name:        a.Name(),
		SuccessRate: float64(successes) / float64(cfg.Frames),
	}
	if airtime > 0 {
		res.Throughput = delivered / airtime
	}
	if successes > 0 {
		res.MeanSlack = slackSum / float64(successes)
		res.FracUnderRate = float64(underCount) / float64(successes)
	}
	return res, nil
}

// Roster returns the standard comparison set over a table, ordered from
// crudest to best: fixed lowest rate, ARF, AARF, Minstrel, a conservative
// SNR adapter, and the oracle.
func Roster(table rates.Table, rng *rand.Rand) []Adapter {
	lowest := table.Steps()[0].BitsPerSec
	return []Adapter{
		&Fixed{RateBps: lowest},
		NewARF(table),
		NewAARF(table),
		NewMinstrel(table, rng),
		&SNRThreshold{Table: table, MarginDB: 3},
		&SNRThreshold{Table: table},
		&Oracle{Table: table},
	}
}
