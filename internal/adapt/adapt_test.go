package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/phy"
	"repro/internal/rates"
)

func fadingOrDie(t *testing.T, mean, sigma, rho float64) phy.Fading {
	t.Helper()
	f, err := phy.NewFading(mean, sigma, rho)
	if err != nil {
		t.Fatal(err)
	}
	return *f
}

func cfg(t *testing.T) TrialConfig {
	return TrialConfig{
		Table:     rates.Dot11g,
		Fading:    fadingOrDie(t, 18, 5, 0.9),
		Frames:    4000,
		FrameBits: 12000,
		Seed:      1,
	}
}

func TestOracleAlwaysSucceeds(t *testing.T) {
	res, err := Run(&Oracle{Table: rates.Dot11g}, cfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle only fails when even the lowest rate is unsupported.
	if res.SuccessRate < 0.9 {
		t.Errorf("oracle success rate %v too low for an 18±5 dB channel", res.SuccessRate)
	}
	// Oracle slack: exactly the table rate, never below.
	if res.FracUnderRate != 0 {
		t.Errorf("oracle sent %v of frames below the supported rate", res.FracUnderRate)
	}
	if res.MeanSlack != 1 {
		t.Errorf("oracle mean slack %v, want exactly 1", res.MeanSlack)
	}
}

func TestFixedLowestIsReliableButSlow(t *testing.T) {
	c := cfg(t)
	fixed, err := Run(&Fixed{RateBps: 6e6}, c)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(&Oracle{Table: rates.Dot11g}, c)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Throughput >= oracle.Throughput {
		t.Errorf("fixed 6M (%v) should trail the oracle (%v)", fixed.Throughput, oracle.Throughput)
	}
	if fixed.MeanSlack <= oracle.MeanSlack {
		t.Errorf("fixed 6M slack (%v) should exceed oracle slack (%v)", fixed.MeanSlack, oracle.MeanSlack)
	}
}

func TestARFClimbsOnCleanChannel(t *testing.T) {
	a := NewARF(rates.Dot11g)
	// 100 successes must carry it well above the base rate.
	var rate float64
	for i := 0; i < 100; i++ {
		rate = a.Pick(0)
		a.Observe(true)
	}
	if rate < 48e6 {
		t.Errorf("ARF only reached %v bps after 100 successes", rate)
	}
	// Two failures step it down.
	before := a.Pick(0)
	a.Observe(false)
	a.Observe(false)
	after := a.Pick(0)
	if after >= before {
		t.Errorf("ARF did not step down after 2 failures: %v -> %v", before, after)
	}
}

func TestARFRecoversAfterReset(t *testing.T) {
	a := NewARF(rates.Dot11g)
	for i := 0; i < 50; i++ {
		a.Pick(0)
		a.Observe(true)
	}
	a.Reset()
	if got := a.Pick(0); got != 6e6 {
		t.Errorf("after Reset ARF picked %v, want the lowest rate", got)
	}
}

func TestAARFBacksOffProbes(t *testing.T) {
	a := NewAARF(rates.Dot11g)
	// Climb to a probe, fail it, and check the bar doubles.
	for i := 0; i < 10; i++ {
		a.Pick(0)
		a.Observe(true)
	}
	if a.idx != 1 {
		t.Fatalf("AARF idx %d after 10 successes, want 1", a.idx)
	}
	a.Pick(0)
	a.Observe(false) // failed probe
	if a.idx != 0 {
		t.Errorf("failed probe should step back down, idx=%d", a.idx)
	}
	if a.upAfter != 20 {
		t.Errorf("failed probe should double upAfter, got %d", a.upAfter)
	}
}

func TestSNRThresholdMatchesOracleWithoutMargin(t *testing.T) {
	c := cfg(t)
	c.EstErrDB = 0
	exact, err := Run(&SNRThreshold{Table: rates.Dot11g}, c)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(&Oracle{Table: rates.Dot11g}, c)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Throughput != oracle.Throughput {
		t.Errorf("margin-0 SNR adapter (%v) should equal the oracle (%v)", exact.Throughput, oracle.Throughput)
	}
}

func TestSNRThresholdMarginAddsSlack(t *testing.T) {
	c := cfg(t)
	margin, err := Run(&SNRThreshold{Table: rates.Dot11g, MarginDB: 3}, c)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(&SNRThreshold{Table: rates.Dot11g}, c)
	if err != nil {
		t.Fatal(err)
	}
	if margin.MeanSlack <= exact.MeanSlack {
		t.Errorf("3 dB margin should leave more slack: %v vs %v", margin.MeanSlack, exact.MeanSlack)
	}
}

func TestMinstrelLearns(t *testing.T) {
	c := cfg(t)
	c.Frames = 8000
	m := NewMinstrel(rates.Dot11g, rand.New(rand.NewSource(2)))
	res, err := Run(m, c)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(&Fixed{RateBps: 6e6}, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= fixed.Throughput {
		t.Errorf("minstrel (%v) should beat fixed-6M (%v)", res.Throughput, fixed.Throughput)
	}
}

func TestAdapterQualityOrdering(t *testing.T) {
	// The paper's argument in one assertion: better adapters leave less
	// slack. Oracle ≤ SNR-exact ≤ SNR-3dB-margin ≤ fixed-lowest.
	c := cfg(t)
	slack := func(a Adapter) float64 {
		res, err := Run(a, c)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanSlack
	}
	oracle := slack(&Oracle{Table: rates.Dot11g})
	exact := slack(&SNRThreshold{Table: rates.Dot11g})
	margin := slack(&SNRThreshold{Table: rates.Dot11g, MarginDB: 3})
	fixed := slack(&Fixed{RateBps: 6e6})
	if !(oracle <= exact && exact <= margin && margin <= fixed) {
		t.Errorf("slack ordering violated: oracle=%v exact=%v margin=%v fixed=%v",
			oracle, exact, margin, fixed)
	}
}

func TestRunValidation(t *testing.T) {
	c := cfg(t)
	bad := c
	bad.Frames = 0
	if _, err := Run(&Oracle{Table: rates.Dot11g}, bad); err == nil {
		t.Error("zero frames accepted")
	}
	bad = c
	bad.FrameBits = 0
	if _, err := Run(&Oracle{Table: rates.Dot11g}, bad); err == nil {
		t.Error("zero frame bits accepted")
	}
	bad = c
	bad.Table = rates.Table{}
	if _, err := Run(&Oracle{Table: rates.Dot11g}, bad); err == nil {
		t.Error("empty table accepted")
	}
	bad = c
	bad.EstErrDB = -1
	if _, err := Run(&Oracle{Table: rates.Dot11g}, bad); err == nil {
		t.Error("negative estimate error accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	c := cfg(t)
	a1, err := Run(NewARF(rates.Dot11g), c)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(NewARF(rates.Dot11g), c)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("identical runs differ: %+v vs %+v", a1, a2)
	}
}

func TestRunDoesNotMutateFading(t *testing.T) {
	c := cfg(t)
	before := c.Fading
	if _, err := Run(&Oracle{Table: rates.Dot11g}, c); err != nil {
		t.Fatal(err)
	}
	if c.Fading != before {
		t.Error("Run mutated the caller's fading process")
	}
}

func TestRoster(t *testing.T) {
	roster := Roster(rates.Dot11g, rand.New(rand.NewSource(1)))
	if len(roster) != 7 {
		t.Fatalf("roster has %d adapters, want 7", len(roster))
	}
	names := map[string]bool{}
	for _, a := range roster {
		if names[a.Name()] {
			t.Errorf("duplicate adapter name %q", a.Name())
		}
		names[a.Name()] = true
	}
	if !names["oracle"] || !names["arf"] || !names["minstrel"] {
		t.Errorf("roster missing expected adapters: %v", names)
	}
}

func TestSoftPERRegime(t *testing.T) {
	c := cfg(t)
	c.SoftPER = true
	c.Frames = 8000

	oracle, err := Run(&Oracle{Table: rates.Dot11g}, c)
	if err != nil {
		t.Fatal(err)
	}
	// Under soft loss even the oracle drops some marginal frames (the hard
	// threshold sits at ≈90% delivery), but it must stay mostly successful.
	if oracle.SuccessRate < 0.8 || oracle.SuccessRate >= 1 {
		t.Errorf("soft-PER oracle success rate %v, want high but below 1", oracle.SuccessRate)
	}
	arf, err := Run(NewARF(rates.Dot11g), c)
	if err != nil {
		t.Fatal(err)
	}
	if arf.Throughput > oracle.Throughput {
		t.Errorf("ARF (%v) beat the oracle (%v) under soft loss", arf.Throughput, oracle.Throughput)
	}
	// A 3 dB margin leaves more SIC-harvestable slack under soft loss too.
	// (It does NOT necessarily raise the raw success rate: the margin makes
	// it decline marginal low-SNR frames entirely, which count as failures.)
	margin, err := Run(&SNRThreshold{Table: rates.Dot11g, MarginDB: 3}, c)
	if err != nil {
		t.Fatal(err)
	}
	if margin.MeanSlack <= oracle.MeanSlack {
		t.Errorf("3 dB margin slack %v should exceed the oracle's %v",
			margin.MeanSlack, oracle.MeanSlack)
	}
}

func TestSoftPERDeterministic(t *testing.T) {
	c := cfg(t)
	c.SoftPER = true
	a, err := Run(NewARF(rates.Dot11g), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(NewARF(rates.Dot11g), c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical soft runs differ: %+v vs %+v", a, b)
	}
}

func TestStatelessAdapterMethods(t *testing.T) {
	// The no-op Observe/Reset methods must be callable without effect on
	// the next Pick.
	o := &Oracle{Table: rates.Dot11g}
	before := o.Pick(phy.FromDB(20))
	o.Observe(true)
	o.Observe(false)
	o.Reset()
	if o.Pick(phy.FromDB(20)) != before {
		t.Error("oracle changed state")
	}
	fx := &Fixed{RateBps: 6e6}
	fx.Observe(false)
	fx.Reset()
	if fx.Pick(0) != 6e6 {
		t.Error("fixed changed state")
	}
	if fx.Name() != "fixed-6M" {
		t.Errorf("fixed name %q", fx.Name())
	}
	st := &SNRThreshold{Table: rates.Dot11g, MarginDB: 3}
	st.Observe(true)
	st.Reset()
	if st.Name() != "snr-margin-3dB" {
		t.Errorf("snr name %q", st.Name())
	}
	zero := &SNRThreshold{Table: rates.Dot11g}
	if zero.Name() != "snr-margin-0dB" {
		t.Errorf("zero-margin name %q", zero.Name())
	}
}

func TestAARFReset(t *testing.T) {
	a := NewAARF(rates.Dot11g)
	for i := 0; i < 40; i++ {
		a.Pick(0)
		a.Observe(true)
	}
	a.Reset()
	if a.idx != 0 || a.upAfter != 10 || a.probedUp {
		t.Errorf("Reset left state: idx=%d upAfter=%d probed=%v", a.idx, a.upAfter, a.probedUp)
	}
}

func TestARFIndexClamping(t *testing.T) {
	a := NewARF(rates.Dot11g)
	// Drive far beyond the top and bottom; Pick must clamp.
	for i := 0; i < 200; i++ {
		a.Pick(0)
		a.Observe(true)
	}
	if got := a.Pick(0); got != 54e6 {
		t.Errorf("ARF above top picked %v", got)
	}
	for i := 0; i < 200; i++ {
		a.Pick(0)
		a.Observe(false)
	}
	if got := a.Pick(0); got != 6e6 {
		t.Errorf("ARF below bottom picked %v", got)
	}
	// Negative index guard.
	a.idx = -3
	if got := a.Pick(0); got != 6e6 {
		t.Errorf("negative idx picked %v", got)
	}
}

func TestMinstrelObserveOutOfRange(t *testing.T) {
	m := NewMinstrel(rates.Dot11g, rand.New(rand.NewSource(5)))
	m.Observe(true) // before any Pick: lastIdx == -1, must not panic
	m.Pick(0)
	m.Observe(true)
	m.Reset()
	if m.frames != 0 || m.lastIdx != -1 {
		t.Error("Minstrel Reset incomplete")
	}
}
