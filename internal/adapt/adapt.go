// Package adapt implements the bitrate-adaptation algorithms whose quality
// the paper argues bounds SIC's opportunity (§1: "this slack is fast
// disappearing with more fine-grain bitrates ... and the recent advances in
// bitrate adaptation"). The package supplies an Oracle (perfect per-frame
// rate choice), the classic frame-feedback schemes ARF and AARF, an
// SNR-threshold adapter with estimation error, and a Minstrel-flavoured
// sampling adapter — enough to sweep from "terrible" to "ideal" adaptation
// and measure how much slack each leaves for SIC to harvest
// (experiments.ExtAdaptation).
package adapt

import (
	"fmt"
	"math/rand"

	"repro/internal/phy"
	"repro/internal/rates"
)

// Adapter chooses transmit bitrates frame by frame.
//
// The protocol per frame is: call Pick (optionally letting the adapter see
// a noisy SNR estimate), transmit at the returned rate, then call Observe
// with the outcome. Implementations must be deterministic given their
// inputs and the *rand.Rand handed to New.
type Adapter interface {
	// Name identifies the algorithm.
	Name() string
	// Pick returns the bitrate (bps) for the next frame. estSNR is the
	// transmitter's (possibly noisy) linear SNR estimate; feedback-only
	// schemes ignore it.
	Pick(estSNR float64) float64
	// Observe reports whether the frame at the last picked rate succeeded.
	Observe(success bool)
	// Reset returns the adapter to its initial state.
	Reset()
}

// Oracle always picks the best table rate the true channel supports. It is
// the paper's "each packet is transmitted at the best feasible rate"
// assumption made executable.
type Oracle struct {
	Table rates.Table
}

// Name implements Adapter.
func (o *Oracle) Name() string { return "oracle" }

// Pick implements Adapter; for the oracle, estSNR is the true SNR.
func (o *Oracle) Pick(estSNR float64) float64 { return o.Table.Rate(estSNR) }

// Observe implements Adapter (no state).
func (o *Oracle) Observe(bool) {}

// Reset implements Adapter (no state).
func (o *Oracle) Reset() {}

// Fixed always transmits at one rate — the degenerate adapter that leaves
// maximal slack.
type Fixed struct {
	RateBps float64
}

// Name implements Adapter.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-%.0fM", f.RateBps/1e6) }

// Pick implements Adapter.
func (f *Fixed) Pick(float64) float64 { return f.RateBps }

// Observe implements Adapter (no state).
func (f *Fixed) Observe(bool) {}

// Reset implements Adapter (no state).
func (f *Fixed) Reset() {}

// ARF is the classic Automatic Rate Fallback: step the rate index up after
// a run of successes, step down after consecutive failures.
type ARF struct {
	Table rates.Table
	// UpAfter is the success streak needed to try the next rate (classic: 10).
	UpAfter int
	// DownAfter is the failure streak that forces a step down (classic: 2).
	DownAfter int

	idx       int
	successes int
	failures  int
}

// NewARF builds an ARF adapter with the classic 10/2 thresholds, starting
// at the lowest rate.
func NewARF(table rates.Table) *ARF {
	return &ARF{Table: table, UpAfter: 10, DownAfter: 2}
}

// Name implements Adapter.
func (a *ARF) Name() string { return "arf" }

// Pick implements Adapter.
func (a *ARF) Pick(float64) float64 {
	steps := a.Table.Steps()
	if len(steps) == 0 {
		return 0
	}
	if a.idx < 0 {
		a.idx = 0
	}
	if a.idx >= len(steps) {
		a.idx = len(steps) - 1
	}
	return steps[a.idx].BitsPerSec
}

// Observe implements Adapter.
func (a *ARF) Observe(success bool) {
	if success {
		a.successes++
		a.failures = 0
		if a.successes >= a.UpAfter {
			a.successes = 0
			if a.idx < a.Table.Len()-1 {
				a.idx++
			}
		}
		return
	}
	a.failures++
	a.successes = 0
	if a.failures >= a.DownAfter {
		a.failures = 0
		if a.idx > 0 {
			a.idx--
		}
	}
}

// Reset implements Adapter.
func (a *ARF) Reset() { a.idx, a.successes, a.failures = 0, 0, 0 }

// AARF is Adaptive ARF: like ARF, but each failed up-probe doubles the
// success streak required before the next probe, damping oscillation around
// a rate boundary.
type AARF struct {
	Table rates.Table

	idx        int
	successes  int
	failures   int
	upAfter    int
	probedUp   bool
	maxUpAfter int
}

// NewAARF builds an AARF adapter starting at the lowest rate.
func NewAARF(table rates.Table) *AARF {
	return &AARF{Table: table, upAfter: 10, maxUpAfter: 160}
}

// Name implements Adapter.
func (a *AARF) Name() string { return "aarf" }

// Pick implements Adapter.
func (a *AARF) Pick(float64) float64 {
	steps := a.Table.Steps()
	if len(steps) == 0 {
		return 0
	}
	if a.idx >= len(steps) {
		a.idx = len(steps) - 1
	}
	return steps[a.idx].BitsPerSec
}

// Observe implements Adapter.
func (a *AARF) Observe(success bool) {
	if success {
		a.successes++
		a.failures = 0
		if a.successes >= a.upAfter {
			a.successes = 0
			if a.idx < a.Table.Len()-1 {
				a.idx++
				a.probedUp = true
			}
		}
		return
	}
	a.failures++
	a.successes = 0
	if a.probedUp {
		// The probe failed immediately: back off and double the bar.
		a.probedUp = false
		if a.idx > 0 {
			a.idx--
		}
		a.upAfter *= 2
		if a.upAfter > a.maxUpAfter {
			a.upAfter = a.maxUpAfter
		}
		a.failures = 0
		return
	}
	if a.failures >= 2 {
		a.failures = 0
		a.upAfter = 10
		if a.idx > 0 {
			a.idx--
		}
	}
}

// Reset implements Adapter.
func (a *AARF) Reset() {
	a.idx, a.successes, a.failures = 0, 0, 0
	a.upAfter, a.probedUp = 10, false
}

// SNRThreshold picks by a noisy SNR estimate with a safety margin: the
// adapter sees estSNR, subtracts MarginDB, and selects the table rate.
// With MarginDB = 0 and exact estimates it coincides with the Oracle.
type SNRThreshold struct {
	Table rates.Table
	// MarginDB is the back-off applied to the estimate before lookup.
	MarginDB float64
}

// Name implements Adapter.
func (s *SNRThreshold) Name() string { return fmt.Sprintf("snr-margin%+.0fdB", -s.MarginDB) }

// Pick implements Adapter.
func (s *SNRThreshold) Pick(estSNR float64) float64 {
	return s.Table.Rate(phy.FromDB(phy.DB(estSNR) - s.MarginDB))
}

// Observe implements Adapter (stateless).
func (s *SNRThreshold) Observe(bool) {}

// Reset implements Adapter (stateless).
func (s *SNRThreshold) Reset() {}

// Minstrel is a sampling-based adapter in the spirit of the Linux Minstrel
// algorithm: it maintains an EWMA success probability per rate, normally
// transmits at the rate maximising expected throughput p·r, and spends a
// fraction of frames probing random other rates.
type Minstrel struct {
	Table rates.Table
	// SampleEvery probes a random rate once per this many frames (default 10).
	SampleEvery int
	// Alpha is the EWMA weight for new observations (default 0.25).
	Alpha float64

	rng      *rand.Rand
	prob     []float64
	frames   int
	lastIdx  int
	sampling bool
}

// NewMinstrel builds a Minstrel adapter; rng drives rate sampling.
func NewMinstrel(table rates.Table, rng *rand.Rand) *Minstrel {
	m := &Minstrel{Table: table, SampleEvery: 10, Alpha: 0.25, rng: rng}
	m.Reset()
	return m
}

// Name implements Adapter.
func (m *Minstrel) Name() string { return "minstrel" }

// Pick implements Adapter.
func (m *Minstrel) Pick(float64) float64 {
	steps := m.Table.Steps()
	if len(steps) == 0 {
		return 0
	}
	m.frames++
	if m.SampleEvery > 0 && m.frames%m.SampleEvery == 0 {
		m.lastIdx = m.rng.Intn(len(steps))
		m.sampling = true
		return steps[m.lastIdx].BitsPerSec
	}
	m.sampling = false
	best, bestTp := 0, -1.0
	for i, s := range steps {
		if tp := m.prob[i] * s.BitsPerSec; tp > bestTp {
			best, bestTp = i, tp
		}
	}
	m.lastIdx = best
	return steps[best].BitsPerSec
}

// Observe implements Adapter.
func (m *Minstrel) Observe(success bool) {
	if m.lastIdx < 0 || m.lastIdx >= len(m.prob) {
		return
	}
	v := 0.0
	if success {
		v = 1
	}
	m.prob[m.lastIdx] = (1-m.Alpha)*m.prob[m.lastIdx] + m.Alpha*v
}

// Reset implements Adapter.
func (m *Minstrel) Reset() {
	m.prob = make([]float64, m.Table.Len())
	// Optimistic initialisation so every rate gets tried early.
	for i := range m.prob {
		m.prob[i] = 0.5
	}
	m.frames = 0
	m.lastIdx = -1
	m.sampling = false
}
