package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
	"testing"
)

// parseBodies parses a single-file package and returns each function's
// body by name. The CFG builder is purely syntactic, so no type checking
// is needed here.
func parseBodies(t *testing.T, src string) map[string]*ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bodies := make(map[string]*ast.BlockStmt)
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			bodies[fn.Name.Name] = fn.Body
		}
	}
	return bodies
}

// checkEdges asserts pred/succ symmetry, the basic structural invariant
// every later traversal relies on.
func checkEdges(t *testing.T, g *cfg) {
	t.Helper()
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			found := false
			for _, p := range s.preds {
				if p == blk {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d lists succ %d, which does not list it back", blk.idx, s.idx)
			}
		}
	}
}

const cfgShapesSrc = `package p

func branch(flip bool) {
	if flip {
		a()
	} else {
		b()
	}
	c()
}

func loop(n int) {
	for i := 0; i < n; i++ {
		a()
	}
	b()
}

func early(flip bool) {
	if flip {
		return
	}
	a()
}

func deferred() {
	defer a()
	go b()
	c()
}

func sel(ch chan int) {
	select {
	case v := <-ch:
		_ = v
	default:
	}
	select {
	case ch <- 1:
	}
}

func labeled(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}
}

func jump(n int) {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
}
`

func TestCFGBranchShape(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	g := buildCFG(bodies["branch"])
	checkEdges(t, g)

	var thenB, elseB *block
	for _, blk := range g.blocks {
		if blk.cond == nil {
			continue
		}
		if blk.condTrue {
			thenB = blk
		} else {
			elseB = blk
		}
	}
	if thenB == nil || elseB == nil {
		t.Fatal("if/else CFG is missing a branch block")
	}
	dom := g.dominators()
	if !dom[g.exit.idx][g.entry.idx] {
		t.Error("entry must dominate exit")
	}
	if dom[g.exit.idx][thenB.idx] || dom[g.exit.idx][elseB.idx] {
		t.Error("neither branch of an if/else may dominate the exit")
	}
}

func TestCFGLoopShape(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	g := buildCFG(bodies["loop"])
	checkEdges(t, g)

	var body *block
	for _, blk := range g.blocks {
		if blk.cond != nil && blk.condTrue {
			body = blk
		}
	}
	if body == nil {
		t.Fatal("loop CFG has no body block")
	}
	if len(body.preds) != 1 {
		t.Fatalf("loop body has %d preds, want 1 (the header)", len(body.preds))
	}
	header := body.preds[0]
	dom := g.dominators()
	if !dom[body.idx][header.idx] {
		t.Error("loop header must dominate the loop body")
	}
	backEdge := false
	for _, p := range header.preds {
		if dom[p.idx][header.idx] {
			backEdge = true // a pred dominated by the header closes the loop
		}
	}
	if !backEdge {
		t.Error("loop CFG has no back edge to the header")
	}
}

func TestCFGEarlyReturnShape(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	g := buildCFG(bodies["early"])
	checkEdges(t, g)

	var thenB *block
	for _, blk := range g.blocks {
		if blk.cond != nil && blk.condTrue {
			thenB = blk
		}
	}
	if thenB == nil {
		t.Fatal("no then-block")
	}
	if len(thenB.succs) != 1 || thenB.succs[0] != g.exit {
		t.Errorf("return branch must jump straight to exit, got %d succs", len(thenB.succs))
	}
	if len(g.exit.preds) != 2 {
		t.Errorf("exit has %d preds, want 2 (return + fallthrough)", len(g.exit.preds))
	}
}

func TestCFGDeferAndGoElems(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	g := buildCFG(bodies["deferred"])
	kinds := make(map[elemKind]int)
	for _, blk := range g.blocks {
		for _, el := range blk.elems {
			kinds[el.kind]++
		}
	}
	if kinds[elemDefer] != 2 {
		t.Errorf("want 2 elemDefer elements (defer + go), got %d", kinds[elemDefer])
	}
	if kinds[elemStmt] != 1 {
		t.Errorf("want 1 plain statement (c()), got %d", kinds[elemStmt])
	}
}

func TestCFGSelectElems(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	g := buildCFG(bodies["sel"])
	checkEdges(t, g)
	var sels []cfgElem
	comms := 0
	for _, blk := range g.blocks {
		for _, el := range blk.elems {
			switch el.kind {
			case elemSelect:
				sels = append(sels, el)
			case elemComm:
				comms++
			}
		}
	}
	if len(sels) != 2 {
		t.Fatalf("want 2 select headers, got %d", len(sels))
	}
	if !sels[0].hasDefault || sels[1].hasDefault {
		t.Errorf("hasDefault flags wrong: got %v, %v", sels[0].hasDefault, sels[1].hasDefault)
	}
	if comms != 2 {
		t.Errorf("want 2 comm elements, got %d", comms)
	}
}

func TestCFGLabeledBranchesAndGoto(t *testing.T) {
	bodies := parseBodies(t, cfgShapesSrc)
	for _, name := range []string{"labeled", "jump"} {
		g := buildCFG(bodies[name])
		checkEdges(t, g)
		if len(g.exit.preds) == 0 {
			t.Errorf("%s: exit is unreachable", name)
		}
	}
}

// trackingStep builds a step function over three marker calls: arm() gens
// the tracked bit, disarm() kills it, use() records the state it observes
// during the reporting pass, keyed by the call's source line.
func trackingStep(fset *token.FileSet, key types.Object, got map[int]bool) func(flowState, cfgElem, reportFn) {
	return func(st flowState, el cfgElem, report reportFn) {
		inspectElem(el, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch id.Name {
			case "arm":
				st[key] = 1
			case "disarm":
				delete(st, key)
			case "use":
				if report != nil {
					got[fset.Position(call.Pos()).Line] = st[key] == 1
				}
			}
			return true
		})
	}
}

const flowSrc = `package p

func f(flip bool) {
	arm()
	if flip {
		disarm()
	}
	use()
	arm()
	use()
	for i := 0; i < 3; i++ {
		use()
		disarm()
	}
	use()
}
`

// Expected per-line observations; the flow source above is line-sensitive.
const (
	lineUseAfterBranch = 8  // disarmed on one path only
	lineUseRearmed     = 10 // armed on every path
	lineUseInLoop      = 12 // armed on entry, disarmed on the back edge
	lineUseAfterLoop   = 15 // disarmed inside the loop body, armed on the zero-trip path
)

func runFlow(t *testing.T, union bool) map[int]bool {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", flowSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	key := types.NewVar(token.NoPos, nil, "k", types.Typ[types.Bool])
	got := make(map[int]bool)
	g := buildCFG(body)
	g.run(flowFuncs{union: union, step: trackingStep(fset, key, got)},
		func(pos token.Pos, format string, args ...any) {})
	return got
}

func TestDataflowMust(t *testing.T) {
	got := runFlow(t, false)
	want := map[int]bool{
		lineUseAfterBranch: false, // killed on the flip path → not armed on every path
		lineUseRearmed:     true,
		lineUseInLoop:      false, // back edge brings the disarmed state around
		lineUseAfterLoop:   false,
	}
	for line, armed := range want {
		if got[line] != armed {
			t.Errorf("must-analysis at line %d: armed=%v, want %v", line, got[line], armed)
		}
	}
}

func TestDataflowMay(t *testing.T) {
	got := runFlow(t, true)
	want := map[int]bool{
		lineUseAfterBranch: true, // armed on the non-flip path
		lineUseRearmed:     true,
		lineUseInLoop:      true,
		lineUseAfterLoop:   true, // the zero-trip path carries the armed state
	}
	for line, armed := range want {
		if got[line] != armed {
			t.Errorf("may-analysis at line %d: armed=%v, want %v", line, got[line], armed)
		}
	}
}

// TestCFGConcurrentUse drives builds and dataflow runs from many
// goroutines over one shared parsed file, pinning down that the framework
// keeps all mutable state local (exercised by `go test -race`).
func TestCFGConcurrentUse(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", flowSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := types.NewVar(token.NoPos, nil, "k", types.Typ[types.Bool])
				got := make(map[int]bool)
				g := buildCFG(body)
				g.dominators()
				g.run(flowFuncs{union: i%2 == 0, step: trackingStep(fset, key, got)},
					func(pos token.Pos, format string, args ...any) {})
				if len(got) == 0 {
					t.Error("dataflow run observed no probes")
					return
				}
			}
		}()
	}
	wg.Wait()
}
