package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CounterSet flags by-value transfer of structs that hold synchronisation
// state. Copying a sync.Mutex forks the lock; copying stats.CounterSet
// copies its slice header so two "independent" counter sets silently
// share (or, after growth, silently stop sharing) the same atomics —
// either way the daemon's drop/shed accounting stops meaning what it
// says. Unlike go vet's copylocks, this also treats slices and arrays of
// sync/atomic values as carriers, which is exactly the CounterSet shape.
var CounterSet = &Analyzer{
	Name: "counterset",
	Doc:  "mutex- or atomic-holding structs (stats.CounterSet et al.) must move by pointer, never by value",
	Run:  runCounterSet,
}

func runCounterSet(pass *Pass) {
	info := pass.Pkg.Info
	seen := make(map[types.Type]bool)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if w := syncWitness(recv.Type(), seen); w != "" {
					pass.Reportf(fn.Recv.Pos(), "value receiver of %s copies %s; use a pointer receiver", typeLabel(recv.Type()), w)
				}
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if w := syncWitness(p.Type(), seen); w != "" {
					pass.Reportf(paramPos(fn, i), "parameter %s passes %s by value, copying %s; pass a pointer", p.Name(), typeLabel(p.Type()), w)
				}
			}
			for i := 0; i < sig.Results().Len(); i++ {
				r := sig.Results().At(i)
				if w := syncWitness(r.Type(), seen); w != "" {
					pass.Reportf(fn.Type.Results.Pos(), "result %d returns %s by value, copying %s; return a pointer", i+1, typeLabel(r.Type()), w)
				}
			}
		}
	}

	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				// Discarding to the blank identifier evaluates the value
				// but keeps no copy alive.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if t := exprType(info, rhs); t != nil {
					if w := syncWitness(t, seen); w != "" {
						pass.Reportf(rhs.Pos(), "assignment copies %s by value (it holds %s); take a pointer instead", typeLabel(t), w)
					}
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversions don't copy lock semantics away
			}
			for _, arg := range n.Args {
				if !copiesValue(arg) {
					continue
				}
				if t := exprType(info, arg); t != nil {
					if w := syncWitness(t, seen); w != "" {
						pass.Reportf(arg.Pos(), "call passes %s by value (it holds %s); pass a pointer", typeLabel(t), w)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			// The := form defines the value ident, so its type lives in
			// Defs rather than the expression-type map.
			var t types.Type
			if id, ok := n.Value.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					t = obj.Type()
				} else if obj := info.Uses[id]; obj != nil {
					t = obj.Type()
				}
			} else {
				t = exprType(info, n.Value)
			}
			if t != nil {
				if w := syncWitness(t, seen); w != "" {
					pass.Reportf(n.Value.Pos(), "range copies %s elements by value (they hold %s); range over indices instead", typeLabel(t), w)
				}
			}
		}
		return true
	})
}

// copiesValue reports whether evaluating e yields a copy of an existing
// value (reading a variable, field, element, or dereference) as opposed
// to constructing a fresh one or passing a pointer.
func copiesValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// syncWitness returns the name of a sync/atomic type reachable from t by
// value (through struct fields, embedded structs, and arrays), or "" if t
// is safe to copy. Pointers, maps, channels, interfaces, and function
// values stop the search: copying those shares, not forks. Slices count
// only when reached through a struct field — copying a bare slice copies
// no elements, but copying a struct whose field is a slice of atomics
// (the stats.CounterSet shape) yields two values that silently share the
// same counters.
func syncWitness(t types.Type, seen map[types.Type]bool) string {
	return witnessIn(t, seen, false)
}

func witnessIn(t types.Type, seen map[types.Type]bool, viaStruct bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	defer delete(seen, t)

	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				if _, isStruct := t.Underlying().(*types.Struct); isStruct {
					return obj.Pkg().Name() + "." + obj.Name()
				}
				return ""
			}
		}
		return witnessIn(t.Underlying(), seen, viaStruct)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if w := witnessIn(t.Field(i).Type(), seen, true); w != "" {
				return w
			}
		}
	case *types.Array:
		return witnessIn(t.Elem(), seen, viaStruct)
	case *types.Slice:
		if viaStruct {
			return witnessIn(t.Elem(), seen, viaStruct)
		}
	case *types.Alias:
		return witnessIn(types.Unalias(t), seen, viaStruct)
	}
	return ""
}

// typeLabel renders a type compactly for findings.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// paramPos locates the i-th parameter in the declaration for precise
// findings; parameters can share one field (a, b int).
func paramPos(fn *ast.FuncDecl, i int) (pos token.Pos) {
	n := 0
	for _, field := range fn.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if i < n+names {
			if len(field.Names) > 0 {
				return field.Names[i-n].Pos()
			}
			return field.Pos()
		}
		n += names
	}
	return fn.Type.Params.Pos()
}
