// Package analysis is a from-scratch static-analysis driver for this
// repository, built only on the standard library's go/parser and go/types
// (no golang.org/x/tools). It loads every package in the module, runs a
// pluggable set of analyzers over the typed syntax trees, and reports
// findings as "file:line:col: analyzer: message".
//
// The analyzers encode the three invariants every result in results/
// depends on: same-seed reproducibility (rngdeterminism), correct
// dB↔linear unit handling (dbunits), and context-threaded cancellation
// (ctxfirst), plus two durability/aliasing guards (closecheck,
// counterset) and three flow-sensitive serving-tier guards built on the
// CFG/dataflow framework in cfg.go: no blocking while a mutex is held
// (lockhold), deadline-dominated conn I/O (conndeadline), and bounded
// literal metric names/labels (metricdiscipline).
//
// A finding can be suppressed — never silenced wholesale — with an inline
// directive on the offending line or the line immediately above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single typed
// package via the Pass and reports findings through it.
type Analyzer struct {
	// Name is the identifier used in findings and //lint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects pass.Pkg and calls pass.Reportf for each violation.
	Run func(pass *Pass)
	// NewState, when non-nil, allocates per-Run state shared by this
	// analyzer across every package of one Run call — the hook that lets
	// metricdiscipline check global metric-name uniqueness. The state is
	// created fresh each Run, so repeated runs (tests, corpora) do not
	// leak observations into each other.
	NewState func() any
}

// Pass carries one analyzer's view of one typed package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// State is the value NewState returned for this Run, shared across
	// packages; nil for stateless analyzers.
	State any

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		RngDeterminism,
		DBUnits,
		CtxFirst,
		CloseCheck,
		CounterSet,
		LockHold,
		ConnDeadline,
		MetricDiscipline,
	}
}

// Run executes the analyzers over the packages and returns the surviving
// findings sorted by position. Findings covered by a valid //lint:allow
// directive are dropped; malformed directives are reported as findings of
// the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, az := range analyzers {
		known[az.Name] = true
	}
	states := make(map[*Analyzer]any, len(analyzers))
	for _, az := range analyzers {
		if az.NewState != nil {
			states[az] = az.NewState()
		}
	}
	var out []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		for _, az := range analyzers {
			az.Run(&Pass{Analyzer: az, Pkg: pkg, State: states[az], findings: &findings})
		}
		allows, bad := collectAllows(pkg, known)
		out = append(out, bad...)
		for _, f := range findings {
			if !allows.covers(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// allowSet maps file → line → set of analyzer names allowed there. A
// directive covers findings on its own line and on the line that follows
// it, so it can sit at the end of the offending line or on its own line
// just above.
type allowSet map[string]map[int]map[string]bool

func (a allowSet) covers(f Finding) bool {
	lines := a[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.Analyzer] || lines[f.Pos.Line-1][f.Analyzer]
}

var allowRE = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// collectAllows scans a package's comments for //lint:allow directives.
// Directives naming an unknown analyzer or missing a reason are returned
// as findings so the escape hatch cannot rot silently.
func collectAllows(pkg *Package, known map[string]bool) (allowSet, []Finding) {
	allows := make(allowSet)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
						Message: "malformed //lint:allow directive; want //lint:allow <analyzer> <reason>"})
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", name)})
					continue
				}
				if reason == "" {
					bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
						Message: fmt.Sprintf("//lint:allow %s needs a reason", name)})
					continue
				}
				fl := allows[pos.Filename]
				if fl == nil {
					fl = make(map[int]map[string]bool)
					allows[pos.Filename] = fl
				}
				set := fl[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					fl[pos.Line] = set
				}
				set[name] = true
			}
		}
	}
	return allows, bad
}

// inspect walks every file of the pass's package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// funcObj resolves a call expression to the *types.Func it invokes, or nil
// for type conversions, calls of func-typed variables, and builtins.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (pkgPath matched on its final element so corpus packages qualify).
func isPkgFunc(f *types.Func, pkgBase, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return pathBase(f.Pkg().Path()) == pkgBase
}

// pathBase returns the final element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
