package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typed package under analysis: parsed syntax plus the
// go/types objects needed by the analyzers.
type Package struct {
	// Path is the import path the package is analyzed under. Corpus tests
	// override it so path-scoped analyzers fire on testdata.
	Path string
	// Dir is the directory the source files live in.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the use/def/type maps for Files.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// exportLookup resolves import paths to compiler export data produced by
// `go list -export`. It backs the stdlib gc importer, so analyzed packages
// resolve their imports (stdlib and module-internal alike) without
// typechecking the whole dependency tree from source.
type exportLookup map[string]string

func (e exportLookup) open(path string) (io.ReadCloser, error) {
	file, ok := e[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

// goList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks every package matched by patterns (relative to dir,
// e.g. "./...") and returns them sorted by import path. Dependencies are
// imported from compiler export data, so the module must build.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(exportLookup)
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.open)
	var out []*Package
	for _, t := range targets {
		pkg, err := typeCheckDir(fset, imp, t.Dir, t.GoFiles, t.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Exports is a reusable snapshot of compiler export data for a module and
// the standard library, against which corpus directories can be
// type-checked without reloading per test.
type Exports struct {
	lookup exportLookup
}

// LoadExports lists ./... and std in moduleRoot with -export and captures
// every package's export data.
func LoadExports(moduleRoot string) (*Exports, error) {
	listed, err := goList(moduleRoot, []string{"./...", "std"})
	if err != nil {
		return nil, err
	}
	exports := make(exportLookup)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return &Exports{lookup: exports}, nil
}

// CheckDir type-checks a single directory of test-corpus sources as if it
// had the given import path. Path-scoped analyzers see asPath, so a corpus
// package can impersonate e.g. repro/internal/mc.
func (e *Exports) CheckDir(corpusDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading corpus %s: %v", corpusDir, err)
	}
	var files []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			files = append(files, ent.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: corpus %s has no .go files", corpusDir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", e.lookup.open)
	return typeCheckDir(fset, imp, corpusDir, files, asPath)
}

// typeCheckDir parses the named files in dir and type-checks them as one
// package with the given import path.
func typeCheckDir(fset *token.FileSet, imp types.Importer, dir string, fileNames []string, path string) (*Package, error) {
	sorted := append([]string(nil), fileNames...)
	sort.Strings(sorted)
	var files []*ast.File
	for _, name := range sorted {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
