// Corpus type-checked as repro/internal/runner: a package on the
// wall-clock allowlist. Clock reads pass; mutating global rand state is
// still forbidden everywhere.
package daemon

import (
	"math/rand"
	"time"
)

func clockIsFine() time.Duration {
	start := time.Now() // allowed: runner legitimately measures wall time
	time.Sleep(time.Nanosecond)
	return time.Since(start)
}

func seedStillForbidden() {
	rand.Seed(7) // want "rand.Seed mutates process-global state"
}

func globalDrawTolerated() int {
	// Global draws outside simulation packages are left to the
	// rngdeterminism allowlist; no finding here.
	return rand.Intn(3)
}
