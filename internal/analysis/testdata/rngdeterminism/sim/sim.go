// Corpus for the rngdeterminism analyzer, type-checked as a simulation
// package (repro/internal/mc). Never built by go build: testdata is
// invisible to the toolchain.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Positive cases: process-global randomness and wall-clock reads have no
// place in a Monte-Carlo package.
func bad(rng *rand.Rand) float64 {
	n := rand.Intn(6)              // want "global math/rand.Intn draws from process-global state"
	rand.Seed(42)                  // want "rand.Seed mutates process-global state"
	x := rand.Float64()            // want "global math/rand.Float64 draws from process-global state"
	v := randv2.IntN(6)            // want "global math/rand/v2.IntN draws from process-global state"
	t0 := time.Now()               // want "time.Now reads the wall clock"
	time.Sleep(time.Nanosecond)    // want "time.Sleep reads the wall clock"
	el := time.Since(t0).Seconds() // want "time.Since reads the wall clock"
	return float64(n+v) + x + el + rng.Float64()
}

// Negative cases: explicitly seeded generators, their methods, and
// deterministic time helpers are the sanctioned idiom.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d, err := time.ParseDuration("1ms")
	if err != nil {
		return 0
	}
	return rng.NormFloat64() * d.Seconds()
}
