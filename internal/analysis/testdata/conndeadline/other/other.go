// Package plotcorpus holds unarmed conn I/O identical to the positive
// corpus: outside the serving packages (schedd/gateway/session) the
// conndeadline analyzer must stay silent.
package plotcorpus

import "net"

func nakedWrite(conn net.Conn, b []byte) error {
	_, err := conn.Write(b) // no finding: not a serving-tier package
	return err
}

func nakedRead(conn net.Conn, b []byte) error {
	_, err := conn.Read(b) // no finding: not a serving-tier package
	return err
}
