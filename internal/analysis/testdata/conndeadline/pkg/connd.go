// Package connd exercises the conndeadline analyzer: conn I/O must be
// dominated by a deadline on the same conn value, per direction, with
// helper functions whose name mentions Deadline arming the conn too.
package connd

import (
	"net"
	"time"
)

func armedWrite(conn net.Conn, b []byte) error {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(b) // ok: dominated by SetDeadline
	return err
}

func nakedWrite(conn net.Conn, b []byte) error {
	_, err := conn.Write(b) // want "Write on \"conn\" is not dominated"
	return err
}

func nakedRead(conn net.Conn, b []byte) error {
	_, err := conn.Read(b) // want "Read on \"conn\" is not dominated"
	return err
}

func halfArmed(conn net.Conn, b []byte) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return
	}
	if _, err := conn.Read(b); err != nil { // ok: the read side is armed
		return
	}
	if _, err := conn.Write(b); err != nil { // want "Write on \"conn\" is not dominated"
		return
	}
}

func conditionallyArmed(conn net.Conn, armed bool, b []byte) {
	if armed {
		if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
			return
		}
	}
	if _, err := conn.Read(b); err != nil { // want "Read on \"conn\" is not dominated"
		return
	}
}

func armedInLoop(conn *net.TCPConn, b []byte) {
	for i := 0; i < 8; i++ {
		if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return
		}
		if _, err := conn.Read(b); err != nil { // ok: re-armed every iteration
			return
		}
	}
}

func helperArmed(conn net.Conn, b []byte) error {
	if err := armDeadline(conn, time.Second); err != nil {
		return err
	}
	_, err := conn.Write(b) // ok: the Deadline-named helper armed the conn
	return err
}

func armDeadline(c net.Conn, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d))
}

func twoConns(a, b net.Conn, buf []byte) {
	if err := a.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return
	}
	if _, err := a.Read(buf); err != nil { // ok: a is armed
		return
	}
	if _, err := b.Read(buf); err != nil { // want "Read on \"b\" is not dominated"
		return
	}
}

func allowedProbe(conn net.Conn, b []byte) {
	//lint:allow conndeadline the watchdog tears this socket down; no deadline wanted
	if _, err := conn.Read(b); err != nil {
		return
	}
}

func allowNeedsReason(conn net.Conn, b []byte) {
	// want-below "//lint:allow conndeadline needs a reason"
	//lint:allow conndeadline
	if _, err := conn.Read(b); err != nil { // want "Read on \"conn\" is not dominated"
		return
	}
}
