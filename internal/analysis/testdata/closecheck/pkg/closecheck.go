// Corpus for the closecheck analyzer: Close errors on writable files
// carry the last chance to notice lost writes.
package closecorpus

import "os"

// Positive: bare statement close on a file opened for writing.
func bareClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want "Close error discarded on writable file"
	return nil
}

// Positive: deferring Close on a writable file discards the error.
func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on writable file discards its error"
	_, err = f.WriteString("x")
	return err
}

// Positive: os.OpenFile with write flags counts as writable.
func openFileWrite(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on writable file discards its error"
	return nil
}

// Positive: a temp file is writable by construction.
func tempFile(dir string) error {
	f, err := os.CreateTemp(dir, "x*")
	if err != nil {
		return err
	}
	f.Close() // want "Close error discarded on writable file"
	return nil
}

// Negative: the read-side defer idiom stays legal.
func readSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// Negative: read-only OpenFile, even as a bare statement.
func readOnlyOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	f.Close()
	return nil
}

// Negative: checking the error is the point.
func checkedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		_ = f.Close() // explicit discard while another error wins
		return err
	}
	return f.Close()
}
