// Package metcorpus exercises the metricdiscipline analyzer: obs metric
// names must be literal, subsystem-prefixed snake_case and registered from
// a single site; label keys must be constant snake_case strings; label
// values must not be minted from request data.
package metcorpus

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
)

type shard struct{ name string }

type status int

func (s status) String() string { return "ok" }

func register(r *obs.Registry, sh shard, n int) {
	r.Counter("met_requests_total", "requests served", nil)             // ok
	r.Counter("met_requests_total", "requests served again", nil)       // want "already registered"
	r.Gauge("BadName", "camel-case name", nil)                          // want "not subsystem-prefixed snake_case"
	r.Gauge("requests", "single segment lacks a subsystem prefix", nil) // want "not subsystem-prefixed snake_case"

	name := "met_" + sh.name
	r.Counter(name, "computed name", nil) // want "must be a constant string"

	r.Histogram("met_latency_seconds", "latency", []float64{0.1, 1}, obs.Labels{"shard": sh.name}) // ok: bounded field
	r.Group("met_events_total", "event counters", "event", "hit", "miss")                          // ok

	r.Counter("met_by_station_total", "per-station counter", obs.Labels{
		"station": fmt.Sprintf("sta%d", n), // want "fmt.Sprintf"
	})
	r.Counter("met_by_id_total", "per-id counter", obs.Labels{
		"id": strconv.Itoa(n), // want "strconv.Itoa"
	})
	r.Counter("met_by_code_total", "per-code counter", obs.Labels{
		"code": string(rune(n)), // want "non-string value"
	})
	r.Counter("met_by_key_total", "concatenated label", obs.Labels{
		"key": "sta" + sh.name, // want "concatenates non-constant strings"
	})
	r.Counter("met_bad_keys_total", "bad keys", obs.Labels{
		"Station-ID": "x", // want "not snake_case"
	})

	key := "k"
	_ = obs.Labels{key: "x"} // want "must be a constant string"
}

func registerStatus(r *obs.Registry, st status) {
	r.Counter("met_status_total", "status", obs.Labels{"status": st.String()}) // ok: stringer enums are bounded
}

func allowDynamic(id string) {
	//lint:allow metricdiscipline fixed three-node deployment, node ids are bounded
	_ = obs.Labels{"node": fmt.Sprintf("node-%s", id)}
}

func allowNeedsReason(id string) {
	// want-below "//lint:allow metricdiscipline needs a reason"
	//lint:allow metricdiscipline
	_ = obs.Labels{"node": fmt.Sprintf("node-%s", id)} // want "fmt.Sprintf"
}
