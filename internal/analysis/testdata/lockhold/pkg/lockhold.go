// Package lockcorpus exercises the lockhold analyzer: blocking operations
// while a sync mutex is held, unlock-dominance across branches, deferred
// unlocks (which do not release mid-body), and TryLock branch guards.
package lockcorpus

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	idxMu sync.RWMutex
	ch    chan int
	conn  net.Conn
}

func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking time.Sleep while mutex \"mu\" is held"
	s.mu.Unlock()
}

func (s *server) deferHeld(v int) {
	s.mu.Lock()
	defer s.mu.Unlock() // runs at return, so the send below still holds mu
	s.ch <- v           // want "blocking channel send while mutex \"mu\" is held"
}

func (s *server) unlockFirst() int {
	s.mu.Lock()
	n := len(s.ch)
	s.mu.Unlock()
	return n + <-s.ch // ok: released before the receive
}

func (s *server) branchLeak(flip bool) {
	s.mu.Lock()
	if flip {
		s.mu.Unlock()
	}
	<-s.ch // want "blocking channel receive while mutex \"mu\" is held"
	if !flip {
		s.mu.Unlock()
	}
}

func (s *server) earlyReturn(flip bool) {
	s.mu.Lock()
	if flip {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	<-s.ch // ok: the lock is released on every path reaching here
}

func (s *server) secondLock() {
	s.mu.Lock()
	s.idxMu.RLock() // want "acquiring \"idxMu\".RLock while mutex \"mu\" is held"
	s.idxMu.RUnlock()
	s.mu.Unlock()
}

func (s *server) connHeld(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b) // want "blocking net conn Write while mutex \"mu\" is held"
	return err
}

func (s *server) waitHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "blocking WaitGroup.Wait while mutex \"mu\" is held"
}

func (s *server) selectHeld(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while mutex \"mu\" is held"
	case <-done:
	case v := <-s.ch:
		_ = v
	}
}

func (s *server) pollHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // ok: a select with a default clause never blocks
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) rangeHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want "blocking range over channel while mutex \"mu\" is held"
	}
}

func (s *server) tryGuard() {
	if s.mu.TryLock() {
		time.Sleep(time.Millisecond) // want "blocking time.Sleep while mutex \"mu\" is held"
		s.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // ok: not held when TryLock fails or after Unlock
}

func (s *server) perIteration(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		n += len(s.ch)
		s.mu.Unlock()
		time.Sleep(time.Millisecond) // ok: released before sleeping each iteration
	}
}

func (s *server) goroutineExempt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // ok: blocks the spawned goroutine, not the lock holder
	}()
}

func (s *server) allowHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockhold startup-only handshake; no other goroutine exists yet
	time.Sleep(time.Microsecond)
}

func (s *server) allowNeedsReason() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// want-below "//lint:allow lockhold needs a reason"
	//lint:allow lockhold
	time.Sleep(time.Microsecond) // want "blocking time.Sleep while mutex \"mu\" is held"
}
