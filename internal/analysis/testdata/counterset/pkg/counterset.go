// Corpus for the counterset analyzer: synchronisation state moves by
// pointer, never by value.
package cscorpus

import (
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type metrics struct {
	hits []atomic.Int64 // the stats.CounterSet shape
}

// Positive: parameters of lock-holding types.
func byValue(g guarded) int { // want "parameter g passes .* by value, copying sync.Mutex"
	return g.n
}

func countersByValue(cs stats.CounterSet) string { // want "parameter cs passes stats.CounterSet by value, copying atomic.Int64"
	return cs.String()
}

func metricsByValue(m metrics) int { // want "parameter m passes .* by value, copying atomic.Int64"
	return len(m.hits)
}

// Positive: value receivers copy the lock on every call.
func (g guarded) Peek() int { // want "value receiver of .* copies sync.Mutex"
	return g.n
}

// Positive: dereferencing copies.
func deref(p *guarded) {
	g := *p // want "assignment copies .* by value"
	_ = g
}

// Positive: call arguments copy too.
func callArg(p *stats.CounterSet) {
	sink(*p) // want "call passes stats.CounterSet by value"
}

// Positive: ranging by value copies each element's lock.
func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies .* elements by value"
		total += g.n
	}
	return total
}

// Negative: pointers share instead of forking.
func byPointer(g *guarded) int { return g.n }

func (g *guarded) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Negative: a bare slice parameter copies no elements.
func sliceParam(gs []guarded) int {
	if len(gs) == 0 {
		return 0
	}
	return gs[0].n
}

// Negative: constructing a value is not copying one.
func construct() *guarded {
	g := guarded{n: 1}
	return &g
}

func sink(v any) { _ = v }
