// The same shapes as the sched corpus, type-checked as
// repro/internal/plot: outside the scheduling packages ctxfirst stays
// silent, so this corpus expects zero findings.
package other

import (
	"context"
	"sync"
)

func Solve(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

func WaitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

func Detached() error {
	return context.Background().Err()
}
