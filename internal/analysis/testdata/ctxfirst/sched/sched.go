// Corpus for the ctxfirst analyzer, type-checked as repro/internal/sched
// — a package on the daemon's cancellation path.
package sched

import (
	"context"
	"sync"
	"time"
)

// Positive: a context parameter anywhere but first.
func Solve(n int, ctx context.Context) error { // want "takes context.Context as parameter 2"
	_ = n
	return ctx.Err()
}

// Positive: exported blocking functions must accept a context.
func WaitAll(wg *sync.WaitGroup) { // want "blocks \\(sync.Wait\\)"
	wg.Wait()
}

func Recv(ch chan int) int { // want "blocks \\(channel receive\\)"
	return <-ch
}

func Nap() { // want "blocks \\(time.Sleep\\)"
	time.Sleep(time.Millisecond)
}

// Positive: library code must not mint root contexts outside a
// documented compatibility wrapper.
func Detached() error {
	ctx := context.Background() // want "mints a root context"
	return ctx.Err()
}

// Negative: the documented escape hatch for compatibility wrappers.
func Compat() error {
	//lint:allow ctxfirst documented compatibility wrapper for corpus
	return withCtx(context.Background())
}

// Negative: ctx first is the sanctioned shape, even when blocking.
func RunCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Negative: unexported helpers may block; their exported callers carry
// the context.
func drain(ch chan int) int {
	return <-ch
}

// Negative: a select with a default clause cannot block.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// Negative: goroutine bodies block the goroutine, not the caller.
func Launch(ch chan int) {
	go func() {
		<-ch
	}()
}

func withCtx(ctx context.Context) error { return ctx.Err() }
