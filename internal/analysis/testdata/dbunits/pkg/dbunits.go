// Corpus for the dbunits analyzer: the repo convention says decibel
// quantities carry a dB/DB suffix, linear ones a Linear/lin suffix, and
// phy.DB / phy.FromDB are the only bridges.
package dbcorpus

import "repro/internal/phy"

// Positive cases: dB and linear values meeting under + or -.
func mixes(snrDB float64) float64 {
	a := snrDB + phy.FromDB(3)     // want "mixes a dB-domain value with a linear-domain value"
	b := phy.DB(4) - phy.FromDB(3) // want "mixes a dB-domain value with a linear-domain value"
	c := phy.FromDB(snrDB) - snrDB // want "mixes a linear-domain value with a dB-domain value"
	d := 2*snrDB + 3*phy.FromDB(1) // want "mixes a dB-domain value with a linear-domain value"
	return a + b + c + d
}

// Compound assignment is arithmetic too.
func accumulates(marginDB float64) float64 {
	totalDB := marginDB
	totalDB += phy.FromDB(1) // want "mixes a dB-domain value with a linear-domain value"
	return totalDB
}

// Positive cases: arguments crossing a parameter's declared domain.
func misroutedArgs() {
	_ = phy.Capacity(20e6, phy.DB(100))          // want "dB-domain argument passed to linear parameter \"sinr\""
	_, _ = phy.NewPathLoss(3, 1, phy.FromDB(10)) // want "linear-domain argument passed to dB parameter \"refSNRdB\""
}

// Negative cases: same-domain arithmetic and correctly routed arguments.
func clean(snrDB, marginDB float64) float64 {
	widenedDB := snrDB + marginDB // dB + dB: a legitimate power scaling
	gainLin := phy.FromDB(snrDB) * 2
	sum := gainLin + phy.FromDB(marginDB)
	cap1 := phy.Capacity(20e6, phy.FromDB(widenedDB))
	pl, err := phy.NewPathLoss(3, 1, widenedDB)
	if err != nil {
		return 0
	}
	return cap1 + sum + pl.SNRAt(10)
}
