// Corpus for the //lint:allow directive machinery, type-checked as a
// simulation package so rngdeterminism has something to suppress.
package allowcorpus

import "time"

// A valid directive on the preceding line suppresses the finding.
func suppressedAbove() time.Time {
	//lint:allow rngdeterminism corpus exercises the directive
	return time.Now()
}

// A valid directive at the end of the offending line also works.
func suppressedInline() time.Time {
	return time.Now() //lint:allow rngdeterminism corpus exercises the inline form
}

// The directive is per-line: the next violation still fires.
func notCovered() time.Time {
	//lint:allow rngdeterminism only this line's neighbour is covered
	t := time.Now()
	u := time.Now() // want "time.Now reads the wall clock"
	return t.Add(time.Duration(u.Nanosecond()))
}

// Directives must name a real analyzer; the bogus one below is itself a
// finding and suppresses nothing.
func unknownAnalyzer() time.Time {
	//lint:allow nosuchanalyzer bogus reason // want "names unknown analyzer"
	return time.Now() // want "time.Now reads the wall clock"
}

// A directive without a reason is rejected and suppresses nothing.
func missingReason() time.Time {
	// want-below "needs a reason"
	//lint:allow rngdeterminism
	return time.Now() // want "time.Now reads the wall clock"
}
