package analysis

// Intra-procedural control-flow analysis for the flow-sensitive analyzers
// (lockhold, conndeadline). The CFG is deliberately small: basic blocks of
// statement/expression elements linked by edges, an iterative dominator
// computation, and a forward dataflow engine over per-object bitmask
// states. Function literals are never inlined — each body (declaration or
// literal) is its own flat graph — so analyses reason only about what runs
// on the current goroutine's spine, matching firstBlockingOp's convention.

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
)

// elemKind tells a dataflow step how to interpret a CFG element.
type elemKind uint8

const (
	// elemStmt is a plain statement or expression: steps inspect it for
	// calls and channel operations.
	elemStmt elemKind = iota
	// elemSelect marks a select statement header. Clause bodies live in
	// successor blocks; hasDefault says whether the select can complete
	// without blocking. Steps must not descend into the node.
	elemSelect
	// elemComm is the communication operation of a select clause that was
	// chosen. Its channel op has already "won", so steps must not count it
	// as a fresh blocking point, but calls nested in it still execute.
	elemComm
	// elemRange marks a range-loop header. Steps must not descend into
	// the node (the body lives in a successor block); a range over a
	// channel blocks on every iteration.
	elemRange
	// elemDefer is a deferred or go'd call: it does not run at this
	// program point, so steps skip it entirely. In particular a deferred
	// Unlock does not release the mutex for the statements that follow.
	elemDefer
)

type cfgElem struct {
	node       ast.Node
	kind       elemKind
	hasDefault bool // elemSelect only
}

// block is one basic block. cond/condTrue record the controlling if- or
// loop-condition for branch blocks so analyses can assume, e.g., that
// mu.TryLock() succeeded on the true edge.
type block struct {
	idx   int
	elems []cfgElem
	succs []*block
	preds []*block

	cond     ast.Expr
	condTrue bool
}

type cfg struct {
	entry  *block
	exit   *block
	blocks []*block
}

// cfgBuilder threads the current insertion point through the statement
// walk. cur == nil means the walk just passed a terminating statement
// (return, break, goto); any code after it is unreachable and lands in a
// fresh predecessor-less block.
type cfgBuilder struct {
	g   *cfg
	cur *block

	targets    []branchTarget
	fallTarget *block
	labels     map[string]*block
	gotos      []pendingGoto
}

// branchTarget is one enclosing breakable construct. cont is nil for
// switch/select, which break but do not continue.
type branchTarget struct {
	label     string
	brk, cont *block
}

type pendingGoto struct {
	from  *block
	label string
}

func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmt(body)
	if b.cur != nil {
		edge(b.cur, g.exit)
	}
	for _, pg := range b.gotos {
		if t := b.labels[pg.label]; t != nil {
			edge(pg.from, t)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{idx: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func edge(from, to *block) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) emit(n ast.Node, kind elemKind) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.elems = append(b.cur.elems, cfgElem{node: n, kind: kind})
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.ReturnStmt:
		b.emit(s, elemStmt)
		edge(b.cur, b.g.exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.DeferStmt:
		b.emit(s, elemDefer)
	case *ast.GoStmt:
		b.emit(s, elemDefer)
	default:
		// ExprStmt, AssignStmt, SendStmt, IncDecStmt, DeclStmt, EmptyStmt.
		b.emit(s, elemStmt)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.emit(s.Init, elemStmt)
	b.emit(s.Cond, elemStmt)
	header := b.cur
	join := b.newBlock()

	thenB := b.newBlock()
	thenB.cond, thenB.condTrue = s.Cond, true
	edge(header, thenB)
	b.cur = thenB
	b.stmt(s.Body)
	if b.cur != nil {
		edge(b.cur, join)
	}

	if s.Else != nil {
		elseB := b.newBlock()
		elseB.cond, elseB.condTrue = s.Cond, false
		edge(header, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		if b.cur != nil {
			edge(b.cur, join)
		}
	} else {
		edge(header, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	b.emit(s.Init, elemStmt)
	header := b.newBlock()
	if b.cur != nil {
		edge(b.cur, header)
	}
	b.cur = header
	b.emit(s.Cond, elemStmt)

	join := b.newBlock()
	post := b.newBlock()
	body := b.newBlock()
	if s.Cond != nil {
		body.cond, body.condTrue = s.Cond, true
		edge(header, join)
	}
	edge(header, body)
	b.cur = body
	b.push(label, join, post)
	b.stmt(s.Body)
	b.pop()
	if b.cur != nil {
		edge(b.cur, post)
	}
	b.cur = post
	b.emit(s.Post, elemStmt)
	edge(post, header)
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.emit(s.X, elemStmt)
	header := b.newBlock()
	if b.cur != nil {
		edge(b.cur, header)
	}
	header.elems = append(header.elems, cfgElem{node: s, kind: elemRange})
	join := b.newBlock()
	edge(header, join)
	body := b.newBlock()
	edge(header, body)
	b.cur = body
	b.push(label, join, header)
	b.stmt(s.Body)
	b.pop()
	if b.cur != nil {
		edge(b.cur, header)
	}
	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	b.emit(s.Init, elemStmt)
	b.emit(s.Tag, elemStmt)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	header := b.cur
	b.caseClauses(s.Body, header, label, func(c *ast.CaseClause) {
		for _, e := range c.List {
			b.emit(e, elemStmt)
		}
	})
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	b.emit(s.Init, elemStmt)
	b.emit(s.Assign, elemStmt)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	header := b.cur
	b.caseClauses(s.Body, header, label, func(*ast.CaseClause) {})
}

// caseClauses builds the shared case-dispatch shape of switch and type
// switch: one body block per clause (created up-front so fallthrough can
// target the next clause), all fed from the header, all draining to a
// join. Without a default clause the header also reaches the join.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, header *block, label string, emitCase func(*ast.CaseClause)) {
	join := b.newBlock()
	b.push(label, join, nil)
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		if c.List == nil {
			hasDefault = true
		}
		edge(header, bodies[i])
		b.cur = bodies[i]
		emitCase(c)
		savedFall := b.fallTarget
		b.fallTarget = nil
		if i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.fallTarget = savedFall
		if b.cur != nil {
			edge(b.cur, join)
		}
	}
	if !hasDefault {
		edge(header, join)
	}
	b.pop()
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc := c.(*ast.CommClause); cc.Comm == nil {
			hasDefault = true
		}
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.elems = append(b.cur.elems, cfgElem{node: s, kind: elemSelect, hasDefault: hasDefault})
	header := b.cur
	join := b.newBlock()
	b.push(label, join, nil)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		clauseB := b.newBlock()
		edge(header, clauseB)
		b.cur = clauseB
		if cc.Comm != nil {
			b.emit(cc.Comm, elemComm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			edge(b.cur, join)
		}
	}
	b.pop()
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			if label == "" || b.targets[i].label == label {
				edge(b.cur, b.targets[i].brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				edge(b.cur, t.cont)
				break
			}
		}
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			edge(b.cur, b.fallTarget)
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	}
	b.cur = nil
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// Every label is a potential goto target: give it its own block.
	lb := b.newBlock()
	if b.cur != nil {
		edge(b.cur, lb)
	}
	b.cur = lb
	if b.labels == nil {
		b.labels = make(map[string]*block)
	}
	b.labels[s.Label.Name] = lb
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) push(label string, brk, cont *block) {
	b.targets = append(b.targets, branchTarget{label: label, brk: brk, cont: cont})
}

func (b *cfgBuilder) pop() {
	b.targets = b.targets[:len(b.targets)-1]
}

// dominators computes the dominance relation iteratively: dom[i][j]
// reports whether block j dominates block i. Unreachable blocks keep the
// conventional all-blocks initialization.
func (g *cfg) dominators() [][]bool {
	n := len(g.blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	e := g.entry.idx
	for j := range dom[e] {
		dom[e][j] = j == e
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if blk.idx == e {
				continue
			}
			cur := dom[blk.idx]
			for j := 0; j < n; j++ {
				if j == blk.idx || !cur[j] {
					continue
				}
				// j stays a dominator only if it dominates every pred.
				keep := len(blk.preds) > 0
				for _, p := range blk.preds {
					if !dom[p.idx][j] {
						keep = false
						break
					}
				}
				if len(blk.preds) == 0 {
					keep = true // unreachable: leave initialization alone
				}
				if !keep {
					cur[j] = false
					changed = true
				}
			}
		}
	}
	return dom
}

// flowState maps a tracked object (a mutex, a conn) to an
// analysis-specific bitmask. The zero bitmask never appears: gen sets
// bits, kill deletes the key.
type flowState map[types.Object]uint8

func (s flowState) clone() flowState {
	c := make(flowState, len(s))
	maps.Copy(c, s)
	return c
}

func (s flowState) equal(o flowState) bool {
	return maps.Equal(s, o)
}

// reportFn matches Pass.Reportf; a nil reportFn means the engine is still
// iterating to a fixpoint and steps must stay silent.
type reportFn = func(pos token.Pos, format string, args ...any)

// flowFuncs configures one forward dataflow analysis.
type flowFuncs struct {
	// union selects the merge: true ORs bitmasks over the union of keys
	// (may-analysis: "held on some path"), false ANDs them over the key
	// intersection (must-analysis: "armed on every path" — equivalently,
	// the op is dominated by the arming statements).
	union bool
	// enter applies branch assumptions from blk.cond before the block's
	// elements run. Optional.
	enter func(st flowState, blk *block)
	// step applies one element's effect to st, reporting violations when
	// report is non-nil.
	step func(st flowState, el cfgElem, report reportFn)
}

// run iterates to a fixpoint with a worklist, then replays each reachable
// block once from its stable in-state with reporting enabled. Gen/kill
// transfer functions are monotone over the finite per-function object set,
// so the iteration terminates.
func (g *cfg) run(f flowFuncs, report reportFn) {
	n := len(g.blocks)
	in := make([]flowState, n)
	out := make([]flowState, n)
	visited := make([]bool, n)

	apply := func(blk *block, rep reportFn) flowState {
		st := in[blk.idx].clone()
		if f.enter != nil {
			f.enter(st, blk)
		}
		for _, el := range blk.elems {
			f.step(st, el, rep)
		}
		return st
	}

	in[g.entry.idx] = flowState{}
	visited[g.entry.idx] = true
	work := []*block{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		st := apply(blk, nil)
		if out[blk.idx] != nil && st.equal(out[blk.idx]) {
			continue
		}
		out[blk.idx] = st
		for _, succ := range blk.succs {
			newIn := mergePreds(f.union, succ, out)
			if !visited[succ.idx] || !newIn.equal(in[succ.idx]) {
				in[succ.idx] = newIn
				visited[succ.idx] = true
				work = append(work, succ)
			}
		}
	}

	if report == nil {
		return
	}
	for _, blk := range g.blocks {
		if visited[blk.idx] {
			apply(blk, report)
		}
	}
}

// mergePreds recomputes a block's in-state from its predecessors'
// out-states. Predecessors not yet processed contribute the merge
// identity (empty set for union, TOP for intersection) by being skipped.
func mergePreds(union bool, blk *block, out []flowState) flowState {
	merged := flowState{}
	first := true
	for _, p := range blk.preds {
		po := out[p.idx]
		if po == nil {
			continue
		}
		if union {
			for obj, bits := range po {
				merged[obj] |= bits
			}
			first = false
			continue
		}
		if first {
			maps.Copy(merged, po)
			first = false
			continue
		}
		for obj, bits := range merged {
			if nb := bits & po[obj]; nb == 0 {
				delete(merged, obj)
			} else {
				merged[obj] = nb
			}
		}
	}
	return merged
}

// funcBodies yields every function body in the package — declarations and
// function literals — each to be analyzed as its own flat CFG.
func funcBodies(pkg *Package, fn func(body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// inspectElem walks an element's node for a dataflow step, skipping nested
// function literals (separate CFGs) and skipping deferred/go'd calls and
// header-only elements entirely.
func inspectElem(el cfgElem, f func(ast.Node) bool) {
	switch el.kind {
	case elemDefer, elemSelect, elemRange:
		return
	}
	ast.Inspect(el.node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
