package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
)

// CloseCheck protects the atomicio durability contract from PR 2: on a
// writable file, Close is where buffered writes can still fail, so
// discarding its error can silently publish a truncated metrics.json or
// checkpoint. The analyzer flags Close() calls on *os.File whose result
// is dropped — as a bare statement, or deferred on a file opened for
// writing in the same function. Assigning the error away explicitly
// (`_ = f.Close()`) or a //lint:allow closecheck directive records a
// deliberate best-effort close.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "Close() errors on writable files must be checked: a failed close can lose buffered writes",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCloses(pass, info, fn.Body)
		}
	}
}

// checkCloses inspects one function body. It first collects which local
// *os.File variables were opened read-only vs writable, then flags
// discarded Close calls.
func checkCloses(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	writable := make(map[types.Object]bool)
	readonly := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		ident, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[ident]
		if obj == nil {
			obj = info.Uses[ident]
		}
		if obj == nil {
			return true
		}
		f := funcObj(info, call)
		switch {
		case isPkgFunc(f, "os", "Create") || isPkgFunc(f, "os", "CreateTemp"):
			writable[obj] = true
		case isPkgFunc(f, "os", "OpenFile"):
			if len(call.Args) >= 2 && openFlagsWritable(info, call.Args[1]) {
				writable[obj] = true
			} else {
				readonly[obj] = true
			}
		case isPkgFunc(f, "os", "Open"):
			readonly[obj] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = n.Call, true
		case *ast.GoStmt:
			call, deferred = n.Call, true
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return true
		}
		if !isOSFile(info, sel.X) {
			return true
		}
		recvObj := exprObject(info, sel.X)
		if deferred {
			// defer f.Close() is only flagged when f is provably a file
			// this function opened for writing; the read-side idiom stays.
			if recvObj != nil && writable[recvObj] {
				pass.Reportf(call.Pos(), "deferred Close on writable file discards its error; close explicitly and check, or defer a named-error close")
			}
			return true
		}
		if recvObj != nil && readonly[recvObj] {
			return true // discarded close of a read-only file loses nothing
		}
		pass.Reportf(call.Pos(), "Close error discarded on writable file; a failed close can lose buffered writes — check it or assign to _ deliberately")
		return true
	})
}

// openFlagsWritable decides whether an os.OpenFile flag expression opens
// for writing. Non-constant flags are treated as writable, erring toward
// a finding.
func openFlagsWritable(info *types.Info, flagExpr ast.Expr) bool {
	tv, ok := info.Types[flagExpr]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	const writeBits = int64(os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC)
	return v&writeBits != 0
}

// isOSFile reports whether e's static type is *os.File.
func isOSFile(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// exprObject resolves an identifier or selector to its object, so closes
// can be matched against the open that produced the file.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}
