package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxPackages are the packages whose exported API sits on the daemon's
// cancellation path: PR 3's degradation ladder can only keep its deadline
// promises if every potentially long-running call accepts a context and
// no library code silently detaches from its caller by minting a fresh
// root context.
var ctxPackages = map[string]bool{
	"matching": true,
	"sched":    true,
	"schedd":   true,
	"runner":   true,
	"gateway":  true,
	"session":  true,
}

// CtxFirst enforces context discipline in the scheduling packages:
// context.Context parameters come first, exported blocking functions must
// take one, and context.Background()/TODO() may appear only behind a
// //lint:allow ctxfirst directive documenting a compatibility wrapper.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "scheduling packages must thread cancellation: ctx first, blocking exports take ctx, no stray context.Background()",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	if !ctxPackages[pathBase(pass.Pkg.Path)] {
		return
	}
	info := pass.Pkg.Info

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			ctxIdx := -1
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextType(sig.Params().At(i).Type()) {
					ctxIdx = i
					break
				}
			}
			if ctxIdx > 0 {
				pass.Reportf(fn.Name.Pos(), "%s takes context.Context as parameter %d; cancellation contexts go first", fn.Name.Name, ctxIdx+1)
			}
			if fn.Name.IsExported() && ctxIdx < 0 && fn.Body != nil {
				if pos, op := firstBlockingOp(info, fn.Body); pos.IsValid() {
					pass.Reportf(fn.Name.Pos(), "exported %s blocks (%s) but takes no context.Context; add one as the first parameter so callers can cancel", fn.Name.Name, op)
				}
			}
		}
	}

	// Library code must not mint root contexts: a fresh Background()
	// detaches the work from the caller's deadline. The documented
	// compatibility wrappers carry //lint:allow ctxfirst directives.
	for ident, obj := range info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			continue
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(ident.Pos(), "context.%s mints a root context and detaches this call from its caller's cancellation; accept a ctx parameter instead", fn.Name())
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// firstBlockingOp finds the first statement in body that can block the
// caller indefinitely: a select without a default clause, a channel send
// or receive, sync.WaitGroup.Wait / sync.Cond.Wait, or time.Sleep.
// Function literals are skipped — work launched in a goroutine blocks
// that goroutine, not the caller — so only the function's own spine
// counts.
func firstBlockingOp(info *types.Info, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var op string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pos, op = n.Pos(), "select"
				return false
			}
			// A select with a default clause never blocks, and its comm
			// clauses are polled, not waited on — but the clause bodies
			// run normally, so only they are searched.
			for _, c := range n.Body.List {
				if pos.IsValid() {
					break
				}
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, stmt := range cc.Body {
					if p, o := firstBlockingOp(info, &ast.BlockStmt{List: []ast.Stmt{stmt}}); p.IsValid() {
						pos, op = p, o
						break
					}
				}
			}
			return false
		case *ast.SendStmt:
			pos, op = n.Pos(), "channel send"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, op = n.Pos(), "channel receive"
				return false
			}
		case *ast.CallExpr:
			if f := funcObj(info, n); f != nil && f.Pkg() != nil {
				path, name := f.Pkg().Path(), f.Name()
				if (path == "sync" && name == "Wait") || (path == "time" && name == "Sleep") {
					pos, op = n.Pos(), path+"."+name
					return false
				}
			}
		}
		return true
	})
	return pos, op
}
