package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DBUnits guards the repo's power-domain convention (see package phy):
// signal strengths travel as linear noise-normalised ratios, decibels
// appear only at the edges, and identifiers carry their domain in their
// name (suffix dB/DB for decibels, Linear/lin for explicit linear values).
// Adding a dB quantity to a linear one — or handing phy.DB output to a
// linear parameter — silently flips decode-order conclusions, the exact
// slip Zhang & Haenggi's SIC analysis warns about, so it is flagged here
// instead of discovered in a wrong figure.
var DBUnits = &Analyzer{
	Name: "dbunits",
	Doc:  "decibel and linear power values must not mix: no dB±linear arithmetic, no dB values into linear parameters",
	Run:  runDBUnits,
}

// domain classifies an expression's power domain by the repo's naming
// convention and the phy conversion functions.
type domain int

const (
	domUnknown domain = iota
	domDB
	domLinear
)

func (d domain) String() string {
	switch d {
	case domDB:
		return "dB-domain"
	case domLinear:
		return "linear-domain"
	}
	return "unknown-domain"
}

// isDBName reports whether an identifier names a decibel quantity:
// sigmaDB, refSNRdB, lossDb, or a bare db/dB.
func isDBName(name string) bool {
	if name == "dB" || name == "db" || name == "DB" {
		return true
	}
	return strings.HasSuffix(name, "dB") || strings.HasSuffix(name, "DB") || strings.HasSuffix(name, "Db")
}

// isLinearName reports whether an identifier explicitly names a linear
// quantity (snrLinear, gainLin, linear).
func isLinearName(name string) bool {
	if name == "linear" || name == "lin" {
		return true
	}
	return strings.HasSuffix(name, "Linear") || strings.HasSuffix(name, "Lin")
}

// isLinearParamName extends isLinearName for parameter positions: by the
// package phy contract, snr/sinr parameters are linear ratios.
func isLinearParamName(name string) bool {
	switch name {
	case "snr", "sinr", "sinrLinear", "snrLinear":
		return true
	}
	return isLinearName(name)
}

func runDBUnits(pass *Pass) {
	info := pass.Pkg.Info
	var cls func(e ast.Expr) domain
	cls = func(e ast.Expr) domain {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return cls(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.ADD || e.Op == token.SUB {
				return cls(e.X)
			}
		case *ast.Ident:
			return nameDomain(e.Name)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return nameDomain(e.Sel.Name)
			}
			// Package-qualified var or const, e.g. phy.NoiseFloorDB.
			if _, ok := info.Uses[e.Sel].(*types.Func); !ok {
				return nameDomain(e.Sel.Name)
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return cls(e.Args[0]) // conversions like float64(xdB) keep their domain
			}
			if f := funcObj(info, e); f != nil {
				// phy.DB/phy.FromDB and their root-package re-exports are
				// the sanctioned converters; match by name so wrappers
				// classify correctly ("FromDB" returns linear despite its
				// dB suffix).
				switch f.Name() {
				case "FromDB", "FromDb":
					return domLinear
				case "DB", "ToDB":
					return domDB
				}
				return nameDomain(f.Name())
			}
		case *ast.BinaryExpr:
			l, r := cls(e.X), cls(e.Y)
			switch e.Op {
			case token.MUL, token.QUO:
				// Scaling a domain quantity by a plain scalar keeps the
				// domain; anything fancier is left unclassified.
				if l == domUnknown {
					return r
				}
				if r == domUnknown {
					return l
				}
				if l == r {
					return l
				}
			case token.ADD, token.SUB:
				if l == r {
					return l
				}
			}
		}
		return domUnknown
	}

	isNumeric := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsNumeric != 0
	}

	checkMix := func(pos token.Pos, l, r ast.Expr, op token.Token) {
		dl, dr := cls(l), cls(r)
		if (dl == domDB && dr == domLinear) || (dl == domLinear && dr == domDB) {
			if !isNumeric(l) && !isNumeric(r) {
				return
			}
			pass.Reportf(pos, "%s mixes a %s value with a %s value; convert with phy.FromDB/phy.DB at the boundary", op, dl, dr)
		}
	}

	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD || n.Op == token.SUB {
				checkMix(n.OpPos, n.X, n.Y, n.Op)
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				checkMix(n.TokPos, n.Lhs[0], n.Rhs[0], n.Tok)
			}
		case *ast.CallExpr:
			checkCallArgs(pass, cls, n)
		}
		return true
	})
}

// checkCallArgs flags dB-domain arguments bound to linear parameters and
// linear arguments bound to dB parameters, using the callee's declared
// parameter names.
func checkCallArgs(pass *Pass, cls func(ast.Expr) domain, call *ast.CallExpr) {
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	f := funcObj(pass.Pkg.Info, call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pname := params.At(pi).Name()
		if pname == "" {
			continue
		}
		switch d := cls(arg); {
		case d == domDB && isLinearParamName(pname):
			pass.Reportf(arg.Pos(), "dB-domain argument passed to linear parameter %q of %s; convert with phy.FromDB", pname, f.Name())
		case d == domLinear && isDBName(pname):
			pass.Reportf(arg.Pos(), "linear-domain argument passed to dB parameter %q of %s; convert with phy.DB", pname, f.Name())
		}
	}
}

// nameDomain maps an identifier name to its power domain.
func nameDomain(name string) domain {
	if isDBName(name) {
		return domDB
	}
	if isLinearName(name) {
		return domLinear
	}
	return domUnknown
}
