package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// connDeadlinePackages is the serving tier, where every conn read/write
// answers (or relays) live traffic and an unarmed socket can park a
// handler goroutine forever on a dead peer.
var connDeadlinePackages = map[string]bool{
	"schedd":  true,
	"gateway": true,
	"session": true,
}

const (
	deadlineRead uint8 = 1 << iota
	deadlineWrite
)

// ConnDeadline enforces the serving tier's I/O contract: a Read or Write
// on a net.Conn (or *net.TCPConn / *net.UnixConn) must be dominated by a
// deadline set on the same conn value — SetDeadline arms both directions,
// SetReadDeadline/SetWriteDeadline one each, and any call to a helper
// whose name mentions "Deadline"/"deadline" taking the conn as an
// argument arms both (covering schedd's cfg.setReadDeadline test hook).
// The check is a must-dataflow to each I/O call: armed on every CFG path,
// i.e. dominated by arming statements. *net.UDPConn is exempt — the
// ingest sockets intentionally block until Close tears them down, and
// datagram sends do not wait for a peer.
var ConnDeadline = &Analyzer{
	Name: "conndeadline",
	Doc:  "net.Conn I/O in schedd/gateway/session must be dominated by a deadline on the same conn",
	Run:  runConnDeadline,
}

func runConnDeadline(pass *Pass) {
	if !connDeadlinePackages[pathBase(pass.Pkg.Path)] {
		return
	}
	info := pass.Pkg.Info
	funcBodies(pass.Pkg, func(body *ast.BlockStmt) {
		g := buildCFG(body)
		g.run(flowFuncs{
			union: false, // the deadline must be armed on every path
			step: func(st flowState, el cfgElem, report reportFn) {
				connDeadlineStep(info, st, el, report)
			},
		}, pass.Reportf)
	})
}

func connDeadlineStep(info *types.Info, st flowState, el cfgElem, report reportFn) {
	inspectElem(el, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := connObject(info, sel.X); obj != nil {
				switch sel.Sel.Name {
				case "SetDeadline":
					st[obj] |= deadlineRead | deadlineWrite
				case "SetReadDeadline":
					st[obj] |= deadlineRead
				case "SetWriteDeadline":
					st[obj] |= deadlineWrite
				case "Read":
					if st[obj]&deadlineRead == 0 {
						report2(report, call.Pos(), "Read on %s is not dominated by SetDeadline/SetReadDeadline on every path; an unarmed read can park this goroutine forever on a dead peer", objName(obj))
					}
				case "Write":
					if st[obj]&deadlineWrite == 0 {
						report2(report, call.Pos(), "Write on %s is not dominated by SetDeadline/SetWriteDeadline on every path; an unarmed write can park this goroutine forever on a dead peer", objName(obj))
					}
				}
				return true
			}
		}
		// A helper whose name mentions Deadline arms any conn it takes.
		if helperName := calleeName(call); strings.Contains(helperName, "Deadline") || strings.Contains(helperName, "deadline") {
			for _, a := range call.Args {
				if obj := connObject(info, a); obj != nil {
					st[obj] |= deadlineRead | deadlineWrite
				}
			}
		}
		return true
	})
}

// calleeName is the syntactic name of a call target, for the deadline-
// helper heuristic.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// connObject resolves an expression to a tracked conn variable: static
// type net.Conn, *net.TCPConn, or *net.UnixConn.
func connObject(info *types.Info, e ast.Expr) types.Object {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil || !isTrackedConnType(tv.Type) {
		return nil
	}
	return exprObject(info, e)
}

func isTrackedConnType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "net" {
		return false
	}
	switch o.Name() {
	case "Conn", "TCPConn", "UnixConn":
		return true
	}
	return false
}
