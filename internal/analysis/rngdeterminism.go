package analysis

import (
	"go/types"
)

// simPackages are the packages whose results must be a pure function of
// the seed: every Monte-Carlo estimate, trace replay, and figure in
// results/ flows through them, and PR 2's checkpoint resume demands
// byte-identical metrics.json across runs. Wall-clock reads and the
// process-global math/rand state would both break that. The daemon and
// runner packages (schedd, runner, emu's live side lives behind
// injectable clocks) are deliberately absent: wall-clock is legitimate
// there.
var simPackages = map[string]bool{
	"phy":         true,
	"mc":          true,
	"mac":         true,
	"emu":         true,
	"experiments": true,
	"stats":       true,
	// topo and core joined when the batched Monte-Carlo engine landed:
	// its draw/reduce kernels live one call below mc (topologies drawn in
	// topo, gains reduced in core), so a wall-clock read or global-rand
	// draw there would break the engines' bit-identical contract while
	// sitting just outside the analyzer's old footprint.
	"topo": true,
	"core": true,
	// obs is checked even though it is instrumentation, not simulation:
	// sim packages call into it (mc feeds sweep metrics), so an
	// unannounced wall-clock read here would be a determinism leak one
	// hop removed from the analyzer's usual targets. The two deliberate
	// reads (obs.StartTimer / Timer.Elapsed) carry //lint:allow
	// directives stating that their timings feed metrics only.
	"obs": true,
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators rather than touching global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// wallClockFuncs are the time package functions that read or wait on the
// wall clock. Pure-value helpers (ParseDuration, Date, Unix, ...) are
// deterministic and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// RngDeterminism enforces same-seed reproducibility inside the simulation
// packages: no global math/rand functions (methods on an explicitly
// seeded *rand.Rand are fine), no rand.Seed anywhere, and no wall-clock
// reads where virtual time rules.
var RngDeterminism = &Analyzer{
	Name: "rngdeterminism",
	Doc:  "simulation packages must be a pure function of the seed: no global math/rand, no rand.Seed, no wall clock",
	Run:  runRngDeterminism,
}

func runRngDeterminism(pass *Pass) {
	inSim := simPackages[pathBase(pass.Pkg.Path)]
	for ident, obj := range pass.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // methods on *rand.Rand etc. are seeded and fine
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if fn.Name() == "Seed" {
				pass.Reportf(ident.Pos(), "rand.Seed mutates process-global state and breaks same-seed reproducibility; construct rand.New(rand.NewSource(seed)) instead")
				continue
			}
			if inSim && !randConstructors[fn.Name()] {
				pass.Reportf(ident.Pos(), "global %s.%s draws from process-global state; simulation packages must use an explicitly seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
			}
		case "time":
			if inSim && wallClockFuncs[fn.Name()] {
				pass.Reportf(ident.Pos(), "time.%s reads the wall clock; simulation packages run on virtual time so results stay a pure function of the seed", fn.Name())
			}
		}
	}
}
