package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricDiscipline keeps the obs registry scrapeable at fleet scale. Names
// registered through Registry.Counter/Gauge/Histogram/Group must be
// literal constants (so grep finds every series), subsystem-prefixed
// snake_case (Prometheus convention), and globally unique across the repo
// — one registration site per name, so a dashboard can link a series back
// to the line that emits it. Label values in obs.Labels literals must not
// be minted from request or station data: fmt/strconv stringification,
// non-string conversions, and non-constant concatenation each produce an
// unbounded value set, and every distinct value is a new live series in
// the registry (cardinality explosion). Bounded sources — struct fields,
// identifiers, enum String() methods, string-to-string conversions — pass.
// Package obs itself is exempt: it is the registry implementation and
// necessarily handles names as parameters.
var MetricDiscipline = &Analyzer{
	Name:     "metricdiscipline",
	Doc:      "obs metric names must be literal, snake_case, subsystem-prefixed and globally unique; label values must be bounded",
	Run:      runMetricDiscipline,
	NewState: func() any { return &metricNames{sites: make(map[string]string)} },
}

// metricNames is the cross-package registration index, fresh per Run.
type metricNames struct {
	sites map[string]string // name → "file:line" of first registration
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
	labelKeyRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

func runMetricDiscipline(pass *Pass) {
	if pathBase(pass.Pkg.Path) == "obs" {
		return
	}
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMetricRegistration(pass, info, n)
		case *ast.CompositeLit:
			checkMetricLabels(pass, info, n)
		}
		return true
	})
}

func checkMetricRegistration(pass *Pass, info *types.Info, call *ast.CallExpr) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || pathBase(f.Pkg().Path()) != "obs" {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || recvTypeName(sig.Recv().Type()) != "Registry" {
		return
	}
	switch f.Name() {
	case "Counter", "Gauge", "Histogram", "Group":
	default:
		return
	}
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	tv := info.Types[nameArg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(), "obs metric name must be a constant string, not computed at runtime; literal names keep every series greppable")
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		pass.Reportf(nameArg.Pos(), "obs metric name %q is not subsystem-prefixed snake_case (want e.g. %q)", name, "sicgw_probe_total")
	}
	st, ok := pass.State.(*metricNames)
	if !ok {
		return
	}
	site := pass.Pkg.Fset.Position(nameArg.Pos())
	key := fmt.Sprintf("%s:%d", site.Filename, site.Line)
	if prev, dup := st.sites[name]; dup && prev != key {
		pass.Reportf(nameArg.Pos(), "obs metric name %q is already registered at %s; names must be globally unique with a single registration site", name, prev)
		return
	}
	st.sites[name] = key
}

func checkMetricLabels(pass *Pass, info *types.Info, lit *ast.CompositeLit) {
	tv := info.Types[lit]
	if tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	o := named.Obj()
	if o.Pkg() == nil || pathBase(o.Pkg().Path()) != "obs" || o.Name() != "Labels" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if ktv := info.Types[kv.Key]; ktv.Value == nil || ktv.Value.Kind() != constant.String {
			pass.Reportf(kv.Key.Pos(), "obs label key must be a constant string")
		} else if k := constant.StringVal(ktv.Value); !labelKeyRE.MatchString(k) {
			pass.Reportf(kv.Key.Pos(), "obs label key %q is not snake_case", k)
		}
		if why := dynamicLabelValue(info, kv.Value); why != "" {
			pass.Reportf(kv.Value.Pos(), "obs label value %s: every distinct value is a live series, so unbounded values explode metric cardinality; use a small enum or aggregate instead", why)
		}
	}
}

// dynamicLabelValue reports why a label value expression can take
// unboundedly many values, or "" if it looks bounded.
func dynamicLabelValue(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return "" // constant
	}
	var why string
	ast.Inspect(e, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if f := funcObj(info, n); f != nil && f.Pkg() != nil {
				switch f.Pkg().Path() {
				case "fmt":
					if strings.HasPrefix(f.Name(), "Sprint") {
						why = fmt.Sprintf("formats data via fmt.%s", f.Name())
						return false
					}
				case "strconv":
					why = fmt.Sprintf("stringifies data via strconv.%s", f.Name())
					return false
				}
				return true
			}
			// A conversion: flag unless it is string-to-string (named
			// string types like runner's FigStatus stay bounded).
			if ft, ok := info.Types[n.Fun]; ok && ft.IsType() && len(n.Args) == 1 {
				if atv, ok := info.Types[n.Args[0]]; ok && atv.Type != nil {
					if b, isBasic := atv.Type.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsString == 0 {
						why = "converts a non-string value to string"
						return false
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; !ok || tv.Value == nil {
					why = "concatenates non-constant strings"
					return false
				}
			}
		}
		return true
	})
	return why
}
