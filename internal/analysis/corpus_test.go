package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The corpus harness type-checks each testdata directory as if it lived
// at a chosen import path, runs one analyzer (or the full suite) over it,
// and compares the findings line by line against `// want "regexp"`
// expectation comments in the corpus sources.

var (
	exportsOnce sync.Once
	exportsVal  *Exports
	exportsErr  error
)

// corpusExports loads the module's export data once per test binary.
func corpusExports(t *testing.T) *Exports {
	t.Helper()
	exportsOnce.Do(func() {
		exportsVal, exportsErr = LoadExports(moduleRoot(t))
	})
	if exportsErr != nil {
		t.Fatalf("loading export data: %v", exportsErr)
	}
	return exportsVal
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// expectation is one // want clause: a regexp that must match a finding
// on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants extracts the expectations from every corpus file.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			// "// want" anchors to its own line; "// want-below" to the
			// next line, for findings on lines that are all comment
			// (e.g. a malformed //lint:allow directive).
			wantLine := i + 1
			idx := strings.Index(line, "// want ")
			marker := "// want "
			if idx < 0 {
				idx = strings.Index(line, "// want-below ")
				marker = "// want-below "
				wantLine = i + 2
			}
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(line[idx+len(marker):])
			for rest != "" {
				if rest[0] != '"' {
					t.Fatalf("%s:%d: malformed want clause %q", path, i+1, rest)
				}
				quoted, tail, ok := cutQuoted(rest)
				if !ok {
					t.Fatalf("%s:%d: unterminated want pattern %q", path, i+1, rest)
				}
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", path, i+1, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
				}
				wants = append(wants, &expectation{file: path, line: wantLine, re: re})
				rest = strings.TrimSpace(tail)
			}
		}
	}
	return wants
}

// cutQuoted splits a leading Go string literal off s.
func cutQuoted(s string) (quoted, tail string, ok bool) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], s[i+1:], true
		}
	}
	return "", "", false
}

// runCorpus checks one testdata directory with the given analyzers.
func runCorpus(t *testing.T, analyzers []*Analyzer, subdir, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", subdir)
	pkg, err := corpusExports(t).CheckDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	findings := Run([]*Package{pkg}, analyzers)
	wants := parseWants(t, dir)

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || !sameFile(w.file, f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return a == b
	}
	return aa == bb
}

func TestRngDeterminismCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{RngDeterminism}, filepath.Join("rngdeterminism", "sim"), "repro/internal/mc")
}

func TestRngDeterminismBatchKernelPackages(t *testing.T) {
	// topo and core joined the sim set with the batched Monte-Carlo
	// engine: the same corpus that fires as repro/internal/mc must fire
	// when the code pretends to live in the kernel feeder packages.
	runCorpus(t, []*Analyzer{RngDeterminism}, filepath.Join("rngdeterminism", "sim"), "repro/internal/topo")
	runCorpus(t, []*Analyzer{RngDeterminism}, filepath.Join("rngdeterminism", "sim"), "repro/internal/core")
}

func TestRngDeterminismDaemonAllowlist(t *testing.T) {
	// The same wall-clock calls are legitimate in the runner/daemon
	// packages; only rand.Seed stays forbidden everywhere.
	runCorpus(t, []*Analyzer{RngDeterminism}, filepath.Join("rngdeterminism", "daemon"), "repro/internal/runner")
}

func TestDBUnitsCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{DBUnits}, filepath.Join("dbunits", "pkg"), "repro/internal/dbcorpus")
}

func TestCtxFirstCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{CtxFirst}, filepath.Join("ctxfirst", "sched"), "repro/internal/sched")
}

func TestCtxFirstScopedToSchedulingPackages(t *testing.T) {
	// Identical code outside matching/sched/schedd/runner is exempt.
	runCorpus(t, []*Analyzer{CtxFirst}, filepath.Join("ctxfirst", "other"), "repro/internal/plot")
}

func TestCloseCheckCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{CloseCheck}, filepath.Join("closecheck", "pkg"), "repro/internal/closecorpus")
}

func TestCounterSetCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{CounterSet}, filepath.Join("counterset", "pkg"), "repro/internal/cscorpus")
}

func TestLockHoldCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{LockHold}, filepath.Join("lockhold", "pkg"), "repro/internal/lockcorpus")
}

func TestConnDeadlineCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{ConnDeadline}, filepath.Join("conndeadline", "pkg"), "repro/internal/gateway")
}

func TestConnDeadlineScopedToServingPackages(t *testing.T) {
	// Identical unarmed I/O outside schedd/gateway/session is exempt.
	runCorpus(t, []*Analyzer{ConnDeadline}, filepath.Join("conndeadline", "other"), "repro/internal/plot")
}

func TestMetricDisciplineCorpus(t *testing.T) {
	runCorpus(t, []*Analyzer{MetricDiscipline}, filepath.Join("metricdiscipline", "pkg"), "repro/internal/metcorpus")
}

func TestCtxFirstSessionPackage(t *testing.T) {
	// internal/session joined the ctxfirst package set in PR 9: the same
	// corpus that fires as repro/internal/sched must fire when the code
	// pretends to live in repro/internal/session.
	runCorpus(t, []*Analyzer{CtxFirst}, filepath.Join("ctxfirst", "sched"), "repro/internal/session")
}

func TestAllowDirectives(t *testing.T) {
	// Valid directives suppress findings; malformed ones are findings of
	// the pseudo-analyzer "lint".
	runCorpus(t, All(), filepath.Join("allow", "pkg"), "repro/internal/mc")
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "dbunits", Message: "boom"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "x.go:3:7: dbunits: boom"; got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}

func TestCorpusExpectationsExist(t *testing.T) {
	// Guard against a silently empty corpus: every analyzer directory
	// must carry at least one positive expectation.
	for _, sub := range []string{
		filepath.Join("rngdeterminism", "sim"),
		filepath.Join("dbunits", "pkg"),
		filepath.Join("ctxfirst", "sched"),
		filepath.Join("closecheck", "pkg"),
		filepath.Join("counterset", "pkg"),
		filepath.Join("lockhold", "pkg"),
		filepath.Join("conndeadline", "pkg"),
		filepath.Join("metricdiscipline", "pkg"),
		filepath.Join("allow", "pkg"),
	} {
		if wants := parseWants(t, filepath.Join("testdata", sub)); len(wants) == 0 {
			t.Errorf("corpus %s has no // want expectations", sub)
		}
	}
}

func TestAnalyzerSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("expected exactly 8 analyzers, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, az := range all {
		if az.Name == "" || az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", az)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}
}
