package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold guards the serving tier's latency contract: a sync.Mutex /
// RWMutex in this repo only ever protects short critical sections (table
// lookups, counter bumps, deadline arming), so any operation that can
// block indefinitely while one is held — conn I/O, a channel op, a
// select without default, time.Sleep, WaitGroup.Wait, or acquiring a
// second mutex — turns every other caller of that lock into a hostage of
// the slow peer. The analyzer runs a may-dataflow over each function's
// CFG: a lock is "held" past an acquisition on any path until a
// non-deferred Unlock kills it, so a branch that unlocks early is honored
// and a deferred Unlock correctly keeps the body marked held.
// `if mu.TryLock()` marks the lock held only on the true edge.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (conn I/O, channel op, Sleep, Wait, second lock) while a sync mutex is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	info := pass.Pkg.Info
	funcBodies(pass.Pkg, func(body *ast.BlockStmt) {
		g := buildCFG(body)
		g.run(flowFuncs{
			union: true, // held on any path into the op counts
			enter: func(st flowState, blk *block) {
				if obj := tryLockCond(info, blk); obj != nil {
					st[obj] = 1
				}
			},
			step: func(st flowState, el cfgElem, report reportFn) {
				lockHoldStep(info, st, el, report)
			},
		}, pass.Reportf)
	})
}

func lockHoldStep(info *types.Info, st flowState, el cfgElem, report reportFn) {
	switch el.kind {
	case elemSelect:
		if !el.hasDefault {
			heldReport(st, report, el.node.Pos(), "select")
		}
		return
	case elemRange:
		rs := el.node.(*ast.RangeStmt)
		if tv, ok := info.Types[rs.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				heldReport(st, report, rs.Pos(), "range over channel")
			}
		}
		return
	case elemDefer:
		return
	}
	comm := el.kind == elemComm
	inspectElem(el, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !comm {
				heldReport(st, report, n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm {
				heldReport(st, report, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			obj, name := mutexMethod(info, n)
			if obj != nil {
				switch name {
				case "Lock", "RLock":
					if len(st) > 0 {
						report2(report, n.Pos(), "acquiring %s.%s while mutex %s is held risks deadlock under lock-order inversion; release the first lock or document a global order with //lint:allow lockhold",
							objName(obj), name, heldNames(st))
					}
					st[obj] = 1
				case "Unlock", "RUnlock":
					delete(st, obj)
				}
				return true
			}
			if op := blockingCallOp(info, n); op != "" {
				heldReport(st, report, n.Pos(), op)
			}
		}
		return true
	})
}

// heldReport reports a blocking op if any mutex is currently held.
func heldReport(st flowState, report reportFn, pos token.Pos, op string) {
	if len(st) == 0 {
		return
	}
	report2(report, pos, "blocking %s while mutex %s is held stalls every other user of the lock; move the operation outside the critical section", op, heldNames(st))
}

// report2 guards against the fixpoint phase, where report is nil.
func report2(report reportFn, pos token.Pos, format string, args ...any) {
	if report != nil {
		report(pos, format, args...)
	}
}

func heldNames(st flowState) string {
	names := make([]string, 0, len(st))
	for o := range st {
		names = append(names, objName(o))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func objName(o types.Object) string {
	return `"` + o.Name() + `"`
}

// mutexMethod resolves a call to a method on sync.Mutex or sync.RWMutex,
// returning the receiver's object (a field object for s.mu, so all
// instances of a struct share one tracked lock — precise enough for the
// per-function critical sections this repo writes) and the method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch f.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	switch recvTypeName(sig.Recv().Type()) {
	case "Mutex", "RWMutex":
	default:
		return nil, ""
	}
	return exprObject(info, sel.X), f.Name()
}

// recvTypeName unwraps a pointer receiver to its named type's name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// tryLockCond recognizes branch blocks guarded by `mu.TryLock()` (or its
// negation) and returns the mutex object held on this edge.
func tryLockCond(info *types.Info, blk *block) types.Object {
	if blk.cond == nil {
		return nil
	}
	e, want := ast.Unparen(blk.cond), blk.condTrue
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		e, want = ast.Unparen(u.X), !want
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || !want {
		return nil
	}
	obj, name := mutexMethod(info, call)
	if obj != nil && (name == "TryLock" || name == "TryRLock") {
		return obj
	}
	return nil
}

// blockingCallOp classifies calls that can block the goroutine
// indefinitely. sync.Cond.Wait is deliberately absent: it releases its
// mutex while waiting, so flagging it would outlaw the one correct way to
// use a condition variable.
func blockingCallOp(info *types.Info, call *ast.CallExpr) string {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	path, name := f.Pkg().Path(), f.Name()
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if path == "time" && name == "Sleep" {
			return "time.Sleep"
		}
		if path == "net" && strings.HasPrefix(name, "Dial") {
			return "net." + name
		}
		return ""
	}
	recv := recvTypeName(sig.Recv().Type())
	if path == "sync" && name == "Wait" && recv == "WaitGroup" {
		return "WaitGroup.Wait"
	}
	if path == "net" {
		switch name {
		case "Read", "Write", "Accept", "AcceptTCP", "AcceptUnix",
			"ReadFrom", "WriteTo", "ReadFromUDP", "WriteToUDP",
			"ReadMsgUDP", "WriteMsgUDP", "Dial", "DialContext":
			return "net conn " + name
		}
	}
	return ""
}
