package analysis

import "testing"

// TestRepoIsClean runs the full analyzer suite over every package in the
// module and demands zero findings. This is the CI tripwire: the moment a
// future change violates a determinism, unit-safety, or cancellation
// invariant, this test names the exact file and line.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load(moduleRoot(t))
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader is broken", len(pkgs))
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings above or record a deliberate exception with //lint:allow <analyzer> <reason>")
	}
}

// TestLoaderCoversKnownPackages spot-checks that the loader saw the
// packages the analyzers are scoped to; a silent load regression would
// otherwise turn the suite into a no-op.
func TestLoaderCoversKnownPackages(t *testing.T) {
	pkgs, err := Load(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, path := range []string{
		"repro",
		"repro/internal/phy",
		"repro/internal/mc",
		"repro/internal/sched",
		"repro/internal/schedd",
		"repro/internal/matching",
		"repro/internal/runner",
		"repro/internal/stats",
		"repro/cmd/siclint",
	} {
		p, ok := byPath[path]
		if !ok {
			t.Errorf("loader missed package %s", path)
			continue
		}
		if len(p.Files) == 0 || p.Types == nil {
			t.Errorf("package %s loaded without syntax or types", path)
		}
	}
}
