package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader drives the capture parser with arbitrary bytes: no panics, no
// unbounded allocations, and every accepted stream re-serialises to the
// same records.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	if w, err := NewWriter(&buf); err == nil {
		_ = w.WriteFrame(7, []byte{1, 2, 3, 4})
		_ = w.Flush()
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SICC\x00\x01\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.WriteFrame(r.TimestampNanos, r.Wire); err != nil {
				t.Fatalf("accepted record failed to rewrite: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("rewrite unreadable: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed count: %d vs %d", len(back), len(recs))
		}
	})
}
