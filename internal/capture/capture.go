// Package capture records the frames a MAC simulation puts on the air into
// a compact binary log — the repository's pcap equivalent — and reads them
// back for offline inspection (cmd/sicdump). The format is deliberately
// minimal and versioned:
//
//	header:  magic "SICC" (4 bytes) | version uint16 | reserved uint16
//	record:  timestampNanos uint64 | frameLen uint32 | frame bytes
//
// All integers are big-endian. Frame bytes are exactly what frame.Marshal
// produced, so a reader can frame.Decode every record.
package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/frame"
)

// Magic opens every capture file.
var Magic = [4]byte{'S', 'I', 'C', 'C'}

// Version is the current format version.
const Version = 1

// maxRecordLen bounds a record so corrupted length fields cannot cause
// pathological allocations.
const maxRecordLen = frame.MaxPayload + 64

// Errors.
var (
	ErrBadMagic   = errors.New("capture: bad magic")
	ErrBadVersion = errors.New("capture: unsupported version")
	ErrCorrupt    = errors.New("capture: corrupt record")
)

// Writer appends records to a capture stream.
type Writer struct {
	bw    *bufio.Writer
	count int
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// WriteFrame appends one record. wire must be a marshalled frame.
func (w *Writer) WriteFrame(timestampNanos uint64, wire []byte) error {
	if len(wire) == 0 || len(wire) > maxRecordLen {
		return fmt.Errorf("capture: record length %d out of range", len(wire))
	}
	var rec [12]byte
	binary.BigEndian.PutUint64(rec[0:8], timestampNanos)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(wire)))
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(wire); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Flush drains buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Record is one captured frame.
type Record struct {
	// TimestampNanos is the simulated time of the frame's first bit.
	TimestampNanos uint64
	// Wire is the raw marshalled frame.
	Wire []byte
}

// Decode parses the record's frame.
func (r Record) Decode() (*frame.Frame, error) {
	return frame.Decode(r.Wire)
}

// Reader iterates a capture stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("capture: reading header: %w", err)
	}
	if hdr[0] != Magic[0] || hdr[1] != Magic[1] || hdr[2] != Magic[2] || hdr[3] != Magic[3] {
		return nil, ErrBadMagic
	}
	if binary.BigEndian.Uint16(hdr[4:6]) != Version {
		return nil, ErrBadVersion
	}
	return &Reader{br: br}, nil
}

// Next returns the next record, or io.EOF after the last one.
func (r *Reader) Next() (Record, error) {
	var rec [12]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: truncated record header", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(rec[8:12])
	if n == 0 || n > maxRecordLen {
		return Record{}, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	wire := make([]byte, n)
	if _, err := io.ReadFull(r.br, wire); err != nil {
		return Record{}, fmt.Errorf("%w: truncated record body", ErrCorrupt)
	}
	return Record{
		TimestampNanos: binary.BigEndian.Uint64(rec[0:8]),
		Wire:           wire,
	}, nil
}

// ReadAll drains the stream into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	cr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
