package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/frame"
)

func sampleWire(t *testing.T, seq uint32) []byte {
	t.Helper()
	f := frame.Frame{Type: frame.TypeData, Src: 1, Dst: 0, Seq: seq, Payload: []byte("payload")}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	times := []uint64{0, 1500, 99_000_000}
	for i, ts := range times {
		if err := w.WriteFrame(ts, sampleWire(t, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(times) {
		t.Errorf("Count = %d, want %d", w.Count(), len(times))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(times) {
		t.Fatalf("got %d records, want %d", len(recs), len(times))
	}
	for i, rec := range recs {
		if rec.TimestampNanos != times[i] {
			t.Errorf("record %d timestamp %d, want %d", i, rec.TimestampNanos, times[i])
		}
		f, err := rec.Decode()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if f.Seq != uint32(i) {
			t.Errorf("record %d seq %d", i, f.Seq)
		}
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty capture: %v, %d records", err, len(recs))
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := w.WriteFrame(0, make([]byte, maxRecordLen+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("short header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x00\x01\x00\x00"))); !errors.Is(err, ErrBadMagic) {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("SICC\x00\x09\x00\x00"))); !errors.Is(err, ErrBadVersion) {
		t.Error("bad version accepted")
	}
}

func TestReaderRejectsCorruptRecords(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WriteFrame(7, sampleWire(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncated body.
	if _, err := ReadAll(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated body: %v", err)
	}
	// Absurd length field (bytes 8..16 after the 8-byte header are the
	// timestamp; 16..20 the length).
	bad := append([]byte(nil), good...)
	bad[16], bad[17], bad[18], bad[19] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadAll(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge length: %v", err)
	}
	// Truncated record header.
	if _, err := ReadAll(bytes.NewReader(good[:len(good)-len(sampleWire(t, 1))-5])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated header: %v", err)
	}
}

func TestNextEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty stream: %v, want io.EOF", err)
	}
}
