package runner

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

func sampleCheckpoint(id string) Checkpoint {
	return Checkpoint{Result: experiments.Result{
		ID:      id,
		Title:   "TITLE-" + id,
		Text:    "text",
		Files:   map[string]string{id + ".csv": "x\n1\n"},
		Metrics: map[string]float64{"m": 7},
	}}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ParamsKey("fig", testParams(), 1)
	if _, err := s.Load("fig", key); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store Load err = %v, want ErrNoCheckpoint", err)
	}
	if err := s.Save("fig", key, sampleCheckpoint("fig")); err != nil {
		t.Fatal(err)
	}

	// A fresh store re-reads the manifest from disk.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s2.Load("fig", key)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Result.Title != "TITLE-fig" || cp.Result.Metrics["m"] != 7 {
		t.Errorf("round-tripped checkpoint mangled: %+v", cp.Result)
	}

	// A different params hash must refuse the stale checkpoint.
	other := ParamsKey("fig", func() experiments.Params { p := testParams(); p.Seed = 2; return p }(), 1)
	if _, err := s2.Load("fig", other); !errors.Is(err, ErrParamsChanged) {
		t.Errorf("changed-params Load err = %v, want ErrParamsChanged", err)
	}
	// Seed-spread width is part of the key as well: its metrics land in the
	// same checkpoint, so a different -seeds must recompute.
	spread := ParamsKey("fig", testParams(), 5)
	if _, err := s2.Load("fig", spread); !errors.Is(err, ErrParamsChanged) {
		t.Errorf("changed-seeds Load err = %v, want ErrParamsChanged", err)
	}
}

// corrupt applies mutate to path's contents.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(blob), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	key := ParamsKey("fig", testParams(), 1)
	if err := s.Save("fig", key, sampleCheckpoint("fig")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, filepath.Join(dir, "fig.json"), func(b []byte) []byte { return b[:len(b)/2] })
	s2, _ := OpenStore(dir)
	if _, err := s2.Load("fig", key); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated Load err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlippedCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	key := ParamsKey("fig", testParams(), 1)
	if err := s.Save("fig", key, sampleCheckpoint("fig")); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes while keeping the JSON valid, so only the checksum
	// can catch it.
	corrupt(t, filepath.Join(dir, "fig.json"), func(b []byte) []byte {
		return bytes.Replace(b, []byte("TITLE-fig"), []byte("TITLE-fug"), 1)
	})
	s2, _ := OpenStore(dir)
	if _, err := s2.Load("fig", key); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit-flipped Load err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlippedManifestStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	key := ParamsKey("fig", testParams(), 1)
	if err := s.Save("fig", key, sampleCheckpoint("fig")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, filepath.Join(dir, "manifest.json"), func(b []byte) []byte {
		return bytes.Replace(b, []byte(`"params_hash`), []byte(`"params_hasX`), 1)
	})
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load("fig", key); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Load under corrupt manifest err = %v, want ErrNoCheckpoint (recompute everything)", err)
	}
}

func TestStalePayloadCrossCheckedAgainstManifest(t *testing.T) {
	// A payload file that is internally consistent but belongs to a
	// different save (e.g. restored from a backup) must fail the manifest
	// cross-check.
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	key := ParamsKey("a", testParams(), 1)
	if err := s.Save("a", key, sampleCheckpoint("a")); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("a", key, sampleCheckpoint("a2")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.json"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := OpenStore(dir)
	if _, err := s2.Load("a", key); !errors.Is(err, ErrCorrupt) {
		t.Errorf("stale payload Load err = %v, want ErrCorrupt", err)
	}
}

// End to end: a corrupted checkpoint makes only its own figure recompute;
// intact checkpoints still serve from cache.
func TestResumeRecomputesCorruptedFigureOnly(t *testing.T) {
	opts := baseOpts(t)
	var aCalls, bCalls atomic.Int32
	suite := []experiments.Runner{fixed("a", &aCalls), fixed("b", &bCalls)}
	if _, err := Run(context.Background(), suite, opts); err != nil {
		t.Fatal(err)
	}
	corrupt(t, filepath.Join(opts.CheckpointDir, "a.json"),
		func(b []byte) []byte { return b[:len(b)-10] })

	opts.Resume = true
	rep, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := statuses(rep); got[0] != StatusOK || got[1] != StatusCached {
		t.Fatalf("statuses = %v, want [ok skipped-cached]", got)
	}
	if aCalls.Load() != 2 || bCalls.Load() != 1 {
		t.Errorf("calls a=%d b=%d, want a recomputed (2) and b cached (1)",
			aCalls.Load(), bCalls.Load())
	}
}
