package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/obs"
)

func testParams() experiments.Params {
	p := experiments.QuickParams()
	p.Trials = 50
	p.GridN = 11
	p.TraceDays = 1
	return p
}

// fixed returns a deterministic fake driver whose metrics depend on the
// params seed, mimicking a real figure.
func fixed(id string, calls *atomic.Int32) experiments.Runner {
	return experiments.Runner{
		ID:    id,
		Title: "fake " + id,
		Run: func(ctx context.Context, p experiments.Params) (experiments.Result, error) {
			if calls != nil {
				calls.Add(1)
			}
			if err := ctx.Err(); err != nil {
				return experiments.Result{}, err
			}
			return experiments.Result{
				ID:      id,
				Title:   "fake " + id,
				Text:    "text",
				Files:   map[string]string{id + ".csv": "x,y\n1,2\n"},
				Metrics: map[string]float64{"m": float64(p.Seed)},
			}, nil
		},
	}
}

func panicking(id string) experiments.Runner {
	return experiments.Runner{
		ID:    id,
		Title: "always panics",
		Run: func(context.Context, experiments.Params) (experiments.Result, error) {
			panic("boom")
		},
	}
}

func statuses(rep *Report) []Status {
	out := make([]Status, len(rep.Figures))
	for i, f := range rep.Figures {
		out[i] = f.Status
	}
	return out
}

func baseOpts(t *testing.T) Options {
	t.Helper()
	dir := t.TempDir()
	return Options{
		Params:        testParams(),
		OutDir:        filepath.Join(dir, "out"),
		CheckpointDir: filepath.Join(dir, "out", "checkpoints"),
		RetryBackoff:  time.Millisecond,
		KeepGoing:     true,
	}
}

func TestPanicIsolation(t *testing.T) {
	opts := baseOpts(t)
	var log bytes.Buffer
	opts.Log = &log
	rep, err := Run(context.Background(),
		[]experiments.Runner{fixed("a", nil), panicking("bad"), fixed("b", nil)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{StatusOK, StatusFailed, StatusOK}
	if got := statuses(rep); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("statuses = %v, want %v", got, want)
	}
	if rep.Failed() != 1 {
		t.Errorf("Failed() = %d, want 1", rep.Failed())
	}
	if bad := rep.Figures[1]; !strings.Contains(bad.Err, "boom") {
		t.Errorf("panic reason not recorded: %q", bad.Err)
	}
	if bad := rep.Figures[1]; bad.Attempts != 1 {
		t.Errorf("panicking figure retried: %d attempts", bad.Attempts)
	}
	if !strings.Contains(log.String(), "goroutine") {
		t.Error("panic stack not logged")
	}
	// The suite kept going: both healthy figures' outputs exist.
	for _, name := range []string{"a.csv", "b.csv"} {
		if _, err := os.Stat(filepath.Join(opts.OutDir, name)); err != nil {
			t.Errorf("missing output %s: %v", name, err)
		}
	}
}

func TestTransientFailureRetriesWithBackoff(t *testing.T) {
	opts := baseOpts(t)
	opts.Retries = 3
	var calls atomic.Int32
	flaky := experiments.Runner{
		ID: "flaky",
		Run: func(ctx context.Context, p experiments.Params) (experiments.Result, error) {
			if calls.Add(1) < 3 {
				return experiments.Result{}, errors.New("transient blip")
			}
			return experiments.Result{ID: "flaky", Title: "t", Text: "x",
				Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	rep, err := Run(context.Background(), []experiments.Runner{flaky}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Figures[0].Status != StatusOK || rep.Figures[0].Attempts != 3 {
		t.Errorf("got %s after %d attempts, want ok after 3",
			rep.Figures[0].Status, rep.Figures[0].Attempts)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	opts := baseOpts(t)
	opts.Retries = 1
	var calls atomic.Int32
	broken := experiments.Runner{
		ID: "broken",
		Run: func(context.Context, experiments.Params) (experiments.Result, error) {
			calls.Add(1)
			return experiments.Result{}, errors.New("still down")
		},
	}
	rep, err := Run(context.Background(), []experiments.Runner{broken}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Figures[0].Status != StatusFailed || calls.Load() != 2 {
		t.Errorf("got %s after %d calls, want failed after 2", rep.Figures[0].Status, calls.Load())
	}
}

func TestPerFigureDeadline(t *testing.T) {
	opts := baseOpts(t)
	opts.FigTimeout = 20 * time.Millisecond
	stuck := experiments.Runner{
		ID: "stuck",
		Run: func(ctx context.Context, p experiments.Params) (experiments.Result, error) {
			<-ctx.Done()
			return experiments.Result{}, ctx.Err()
		},
	}
	rep, err := Run(context.Background(), []experiments.Runner{stuck, fixed("after", nil)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The deadline is per figure: the next figure still runs.
	want := []Status{StatusTimedOut, StatusOK}
	if got := statuses(rep); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("statuses = %v, want %v", got, want)
	}
}

func TestSuiteCancellationMarksRemainingTimedOut(t *testing.T) {
	opts := baseOpts(t)
	ctx, cancel := context.WithCancel(context.Background())
	interrupter := experiments.Runner{
		ID: "interrupter",
		Run: func(ctx context.Context, p experiments.Params) (experiments.Result, error) {
			cancel() // simulates SIGINT / -timeout firing mid-figure
			return experiments.Result{}, ctx.Err()
		},
	}
	rep, err := Run(ctx, []experiments.Runner{fixed("first", nil), interrupter, fixed("rest", nil)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{StatusOK, StatusTimedOut, StatusTimedOut}
	if got := statuses(rep); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("statuses = %v, want %v", got, want)
	}
}

func TestKeepGoingOffSkipsRemainder(t *testing.T) {
	opts := baseOpts(t)
	opts.KeepGoing = false
	rep, err := Run(context.Background(),
		[]experiments.Runner{panicking("bad"), fixed("a", nil), fixed("b", nil)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{StatusFailed, StatusSkipped, StatusSkipped}
	if got := statuses(rep); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("statuses = %v, want %v", got, want)
	}
}

func TestResumeServesCheckpointsAndInvalidatesOnParamsChange(t *testing.T) {
	opts := baseOpts(t)
	var calls atomic.Int32
	suite := []experiments.Runner{fixed("a", &calls)}

	first, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	second, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Figures[0].Status != StatusCached {
		t.Fatalf("status = %s, want skipped-cached", second.Figures[0].Status)
	}
	if calls.Load() != 1 {
		t.Errorf("driver ran %d times, want 1 (second run cached)", calls.Load())
	}
	if fmt.Sprint(first.Metrics) != fmt.Sprint(second.Metrics) {
		t.Errorf("cached metrics differ: %v vs %v", first.Metrics, second.Metrics)
	}

	// Changed params hash → cache invalid → recompute, not stale data.
	opts.Params.Seed = 42
	third, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Figures[0].Status != StatusOK {
		t.Fatalf("after params change status = %s, want ok", third.Figures[0].Status)
	}
	if calls.Load() != 2 {
		t.Errorf("driver ran %d times, want 2 after params change", calls.Load())
	}
	if third.Metrics["a"]["m"] != 42 {
		t.Errorf("recomputed metric = %v, want the new seed's value 42", third.Metrics["a"]["m"])
	}
}

func TestSeedSpreadUnavailableIsRecordedNotFatal(t *testing.T) {
	opts := baseOpts(t)
	opts.Seeds = 3
	base := opts.Params.Seed
	moody := experiments.Runner{
		ID: "moody",
		Run: func(ctx context.Context, p experiments.Params) (experiments.Result, error) {
			if p.Seed != base {
				return experiments.Result{}, fmt.Errorf("extra seed %d exploded", p.Seed)
			}
			return experiments.Result{ID: "moody", Title: "t", Text: "x",
				Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	rep, err := Run(context.Background(), []experiments.Runner{moody, fixed("tail", nil)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Figures[0]
	if f.Status != StatusOK || !f.SpreadUnavailable {
		t.Fatalf("got status=%s spreadUnavailable=%v, want ok with spread unavailable",
			f.Status, f.SpreadUnavailable)
	}
	if _, ok := rep.Metrics["moody"]["m_seed_min"]; ok {
		t.Error("partial spread metrics leaked into the report")
	}
	if !strings.Contains(rep.Render(), "seed spread unavailable") {
		t.Error("report does not count the unavailable spread")
	}
	if rep.Failed() != 0 {
		t.Errorf("Failed() = %d; an unavailable spread must not fail the suite", rep.Failed())
	}
}

// The acceptance-criteria demo: cancel a real suite mid-run, resume it,
// and require the final metrics to be byte-identical to an uninterrupted
// run with the same seed.
func TestKillAndResumeByteIdenticalMetrics(t *testing.T) {
	fig2, _ := experiments.ByID("fig2")
	fig6, _ := experiments.ByID("fig6")
	suite := []experiments.Runner{fig2, fig6}

	metricsBlob := func(rep *Report) []byte {
		blob, err := json.MarshalIndent(rep.Metrics, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	// Reference: uninterrupted run.
	refOpts := baseOpts(t)
	ref, err := Run(context.Background(), suite, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Failed() != 0 {
		t.Fatalf("reference run failed:\n%s", ref.Render())
	}

	// Interrupted run: cancel as soon as the first figure completes.
	opts := baseOpts(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.OnResult = func(experiments.Result, bool) { cancel() }
	killed, err := Run(ctx, suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{StatusOK, StatusTimedOut}
	if got := statuses(killed); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("interrupted statuses = %v, want %v", got, want)
	}

	// Resume: the finished figure is served from its checkpoint, the rest
	// recomputes, and the metrics match the uninterrupted run byte for byte.
	opts.OnResult = nil
	opts.Resume = true
	resumed, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	want = []Status{StatusCached, StatusOK}
	if got := statuses(resumed); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("resumed statuses = %v, want %v", got, want)
	}
	if !bytes.Equal(metricsBlob(ref), metricsBlob(resumed)) {
		t.Error("resumed metrics differ from the uninterrupted run")
	}
	// Output files match too.
	for name := range ref.Metrics {
		refCSV, err := os.ReadFile(filepath.Join(refOpts.OutDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		gotCSV, err := os.ReadFile(filepath.Join(opts.OutDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refCSV, gotCSV) {
			t.Errorf("%s.csv differs between uninterrupted and resumed runs", name)
		}
	}
}

// TestPartialSweepReportsProgress: a driver interrupted mid-sweep returns
// an mc.PartialError; the report row must classify it as timed-out (it
// unwraps to the context error) and keep the completed-trial count in the
// one-line reason — "4200/10000", not a bare deadline message. The
// registry, when attached, records the settled row.
func TestPartialSweepReportsProgress(t *testing.T) {
	opts := baseOpts(t)
	reg := obs.NewRegistry()
	opts.Registry = reg
	interrupted := experiments.Runner{
		ID:    "partial",
		Title: "interrupted sweep",
		Run: func(context.Context, experiments.Params) (experiments.Result, error) {
			return experiments.Result{}, fmt.Errorf("fig: %w",
				&mc.PartialError{Completed: 4200, Trials: 10000, Err: context.DeadlineExceeded})
		},
	}
	rep, err := Run(context.Background(), []experiments.Runner{interrupted}, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Figures[0]
	if fs.Status != StatusTimedOut {
		t.Errorf("status = %v, want %v", fs.Status, StatusTimedOut)
	}
	if !strings.Contains(fs.Err, "4200/10000") {
		t.Errorf("report row %q lost the sweep progress", fs.Err)
	}
	out := reg.Render()
	for _, want := range []string{
		`sicfig_figure_seconds{figure="partial"}`,
		`sicfig_figure_attempts{figure="partial"} 1`,
		`sicfig_figures_total{status="timed-out"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry missing %q:\n%s", want, out)
		}
	}
}
