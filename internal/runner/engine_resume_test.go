package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// TestScalarCheckpointResumesUnderBatchedEngine proves the engine switch
// is invisible to checkpointing: Params.ScalarMC is excluded from the
// params hash (the engines are bit-identical by contract), so a
// checkpoint written by the scalar engine is served as-is when the suite
// resumes under the batched one — and a from-scratch batched run yields
// the same metrics bytes anyway.
func TestScalarCheckpointResumesUnderBatchedEngine(t *testing.T) {
	fig6, ok := experiments.ByID("fig6")
	if !ok {
		t.Fatal("fig6 runner missing")
	}
	suite := []experiments.Runner{fig6}

	metricsBlob := func(rep *Report) []byte {
		blob, err := json.MarshalIndent(rep.Metrics, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	opts := baseOpts(t)
	opts.Params.ScalarMC = true
	scalarRun, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalarRun.Failed() != 0 {
		t.Fatalf("scalar run failed:\n%s", scalarRun.Render())
	}

	// Flip the engine and resume against the scalar run's checkpoints.
	opts.Params.ScalarMC = false
	opts.Resume = true
	resumed, err := Run(context.Background(), suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Figures[0].Status != StatusCached {
		t.Fatalf("status = %s, want skipped-cached: the engine flag must not change the params hash",
			resumed.Figures[0].Status)
	}
	if !bytes.Equal(metricsBlob(scalarRun), metricsBlob(resumed)) {
		t.Error("resumed metrics differ from the scalar run they were checkpointed by")
	}

	// A cold batched run reproduces the scalar bytes, so serving the stale
	// checkpoint was not just allowed but correct.
	freshOpts := baseOpts(t)
	fresh, err := Run(context.Background(), suite, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Figures[0].Status != StatusOK {
		t.Fatalf("fresh batched run status = %s, want ok", fresh.Figures[0].Status)
	}
	if !bytes.Equal(metricsBlob(scalarRun), metricsBlob(fresh)) {
		t.Error("cold batched run metrics differ from the scalar engine's")
	}
}
