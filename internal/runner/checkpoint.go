package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/experiments"
)

// The checkpoint directory layout:
//
//	<dir>/manifest.json   checksummed index: figure ID → params hash + payload checksum
//	<dir>/<figID>.json    checksummed figure payload (the full Result)
//
// Every file is a self-checksummed envelope written atomically, and the
// manifest additionally records each payload's checksum, so truncation,
// bit rot and stale payload files are all detected on load and answered by
// recomputing the figure rather than serving bad data. A figure is durable
// once its payload AND the manifest naming it are on disk; a crash between
// the two writes merely recomputes that figure on resume.

// checkpointVersion is baked into every params key so a format change
// invalidates old checkpoints wholesale.
const checkpointVersion = 1

// ErrNoCheckpoint reports that no completed checkpoint exists for a figure.
var ErrNoCheckpoint = errors.New("runner: no checkpoint")

// ErrParamsChanged reports that a checkpoint exists but was computed under
// different parameters, so serving it would silently return stale results.
var ErrParamsChanged = errors.New("runner: checkpoint params changed")

// ErrCorrupt reports a checkpoint or manifest that failed its checksum or
// could not be decoded.
var ErrCorrupt = errors.New("runner: corrupt checkpoint")

// Checkpoint is the persisted record of one completed figure.
type Checkpoint struct {
	Result experiments.Result `json:"result"`
	// SpreadUnavailable records that the seed-spread annotation failed for
	// this figure, so a resumed suite keeps reporting it.
	SpreadUnavailable bool `json:"spread_unavailable,omitempty"`
}

// ParamsKey fingerprints everything that determines a figure's output:
// the figure ID, the full parameter set, the seed-spread width and the
// checkpoint format version. Resuming under any change recomputes instead
// of serving a stale checkpoint.
func ParamsKey(figID string, p experiments.Params, seeds int) string {
	blob, err := json.Marshal(struct {
		Version int
		ID      string
		Seeds   int
		Params  experiments.Params
	}{checkpointVersion, figID, seeds, p})
	if err != nil {
		// Params is a flat struct of numbers; this cannot fail.
		panic(fmt.Sprintf("runner: marshalling params key: %v", err))
	}
	return digest(blob)
}

func digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// envelope wraps every persisted file with a checksum over its payload.
type envelope struct {
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

func writeEnvelope(path string, payload []byte) error {
	// Compact marshalling keeps the (already-compact) payload bytes exactly
	// as digested; indentation would reformat the RawMessage and break the
	// checksum on read-back.
	blob, err := json.Marshal(envelope{SHA256: digest(payload), Payload: payload})
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(blob, '\n'), 0o644)
}

// readEnvelope loads and verifies a checksummed file. Truncated, garbled
// or tampered files come back as ErrCorrupt.
func readEnvelope(path string) (json.RawMessage, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if digest(env.Payload) != env.SHA256 {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return env.Payload, nil
}

// manifestEntry indexes one completed figure.
type manifestEntry struct {
	ParamsHash string `json:"params_hash"`
	Checksum   string `json:"checksum"`
}

// Store is the on-disk checkpoint store for one suite run.
type Store struct {
	dir     string
	entries map[string]manifestEntry
}

// OpenStore opens (creating if needed) the checkpoint directory and loads
// its manifest. A missing or corrupt manifest is not an error — the store
// starts empty and every figure recomputes, which is always safe.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, entries: map[string]manifestEntry{}}
	if payload, err := readEnvelope(s.manifestPath()); err == nil {
		if err := json.Unmarshal(payload, &s.entries); err != nil {
			s.entries = map[string]manifestEntry{}
		}
	}
	return s, nil
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

func (s *Store) payloadPath(figID string) string {
	return filepath.Join(s.dir, figID+".json")
}

// Save persists a completed figure: payload file first, then the manifest
// entry pointing at it, each write atomic.
func (s *Store) Save(figID, paramsHash string, cp Checkpoint) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("runner: encoding checkpoint %s: %w", figID, err)
	}
	if err := writeEnvelope(s.payloadPath(figID), payload); err != nil {
		return fmt.Errorf("runner: writing checkpoint %s: %w", figID, err)
	}
	s.entries[figID] = manifestEntry{ParamsHash: paramsHash, Checksum: digest(payload)}
	manifest, err := json.Marshal(s.entries)
	if err != nil {
		return fmt.Errorf("runner: encoding manifest: %w", err)
	}
	if err := writeEnvelope(s.manifestPath(), manifest); err != nil {
		return fmt.Errorf("runner: writing manifest: %w", err)
	}
	return nil
}

// Load returns the checkpoint for figID if one exists, was computed under
// paramsHash, and passes both the manifest cross-check and its own
// checksum. Any other outcome is an error explaining why the figure will
// recompute.
func (s *Store) Load(figID, paramsHash string) (Checkpoint, error) {
	e, ok := s.entries[figID]
	if !ok {
		return Checkpoint{}, ErrNoCheckpoint
	}
	if e.ParamsHash != paramsHash {
		return Checkpoint{}, ErrParamsChanged
	}
	payload, err := readEnvelope(s.payloadPath(figID))
	if err != nil {
		return Checkpoint{}, err
	}
	if digest(payload) != e.Checksum {
		return Checkpoint{}, fmt.Errorf("%w: %s: payload does not match manifest", ErrCorrupt, s.payloadPath(figID))
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, s.payloadPath(figID), err)
	}
	return cp, nil
}
